// Package syccl is the public API of the SyCCL reproduction: a
// symmetry-aware collective-communication schedule synthesizer
// (Cao & Shi et al., "SyCCL: Exploiting Symmetry for Efficient Collective
// Communication Scheduling", SIGCOMM 2025).
//
// The typical flow mirrors Fig 6 of the paper:
//
//	top := syccl.H800Rail(8)                            // topology (§3.1)
//	col := syccl.AllGather(top.NumGPUs(), 16<<20)       // demand (§2.1)
//	res, err := syccl.Synthesize(top, col, syccl.Options{})
//	busbw := syccl.BusBandwidth(col, res.Time)          // nccl-tests metric
//	xmlBytes, err := syccl.ToXML(res.Schedule, syccl.RuntimeParams{Name: "ag"})
//
// Synthesize explores sketches (symmetry decompositions of the demand),
// solves each sub-demand with an epoch-discretized solver, merges the
// sub-schedules, and ranks candidates with an α-β simulator. Baselines
// (NCCL fixed schedules, TECCL whole-topology synthesis, hand-crafted
// expert schedules) live in their internal packages and are surfaced
// through the experiment harness and the cmd/ tools.
package syccl

import (
	"context"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/engine"
	"syccl/internal/metrics"
	"syccl/internal/mxml"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

// Re-exported core types. The public surface is intentionally thin:
// construct a Topology, a Collective, call Synthesize, then simulate,
// score, or export the schedule.
type (
	// Topology is a GPU cluster with extracted symmetry dimensions.
	Topology = topology.Topology
	// Collective is a communication demand (Table 1 of the paper).
	Collective = collective.Collective
	// Schedule is a concrete set of inter-GPU transfers.
	Schedule = schedule.Schedule
	// Options configures the synthesizer (E1/E2, R1/R2, pruning…).
	Options = core.Options
	// Result is a synthesized schedule plus predicted time and stats.
	Result = core.Result
	// SearchOptions controls sketch exploration (§4.1 prunings).
	SearchOptions = sketch.SearchOptions
	// SimOptions controls the α-β simulator.
	SimOptions = sim.Options
	// SimResult reports simulated completion time and utilization.
	SimResult = sim.Result
	// RuntimeParams are the MSCCL-executor XML knobs (§6).
	RuntimeParams = mxml.Params
	// TopologyConfig parameterizes custom cluster construction.
	TopologyConfig = topology.Config
	// Engine is a long-lived planner with persistent cross-request caches
	// (enumerated sketches per topology fingerprint, solved sub-schedules
	// per canonical sub-demand signature). Serve repeated or concurrent
	// synthesis requests through one Engine to reuse work across them.
	Engine = engine.Engine
	// EngineOptions configures an Engine (cache bounds, shard count,
	// observability).
	EngineOptions = engine.Options
	// EngineStats is a snapshot of an Engine's lifetime cache and
	// cancellation counters.
	EngineStats = engine.Stats
	// SolverMode selects the sub-demand solver strategy for
	// Options.SolverMode (the -solver CLI knob).
	SolverMode = core.SolverMode
)

// Solver modes for Options.SolverMode: SolverAuto runs the exact MILP
// with flow-relaxation bound pruning and hands oversized instances to
// the flow backend; SolverExact is pure MILP; SolverFlow uses the
// LP-relaxation backend for every sub-demand.
const (
	SolverAuto  = core.SolverAuto
	SolverExact = core.SolverExact
	SolverFlow  = core.SolverFlow
)

// Topology constructors (§7.1 and Appendix B).
var (
	// SingleServer returns an n-GPU NVSwitch-only server.
	SingleServer = topology.SingleServer
	// A100Clos returns the paper's A100 testbed (Fig 13a): servers×8
	// GPUs, two servers per ToR, spine above. A100Clos(2) is the 16-GPU
	// testbed, A100Clos(4) the 32-GPU one.
	A100Clos = topology.A100Clos
	// H800Rail returns the rail-optimized H800 cluster (Fig 13b):
	// servers×8 GPUs. H800Rail(8) is the 64-GPU configuration,
	// H800Rail(64) the 512-GPU one.
	H800Rail = topology.H800Rail
	// H800Small returns the §7.4 scaled-down microbenchmark cluster.
	H800Small = topology.H800Small
	// BuildTopology constructs a custom cluster from a TopologyConfig.
	BuildTopology = topology.Build
)

// Collective constructors (Table 1).
var (
	SendRecv      = collective.SendRecv
	Broadcast     = collective.Broadcast
	Scatter       = collective.Scatter
	Gather        = collective.Gather
	Reduce        = collective.Reduce
	AllGather     = collective.AllGather
	AlltoAll      = collective.AlltoAll
	ReduceScatter = collective.ReduceScatter
	AllReduce     = collective.AllReduce
)

// Synthesize runs the SyCCL pipeline and returns the best schedule found
// together with its simulator-predicted completion time. It is the
// one-shot form: nothing is cached across calls. Long-lived callers
// should construct an Engine with NewEngine and use Plan instead.
func Synthesize(top *Topology, col *Collective, opts Options) (*Result, error) {
	return core.Synthesize(top, col, opts)
}

// SynthesizeContext is Synthesize under a context with cooperative
// cancellation and anytime semantics: when ctx is cancelled or its
// deadline expires mid-run, the best fully-validated schedule found so
// far is returned with Result.Partial set, or ctx.Err() when nothing
// completed the coarse pass yet.
func SynthesizeContext(ctx context.Context, top *Topology, col *Collective, opts Options) (*Result, error) {
	return core.SynthesizeContext(ctx, top, col, opts)
}

// NewEngine builds a long-lived planner. Plan(ctx, top, col, opts) on the
// returned Engine behaves like SynthesizeContext but persists sketch and
// sub-schedule caches across requests, so warm plans on the same (or an
// isomorphic) topology skip most of the search and solver work.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// Simulate predicts a schedule's completion time on a topology.
func Simulate(top *Topology, s *Schedule, opts SimOptions) (*SimResult, error) {
	return sim.Simulate(top, s, opts)
}

// DefaultSimOptions mirrors a typical CCL transport (pipelined 512 KiB
// blocks).
func DefaultSimOptions() SimOptions { return sim.DefaultOptions() }

// BusBandwidth converts a completion time into the nccl-tests bus
// bandwidth metric the paper reports (bytes/second).
func BusBandwidth(col *Collective, seconds float64) float64 {
	return metrics.BusBandwidth(col.Kind, col.NumGPUs, metrics.DataBytes(col), seconds)
}

// ToXML serializes a schedule into the MSCCL-executor XML format (§6).
func ToXML(s *Schedule, p RuntimeParams) ([]byte, error) { return mxml.Marshal(s, p) }

// FromXML parses an MSCCL-executor XML back into a schedule and its
// runtime parameters.
func FromXML(data []byte) (*Schedule, RuntimeParams, error) { return mxml.Parse(data) }
