package syccl

import (
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the documented public API end to end.
func TestQuickstartFlow(t *testing.T) {
	top := H800Small(2)
	col := AllGather(top.NumGPUs(), 1<<20)
	res, err := Synthesize(top, col, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
	bus := BusBandwidth(col, res.Time)
	if bus <= 0 {
		t.Fatalf("busbw = %g", bus)
	}

	// XML round trip through the public API.
	data, err := ToXML(res.Schedule, RuntimeParams{Name: "quickstart"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "quickstart") {
		t.Error("XML missing name")
	}
	parsed, params, err := FromXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if params.Name != "quickstart" {
		t.Errorf("params = %+v", params)
	}
	if err := parsed.Validate(col); err != nil {
		t.Fatalf("parsed schedule invalid: %v", err)
	}

	// Re-simulate the parsed schedule.
	r, err := Simulate(top, parsed, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 {
		t.Error("simulated time missing")
	}
}

func TestTopologyConstructors(t *testing.T) {
	if SingleServer(8).NumGPUs() != 8 {
		t.Error("SingleServer")
	}
	if A100Clos(2).NumGPUs() != 16 {
		t.Error("A100Clos")
	}
	if H800Rail(8).NumGPUs() != 64 {
		t.Error("H800Rail")
	}
	custom := BuildTopology(TopologyConfig{
		Name: "custom", Servers: 3, GPUsPerServer: 2,
		NVAlpha: 1e-6, NVBeta: 1e-11, NetAlpha: 1e-5, NetBeta: 1e-10,
	})
	if custom.NumGPUs() != 6 || custom.NumDims() != 2 {
		t.Errorf("custom topology: %v", custom)
	}
}

func TestCollectiveConstructors(t *testing.T) {
	for _, col := range []*Collective{
		SendRecv(8, 0, 1, 10), Broadcast(8, 0, 10), Scatter(8, 0, 10),
		Gather(8, 0, 10), Reduce(8, 0, 10), AllGather(8, 10),
		AlltoAll(8, 10), ReduceScatter(8, 10), AllReduce(8, 80),
	} {
		if err := col.Validate(); err != nil {
			t.Errorf("%v: %v", col.Kind, err)
		}
	}
}
