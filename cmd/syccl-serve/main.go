// Command syccl-serve runs the SyCCL planner as a long-lived HTTP
// daemon: a shared engine with persistent caches behind a JSON API with
// request coalescing, admission control, and graceful drain on
// SIGTERM/SIGINT.
//
// Usage:
//
//	syccl-serve -addr 127.0.0.1:8080 -admin 127.0.0.1:6060 -access-log -
//	curl -s localhost:8080/v1/synthesize -d '{"topology":"dgx4","collective":"allgather","size":"1M"}'
//
// Endpoints: POST /v1/synthesize, GET /v1/schedule/{id}, GET /healthz,
// GET /statsz, GET /tracez, GET /metrics (Prometheus exposition), and
// GET /debug/requests[/{id}] (flight recorder). The -admin listener
// additionally serves net/http/pprof under /debug/pprof/.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"syscall"

	"syccl/internal/cli"
	"syccl/internal/persist"
	"syccl/internal/serve"
)

func main() {
	opts := cli.NewServeFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "syccl-serve:", err)
		os.Exit(1)
	}
	if err := opts.Validate(); err != nil {
		fail(err)
	}

	var accessLog io.Writer
	switch opts.AccessLog {
	case "":
	case "-":
		accessLog = os.Stderr
	default:
		f, err := os.OpenFile(opts.AccessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(fmt.Errorf("access log: %w", err))
		}
		defer f.Close()
		accessLog = f
	}

	var store *persist.Store
	if opts.CacheDir != "" {
		var err error
		if store, err = persist.Open(persist.Options{Dir: opts.CacheDir}); err != nil {
			fail(fmt.Errorf("cache dir: %w", err))
		}
	}
	var prewarm []serve.Request
	if opts.Prewarm != "" {
		topos, cols, sizes, err := cli.ParsePrewarm(opts.Prewarm)
		if err != nil {
			fail(err) // Validate caught this already; belt and suspenders
		}
		prewarm = serve.PrewarmGrid(topos, cols, sizes)
	}

	s := serve.New(serve.Options{
		Concurrency:      opts.Concurrency,
		QueueDepth:       opts.QueueDepth,
		StoreEntries:     opts.StoreEntries,
		DefaultTimeout:   opts.Timeout,
		DefaultWorkers:   opts.Workers,
		RetryAfter:       opts.RetryAfter,
		MaxBodyBytes:     opts.MaxBody,
		AccessLog:        accessLog,
		Persist:          store,
		SnapshotInterval: opts.SnapshotInterval,
		Prewarm:          prewarm,
	})
	hs := &http.Server{Addr: opts.Addr, Handler: s}
	done := s.DrainOnSignal(hs, opts.DrainTimeout, syscall.SIGTERM, syscall.SIGINT)

	if opts.AdminAddr != "" {
		admin := &http.Server{Addr: opts.AdminAddr, Handler: s.AdminHandler()}
		go func() {
			// The admin listener lives and dies with the process; drain
			// closes the public listener only.
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "syccl-serve: admin listener:", err)
			}
		}()
		fmt.Printf("syccl-serve: admin (pprof, /metrics) on %s\n", opts.AdminAddr)
	}

	if store != nil {
		fmt.Printf("syccl-serve: plan cache %s (%d entries, %d restored, prewarm %d)\n",
			store.Dir(), store.Len(), s.Stats().Server.Restored, len(prewarm))
	}
	fmt.Printf("syccl-serve: listening on %s (concurrency=%d queue=%d store=%d)\n",
		opts.Addr, opts.Concurrency, opts.QueueDepth, opts.StoreEntries)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	// ListenAndServe returned ErrServerClosed: a signal landed and the
	// drain is finishing. Wait for it, then report what the process did.
	<-done
	snap := s.Stats()
	out, _ := json.MarshalIndent(snap, "", "  ")
	fmt.Printf("syccl-serve: drained; final stats:\n%s\n", out)
}
