// Command syccl-sim simulates an MSCCL-XML schedule on a topology — the
// stand-in for handing the file to MSCCL-executor (§6) — and reports
// completion time, bus bandwidth, and per-dimension utilization.
//
// Usage:
//
//	syccl-sim -topo a100x16 -xml ag.xml -collective allgather -size 64M
package main

import (
	"flag"
	"fmt"
	"os"

	"syccl/internal/cli"
	"syccl/internal/metrics"
	"syccl/internal/mxml"
	"syccl/internal/obs"
	"syccl/internal/sim"
	"syccl/internal/trace"
)

func main() {
	topoSpec := flag.String("topo", "a100x16", "topology spec")
	xmlPath := flag.String("xml", "", "MSCCL XML schedule file")
	kind := flag.String("collective", "", "optional: validate against this collective kind")
	sizeSpec := flag.String("size", "", "aggregate data size for validation/busbw")
	timeline := flag.Bool("timeline", false, "print a per-GPU activity chart and event log")
	events := flag.Int("events", 20, "event-log rows with -timeline (0 = all)")
	tracePath := flag.String("trace", "", "write the simulated timeline as Chrome trace JSON (open in Perfetto)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "syccl-sim:", err)
		os.Exit(1)
	}

	if *xmlPath == "" {
		fail(fmt.Errorf("-xml is required"))
	}
	top, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		fail(err)
	}
	data, err := os.ReadFile(*xmlPath)
	if err != nil {
		fail(err)
	}
	sched, params, err := mxml.Parse(data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("parsed %q: %d GPUs, %d pieces, %d transfers (proto=%s channels=%d)\n",
		params.Name, sched.NumGPUs, len(sched.Pieces), len(sched.Transfers), params.Proto, params.NChannels)

	res, err := sim.Simulate(top, sched, mxml.SimOptions(params))
	if err != nil {
		fail(err)
	}
	fmt.Printf("completion: %.6gs over %d events\n", res.Time, res.Events)
	for d := 0; d < top.NumDims(); d++ {
		fmt.Printf("  dim %d (%s): utilization %.1f%%\n", d, top.Dim(d).Name, res.Utilization(top, d)*100)
	}

	if *timeline {
		tl := trace.Build(top, sched, res)
		fmt.Println()
		fmt.Print(tl.Gantt(top, 72))
		fmt.Println()
		fmt.Print(tl.DimSummary(top, res))
		fmt.Println()
		fmt.Print(tl.EventLog(*events))
	}

	if *tracePath != "" {
		rec := obs.NewRecorder()
		trace.EmitChrome(rec, top, sched, res)
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}

	if *kind != "" && *sizeSpec != "" {
		size, err := cli.ParseSize(*sizeSpec)
		if err != nil {
			fail(err)
		}
		col, err := cli.BuildCollective(*kind, top.NumGPUs(), size)
		if err != nil {
			fail(err)
		}
		if err := sched.Validate(col); err != nil {
			fail(fmt.Errorf("schedule does not satisfy %v: %w", col.Kind, err))
		}
		bus := metrics.BusBandwidth(col.Kind, col.NumGPUs, metrics.DataBytes(col), res.Time)
		fmt.Printf("valid %v schedule; busbw %.1f GBps\n", col.Kind, bus/1e9)
	}
}
