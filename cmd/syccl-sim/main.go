// Command syccl-sim simulates an MSCCL-XML schedule on a topology — the
// stand-in for handing the file to MSCCL-executor (§6) — and reports
// completion time, bus bandwidth, and per-dimension utilization.
//
// Usage:
//
//	syccl-sim -topo a100x16 -xml ag.xml -collective allgather -size 64M
package main

import (
	"flag"
	"fmt"
	"os"

	"syccl/internal/cli"
	"syccl/internal/metrics"
	"syccl/internal/mxml"
	"syccl/internal/obs"
	"syccl/internal/sim"
	"syccl/internal/trace"
)

func main() {
	opts := cli.NewSimFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "syccl-sim:", err)
		os.Exit(1)
	}

	top, col, err := opts.Resolve()
	if err != nil {
		fail(err)
	}
	data, err := os.ReadFile(opts.XML)
	if err != nil {
		fail(err)
	}
	sched, params, err := mxml.Parse(data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("parsed %q: %d GPUs, %d pieces, %d transfers (proto=%s channels=%d)\n",
		params.Name, sched.NumGPUs, len(sched.Pieces), len(sched.Transfers), params.Proto, params.NChannels)

	res, err := sim.Simulate(top, sched, mxml.SimOptions(params))
	if err != nil {
		fail(err)
	}
	fmt.Printf("completion: %.6gs over %d events\n", res.Time, res.Events)
	for d := 0; d < top.NumDims(); d++ {
		fmt.Printf("  dim %d (%s): utilization %.1f%%\n", d, top.Dim(d).Name, res.Utilization(top, d)*100)
	}

	if opts.Timeline {
		tl := trace.Build(top, sched, res)
		fmt.Println()
		fmt.Print(tl.Gantt(top, 72))
		fmt.Println()
		fmt.Print(tl.DimSummary(top, res))
		fmt.Println()
		fmt.Print(tl.EventLog(opts.Events))
	}

	if opts.TracePath != "" {
		rec := obs.NewRecorder()
		trace.EmitChrome(rec, top, sched, res)
		f, err := os.Create(opts.TracePath)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", opts.TracePath)
	}

	if col != nil {
		if err := sched.Validate(col); err != nil {
			fail(fmt.Errorf("schedule does not satisfy %v: %w", col.Kind, err))
		}
		bus := metrics.BusBandwidth(col.Kind, col.NumGPUs, metrics.DataBytes(col), res.Time)
		fmt.Printf("valid %v schedule; busbw %.1f GBps\n", col.Kind, bus/1e9)
	}
}
