// Command syccl-topo inspects a topology: its nodes, links, extracted
// dimensions and groups (§3.1), bandwidth shares, and symmetry action.
//
// Usage:
//
//	syccl-topo -topo h800x64
package main

import (
	"flag"
	"fmt"
	"os"

	"syccl/internal/cli"
)

func main() {
	topoSpec := flag.String("topo", "a100x16", "topology spec (see -help)")
	verbose := flag.Bool("v", false, "also list groups and physical nodes")
	flag.Parse()

	top, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syccl-topo:", err)
		os.Exit(1)
	}

	fmt.Printf("%s\n", top.Name)
	fmt.Printf("  GPUs: %d   physical nodes: %d   links: %d\n", top.NumGPUs(), len(top.Nodes), len(top.Links))
	fmt.Printf("  symmetry: server axis n=%d xor=%v, local axis n=%d xor=%v\n",
		top.Sym.Server.N, top.Sym.Server.Xor, top.Sym.Local.N, top.Sym.Local.Xor)
	for d := 0; d < top.NumDims(); d++ {
		dim := top.Dim(d)
		fmt.Printf("  dim %d (%s): %d groups × %d GPUs, α=%.2gs β⁻¹=%.1f GB/s, bandwidth share %.1f%%\n",
			d, dim.Name, len(dim.Groups), dim.GroupSize(0), dim.Alpha, dim.Bandwidth()/1e9,
			top.BandwidthShare(d)*100)
		if *verbose {
			for g, grp := range dim.Groups {
				fmt.Printf("    G%-3d %v\n", g, grp)
			}
		}
	}
	if *verbose {
		for _, n := range top.Nodes {
			fmt.Printf("  node %3d %-9s server=%d local=%d %s\n", n.ID, n.Kind, n.Server, n.Local, n.Name)
		}
	}
}
