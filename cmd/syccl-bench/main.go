// Command syccl-bench regenerates the paper's evaluation tables and
// figures (§7, Appendix C). Each experiment prints the same rows/series
// the paper reports; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// Usage:
//
//	syccl-bench -list
//	syccl-bench -run fig14a
//	syccl-bench -run all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"syccl/internal/core"
	"syccl/internal/engine"
	"syccl/internal/experiments"
	"syccl/internal/obs"
)

type runner func(experiments.Config) (string, error)

func runners() map[string]runner {
	wrap := func(f func(experiments.Config) (*experiments.PerfSeries, error)) runner {
		return func(cfg experiments.Config) (string, error) {
			s, err := f(cfg)
			if err != nil {
				return "", err
			}
			out := s.Format()
			out += fmt.Sprintf("max speedup over NCCL: %.2f×", 1+s.Speedup(func(r experiments.PerfRow) float64 { return r.NCCL }))
			if sp := s.Speedup(func(r experiments.PerfRow) float64 { return r.TECCL }); sp > 0 {
				out += fmt.Sprintf(", over TECCL: %.2f×", 1+sp)
			}
			return out + "\n", nil
		}
	}
	return map[string]runner{
		"fig14a": wrap(experiments.Fig14a),
		"fig14b": wrap(experiments.Fig14b),
		"fig14c": wrap(experiments.Fig14c),
		"fig14d": wrap(experiments.Fig14d),
		"fig15a": wrap(experiments.Fig15a),
		"fig15b": wrap(experiments.Fig15b),
		"fig15c": wrap(experiments.Fig15c),
		"fig16a": func(cfg experiments.Config) (string, error) {
			series, err := experiments.Fig16a(cfg)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, s := range series {
				b.WriteString(s.Format())
			}
			return b.String(), nil
		},
		"fig16b": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Fig16b(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatBreakdown(rows), nil
		},
		"fig16c": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Fig16c(cfg)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "fig16c: synthesis time vs parallel instances (single-core host: expect flat wall-clock)\n")
			fmt.Fprintf(&b, "%8s %8s %14s\n", "size", "workers", "synth")
			for _, r := range rows {
				fmt.Fprintf(&b, "%8s %8d %14s\n", experiments.SizeLabel(r.Bytes), r.Workers, r.SyCCL.Round(time.Millisecond))
			}
			return b.String(), nil
		},
		"table5": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Table5(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable5(rows), nil
		},
		"fig17a": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Fig17a(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig17a(rows), nil
		},
		"fig17b": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Fig17b(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig17b(rows), nil
		},
		"fig17c": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Fig17c(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig17c(rows), nil
		},
		"table6": func(cfg experiments.Config) (string, error) {
			rows, err := experiments.Table6(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatTable6(rows), nil
		},
		"fig21a": wrap(experiments.Fig21a),
		"fig21b": wrap(experiments.Fig21b),
		"fig22":  wrap(experiments.Fig22),
	}
}

func main() {
	run := flag.String("run", "", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "trimmed sweeps for fast runs")
	budget := flag.Duration("teccl-budget", 0, "TECCL per-case budget (0: default)")
	timeout := flag.Duration("timeout", 0, "per-synthesis deadline; on expiry the best schedule found so far is used (0 = no limit)")
	seed := flag.Int64("seed", 0, "random seed")
	solver := flag.String("solver", "auto", "sub-demand solver: auto | exact | flow")
	tracePath := flag.String("trace", "", "write a Chrome trace covering every synthesis run (open in Perfetto)")
	flag.Parse()

	mode, err := core.ParseSolverMode(*solver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syccl-bench:", err)
		os.Exit(1)
	}

	all := runners()
	var ids []string
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range ids {
			fmt.Println(" ", id)
		}
		if *run == "" {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, TECCLBudget: *budget, Seed: *seed, Timeout: *timeout, Solver: mode}
	if *tracePath != "" {
		cfg.Obs = obs.NewRecorder()
	}
	// One engine across every experiment: repeated topologies and demand
	// shapes inside a sweep hit its caches instead of re-solving.
	cfg.Engine = engine.New(engine.Options{Obs: cfg.Obs})
	targets := ids
	if *run != "all" {
		if _, ok := all[*run]; !ok {
			fmt.Fprintf(os.Stderr, "syccl-bench: unknown experiment %q\n", *run)
			os.Exit(1)
		}
		targets = []string{*run}
	}
	for _, id := range targets {
		start := time.Now()
		out, err := all[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syccl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syccl-bench: %v\n", err)
			os.Exit(1)
		}
		if err := cfg.Obs.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "syccl-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "syccl-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}
}
