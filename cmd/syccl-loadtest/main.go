// Command syccl-loadtest drives cold/warm traffic at a syccl-serve
// daemon and reports latency percentiles and the coalescing hit rate.
// With no -addr it spins up an in-process server on a loopback port, so
// a single invocation benchmarks the whole serving stack with zero
// setup; scripts/loadtest.sh uses that mode to produce BENCH_serve.json.
//
// Usage:
//
//	syccl-loadtest -out BENCH_serve.json
//	syccl-loadtest -addr http://127.0.0.1:8080 -topo a100x16 -coll alltoall -size 64M
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"syccl/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "", "daemon base URL (empty = run an in-process server)")
		topo        = flag.String("topo", "dgx4", "topology spec")
		coll        = flag.String("coll", "allgather", "collective kind")
		size        = flag.String("size", "1M", "aggregate data size")
		cold        = flag.Int("cold", 16, "distinct-demand requests (each a genuine synthesis)")
		stream      = flag.Int("stream", 16, "stream:true cold requests timed to their first incumbent event (0 = skip)")
		warm        = flag.Int("warm", 128, "duplicate requests after the store is primed")
		concurrency = flag.Int("concurrency", 8, "client goroutines per phase")
		timeoutMS   = flag.Int64("timeout-ms", 0, "per-request deadline forwarded to the daemon (0 = server default)")
		out         = flag.String("out", "", "write the report as JSON to this file (default stdout only)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "syccl-loadtest:", err)
		os.Exit(1)
	}

	base := *addr
	if base == "" {
		ts := httptest.NewServer(serve.New(serve.Options{}))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("syccl-loadtest: in-process daemon at %s\n", base)
	} else if resp, err := http.Get(base + "/healthz"); err != nil {
		fail(fmt.Errorf("daemon at %s unreachable: %w", base, err))
	} else {
		resp.Body.Close()
	}

	report, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:     base,
		Topology:    *topo,
		Collective:  *coll,
		Size:        *size,
		Cold:        *cold,
		Stream:      *stream,
		Warm:        *warm,
		Concurrency: *concurrency,
		TimeoutMS:   *timeoutMS,
	})
	if err != nil {
		fail(err)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s\n", data)
	fmt.Printf("cold p50 %.0fus p99 %.0fus | warm p50 %.0fus p99 %.0fus | warm speedup %.1fx | hit rate %.1f%% | errors %d\n",
		report.Cold.P50us, report.Cold.P99us, report.Warm.P50us, report.Warm.P99us,
		report.WarmSpeedup, 100*report.CoalescingHitRate, report.Errors)
	fmt.Printf("hist (bucket-estimated): cold p50/p90/p99/p999 %.0f/%.0f/%.0f/%.0fus | warm p50/p90/p99/p999 %.0f/%.0f/%.0f/%.0fus\n",
		report.Cold.Hist.P50us, report.Cold.Hist.P90us, report.Cold.Hist.P99us, report.Cold.Hist.P999us,
		report.Warm.Hist.P50us, report.Warm.Hist.P90us, report.Warm.Hist.P99us, report.Warm.Hist.P999us)
	if report.TTFI.Count > 0 {
		fmt.Printf("stream ttfi p50 %.0fus p99 %.0fus over %d streams\n",
			report.TTFI.P50us, report.TTFI.P99us, report.TTFI.Count)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
