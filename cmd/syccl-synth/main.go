// Command syccl-synth synthesizes a collective schedule with SyCCL (or a
// baseline) and reports predicted performance; optionally it writes the
// schedule as MSCCL-executor XML (§6) and a Chrome trace of the run.
//
// Usage:
//
//	syccl-synth -topo a100x16 -collective allgather -size 64M -out ag.xml
//	syccl-synth -topo h800x64 -collective alltoall -size 1G -system teccl
//	syccl-synth -topo dgx4 -coll allgather -trace run.json   # open in Perfetto
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"syccl/internal/cli"
	"syccl/internal/core"
	"syccl/internal/engine"
	"syccl/internal/metrics"
	"syccl/internal/mxml"
	"syccl/internal/nccl"
	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/teccl"
	"syccl/internal/trace"
)

func main() {
	opts := cli.NewSynthFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "syccl-synth:", err)
		os.Exit(1)
	}

	top, col, err := opts.Resolve()
	if err != nil {
		fail(err)
	}
	if d := opts.ParsedDelta(); d != nil {
		fmt.Printf("delta %q applied to %s: synthesizing on degraded topology %s\n",
			d, opts.Base().Name, top.Name)
	}

	// Only pay for recording when an exporter will consume it.
	var rec *obs.Recorder
	if opts.TracePath != "" || opts.Summary {
		rec = obs.NewRecorder()
	}

	ctx := context.Background()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	var sched *schedule.Schedule
	var predicted float64
	start := time.Now()
	switch opts.System {
	case "syccl":
		mode, err := core.ParseSolverMode(opts.Solver)
		if err != nil {
			fail(err)
		}
		eng := engine.New(engine.Options{Obs: rec})
		copts := core.Options{
			E1: opts.E1, E2: opts.E2, Workers: opts.Workers, Seed: opts.Seed,
			SolverMode: mode, Obs: rec,
			Hint:       opts.Hint(),
			StopWithin: opts.StopWithin / 100,
		}
		var onInc func(core.Incumbent)
		if opts.Stream {
			onInc = func(inc core.Incumbent) {
				line := fmt.Sprintf("incumbent #%d: %.4gs source=%s", inc.Seq, inc.Time, inc.Source)
				if inc.Engine != "" {
					line += " engine=" + inc.Engine
				}
				if inc.Bound > 0 {
					line += fmt.Sprintf(" bound=%.4gs (%.1f%% above)", inc.Bound, 100*(inc.Time/inc.Bound-1))
				}
				fmt.Printf("%s (+%v)\n", line, time.Since(start).Round(time.Millisecond))
			}
		}
		res, err := eng.SynthesizeStream(ctx, top, col, copts, onInc)
		if err != nil {
			fail(err)
		}
		sched, predicted = res.Schedule, res.Time
		fmt.Printf("phases: search=%v combine=%v solve1=%v solve2=%v (sketches=%d candidates=%d solves=%d cache-hits=%d cache-misses=%d)\n",
			res.Phases.Search.Round(time.Microsecond), res.Phases.Combine.Round(time.Microsecond),
			res.Phases.Solve1.Round(time.Millisecond), res.Phases.Solve2.Round(time.Millisecond),
			res.Stats.Sketches, res.Stats.Candidates, res.Stats.SolverCalls, res.Stats.CacheHits, res.Stats.CacheMisses)
		if res.Stats.BoundsComputed > 0 || res.Stats.PrunedLB > 0 {
			fmt.Printf("bounds: computed=%d pruned=%d proved-optimal=%t\n",
				res.Stats.BoundsComputed, res.Stats.PrunedLB, res.Stats.ProvedOptimal)
		}
		for _, e := range res.Stats.SolveErrors {
			fmt.Fprintln(os.Stderr, "syccl-synth: solver:", e)
		}
		if res.Stats.StoppedEarly {
			fmt.Printf("note: -stop-within %g%% satisfied; skipped the fine pass\n", opts.StopWithin)
		}
		if res.Partial {
			fmt.Printf("note: -timeout %v expired mid-synthesis; reporting the best schedule found so far\n", opts.Timeout)
		}
		if opts.Explain && res.Combination != nil {
			fmt.Print(res.Combination.DescribeCombination(top))
		}
	case "teccl":
		res, err := teccl.Synthesize(top, col, teccl.Options{TimeBudget: opts.Budget, Seed: opts.Seed, Rec: rec})
		if err != nil {
			fail(err)
		}
		sched, predicted = res.Schedule, res.Time
		fmt.Printf("teccl: %d greedy rounds within %v budget\n", res.Rounds, opts.Budget)
	case "nccl":
		sp := rec.StartSpan("nccl.schedule")
		so := sim.DefaultOptions()
		so.Rec = rec
		s, t, err := nccl.Schedule(top, col, so)
		sp.End()
		if err != nil {
			fail(err)
		}
		sched, predicted = s, t
	}
	synthTime := time.Since(start)

	bus := metrics.BusBandwidth(col.Kind, col.NumGPUs, metrics.DataBytes(col), predicted)
	fmt.Printf("%s %s on %s (%s): %d transfers, predicted %.3gs, busbw %.1f GBps, synthesized in %v\n",
		opts.System, col.Kind, top.Name, opts.Size, len(sched.Transfers), predicted, bus/1e9,
		synthTime.Round(time.Millisecond))

	if rec != nil {
		// Re-simulate the winning schedule so the trace also carries its
		// per-link timeline next to the synthesis spans.
		if res, err := sim.Simulate(top, sched, sim.DefaultOptions()); err == nil {
			trace.EmitChrome(rec, top, sched, res)
		}
	}
	if opts.Summary {
		fmt.Println()
		fmt.Print(rec.Summary())
	}
	if opts.TracePath != "" {
		f, err := os.Create(opts.TracePath)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", opts.TracePath)
	}

	if opts.Out != "" {
		data, err := mxml.Marshal(sched, mxml.Params{Name: fmt.Sprintf("%s-%s-%s", opts.System, opts.Collective, opts.Size)})
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(opts.Out, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", opts.Out, len(data))
	}
}
