// Command syccl-synth synthesizes a collective schedule with SyCCL (or a
// baseline) and reports predicted performance; optionally it writes the
// schedule as MSCCL-executor XML (§6) and a Chrome trace of the run.
//
// Usage:
//
//	syccl-synth -topo a100x16 -collective allgather -size 64M -out ag.xml
//	syccl-synth -topo h800x64 -collective alltoall -size 1G -system teccl
//	syccl-synth -topo dgx4 -coll allgather -trace run.json   # open in Perfetto
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"syccl/internal/cli"
	"syccl/internal/core"
	"syccl/internal/metrics"
	"syccl/internal/mxml"
	"syccl/internal/nccl"
	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/teccl"
	"syccl/internal/trace"
)

func main() {
	topoSpec := flag.String("topo", "a100x16", "topology spec")
	kind := flag.String("collective", "allgather", "collective kind")
	flag.StringVar(kind, "coll", "allgather", "alias for -collective")
	sizeSpec := flag.String("size", "64M", "aggregate data size (e.g. 1K, 64M, 1G)")
	system := flag.String("system", "syccl", "synthesizer: syccl | teccl | nccl")
	out := flag.String("out", "", "write the schedule as MSCCL XML to this file")
	e1 := flag.Float64("e1", 3.0, "coarse-pass epoch knob E1")
	e2 := flag.Float64("e2", 0.5, "fine-pass epoch knob E2")
	workers := flag.Int("workers", 0, "parallel solver instances (0 = GOMAXPROCS)")
	budget := flag.Duration("teccl-budget", 10*time.Second, "TECCL solve budget")
	seed := flag.Int64("seed", 0, "random seed")
	explain := flag.Bool("explain", false, "print the winning sketch combination in the paper's notation (syccl only)")
	tracePath := flag.String("trace", "", "write a Chrome trace of the synthesis run (open in Perfetto)")
	summary := flag.Bool("obs-summary", false, "print a span/counter summary of the run")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "syccl-synth:", err)
		os.Exit(1)
	}

	top, err := cli.ParseTopology(*topoSpec)
	if err != nil {
		fail(err)
	}
	size, err := cli.ParseSize(*sizeSpec)
	if err != nil {
		fail(err)
	}
	col, err := cli.BuildCollective(*kind, top.NumGPUs(), size)
	if err != nil {
		fail(err)
	}

	// Only pay for recording when an exporter will consume it.
	var rec *obs.Recorder
	if *tracePath != "" || *summary {
		rec = obs.NewRecorder()
	}

	var sched *schedule.Schedule
	var predicted float64
	start := time.Now()
	switch *system {
	case "syccl":
		res, err := core.Synthesize(top, col, core.Options{E1: *e1, E2: *e2, Workers: *workers, Seed: *seed, Obs: rec})
		if err != nil {
			fail(err)
		}
		sched, predicted = res.Schedule, res.Time
		fmt.Printf("phases: search=%v combine=%v solve1=%v solve2=%v (sketches=%d candidates=%d solves=%d cache-hits=%d cache-misses=%d)\n",
			res.Phases.Search.Round(time.Microsecond), res.Phases.Combine.Round(time.Microsecond),
			res.Phases.Solve1.Round(time.Millisecond), res.Phases.Solve2.Round(time.Millisecond),
			res.Stats.Sketches, res.Stats.Candidates, res.Stats.SolverCalls, res.Stats.CacheHits, res.Stats.CacheMisses)
		if *explain && res.Combination != nil {
			fmt.Print(res.Combination.DescribeCombination(top))
		}
	case "teccl":
		res, err := teccl.Synthesize(top, col, teccl.Options{TimeBudget: *budget, Seed: *seed, Rec: rec})
		if err != nil {
			fail(err)
		}
		sched, predicted = res.Schedule, res.Time
		fmt.Printf("teccl: %d greedy rounds within %v budget\n", res.Rounds, *budget)
	case "nccl":
		sp := rec.StartSpan("nccl.schedule")
		so := sim.DefaultOptions()
		so.Rec = rec
		s, t, err := nccl.Schedule(top, col, so)
		sp.End()
		if err != nil {
			fail(err)
		}
		sched, predicted = s, t
	default:
		fail(fmt.Errorf("unknown system %q", *system))
	}
	synthTime := time.Since(start)

	bus := metrics.BusBandwidth(col.Kind, col.NumGPUs, metrics.DataBytes(col), predicted)
	fmt.Printf("%s %s on %s (%s): %d transfers, predicted %.3gs, busbw %.1f GBps, synthesized in %v\n",
		*system, col.Kind, top.Name, *sizeSpec, len(sched.Transfers), predicted, bus/1e9,
		synthTime.Round(time.Millisecond))

	if rec != nil {
		// Re-simulate the winning schedule so the trace also carries its
		// per-link timeline next to the synthesis spans.
		if res, err := sim.Simulate(top, sched, sim.DefaultOptions()); err == nil {
			trace.EmitChrome(rec, top, sched, res)
		}
	}
	if *summary {
		fmt.Println()
		fmt.Print(rec.Summary())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}

	if *out != "" {
		data, err := mxml.Marshal(sched, mxml.Params{Name: fmt.Sprintf("%s-%s-%s", *system, *kind, *sizeSpec)})
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
	}
}
