// MoE AlltoAllv: the asymmetric-collective scenario of §8. Mixture-of-
// experts routing sends skewed, per-pair volumes, so collective symmetry
// breaks and SyCCL's symmetry-aware pipeline does not apply; the paper
// recommends heuristic synthesis for these patterns, implemented in
// internal/asym: largest-first placement on least-loaded routes with
// PXN-style relaying on rail-only fabrics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"syccl"
	"syccl/internal/asym"
)

func main() {
	top := syccl.H800Rail(2) // 16 GPUs, rail-only: cross-rail pairs must relay
	n := top.NumGPUs()

	// Synthetic MoE dispatch: token counts are power-law skewed across
	// experts (GPUs), so some pairs carry 100× more than others.
	rng := rand.New(rand.NewSource(1))
	bytes := make([][]float64, n)
	for s := range bytes {
		bytes[s] = make([]float64, n)
		for d := range bytes[s] {
			if s == d {
				continue
			}
			tokens := 1 << uint(rng.Intn(8)) // 1..128 "token blocks"
			bytes[s][d] = float64(tokens) * 64 * 1024
		}
	}

	demand, err := asym.AlltoAllV(bytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AlltoAllv demand: %d pairs, %.1f MB total, skew max/min = %gx\n",
		len(demand.Pairs), demand.TotalBytes()/1e6, 128.0)

	sched, err := asym.Synthesize(top, demand)
	if err != nil {
		log.Fatal(err)
	}
	relays := len(sched.Transfers) - len(demand.Pairs)
	fmt.Printf("schedule: %d transfers (%d PXN relays for cross-rail pairs)\n",
		len(sched.Transfers), relays)

	res, err := syccl.Simulate(top, sched, syccl.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completion: %.3g ms\n", res.Time*1e3)
	for d := 0; d < top.NumDims(); d++ {
		fmt.Printf("  dim %d (%s) utilization: %.1f%%\n", d, top.Dim(d).Name, res.Utilization(top, d)*100)
	}
}
