// AlltoAll XML pipeline: synthesize an AlltoAll schedule on a
// rail-optimized cluster (where cross-rail traffic must relay over
// NVLink, as NCCL PXN does), export it as MSCCL-executor XML, parse it
// back, and verify the round trip is faithful — the §6 executor path.
package main

import (
	"fmt"
	"log"
	"os"

	"syccl"
)

func main() {
	top := syccl.H800Rail(2) // 16 GPUs, rails only: AlltoAll needs relays
	n := top.NumGPUs()
	col := syccl.AlltoAll(n, float64(1<<20)) // 1 MB per GPU pair

	res, err := syccl.Synthesize(top, col, syccl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized AlltoAll: %d transfers, predicted %.3g ms, busbw %.1f GBps\n",
		len(res.Schedule.Transfers), res.Time*1e3, syccl.BusBandwidth(col, res.Time)/1e9)

	// Export with runtime parameters for the executor.
	data, err := syccl.ToXML(res.Schedule, syccl.RuntimeParams{Name: "a2a-h800", Proto: "Simple", NChannels: 4})
	if err != nil {
		log.Fatal(err)
	}
	path := "alltoall.xml"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))

	// Round trip: parse and re-validate, as the executor's loader would.
	parsed, params, err := syccl.FromXML(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := parsed.Validate(col); err != nil {
		log.Fatalf("round-tripped schedule invalid: %v", err)
	}
	sim, err := syccl.Simulate(top, parsed, syccl.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %q (channels=%d), re-simulated %.3g ms\n",
		params.Name, params.NChannels, sim.Time*1e3)
}
