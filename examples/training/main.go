// Training: estimate end-to-end iteration time for GPT3-6.7B under data
// parallelism on the 16-GPU A100 testbed, with collectives scheduled by
// NCCL versus SyCCL — the §7.5 evaluation in miniature.
package main

import (
	"fmt"
	"log"

	"syccl"
	"syccl/internal/collective"
	"syccl/internal/nccl"
	"syccl/internal/sim"
	"syccl/internal/workload"
)

func main() {
	top := syccl.A100Clos(2)
	cfg := workload.Config{
		Model:          workload.GPT3_6B7(),
		Kind:           workload.DataParallel,
		Degree:         top.NumGPUs(),
		ComputeSeconds: 0.580, // calibrated compute term (DESIGN.md #5)
	}

	trace, err := cfg.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s per-iteration collectives:\n", cfg.Name())
	for _, call := range trace {
		fmt.Printf("  %d × %v (%.1f MB per GPU slice)\n",
			call.Count, call.Collective.Kind, call.Collective.ChunkSize/1e6)
	}

	ncclTimer := func(col *collective.Collective) (float64, error) {
		_, t, err := nccl.Schedule(top, col, sim.DefaultOptions())
		return t, err
	}
	sycclTimer := func(col *collective.Collective) (float64, error) {
		res, err := syccl.Synthesize(top, col, syccl.Options{})
		if err != nil {
			return 0, err
		}
		return res.Time, nil
	}

	ncclIter, err := cfg.IterationSeconds(ncclTimer)
	if err != nil {
		log.Fatal(err)
	}
	sycclIter, err := cfg.IterationSeconds(sycclTimer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration time with NCCL:  %.1f ms\n", ncclIter*1e3)
	fmt.Printf("iteration time with SyCCL: %.1f ms\n", sycclIter*1e3)
	fmt.Printf("end-to-end speedup: %.1f%%\n", (ncclIter-sycclIter)/ncclIter*100)
}
