// Quickstart: synthesize an AllGather schedule for the paper's 16-GPU
// A100 testbed, inspect the result, and compare it with NCCL's fixed ring
// — the headline scenario of §2.1 and Fig 14(a).
package main

import (
	"fmt"
	"log"

	"syccl"
)

func main() {
	// The 16-GPU A100 testbed (Fig 13a): 2 servers × 8 GPUs, NVSwitch
	// inside, 4×200 Gbps NICs per server behind a ToR.
	top := syccl.A100Clos(2)
	fmt.Println("topology:", top)

	// A 64 MB AllGather: each GPU contributes 4 MB.
	col := syccl.AllGather(top.NumGPUs(), float64(64<<20)/float64(top.NumGPUs()))
	fmt.Println("collective:", col)

	// Synthesize with the paper's default knobs (E1=3.0, E2=0.5,
	// R1=20%, R2=8).
	res, err := syccl.Synthesize(top, col, syccl.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: %d transfers across %d chunk pieces\n",
		len(res.Schedule.Transfers), len(res.Schedule.Pieces))
	fmt.Printf("predicted completion: %.3g ms\n", res.Time*1e3)
	fmt.Printf("bus bandwidth: %.1f GBps\n", syccl.BusBandwidth(col, res.Time)/1e9)
	fmt.Printf("synthesis phases: search=%v combine=%v solve=%v+%v\n",
		res.Phases.Search, res.Phases.Combine, res.Phases.Solve1, res.Phases.Solve2)
	fmt.Printf("winning combination: %d sketches\n", len(res.Combination.Sketches))

	// Export the schedule in MSCCL-executor XML form (§6).
	xmlData, err := syccl.ToXML(res.Schedule, syccl.RuntimeParams{Name: "quickstart-ag", NChannels: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSCCL XML: %d bytes (feed to syccl-sim or MSCCL-executor)\n", len(xmlData))
}
