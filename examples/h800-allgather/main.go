// H800 AllGather sweep: reproduce the Fig 15(a) story on the 64-GPU
// rail-optimized H800 cluster — NCCL's 63-hop ring against SyCCL's
// synthesized two-dimensional schedules, across data sizes.
//
// Expected shape: at small sizes SyCCL wins by an order of magnitude
// (2 hops instead of 63); at large sizes it wins by matching the 3.6:1
// NVLink:network bandwidth ratio that the ring's fixed 7:1 split wastes.
package main

import (
	"fmt"
	"log"

	"syccl"
	"syccl/internal/metrics"
	"syccl/internal/nccl"
	"syccl/internal/sim"
)

func main() {
	top := syccl.H800Rail(8) // 8 servers × 8 H800 GPUs
	n := top.NumGPUs()
	fmt.Println("topology:", top)
	fmt.Printf("%8s %14s %14s %9s\n", "size", "NCCL GBps", "SyCCL GBps", "speedup")

	for size := float64(64 << 10); size <= 4<<30; size *= 16 {
		col := syccl.AllGather(n, size/float64(n))

		_, ncclTime, err := nccl.Schedule(top, col, sim.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := syccl.Synthesize(top, col, syccl.Options{})
		if err != nil {
			log.Fatal(err)
		}

		ncclBW := metrics.BusBandwidth(col.Kind, n, size, ncclTime)
		sycclBW := syccl.BusBandwidth(col, res.Time)
		fmt.Printf("%8s %14.1f %14.1f %8.1f×\n",
			label(size), ncclBW/1e9, sycclBW/1e9, sycclBW/ncclBW)
	}
}

func label(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%gG", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%gM", b/(1<<20))
	default:
		return fmt.Sprintf("%gK", b/(1<<10))
	}
}
