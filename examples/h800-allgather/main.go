// H800 AllGather sweep: reproduce the Fig 15(a) story on the 64-GPU
// rail-optimized H800 cluster — NCCL's 63-hop ring against SyCCL's
// synthesized two-dimensional schedules, across data sizes.
//
// Expected shape: at small sizes SyCCL wins by an order of magnitude
// (2 hops instead of 63); at large sizes it wins by matching the 3.6:1
// NVLink:network bandwidth ratio that the ring's fixed 7:1 split wastes.
//
// With -big, the example additionally walks the 64-SERVER cluster
// (H800Rail(64), 512 GPUs) — the Fig 15(b) scale, where the merged
// AllGather sub-demands are far over the exact engine's MaxBinaries gate.
// The flow backend (Options.SolverMode = SolverFlow, the -solver flow
// CLI knob) solves them by LP relaxation plus guided rounding: the
// synthesis finishes in well under a minute and the schedule validates
// against the exhaustive delivery oracle. Budget a few minutes for the
// oracle itself at this scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"syccl"
	"syccl/internal/metrics"
	"syccl/internal/nccl"
	"syccl/internal/sim"
	"syccl/internal/verify"
)

func main() {
	big := flag.Bool("big", false, "also synthesize the 512-GPU (64-server) cluster via the flow backend")
	flag.Parse()

	top := syccl.H800Rail(8) // 8 servers × 8 H800 GPUs
	n := top.NumGPUs()
	fmt.Println("topology:", top)
	fmt.Printf("%8s %14s %14s %9s\n", "size", "NCCL GBps", "SyCCL GBps", "speedup")

	for size := float64(64 << 10); size <= 4<<30; size *= 16 {
		col := syccl.AllGather(n, size/float64(n))

		_, ncclTime, err := nccl.Schedule(top, col, sim.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := syccl.Synthesize(top, col, syccl.Options{})
		if err != nil {
			log.Fatal(err)
		}

		ncclBW := metrics.BusBandwidth(col.Kind, n, size, ncclTime)
		sycclBW := syccl.BusBandwidth(col, res.Time)
		fmt.Printf("%8s %14.1f %14.1f %8.1f×\n",
			label(size), ncclBW/1e9, sycclBW/1e9, sycclBW/ncclBW)
	}

	if *big {
		bigCluster()
	}
}

// bigCluster synthesizes a 1 GiB AllGather on the 64-server (512-GPU)
// H800 cluster through the flow backend, under a 60-second budget, and
// validates the result against the delivery oracle.
func bigCluster() {
	top := syccl.H800Rail(64)
	n := top.NumGPUs()
	fmt.Printf("\n64-server walkthrough: %v\n", top)
	col := syccl.AllGather(n, float64(1<<30)/float64(n))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	res, err := syccl.SynthesizeContext(ctx, top, col, syccl.Options{SolverMode: syccl.SolverFlow})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized in %v (partial=%t, %d transfers, predicted %.3gs, busbw %.1f GBps)\n",
		time.Since(start).Round(time.Millisecond), res.Partial,
		len(res.Schedule.Transfers), res.Time, syccl.BusBandwidth(col, res.Time)/1e9)

	fmt.Println("validating against the delivery oracle (minutes at this scale)...")
	if err := verify.CheckSchedule(col, res.Schedule); err != nil {
		log.Fatal("oracle rejected the schedule: ", err)
	}
	fmt.Println("oracle: schedule delivers every chunk to every destination")
}

func label(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%gG", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%gM", b/(1<<20))
	default:
		return fmt.Sprintf("%gK", b/(1<<10))
	}
}
