module syccl

go 1.22
