package syccl_test

import (
	"fmt"

	"syccl"
)

// ExampleSynthesize synthesizes an AllGather schedule for one 8-GPU
// server and reports its structure.
func ExampleSynthesize() {
	top := syccl.SingleServer(8)
	col := syccl.AllGather(top.NumGPUs(), 1<<20) // 1 MiB per GPU
	res, err := syccl.Synthesize(top, col, syccl.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", res.Schedule.Validate(col) == nil)
	// Every GPU must receive the 7 other chunks: ≥ 56 deliveries however
	// the winning schedule splits them.
	fmt.Println("enough transfers:", len(res.Schedule.Transfers) >= 56)
	// Output:
	// valid: true
	// enough transfers: true
}

// ExampleToXML shows the MSCCL-executor export path.
func ExampleToXML() {
	top := syccl.SingleServer(4)
	col := syccl.Broadcast(top.NumGPUs(), 0, 4096)
	res, err := syccl.Synthesize(top, col, syccl.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	data, err := syccl.ToXML(res.Schedule, syccl.RuntimeParams{Name: "bc"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	parsed, params, err := syccl.FromXML(data)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("name:", params.Name)
	fmt.Println("round trip valid:", parsed.Validate(col) == nil)
	// Output:
	// name: bc
	// round trip valid: true
}

// ExampleBusBandwidth computes the nccl-tests metric from a predicted
// completion time.
func ExampleBusBandwidth() {
	col := syccl.AllGather(16, 1<<26) // 64 MiB per GPU, 1 GiB aggregate
	busbw := syccl.BusBandwidth(col, 0.010)
	fmt.Printf("%.1f GBps\n", busbw/1e9)
	// Output:
	// 100.7 GBps
}
