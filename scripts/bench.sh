#!/usr/bin/env bash
# Solver micro-benchmarks, recorded to BENCH_solver.json at the repo root,
# plus the engine warm-vs-cold comparison, recorded to BENCH_engine.json.
#
#   scripts/bench.sh          # full run (3 samples each), writes both JSONs
#   scripts/bench.sh -quick   # one short sample to temp files (the ci.sh smoke)
#
# BENCH_solver.json records the best ns/op per benchmark plus the
# solver-internal metrics the benchmarks report (lp.pivots per solve,
# milp.nodes per search), alongside the frozen pre-warm-start baseline so
# the speedup is auditable without digging through git history.
# BENCH_engine.json records a cold Plan (fresh engine, full pipeline)
# against a warm Plan (shared engine, cache-served) on the same workload,
# with the resulting speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

count=3
bench_flags=()
out_json=BENCH_solver.json
engine_json=BENCH_engine.json
if [ "${1:-}" = "-quick" ]; then
    count=1
    bench_flags=(-benchtime 1x)
    out_json=$(mktemp -t bench_smoke.XXXXXX.json)
    engine_json=$(mktemp -t bench_engine_smoke.XXXXXX.json)
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench '^(BenchmarkLP|BenchmarkMILP)' -count "$count" \
    "${bench_flags[@]+"${bench_flags[@]}"}" \
    ./internal/lp/ ./internal/milp/ | tee "$raw"
go test -run '^$' -bench '^(BenchmarkFlowBound|BenchmarkFlowSolve)$' -count "$count" \
    "${bench_flags[@]+"${bench_flags[@]}"}" \
    . | tee -a "$raw"
go test -run '^$' -bench '^(BenchmarkFig14a|BenchmarkFig14aExact|BenchmarkFlowPruneH800AG)$' -count "$count" -benchtime 1x \
    . | tee -a "$raw"

awk '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[++n] = name }
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
    for (i = 5; i + 1 <= NF; i += 2) {
        metric[name "|" $(i + 1)] = $(i) + 0
        key = $(i + 1)
        if (!((name "|" key) in mseen)) {
            mseen[name "|" key] = 1
            mnames[name] = mnames[name] (mnames[name] == "" ? "" : " ") key
        }
    }
}
END {
    printf "{\n  \"benchmarks\": {\n"
    for (k = 1; k <= n; k++) {
        name = names[k]
        printf "    \"%s\": {\"ns_per_op\": %.0f", name, best[name]
        cnt = split(mnames[name], mm, " ")
        for (j = 1; j <= cnt; j++)
            printf ", \"%s\": %g", mm[j], metric[name "|" mm[j]]
        printf "}%s\n", (k < n ? "," : "")
    }
    printf "  },\n"
    bounds = metric["FlowPruneH800AG|bounds"] + 0
    pruned = metric["FlowPruneH800AG|pruned_lb"] + 0
    printf "  \"flow\": {\n"
    printf "    \"bound_ns\": %.0f,\n", best["FlowBound"]
    printf "    \"flow_solve_ns\": %.0f,\n", best["FlowSolve"]
    printf "    \"h800_ag_bounds\": %d,\n", bounds
    printf "    \"h800_ag_pruned_lb\": %d,\n", pruned
    printf "    \"h800_ag_prune_rate\": %.3f,\n", (bounds > 0 ? pruned / bounds : 0)
    printf "    \"h800_ag_milp_builds_avoided\": %d,\n", metric["FlowPruneH800AG|milp.avoided"] + 0
    printf "    \"fig14a_exact_ns\": %.0f,\n", best["Fig14aExact"]
    printf "    \"fig14a_auto_ns\": %.0f,\n", best["Fig14a"]
    printf "    \"note\": \"bound_ns = one epoch-domain relaxation on an 8-GPU AllGather sub-demand; flow_solve_ns = the flow backend on a 16-GPU sub-demand 10x over the MaxBinaries gate; h800_ag_* = auto-mode candidate-pruning internals on the 64-GPU rail AllGather; fig14a_exact_ns = the sweep with all flow components disabled (-solver exact), fig14a_auto_ns with them on. The Fig14a sweep is dominated by the fixed TECCL comparison inside it (~1s of the total), so both modes sit within noise of the untouched pre-flow tree on the same machine.\"\n"
    printf "  },\n"
    printf "  \"baseline\": {\n"
    printf "    \"LPSolve\": {\"ns_per_op\": 572177, \"lp.pivots\": 88},\n"
    printf "    \"LPResolveBounds\": {\"ns_per_op\": 9956901},\n"
    printf "    \"MILPKnapsack\": {\"ns_per_op\": 27738238, \"lp.pivots\": 41976, \"milp.nodes\": 1621},\n"
    printf "    \"MILPSchedule\": {\"ns_per_op\": 1108886, \"lp.pivots\": 308, \"milp.nodes\": 7},\n"
    printf "    \"Fig14a\": {\"ns_per_op\": 1030727391}\n"
    printf "  },\n"
    printf "  \"baseline_note\": \"pre-warm-start solver core (clone-and-rebuild per B&B node); best of 3 on the same machine. Fig14a carries a fixed TECCL time-budget floor (2 x 300ms), so solver gains show up muted there.\"\n"
    printf "}\n"
}
' "$raw" > "$out_json"

echo "wrote $out_json"

eraw=$(mktemp)
trap 'rm -f "$raw" "$eraw"' EXIT
go test -run '^$' -bench '^BenchmarkEngine(Cold|Warm)Plan$' -count "$count" \
    "${bench_flags[@]+"${bench_flags[@]}"}" \
    ./internal/engine/ | tee "$eraw"

awk '
/^BenchmarkEngineColdPlan/ { ns = $3 + 0; if (cold == 0 || ns < cold) cold = ns }
/^BenchmarkEngineWarmPlan/ { ns = $3 + 0; if (warm == 0 || ns < warm) warm = ns }
END {
    printf "{\n"
    printf "  \"workload\": \"AllGather 1MiB on h800-small-8gpu\",\n"
    printf "  \"cold_plan\": {\"ns_per_op\": %.0f},\n", cold
    printf "  \"warm_plan\": {\"ns_per_op\": %.0f},\n", warm
    printf "  \"warm_speedup\": %.2f,\n", (warm > 0 ? cold / warm : 0)
    printf "  \"note\": \"cold = fresh engine per plan (full sketch search + solves); warm = shared engine, second identical plan served from the sketch and sub-schedule caches. Best ns/op per variant.\"\n"
    printf "}\n"
}
' "$eraw" > "$engine_json"

echo "wrote $engine_json"
