#!/usr/bin/env bash
# Solver micro-benchmarks, recorded to BENCH_solver.json at the repo root.
#
#   scripts/bench.sh          # full run (3 samples each), writes BENCH_solver.json
#   scripts/bench.sh -quick   # one short sample to a temp file (the ci.sh smoke)
#
# The JSON records the best ns/op per benchmark plus the solver-internal
# metrics the benchmarks report (lp.pivots per solve, milp.nodes per
# search), alongside the frozen pre-warm-start baseline so the speedup is
# auditable without digging through git history.
set -euo pipefail
cd "$(dirname "$0")/.."

count=3
bench_flags=()
out_json=BENCH_solver.json
if [ "${1:-}" = "-quick" ]; then
    count=1
    bench_flags=(-benchtime 1x)
    out_json=$(mktemp -t bench_smoke.XXXXXX.json)
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench '^(BenchmarkLP|BenchmarkMILP)' -count "$count" \
    "${bench_flags[@]+"${bench_flags[@]}"}" \
    ./internal/lp/ ./internal/milp/ | tee "$raw"
go test -run '^$' -bench '^BenchmarkFig14a$' -count "$count" -benchtime 1x \
    . | tee -a "$raw"

awk '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; names[++n] = name }
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
    for (i = 5; i + 1 <= NF; i += 2) {
        metric[name "|" $(i + 1)] = $(i) + 0
        key = $(i + 1)
        if (!((name "|" key) in mseen)) {
            mseen[name "|" key] = 1
            mnames[name] = mnames[name] (mnames[name] == "" ? "" : " ") key
        }
    }
}
END {
    printf "{\n  \"benchmarks\": {\n"
    for (k = 1; k <= n; k++) {
        name = names[k]
        printf "    \"%s\": {\"ns_per_op\": %d", name, best[name]
        cnt = split(mnames[name], mm, " ")
        for (j = 1; j <= cnt; j++)
            printf ", \"%s\": %g", mm[j], metric[name "|" mm[j]]
        printf "}%s\n", (k < n ? "," : "")
    }
    printf "  },\n"
    printf "  \"baseline\": {\n"
    printf "    \"LPSolve\": {\"ns_per_op\": 572177, \"lp.pivots\": 88},\n"
    printf "    \"LPResolveBounds\": {\"ns_per_op\": 9956901},\n"
    printf "    \"MILPKnapsack\": {\"ns_per_op\": 27738238, \"lp.pivots\": 41976, \"milp.nodes\": 1621},\n"
    printf "    \"MILPSchedule\": {\"ns_per_op\": 1108886, \"lp.pivots\": 308, \"milp.nodes\": 7},\n"
    printf "    \"Fig14a\": {\"ns_per_op\": 1030727391}\n"
    printf "  },\n"
    printf "  \"baseline_note\": \"pre-warm-start solver core (clone-and-rebuild per B&B node); best of 3 on the same machine. Fig14a carries a fixed TECCL time-budget floor (2 x 300ms), so solver gains show up muted there.\"\n"
    printf "}\n"
}
' "$raw" > "$out_json"

echo "wrote $out_json"
