#!/usr/bin/env bash
# Serving-layer load test, recorded to BENCH_serve.json at the repo root.
#
#   scripts/loadtest.sh          # full run, writes BENCH_serve.json
#   scripts/loadtest.sh -quick   # small run to a temp file (the ci.sh smoke)
#
# The generator (cmd/syccl-loadtest) spins up an in-process daemon on a
# loopback port, drives a cold phase (distinct demands — every request is
# a genuine synthesis), a streaming phase (stream:true cold demands timed
# to their first incumbent event, recorded as ttfi p50/p99), and a warm
# phase (one demand repeated — after the first, everything is coalesced
# or store-served), and records p50/p99 latency per phase plus the
# coalescing hit rate read from /statsz.
set -euo pipefail
cd "$(dirname "$0")/.."

out_json=BENCH_serve.json
args=(-cold 16 -stream 16 -warm 256 -concurrency 8)
if [ "${1:-}" = "-quick" ]; then
    out_json=$(mktemp -t bench_serve_smoke.XXXXXX.json)
    args=(-cold 4 -stream 4 -warm 16 -concurrency 4)
fi

go run ./cmd/syccl-loadtest "${args[@]}" -out "$out_json"
