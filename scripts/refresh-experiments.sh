#!/bin/sh
# Regenerate the evaluation artifacts recorded in EXPERIMENTS.md.
#
# Usage:
#   scripts/refresh-experiments.sh            # quick sweeps (minutes)
#   scripts/refresh-experiments.sh --full     # paper-scale sweeps (hours)
set -e
cd "$(dirname "$0")/.."

MODE="-quick"
OUT="bench_quick.txt"
if [ "$1" = "--full" ]; then
	MODE=""
	OUT="bench_full.txt"
fi

echo "running syccl-bench ${MODE:-(full)} → $OUT"
go run ./cmd/syccl-bench -run all $MODE | tee "$OUT"
echo "done; paste the relevant rows into EXPERIMENTS.md"
