#!/usr/bin/env bash
# Capture pprof profiles from a running syccl-serve admin listener.
#
#   scripts/pprof.sh                          # heap + goroutine snapshot
#   scripts/pprof.sh cpu 10                   # 10s CPU profile
#   ADMIN=http://127.0.0.1:6060 scripts/pprof.sh
#
# Profiles land in ./profiles/ stamped with the capture time; inspect
# with `go tool pprof <file>`.
set -euo pipefail

ADMIN=${ADMIN:-http://127.0.0.1:6060}
kind=${1:-snapshot}
seconds=${2:-10}

outdir=profiles
mkdir -p "$outdir"
stamp=$(date +%Y%m%d-%H%M%S)

case "$kind" in
snapshot)
    curl -fsS "$ADMIN/debug/pprof/heap" -o "$outdir/heap-$stamp.pb.gz"
    curl -fsS "$ADMIN/debug/pprof/goroutine" -o "$outdir/goroutine-$stamp.pb.gz"
    echo "wrote $outdir/heap-$stamp.pb.gz and $outdir/goroutine-$stamp.pb.gz"
    ;;
cpu)
    echo "profiling CPU for ${seconds}s..."
    curl -fsS "$ADMIN/debug/pprof/profile?seconds=$seconds" -o "$outdir/cpu-$stamp.pb.gz"
    echo "wrote $outdir/cpu-$stamp.pb.gz"
    ;;
trace)
    echo "tracing for ${seconds}s..."
    curl -fsS "$ADMIN/debug/pprof/trace?seconds=$seconds" -o "$outdir/trace-$stamp.out"
    echo "wrote $outdir/trace-$stamp.out (view with: go tool trace)"
    ;;
*)
    echo "usage: scripts/pprof.sh [snapshot|cpu|trace] [seconds]" >&2
    exit 2
    ;;
esac
