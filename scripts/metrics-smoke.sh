#!/usr/bin/env bash
# Telemetry smoke: boots the real daemon, drives one request, and then
# asserts the /metrics exposition is well-formed and complete —
# required families present, every sample line parseable, no label
# drift on the request counters — and that the request's id resolves
# through the flight recorder. Finishes with a warm-reboot phase:
# SIGTERM the daemon, boot a second one on the same -cache-dir, and
# assert the replay is served from the restored store with an identical
# schedule. Run from anywhere; used by ci.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
ADMIN_PORT=${ADMIN_PORT:-18081}
BASE="http://127.0.0.1:$PORT"
ADMIN="http://127.0.0.1:$ADMIN_PORT"

workdir=$(mktemp -d -t syccl_metrics_smoke.XXXXXX)
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/syccl-serve" ./cmd/syccl-serve
"$workdir/syccl-serve" -addr "127.0.0.1:$PORT" -admin "127.0.0.1:$ADMIN_PORT" \
    -cache-dir "$workdir/cache" \
    -access-log "$workdir/access.log" >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || { echo "daemon never came up"; cat "$workdir/daemon.log"; exit 1; }

echo "== drive one synthesis =="
req_id=$(curl -fsS -D - -o "$workdir/resp.json" "$BASE/v1/synthesize" \
    -d '{"topology":"dgx4","collective":"allgather","size":"1M","include_schedule":true}' \
    | tr -d '\r' | awk 'tolower($1)=="x-syccl-request:"{print $2}')
[ -n "$req_id" ] || { echo "FAIL: no X-Syccl-Request header"; exit 1; }
echo "request id: $req_id"

echo "== drive one streaming synthesis (NDJSON) =="
curl -fsS -D "$workdir/stream.hdr" -o "$workdir/stream.ndjson" "$BASE/v1/synthesize" \
    -d '{"topology":"dgx4","collective":"allreduce","size":"1M","stream":true}'
grep -qi '^content-type: application/x-ndjson' "$workdir/stream.hdr" \
    || { echo "FAIL: stream response not NDJSON"; exit 1; }
grep -q '"event":"incumbent"' "$workdir/stream.ndjson" \
    || { echo "FAIL: stream carried no incumbent events"; exit 1; }
tail -n 1 "$workdir/stream.ndjson" | grep -q '"event":"final"' \
    || { echo "FAIL: stream not terminated by a final event"; exit 1; }
echo "ok"

echo "== drive one replan (degraded dgx4) =="
# A degrade delta, not a kill: every dgx4 GPU has exactly one NVLink, so
# any single-link kill would disconnect a GPU and be rejected.
curl -fsS -o "$workdir/replan.json" "$BASE/v1/replan" \
    -d '{"topology":"dgx4","collective":"allgather","size":"1M","topology_delta":"slow:0-4*4"}'
grep -q '"replan":{"delta":"slow:0-4\*4"' "$workdir/replan.json" \
    || { echo "FAIL: replan response missing bookkeeping"; cat "$workdir/replan.json"; exit 1; }
# Infeasible deltas are structured 400s.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/replan" \
    -d '{"topology":"dgx4","collective":"allgather","size":"1M","topology_delta":"kill:0-4"}')
[ "$code" = "400" ] || { echo "FAIL: disconnecting delta returned $code, want 400"; exit 1; }
echo "ok"

echo "== scrape /metrics =="
curl -fsS "$BASE/metrics" > "$workdir/metrics.txt"

echo "-- required families --"
for fam in \
    syccl_requests_total \
    syccl_request_duration_seconds \
    syccl_solve_duration_seconds \
    syccl_queue_wait_seconds \
    syccl_inflight_requests \
    syccl_store_entries \
    syccl_flights_active \
    syccl_draining \
    syccl_process_uptime_seconds \
    syccl_go_goroutines \
    syccl_go_heap_alloc_bytes \
    syccl_go_gc_cycles_total \
    syccl_go_gc_pause_seconds_total \
    syccl_engine_plans_total \
    syccl_engine_cache_lookups_total \
    syccl_engine_cache_evictions_total \
    syccl_solver_bounds_total \
    syccl_persist_loads_total \
    syccl_persist_stores_total \
    syccl_persist_corrupt_total \
    syccl_persist_snapshots_total \
    syccl_persist_entries \
    syccl_persist_bytes \
    syccl_prewarm_total \
    syccl_incumbents_total \
    syccl_time_to_first_incumbent_seconds \
    syccl_replan_total \
    syccl_replan_reuse_ratio
do
    grep -q "^# TYPE $fam " "$workdir/metrics.txt" || { echo "FAIL: family $fam missing"; exit 1; }
done
echo "all present"

echo "-- exposition well-formed --"
bad=$(grep -v '^#' "$workdir/metrics.txt" | grep -v '^$' \
    | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$' || true)
if [ -n "$bad" ]; then
    echo "FAIL: malformed exposition lines:"; echo "$bad"; exit 1
fi
echo "ok"

echo "-- no label drift on request counters --"
# Every label key used on syccl_requests_total must come from the
# contract set; a new key here means a dashboard-breaking change.
drift=$(grep '^syccl_requests_total{' "$workdir/metrics.txt" \
    | sed 's/^[^{]*{//; s/}.*//' | tr ',' '\n' | sed 's/=.*//' | sort -u \
    | grep -Ev '^(collective|topology|cache|outcome)$' || true)
if [ -n "$drift" ]; then
    echo "FAIL: unknown labels on syccl_requests_total: $drift"; exit 1
fi
grep -q '^syccl_requests_total{collective="allgather",topology="dgx4",cache="cold",outcome="ok"} 1$' "$workdir/metrics.txt" \
    || { echo "FAIL: cold request not counted"; exit 1; }
echo "ok"

echo "-- no label drift on persist counters --"
pdrift=$(grep -E '^syccl_persist_[a-z_]+\{' "$workdir/metrics.txt" \
    | sed 's/^[^{]*{//; s/}.*//' | tr ',' '\n' | sed 's/=.*//' | sort -u \
    | grep -Ev '^(result|kind)$' || true)
if [ -n "$pdrift" ]; then
    echo "FAIL: unknown labels on syccl_persist_*: $pdrift"; exit 1
fi
# The cold solve wrote its sub-schedules through to disk.
grep -q '^syccl_persist_stores_total{result="written"} [1-9]' "$workdir/metrics.txt" \
    || { echo "FAIL: persist write-through not counted"; exit 1; }
echo "ok"

echo "-- no label drift on incumbent counters --"
idrift=$(grep '^syccl_incumbents_total{' "$workdir/metrics.txt" \
    | sed 's/^[^{]*{//; s/}.*//' | tr ',' '\n' | sed 's/=.*//' | sort -u \
    | grep -Ev '^(source)$' || true)
if [ -n "$idrift" ]; then
    echo "FAIL: unknown labels on syccl_incumbents_total: $idrift"; exit 1
fi
# Both solves so far were leader flights, so incumbents were published
# and the first one was timed.
grep -Eq '^syccl_incumbents_total\{source="[a-z]+"\} [1-9]' "$workdir/metrics.txt" \
    || { echo "FAIL: no incumbents counted"; exit 1; }
grep -Eq '^syccl_time_to_first_incumbent_seconds_count [1-9]' "$workdir/metrics.txt" \
    || { echo "FAIL: time-to-first-incumbent never observed"; exit 1; }
echo "ok"

echo "-- no label drift on replan counters --"
rdrift=$(grep '^syccl_replan_total{' "$workdir/metrics.txt" \
    | sed 's/^[^{]*{//; s/}.*//' | tr ',' '\n' | sed 's/=.*//' | sort -u \
    | grep -Ev '^(result)$' || true)
if [ -n "$rdrift" ]; then
    echo "FAIL: unknown labels on syccl_replan_total: $rdrift"; exit 1
fi
# One successful replan was driven above; the rejected delta fails in
# DecodeRequest-style validation before the engine, so error stays 0.
grep -q '^syccl_replan_total{result="ok"} 1$' "$workdir/metrics.txt" \
    || { echo "FAIL: replan not counted as ok"; exit 1; }
grep -Eq '^syccl_replan_reuse_ratio_count [1-9]' "$workdir/metrics.txt" \
    || { echo "FAIL: replan reuse ratio never observed"; exit 1; }
echo "ok"

echo "== flight recorder =="
curl -fsS "$BASE/debug/requests/$req_id" > "$workdir/record.json"
grep -q '"serve.plan"' "$workdir/record.json" || { echo "FAIL: record has no span tree"; exit 1; }
curl -fsS "$BASE/debug/requests" > "$workdir/requests.json" || { echo "FAIL: /debug/requests"; exit 1; }
grep -q "$req_id" "$workdir/requests.json" || { echo "FAIL: request absent from listing"; exit 1; }
echo "ok"

echo "== admin listener (pprof + mirrored scrape) =="
curl -fsS "$ADMIN/debug/pprof/" >/dev/null || { echo "FAIL: pprof index"; exit 1; }
# Capture before grepping: `curl | grep -q` races curl's write against
# grep's early exit, and with pipefail the resulting EPIPE (curl 23)
# fails the pipeline even though the match succeeded.
curl -fsS "$ADMIN/metrics" > "$workdir/admin_metrics.txt" || { echo "FAIL: admin /metrics scrape"; exit 1; }
grep -q '^syccl_requests_total' "$workdir/admin_metrics.txt" || { echo "FAIL: admin /metrics"; exit 1; }
echo "ok"

echo "== access log =="
[ -s "$workdir/access.log" ] || { echo "FAIL: access log empty"; exit 1; }
grep -q "\"id\":\"$req_id\"" "$workdir/access.log" || { echo "FAIL: request id not logged"; exit 1; }
echo "ok"

echo "== warm reboot (SIGTERM, second daemon on same -cache-dir) =="
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
[ -f "$workdir/cache/snapshots/schedule-store.snap" ] \
    || { echo "FAIL: drain wrote no schedule-store snapshot"; exit 1; }

"$workdir/syccl-serve" -addr "127.0.0.1:$PORT" -admin "127.0.0.1:$ADMIN_PORT" \
    -cache-dir "$workdir/cache" >"$workdir/daemon2.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || { echo "daemon2 never came up"; cat "$workdir/daemon2.log"; exit 1; }

curl -fsS "$BASE/statsz" > "$workdir/statsz2.json"
grep -q '"restored":0' "$workdir/statsz2.json" \
    && { echo "FAIL: second boot restored nothing from the snapshot"; exit 1; }

curl -fsS -o "$workdir/resp2.json" "$BASE/v1/synthesize" \
    -d '{"topology":"dgx4","collective":"allgather","size":"1M","include_schedule":true}'
grep -q '"cached":true' "$workdir/resp2.json" \
    || { echo "FAIL: rebooted daemon did not serve from the restored store"; exit 1; }
# Bit-identical replay: the schedule payloads must match byte for byte.
sed 's/.*"schedule"://' "$workdir/resp.json"  > "$workdir/sched1.json"
sed 's/.*"schedule"://' "$workdir/resp2.json" > "$workdir/sched2.json"
cmp -s "$workdir/sched1.json" "$workdir/sched2.json" \
    || { echo "FAIL: restored schedule differs from the original"; exit 1; }

curl -fsS "$BASE/metrics" > "$workdir/metrics2.txt"
grep -q '^syccl_requests_total{collective="allgather",topology="dgx4",cache="store",outcome="ok"} 1$' "$workdir/metrics2.txt" \
    || { echo "FAIL: warm-boot hit not counted as cache=store"; exit 1; }
grep -q '^syccl_persist_snapshots_total{result="restored"} 1$' "$workdir/metrics2.txt" \
    || { echo "FAIL: snapshot restore not counted"; exit 1; }
# The store answered before the engine: zero plans on the new daemon.
grep -q '^syccl_engine_plans_total{outcome="ok"} 0$' "$workdir/metrics2.txt" \
    || { echo "FAIL: warm-boot replay still ran an engine plan"; exit 1; }
echo "ok"

kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
echo "metrics smoke passed."
