#!/usr/bin/env bash
# CI gate: formatting, vet, build, the full test suite, a race-detector
# shard over the concurrency-heavy packages, and a short native-fuzzing
# smoke over internal/verify. Run from anywhere; operates on the
# repository root. FUZZTIME (default 10s) bounds each fuzz target.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-10s}

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (core/engine/milp/obs/persist/serve/sim/solve/verify shard) =="
go test -race ./internal/core/ ./internal/engine/ ./internal/milp/ ./internal/obs/ ./internal/persist/ ./internal/serve/ ./internal/sim/ ./internal/solve/ ./internal/verify/

echo "== fuzz smoke ($FUZZTIME per target) =="
go test ./internal/verify/ -run='^$' -fuzz='^FuzzValidate$' -fuzztime="$FUZZTIME"
go test ./internal/verify/ -run='^$' -fuzz='^FuzzSimParity$' -fuzztime="$FUZZTIME"
go test ./internal/serve/ -run='^$' -fuzz='^FuzzDecodeRequest$' -fuzztime="$FUZZTIME"
go test ./internal/serve/ -run='^$' -fuzz='^FuzzDecodeStream$' -fuzztime="$FUZZTIME"
go test ./internal/topology/ -run='^$' -fuzz='^FuzzDecodeDelta$' -fuzztime="$FUZZTIME"
go test ./internal/solve/ -run='^$' -fuzz='^FuzzFlowRound$' -fuzztime="$FUZZTIME"
go test ./internal/persist/ -run='^$' -fuzz='^FuzzPersistDecode$' -fuzztime="$FUZZTIME"

echo "== bench smoke =="
# One short sample per solver benchmark (writes to a temp file, not
# BENCH_solver.json): catches benchmark bit-rot without CI-grade noise
# overwriting the recorded numbers.
scripts/bench.sh -quick

echo "== loadtest smoke =="
# A small in-process serving run (temp file, not BENCH_serve.json):
# exercises the daemon + load generator end to end.
scripts/loadtest.sh -quick

echo "== telemetry smoke =="
# Boots the real daemon and asserts /metrics is well-formed (families
# present, every line parseable, no label drift), request ids resolve
# through the flight recorder, and the admin listener serves pprof.
scripts/metrics-smoke.sh

echo "CI checks passed."
