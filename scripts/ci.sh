#!/usr/bin/env bash
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One short sample per solver benchmark (writes to a temp file, not
# BENCH_solver.json): catches benchmark bit-rot without CI-grade noise
# overwriting the recorded numbers.
scripts/bench.sh -quick

echo "CI checks passed."
