// Package profiler implements the network profiler component of §6: it
// measures the α (latency) and β (1/bandwidth) parameters of each
// topology dimension by timing SendRecv transfers across a sweep of chunk
// sizes and fitting the Hockney model t = α + β·s by least squares.
//
// The paper's profiler drives real NICs and NVLinks; here the timing
// source is the α-β simulator itself (DESIGN.md substitution #1), with
// optional multiplicative noise so the regression is exercised the way
// real jittery measurements would.
package profiler

import (
	"fmt"
	"math/rand"

	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

// Measurement is one timed transfer.
type Measurement struct {
	Bytes   float64
	Seconds float64
}

// Profile is the fitted model for one dimension.
type Profile struct {
	Dim   int
	Alpha float64
	Beta  float64
	R2    float64 // coefficient of determination of the fit
}

// Options configures profiling.
type Options struct {
	// Sizes is the chunk-size sweep; nil uses 1 KiB … 64 MiB doublings.
	Sizes []float64
	// Noise is the relative stddev of multiplicative measurement noise
	// (0 = exact).
	Noise float64
	// Repeats per size (default 3; more helps under noise).
	Repeats int
	// Seed for the noise generator.
	Seed int64
}

func (o Options) withDefaults() Options {
	if len(o.Sizes) == 0 {
		for s := 1024.0; s <= 64<<20; s *= 2 {
			o.Sizes = append(o.Sizes, s)
		}
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	return o
}

// MeasureDim times point-to-point transfers inside one group of the
// dimension across the size sweep.
func MeasureDim(top *topology.Topology, dim int, opts Options) ([]Measurement, error) {
	opts = opts.withDefaults()
	if dim < 0 || dim >= top.NumDims() {
		return nil, fmt.Errorf("profiler: dimension %d out of range (topology has %d)", dim, top.NumDims())
	}
	d := top.Dim(dim)
	var src, dst int
	found := false
	for _, grp := range d.Groups {
		if len(grp) >= 2 {
			src, dst = grp[0], grp[1]
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("profiler: dimension %d has no 2-GPU group", dim)
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(dim)))
	var out []Measurement
	for _, size := range opts.Sizes {
		for r := 0; r < opts.Repeats; r++ {
			s := &schedule.Schedule{NumGPUs: top.NumGPUs()}
			p := s.AddPiece(size, 0)
			s.AddTransfer(schedule.Transfer{Src: src, Dst: dst, Piece: p, Dim: dim})
			res, err := sim.Simulate(top, s, sim.Options{})
			if err != nil {
				return nil, err
			}
			t := res.Time
			if opts.Noise > 0 {
				t *= 1 + opts.Noise*rng.NormFloat64()
				if t <= 0 {
					t = res.Time
				}
			}
			out = append(out, Measurement{Bytes: size, Seconds: t})
		}
	}
	return out, nil
}

// Fit performs the least-squares regression t = α + β·s.
func Fit(ms []Measurement) (alpha, beta, r2 float64, err error) {
	if len(ms) < 2 {
		return 0, 0, 0, fmt.Errorf("profiler: need ≥2 measurements, got %d", len(ms))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(ms))
	for _, m := range ms {
		sx += m.Bytes
		sy += m.Seconds
		sxx += m.Bytes * m.Bytes
		sxy += m.Bytes * m.Seconds
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("profiler: degenerate size sweep")
	}
	beta = (n*sxy - sx*sy) / den
	alpha = (sy - beta*sx) / n
	// R².
	meanY := sy / n
	var ssTot, ssRes float64
	for _, m := range ms {
		pred := alpha + beta*m.Bytes
		ssRes += (m.Seconds - pred) * (m.Seconds - pred)
		ssTot += (m.Seconds - meanY) * (m.Seconds - meanY)
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else {
		r2 = 1
	}
	return alpha, beta, r2, nil
}

// ProfileTopology measures and fits every dimension.
func ProfileTopology(top *topology.Topology, opts Options) ([]Profile, error) {
	out := make([]Profile, 0, top.NumDims())
	for d := 0; d < top.NumDims(); d++ {
		ms, err := MeasureDim(top, d, opts)
		if err != nil {
			return nil, err
		}
		a, b, r2, err := Fit(ms)
		if err != nil {
			return nil, err
		}
		out = append(out, Profile{Dim: d, Alpha: a, Beta: b, R2: r2})
	}
	return out, nil
}

// Apply writes fitted parameters back into a topology clone, the way the
// paper's pipeline feeds profiled values into the synthesizer.
func Apply(top *topology.Topology, profiles []Profile) {
	for _, p := range profiles {
		if p.Dim >= 0 && p.Dim < top.NumDims() {
			top.Dim(p.Dim).Alpha = p.Alpha
			top.Dim(p.Dim).Beta = p.Beta
		}
	}
}
