package profiler

import (
	"math"
	"testing"

	"syccl/internal/topology"
)

func TestProfileRecoversParameters(t *testing.T) {
	top := topology.H800Rail(2)
	profiles, err := ProfileTopology(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != top.NumDims() {
		t.Fatalf("profiles = %d, want %d", len(profiles), top.NumDims())
	}
	for _, p := range profiles {
		dim := top.Dim(p.Dim)
		if math.Abs(p.Alpha-dim.Alpha)/dim.Alpha > 0.01 {
			t.Errorf("dim %d alpha %g, want %g", p.Dim, p.Alpha, dim.Alpha)
		}
		if math.Abs(p.Beta-dim.Beta)/dim.Beta > 0.01 {
			t.Errorf("dim %d beta %g, want %g", p.Dim, p.Beta, dim.Beta)
		}
		if p.R2 < 0.999 {
			t.Errorf("dim %d fit R²=%g", p.Dim, p.R2)
		}
	}
}

func TestProfileUnderNoise(t *testing.T) {
	top := topology.H800Rail(2)
	profiles, err := ProfileTopology(top, Options{Noise: 0.05, Repeats: 9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		dim := top.Dim(p.Dim)
		if math.Abs(p.Beta-dim.Beta)/dim.Beta > 0.15 {
			t.Errorf("dim %d noisy beta %g too far from %g", p.Dim, p.Beta, dim.Beta)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, _, err := Fit(nil); err == nil {
		t.Error("accepted empty measurements")
	}
	same := []Measurement{{1024, 1e-5}, {1024, 1e-5}}
	if _, _, _, err := Fit(same); err == nil {
		t.Error("accepted degenerate sweep")
	}
}

func TestApply(t *testing.T) {
	top := topology.H800Rail(2)
	Apply(top, []Profile{{Dim: 0, Alpha: 1e-6, Beta: 1e-11}})
	if top.Dim(0).Alpha != 1e-6 || top.Dim(0).Beta != 1e-11 {
		t.Error("Apply did not write parameters")
	}
}

func TestMeasureDimRejectsSingletons(t *testing.T) {
	top := topology.SingleServer(8)
	if _, err := MeasureDim(top, 5, Options{}); err == nil {
		t.Error("accepted missing dimension")
	}
}
