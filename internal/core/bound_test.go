package core

import (
	"context"
	"strings"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/topology"
)

// TestSolverModesProduceValidSchedules: every -solver mode yields a
// complete, validated schedule on every collective shape — exact may drop
// oversized candidates and flow rounds a relaxation, but the pipeline's
// output contract is mode-independent.
func TestSolverModesProduceValidSchedules(t *testing.T) {
	top := topology.H800Small(2)
	n := top.NumGPUs()
	cols := []*collective.Collective{
		collective.AllGather(n, 1<<20),
		collective.Broadcast(n, 0, 1<<20),
		collective.AlltoAll(n, 1<<18),
	}
	for _, mode := range []SolverMode{SolverAuto, SolverExact, SolverFlow} {
		for _, col := range cols {
			res := synth(t, top, col, Options{Seed: 3, SolverMode: mode})
			if err := res.Schedule.Validate(col); err != nil {
				t.Errorf("%v/%v: %v", mode, col.Kind, err)
			}
		}
	}
}

// TestCandidateBoundSound: the flow bound on the winning combination
// never exceeds the winner's own simulated time — the property that makes
// pruning against the incumbent's achieved time conservative.
func TestCandidateBoundSound(t *testing.T) {
	cases := []struct {
		top *collective.Collective
		t   *topology.Topology
	}{
		{collective.AllGather(16, 1<<20), topology.A100Clos(2)},
		{collective.Broadcast(16, 0, 1<<22), topology.A100Clos(2)},
		{collective.AllGather(topology.H800Small(2).NumGPUs(), 4<<10), topology.H800Small(2)},
		{collective.AlltoAll(topology.H800Small(2).NumGPUs(), 1<<16), topology.H800Small(2)},
	}
	for _, c := range cases {
		res := synth(t, c.t, c.top, Options{Seed: 11})
		if res.Combination == nil {
			continue // injected fixed schedule won; no combination to bound
		}
		lb := candidateTimeBound(context.Background(), c.t, c.top, res.Combination, Options{})
		if lb > res.Time*(1+1e-9) {
			t.Errorf("%v on %s: bound %g exceeds achieved simulated time %g",
				c.top.Kind, c.t.Name, lb, res.Time)
		}
	}
}

// TestPruningPreservesSchedule: bound pruning only removes candidates
// that cannot win the fine pass, so SolverAuto (pruning on) and
// SolverAuto with pruning effectively disabled must produce byte-identical
// schedules. SolverExact also disables pruning but additionally swaps the
// fine engine, so the comparison here pins the pruning step alone via the
// deterministic fingerprint across Workers counts.
func TestPruningPreservesSchedule(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
	var refFP string
	for _, workers := range []int{1, 2, 8} {
		res := synth(t, top, col, Options{Seed: 7, Workers: workers, SolverMode: SolverAuto})
		fp := scheduleFingerprint(res)
		if refFP == "" {
			refFP = fp
			continue
		}
		if fp != refFP {
			t.Errorf("workers=%d: schedule differs under SolverAuto pruning", workers)
		}
	}
}

// TestSolverFlowDeterministicAcrossWorkers: the flow backend (LP-guided
// rounding) keeps the cross-worker determinism contract.
func TestSolverFlowDeterministicAcrossWorkers(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	var refFP string
	for _, workers := range []int{1, 2, 8} {
		res := synth(t, top, col, Options{Seed: 7, Workers: workers, SolverMode: SolverFlow})
		fp := scheduleFingerprint(res)
		if refFP == "" {
			refFP = fp
			continue
		}
		if fp != refFP {
			t.Errorf("workers=%d: flow-mode schedule differs", workers)
		}
	}
}

// TestSolverExactSurfacesTooLarge: with the flow fallback disabled, the
// merged AllGather cells of a 16-GPU Clos blow the MaxBinaries gate; the
// run must still succeed from smaller candidates while reporting the
// rejected solves with their binary counts.
func TestSolverExactSurfacesTooLarge(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	res := synth(t, top, col, Options{Seed: 1, SolverMode: SolverExact})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
	if res.Stats.TooLarge == 0 {
		t.Fatalf("expected MaxBinaries rejections, stats = %+v", res.Stats)
	}
	if len(res.Stats.SolveErrors) == 0 {
		t.Fatal("TooLarge counted but no SolveErrors surfaced")
	}
	for _, e := range res.Stats.SolveErrors {
		if !strings.Contains(e, "binaries") || !strings.Contains(e, "MaxBinaries") {
			t.Errorf("error lacks binary-count detail: %q", e)
		}
	}
	// The same run under auto reroutes those instances to the flow
	// backend: nothing too large, nothing lost.
	auto := synth(t, top, col, Options{Seed: 1, SolverMode: SolverAuto})
	if auto.Stats.TooLarge != 0 || len(auto.Stats.SolveErrors) != 0 {
		t.Errorf("auto mode surfaced solver failures: %+v", auto.Stats)
	}
	if auto.Time > res.Time*(1+1e-9) {
		t.Errorf("auto (flow fallback) worse than exact-with-drops: %g > %g", auto.Time, res.Time)
	}
}

// TestParseSolverMode covers the CLI parsing contract.
func TestParseSolverMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want SolverMode
	}{{"", SolverAuto}, {"auto", SolverAuto}, {"exact", SolverExact}, {"flow", SolverFlow}} {
		got, err := ParseSolverMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSolverMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseSolverMode("simulated-annealing"); err == nil {
		t.Error("bad mode accepted")
	}
	if SolverFlow.String() != "flow" || SolverAuto.String() != "auto" || SolverExact.String() != "exact" {
		t.Error("SolverMode.String mismatch")
	}
}

// TestBoundStatsPopulated: candidate bounds are evaluated whenever the
// pruning pass runs (auto mode with more than one surviving candidate).
func TestBoundStatsPopulated(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
	res := synth(t, top, col, Options{Seed: 2})
	if res.Stats.BoundsComputed == 0 {
		t.Errorf("no bounds computed: %+v", res.Stats)
	}
	exact := synth(t, top, col, Options{Seed: 2, SolverMode: SolverExact})
	if exact.Stats.BoundsComputed != 0 || exact.Stats.PrunedLB != 0 {
		t.Errorf("exact mode ran the bound pass: %+v", exact.Stats)
	}
}
