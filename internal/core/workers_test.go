package core

import (
	"fmt"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/solve"
	"syccl/internal/topology"
)

// scheduleFingerprint renders every transfer so two schedules can be
// compared byte-for-byte, not just by predicted time.
func scheduleFingerprint(res *Result) string {
	s := fmt.Sprintf("time=%.12g epochs? n=%d\n", res.Time, res.Schedule.NumGPUs)
	for i, tr := range res.Schedule.Transfers {
		s += fmt.Sprintf("%d: %+v\n", i, tr)
	}
	return s
}

// TestSynthesizeDeterministicAcrossWorkers: candidate realization fans
// out over Workers goroutines, but schedules, predicted times, and cache
// statistics must be identical for any worker count — the contract that
// makes parallel synthesis safe to enable by default.
func TestSynthesizeDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		top  *topology.Topology
		mk   func(n int) *collective.Collective
	}{
		{"allgather", topology.H800Small(2), func(n int) *collective.Collective {
			return collective.AllGather(n, 1<<20)
		}},
		{"alltoall", topology.H800Small(2), func(n int) *collective.Collective {
			return collective.AlltoAll(n, 1<<18)
		}},
		{"broadcast", topology.A100Clos(2), func(n int) *collective.Collective {
			return collective.Broadcast(n, 0, 1<<20)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := tc.mk(tc.top.NumGPUs())
			var refFP string
			var refStats Stats
			for _, workers := range []int{1, 2, 8} {
				res := synth(t, tc.top, col, Options{Seed: 7, Workers: workers})
				fp := scheduleFingerprint(res)
				if refFP == "" {
					refFP, refStats = fp, res.Stats
					continue
				}
				if fp != refFP {
					t.Errorf("workers=%d: schedule differs from workers=1", workers)
				}
				if res.Stats.SolverCalls != refStats.SolverCalls ||
					res.Stats.CacheHits != refStats.CacheHits ||
					res.Stats.CacheMisses != refStats.CacheMisses {
					t.Errorf("workers=%d: stats %+v, workers=1 gave %+v", workers, res.Stats, refStats)
				}
			}
		})
	}
}

// TestSynthesizeDeterministicAcrossMILPWorkers: the nested knob — exact
// branch-and-bound parallelism inside each sub-demand solve — must not
// change the synthesized schedule either.
func TestSynthesizeDeterministicAcrossMILPWorkers(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	var refFP string
	for _, mw := range []int{1, 4} {
		res := synth(t, top, col, Options{Seed: 7, Engine: solve.EngineExact, MILPWorkers: mw})
		fp := scheduleFingerprint(res)
		if refFP == "" {
			refFP = fp
			continue
		}
		if fp != refFP {
			t.Errorf("MILPWorkers=%d: schedule differs from MILPWorkers=1", mw)
		}
	}
}
