package core

import (
	"math/rand"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/topology"
)

// TestPipelineFuzz sweeps random small topologies and collectives through
// the full pipeline, asserting the synthesized schedule always validates.
// This is the repository's strongest end-to-end invariant: whatever the
// shape, SyCCL must never emit a schedule that fails demand satisfaction,
// availability ordering, or dependency acyclicity.
func TestPipelineFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	shapes := []struct{ servers, gpus int }{
		{2, 2}, {2, 4}, {3, 2}, {4, 2}, {2, 8}, {3, 4},
	}
	kinds := []collective.Kind{
		collective.KindBroadcast, collective.KindAllGather, collective.KindAlltoAll,
		collective.KindReduce, collective.KindGather, collective.KindReduceScatter,
		collective.KindScatter,
	}
	for trial := 0; trial < 12; trial++ {
		shape := shapes[rng.Intn(len(shapes))]
		top := topology.Build(topology.Config{
			Name:          "fuzz",
			Servers:       shape.servers,
			GPUsPerServer: shape.gpus,
			NVAlpha:       topology.NVAlpha,
			NVBeta:        1 / topology.H800NVBandwidth,
			NetAlpha:      topology.NetAlpha,
			NetBeta:       1 / topology.H800NetBandwidth,
		})
		n := top.NumGPUs()
		kind := kinds[rng.Intn(len(kinds))]
		size := float64(int64(1)<<10) * float64(int64(1)<<uint(rng.Intn(12))) // 1KB..4MB per chunk-ish
		root := rng.Intn(n)

		var col *collective.Collective
		switch kind {
		case collective.KindBroadcast:
			col = collective.Broadcast(n, root, size)
		case collective.KindAllGather:
			col = collective.AllGather(n, size)
		case collective.KindAlltoAll:
			col = collective.AlltoAll(n, size)
		case collective.KindReduce:
			col = collective.Reduce(n, root, size)
		case collective.KindGather:
			col = collective.Gather(n, root, size)
		case collective.KindReduceScatter:
			col = collective.ReduceScatter(n, size)
		case collective.KindScatter:
			col = collective.Scatter(n, root, size)
		}

		res, err := Synthesize(top, col, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d (%v on %d×%d, size %g, root %d): %v",
				trial, kind, shape.servers, shape.gpus, size, root, err)
		}
		if err := res.Schedule.Validate(col); err != nil {
			t.Fatalf("trial %d (%v on %d×%d): invalid schedule: %v",
				trial, kind, shape.servers, shape.gpus, err)
		}
		if res.Time <= 0 {
			t.Fatalf("trial %d: non-positive time", trial)
		}
	}
}
