package core

import (
	"context"
	"sort"

	"syccl/internal/collective"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

// buildCombinations generates the candidate sketch combinations for a
// collective (§4.2, §4.3):
//
//   - every ranked sketch alone (best for latency-bound small sizes);
//   - its replication balanced across groups (one-to-all collectives) or
//     its all-roots expansion (all-to-all collectives);
//   - integrated multi-flavor combinations whose chunk ratios match the
//     per-dimension bandwidth shares (best for bandwidth-bound sizes).
//
// Since "it is difficult to classify chunk sizes as small or large, SyCCL
// generates both types of combinations for all chunk sizes" — the
// simulator-ranked evaluation picks the winner.
func buildCombinations(ctx context.Context, top *topology.Topology, col *collective.Collective,
	sketches []*sketch.Sketch, allToAll, scatter bool, opts Options) []*sketch.Combination {

	ranked := rankSketches(top, col.ChunkSize, sketches)
	take := opts.MaxCombos
	if take > len(ranked) {
		take = len(ranked)
	}

	var combos []*sketch.Combination
	if allToAll {
		for _, sk := range ranked[:take] {
			combo, missing := sketch.ExpandAllToAll(top, sk)
			if len(missing) > 0 {
				// Degraded symmetry: some roots are unreachable through
				// any verified automorphism. Fill them with a per-root
				// sketch search; drop the candidate if a root stays
				// uncoverable.
				combo = fillMissingRoots(ctx, top, col.ChunkSize, combo, missing, scatter, opts)
				if combo == nil {
					continue
				}
			}
			combos = append(combos, combo)
		}
	} else {
		for _, sk := range ranked[:take] {
			combos = append(combos, sketch.Single(sk))
			if rep := sketch.Replicate(top, sk, 0); len(rep.Sketches) > 1 {
				combos = append(combos, rep)
			}
		}
	}

	// Integrated flavors: pick, per physical port class, the combination
	// that loads it most (relative to its bandwidth share) and let the
	// §4.2 step-2 allocation split the chunk across them.
	byClass := map[int]*sketch.Combination{}
	var classes []int
	for _, c := range combos {
		w := c.DimWorkload(top)
		cw := make(map[int]float64)
		var total float64
		for d, v := range w {
			cw[top.Dim(d).PortClass] += v
			total += v
		}
		if total == 0 {
			continue
		}
		dom, domScore := -1, 0.0
		for cl, v := range cw {
			share := top.ClassShare(cl)
			if share <= 0 {
				continue
			}
			score := v / total / share
			if score > domScore {
				domScore = score
				dom = cl
			}
		}
		if dom >= 0 && byClass[dom] == nil {
			byClass[dom] = c
			classes = append(classes, dom)
		}
	}
	if len(classes) >= 2 {
		sort.Ints(classes)
		flavors := make([]*sketch.Combination, 0, len(classes))
		for _, cl := range classes {
			flavors = append(flavors, byClass[cl])
		}
		if integ := sketch.Integrate(top, flavors); integ != nil {
			combos = append(combos, integ)
		}
		// Pairwise integrations when more than two flavors exist.
		if len(flavors) > 2 {
			for i := 0; i < len(flavors); i++ {
				for j := i + 1; j < len(flavors); j++ {
					if integ := sketch.Integrate(top, []*sketch.Combination{flavors[i], flavors[j]}); integ != nil {
						combos = append(combos, integ)
					}
				}
			}
		}
	}

	if len(combos) > 2*opts.MaxCombos {
		combos = combos[:2*opts.MaxCombos]
	}
	return combos
}

// fillMissingRoots completes a partially-expanded all-to-all combination
// (§4.3 under broken symmetry): for every root the symmetry action could
// not reach, it runs the cached per-root sketch search and grafts the
// best-ranked sketch rooted there. Returns nil when any root remains
// uncoverable (the candidate cannot form a complete all-to-all).
func fillMissingRoots(ctx context.Context, top *topology.Topology, chunkBytes float64, combo *sketch.Combination,
	missing []int, scatter bool, opts Options) *sketch.Combination {

	for _, r := range missing {
		found := false
		for _, cand := range rankSketches(top, chunkBytes, searchCached(ctx, top, r, scatter, opts)) {
			if cand.Root == r && cand.Validate(top) == nil {
				combo.Sketches = append(combo.Sketches, cand)
				combo.Fracs = append(combo.Fracs, 1)
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	// Restore ascending root order for deterministic assembly.
	sort.SliceStable(combo.Sketches, func(a, b int) bool {
		return combo.Sketches[a].Root < combo.Sketches[b].Root
	})
	return combo
}

// rankSketches orders sketches by a cheap analytic estimate of their
// single-chunk completion time at the given chunk size: per stage, the
// slowest sub-demand's α + β·s·(deliveries per source); stages sum.
// Ties break on the structural descriptor for determinism.
func rankSketches(top *topology.Topology, chunkBytes float64, sketches []*sketch.Sketch) []*sketch.Sketch {
	type scored struct {
		sk   *sketch.Sketch
		est  float64
		desc string
	}
	list := make([]scored, len(sketches))
	for i, sk := range sketches {
		list[i] = scored{sk: sk, est: estimateTime(top, chunkBytes, sk), desc: sk.Descriptor()}
	}
	sort.SliceStable(list, func(a, b int) bool {
		if list[a].est != list[b].est {
			return list[a].est < list[b].est
		}
		return list[a].desc < list[b].desc
	})
	out := make([]*sketch.Sketch, len(list))
	for i, s := range list {
		out[i] = s.sk
	}
	return out
}

func estimateTime(top *topology.Topology, chunkBytes float64, sk *sketch.Sketch) float64 {
	var subtree map[int]int
	if sk.Scatter {
		subtree = sk.SubtreeSizes(top)
	}
	total := 0.0
	for _, st := range sk.Stages {
		worst := 0.0
		for _, sd := range st {
			dim := top.Dim(sd.Dim)
			deliveries := float64(len(sd.Dsts))
			if sk.Scatter {
				deliveries = 0
				for _, d := range sd.Dsts {
					deliveries += float64(subtree[d])
				}
			}
			perSrc := deliveries / float64(len(sd.Srcs))
			if perSrc < 1 {
				perSrc = 1
			}
			t := dim.AlphaOf(sd.Group) + dim.BetaOf(sd.Group)*chunkBytes*perSrc
			if t > worst {
				worst = t
			}
		}
		total += worst
	}
	return total
}
