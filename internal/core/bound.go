package core

import (
	"context"
	"math"

	"syccl/internal/collective"
	"syccl/internal/obs"
	"syccl/internal/sketch"
	"syccl/internal/solve"
	"syccl/internal/topology"
)

// Flow-relaxation candidate pruning: between the coarse and fine passes,
// each surviving candidate gets a provable lower bound on the simulated
// completion time of ANY schedule realizing its combination. Candidates
// whose bound already exceeds the incumbent's simulated coarse time can
// never win the fine pass (fine times only count when strictly better
// than the incumbent's), so their MILPs are never built. When the
// incumbent itself meets its own bound and every rival is pruned, the
// fine pass is skipped entirely — the coarse schedule is optimal under
// the port model and the run reports ProvedOptimal.
//
// The bound combines three sound ingredients:
//
//   - per cell, the seconds-domain flow relaxation solve.FlowTimeBound
//     (LP port work in β·b units plus one α tail), valid against the α-β
//     simulator regardless of epoch discretization or block pipelining,
//     since every required delivery still moves its full payload through
//     the destination's ingress port;
//   - across stages, required-delivery ingress load summed per physical
//     (dimension, GPU) port: cells of different stages in the same
//     dimension contend for the same ports, so their loads add;
//   - per piece, an arrival chain: a stage's transfer of a piece cannot
//     start before some designated source holds it, so walking cells in
//     stage order and propagating min-over-sources arrival plus one
//     α+β·b hop lower-bounds the piece's last delivery. Unknown sources
//     (original holders) contribute 0, keeping the chain conservative.
//
// Pruning is deterministic (the LP is) and strictly conservative: a
// candidate is dropped only when its bound strictly exceeds the
// incumbent's achieved time, so the fine-pass winner — and the final
// schedule bytes — are identical with and without pruning, for any
// Workers setting. A cancelled bound LP yields 0 (no bound, keep the
// candidate); anytime semantics are unaffected.

// boundSig versions the seconds-domain bound in the engine's bound
// cache. The bound depends only on the demand (isomorph keys embed α, β,
// and the piece structure), so the signature is a formulation tag.
const boundSig = "sec1"

// demandTimeBound returns the cached-or-computed seconds lower bound for
// one cell demand, or 0 when unavailable (cancelled LP).
func demandTimeBound(ctx context.Context, d *solve.Demand, opts Options) float64 {
	if opts.BoundCache != nil {
		if v, ok := opts.BoundCache.Lookup(d, boundSig); ok {
			return v
		}
	}
	sec, _, err := solve.FlowTimeBound(ctx, d)
	if err != nil {
		return 0
	}
	if opts.BoundCache != nil && ctx.Err() == nil {
		opts.BoundCache.Store(d, boundSig, sec)
	}
	return sec
}

// candidateTimeBound bounds the simulated completion time of any
// schedule realizing the combination, or returns 0 when no bound is
// available (nil combination — injected fixed schedules — or an
// unrealizable assembly).
func candidateTimeBound(ctx context.Context, top *topology.Topology, col *collective.Collective,
	combo *sketch.Combination, opts Options) float64 {

	if combo == nil {
		return 0
	}
	a, err := newAssembly(top, col, combo)
	if err != nil {
		return 0
	}
	best := 0.0
	type port struct{ dim, gpu int }
	type delivery struct{ dim, piece, gpu int }
	type arrival struct{ piece, gpu int }
	load := make(map[port]float64)
	alphaOf := make(map[port]float64)
	seen := make(map[delivery]bool)
	arr := make(map[arrival]float64)
	// a.keys is sorted by ascending stage, so arrival chains propagate
	// forward; same-stage cells processed out of dependency order only
	// loosen the chain (unseen sources read as 0), never tighten it.
	for _, k := range a.keys {
		cd := a.cells[k]
		if sec := demandTimeBound(ctx, cd.demand, opts); sec > best {
			best = sec
		}
		dim := top.Dim(k.dim)
		alpha, beta := dim.AlphaOf(k.group), dim.BetaOf(k.group)
		for _, p := range cd.demand.Pieces {
			start := math.Inf(1)
			for _, s := range p.Srcs {
				if v := arr[arrival{p.ID, cd.gpus[s]}]; v < start {
					start = v
				}
			}
			if math.IsInf(start, 1) {
				start = 0
			}
			hop := start + alpha + beta*p.Bytes
			for _, j := range p.Dsts {
				d := delivery{k.dim, p.ID, cd.gpus[j]}
				if !seen[d] {
					seen[d] = true
					pk := port{k.dim, cd.gpus[j]}
					load[pk] += beta * p.Bytes
					alphaOf[pk] = alpha
				}
				ak := arrival{p.ID, cd.gpus[j]}
				if old, ok := arr[ak]; !ok || hop < old {
					arr[ak] = hop
				}
			}
		}
	}
	for pt, l := range load {
		if v := l + alphaOf[pt]; v > best {
			best = v
		}
	}
	for _, v := range arr {
		if v > best {
			best = v
		}
	}
	return best
}

// pruneByBound drops every non-incumbent candidate whose flow bound
// proves it cannot beat the incumbent's coarse simulated time, and
// reports whether the incumbent's optimality is proved (its own bound
// met and no rival left). keep must be sorted by ascending time with at
// least one entry; the returned slice preserves order. The incumbent's
// own lower bound is returned (0 when unavailable) for the StopWithin
// gate and for incumbent-stream events.
func pruneByBound(ctx context.Context, top *topology.Topology, col *collective.Collective,
	keep []*candidate, opts Options, stats *Stats, parent *obs.Span) ([]*candidate, bool, float64) {

	bs := parent.Child("solve.bound")
	defer bs.End()
	incumbent := keep[0]
	incLB := candidateTimeBound(ctx, top, col, incumbent.combo, opts)
	if incLB > 0 {
		stats.BoundsComputed++
	}
	kept := keep[:1:1]
	for _, c := range keep[1:] {
		lb := candidateTimeBound(ctx, top, col, c.combo, opts)
		if lb > 0 {
			stats.BoundsComputed++
		}
		if lb > incumbent.time {
			stats.PrunedLB++
			continue
		}
		kept = append(kept, c)
	}
	opts.Obs.Count("candidates.pruned_lb", float64(stats.PrunedLB))
	bs.SetInt("bounds", int64(stats.BoundsComputed))
	bs.SetInt("pruned", int64(stats.PrunedLB))
	bs.SetFloat("incumbent-lb", incLB)
	proved := incLB > 0 && incumbent.time <= incLB*(1+1e-9) && len(kept) == 1
	if proved {
		bs.SetStr("outcome", "proved-optimal")
	}
	return kept, proved, incLB
}
