package core

import (
	"fmt"
	"sort"

	"syccl/internal/collective"
	"syccl/internal/schedule"
	"syccl/internal/sketch"
	"syccl/internal/solve"
	"syccl/internal/topology"
)

// cellKey identifies a merged sub-demand: all sketch sub-demands of one
// combination that share a stage, dimension, and group are solved jointly
// because they compete for the same ports (§5.1).
type cellKey struct {
	stage, dim, group int
}

// pieceRef ties a schedule piece to the chunk(s) it covers.
type pieceRef struct {
	sketchIdx int
	finalDst  int // -1 for broadcast pieces; the final destination for scatter pieces
}

// assembly is the intermediate state of turning a sketch combination into
// a schedule.
type assembly struct {
	top   *topology.Topology
	col   *collective.Collective
	combo *sketch.Combination

	sched    *schedule.Schedule
	pieceIdx map[pieceRef]int

	// demands holds one merged demand per cell plus bookkeeping to map
	// local GPU indices back to global ones.
	cells map[cellKey]*cellDemand
	keys  []cellKey
}

type cellDemand struct {
	key    cellKey
	gpus   []int       // sorted global GPU IDs of the group
	local  map[int]int // global → local index
	demand *solve.Demand
}

// newAssembly decomposes the combination into schedule pieces and merged
// per-cell demands. Broadcast-style sketches contribute one piece per
// sketch (a fraction of the root's chunk); Scatter-style sketches
// contribute one piece per (sketch, final destination), routed along the
// sketch's canonical tree.
func newAssembly(top *topology.Topology, col *collective.Collective, combo *sketch.Combination) (*assembly, error) {
	a := &assembly{
		top:      top,
		col:      col,
		combo:    combo,
		sched:    &schedule.Schedule{NumGPUs: top.NumGPUs()},
		pieceIdx: make(map[pieceRef]int),
		cells:    make(map[cellKey]*cellDemand),
	}

	// chunkBySrcDst resolves collective chunks.
	chunkBySrc := map[int]int{}
	chunkBySrcDst := map[[2]int]int{}
	for _, ch := range col.Chunks {
		chunkBySrc[ch.Src] = ch.ID
		for _, d := range ch.Dsts {
			chunkBySrcDst[[2]int{ch.Src, d}] = ch.ID
		}
	}

	cell := func(k cellKey) *cellDemand {
		cd, ok := a.cells[k]
		if !ok {
			dim := top.Dim(k.dim)
			gpus := dim.Groups[k.group]
			local := make(map[int]int, len(gpus))
			for i, g := range gpus {
				local[g] = i
			}
			cd = &cellDemand{
				key:   k,
				gpus:  gpus,
				local: local,
				demand: &solve.Demand{
					NumGPUs: len(gpus),
					Alpha:   dim.AlphaOf(k.group),
					Beta:    dim.BetaOf(k.group),
				},
			}
			a.cells[k] = cd
			a.keys = append(a.keys, k)
		}
		return cd
	}

	for j, sk := range a.combo.Sketches {
		frac := a.combo.Fracs[j]
		if frac <= 0 {
			continue
		}
		bytes := frac * col.ChunkSize
		if !sk.Scatter {
			// One piece per sketch: the fraction of the root's chunk.
			chunkID, ok := chunkBySrc[sk.Root]
			if !ok {
				return nil, fmt.Errorf("core: no chunk sourced at sketch root %d", sk.Root)
			}
			p := pieceRef{sketchIdx: j, finalDst: -1}
			a.pieceIdx[p] = a.sched.AddPiece(bytes, chunkID)
			for k, st := range sk.Stages {
				for _, sd := range st {
					cd := cell(cellKey{k, sd.Dim, sd.Group})
					dp := solve.Piece{ID: a.pieceIdx[p], Bytes: bytes}
					for _, s := range sd.Srcs {
						dp.Srcs = append(dp.Srcs, cd.local[s])
					}
					for _, d := range sd.Dsts {
						dp.Dsts = append(dp.Dsts, cd.local[d])
					}
					cd.demand.Pieces = append(cd.demand.Pieces, dp)
				}
			}
			continue
		}

		// Scatter sketch: walk stages tracking each final destination's
		// current holder along the canonical tree.
		subtree := scatterSubtrees(sk)
		holder := map[int]int{} // finalDst → current holder
		pieces := map[int]int{} // finalDst → schedule piece index
		for _, v := range sortedKeys(subtree[sk.Root]) {
			if v == sk.Root {
				continue
			}
			chunkID, ok := chunkBySrcDst[[2]int{sk.Root, v}]
			if !ok {
				return nil, fmt.Errorf("core: no chunk for pair %d→%d", sk.Root, v)
			}
			pieces[v] = a.sched.AddPiece(bytes, chunkID)
			holder[v] = sk.Root
		}
		for k, st := range sk.Stages {
			for _, sd := range st {
				cd := cell(cellKey{k, sd.Dim, sd.Group})
				for _, w := range sd.Dsts {
					for _, v := range sortedKeys(subtree[w]) {
						h := holder[v]
						cd.demand.Pieces = append(cd.demand.Pieces, solve.Piece{
							ID:    pieces[v],
							Bytes: bytes,
							Srcs:  []int{cd.local[h]},
							Dsts:  []int{cd.local[w]},
						})
						holder[v] = w
					}
				}
			}
		}
	}

	sort.Slice(a.keys, func(x, y int) bool {
		kx, ky := a.keys[x], a.keys[y]
		if kx.stage != ky.stage {
			return kx.stage < ky.stage
		}
		if kx.dim != ky.dim {
			return kx.dim < ky.dim
		}
		return kx.group < ky.group
	})
	return a, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// scatterSubtrees computes, per GPU, the set of final destinations (plus
// itself) routed through it under the sketch's canonical parenting.
func scatterSubtrees(sk *sketch.Sketch) map[int]map[int]bool {
	parent := map[int]int{}
	for _, st := range sk.Stages {
		for _, sd := range st {
			for d, p := range sd.ParentAssignment() {
				parent[d] = p
			}
		}
	}
	out := map[int]map[int]bool{sk.Root: {sk.Root: true}}
	for v := range parent {
		out[v] = map[int]bool{v: true}
	}
	for v := range parent {
		// Walk up the tree marking v in every ancestor's subtree.
		cur := v
		for {
			p, ok := parent[cur]
			if !ok {
				break
			}
			out[p][v] = true
			cur = p
		}
	}
	return out
}

// build assembles the final schedule from per-cell sub-schedules, wiring
// cross-stage and intra-stage dependencies and per-port ordering.
func (a *assembly) build(solved map[cellKey]*solve.SubSchedule) (*schedule.Schedule, error) {
	const stageStride = 1 << 24
	// deliver[(piece, gpu)] = transfer index that delivered the piece.
	deliver := map[[2]int]int{}
	// origins: the GPU a schedule piece starts on.
	origin := make([]int, len(a.sched.Pieces))
	for ref, idx := range a.pieceIdx {
		origin[idx] = a.combo.Sketches[ref.sketchIdx].Root
	}
	// Scatter pieces share the sketch root as origin; broadcast too — but
	// pieces were registered per ref, so fill any gaps from chunk sources.
	for i, p := range a.sched.Pieces {
		if len(p.Chunks) == 1 {
			origin[i] = a.col.Chunks[p.Chunks[0]].Src
		}
	}

	for _, k := range a.keys {
		cd := a.cells[k]
		sub, ok := solved[k]
		if !ok {
			return nil, fmt.Errorf("core: cell %+v not solved", k)
		}
		// Process in (Start, Arrive) order so intra-stage relays see
		// their deliveries first.
		transfers := append([]solve.Transfer(nil), sub.Transfers...)
		sort.SliceStable(transfers, func(x, y int) bool {
			if transfers[x].Start != transfers[y].Start {
				return transfers[x].Start < transfers[y].Start
			}
			return transfers[x].Arrive < transfers[y].Arrive
		})
		for _, t := range transfers {
			piece := cd.demand.Pieces[t.Piece].ID
			src := cd.gpus[t.Src]
			dst := cd.gpus[t.Dst]
			nt := schedule.Transfer{
				Src:   src,
				Dst:   dst,
				Piece: piece,
				Dim:   k.dim,
				Order: k.stage*stageStride + t.Start,
			}
			if src != origin[piece] {
				di, ok := deliver[[2]int{piece, src}]
				if !ok {
					return nil, fmt.Errorf("core: stage %d: GPU %d sends piece %d before receiving it", k.stage, src, piece)
				}
				nt.Deps = []int{di}
			}
			idx := a.sched.AddTransfer(nt)
			if _, seen := deliver[[2]int{piece, dst}]; !seen {
				deliver[[2]int{piece, dst}] = idx
			}
		}
	}
	return a.sched, nil
}
