package core

import (
	"context"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

func TestScatterSubtrees(t *testing.T) {
	top := topology.H800Small(2)
	sk := &sketch.Sketch{Root: 0, Scatter: true, Stages: []sketch.Stage{
		{{Dim: 1, Group: 0, Srcs: []int{0}, Dsts: []int{4}}},
		{{Dim: 0, Group: 1, Srcs: []int{4}, Dsts: []int{5, 6, 7}}},
		{{Dim: 0, Group: 0, Srcs: []int{0}, Dsts: []int{1, 2, 3}}},
	}}
	if err := sk.Validate(top); err != nil {
		t.Fatal(err)
	}
	sub := scatterSubtrees(sk)
	// GPU 4's subtree: itself plus 5,6,7.
	if len(sub[4]) != 4 {
		t.Errorf("subtree(4) = %v", sub[4])
	}
	for _, v := range []int{4, 5, 6, 7} {
		if !sub[4][v] {
			t.Errorf("subtree(4) missing %d", v)
		}
	}
	// Leaves carry only themselves.
	if len(sub[5]) != 1 || !sub[5][5] {
		t.Errorf("subtree(5) = %v", sub[5])
	}
	// Root's subtree covers all.
	if len(sub[0]) != 8 {
		t.Errorf("subtree(root) = %d nodes", len(sub[0]))
	}
}

func TestAssemblyCellsMergedPerGroupStage(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(8, 1024)
	// Two-sketch combination: hierarchical sketches rooted at 0 and 4.
	base := sketch.SearchBroadcast(context.Background(), top, 0, sketch.SearchOptions{})[0]
	combo, missing := sketch.ExpandAllToAll(top, base)
	if len(missing) > 0 {
		t.Fatalf("healthy topology left roots uncovered: %v", missing)
	}
	a, err := newAssembly(top, col, combo)
	if err != nil {
		t.Fatal(err)
	}
	// One piece per sketch (forward AllGather).
	if len(a.sched.Pieces) != 8 {
		t.Errorf("pieces = %d, want 8", len(a.sched.Pieces))
	}
	// Every cell demand must aggregate pieces from multiple sketches
	// whenever their sub-demands share (stage, dim, group).
	merged := false
	for _, k := range a.keys {
		if len(a.cells[k].demand.Pieces) > 1 {
			merged = true
		}
		if err := a.cells[k].demand.Validate(); err != nil {
			t.Fatalf("cell %+v: %v", k, err)
		}
	}
	if !merged {
		t.Error("no cell merged sub-demands across sketches")
	}
}

func TestAssemblyRejectsForeignRoot(t *testing.T) {
	top := topology.H800Small(2)
	// Broadcast collective rooted at 0 but sketch rooted at 1: the
	// sketch's root chunk does not exist.
	col := collective.Broadcast(8, 0, 1024)
	sk := sketch.SearchBroadcast(context.Background(), top, 1, sketch.SearchOptions{})[0]
	if _, err := newAssembly(top, col, sketch.Single(sk)); err == nil {
		t.Error("accepted sketch rooted at a GPU without a chunk")
	}
}

func TestBuildDependencyWiring(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.Broadcast(8, 0, 1024)
	sk := sketch.SearchBroadcast(context.Background(), top, 0, sketch.SearchOptions{})
	// Pick a 2-stage hierarchical sketch so cross-stage deps exist.
	var hier *sketch.Sketch
	for _, s := range sk {
		if len(s.Stages) == 2 {
			hier = s
			break
		}
	}
	if hier == nil {
		t.Skip("no 2-stage sketch found")
	}
	res := synth(t, top, col, Options{})
	// Every non-origin transfer must carry at least one dependency.
	origin := col.Chunks[0].Src
	for i, tr := range res.Schedule.Transfers {
		if tr.Src != origin && len(tr.Deps) == 0 {
			t.Errorf("transfer %d from non-origin %d has no deps", i, tr.Src)
		}
	}
}
