package core

import (
	"testing"

	"syccl/internal/collective"
	"syccl/internal/metrics"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

func synth(t *testing.T, top *topology.Topology, col *collective.Collective, opts Options) *Result {
	t.Helper()
	res, err := Synthesize(top, col, opts)
	if err != nil {
		t.Fatalf("Synthesize(%v on %s): %v", col.Kind, top.Name, err)
	}
	if res.Time <= 0 {
		t.Fatalf("non-positive predicted time %g", res.Time)
	}
	return res
}

func TestBroadcastSmall(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sketches == 0 || res.Stats.Candidates == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
}

func TestAllGather16(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllGather(16, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
	// Cache must fire: 16 isomorphic roots produce isomorphic demands.
	if res.Stats.CacheHits == 0 {
		t.Error("isomorphism cache never hit on AllGather")
	}
}

func TestAllGatherBeatsNaiveRing(t *testing.T) {
	// The synthesized small-size AllGather must beat a 15-hop ring by a
	// wide margin (latency-dominated regime, §7.2).
	top := topology.A100Clos(2)
	size := 16384.0 // 16 KB total
	col := collective.AllGather(16, size/16)
	res := synth(t, top, col, Options{})
	// Naive ring latency: 15 sequential network/NVLink hops ≥ 15·α_min.
	ringLatency := 15 * topology.NVAlpha
	if res.Time > 4*ringLatency {
		t.Errorf("synthesized time %g not clearly better than ring-style latency scaling", res.Time)
	}
}

func TestReduceMirror(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.Reduce(top.NumGPUs(), 0, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestGatherMirror(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.Gather(top.NumGPUs(), 3, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterMirror(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.ReduceScatter(16, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
	// RS and AG must predict identical times (mirror symmetry).
	ag := collective.AllGather(16, 1<<20)
	agRes := synth(t, top, ag, Options{})
	ratio := res.Time / agRes.Time
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("RS time %g vs AG time %g: mirror should preserve cost", res.Time, agRes.Time)
	}
}

func TestAlltoAll(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AlltoAll(top.NumGPUs(), 1<<18)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllReduce(top.NumGPUs(), 1<<22)
	res := synth(t, top, col, Options{})
	// AllReduce = RS;AG: roughly twice the one-phase time.
	ag, err := Synthesize(top, collective.AllGather(top.NumGPUs(), float64(1<<22)/float64(top.NumGPUs())), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < ag.Time*1.5 {
		t.Errorf("AllReduce time %g implausibly fast vs AG %g", res.Time, ag.Time)
	}
}

func TestSendRecv(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.SendRecv(top.NumGPUs(), 0, 5, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.Scatter(top.NumGPUs(), 0, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSizePrefersBandwidthBalance(t *testing.T) {
	// At 256 MB the winning AllGather combination should spread load
	// over both dimensions: per-dim utilization of the winning schedule
	// must be nonzero for NVLink and rail.
	top := topology.H800Rail(2)
	col := collective.AllGather(16, 256e6/16)
	res := synth(t, top, col, Options{})
	r, err := sim.Simulate(top, res.Schedule, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < top.NumDims(); d++ {
		if r.PortBusy[d] == 0 {
			t.Errorf("dimension %d (%s) unused at large size", d, top.Dim(d).Name)
		}
	}
	// busbw sanity: must exceed a bare ring's NIC-bound estimate and
	// stay below the hardware aggregate.
	bus := metrics.BusBandwidth(col.Kind, 16, metrics.DataBytes(col), res.Time)
	if bus < 20e9 || bus > 230e9*16 {
		t.Errorf("busbw %g implausible", bus)
	}
}

func TestTwoStepNotWorseThanCoarse(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<22)
	twoStep := synth(t, top, col, Options{Seed: 1})
	coarseOnly := synth(t, top, col, Options{Seed: 1, DisableTwoStep: true, E2: 3.0})
	if twoStep.Time > coarseOnly.Time*1.05 {
		t.Errorf("two-step %g worse than coarse-only %g", twoStep.Time, coarseOnly.Time)
	}
}

func TestIsomorphCacheAblation(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	with := synth(t, top, col, Options{})
	without := synth(t, top, col, Options{DisableIsomorphCache: true})
	if with.Stats.SolverCalls >= without.Stats.SolverCalls {
		t.Errorf("cache did not reduce solver calls: %d vs %d",
			with.Stats.SolverCalls, without.Stats.SolverCalls)
	}
	// Schedules must perform equivalently.
	ratio := with.Time / without.Time
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("cache changed schedule quality: %g vs %g", with.Time, without.Time)
	}
}

func TestPhasesRecorded(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	res := synth(t, top, col, Options{})
	if res.Phases.Total() <= 0 {
		t.Errorf("phases not recorded: %+v", res.Phases)
	}
	if res.Phases.Solve1 <= 0 {
		t.Error("coarse solve phase empty")
	}
}

func TestRejectsMismatchedSizes(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(4, 1024) // 4 GPUs on an 8-GPU topology
	if _, err := Synthesize(top, col, Options{}); err == nil {
		t.Error("accepted mismatched GPU count")
	}
}

func TestWorkersParallelism(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	for _, w := range []int{1, 2, 8} {
		res := synth(t, top, col, Options{Workers: w})
		if err := res.Schedule.Validate(col); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}
