package core

import (
	"math"
	"sync"

	"syccl/internal/collective"
	"syccl/internal/schedule"
	"syccl/internal/sketch"
)

// transformFunc finishes a raw forward-pipeline schedule into the
// caller-visible one — identity for forward collectives, mirror (+
// re-simulate) for reductions, mirror+concat (+ re-simulate) for
// AllReduce — returning the finished schedule, its simulated time, and
// whether it validated. A transform must be safe for concurrent use and
// must not mutate its input.
type transformFunc func(fwd *schedule.Schedule, fwdTime float64) (*schedule.Schedule, float64, bool)

// identityTransform validates a forward schedule against the requested
// collective and passes it through unchanged.
func identityTransform(col *collective.Collective) transformFunc {
	return func(s *schedule.Schedule, t float64) (*schedule.Schedule, float64, bool) {
		return s, t, s.Validate(col) == nil
	}
}

// publisher serializes the incumbent stream behind Options.OnIncumbent.
// Candidates are offered opportunistically from worker goroutines as they
// finish simulation; the publisher gates twice — on forward time before
// the (possibly expensive) transform, and on transformed time before
// emission — so the published stream is strictly improving regardless of
// completion order. A nil publisher is a no-op, which keeps every call
// site unconditional.
type publisher struct {
	cb        func(Incumbent)
	transform transformFunc

	mu sync.Mutex
	// bestFwd gates offers by raw forward time: an offer that does not
	// improve on the best forward time seen so far usually cannot improve
	// the stream and skips the transform entirely. That is a heuristic —
	// transforms are not monotone (the concatenated AllReduce time can
	// invert the forward order) — so the pipeline's winner selection
	// re-evaluates every finalist through the transform and publishFinal
	// backstops any improvement the gate skipped. bestTime gates emission
	// by transformed time, which is what the strict-improvement contract
	// is stated over.
	bestFwd  float64
	bestTime float64
	bound    float64
	seq      int
}

func newPublisher(cb func(Incumbent), transform transformFunc) *publisher {
	if cb == nil {
		return nil
	}
	return &publisher{cb: cb, transform: transform, bestFwd: math.Inf(1), bestTime: math.Inf(1)}
}

// setBound records the best known flow lower bound; later incumbents
// carry it. Monotone: a smaller (weaker) bound never replaces a larger.
func (p *publisher) setBound(b float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if b > p.bound {
		p.bound = b
	}
	p.mu.Unlock()
}

// offer publishes the schedule if it strictly improves on the best
// published incumbent. fwdTime is the simulated time of the raw forward
// schedule; source/engineName/combo are provenance carried on the event.
// Safe to call from worker goroutines; the callback runs under the
// publisher lock, so calls never overlap.
func (p *publisher) offer(sched *schedule.Schedule, fwdTime float64, source, engineName string, combo *sketch.Combination) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if fwdTime >= p.bestFwd {
		p.mu.Unlock()
		return
	}
	p.bestFwd = fwdTime
	p.mu.Unlock()

	out, t, ok := p.transform(sched, fwdTime)
	if !ok {
		return
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if t >= p.bestTime {
		// A concurrent offer with a worse forward time but better
		// transformed time won the race; strict improvement holds.
		return
	}
	p.bestTime = t
	p.seq++
	p.cb(Incumbent{
		Schedule:    out,
		Time:        t,
		Bound:       p.bound,
		Source:      source,
		Engine:      engineName,
		Combination: combo,
		Seq:         p.seq,
	})
}

// publishFinal force-offers the pipeline's deterministic winner, already
// transformed, bypassing the forward-time gate: a winner whose forward
// time never led the race was never transformed during the passes, yet
// its finished time may beat every published incumbent. It emits only on
// strict improvement, so the stream stays strictly decreasing and a
// winner that was already published — the common case — adds no event.
func (p *publisher) publishFinal(out *schedule.Schedule, t float64, source, engineName string, combo *sketch.Combination) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if t >= p.bestTime {
		return
	}
	p.bestTime = t
	p.seq++
	p.cb(Incumbent{
		Schedule:    out,
		Time:        t,
		Bound:       p.bound,
		Source:      source,
		Engine:      engineName,
		Combination: combo,
		Seq:         p.seq,
	})
}
