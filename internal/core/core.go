// Package core implements the SyCCL synthesizer: the two-phase pipeline
// of Fig 6 that explores sketches (§4), synthesizes sub-schedules with the
// epoch solver (§5.1), merges them into complete schedules, ranks them
// with the α-β simulator (§5.2), and accelerates everything with two-step
// synthesis, isomorphism caching, and parallel solving (§5.3).
package core

import (
	"fmt"
	"runtime"
	"time"

	"syccl/internal/collective"
	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/sketch"
	"syccl/internal/solve"
)

// Options configures a synthesis run. The defaults match the paper's
// evaluation setup (§7.1): E1=3.0, E2=0.5, R1=20%, R2=8.
type Options struct {
	// E1 is the coarse-pass epoch knob, E2 the fine-pass one.
	E1, E2 float64
	// R1 is the relative-performance filter after the coarse pass: drop
	// candidates more than R1 worse than the best.
	R1 float64
	// R2 caps the candidates refined in the fine pass.
	R2 int
	// Workers bounds the synthesis-level parallelism: candidate
	// assembly/simulation and sub-demand solving all fan out over this
	// many goroutines (default GOMAXPROCS). Results are deterministic
	// for any value.
	Workers int
	// MILPWorkers is the branch-and-bound worker count inside each exact
	// sub-demand solve (default 1; deterministic across counts). Total
	// solver parallelism is Workers×MILPWorkers, so raise this only when
	// few candidates dominate the run.
	MILPWorkers int
	// MaxCombos caps the candidate combinations evaluated (default 12).
	MaxCombos int
	// Search configures sketch exploration (pruning toggles, stage
	// limits — the Fig 17 ablations).
	Search sketch.SearchOptions
	// Engine overrides the sub-demand solving engine (default auto).
	Engine solve.Engine
	// SolverMode selects the solver strategy family (the -solver CLI
	// knob). SolverAuto (default) runs the exact MILP with
	// flow-relaxation bound pruning — candidates and horizons the LP
	// bound proves hopeless are skipped — and hands instances over the
	// MaxBinaries gate to the flow backend. SolverExact disables every
	// flow component (pure MILP; oversized demands fail their candidates
	// and surface in Stats). SolverFlow uses the flow backend for every
	// sub-demand. An explicit Engine override takes precedence over the
	// engine the mode implies.
	SolverMode SolverMode
	// SolveTimeLimit, when positive, wall-clock-caps each exact
	// sub-demand solve (truncated refinement keeps the greedy
	// incumbent). The default 0 leaves the exact engine bounded only by
	// its deterministic effort limits (the MaxBinaries size gate plus
	// per-solve node and simplex-pivot budgets), which is what keeps schedules
	// byte-identical across Workers counts: wall-clock truncation fires
	// at load-dependent points, so setting this trades reproducibility
	// for a hard per-solve latency bound.
	SolveTimeLimit time.Duration
	// Seed drives randomized components.
	Seed int64
	// DisableTwoStep solves every candidate at E2 directly (ablation).
	DisableTwoStep bool
	// DisableIsomorphCache solves every sub-demand separately (§5.3
	// ablation).
	DisableIsomorphCache bool
	// Sim configures the ranking simulator.
	Sim sim.Options
	// Obs optionally records the run: hierarchical spans over every
	// pipeline phase, solver and cache counters, and per-candidate
	// timings, exportable as a Chrome trace (internal/obs). Nil disables
	// all instrumentation at zero cost.
	Obs *obs.Recorder
	// SolveCache optionally serves sub-demand solutions across synthesis
	// requests (internal/engine owns the implementation). Nil disables
	// cross-request reuse; the per-run isomorphism batching is unaffected.
	SolveCache SolveCache
	// SketchCache optionally serves sketch-search results across requests,
	// keyed by topology fingerprint. Nil disables reuse.
	SketchCache SketchCache
	// BoundCache optionally serves flow lower bounds across requests
	// (internal/engine owns the implementation), so warm requests prune
	// candidates without re-solving the bound LPs. Nil disables reuse.
	BoundCache BoundCache
	// OnIncumbent, when non-nil, receives every incumbent the pipeline
	// publishes: a fully validated schedule for the requested collective
	// that strictly beats every previously published one. Calls are
	// serialized (never concurrent) but may come from worker goroutines,
	// so the callback must be fast and must not call back into the
	// synthesizer. The stream is opportunistic — which intermediate
	// incumbents appear can vary run to run with Workers — but each
	// published Time strictly decreases, and the synthesis result itself
	// stays byte-identical: publication never influences candidate
	// selection. No final event is emitted; the returned Result is the
	// final incumbent (its Time is ≤ the last published one).
	OnIncumbent func(Incumbent)
	// Hint optionally constrains the sketch search (TACCL-style
	// communication sketches): dimension order, per-stage group sizes,
	// algorithm family. withDefaults folds it into Search.Hint; it is
	// validated against the topology before search. Hinted runs use
	// distinct solve/sketch cache signatures (see Hint.Canonical), so
	// hinted and unhinted plans never collide in shared caches.
	Hint *sketch.Hint
	// StopWithin, when positive, enables early termination at the
	// coarse/fine boundary: if the coarse incumbent's simulated time is
	// within StopWithin (relative, e.g. 0.05 = 5%) of its flow lower
	// bound, the fine pass is skipped and the coarse schedule returned
	// with Stats.StoppedEarly set. The check runs at a deterministic
	// pipeline boundary, so results remain byte-identical across Workers.
	// No-op under SolverExact (no flow bounds are computed).
	StopWithin float64
}

// Incumbent is one published best-so-far schedule: a complete, validated
// schedule for the requested collective together with its provenance.
// Streamed through Options.OnIncumbent.
type Incumbent struct {
	// Schedule is fully validated against the requested collective (for
	// mirrored and AllReduce collectives it is the finished mirrored or
	// concatenated schedule, not the internal forward one).
	Schedule *schedule.Schedule
	// Time is the simulator-predicted completion time in seconds;
	// strictly decreasing across the published stream.
	Time float64
	// Bound is the best known flow lower bound for the plan at publish
	// time (0 until bounds are computed, and always 0 under SolverExact).
	Bound float64
	// Source names the pipeline stage that produced the schedule:
	// "direct" (routed one-to-one), "coarse", "ring" (injected NCCL
	// ring), or "fine".
	Source string
	// Engine is the sub-demand engine of the producing pass ("greedy",
	// "exact", "flow", ...), or "" where no solver ran.
	Engine string
	// Combination is the sketch combination behind the schedule (nil for
	// injected or routed schedules, and for mirrored/concatenated
	// collectives where the forward combination applied).
	Combination *sketch.Combination
	// Seq numbers the stream from 1.
	Seq int
}

// SolverMode selects the solver strategy family for sub-demand solving.
type SolverMode int

// Solver modes (the -solver CLI knob).
const (
	// SolverAuto: exact MILP with flow-bound pruning, flow backend
	// fallback above the MaxBinaries gate.
	SolverAuto SolverMode = iota
	// SolverExact: exact MILP only; no flow bounds, no fallback.
	SolverExact
	// SolverFlow: flow-relaxation backend for every sub-demand.
	SolverFlow
)

func (m SolverMode) String() string {
	switch m {
	case SolverAuto:
		return "auto"
	case SolverExact:
		return "exact"
	case SolverFlow:
		return "flow"
	default:
		return "unknown"
	}
}

// ParseSolverMode parses the -solver flag value.
func ParseSolverMode(s string) (SolverMode, error) {
	switch s {
	case "", "auto":
		return SolverAuto, nil
	case "exact":
		return SolverExact, nil
	case "flow":
		return SolverFlow, nil
	}
	return 0, fmt.Errorf("core: unknown solver mode %q (want auto, exact, or flow)", s)
}

// BoundCache is a cross-request store of flow lower bounds, keyed by
// demand identity plus a bound-formulation signature. Implementations
// must be safe for concurrent use and must not retain the caller's
// demand after either call returns.
type BoundCache interface {
	Lookup(d *solve.Demand, sig string) (float64, bool)
	Store(d *solve.Demand, sig string, bound float64)
}

// SolveCache is a cross-request store of solved sub-schedules. Lookup
// must return a sub-schedule that satisfies d under the given solve-option
// signature — verbatim for an exact signature match (this is what makes
// warm re-plans bit-identical), or remapped by the implementation for an
// isomorphic match — and nil on a miss. Implementations must be safe for
// concurrent use and must not retain or mutate the caller's arguments
// after Store returns.
type SolveCache interface {
	Lookup(d *solve.Demand, optsSig string) *solve.SubSchedule
	Store(d *solve.Demand, optsSig string, s *solve.SubSchedule)
}

// SketchCache is a cross-request store of sketch-search results. Lookup
// reports a hit with ok=true (an empty sketch list is a valid cached
// result). Returned sketches may be read freely but must not be mutated.
// Implementations must be safe for concurrent use.
type SketchCache interface {
	Lookup(key string) (sketches []*sketch.Sketch, ok bool)
	Store(key string, sketches []*sketch.Sketch)
}

func (o Options) withDefaults() Options {
	if o.E1 <= 0 {
		o.E1 = 3.0
	}
	if o.E2 <= 0 {
		o.E2 = 0.5
	}
	if o.R1 <= 0 {
		o.R1 = 0.20
	}
	if o.R2 <= 0 {
		o.R2 = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxCombos <= 0 {
		o.MaxCombos = 12
	}
	if o.Sim.IsZero() {
		o.Sim = sim.DefaultOptions()
	}
	if o.Hint != nil && o.Search.Hint == nil {
		o.Search.Hint = o.Hint
	}
	// Fan the recorder out to the sub-systems that accept one, unless the
	// caller wired its own.
	if o.Obs != nil {
		if o.Sim.Rec == nil {
			o.Sim.Rec = o.Obs
		}
		if o.Search.Rec == nil {
			o.Search.Rec = o.Obs
		}
	}
	return o
}

// Phases records where synthesis time went (Fig 16b).
type Phases struct {
	Search  time.Duration // sketch exploration (§4.1)
	Combine time.Duration // replication + integration (§4.2/4.3)
	Solve1  time.Duration // coarse-pass sub-schedule synthesis
	Solve2  time.Duration // fine-pass sub-schedule synthesis
}

// Total sums all phases.
func (p Phases) Total() time.Duration { return p.Search + p.Combine + p.Solve1 + p.Solve2 }

// Stats reports synthesis internals.
type Stats struct {
	Sketches    int // sketches emitted by the search
	Candidates  int // combinations evaluated in the coarse pass
	Refined     int // combinations refined in the fine pass
	SolverCalls int // sub-demand solves actually executed
	CacheHits   int // sub-demands served by isomorphism mapping
	CacheMisses int // sub-demands that fell through to a solver call
	// CrossCacheHits counts sub-demands served directly by the
	// cross-request solve cache (the engine's memory/persist tiers)
	// before any in-run solving; replan reuse accounting reads it.
	CrossCacheHits int
	MaxSolve       time.Duration // longest single sub-demand solve (Fig 17c)
	// BoundsComputed counts candidate flow lower bounds evaluated
	// between the coarse and fine passes; PrunedLB counts the candidates
	// those bounds eliminated before any fine-pass MILP was built.
	BoundsComputed int
	PrunedLB       int
	// ProvedOptimal reports that the fine pass was skipped entirely:
	// the coarse incumbent met its own flow lower bound and every rival
	// was bound-pruned, so no schedule under the port model can do
	// better.
	ProvedOptimal bool
	// StoppedEarly reports that Options.StopWithin fired: the coarse
	// incumbent was within the configured gap of its flow lower bound,
	// so the fine pass was skipped. The result is complete (not
	// Partial) — the knob trades potential fine-pass improvement for
	// latency, deterministically.
	StoppedEarly bool
	// TooLarge counts sub-demand solves rejected at the exact engine's
	// MaxBinaries size gate (SolverExact mode — SolverAuto reroutes
	// these to the flow backend instead). SolveErrors carries the
	// distinct solver error messages behind failed candidates, in
	// deterministic order, so oversized instances are diagnosable
	// instead of silently dropping candidates.
	TooLarge    int
	SolveErrors []string
}

// Result is a synthesized schedule with its predicted performance.
type Result struct {
	Schedule *schedule.Schedule
	// Time is the simulator-predicted completion time in seconds.
	Time float64
	// Combination is the winning sketch combination (nil for mirrored
	// or concatenated schedules where the forward combination applied).
	Combination *sketch.Combination
	Phases      Phases
	Stats       Stats
	// Partial marks an anytime result: the context was cancelled or its
	// deadline expired mid-synthesis, and Schedule is the best fully
	// validated candidate found by then rather than the full pipeline's
	// choice. Partial schedules are still complete, correct schedules.
	Partial bool
}

// fineEngine resolves the sub-demand engine for accuracy-critical passes
// (the fine pass, and every pass when two-step synthesis is disabled):
// an explicit Engine override wins, otherwise the solver mode decides.
// The coarse pass stays on greedy regardless of mode — it only ranks
// candidates, and mode selection concerns how survivors are refined.
func (o Options) fineEngine() solve.Engine {
	if o.Engine != solve.EngineAuto {
		return o.Engine
	}
	switch o.SolverMode {
	case SolverExact:
		return solve.EngineExact
	case SolverFlow:
		return solve.EngineFlow
	default:
		return solve.EngineAuto
	}
}

// candidate is one sketch combination under evaluation. source and
// engine record which pass produced the schedule — provenance for the
// incumbent published when the candidate wins the pipeline.
type candidate struct {
	combo  *sketch.Combination
	sched  *schedule.Schedule
	time   float64
	source string
	engine string
}

func kindForward(k collective.Kind) (forward collective.Kind, mirrored bool) {
	switch k {
	case collective.KindReduce:
		return collective.KindBroadcast, true
	case collective.KindGather:
		return collective.KindScatter, true
	case collective.KindReduceScatter:
		return collective.KindAllGather, true
	default:
		return k, false
	}
}
