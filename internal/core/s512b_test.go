package core

import (
	"fmt"
	"testing"
	"time"

	"syccl/internal/collective"
	"syccl/internal/topology"
)

func TestScale512Profile(t *testing.T) {
	top := topology.H800Rail(64)
	col := collective.AllGather(512, float64(1<<30)/512)
	start := time.Now()
	res, err := Synthesize(top, col, Options{MaxCombos: 2, R2: 1})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("synth %.3gs search=%v combine=%v s1=%v s2=%v calls=%d hits=%d\n",
		time.Since(start).Seconds(), res.Phases.Search, res.Phases.Combine, res.Phases.Solve1, res.Phases.Solve2, res.Stats.SolverCalls, res.Stats.CacheHits)
}
