package core

import (
	"context"
	"fmt"

	"syccl/internal/collective"
	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

// forwardCollective builds the one-to-all / all-to-all inverse of a
// reduction collective: Reduce ↔ Broadcast, Gather ↔ Scatter,
// ReduceScatter ↔ AllGather (§4.1: "all-to-one collectives are their
// inverses").
func forwardCollective(col *collective.Collective, kind collective.Kind) *collective.Collective {
	switch kind {
	case collective.KindBroadcast:
		return collective.Broadcast(col.NumGPUs, col.Root, col.ChunkSize)
	case collective.KindScatter:
		return collective.Scatter(col.NumGPUs, col.Root, col.ChunkSize)
	case collective.KindAllGather:
		return collective.AllGather(col.NumGPUs, col.ChunkSize)
	default:
		panic(fmt.Sprintf("core: no forward collective for %v", kind))
	}
}

// mirrorSchedule time-reverses a forward schedule into the reduction
// schedule, remapping each piece onto the reduction collective's chunks:
//
//   - Reduce: the broadcast piece of the root's chunk becomes the
//     reduction slice covering every contribution;
//   - Gather: the scatter piece destined to GPU v becomes the gather
//     chunk sourced at v;
//   - ReduceScatter: the AllGather piece of chunk r becomes the reduction
//     slice covering all contributions destined to GPU r.
func mirrorSchedule(fwd *schedule.Schedule, fwdCol, col *collective.Collective) *schedule.Schedule {
	switch col.Kind {
	case collective.KindReduce:
		all := make([]int, len(col.Chunks))
		for i := range all {
			all[i] = i
		}
		return fwd.Mirror(func(p schedule.Piece) schedule.Piece {
			return schedule.Piece{Chunks: all, Bytes: p.Bytes}
		})
	case collective.KindGather:
		bySrc := map[int]int{}
		for _, ch := range col.Chunks {
			bySrc[ch.Src] = ch.ID
		}
		return fwd.Mirror(func(p schedule.Piece) schedule.Piece {
			out := schedule.Piece{Bytes: p.Bytes}
			for _, c := range p.Chunks {
				// Forward scatter chunk c is destined to one GPU; that
				// GPU sources the mirrored gather chunk.
				v := fwdCol.Chunks[c].Dsts[0]
				out.Chunks = append(out.Chunks, bySrc[v])
			}
			return out
		})
	case collective.KindReduceScatter:
		byDst := map[int][]int{}
		for _, ch := range col.Chunks {
			byDst[ch.Dsts[0]] = append(byDst[ch.Dsts[0]], ch.ID)
		}
		return fwd.Mirror(func(p schedule.Piece) schedule.Piece {
			out := schedule.Piece{Bytes: p.Bytes}
			for _, c := range p.Chunks {
				// Forward AllGather chunk c is sourced at GPU c; the
				// mirrored slice aggregates contributions destined
				// there.
				r := fwdCol.Chunks[c].Src
				out.Chunks = append(out.Chunks, byDst[r]...)
			}
			return out
		})
	default:
		panic(fmt.Sprintf("core: cannot mirror into %v", col.Kind))
	}
}

// synthesizeAllReduce implements §4.3: AllReduce = ReduceScatter then
// AllGather over n-th sized slices, concatenated with per-GPU phase
// dependencies. The AllGather pipeline runs once; the ReduceScatter phase
// reuses its mirror.
func synthesizeAllReduce(ctx context.Context, top *topology.Topology, col *collective.Collective, opts Options, parent *obs.Span) (*Result, error) {
	n := col.NumGPUs
	per := col.ChunkSize // collective.AllReduce stores the per-slice size
	agCol := collective.AllGather(n, per)
	rsCol := collective.ReduceScatter(n, per)

	// Each AllGather-phase candidate is finished into a full AllReduce
	// schedule exactly as the final result is below: mirror into the
	// ReduceScatter phase, validate it, concatenate, re-simulate. The same
	// transform ranks the pipeline's finalists (the concatenated time is
	// what the caller sees — it is not monotone in the AllGather time) and
	// gates the incumbent stream.
	transform := func(fwd *schedule.Schedule, _ float64) (*schedule.Schedule, float64, bool) {
		rs := mirrorSchedule(fwd, agCol, rsCol)
		if rs.Validate(rsCol) != nil {
			return nil, 0, false
		}
		full := schedule.Concat(rs, fwd)
		r, err := sim.Simulate(top, full, opts.Sim)
		if err != nil {
			return nil, 0, false
		}
		return full, r.Time, true
	}
	pub := newPublisher(opts.OnIncumbent, transform)

	agRes, err := synthesizeForward(ctx, top, agCol, opts, parent, pub, transform)
	if err != nil {
		return nil, err
	}
	// Mirroring, concatenation, and the final simulation are cheap
	// finishing work and run even when ctx is already cancelled, so a
	// Partial AllGather phase still yields a complete AllReduce schedule.
	ms := parent.Child("mirror")
	rs := mirrorSchedule(agRes.Schedule, agCol, rsCol)
	if err := rs.Validate(rsCol); err != nil {
		return nil, fmt.Errorf("core: ReduceScatter phase invalid: %w", err)
	}

	full := schedule.Concat(rs, agRes.Schedule)
	r, err := sim.Simulate(top, full, opts.Sim)
	ms.End()
	if err != nil {
		return nil, err
	}
	agRes.Schedule = full
	agRes.Time = r.Time
	return agRes, nil
}
