package core

import (
	"testing"

	"syccl/internal/collective"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

// TestDeterministicAcrossRuns: with the same seed, synthesis produces the
// same predicted time and schedule size (the promise DESIGN.md makes for
// reproducible experiments).
func TestDeterministicAcrossRuns(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<22)
	a := synth(t, top, col, Options{Seed: 42})
	b := synth(t, top, col, Options{Seed: 42})
	if a.Time != b.Time {
		t.Errorf("times differ: %g vs %g", a.Time, b.Time)
	}
	if len(a.Schedule.Transfers) != len(b.Schedule.Transfers) {
		t.Errorf("transfer counts differ: %d vs %d", len(a.Schedule.Transfers), len(b.Schedule.Transfers))
	}
}

// TestAllSizesValid: synthesis remains valid from latency-bound to
// bandwidth-bound sizes (the paper sweeps 1KB–4GB).
func TestAllSizesValid(t *testing.T) {
	top := topology.H800Small(2)
	n := top.NumGPUs()
	for _, size := range []float64{1 << 10, 1 << 17, 1 << 24, 1 << 30} {
		col := collective.AllGather(n, size/float64(n))
		res := synth(t, top, col, Options{})
		if err := res.Schedule.Validate(col); err != nil {
			t.Fatalf("size %g: %v", size, err)
		}
	}
}

// TestLargerSizeNeverFaster: predicted completion time is monotone in
// collective size.
func TestLargerSizeNeverFaster(t *testing.T) {
	top := topology.H800Small(2)
	n := top.NumGPUs()
	prev := 0.0
	for _, size := range []float64{1 << 16, 1 << 20, 1 << 24, 1 << 28} {
		col := collective.AllGather(n, size/float64(n))
		res := synth(t, top, col, Options{})
		if res.Time < prev {
			t.Errorf("size %g faster than smaller size: %g < %g", size, res.Time, prev)
		}
		prev = res.Time
	}
}

// TestStageLimitRespected: the search honors Options.Search.MaxStages in
// the realized combination.
func TestStageLimitRespected(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	res := synth(t, top, col, Options{Search: sketch.SearchOptions{MaxStages: 2}})
	for _, sk := range res.Combination.Sketches {
		if len(sk.Stages) > 2 {
			t.Fatalf("sketch has %d stages, limit 2", len(sk.Stages))
		}
	}
}

// TestMultiDimTopologySynthesis exercises the 4-dimension Fig 3 topology
// end to end.
func TestMultiDimTopologySynthesis(t *testing.T) {
	top := topology.Fig3()
	col := collective.AllGather(16, 1<<20)
	res := synth(t, top, col, Options{})
	if err := res.Schedule.Validate(col); err != nil {
		t.Fatal(err)
	}
}

// TestSendRecvDirectPath: one-to-one transfers avoid broadcast waste —
// at most two transfers (direct or one relay).
func TestSendRecvDirectPath(t *testing.T) {
	top := topology.H800Rail(2)
	// Same server: one NVLink hop.
	res := synth(t, top, collective.SendRecv(16, 0, 3, 1<<20), Options{})
	if len(res.Schedule.Transfers) != 1 {
		t.Errorf("same-server SendRecv used %d transfers", len(res.Schedule.Transfers))
	}
	// Same rail: one network hop.
	res = synth(t, top, collective.SendRecv(16, 0, 8, 1<<20), Options{})
	if len(res.Schedule.Transfers) != 1 {
		t.Errorf("same-rail SendRecv used %d transfers", len(res.Schedule.Transfers))
	}
	// Cross-rail cross-server: PXN relay, two hops.
	res = synth(t, top, collective.SendRecv(16, 0, 9, 1<<20), Options{})
	if len(res.Schedule.Transfers) != 2 {
		t.Errorf("cross-rail SendRecv used %d transfers, want 2", len(res.Schedule.Transfers))
	}
}

// TestA100Ratio14to1 asserts §7.2's headline mechanism: on the 16-GPU
// A100 testbed SyCCL's large-size AllGather moves NVLink and network
// bytes at 14:1 (each chunk crosses the network once and fans out twice
// over NVLink), versus the ring's fixed 7:1.
func TestA100Ratio14to1(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllGather(16, 64<<20/16)
	res := synth(t, top, col, Options{})
	st := res.Schedule.ComputeStats(top.NumDims())
	ratio := st.PerDimBytes[0] / st.PerDimBytes[1]
	if ratio < 10 || ratio > 15 {
		t.Errorf("NVLink:network byte ratio = %.1f, want ≈14", ratio)
	}
}
