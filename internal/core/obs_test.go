package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/obs"
	"syccl/internal/topology"
)

// An attached recorder must capture the full pipeline: phase spans,
// per-candidate and per-worker solve spans, and the cache/sketch
// counters, all consistent with the Stats the result reports.
func TestSynthesizeRecordsSpansAndCounters(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	rec := obs.NewRecorder()
	res, err := Synthesize(top, col, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}

	names := map[string]int{}
	for _, s := range rec.Spans() {
		names[s.Name]++
	}
	for _, want := range []string{
		"synthesize", "search", "sketch.search", "combine",
		"solve.coarse", "solve.fine", "candidate", "solve.subdemand", "sim.simulate",
	} {
		if names[want] == 0 {
			t.Errorf("no span named %q recorded (got %v)", want, names)
		}
	}

	counters := rec.Counters()
	if got, want := counters["cache.hits"], float64(res.Stats.CacheHits); got != want {
		t.Errorf("cache.hits counter %g != Stats.CacheHits %g", got, want)
	}
	if got, want := counters["cache.misses"], float64(res.Stats.CacheMisses); got != want {
		t.Errorf("cache.misses counter %g != Stats.CacheMisses %g", got, want)
	}
	if res.Stats.CacheMisses != res.Stats.SolverCalls {
		t.Errorf("CacheMisses %d != SolverCalls %d (a miss is exactly one real solve)",
			res.Stats.CacheMisses, res.Stats.SolverCalls)
	}
	if res.Stats.CacheMisses == 0 {
		t.Error("expected at least one cache miss on a fresh run")
	}
	// Every counter series is seeded so traces always carry them.
	for _, want := range []string{"lp.pivots", "milp.nodes", "sketch.nodes", "sim.events", "candidates.pruned"} {
		if _, ok := counters[want]; !ok {
			t.Errorf("counter series %q missing", want)
		}
	}
	if counters["sim.events"] <= 0 {
		t.Error("sim.events counter never advanced")
	}

	// The recorder must export as valid JSON end-to-end.
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
}

// A second Synthesize call with a nil recorder must behave identically —
// instrumentation must not leak into results.
func TestNilRecorderSameResult(t *testing.T) {
	top := topology.SingleServer(8)
	col := collective.AllGather(8, 1<<20)
	withRec, err := Synthesize(top, col, Options{Obs: obs.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Synthesize(top, col, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withRec.Time != without.Time {
		t.Errorf("recorder changed the result: %g vs %g", withRec.Time, without.Time)
	}
	if withRec.Stats.CacheHits != without.Stats.CacheHits ||
		withRec.Stats.CacheMisses != without.Stats.CacheMisses {
		t.Errorf("recorder changed cache stats: %+v vs %+v", withRec.Stats, without.Stats)
	}
}
