package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"syccl/internal/collective"
	"syccl/internal/isomorph"
	"syccl/internal/nccl"
	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/sketch"
	"syccl/internal/solve"
	"syccl/internal/topology"
)

// Synthesize produces a schedule for the collective on the topology.
//
// All-to-one collectives (Reduce, Gather) and ReduceScatter are
// synthesized as the mirror of their one-to-all inverses (§4.1, §4.3);
// AllReduce is synthesized as ReduceScatter followed by AllGather (§4.3).
func Synthesize(top *topology.Topology, col *collective.Collective, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), top, col, opts)
}

// SynthesizeContext is Synthesize under a context, with anytime
// semantics. The expensive phases — sketch search and sub-demand solving —
// poll the context cooperatively, while the cheap finishing work (schedule
// mapping, assembly, simulation, mirroring) always runs to completion, so
// a run cancelled mid-pipeline still returns its best fully-validated
// candidate with Result.Partial set. Only a context cancelled before any
// candidate completed the coarse pass yields ctx.Err().
func SynthesizeContext(ctx context.Context, top *topology.Topology, col *collective.Collective, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Request-scoped fan-in: a caller that attached a recorder to the
	// context (the serving layer's per-flight recorder) gets the whole
	// pipeline's span tree on it without plumbing an explicit option. An
	// explicit opts.Obs always wins.
	if opts.Obs == nil {
		opts.Obs = obs.FromContext(ctx)
	}
	opts = opts.withDefaults()
	if err := col.Validate(); err != nil {
		return nil, err
	}
	if col.NumGPUs != top.NumGPUs() {
		return nil, fmt.Errorf("core: collective spans %d GPUs, topology has %d", col.NumGPUs, top.NumGPUs())
	}
	if err := opts.Hint.Validate(top.NumDims()); err != nil {
		return nil, err
	}

	root := opts.Obs.StartSpan("synthesize")
	root.SetStr("topology", top.Name)
	root.SetStr("collective", col.Kind.String())
	root.SetInt("gpus", int64(top.NumGPUs()))
	if id := obs.RequestIDFrom(ctx); id != "" {
		root.SetStr("request", id)
	}
	defer root.End()
	seedCounters(opts.Obs)

	switch col.Kind {
	case collective.KindAllReduce:
		return synthesizeAllReduce(ctx, top, col, opts, root)
	}

	forwardKind, mirrored := kindForward(col.Kind)
	forwardCol := col
	transform := identityTransform(col)
	if mirrored {
		forwardCol = forwardCollective(col, forwardKind)
		// Incumbents of a mirrored collective are finished exactly the
		// way the final result is below: mirror, validate, re-simulate.
		transform = func(fwd *schedule.Schedule, _ float64) (*schedule.Schedule, float64, bool) {
			m := mirrorSchedule(fwd, forwardCol, col)
			if m.Validate(col) != nil {
				return nil, 0, false
			}
			r, err := sim.Simulate(top, m, opts.Sim)
			if err != nil {
				return nil, 0, false
			}
			return m, r.Time, true
		}
	}
	pub := newPublisher(opts.OnIncumbent, transform)

	res, err := synthesizeForward(ctx, top, forwardCol, opts, root, pub, transform)
	if err != nil {
		return nil, err
	}
	if mirrored {
		// Mirroring and re-simulation are cheap finishing work: they run
		// even under a cancelled context so a Partial forward result still
		// becomes a complete, timed reduction schedule.
		ms := root.Child("mirror")
		res.Schedule = mirrorSchedule(res.Schedule, forwardCol, col)
		r, err := sim.Simulate(top, res.Schedule, opts.Sim)
		ms.End()
		if err != nil {
			return nil, fmt.Errorf("core: mirrored schedule: %w", err)
		}
		res.Time = r.Time
	}
	return res, nil
}

// seedCounters registers the pipeline's counter series with an initial
// zero sample, so exported traces carry every series even when a fast
// path (rotation solves, cached demands) leaves one untouched.
func seedCounters(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	for _, name := range []string{
		"cache.hits", "cache.misses", "lp.pivots", "milp.nodes",
		"sketch.nodes", "sketch.emitted", "candidates", "candidates.pruned",
		"candidates.pruned_lb", "sim.events",
	} {
		rec.Count(name, 0)
	}
}

// synthesizeForward runs the two-phase pipeline for forward (non-reduce)
// collectives. The parent span (nil-safe) roots the per-phase spans. pub
// (nil-safe) receives every improving candidate as it completes
// simulation; publication is observation only and never influences which
// candidate wins. transform finishes forward schedules into the
// caller-visible collective (identity for forward kinds) — the winner at
// every return site is the candidate whose finished time is minimal,
// which is the same criterion the publisher's improvement gate uses.
func synthesizeForward(ctx context.Context, top *topology.Topology, col *collective.Collective, opts Options, parent *obs.Span, pub *publisher, transform transformFunc) (*Result, error) {
	res := &Result{}

	// Phase 1a: sketch search (§4.1).
	searchSpan := parent.Child("search")
	t0 := time.Now()
	var sketches []*sketch.Sketch
	allToAll := false
	scatter := false
	switch col.Kind {
	case collective.KindSendRecv:
		// One-to-one needs no sketch machinery: the shortest route —
		// direct if a dimension connects the pair, otherwise a PXN-style
		// relay — is optimal under the port model.
		searchSpan.End()
		sched, err := sendRecvSchedule(top, col)
		if err != nil {
			return nil, err
		}
		r, err := sim.SimulateCtx(ctx, top, sched, opts.Sim)
		if err != nil {
			return nil, err
		}
		pub.offer(sched, r.Time, "direct", "", nil)
		res.Schedule, res.Time = sched, r.Time
		return res, validateForward(sched, col)
	case collective.KindBroadcast:
		sketches = searchCached(ctx, top, col.Root, false, opts)
	case collective.KindScatter:
		sketches = searchCached(ctx, top, col.Root, true, opts)
		scatter = true
	case collective.KindAllGather:
		sketches = searchCached(ctx, top, 0, false, opts)
		allToAll = true
	case collective.KindAlltoAll:
		sketches = searchCached(ctx, top, 0, true, opts)
		allToAll = true
		scatter = true
	default:
		return nil, fmt.Errorf("core: unsupported forward collective %v", col.Kind)
	}
	searchSpan.SetInt("sketches", int64(len(sketches)))
	searchSpan.End()
	if len(sketches) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: no sketches found for %v on %s", col.Kind, top.Name)
	}
	res.Phases.Search = time.Since(t0)
	res.Stats.Sketches = len(sketches)

	// Phase 1b: combinations (§4.2, §4.3).
	combineSpan := parent.Child("combine")
	t0 = time.Now()
	combos := buildCombinations(ctx, top, col, sketches, allToAll, scatter, opts)
	res.Phases.Combine = time.Since(t0)
	res.Stats.Candidates = len(combos)
	combineSpan.SetInt("candidates", int64(len(combos)))
	combineSpan.End()
	opts.Obs.Count("candidates", float64(len(combos)))
	if len(combos) == 0 {
		return nil, fmt.Errorf("core: no sketch combinations for %v", col.Kind)
	}

	// Phase 2a: coarse synthesis of every candidate. The coarse pass
	// trades accuracy for speed twice over: large epochs (E1) and the
	// greedy engine; the fine pass then runs the configured engine
	// (exact MILP where tractable) on the surviving candidates (§5.3).
	coarseSpan := parent.Child("solve.coarse")
	t0 = time.Now()
	e1, eng1 := opts.E1, solve.EngineGreedy
	if opts.DisableTwoStep {
		e1, eng1 = opts.E2, opts.fineEngine()
	}
	if opts.Engine != solve.EngineAuto {
		eng1 = opts.Engine
	}
	coarse := realizeAll(ctx, top, col, combos, e1, eng1, opts, &res.Stats, coarseSpan, pub, "coarse")
	cands := make([]*candidate, 0, len(combos))
	for ci, combo := range combos {
		if coarse[ci].ok {
			cands = append(cands, &candidate{
				combo: combo, sched: coarse[ci].sched, time: coarse[ci].time,
				source: "coarse", engine: eng1.String(),
			})
		}
	}
	// The ring family lives in the untruncated sketch space (K up to
	// |V|−1 stages) that the stage-bounded search cannot reach; include
	// it as an explicit candidate so deep-pipeline schedules stay in
	// contention where they win (large sizes on ring-friendly fabrics).
	if col.Kind == collective.KindAllGather {
		if ring, err := nccl.AllGather(top, col); err == nil {
			if r, err := sim.Simulate(top, ring, opts.Sim); err == nil {
				pub.offer(ring, r.Time, "ring", "", nil)
				cands = append(cands, &candidate{sched: ring, time: r.Time, source: "ring"})
			}
		}
	}
	res.Phases.Solve1 = time.Since(t0)
	coarseSpan.SetInt("realized", int64(len(cands)))
	coarseSpan.End()
	if len(cands) == 0 {
		// Nothing completed the coarse pass: a cancelled run has no
		// anytime result to offer, so report the cancellation itself.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: all %d candidates failed to realize", len(combos))
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].time < cands[b].time })

	if opts.DisableTwoStep {
		best := pickWinner(cands, transform, pub)
		res.Schedule, res.Time, res.Combination = best.sched, best.time, best.combo
		res.Partial = ctx.Err() != nil
		return res, validateForward(res.Schedule, col)
	}

	// Anytime exit: the deadline passed during (or right after) the coarse
	// pass. The surviving candidates are complete, simulated schedules —
	// return the best of them instead of starting the fine pass.
	if ctx.Err() != nil {
		best := pickWinner(cands, transform, pub)
		res.Schedule, res.Time, res.Combination = best.sched, best.time, best.combo
		res.Partial = true
		return res, validateForward(res.Schedule, col)
	}

	// Filter: keep candidates within R1 of the best, at most R2 (§5.3).
	keep := cands[:0:0]
	limit := cands[0].time * (1 + opts.R1)
	for _, c := range cands {
		if c.time <= limit && len(keep) < opts.R2 {
			keep = append(keep, c)
		}
	}
	opts.Obs.Count("candidates.pruned", float64(len(cands)-len(keep)))

	// Flow-bound filter between the passes: drop survivors whose flow
	// lower bound proves they cannot beat the incumbent, and detect when
	// the incumbent's own bound proves the coarse schedule optimal. See
	// bound.go; pruning never changes the fine-pass winner.
	proved := false
	incLB := 0.0
	if opts.SolverMode != SolverExact {
		keep, proved, incLB = pruneByBound(ctx, top, col, keep, opts, &res.Stats, parent)
		pub.setBound(incLB)
	}
	res.Stats.Refined = len(keep)

	// Phase 2b: fine synthesis of the survivors. Injected fixed schedules
	// (nil combo, e.g. the ring) pass through realizeAll untouched and
	// keep their coarse-pass result.
	fineSpan := parent.Child("solve.fine")
	fineSpan.SetInt("survivors", int64(len(keep)))
	if proved {
		// The incumbent met its own lower bound and every rival is
		// pruned: no MILP can improve on the coarse schedule, so the
		// fine pass has nothing to do.
		fineSpan.SetStr("outcome", "proved-optimal")
		fineSpan.End()
		res.Stats.ProvedOptimal = true
		best := pickWinner(cands, transform, pub)
		res.Schedule, res.Time, res.Combination = best.sched, best.time, best.combo
		res.Partial = ctx.Err() != nil
		return res, validateForward(res.Schedule, col)
	}
	// Early termination (the StopWithin knob): the incumbent is already
	// within the requested gap of its flow lower bound, so skip the fine
	// pass. The check sits at this deterministic boundary — never inside
	// a pass — so results stay byte-identical across Workers settings.
	// Not Partial: the caller asked for exactly this trade.
	if opts.StopWithin > 0 && incLB > 0 && keep[0].time <= incLB*(1+opts.StopWithin) {
		fineSpan.SetStr("outcome", "stopped-early")
		fineSpan.End()
		res.Stats.StoppedEarly = true
		best := pickWinner(cands, transform, pub)
		res.Schedule, res.Time, res.Combination = best.sched, best.time, best.combo
		res.Partial = ctx.Err() != nil
		return res, validateForward(res.Schedule, col)
	}
	t0 = time.Now()
	fineCombos := make([]*sketch.Combination, len(keep))
	for i, c := range keep {
		fineCombos[i] = c.combo
	}
	fine := realizeAll(ctx, top, col, fineCombos, opts.E2, opts.fineEngine(), opts, &res.Stats, fineSpan, pub, "fine")
	finalists := make([]*candidate, 0, len(cands)+len(keep))
	finalists = append(finalists, cands...)
	fineName := opts.fineEngine().String()
	for ci, c := range keep {
		if fine[ci].ok {
			finalists = append(finalists, &candidate{
				combo: c.combo, sched: fine[ci].sched, time: fine[ci].time,
				source: "fine", engine: fineName,
			})
		}
	}
	best := pickWinner(finalists, transform, pub)
	res.Phases.Solve2 = time.Since(t0)
	fineSpan.End()
	res.Schedule, res.Time, res.Combination = best.sched, best.time, best.combo
	// A cancellation mid-fine-pass degrades gracefully: candidates whose
	// fine solves did not finish keep their coarse-pass schedules, and the
	// result is flagged Partial.
	res.Partial = ctx.Err() != nil
	return res, validateForward(res.Schedule, col)
}

// pickWinner selects the pipeline's result by caller-visible time: each
// finalist's forward schedule is finished through the transform and the
// minimal finished time wins, first in order on ties. Ranking by forward
// time instead would be wrong for AllReduce — the concatenated
// ReduceScatter+AllGather time is not monotone in the AllGather-phase
// time, so the forward-best candidate can finish into a schedule worse
// than one already published on the incumbent stream. The chosen winner
// is force-offered to the publisher (no-op when it was already the best
// published), which is what keeps the stream's last event equal to the
// returned result. Finalists whose transform fails are skipped; if none
// survives, forward order decides and the caller surfaces the transform
// error. Deterministic: a pure fold over a deterministic finalist list.
func pickWinner(finalists []*candidate, transform transformFunc, pub *publisher) *candidate {
	best := finalists[0]
	bestT := math.Inf(1)
	var bestOut *schedule.Schedule
	for _, f := range finalists {
		out, t, ok := transform(f.sched, f.time)
		if !ok {
			continue
		}
		if t < bestT {
			best, bestT, bestOut = f, t, out
		}
	}
	if bestOut == nil {
		return finalists[0]
	}
	pub.publishFinal(bestOut, bestT, best.source, best.engine, best.combo)
	return best
}

// searchCached serves the sketch search from opts.SketchCache when one is
// wired. Only complete (non-cancelled) searches are stored: a search
// truncated by cancellation would poison later requests with a partial
// sketch set.
func searchCached(ctx context.Context, top *topology.Topology, root int, scatter bool, opts Options) []*sketch.Sketch {
	var key string
	if opts.SketchCache != nil {
		key = sketchCacheKey(top, root, scatter, opts.Search)
		if cached, ok := opts.SketchCache.Lookup(key); ok {
			return cached
		}
	}
	var out []*sketch.Sketch
	if scatter {
		out = sketch.SearchScatter(ctx, top, root, opts.Search)
	} else {
		out = sketch.SearchBroadcast(ctx, top, root, opts.Search)
	}
	if opts.SketchCache != nil && ctx.Err() == nil {
		opts.SketchCache.Store(key, out)
	}
	return out
}

// sketchCacheKey identifies a search by topology fingerprint, shape, root,
// and every search option that influences the result set (Rec is
// instrumentation only and excluded).
func sketchCacheKey(top *topology.Topology, root int, scatter bool, so sketch.SearchOptions) string {
	shape := "b"
	if scatter {
		shape = "s"
	}
	key := fmt.Sprintf("%s|%s%d|k%d,n%d,m%d,c%d,p1:%t,p2:%t,ff:%t",
		top.Fingerprint(), shape, root,
		so.MaxStages, so.MaxNodes, so.MaxSketches, so.MaxCountChoices,
		so.DisablePrune1, so.DisablePrune2, so.FullFanoutOnly)
	// A hint filters the result set, so hinted searches get their own
	// entries; unhinted keys keep their historical format.
	if h := so.Hint.Canonical(); h != "" {
		key += "|h=" + h
	}
	return key
}

// sendRecvSchedule routes a one-to-one transfer: direct where a shared
// dimension exists, else through the sender's server-mate on the
// receiver's rail.
func sendRecvSchedule(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	src := col.Chunks[0].Src
	dst := col.Chunks[0].Dsts[0]
	s := &schedule.Schedule{NumGPUs: top.NumGPUs()}
	p := s.AddPiece(col.ChunkSize, 0)
	dimFor := func(a, b int) int {
		for d := 0; d < top.NumDims(); d++ {
			if top.SameGroup(d, a, b) {
				return d
			}
		}
		return -1
	}
	if d := dimFor(src, dst); d >= 0 {
		s.AddTransfer(schedule.Transfer{Src: src, Dst: dst, Piece: p, Dim: d})
		return s, nil
	}
	g := top.Sym.Local.N
	relay := (src/g)*g + dst%g
	d1, d2 := dimFor(src, relay), dimFor(relay, dst)
	if d1 < 0 || d2 < 0 {
		return nil, fmt.Errorf("core: no route %d→%d", src, dst)
	}
	first := s.AddTransfer(schedule.Transfer{Src: src, Dst: relay, Piece: p, Dim: d1})
	s.AddTransfer(schedule.Transfer{Src: relay, Dst: dst, Piece: p, Dim: d2, Deps: []int{first}, Order: 1})
	return s, nil
}

func validateForward(s *schedule.Schedule, col *collective.Collective) error {
	if err := s.Validate(col); err != nil {
		return fmt.Errorf("core: synthesized schedule invalid: %w", err)
	}
	return nil
}

// realized is the outcome of one candidate slot in a realization pass.
type realized struct {
	sched *schedule.Schedule
	time  float64
	ok    bool
}

// realizeAll realizes every candidate combination of one pass at
// accuracy e with the given engine. It replaces the per-candidate
// keyed solve cache with whole-pass isomorphism batching:
//
//  1. build each candidate's assembly in parallel;
//  2. pool the sub-demands of ALL candidates (in candidate-then-cell
//     order), partition them into isomorphism classes globally, and
//     solve one representative per class in parallel;
//  3. map each remaining sub-demand from its representative's
//     sub-schedule, then assemble and simulate each candidate in
//     parallel.
//
// Every result is written into a slot indexed by candidate or demand
// position and the shared counters are reduced in deterministic order,
// so schedules, times, and Stats are byte-identical for any Workers
// setting. Nil combinations (injected fixed schedules) and failed
// candidates yield ok=false for their slot only; a failed
// representative solve marks exactly the candidates that depend on it.
//
// When opts.SolveCache is wired, each pooled sub-demand is first offered
// to the cross-request cache; only the representatives of classes with no
// hit reach the solver, and every freshly computed per-demand
// sub-schedule is stored back (unless the context was cancelled, since a
// truncated exact solve may have returned its greedy incumbent, which
// must not masquerade as the converged solution in later requests).
func realizeAll(ctx context.Context, top *topology.Topology, col *collective.Collective, combos []*sketch.Combination,
	e float64, engine solve.Engine, opts Options, stats *Stats, span *obs.Span, pub *publisher, source string) []realized {

	engineName := engine.String()
	n := len(combos)
	out := make([]realized, n)
	asms := make([]*assembly, n)
	parallelFor(n, opts.Workers, func(ci int) {
		if combos[ci] == nil {
			return
		}
		a, err := newAssembly(top, col, combos[ci])
		if err != nil {
			cs := span.ChildLane("candidate")
			cs.SetInt("index", int64(ci))
			cs.SetStr("outcome", "unrealizable")
			cs.End()
			return // a candidate may be unrealizable; skip it
		}
		asms[ci] = a
	})

	// Pool every candidate's sub-demands; offs[ci] locates candidate
	// ci's cells inside the flat list.
	var demands []*solve.Demand
	offs := make([]int, n)
	for ci, a := range asms {
		offs[ci] = len(demands)
		if a == nil {
			continue
		}
		for _, k := range a.keys {
			demands = append(demands, a.cells[k].demand)
		}
	}

	// Cross-request cache: consult the engine-owned store per demand
	// before class batching. An exact-signature hit returns the stored
	// solution verbatim, which is what makes warm re-plans bit-identical
	// to the cold run that populated the cache.
	// SolverExact disables the flow bound inside the exact engine, which
	// changes which horizons are searched (and thus the node budget
	// spent), so the flag is part of the cache signature.
	noFlow := opts.SolverMode == SolverExact
	solveSig := fmt.Sprintf("e%.9g|g%d|t%d|s%d|fb%t",
		e, engine, opts.SolveTimeLimit.Nanoseconds(), opts.Seed, noFlow)
	// Hinted plans carry the hint in their signature so hinted and
	// unhinted solutions never collide in the memory or persist tiers.
	// Unhinted signatures are unchanged, keeping existing persisted
	// corpora valid.
	if h := opts.Hint.Canonical(); h != "" {
		solveSig += "|h=" + h
	}
	cached := make([]*solve.SubSchedule, len(demands))
	if opts.SolveCache != nil {
		parallelFor(len(demands), opts.Workers, func(i int) {
			cached[i] = opts.SolveCache.Lookup(demands[i], solveSig)
		})
		for i := range cached {
			if cached[i] != nil {
				stats.CrossCacheHits++
			}
		}
	}

	var repOf []int
	var mapFromRep []isomorph.Mapping
	if opts.DisableIsomorphCache {
		repOf = make([]int, len(demands))
		mapFromRep = make([]isomorph.Mapping, len(demands))
		for i, d := range demands {
			repOf[i] = i
			mapFromRep[i] = isomorph.Identity(d)
		}
	} else {
		repOf, mapFromRep = isomorph.Classes(demands)
	}
	reps := make([]int, 0, len(demands))
	for i := range demands {
		if repOf[i] == i {
			reps = append(reps, i)
		}
	}

	solveOpts := solve.Options{
		E:                e,
		Engine:           engine,
		TimeLimit:        opts.SolveTimeLimit,
		Seed:             opts.Seed,
		MILPWorkers:      opts.MILPWorkers,
		DisableFlowBound: noFlow,
	}

	// Solve each class representative once, in parallel; representatives
	// already served by the cross-request cache are skipped. Durations are
	// collected per slot and reduced serially below so MaxSolve does not
	// depend on goroutine interleaving.
	solved := make([]*solve.SubSchedule, len(demands))
	toSolve := make([]int, 0, len(reps))
	for _, i := range reps {
		if cached[i] != nil {
			solved[i] = cached[i]
		} else {
			toSolve = append(toSolve, i)
		}
	}
	durs := make([]time.Duration, len(demands))
	errs := make([]error, len(demands))
	parallelFor(len(toSolve), opts.Workers, func(k int) {
		i := toSolve[k]
		ws := span.ChildLane("solve.subdemand")
		ws.SetInt("demand", int64(i))
		so := solveOpts
		so.Span = ws
		start := time.Now()
		sub, err := solve.SolveCtx(ctx, demands[i], so)
		durs[i] = time.Since(start)
		ws.End()
		if err != nil {
			errs[i] = err // the class stays unsolved; its candidates drop out
			return
		}
		solved[i] = sub
	})
	for _, i := range toSolve {
		if solved[i] == nil {
			// Surface why the class failed, in deterministic demand
			// order, instead of silently dropping its candidates.
			// Cancellation is not an error condition (anytime path).
			if err := errs[i]; err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				var tle *solve.TooLargeError
				if errors.As(err, &tle) {
					stats.TooLarge++
				}
				if msg := err.Error(); len(stats.SolveErrors) < maxSolveErrors && !containsString(stats.SolveErrors, msg) {
					stats.SolveErrors = append(stats.SolveErrors, msg)
				}
			}
			continue
		}
		stats.SolverCalls++
		stats.CacheMisses++
		opts.Obs.Count("cache.misses", 1)
		if durs[i] > stats.MaxSolve {
			stats.MaxSolve = durs[i]
		}
	}
	// Non-representatives whose class solved are served by mapping (the
	// in-run isomorphism cache; cross-request hits are counted by the
	// engine, not here).
	for i := range demands {
		if repOf[i] != i && cached[i] == nil && solved[repOf[i]] != nil {
			stats.CacheHits++
			opts.Obs.Count("cache.hits", 1)
		}
	}

	// Map, assemble, and simulate each candidate.
	parallelFor(n, opts.Workers, func(ci int) {
		a := asms[ci]
		if a == nil {
			return
		}
		cs := span.ChildLane("candidate")
		cs.SetInt("index", int64(ci))
		bycell := make(map[cellKey]*solve.SubSchedule, len(a.keys))
		for local, k := range a.keys {
			g := offs[ci] + local
			var sub *solve.SubSchedule
			switch {
			case cached[g] != nil:
				sub = cached[g]
			case repOf[g] == g:
				sub = solved[g]
			case solved[repOf[g]] != nil:
				sub = isomorph.MapSchedule(solved[repOf[g]], mapFromRep[g])
			}
			if sub == nil {
				cs.SetStr("outcome", "unrealizable")
				cs.End()
				return
			}
			// Each pooled demand belongs to exactly one candidate, so this
			// store runs once per demand. Cancelled passes skip the store:
			// see the function comment.
			if opts.SolveCache != nil && cached[g] == nil && ctx.Err() == nil {
				opts.SolveCache.Store(demands[g], solveSig, sub)
			}
			bycell[k] = sub
		}
		sched, err := a.build(bycell)
		if err != nil {
			cs.SetStr("outcome", "unrealizable")
			cs.End()
			return
		}
		// Simulation of an assembled candidate is cheap and bounded;
		// honoring the context here would discard completed solver work
		// and break the anytime guarantee, so it runs to completion.
		r, err := sim.Simulate(top, sched, opts.Sim)
		if err != nil {
			cs.SetStr("outcome", "sim-failed")
			cs.End()
			return
		}
		cs.SetFloat("time", r.Time)
		cs.End()
		out[ci] = realized{sched: sched, time: r.Time, ok: true}
		// Publish as soon as the candidate is simulated: the stream is
		// anytime, so waiting for the pass barrier would only delay it.
		pub.offer(sched, r.Time, source, engineName, combos[ci])
	})
	return out
}

// maxSolveErrors caps the distinct solver errors surfaced per pass so a
// pathological run cannot grow Stats without bound.
const maxSolveErrors = 8

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// parallelFor runs fn(0..n-1) on up to workers goroutines, pulling
// indices from a shared atomic counter. Callers write results into
// index-slotted arrays, so scheduling order never leaks into outputs.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
