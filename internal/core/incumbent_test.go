package core

import (
	"math/rand"
	"reflect"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/sketch"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

// collectIncumbents runs SynthesizeContext with a recording callback.
func collectIncumbents(t *testing.T, top *topology.Topology, col *collective.Collective, opts Options) (*Result, []Incumbent) {
	t.Helper()
	var incs []Incumbent
	opts.OnIncumbent = func(inc Incumbent) { incs = append(incs, inc) }
	res, err := Synthesize(top, col, opts)
	if err != nil {
		t.Fatalf("streaming synthesize: %v", err)
	}
	return res, incs
}

// checkIncumbentInvariants asserts the publication contract: seq counts
// from 1, times strictly decrease, every incumbent passes the
// chunk-replay oracle, and the last incumbent is the returned result.
func checkIncumbentInvariants(t *testing.T, col *collective.Collective, res *Result, incs []Incumbent) {
	t.Helper()
	if len(incs) == 0 {
		t.Fatal("no incumbents published")
	}
	for i, inc := range incs {
		if inc.Seq != i+1 {
			t.Fatalf("incumbent %d has seq %d", i, inc.Seq)
		}
		if i > 0 && inc.Time >= incs[i-1].Time {
			t.Fatalf("incumbent stream not strictly improving: #%d %g after %g", i+1, inc.Time, incs[i-1].Time)
		}
		if inc.Bound > 0 && inc.Time < inc.Bound*(1-1e-9) {
			t.Fatalf("incumbent #%d beats its own lower bound: %g < %g", i+1, inc.Time, inc.Bound)
		}
		if err := verify.CheckSchedule(col, inc.Schedule); err != nil {
			t.Fatalf("incumbent #%d (%s/%s) fails the oracle: %v", i+1, inc.Source, inc.Engine, err)
		}
	}
	last := incs[len(incs)-1]
	if last.Time != res.Time {
		t.Fatalf("final incumbent %g != result %g", last.Time, res.Time)
	}
	if !reflect.DeepEqual(last.Schedule, res.Schedule) {
		t.Fatal("final incumbent schedule differs from the returned result")
	}
}

// TestIncumbentStreamMetamorphic is the randomized differential gate for
// the publisher refactor: across random topologies and all nine
// collective kinds, the incumbent stream is strictly improving, every
// published schedule passes the chunk-replay oracle, and attaching the
// stream changes nothing — the plain Synthesize result is bit-for-bit
// the streamed run's final incumbent.
func TestIncumbentStreamMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(20250808))
	for iter := 0; iter < 9; iter++ {
		top := verify.RandomTopology(rng)
		kind := verify.AllKinds[iter%len(verify.AllKinds)]
		col := verify.RandomCollective(rng, kind, top.NumGPUs())
		opts := Options{Seed: int64(iter), Workers: 1 + iter%3}

		res, incs := collectIncumbents(t, top, col, opts)
		checkIncumbentInvariants(t, col, res, incs)

		plain, err := Synthesize(top, col, opts)
		if err != nil {
			t.Fatalf("iter %d (%v on %s): plain synthesize: %v", iter, kind, top.Name, err)
		}
		if plain.Time != res.Time {
			t.Fatalf("iter %d (%v on %s): streaming changed the result time: %g vs %g",
				iter, kind, top.Name, res.Time, plain.Time)
		}
		if !reflect.DeepEqual(plain.Schedule, res.Schedule) {
			t.Fatalf("iter %d (%v on %s): streaming changed the schedule", iter, kind, top.Name)
		}
	}
}

// TestAllReduceWinnerByConcatenatedTime pins the non-monotone-transform
// case: on the tree-hinted A100 Clos AllReduce, the candidate with the
// best AllGather-phase time finishes into a worse concatenated
// ReduceScatter+AllGather schedule than a rival. The pipeline must rank
// finalists by the concatenated time — the one the caller sees and the
// one the incumbent stream's improvement gate is stated over — so the
// final result can never be worse than a published incumbent.
func TestAllReduceWinnerByConcatenatedTime(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllReduce(top.NumGPUs(), 64<<20)
	hint, err := sketch.ParseHint("family=tree")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 1, Hint: hint}

	res, incs := collectIncumbents(t, top, col, opts)
	checkIncumbentInvariants(t, col, res, incs)
	for i, inc := range incs {
		if res.Time > inc.Time {
			t.Fatalf("result %g worse than incumbent #%d at %g", res.Time, i+1, inc.Time)
		}
	}
}

// TestStopWithinStopsEarly: with a generous StopWithin threshold the
// pipeline settles for the coarse incumbent once it is within range of
// the flow bound — StoppedEarly is set, the result is not Partial, still
// passes the oracle, and is deterministic across runs. A full run of the
// same demand can only be at least as good.
func TestStopWithinStopsEarly(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	opts := Options{Workers: 1, StopWithin: 10}

	res, incs := collectIncumbents(t, top, col, opts)
	if !res.Stats.StoppedEarly {
		t.Fatal("StopWithin 1000% never fired")
	}
	if res.Partial {
		t.Fatal("early stop reported as Partial")
	}
	checkIncumbentInvariants(t, col, res, incs)

	again, err := Synthesize(top, col, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Time != res.Time || !reflect.DeepEqual(again.Schedule, res.Schedule) {
		t.Fatal("StopWithin run not deterministic")
	}

	full, err := Synthesize(top, col, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.StoppedEarly {
		t.Fatal("StoppedEarly set without StopWithin")
	}
	if full.Time > res.Time {
		t.Fatalf("full pipeline worse than early stop: %g > %g", full.Time, res.Time)
	}
}
