package workload

import (
	"math"
	"testing"

	"syccl/internal/collective"
)

func TestDPTrace(t *testing.T) {
	cfg := Config{Model: GPT3_6B7(), Kind: DataParallel, Degree: 16}
	trace, err := cfg.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Fatalf("trace = %d calls", len(trace))
	}
	if trace[0].Collective.Kind != collective.KindReduceScatter ||
		trace[1].Collective.Kind != collective.KindAllGather {
		t.Errorf("kinds: %v, %v", trace[0].Collective.Kind, trace[1].Collective.Kind)
	}
	// Full gradient = params × 2 bytes, split across 16.
	want := 6.7e9 * 2 / 16
	if math.Abs(trace[1].Collective.ChunkSize-want) > 1 {
		t.Errorf("AG slice = %g, want %g", trace[1].Collective.ChunkSize, want)
	}
}

func TestTPTrace(t *testing.T) {
	cfg := Config{Model: GPT3_6B7(), Kind: TensorParallel, Degree: 16}
	trace, err := cfg.Trace()
	if err != nil {
		t.Fatal(err)
	}
	// 4 AG + 4 RS per layer per micro-batch → 32 layers × 1 micro = 128
	// invocations each.
	for _, call := range trace {
		if call.Count != 4*32 {
			t.Errorf("count = %d, want %d", call.Count, 4*32)
		}
	}
	// Activation share: seq×hidden×2 / 16.
	want := 2048.0 * 4096 * 2 / 16
	if trace[0].Collective.ChunkSize != want {
		t.Errorf("activation slice = %g, want %g", trace[0].Collective.ChunkSize, want)
	}
}

func TestIterationSeconds(t *testing.T) {
	cfg := Config{Model: GPT3_6B7(), Kind: DataParallel, Degree: 16, ComputeSeconds: 0.6}
	constTimer := func(col *collective.Collective) (float64, error) { return 0.050, nil }
	got, err := cfg.IterationSeconds(constTimer)
	if err != nil {
		t.Fatal(err)
	}
	// compute + 0.35 × (2 × 50ms) = 0.635.
	if math.Abs(got-0.635) > 1e-9 {
		t.Errorf("iteration = %g, want 0.635", got)
	}
}

func TestTPExposureHigherThanDP(t *testing.T) {
	tp := Config{Model: GPT3_6B7(), Kind: TensorParallel, Degree: 16}.withDefaults()
	dp := Config{Model: GPT3_6B7(), Kind: DataParallel, Degree: 16}.withDefaults()
	if tp.Exposure <= dp.Exposure {
		t.Errorf("TP exposure %g should exceed DP %g (TP collectives block more)", tp.Exposure, dp.Exposure)
	}
}

func TestFasterCommReducesIteration(t *testing.T) {
	cfg := Config{Model: Llama3_8B(), Kind: TensorParallel, Degree: 16, ComputeSeconds: 0.2}
	slow, _ := cfg.IterationSeconds(func(*collective.Collective) (float64, error) { return 100e-6, nil })
	fast, _ := cfg.IterationSeconds(func(*collective.Collective) (float64, error) { return 60e-6, nil })
	if fast >= slow {
		t.Errorf("faster collectives did not reduce iteration: %g vs %g", fast, slow)
	}
	// The improvement must be single-digit-% scale, like Table 6.
	gain := (slow - fast) / slow
	if gain <= 0 || gain > 0.5 {
		t.Errorf("gain = %g implausible", gain)
	}
}

func TestTable6Configs(t *testing.T) {
	cfgs := Table6Configs()
	if len(cfgs) != 6 {
		t.Fatalf("rows = %d", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		names[c.Name()] = true
		if _, err := c.Trace(); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
	for _, want := range []string{"GPT3-6.7B, DP16", "GPT3-6.7B, TP16", "GPT3-6.7B, TP32",
		"Llama3-8B, DP16", "Llama3-8B, TP16", "Llama3-8B, TP32"} {
		if !names[want] {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestRejectsDegenerate(t *testing.T) {
	cfg := Config{Model: GPT3_6B7(), Kind: DataParallel, Degree: 1}
	if _, err := cfg.Trace(); err == nil {
		t.Error("accepted degree 1")
	}
}
