// Package workload models the end-to-end training evaluation of §7.5:
// the per-iteration collective-communication traces of GPT3-6.7B and
// Llama3-8B under data parallelism (with a distributed optimizer) and
// tensor parallelism, plus an iteration-time model that combines a
// calibrated compute term with the simulated time of each collective.
//
// As in the paper, ReduceScatter and AllGather dominate both
// configurations: DP performs one gradient ReduceScatter and one
// parameter AllGather per iteration (ZeRO-style distributed optimizer);
// TP with sequence parallelism performs an AllGather and a ReduceScatter
// around both the attention and MLP blocks of every layer, forward and
// backward. Compute times are fixed per configuration (DESIGN.md
// substitution #5): only the communication term varies with the schedule
// synthesizer, which is exactly the quantity Table 6 compares.
package workload

import (
	"fmt"

	"syccl/internal/collective"
)

// Model describes a transformer for trace generation.
type Model struct {
	Name       string
	Params     float64 // parameter count
	Layers     int
	Hidden     int
	SeqLen     int
	BytesPerEl float64 // training dtype width (bf16 = 2)
}

// GPT3_6B7 is the GPT3-6.7B configuration [Brown et al.].
func GPT3_6B7() Model {
	return Model{Name: "GPT3-6.7B", Params: 6.7e9, Layers: 32, Hidden: 4096, SeqLen: 2048, BytesPerEl: 2}
}

// Llama3_8B is the Llama3-8B configuration [Touvron et al.].
func Llama3_8B() Model {
	return Model{Name: "Llama3-8B", Params: 8.0e9, Layers: 32, Hidden: 4096, SeqLen: 8192, BytesPerEl: 2}
}

// ParallelKind selects the parallelism mechanism.
type ParallelKind int

// Parallelism mechanisms of §7.5.
const (
	DataParallel ParallelKind = iota
	TensorParallel
)

func (k ParallelKind) String() string {
	if k == DataParallel {
		return "DP"
	}
	return "TP"
}

// Config is one Table 6 row: a model trained with one parallelism
// mechanism across Degree GPUs.
type Config struct {
	Model      Model
	Kind       ParallelKind
	Degree     int
	MicroBatch int // per-GPU micro-batch size (default 1)
	NumMicro   int // micro-batches per iteration (default 8)
	// ComputeSeconds is the calibrated per-iteration compute time.
	ComputeSeconds float64
	// Exposure is the fraction of communication time not hidden behind
	// compute (DP gradient collectives overlap the backward pass; TP
	// collectives block).
	Exposure float64
}

// Call is one collective invocation in the per-iteration trace.
type Call struct {
	Collective *collective.Collective
	Count      int // invocations per iteration
}

func (c Config) withDefaults() Config {
	if c.MicroBatch <= 0 {
		c.MicroBatch = 1
	}
	if c.NumMicro <= 0 {
		c.NumMicro = 1
	}
	if c.Exposure <= 0 {
		if c.Kind == DataParallel {
			c.Exposure = 0.35
		} else {
			// Megatron overlaps a sizable share of sequence-parallel
			// collectives with independent compute.
			c.Exposure = 0.5
		}
	}
	return c
}

// Trace returns the per-iteration collective calls of the configuration.
func (c Config) Trace() ([]Call, error) {
	c = c.withDefaults()
	n := c.Degree
	if n < 2 {
		return nil, fmt.Errorf("workload: degree %d", n)
	}
	switch c.Kind {
	case DataParallel:
		// Distributed optimizer: gradient ReduceScatter + parameter
		// AllGather over the full model, once per iteration.
		gradBytes := c.Model.Params * c.Model.BytesPerEl
		per := gradBytes / float64(n)
		return []Call{
			{Collective: collective.ReduceScatter(n, per), Count: 1},
			{Collective: collective.AllGather(n, per), Count: 1},
		}, nil
	case TensorParallel:
		// Sequence-parallel Megatron: per layer, AllGather before and
		// ReduceScatter after both the attention and MLP blocks, in the
		// forward and again in the backward pass → 4 AG + 4 RS per layer
		// per micro-batch, activation-sized.
		actBytes := float64(c.MicroBatch) * float64(c.Model.SeqLen) * float64(c.Model.Hidden) * c.Model.BytesPerEl
		per := actBytes / float64(n)
		count := 4 * c.Model.Layers * c.NumMicro
		return []Call{
			{Collective: collective.AllGather(n, per), Count: count},
			{Collective: collective.ReduceScatter(n, per), Count: count},
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown parallelism %d", int(c.Kind))
	}
}

// CollectiveTimer returns the execution time in seconds of a collective
// under some synthesizer's schedule.
type CollectiveTimer func(col *collective.Collective) (float64, error)

// IterationSeconds evaluates the end-to-end iteration time: calibrated
// compute plus the exposed fraction of the summed collective times.
func (c Config) IterationSeconds(timer CollectiveTimer) (float64, error) {
	c = c.withDefaults()
	trace, err := c.Trace()
	if err != nil {
		return 0, err
	}
	comm := 0.0
	for _, call := range trace {
		t, err := timer(call.Collective)
		if err != nil {
			return 0, err
		}
		comm += t * float64(call.Count)
	}
	return c.ComputeSeconds + c.Exposure*comm, nil
}

// Table6Configs returns the six rows of Table 6 with compute terms
// calibrated so the NCCL column lands near the paper's absolute iteration
// times on the A100 testbed (672/200/219 ms for GPT3-6.7B and
// 1195/434/855 ms for Llama3-8B).
func Table6Configs() []Config {
	return []Config{
		{Model: GPT3_6B7(), Kind: DataParallel, Degree: 16, ComputeSeconds: 0.580},
		{Model: GPT3_6B7(), Kind: TensorParallel, Degree: 16, ComputeSeconds: 0.176},
		{Model: GPT3_6B7(), Kind: TensorParallel, Degree: 32, ComputeSeconds: 0.173},
		{Model: Llama3_8B(), Kind: DataParallel, Degree: 16, ComputeSeconds: 1.080},
		{Model: Llama3_8B(), Kind: TensorParallel, Degree: 16, ComputeSeconds: 0.352},
		{Model: Llama3_8B(), Kind: TensorParallel, Degree: 32, ComputeSeconds: 0.768},
	}
}

// Name renders a Table 6 row label like "GPT3-6.7B, DP16".
func (c Config) Name() string {
	return fmt.Sprintf("%s, %s%d", c.Model.Name, c.Kind, c.Degree)
}
