// Package mxml converts schedules to and from an MSCCL-executor-style XML
// format, the interface the paper's schedule executor uses (§6: the
// synthesized schedule becomes an XML with runtime parameters — transport
// protocol and channel count — that a lightweight parser injects into
// MSCCL-executor without touching CUDA kernels).
//
// The layout follows MSCCL algorithm files: one <gpu> per rank, one
// threadblock <tb> per (peer, direction) pair holding ordered <step>
// elements; cross-threadblock dependencies reference the delivering
// GPU/threadblock/step triple. Execution in this repository means
// round-tripping the XML and running the α-β simulator on the parsed
// schedule (DESIGN.md substitution #4).
package mxml

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"syccl/internal/schedule"
	"syccl/internal/sim"
)

// Algo is the root element.
type Algo struct {
	XMLName   xml.Name `xml:"algo"`
	Name      string   `xml:"name,attr"`
	NGPUs     int      `xml:"ngpus,attr"`
	NChunks   int      `xml:"nchunks,attr"`
	Proto     string   `xml:"proto,attr"` // "Simple" or "LL128"
	NChannels int      `xml:"nchannels,attr"`
	Pieces    []Piece  `xml:"piece"`
	GPUs      []GPU    `xml:"gpu"`
}

// Piece declares a payload unit.
type Piece struct {
	ID     int     `xml:"id,attr"`
	Bytes  float64 `xml:"bytes,attr"`
	Chunks string  `xml:"chunks,attr"` // comma-separated collective chunk IDs
}

// GPU groups the threadblocks of one rank.
type GPU struct {
	ID  int  `xml:"id,attr"`
	TBs []TB `xml:"tb"`
}

// TB is a threadblock: an ordered lane of sends toward one peer.
type TB struct {
	ID    int    `xml:"id,attr"`
	Peer  int    `xml:"peer,attr"`
	Dim   int    `xml:"dim,attr"`
	Steps []Step `xml:"step"`
}

// Step is one send. Deps lists the steps whose receives must complete
// first, as space-separated gpu.tb.step triples (empty: none). Reduction
// steps can carry several dependencies, one per inbound contribution.
type Step struct {
	S     int    `xml:"s,attr"`
	Piece int    `xml:"piece,attr"`
	Order int    `xml:"order,attr"`
	Seq   int    `xml:"seq,attr"` // original transfer index: exact FIFO tie-breaks survive the round trip
	Deps  string `xml:"deps,attr,omitempty"`
}

// Params are the runtime knobs recorded in the XML (§6).
type Params struct {
	Name      string
	Proto     string // "Simple" (default) or "LL128"
	NChannels int
}

// Marshal serializes a schedule.
func Marshal(s *schedule.Schedule, p Params) ([]byte, error) {
	if p.Proto == "" {
		p.Proto = "Simple"
	}
	if p.NChannels <= 0 {
		p.NChannels = 1
	}
	algo := Algo{
		Name:      p.Name,
		NGPUs:     s.NumGPUs,
		NChunks:   len(s.Pieces),
		Proto:     p.Proto,
		NChannels: p.NChannels,
	}
	for i, piece := range s.Pieces {
		ids := make([]string, len(piece.Chunks))
		for k, c := range piece.Chunks {
			ids[k] = fmt.Sprintf("%d", c)
		}
		algo.Pieces = append(algo.Pieces, Piece{ID: i, Bytes: piece.Bytes, Chunks: strings.Join(ids, ",")})
	}

	// Assign transfers to threadblocks: one per (src, dst, dim) lane,
	// steps in Order.
	type laneKey struct{ src, dst, dim int }
	lanes := map[laneKey][]int{}
	for i, t := range s.Transfers {
		k := laneKey{t.Src, t.Dst, t.Dim}
		lanes[k] = append(lanes[k], i)
	}
	// Locate each transfer's (gpu, tb, step) address for dependencies.
	type addr struct{ gpu, tb, step int }
	addrOf := make([]addr, len(s.Transfers))

	gpus := make([]GPU, s.NumGPUs)
	for g := range gpus {
		gpus[g].ID = g
	}
	var keys []laneKey
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].src != keys[b].src {
			return keys[a].src < keys[b].src
		}
		if keys[a].dst != keys[b].dst {
			return keys[a].dst < keys[b].dst
		}
		return keys[a].dim < keys[b].dim
	})
	for _, k := range keys {
		idxs := lanes[k]
		sort.SliceStable(idxs, func(a, b int) bool { return s.Transfers[idxs[a]].Order < s.Transfers[idxs[b]].Order })
		tb := TB{ID: len(gpus[k.src].TBs), Peer: k.dst, Dim: k.dim}
		for si, ti := range idxs {
			addrOf[ti] = addr{k.src, tb.ID, si}
			tb.Steps = append(tb.Steps, Step{S: si, Piece: s.Transfers[ti].Piece, Order: s.Transfers[ti].Order, Seq: ti})
		}
		gpus[k.src].TBs = append(gpus[k.src].TBs, tb)
	}
	// Second pass: dependency addresses.
	for _, k := range keys {
		tbIdx := findTB(gpus[k.src].TBs, k.dst, k.dim)
		tb := &gpus[k.src].TBs[tbIdx]
		for si, ti := range lanes[k] {
			var parts []string
			for _, d := range s.Transfers[ti].Deps {
				a := addrOf[d]
				parts = append(parts, fmt.Sprintf("%d.%d.%d", a.gpu, a.tb, a.step))
			}
			tb.Steps[si].Deps = strings.Join(parts, " ")
		}
	}
	algo.GPUs = gpus
	out, err := xml.MarshalIndent(algo, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

func findTB(tbs []TB, peer, dim int) int {
	for i, tb := range tbs {
		if tb.Peer == peer && tb.Dim == dim {
			return i
		}
	}
	return -1
}

// Parse reconstructs a schedule (plus the runtime parameters) from XML.
// Intra-lane FIFO ordering is restored through the Order field; recorded
// dependencies are re-attached.
func Parse(data []byte) (*schedule.Schedule, Params, error) {
	var algo Algo
	if err := xml.Unmarshal(data, &algo); err != nil {
		return nil, Params{}, fmt.Errorf("mxml: %w", err)
	}
	s := &schedule.Schedule{NumGPUs: algo.NGPUs}
	for _, p := range algo.Pieces {
		var chunks []int
		if p.Chunks != "" {
			for _, part := range strings.Split(p.Chunks, ",") {
				var c int
				if _, err := fmt.Sscanf(part, "%d", &c); err != nil {
					return nil, Params{}, fmt.Errorf("mxml: bad chunk list %q", p.Chunks)
				}
				chunks = append(chunks, c)
			}
		}
		s.AddPiece(p.Bytes, chunks...)
	}
	// First pass: collect all steps, restore the original transfer
	// sequence via Seq (exact port-FIFO tie-breaks survive the round
	// trip), then re-attach dependencies by address.
	type addr struct{ gpu, tb, step int }
	type flatStep struct {
		at   addr
		src  int
		tb   TB
		step Step
	}
	var flat []flatStep
	for _, g := range algo.GPUs {
		for _, tb := range g.TBs {
			for _, st := range tb.Steps {
				flat = append(flat, flatStep{addr{g.ID, tb.ID, st.S}, g.ID, tb, st})
			}
		}
	}
	sort.SliceStable(flat, func(a, b int) bool { return flat[a].step.Seq < flat[b].step.Seq })
	idxOf := map[addr]int{}
	for _, fs := range flat {
		i := s.AddTransfer(schedule.Transfer{
			Src: fs.src, Dst: fs.tb.Peer, Dim: fs.tb.Dim, Piece: fs.step.Piece, Order: fs.step.Order,
		})
		idxOf[fs.at] = i
	}
	for _, fs := range flat {
		if fs.step.Deps == "" {
			continue
		}
		for _, part := range strings.Fields(fs.step.Deps) {
			var a addr
			if _, err := fmt.Sscanf(part, "%d.%d.%d", &a.gpu, &a.tb, &a.step); err != nil {
				return nil, Params{}, fmt.Errorf("mxml: bad dep %q", part)
			}
			di, ok := idxOf[a]
			if !ok {
				return nil, Params{}, fmt.Errorf("mxml: dangling dependency %+v", a)
			}
			i := idxOf[fs.at]
			s.Transfers[i].Deps = append(s.Transfers[i].Deps, di)
		}
	}
	return s, Params{Name: algo.Name, Proto: algo.Proto, NChannels: algo.NChannels}, nil
}

// SimOptions derives simulator options from the runtime parameters: more
// channels pipeline more blocks; the LL128 protocol trades bandwidth for
// latency like the real transport.
func SimOptions(p Params) sim.Options {
	o := sim.DefaultOptions()
	if p.NChannels > 1 {
		o.MaxBlocks = 8 * p.NChannels
		o.BlockBytes = 256 * 1024
	}
	if p.Proto == "LL128" {
		o.BlockBytes = 128 * 1024
	}
	return o
}

// Execute round-trips the XML and simulates it — the closest analogue of
// handing the file to MSCCL-executor.
func Execute(data []byte, topSim func(*schedule.Schedule, sim.Options) (*sim.Result, error)) (*sim.Result, error) {
	s, params, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return topSim(s, SimOptions(params))
}
