package mxml

import (
	"strings"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/nccl"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

func TestRoundTripRing(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllGather(16, 1<<20)
	s, err := nccl.AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(s, Params{Name: "ring-ag", NChannels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<algo") || !strings.Contains(string(data), "ring-ag") {
		t.Error("XML missing expected elements")
	}
	parsed, params, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if params.Name != "ring-ag" || params.NChannels != 2 || params.Proto != "Simple" {
		t.Errorf("params = %+v", params)
	}
	// Parsed schedule must still satisfy the collective.
	if err := parsed.Validate(col); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	if len(parsed.Transfers) != len(s.Transfers) {
		t.Errorf("transfers %d → %d", len(s.Transfers), len(parsed.Transfers))
	}
	// Simulated performance of the round-tripped schedule matches the
	// original (same options).
	r1, err := sim.Simulate(top, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Simulate(top, parsed, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.Time / r1.Time
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("round trip changed simulated time: %g vs %g", r2.Time, r1.Time)
	}
}

func TestRoundTripReduction(t *testing.T) {
	// Mirrored schedules carry multi-dependency reduction steps; the XML
	// must preserve them.
	top := topology.A100Clos(2)
	col := collective.ReduceScatter(16, 1<<20)
	s, err := nccl.ReduceScatter(top, col)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(s, Params{Name: "ring-rs"})
	if err != nil {
		t.Fatal(err)
	}
	parsed, _, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.Validate(col); err != nil {
		t.Fatalf("round-tripped reduction invalid: %v", err)
	}
}

func TestExecute(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(8, 1<<20)
	s, err := nccl.AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(s, Params{Name: "exec", NChannels: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(data, func(sch *schedule.Schedule, o sim.Options) (*sim.Result, error) {
		return sim.Simulate(top, sch, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Errorf("executed time %g", res.Time)
	}
}

func TestSimOptionsFromParams(t *testing.T) {
	o := SimOptions(Params{NChannels: 4})
	if o.MaxBlocks != 32 {
		t.Errorf("MaxBlocks = %d", o.MaxBlocks)
	}
	ll := SimOptions(Params{Proto: "LL128", NChannels: 1})
	if ll.BlockBytes != 128*1024 {
		t.Errorf("LL128 BlockBytes = %g", ll.BlockBytes)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := Parse([]byte("<algo><gpu")); err == nil {
		t.Error("accepted malformed XML")
	}
	bad := `<algo ngpus="2"><gpu id="0"><tb id="0" peer="1" dim="0"><step s="0" piece="0" order="0" deps="9.9.9"/></tb></gpu></algo>`
	if _, _, err := Parse([]byte(bad)); err == nil {
		t.Error("accepted dangling dependency")
	}
}
