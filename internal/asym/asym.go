// Package asym handles asymmetric collective workloads — AlltoAllv and
// AllGatherv, where GPUs send or receive different volumes (MoE-style
// traffic). §8 of the paper notes that collective symmetry breaks here
// and recommends heuristic synthesis over symmetry-aware modeling; this
// package implements that recommendation: a latency/bandwidth-aware
// greedy scheduler over the same topology and schedule substrate, with
// PXN-style relaying on rail-only fabrics.
package asym

import (
	"fmt"
	"sort"

	"syccl/internal/schedule"
	"syccl/internal/topology"
)

// Pair is one directed transfer requirement.
type Pair struct {
	Src, Dst int
	Bytes    float64
}

// Demand is an asymmetric collective: an arbitrary multiset of directed
// requirements.
type Demand struct {
	NumGPUs int
	Pairs   []Pair
}

// AlltoAllV builds a demand from a size matrix: bytes[s][d] is the
// payload GPU s sends to GPU d (0 or the diagonal are skipped).
func AlltoAllV(bytes [][]float64) (*Demand, error) {
	n := len(bytes)
	if n < 2 {
		return nil, fmt.Errorf("asym: need ≥2 GPUs, got %d", n)
	}
	d := &Demand{NumGPUs: n}
	for s := range bytes {
		if len(bytes[s]) != n {
			return nil, fmt.Errorf("asym: row %d has %d entries, want %d", s, len(bytes[s]), n)
		}
		for dst, b := range bytes[s] {
			if s == dst || b == 0 {
				continue
			}
			if b < 0 {
				return nil, fmt.Errorf("asym: negative size at [%d][%d]", s, dst)
			}
			d.Pairs = append(d.Pairs, Pair{Src: s, Dst: dst, Bytes: b})
		}
	}
	return d, nil
}

// AllGatherV builds a demand where GPU i contributes bytes[i] to every
// other GPU (direct form; relays are introduced by the scheduler when
// required by the fabric).
func AllGatherV(bytes []float64) (*Demand, error) {
	n := len(bytes)
	if n < 2 {
		return nil, fmt.Errorf("asym: need ≥2 GPUs, got %d", n)
	}
	d := &Demand{NumGPUs: n}
	for s, b := range bytes {
		if b < 0 {
			return nil, fmt.Errorf("asym: negative size at %d", s)
		}
		if b == 0 {
			continue
		}
		for dst := 0; dst < n; dst++ {
			if dst != s {
				d.Pairs = append(d.Pairs, Pair{Src: s, Dst: dst, Bytes: b})
			}
		}
	}
	return d, nil
}

// TotalBytes sums the demanded payload.
func (d *Demand) TotalBytes() float64 {
	var t float64
	for _, p := range d.Pairs {
		t += p.Bytes
	}
	return t
}

// Validate checks the demand.
func (d *Demand) Validate() error {
	if d.NumGPUs < 2 {
		return fmt.Errorf("asym: need ≥2 GPUs")
	}
	for i, p := range d.Pairs {
		if p.Src < 0 || p.Src >= d.NumGPUs || p.Dst < 0 || p.Dst >= d.NumGPUs || p.Src == p.Dst {
			return fmt.Errorf("asym: pair %d has bad endpoints %d→%d", i, p.Src, p.Dst)
		}
		if p.Bytes <= 0 {
			return fmt.Errorf("asym: pair %d non-positive size", i)
		}
	}
	return nil
}

// Synthesize builds a schedule for the asymmetric demand: pairs are
// placed largest-first (longest-processing-time rule) on the least-loaded
// feasible route — direct where a shared dimension exists, otherwise a
// two-hop PXN relay through the sender's server-mate on the receiver's
// rail. Port loads are tracked in seconds so heterogeneous sizes balance.
func Synthesize(top *topology.Topology, d *Demand) (*schedule.Schedule, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if top.NumGPUs() != d.NumGPUs {
		return nil, fmt.Errorf("asym: demand spans %d GPUs, topology %d", d.NumGPUs, top.NumGPUs())
	}
	g := top.Sym.Local.N

	// Sort pairs by descending size (stable for determinism).
	order := make([]int, len(d.Pairs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := d.Pairs[order[a]], d.Pairs[order[b]]
		if pa.Bytes != pb.Bytes {
			return pa.Bytes > pb.Bytes
		}
		if pa.Src != pb.Src {
			return pa.Src < pb.Src
		}
		return pa.Dst < pb.Dst
	})

	// Port load in seconds per (gpu, dim, direction).
	egress := make([][]float64, d.NumGPUs)
	ingress := make([][]float64, d.NumGPUs)
	for i := range egress {
		egress[i] = make([]float64, top.NumDims())
		ingress[i] = make([]float64, top.NumDims())
	}
	dimsFor := func(a, b int) []int {
		var out []int
		for dd := 0; dd < top.NumDims(); dd++ {
			if top.SameGroup(dd, a, b) {
				out = append(out, dd)
			}
		}
		return out
	}
	// cost of placing bytes on (src→dst) over dim: resulting max port load.
	place := func(src, dst, dim int, bytes float64) float64 {
		t := top.Dim(dim).Beta * bytes
		e := egress[src][dim] + t
		in := ingress[dst][dim] + t
		if e > in {
			return e
		}
		return in
	}
	commit := func(src, dst, dim int, bytes float64) {
		t := top.Dim(dim).Beta * bytes
		egress[src][dim] += t
		ingress[dst][dim] += t
	}

	s := &schedule.Schedule{NumGPUs: d.NumGPUs}
	// Deterministic order hint: larger pairs first per port.
	for seq, idx := range order {
		p := d.Pairs[idx]
		piece := s.AddPiece(p.Bytes)
		if dims := dimsFor(p.Src, p.Dst); len(dims) > 0 {
			best, bestCost := dims[0], place(p.Src, p.Dst, dims[0], p.Bytes)
			for _, dd := range dims[1:] {
				if c := place(p.Src, p.Dst, dd, p.Bytes); c < bestCost {
					best, bestCost = dd, c
				}
			}
			commit(p.Src, p.Dst, best, p.Bytes)
			s.AddTransfer(schedule.Transfer{Src: p.Src, Dst: p.Dst, Piece: piece, Dim: best, Order: seq})
			continue
		}
		// Two-hop relay: prefer the PXN mate; fall back to any GPU that
		// reaches both endpoints.
		relay := (p.Src/g)*g + p.Dst%g
		if len(dimsFor(p.Src, relay)) == 0 || len(dimsFor(relay, p.Dst)) == 0 {
			relay = -1
			for r := 0; r < d.NumGPUs; r++ {
				if r != p.Src && r != p.Dst && len(dimsFor(p.Src, r)) > 0 && len(dimsFor(r, p.Dst)) > 0 {
					relay = r
					break
				}
			}
			if relay < 0 {
				return nil, fmt.Errorf("asym: no route %d→%d", p.Src, p.Dst)
			}
		}
		d1 := bestDim(dimsFor(p.Src, relay), func(dd int) float64 { return place(p.Src, relay, dd, p.Bytes) })
		commit(p.Src, relay, d1, p.Bytes)
		first := s.AddTransfer(schedule.Transfer{Src: p.Src, Dst: relay, Piece: piece, Dim: d1, Order: seq})
		d2 := bestDim(dimsFor(relay, p.Dst), func(dd int) float64 { return place(relay, p.Dst, dd, p.Bytes) })
		commit(relay, p.Dst, d2, p.Bytes)
		s.AddTransfer(schedule.Transfer{Src: relay, Dst: p.Dst, Piece: piece, Dim: d2, Order: seq, Deps: []int{first}})
	}
	return s, nil
}

func bestDim(dims []int, cost func(int) float64) int {
	best, bestCost := dims[0], cost(dims[0])
	for _, dd := range dims[1:] {
		if c := cost(dd); c < bestCost {
			best, bestCost = dd, c
		}
	}
	return best
}

// CheckDelivery verifies that a schedule delivers every pair (used by
// tests; asymmetric demands cannot reuse schedule.Validate, which assumes
// uniform chunk sizes).
func CheckDelivery(d *Demand, s *schedule.Schedule) error {
	// Count delivered bytes per (src is implicit in the piece) pair by
	// walking transfer chains per piece.
	type key struct {
		piece int
		gpu   int
	}
	has := map[key]bool{}
	// Pieces are created in pair order by Synthesize; a piece belongs to
	// pair i when piece index == i. Reconstruct conservatively: treat
	// the first transfer of each piece as starting at the pair's source.
	firstSrc := map[int]int{}
	for _, t := range s.Transfers {
		if _, ok := firstSrc[t.Piece]; !ok {
			firstSrc[t.Piece] = t.Src
		}
	}
	for _, t := range s.Transfers {
		k := key{t.Piece, t.Src}
		if t.Src != firstSrc[t.Piece] && !has[k] {
			return fmt.Errorf("asym: piece %d relayed from %d before arrival", t.Piece, t.Src)
		}
		has[key{t.Piece, t.Dst}] = true
	}
	// Pair i must be delivered by some piece whose origin is Pairs[i].Src
	// with matching size; Synthesize's 1:1 layout makes this a direct
	// index check.
	if len(s.Pieces) != len(d.Pairs) {
		return fmt.Errorf("asym: %d pieces for %d pairs", len(s.Pieces), len(d.Pairs))
	}
	// Transfers were appended in sorted-order, so map piece→pair via
	// sizes and endpoints.
	for pi := range s.Pieces {
		src := firstSrc[pi]
		delivered := false
		for _, pr := range d.Pairs {
			if pr.Src == src && pr.Bytes == s.Pieces[pi].Bytes && has[key{pi, pr.Dst}] {
				delivered = true
				break
			}
		}
		if !delivered {
			return fmt.Errorf("asym: piece %d (from %d) not delivered to any matching pair", pi, src)
		}
	}
	return nil
}
