package asym

import (
	"math/rand"
	"testing"

	"syccl/internal/sim"
	"syccl/internal/topology"
)

func TestAlltoAllVConstruction(t *testing.T) {
	bytes := [][]float64{
		{0, 100, 0, 300},
		{50, 0, 60, 0},
		{0, 0, 0, 10},
		{1, 2, 3, 0},
	}
	d, err := AlltoAllV(bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Pairs) != 8 {
		t.Errorf("pairs = %d, want 8", len(d.Pairs))
	}
	if d.TotalBytes() != 526 {
		t.Errorf("total = %g", d.TotalBytes())
	}
	if _, err := AlltoAllV([][]float64{{0}}); err == nil {
		t.Error("accepted 1-GPU matrix")
	}
	if _, err := AlltoAllV([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("accepted ragged matrix")
	}
	if _, err := AlltoAllV([][]float64{{0, -1}, {1, 0}}); err == nil {
		t.Error("accepted negative size")
	}
}

func TestAllGatherV(t *testing.T) {
	d, err := AllGatherV([]float64{100, 0, 300, 50})
	if err != nil {
		t.Fatal(err)
	}
	// GPUs 0, 2, 3 each broadcast to 3 peers; GPU 1 contributes nothing.
	if len(d.Pairs) != 9 {
		t.Errorf("pairs = %d, want 9", len(d.Pairs))
	}
}

func TestSynthesizeOnClos(t *testing.T) {
	top := topology.A100Clos(2)
	rng := rand.New(rand.NewSource(9))
	bytes := make([][]float64, 16)
	for s := range bytes {
		bytes[s] = make([]float64, 16)
		for dd := range bytes[s] {
			if s != dd && rng.Float64() < 0.6 {
				bytes[s][dd] = float64(1+rng.Intn(64)) * 1024 * 64 // skewed sizes
			}
		}
	}
	d, err := AlltoAllV(bytes)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Synthesize(top, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDelivery(d, sched); err != nil {
		t.Fatal(err)
	}
	// Clos connects every pair: no relays.
	if len(sched.Transfers) != len(d.Pairs) {
		t.Errorf("transfers %d, want %d direct", len(sched.Transfers), len(d.Pairs))
	}
	if _, err := sim.Simulate(top, sched, sim.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeRelaysOnRail(t *testing.T) {
	top := topology.H800Rail(2)
	bytes := make([][]float64, 16)
	for s := range bytes {
		bytes[s] = make([]float64, 16)
	}
	// One cross-rail, cross-server pair: GPU 1 (srv0 rail1) → GPU 10
	// (srv1 rail2).
	bytes[1][10] = 1 << 20
	d, err := AlltoAllV(bytes)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Synthesize(top, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Transfers) != 2 {
		t.Fatalf("transfers = %d, want 2 (PXN relay)", len(sched.Transfers))
	}
	// Relay must be GPU 2 (server 0, rail 2).
	if sched.Transfers[0].Dst != 2 || sched.Transfers[1].Src != 2 {
		t.Errorf("relay path: %+v", sched.Transfers)
	}
	if err := CheckDelivery(d, sched); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Simulate(top, sched, sim.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestSkewBalancing(t *testing.T) {
	// A hot sender with two equal receivers on a Clos fabric: the two
	// network dims... (16-GPU Clos has one leaf dim) — check load is at
	// least delivered and simulation time tracks the skew.
	top := topology.A100Clos(2)
	bytes := make([][]float64, 16)
	for s := range bytes {
		bytes[s] = make([]float64, 16)
	}
	bytes[0][8] = 256 << 20 // hot pair, cross-server
	bytes[1][9] = 1 << 10   // tiny pair
	d, _ := AlltoAllV(bytes)
	sched, err := Synthesize(top, d)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(top, sched, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Completion ≈ hot pair over per-GPU network bandwidth.
	want := float64(256<<20) / topology.A100NetBandwidth
	if r.Time < want*0.9 || r.Time > want*1.5 {
		t.Errorf("time %g, want ≈%g", r.Time, want)
	}
}

func TestCheckDeliveryCatchesLoss(t *testing.T) {
	top := topology.A100Clos(2)
	bytes := make([][]float64, 16)
	for s := range bytes {
		bytes[s] = make([]float64, 16)
	}
	bytes[0][1] = 100
	bytes[2][3] = 200
	d, _ := AlltoAllV(bytes)
	sched, err := Synthesize(top, d)
	if err != nil {
		t.Fatal(err)
	}
	sched.Transfers = sched.Transfers[:1] // drop one delivery
	if CheckDelivery(d, sched) == nil {
		t.Error("accepted lost delivery")
	}
}
