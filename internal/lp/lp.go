// Package lp implements a linear-programming solver: a two-phase primal
// simplex over a dense tableau, with Bland's rule for anti-cycling.
//
// It is the foundation of the MILP solver (package milp) that SyCCL and
// the TECCL baseline use to synthesize sub-schedules (§5.1, Appendix A).
// Problems are stated in general form:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx (≤|=|≥) bᵢ
//	            lo ≤ x ≤ hi
//
// The solver targets the modest problem sizes produced by SyCCL's
// symmetry decomposition (hundreds of variables); it favors clarity and
// numerical robustness over large-scale performance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is aᵀx op rhs.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Status classifies a solve outcome.
type Status int

// Solve statuses.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return "unknown"
	}
}

// Problem is a linear program under construction.
type Problem struct {
	numVars     int
	c           []float64
	lo, hi      []float64
	constraints []Constraint
}

// NewProblem creates a problem with n variables, default bounds [0, +inf)
// and zero objective.
func NewProblem(n int) *Problem {
	p := &Problem{numVars: n, c: make([]float64, n), lo: make([]float64, n), hi: make([]float64, n)}
	for i := range p.hi {
		p.hi[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the coefficient of variable i in the minimized
// objective.
func (p *Problem) SetObjective(i int, coeff float64) { p.c[i] = coeff }

// SetBounds sets lo ≤ x_i ≤ hi.
func (p *Problem) SetBounds(i int, lo, hi float64) {
	p.lo[i] = lo
	p.hi[i] = hi
}

// Bounds returns the bounds of variable i.
func (p *Problem) Bounds(i int) (lo, hi float64) { return p.lo[i], p.hi[i] }

// AddConstraint appends aᵀx op rhs and returns its index. Terms with the
// same variable are summed.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.numVars))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.constraints = append(p.constraints, Constraint{Terms: cp, Op: op, RHS: rhs})
	return len(p.constraints) - 1
}

// Clone returns a deep copy (used by branch-and-bound to tighten bounds).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		numVars: p.numVars,
		c:       append([]float64(nil), p.c...),
		lo:      append([]float64(nil), p.lo...),
		hi:      append([]float64(nil), p.hi...),
	}
	q.constraints = make([]Constraint, len(p.constraints))
	for i, con := range p.constraints {
		q.constraints[i] = Constraint{Terms: append([]Term(nil), con.Terms...), Op: con.Op, RHS: con.RHS}
	}
	return q
}

// Solution is a solve result.
type Solution struct {
	Status    Status
	X         []float64 // variable values (original space)
	Objective float64
	Iters     int
}

const (
	tol      = 1e-9
	pivotTol = 1e-9
)

// Solve runs two-phase primal simplex and returns the solution. The X and
// Objective fields are meaningful only when Status is StatusOptimal.
func (p *Problem) Solve() (*Solution, error) {
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	return t.solve(p)
}

// tableau is the standard-form expansion of a Problem: variables shifted
// to x' = x - lo ≥ 0, finite upper bounds turned into explicit rows,
// slack/surplus/artificial columns appended.
type tableau struct {
	m, n      int         // constraint rows, structural columns (shifted vars)
	rows      [][]float64 // m × totalCols coefficient matrix
	rhs       []float64
	obj       []float64 // phase-2 objective over all columns
	objShift  float64   // constant from the lo-shift
	basis     []int     // basic column per row
	totalCols int
	numArt    int
	artStart  int
	iters     int
	maxIters  int
}

func newTableau(p *Problem) (*tableau, error) {
	for i := 0; i < p.numVars; i++ {
		if p.lo[i] > p.hi[i]+tol {
			return nil, fmt.Errorf("lp: variable %d has empty bounds [%g,%g]", i, p.lo[i], p.hi[i])
		}
		if math.IsInf(p.lo[i], -1) {
			return nil, errors.New("lp: free (lower-unbounded) variables are not supported")
		}
	}

	// Shifted rows: substitute x = lo + x'.
	type row struct {
		coeffs []float64
		op     Op
		rhs    float64
	}
	var rows []row
	for _, con := range p.constraints {
		r := row{coeffs: make([]float64, p.numVars), op: con.Op, rhs: con.RHS}
		for _, t := range con.Terms {
			r.coeffs[t.Var] += t.Coeff
			r.rhs -= t.Coeff * p.lo[t.Var]
		}
		rows = append(rows, r)
	}
	// Finite upper bounds: x' ≤ hi - lo.
	for i := 0; i < p.numVars; i++ {
		if !math.IsInf(p.hi[i], 1) {
			r := row{coeffs: make([]float64, p.numVars), op: LE, rhs: p.hi[i] - p.lo[i]}
			r.coeffs[i] = 1
			rows = append(rows, r)
		}
	}
	// Normalize to rhs ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coeffs {
				rows[i].coeffs[j] = -rows[i].coeffs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].op {
			case LE:
				rows[i].op = GE
			case GE:
				rows[i].op = LE
			}
		}
	}

	m := len(rows)
	numSlack := 0
	numArt := 0
	for _, r := range rows {
		switch r.op {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		m: m, n: p.numVars,
		totalCols: p.numVars + numSlack + numArt,
		numArt:    numArt,
		artStart:  p.numVars + numSlack,
		basis:     make([]int, m),
		rhs:       make([]float64, m),
		maxIters:  20000 + 50*(m+p.numVars),
	}
	t.rows = make([][]float64, m)
	slack := p.numVars
	art := t.artStart
	for i, r := range rows {
		t.rows[i] = make([]float64, t.totalCols)
		copy(t.rows[i], r.coeffs)
		t.rhs[i] = r.rhs
		switch r.op {
		case LE:
			t.rows[i][slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			t.rows[i][slack] = -1
			slack++
			t.rows[i][art] = 1
			t.basis[i] = art
			art++
		case EQ:
			t.rows[i][art] = 1
			t.basis[i] = art
			art++
		}
	}

	t.obj = make([]float64, t.totalCols)
	for i := 0; i < p.numVars; i++ {
		t.obj[i] = p.c[i]
		t.objShift += p.c[i] * p.lo[i]
	}
	return t, nil
}

// reducedCosts returns z_j - c_j terms: cost[j] - Σ_i costB[i]·rows[i][j]
// in the form of the current objective row.
func (t *tableau) objectiveRow(cost []float64) []float64 {
	row := make([]float64, t.totalCols+1)
	copy(row, cost)
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		r := t.rows[i]
		for j := 0; j < t.totalCols; j++ {
			row[j] -= cb * r[j]
		}
		row[t.totalCols] -= cb * t.rhs[i]
	}
	return row
}

// pivot performs a pivot on (row, col).
func (t *tableau) pivot(row, col int, objRow []float64) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j < t.totalCols; j++ {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j < t.totalCols; j++ {
			ri[j] -= f * pr[j]
		}
		t.rhs[i] -= f * t.rhs[row]
		if math.Abs(t.rhs[i]) < 1e-12 {
			t.rhs[i] = 0
		}
	}
	if f := objRow[col]; f != 0 {
		for j := 0; j < t.totalCols; j++ {
			objRow[j] -= f * pr[j]
		}
		objRow[t.totalCols] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// iterate runs simplex iterations on the given objective row, restricted
// to columns < colLimit. Returns StatusOptimal or StatusUnbounded or
// StatusIterLimit.
func (t *tableau) iterate(objRow []float64, colLimit int) Status {
	noProgress := 0
	lastObj := objRow[t.totalCols]
	for ; t.iters < t.maxIters; t.iters++ {
		// Entering column: Dantzig (most negative reduced cost);
		// Bland's rule after stalling to escape degenerate cycling.
		col := -1
		if noProgress < 40 {
			best := -tol
			for j := 0; j < colLimit; j++ {
				if objRow[j] < best {
					best = objRow[j]
					col = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if objRow[j] < -tol {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return StatusOptimal
		}
		// Ratio test (Bland tie-break on basis index).
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][col]
			if a > pivotTol {
				r := t.rhs[i] / a
				if r < bestRatio-tol || (r < bestRatio+tol && (row < 0 || t.basis[i] < t.basis[row])) {
					bestRatio = r
					row = i
				}
			}
		}
		if row < 0 {
			return StatusUnbounded
		}
		t.pivot(row, col, objRow)
		// Minimizing drives the stored objective cell upward (it holds
		// the negated basic contribution), so an increase is progress.
		if objRow[t.totalCols] < lastObj+1e-12 {
			noProgress++
		} else {
			noProgress = 0
			lastObj = objRow[t.totalCols]
		}
	}
	return StatusIterLimit
}

func (t *tableau) solve(p *Problem) (*Solution, error) {
	sol := &Solution{}

	// Phase 1: minimize artificial sum, if any artificials exist.
	if t.numArt > 0 {
		phase1 := make([]float64, t.totalCols)
		for j := t.artStart; j < t.totalCols; j++ {
			phase1[j] = 1
		}
		objRow := t.objectiveRow(phase1)
		st := t.iterate(objRow, t.totalCols)
		if st == StatusIterLimit {
			sol.Status = StatusIterLimit
			sol.Iters = t.iters
			return sol, nil
		}
		// Phase-1 optimum is -objRow[last] (objectiveRow stores the
		// negated basic contribution).
		if -objRow[t.totalCols] > 1e-6 {
			sol.Status = StatusInfeasible
			sol.Iters = t.iters
			return sol, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < t.artStart {
				continue
			}
			pivoted := false
			for j := 0; j < t.artStart; j++ {
				if math.Abs(t.rows[i][j]) > 1e-7 {
					t.pivot(i, j, objRow)
					pivoted = true
					break
				}
			}
			_ = pivoted // a redundant row keeps its (zero-valued) artificial
		}
	}

	// Phase 2 on the real objective, excluding artificial columns.
	objRow := t.objectiveRow(t.obj)
	st := t.iterate(objRow, t.artStart)
	sol.Iters = t.iters
	if st != StatusOptimal {
		sol.Status = st
		return sol, nil
	}

	// Extract variable values, un-shifting bounds.
	x := make([]float64, t.totalCols)
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart && t.rhs[i] > 1e-6 {
			// Artificial stuck basic at nonzero value: infeasible.
			sol.Status = StatusInfeasible
			return sol, nil
		}
		x[t.basis[i]] = t.rhs[i]
	}
	sol.X = make([]float64, p.numVars)
	obj := t.objShift
	for i := 0; i < p.numVars; i++ {
		sol.X[i] = x[i] + p.lo[i]
		obj += p.c[i] * x[i]
	}
	sol.Objective = obj
	sol.Status = StatusOptimal
	return sol, nil
}

// Evaluate returns cᵀx for the problem's objective at the given point.
func (p *Problem) Evaluate(x []float64) float64 {
	var v float64
	for i, c := range p.c {
		v += c * x[i]
	}
	return v
}

// Feasible reports whether x satisfies all constraints and bounds within
// tolerance eps.
func (p *Problem) Feasible(x []float64, eps float64) bool {
	if len(x) != p.numVars {
		return false
	}
	for i := range x {
		if x[i] < p.lo[i]-eps || x[i] > p.hi[i]+eps {
			return false
		}
	}
	for _, con := range p.constraints {
		var lhs float64
		for _, t := range con.Terms {
			lhs += t.Coeff * x[t.Var]
		}
		switch con.Op {
		case LE:
			if lhs > con.RHS+eps {
				return false
			}
		case GE:
			if lhs < con.RHS-eps {
				return false
			}
		case EQ:
			if math.Abs(lhs-con.RHS) > eps {
				return false
			}
		}
	}
	return true
}
