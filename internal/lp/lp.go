// Package lp implements a linear-programming solver: a two-phase primal
// simplex over a dense tableau, with Bland's rule for anti-cycling and a
// dual-simplex warm-start path for re-solving under changed variable
// bounds.
//
// It is the foundation of the MILP solver (package milp) that SyCCL and
// the TECCL baseline use to synthesize sub-schedules (§5.1, Appendix A).
// Problems are stated in general form:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx (≤|=|≥) bᵢ
//	            lo ≤ x ≤ hi
//
// The solver targets the modest problem sizes produced by SyCCL's
// symmetry decomposition (hundreds of variables). Two engines share the
// flat tableau storage: Problem.Solve builds a one-shot tableau where
// finite upper bounds are explicit rows, while NewResolvableTableau uses
// a bounded-variable simplex — bounds live on the columns, nonbasic
// variables rest at their lower or upper bound, and a bound change is an
// O(m) right-hand-side update — so branch-and-bound re-solves sibling
// nodes with a handful of dual-simplex pivots instead of a full rebuild.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is aᵀx op rhs.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Status classifies a solve outcome.
type Status int

// Solve statuses.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return "unknown"
	}
}

// ErrWarmStart reports that a warm-started re-solve could not complete
// (iteration limit or numerical degradation even after a cold retry); the
// caller should fall back to building a fresh problem.
var ErrWarmStart = errors.New("lp: warm-start re-solve not applicable")

// Problem is a linear program under construction.
type Problem struct {
	numVars     int
	c           []float64
	lo, hi      []float64
	constraints []Constraint
}

// NewProblem creates a problem with n variables, default bounds [0, +inf)
// and zero objective.
func NewProblem(n int) *Problem {
	p := &Problem{numVars: n, c: make([]float64, n), lo: make([]float64, n), hi: make([]float64, n)}
	for i := range p.hi {
		p.hi[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the coefficient of variable i in the minimized
// objective.
func (p *Problem) SetObjective(i int, coeff float64) { p.c[i] = coeff }

// SetBounds sets lo ≤ x_i ≤ hi.
func (p *Problem) SetBounds(i int, lo, hi float64) {
	p.lo[i] = lo
	p.hi[i] = hi
}

// Bounds returns the bounds of variable i.
func (p *Problem) Bounds(i int) (lo, hi float64) { return p.lo[i], p.hi[i] }

// AddConstraint appends aᵀx op rhs and returns its index. Terms with the
// same variable are summed.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.numVars))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.constraints = append(p.constraints, Constraint{Terms: cp, Op: op, RHS: rhs})
	return len(p.constraints) - 1
}

// Clone returns a deep copy (used by branch-and-bound to tighten bounds).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		numVars: p.numVars,
		c:       append([]float64(nil), p.c...),
		lo:      append([]float64(nil), p.lo...),
		hi:      append([]float64(nil), p.hi...),
	}
	q.constraints = make([]Constraint, len(p.constraints))
	for i, con := range p.constraints {
		q.constraints[i] = Constraint{Terms: append([]Term(nil), con.Terms...), Op: con.Op, RHS: con.RHS}
	}
	return q
}

// Solution is a solve result.
type Solution struct {
	Status    Status
	X         []float64 // variable values (original space)
	Objective float64
	Iters     int
}

const (
	tol          = 1e-9
	pivotTol     = 1e-9
	dualPivotTol = 1e-7
)

// disableColLimit widens phase-2 pivot and objective-row updates back to
// every column, including the artificial block that is never read after
// phase 1. It exists only so BenchmarkLPColLimit can measure the win of
// the restricted width; production code leaves it false.
var disableColLimit = false

// Solve runs two-phase primal simplex and returns the solution. The X and
// Objective fields are meaningful only when Status is StatusOptimal.
func (p *Problem) Solve() (*Solution, error) {
	t, err := NewTableau(p)
	if err != nil {
		return nil, err
	}
	return t.Solve()
}

// SolveCtx is Solve with cooperative cancellation: the pivot loop polls
// the context and a cancelled solve returns with StatusIterLimit (never
// a partial basis presented as optimal).
func (p *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	t, err := NewTableau(p)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		t.SetCancel(func() bool { return ctx.Err() != nil })
	}
	return t.Solve()
}

// Tableau is the standard-form expansion of a Problem with variables
// shifted to x' = x - lo and slack/surplus/artificial columns appended.
// The coefficient matrix is one flat backing array (row-major) for cache
// locality.
//
// The one-shot layout (NewTableau) turns finite upper bounds into
// explicit rows, exactly as Problem.Solve always has. The resolvable
// layout (NewResolvableTableau) instead runs a bounded-variable simplex:
// bounds are attributes of the columns (colLo/colUp), nonbasic columns
// rest at one of their bounds (atUpper), and rhs holds the *values* of
// the basic variables. A bound change moves the resting value of a
// nonbasic column — an O(m) rhs update — and dual simplex repairs any
// basic variable pushed outside its bounds, so ReSolve needs no
// construction work and typically only a few pivots per node.
type Tableau struct {
	m, n      int       // constraint rows, structural columns (shifted vars)
	a         []float64 // m × totalCols coefficient matrix, flat row-major
	rhs       []float64 // one-shot: transformed rhs; resolvable: basic values
	obj       []float64 // phase-2 objective over all columns
	objShift  float64   // constant from the lo-shift
	basis     []int     // basic column per row
	totalCols int
	numArt    int
	artStart  int
	iters     int
	maxIters  int

	numVars int
	c       []float64 // problem objective (copy)
	lo0     []float64 // base lower bounds: the shift origin
	hi0     []float64 // base upper bounds

	// Bounded-variable state (resolvable tableaus only). Column bounds are
	// in shifted space: structural column i covers x'_i ∈ [colLo, colUp];
	// slack/surplus/artificial columns are [0, +inf).
	resolvable bool
	colLo      []float64
	colUp      []float64
	atUpper    []bool // nonbasic column rests at its upper bound
	basicRow   []int  // row a column is basic in, -1 if nonbasic
	solved     bool   // an optimal basis is loaded

	protoA        []float64 // pristine construction-time snapshot
	protoRHS      []float64
	protoBasis    []int
	protoBasicRow []int
	protoColLo    []float64
	protoColUp    []float64

	objRow, phase1 []float64  // pooled scratch: objective row, phase-1 cost
	xbuf           []float64  // pooled scratch: extraction buffer
	dcands         []dualCand // pooled scratch: dual ratio-test candidates

	// cancel, when set, is polled every cancelCheckMask+1 pivots by every
	// pivot loop; a true return abandons the solve with StatusIterLimit.
	// Callers (branch-and-bound under a context) treat that exactly like an
	// iteration-limit node: drop it and report the proved bound.
	cancel func() bool
}

// cancelCheckMask throttles cancellation polls: pivots are O(m·width)
// dense row operations, so checking every 64th keeps the overhead
// unmeasurable while bounding the post-cancel grace to 64 pivots.
const cancelCheckMask = 63

// SetCancel installs (or clears, with nil) a cancellation poll. It is
// polled from the pivot loops of both the one-shot and the resolvable
// engines; when it returns true the running solve stops and reports
// StatusIterLimit.
func (t *Tableau) SetCancel(cancel func() bool) { t.cancel = cancel }

// cancelled reports whether the installed poll requests an abort, checking
// only every cancelCheckMask+1 iterations.
func (t *Tableau) cancelled() bool {
	return t.cancel != nil && t.iters&cancelCheckMask == 0 && t.cancel()
}

// dualCand is one entering candidate of the dual ratio test.
type dualCand struct {
	j     int
	w     float64
	ratio float64
}

// NewTableau builds a one-shot tableau for the problem, matching the
// layout Problem.Solve has always used (upper-bound rows only where the
// bound is finite).
func NewTableau(p *Problem) (*Tableau, error) {
	return buildTableau(p, false)
}

// NewResolvableTableau builds a bounded-variable tableau that supports
// ReSolve: variable bounds are column attributes rather than rows, so the
// tableau has only the constraint rows and a bound change is an O(m)
// right-hand-side patch followed by a short dual-simplex repair.
func NewResolvableTableau(p *Problem) (*Tableau, error) {
	return buildTableau(p, true)
}

func buildTableau(p *Problem, resolvable bool) (*Tableau, error) {
	for i := 0; i < p.numVars; i++ {
		if p.lo[i] > p.hi[i]+tol {
			return nil, fmt.Errorf("lp: variable %d has empty bounds [%g,%g]", i, p.lo[i], p.hi[i])
		}
		if math.IsInf(p.lo[i], -1) {
			return nil, errors.New("lp: free (lower-unbounded) variables are not supported")
		}
	}

	// Shifted rows: substitute x = lo + x'.
	type row struct {
		coeffs []float64
		op     Op
		rhs    float64
	}
	var rows []row
	for _, con := range p.constraints {
		r := row{coeffs: make([]float64, p.numVars), op: con.Op, rhs: con.RHS}
		for _, t := range con.Terms {
			r.coeffs[t.Var] += t.Coeff
			r.rhs -= t.Coeff * p.lo[t.Var]
		}
		rows = append(rows, r)
	}
	// One-shot layout: finite upper bounds become rows x' ≤ hi - lo,
	// normalized together with the constraints (exactly the historical
	// Problem.Solve construction). The resolvable layout keeps bounds on
	// the columns instead — no rows added.
	if !resolvable {
		for i := 0; i < p.numVars; i++ {
			if math.IsInf(p.hi[i], 1) {
				continue
			}
			r := row{coeffs: make([]float64, p.numVars), op: LE, rhs: p.hi[i] - p.lo[i]}
			r.coeffs[i] = 1
			rows = append(rows, r)
		}
	}
	// Normalize to rhs ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coeffs {
				rows[i].coeffs[j] = -rows[i].coeffs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].op {
			case LE:
				rows[i].op = GE
			case GE:
				rows[i].op = LE
			}
		}
	}

	m := len(rows)
	numSlack := 0
	numArt := 0
	for _, r := range rows {
		switch r.op {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &Tableau{
		m: m, n: p.numVars,
		totalCols: p.numVars + numSlack + numArt,
		numArt:    numArt,
		artStart:  p.numVars + numSlack,
		basis:     make([]int, m),
		rhs:       make([]float64, m),
		maxIters:  20000 + 50*(m+p.numVars),
		numVars:   p.numVars,
		c:         append([]float64(nil), p.c...),
		lo0:       append([]float64(nil), p.lo...),
		hi0:       append([]float64(nil), p.hi...),
	}
	t.a = make([]float64, m*t.totalCols)
	slack := p.numVars
	art := t.artStart
	for i, r := range rows {
		ri := t.row(i)
		copy(ri, r.coeffs)
		t.rhs[i] = r.rhs
		switch r.op {
		case LE:
			ri[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			ri[slack] = -1
			slack++
			ri[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			ri[art] = 1
			t.basis[i] = art
			art++
		}
	}

	t.obj = make([]float64, t.totalCols)
	for i := 0; i < p.numVars; i++ {
		t.obj[i] = p.c[i]
		t.objShift += p.c[i] * p.lo[i]
	}

	t.objRow = make([]float64, t.totalCols+1)
	t.phase1 = make([]float64, t.totalCols)
	t.xbuf = make([]float64, t.totalCols)

	if resolvable {
		t.resolvable = true
		t.colLo = make([]float64, t.totalCols)
		t.colUp = make([]float64, t.totalCols)
		t.atUpper = make([]bool, t.totalCols)
		t.basicRow = make([]int, t.totalCols)
		for j := range t.colUp {
			t.colUp[j] = math.Inf(1)
		}
		for i := 0; i < p.numVars; i++ {
			ub := p.hi[i] - p.lo[i]
			if ub < 0 {
				ub = 0 // within tol by the bounds check above
			}
			t.colUp[i] = ub
		}
		for j := range t.basicRow {
			t.basicRow[j] = -1
		}
		for i, b := range t.basis {
			t.basicRow[b] = i
		}
		// Initial point: every nonbasic column at its lower bound (0), so
		// the basic values are exactly the normalized rhs.
		t.protoA = append([]float64(nil), t.a...)
		t.protoRHS = append([]float64(nil), t.rhs...)
		t.protoBasis = append([]int(nil), t.basis...)
		t.protoBasicRow = append([]int(nil), t.basicRow...)
		t.protoColLo = append([]float64(nil), t.colLo...)
		t.protoColUp = append([]float64(nil), t.colUp...)
	}
	return t, nil
}

// Clone returns an independent copy sharing only the immutable
// construction-time snapshot (each branch-and-bound worker owns one).
func (t *Tableau) Clone() *Tableau {
	q := *t
	q.a = append([]float64(nil), t.a...)
	q.rhs = append([]float64(nil), t.rhs...)
	q.basis = append([]int(nil), t.basis...)
	q.objRow = make([]float64, t.totalCols+1)
	q.phase1 = make([]float64, t.totalCols)
	q.xbuf = make([]float64, t.totalCols)
	q.dcands = nil
	if t.resolvable {
		q.colLo = append([]float64(nil), t.colLo...)
		q.colUp = append([]float64(nil), t.colUp...)
		q.atUpper = append([]bool(nil), t.atUpper...)
		q.basicRow = append([]int(nil), t.basicRow...)
	}
	return &q
}

func (t *Tableau) row(i int) []float64 {
	return t.a[i*t.totalCols : (i+1)*t.totalCols]
}

// pivotWidth is how far pivot and objective-row updates reach once phase
// 1 is done: the artificial block is stale from then on and never read,
// so updates stop at artStart (unless the benchmark toggle is set).
func (t *Tableau) pivotWidth() int {
	if disableColLimit {
		return t.totalCols
	}
	return t.artStart
}

// objectiveRowInto fills out with z_j - c_j terms: cost[j] - Σ_i
// costB[i]·a[i][j] for j < width, and the negated basic objective in
// out[totalCols].
func (t *Tableau) objectiveRowInto(cost []float64, out []float64, width int) {
	copy(out[:width], cost[:width])
	out[t.totalCols] = 0
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		r := t.row(i)
		for j := 0; j < width; j++ {
			out[j] -= cb * r[j]
		}
		out[t.totalCols] -= cb * t.rhs[i]
	}
}

// pivot performs a pivot on (row, col), updating columns < width.
func (t *Tableau) pivot(row, col, width int, objRow []float64) {
	pr := t.row(row)
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		ri := t.row(i)
		f := ri[col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			ri[j] -= f * pr[j]
		}
		t.rhs[i] -= f * t.rhs[row]
		if math.Abs(t.rhs[i]) < 1e-12 {
			t.rhs[i] = 0
		}
	}
	if f := objRow[col]; f != 0 {
		for j := 0; j < width; j++ {
			objRow[j] -= f * pr[j]
		}
		objRow[t.totalCols] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// iterate runs primal simplex iterations on the given objective row,
// restricted to entering columns < colLimit and updates < width. Returns
// StatusOptimal, StatusUnbounded or StatusIterLimit.
func (t *Tableau) iterate(objRow []float64, colLimit, width int) Status {
	noProgress := 0
	lastObj := objRow[t.totalCols]
	for ; t.iters < t.maxIters; t.iters++ {
		if t.cancelled() {
			return StatusIterLimit
		}
		// Entering column: Dantzig (most negative reduced cost);
		// Bland's rule after stalling to escape degenerate cycling.
		col := -1
		if noProgress < 40 {
			best := -tol
			for j := 0; j < colLimit; j++ {
				if objRow[j] < best {
					best = objRow[j]
					col = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if objRow[j] < -tol {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return StatusOptimal
		}
		// Ratio test (Bland tie-break on basis index).
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.a[i*t.totalCols+col]
			if a > pivotTol {
				r := t.rhs[i] / a
				if r < bestRatio-tol || (r < bestRatio+tol && (row < 0 || t.basis[i] < t.basis[row])) {
					bestRatio = r
					row = i
				}
			}
		}
		if row < 0 {
			return StatusUnbounded
		}
		t.pivot(row, col, width, objRow)
		// Minimizing drives the stored objective cell upward (it holds
		// the negated basic contribution), so an increase is progress.
		if objRow[t.totalCols] < lastObj+1e-12 {
			noProgress++
		} else {
			noProgress = 0
			lastObj = objRow[t.totalCols]
		}
	}
	return StatusIterLimit
}

// twoPhase runs the standard cold solve on the current tableau state:
// phase 1 over the artificial sum, artificial drive-out, then phase 2 on
// the real objective.
func (t *Tableau) twoPhase() Status {
	if t.numArt > 0 {
		for j := range t.phase1 {
			t.phase1[j] = 0
		}
		for j := t.artStart; j < t.totalCols; j++ {
			t.phase1[j] = 1
		}
		// Phase 1 pivots full-width: the artificial block is live here.
		t.objectiveRowInto(t.phase1, t.objRow, t.totalCols)
		st := t.iterate(t.objRow, t.totalCols, t.totalCols)
		if st == StatusIterLimit {
			return StatusIterLimit
		}
		// Phase-1 optimum is -objRow[last] (objectiveRowInto stores the
		// negated basic contribution).
		if -t.objRow[t.totalCols] > 1e-6 {
			return StatusInfeasible
		}
		// Drive remaining artificials out of the basis where possible.
		width := t.pivotWidth()
		for i := 0; i < t.m; i++ {
			if t.basis[i] < t.artStart {
				continue
			}
			ri := t.row(i)
			for j := 0; j < t.artStart; j++ {
				if math.Abs(ri[j]) > 1e-7 {
					t.pivot(i, j, width, t.objRow)
					break
				}
			}
			// A redundant row keeps its (zero-valued) artificial.
		}
	}

	// Phase 2 on the real objective, excluding artificial columns.
	width := t.pivotWidth()
	t.objectiveRowInto(t.obj, t.objRow, width)
	return t.iterate(t.objRow, t.artStart, width)
}

// extract reads the solution out of an optimal basis.
func (t *Tableau) extract() *Solution {
	sol := &Solution{Iters: t.iters}
	x := t.xbuf
	for j := range x {
		x[j] = 0
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart && t.rhs[i] > 1e-6 {
			// Artificial stuck basic at nonzero value: infeasible.
			sol.Status = StatusInfeasible
			return sol
		}
		x[t.basis[i]] = t.rhs[i]
	}
	sol.X = make([]float64, t.numVars)
	obj := t.objShift
	for i := 0; i < t.numVars; i++ {
		sol.X[i] = x[i] + t.lo0[i]
		obj += t.c[i] * x[i]
	}
	sol.Objective = obj
	sol.Status = StatusOptimal
	return sol
}

// Solve runs a cold two-phase solve. On a resolvable tableau it first
// restores the pristine construction-time state (base bounds).
func (t *Tableau) Solve() (*Solution, error) {
	t.iters = 0
	if t.resolvable {
		t.restore()
		st := t.bTwoPhase()
		if st != StatusOptimal {
			return &Solution{Status: st, Iters: t.iters}, nil
		}
		sol := t.bExtract()
		t.solved = sol.Status == StatusOptimal
		return sol, nil
	}
	st := t.twoPhase()
	if st != StatusOptimal {
		return &Solution{Status: st, Iters: t.iters}, nil
	}
	return t.extract(), nil
}

// restore resets a resolvable tableau to its construction-time snapshot.
func (t *Tableau) restore() {
	copy(t.a, t.protoA)
	copy(t.rhs, t.protoRHS)
	copy(t.basis, t.protoBasis)
	copy(t.basicRow, t.protoBasicRow)
	copy(t.colLo, t.protoColLo)
	copy(t.colUp, t.protoColUp)
	for j := range t.atUpper {
		t.atUpper[j] = false
	}
	t.solved = false
}

// colVal returns the resting value of nonbasic column j.
func (t *Tableau) colVal(j int) float64 {
	if t.atUpper[j] {
		return t.colUp[j]
	}
	return t.colLo[j]
}

// bElim performs the row elimination of a pivot on (row, col) over the
// coefficient matrix and objective row only — the bounded-variable engine
// updates rhs (basic values) separately, before elimination, using the
// pre-pivot column. The caller updates basis/basicRow.
func (t *Tableau) bElim(row, col, width int, objRow []float64) {
	pr := t.row(row)
	inv := 1 / pr[col]
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		ri := t.row(i)
		f := ri[col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			ri[j] -= f * pr[j]
		}
	}
	if f := objRow[col]; f != 0 {
		for j := 0; j < width; j++ {
			objRow[j] -= f * pr[j]
		}
	}
}

// bIterate runs bounded-variable primal simplex: entering candidates are
// nonbasic columns < colLimit whose reduced cost improves from their
// resting bound; the ratio test may end in a bound flip (the entering
// column runs to its opposite bound without a basis change). Returns
// StatusOptimal, StatusUnbounded or StatusIterLimit.
func (t *Tableau) bIterate(objRow []float64, colLimit, width int) Status {
	noProgress := 0
	for ; t.iters < t.maxIters; t.iters++ {
		if t.cancelled() {
			return StatusIterLimit
		}
		col := -1
		var dir float64
		if noProgress < 40 {
			best := tol
			for j := 0; j < colLimit; j++ {
				if t.basicRow[j] >= 0 || t.colUp[j]-t.colLo[j] <= tol {
					continue
				}
				d := objRow[j]
				if !t.atUpper[j] {
					if -d > best {
						best = -d
						col = j
						dir = 1
					}
				} else if d > best {
					best = d
					col = j
					dir = -1
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if t.basicRow[j] >= 0 || t.colUp[j]-t.colLo[j] <= tol {
					continue
				}
				if !t.atUpper[j] && objRow[j] < -tol {
					col, dir = j, 1
					break
				}
				if t.atUpper[j] && objRow[j] > tol {
					col, dir = j, -1
					break
				}
			}
		}
		if col < 0 {
			return StatusOptimal
		}
		// Ratio test: how far can the entering column move before a basic
		// variable hits one of its bounds, or the entering column hits its
		// own opposite bound (a bound flip — cheaper than a pivot, so it
		// wins ties). Bland tie-break on basis index among rows.
		flipLimit := t.colUp[col] - t.colLo[col]
		bestD := flipLimit
		leaveRow := -1
		leaveUpper := false
		for i := 0; i < t.m; i++ {
			w := t.a[i*t.totalCols+col]
			g := dir * w
			bi := t.basis[i]
			if g > pivotTol {
				d := (t.rhs[i] - t.colLo[bi]) / g
				if d < bestD-tol || (d < bestD+tol && leaveRow >= 0 && bi < t.basis[leaveRow]) {
					bestD, leaveRow, leaveUpper = d, i, false
				}
			} else if g < -pivotTol {
				up := t.colUp[bi]
				if !math.IsInf(up, 1) {
					d := (up - t.rhs[i]) / -g
					if d < bestD-tol || (d < bestD+tol && leaveRow >= 0 && bi < t.basis[leaveRow]) {
						bestD, leaveRow, leaveUpper = d, i, true
					}
				}
			}
		}
		if math.IsInf(bestD, 1) {
			return StatusUnbounded
		}
		move := dir * bestD
		if leaveRow < 0 {
			// Bound flip: the entering column runs to its other bound.
			for i := 0; i < t.m; i++ {
				w := t.a[i*t.totalCols+col]
				if w != 0 {
					t.rhs[i] -= move * w
				}
			}
			t.atUpper[col] = !t.atUpper[col]
		} else {
			newVal := t.colVal(col) + move
			for i := 0; i < t.m; i++ {
				if i == leaveRow {
					continue
				}
				w := t.a[i*t.totalCols+col]
				if w != 0 {
					t.rhs[i] -= move * w
				}
			}
			leaving := t.basis[leaveRow]
			t.basicRow[leaving] = -1
			t.atUpper[leaving] = leaveUpper
			t.bElim(leaveRow, col, width, objRow)
			t.basis[leaveRow] = col
			t.basicRow[col] = leaveRow
			t.rhs[leaveRow] = newVal
		}
		// The objective moved by |reduced cost|·bestD, so a positive step
		// is progress; degenerate steps trip Bland's rule.
		if bestD > tol {
			noProgress = 0
		} else {
			noProgress++
		}
	}
	return StatusIterLimit
}

// bDualIterate restores primal feasibility (a basic variable outside its
// column bounds) while preserving dual feasibility: the warm-start engine
// for ReSolve. The leaving variable exits at its violated bound; the
// entering column comes from a bound-flipping dual ratio test: candidates
// are taken in increasing |d_j / a_rj| order, and a candidate whose full
// range cannot close the violation is flipped to its opposite bound (no
// basis change) rather than entered — which would overshoot its own
// bounds and cascade new violations. Returns StatusOptimal (primal
// feasible), StatusInfeasible or StatusIterLimit.
func (t *Tableau) bDualIterate(objRow []float64) Status {
	width := t.pivotWidth()
	noProgress := 0
	for ; t.iters < t.maxIters; t.iters++ {
		if t.cancelled() {
			return StatusIterLimit
		}
		// Leaving row: largest bound violation; smallest row index after
		// stalling (Bland-style) to break degenerate cycling.
		r := -1
		tooLow := false
		if noProgress < 40 {
			worst := tol
			for i := 0; i < t.m; i++ {
				bi := t.basis[i]
				if v := t.colLo[bi] - t.rhs[i]; v > worst {
					worst, r, tooLow = v, i, true
				}
				if up := t.colUp[bi]; !math.IsInf(up, 1) {
					if v := t.rhs[i] - up; v > worst {
						worst, r, tooLow = v, i, false
					}
				}
			}
		} else {
			for i := 0; i < t.m; i++ {
				bi := t.basis[i]
				if t.rhs[i] < t.colLo[bi]-tol {
					r, tooLow = i, true
					break
				}
				if up := t.colUp[bi]; !math.IsInf(up, 1) && t.rhs[i] > up+tol {
					r, tooLow = i, false
					break
				}
			}
		}
		if r < 0 {
			return StatusOptimal
		}
		bi := t.basis[r]
		target := t.colLo[bi]
		if !tooLow {
			target = t.colUp[bi]
		}
		row := t.row(r)
		// Gather sign-eligible flexible candidates. Fixed columns
		// (colLo == colUp) are constants and never enter.
		cands := t.dcands[:0]
		maxAbs := 0.0
		for j := 0; j < t.artStart; j++ {
			if t.basicRow[j] >= 0 {
				continue
			}
			w := row[j]
			if v := math.Abs(w); v > maxAbs {
				maxAbs = v
			}
			if t.colUp[j]-t.colLo[j] <= tol {
				continue
			}
			var ok bool
			if tooLow {
				// The basic variable must increase: raise a column whose
				// coefficient is negative, or lower one at its upper bound
				// with a positive coefficient.
				ok = (!t.atUpper[j] && w < -dualPivotTol) || (t.atUpper[j] && w > dualPivotTol)
			} else {
				ok = (!t.atUpper[j] && w > dualPivotTol) || (t.atUpper[j] && w < -dualPivotTol)
			}
			if ok {
				cands = append(cands, dualCand{j: j, w: w, ratio: math.Abs(objRow[j] / w)})
			}
		}
		t.dcands = cands
		if len(cands) == 0 {
			// A numerically-null row (a redundant constraint whose
			// artificial stayed basic) can drift slightly out of bounds
			// under patches; it carries no information, so snap it.
			viol := t.colLo[bi] - t.rhs[r]
			if !tooLow {
				viol = t.rhs[r] - t.colUp[bi]
			}
			if maxAbs <= dualPivotTol && viol <= 1e-5 {
				t.rhs[r] = target
				continue
			}
			return StatusInfeasible
		}
		// Bound-flipping walk, smallest ratio first (smallest column index
		// within tolerance — candidates are gathered in index order).
		col := -1
		var wcol float64
		flipped := false
		for {
			best := -1
			bestRatio := math.Inf(1)
			for k := range cands {
				if cands[k].j < 0 {
					continue // consumed by a flip
				}
				if cands[k].ratio < bestRatio-tol {
					bestRatio = cands[k].ratio
					best = k
				}
			}
			if best < 0 {
				break
			}
			c := &cands[best]
			rng := t.colUp[c.j] - t.colLo[c.j]
			if !math.IsInf(rng, 1) {
				delta := rng
				if t.atUpper[c.j] {
					delta = -rng
				}
				if math.Abs(delta*c.w) < math.Abs(t.rhs[r]-target)-tol {
					// The full flip still leaves the row violated: move the
					// column to its other bound and keep looking.
					for i := 0; i < t.m; i++ {
						wi := t.a[i*t.totalCols+c.j]
						if wi != 0 {
							t.rhs[i] -= delta * wi
						}
					}
					t.atUpper[c.j] = !t.atUpper[c.j]
					c.j = -1
					flipped = true
					continue
				}
			}
			col = c.j
			wcol = c.w
			break
		}
		if col < 0 {
			// Every flexible column flipped fully toward the bound and the
			// row is still violated: no primal point satisfies it.
			return StatusInfeasible
		}
		move := (t.rhs[r] - target) / wcol
		for i := 0; i < t.m; i++ {
			if i == r {
				continue
			}
			wi := t.a[i*t.totalCols+col]
			if wi != 0 {
				t.rhs[i] -= move * wi
			}
		}
		newVal := t.colVal(col) + move
		t.basicRow[bi] = -1
		t.atUpper[bi] = !tooLow
		t.bElim(r, col, width, objRow)
		t.basis[r] = col
		t.basicRow[col] = r
		t.rhs[r] = newVal
		if flipped || math.Abs(move) > tol {
			noProgress = 0
		} else {
			noProgress++
		}
	}
	return StatusIterLimit
}

// bTwoPhase runs the cold bounded-variable solve on the current state:
// phase 1 over the artificial sum, artificial drive-out, then phase 2.
func (t *Tableau) bTwoPhase() Status {
	if t.numArt > 0 {
		for j := range t.phase1 {
			t.phase1[j] = 0
		}
		for j := t.artStart; j < t.totalCols; j++ {
			t.phase1[j] = 1
		}
		t.objectiveRowInto(t.phase1, t.objRow, t.totalCols)
		st := t.bIterate(t.objRow, t.totalCols, t.totalCols)
		if st != StatusOptimal {
			return st
		}
		// Artificials rest nonbasic at 0, so their sum is over basic ones.
		art := 0.0
		for i := 0; i < t.m; i++ {
			if t.basis[i] >= t.artStart {
				art += math.Abs(t.rhs[i])
			}
		}
		if art > 1e-6 {
			return StatusInfeasible
		}
		// Drive remaining artificials out of the basis where possible.
		// The artificial's value is ~0, so this is a representation swap
		// at an unchanged point: the entering column keeps its resting
		// value, which becomes the new basic value.
		width := t.pivotWidth()
		for i := 0; i < t.m; i++ {
			if t.basis[i] < t.artStart {
				continue
			}
			ri := t.row(i)
			for j := 0; j < t.artStart; j++ {
				if t.basicRow[j] < 0 && math.Abs(ri[j]) > 1e-7 {
					leaving := t.basis[i]
					t.basicRow[leaving] = -1
					t.atUpper[leaving] = false
					newVal := t.colVal(j)
					t.bElim(i, j, width, t.objRow)
					t.basis[i] = j
					t.basicRow[j] = i
					t.rhs[i] = newVal
					break
				}
			}
			// A redundant row keeps its (zero-valued) artificial.
		}
	}

	width := t.pivotWidth()
	t.objectiveRowInto(t.obj, t.objRow, width)
	return t.bIterate(t.objRow, t.artStart, width)
}

// bExtract reads the solution out of an optimal bounded-variable basis.
func (t *Tableau) bExtract() *Solution {
	sol := &Solution{Iters: t.iters}
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart && math.Abs(t.rhs[i]) > 1e-6 {
			// Artificial stuck basic at nonzero value: infeasible.
			sol.Status = StatusInfeasible
			return sol
		}
	}
	sol.X = make([]float64, t.numVars)
	obj := t.objShift
	for i := 0; i < t.numVars; i++ {
		var v float64
		if r := t.basicRow[i]; r >= 0 {
			v = t.rhs[r]
		} else {
			v = t.colVal(i)
		}
		sol.X[i] = v + t.lo0[i]
		obj += t.c[i] * v
	}
	sol.Objective = obj
	sol.Status = StatusOptimal
	return sol
}

// bPatch loads new variable bounds into the columns. A basic column just
// takes the new bounds (dual simplex repairs any violation); a nonbasic
// column rests on a bound, so its value shifts with that bound and every
// basic value is updated by -delta times the column — O(m) per changed
// variable.
func (t *Tableau) bPatch(lo, hi []float64) {
	for i := 0; i < t.numVars; i++ {
		nl := lo[i] - t.lo0[i]
		nu := hi[i] - t.lo0[i] // +Inf stays +Inf
		if nl == t.colLo[i] && nu == t.colUp[i] {
			continue
		}
		if t.basicRow[i] >= 0 {
			t.colLo[i], t.colUp[i] = nl, nu
			continue
		}
		var delta float64
		if t.atUpper[i] {
			if math.IsInf(nu, 1) {
				// Nothing can rest at +Inf: move to the lower bound.
				delta = nl - t.colUp[i]
				t.atUpper[i] = false
			} else {
				delta = nu - t.colUp[i]
			}
		} else {
			delta = nl - t.colLo[i]
		}
		t.colLo[i], t.colUp[i] = nl, nu
		if delta != 0 {
			for r := 0; r < t.m; r++ {
				w := t.a[r*t.totalCols+i]
				if w != 0 {
					t.rhs[r] -= delta * w
				}
			}
		}
	}
}

// ReSolve re-solves the tableau's program under the given variable
// bounds: the bounds are patched onto the columns in place and dual
// simplex restores feasibility from the previous optimal basis, falling
// back to one cold base solve plus a patch when the warm basis cannot
// absorb the change. Returns ErrWarmStart when even the cold retry fails
// numerically (the caller should rebuild from the Problem); otherwise the
// Solution status is authoritative (StatusInfeasible for empty nodes).
func (t *Tableau) ReSolve(lo, hi []float64) (*Solution, error) {
	if !t.resolvable {
		return nil, ErrWarmStart
	}
	if len(lo) != t.numVars || len(hi) != t.numVars {
		return nil, errors.New("lp: ReSolve bounds length mismatch")
	}
	for i := 0; i < t.numVars; i++ {
		if math.IsInf(lo[i], -1) {
			return nil, errors.New("lp: free (lower-unbounded) variables are not supported")
		}
		if lo[i] > hi[i]+tol {
			return &Solution{Status: StatusInfeasible}, nil
		}
	}
	t.iters = 0
	if t.solved {
		t.bPatch(lo, hi)
		if sol, ok := t.bDualPrimal(); ok {
			return sol, nil
		}
	}
	// Cold recovery: pristine state, two-phase at base bounds (primal
	// feasible start by construction there), then patch to the requested
	// bounds and repair.
	t.restore()
	t.iters = 0
	st := t.bTwoPhase()
	switch st {
	case StatusInfeasible:
		// The base box is infeasible; callers only tighten it (branch-and-
		// bound nodes live inside the base box), so the node is too.
		return &Solution{Status: StatusInfeasible, Iters: t.iters}, nil
	case StatusOptimal:
	default:
		return nil, ErrWarmStart
	}
	t.solved = true
	t.bPatch(lo, hi)
	if sol, ok := t.bDualPrimal(); ok {
		return sol, nil
	}
	t.solved = false
	return nil, ErrWarmStart
}

// bDualPrimal runs dual simplex to primal feasibility, then a primal
// polish, on the already-loaded basis. ok=false means the basis could not
// be repaired (iteration limit or numerical degradation) and the caller
// should recover cold.
func (t *Tableau) bDualPrimal() (*Solution, bool) {
	width := t.pivotWidth()
	t.objectiveRowInto(t.obj, t.objRow, width)
	switch t.bDualIterate(t.objRow) {
	case StatusIterLimit:
		return nil, false
	case StatusInfeasible:
		return &Solution{Status: StatusInfeasible, Iters: t.iters}, true
	}
	switch t.bIterate(t.objRow, t.artStart, width) {
	case StatusIterLimit:
		return nil, false
	case StatusUnbounded:
		return &Solution{Status: StatusUnbounded, Iters: t.iters}, true
	}
	sol := t.bExtract()
	if sol.Status != StatusOptimal {
		// An artificial crept back to a nonzero value: numerically
		// degraded, not a trustworthy infeasibility verdict.
		return nil, false
	}
	return sol, true
}

// Evaluate returns cᵀx for the problem's objective at the given point.
func (p *Problem) Evaluate(x []float64) float64 {
	var v float64
	for i, c := range p.c {
		v += c * x[i]
	}
	return v
}

// Feasible reports whether x satisfies all constraints and bounds within
// tolerance eps.
func (p *Problem) Feasible(x []float64, eps float64) bool {
	if len(x) != p.numVars {
		return false
	}
	for i := range x {
		if x[i] < p.lo[i]-eps || x[i] > p.hi[i]+eps {
			return false
		}
	}
	for _, con := range p.constraints {
		var lhs float64
		for _, t := range con.Terms {
			lhs += t.Coeff * x[t.Var]
		}
		switch con.Op {
		case LE:
			if lhs > con.RHS+eps {
				return false
			}
		case GE:
			if lhs < con.RHS-eps {
				return false
			}
		case EQ:
			if math.Abs(lhs-con.RHS) > eps {
				return false
			}
		}
	}
	return true
}
