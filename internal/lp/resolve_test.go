package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestReSolveMatchesFresh: warm-started re-solves under randomized bound
// changes agree — status, objective, and feasibility — with a cold solve
// of the same tightened problem.
func TestReSolveMatchesFresh(t *testing.T) {
	for _, seed := range []uint64{3, 11, 29} {
		p := benchProblem(24, 20, seed)
		n := p.NumVars()
		tab, err := NewResolvableTableau(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tab.Solve(); err != nil {
			t.Fatal(err)
		}
		lo := make([]float64, n)
		hi := make([]float64, n)
		for j := 0; j < n; j++ {
			lo[j], hi[j] = p.Bounds(j)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for step := 0; step < 40; step++ {
			v := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				hi[v] = lo[v] + (hi[v]-lo[v])*rng.Float64()
			case 1:
				lo[v] = lo[v] + (hi[v]-lo[v])*rng.Float64()
			default:
				lo[v], hi[v] = p.Bounds(v) // relax back to the base box
			}
			warm, err := tab.ReSolve(lo, hi)
			if err != nil {
				t.Fatalf("seed %d step %d: ReSolve: %v", seed, step, err)
			}
			fresh := p.Clone()
			for j := 0; j < n; j++ {
				fresh.SetBounds(j, lo[j], hi[j])
			}
			cold, err := fresh.Solve()
			if err != nil {
				t.Fatalf("seed %d step %d: cold solve: %v", seed, step, err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("seed %d step %d: warm status %v, cold %v", seed, step, warm.Status, cold.Status)
			}
			if warm.Status != StatusOptimal {
				continue
			}
			if !approx(warm.Objective, cold.Objective, 1e-6) {
				t.Fatalf("seed %d step %d: warm objective %g, cold %g", seed, step, warm.Objective, cold.Objective)
			}
			if !fresh.Feasible(warm.X, 1e-6) {
				t.Fatalf("seed %d step %d: warm solution infeasible in fresh problem", seed, step)
			}
		}
	}
}

// TestReSolveDegenerateCycling re-solves Beale's cycling example through
// the warm-start path: every bound patch lands on a degenerate vertex, so
// this guards the anti-cycling rule in the dual/primal repair loop.
func TestReSolveDegenerateCycling(t *testing.T) {
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)

	tab, err := NewResolvableTableau(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := tab.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != StatusOptimal || !approx(base.Objective, -0.05, 1e-6) {
		t.Fatalf("base solve: status %v objective %g, want optimal -0.05", base.Status, base.Objective)
	}

	n := p.NumVars()
	lo := make([]float64, n)
	hi := make([]float64, n)
	reset := func() {
		for j := 0; j < n; j++ {
			lo[j], hi[j] = p.Bounds(j)
		}
	}
	steps := []func(){
		func() { hi[2] = 0.5 },                     // cut the binding x3 bound in half
		func() { hi[2] = 0 },                       // pin x3 at zero (fully degenerate)
		func() { reset(); lo[2] = 1 },              // force x3 to its constraint limit
		func() { reset(); hi[0], hi[3] = 0.02, 0 }, // squeeze two variables at once
		func() { reset() },                         // relax back to the base box
	}
	reset()
	for i, mutate := range steps {
		mutate()
		warm, err := tab.ReSolve(lo, hi)
		if err != nil {
			t.Fatalf("step %d: ReSolve: %v", i, err)
		}
		fresh := p.Clone()
		for j := 0; j < n; j++ {
			fresh.SetBounds(j, lo[j], hi[j])
		}
		cold, err := fresh.Solve()
		if err != nil {
			t.Fatalf("step %d: cold solve: %v", i, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("step %d: warm status %v, cold %v", i, warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal && !approx(warm.Objective, cold.Objective, 1e-6) {
			t.Fatalf("step %d: warm objective %g, cold %g", i, warm.Objective, cold.Objective)
		}
	}
}

// TestReSolveEmptyBox: crossing bounds make the node trivially infeasible
// without touching the simplex machinery.
func TestReSolveEmptyBox(t *testing.T) {
	p := benchProblem(10, 8, 5)
	n := p.NumVars()
	tab, err := NewResolvableTableau(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Solve(); err != nil {
		t.Fatal(err)
	}
	lo := make([]float64, n)
	hi := make([]float64, n)
	for j := 0; j < n; j++ {
		lo[j], hi[j] = p.Bounds(j)
	}
	lo[3], hi[3] = 4, 2
	sol, err := tab.ReSolve(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// And the tableau stays reusable afterwards.
	for j := 0; j < n; j++ {
		lo[j], hi[j] = p.Bounds(j)
	}
	sol, err = tab.ReSolve(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v after recovery, want optimal", sol.Status)
	}
}

// TestReSolveInfiniteUpper exercises the +Inf→finite→+Inf upper-bound
// transitions of the patch path.
func TestReSolveInfiniteUpper(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -1) // maximize x0
	p.SetObjective(1, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10)
	tab, err := NewResolvableTableau(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Solve(); err != nil {
		t.Fatal(err)
	}
	inf := math.Inf(1)
	cases := []struct {
		lo, hi [2]float64
		want   float64
	}{
		{[2]float64{0, 0}, [2]float64{3, inf}, -10}, // x0≤3, x1 free above
		{[2]float64{0, 0}, [2]float64{3, 4}, -7},
		{[2]float64{0, 0}, [2]float64{inf, inf}, -10},
		{[2]float64{2, 0}, [2]float64{2, inf}, -10}, // x0 fixed at 2
	}
	for i, c := range cases {
		sol, err := tab.ReSolve(c.lo[:], c.hi[:])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sol.Status != StatusOptimal || !approx(sol.Objective, c.want, 1e-6) {
			t.Fatalf("case %d: status %v objective %g, want optimal %g", i, sol.Status, sol.Objective, c.want)
		}
	}
}
