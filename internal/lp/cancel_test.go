package lp

import (
	"context"
	"testing"
)

// textbookProblem is the TestTextbookMax LP: max 3x+5y (via negation)
// with optimum (2,6).
func textbookProblem() *Problem {
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	return p
}

func TestSolveCtxCancelledReturnsIterLimit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := textbookProblem().SolveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusIterLimit {
		t.Fatalf("status %v, want StatusIterLimit", s.Status)
	}
}

func TestSolveCtxUncancelledMatchesSolve(t *testing.T) {
	want, err := textbookProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := textbookProblem().SolveCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || !approx(got.Objective, want.Objective, 1e-9) {
		t.Fatalf("SolveCtx(Background) = %v obj %g, Solve = %v obj %g",
			got.Status, got.Objective, want.Status, want.Objective)
	}
}

// TestSetCancelMidSolve installs a poll that trips after a few pivots:
// the pivot loop must abandon the solve with StatusIterLimit instead of
// running to optimality.
func TestSetCancelMidSolve(t *testing.T) {
	tab, err := NewTableau(textbookProblem())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	tab.SetCancel(func() bool { calls++; return true })
	s, err := tab.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusIterLimit {
		t.Fatalf("status %v, want StatusIterLimit", s.Status)
	}
	if calls == 0 {
		t.Fatal("cancel poll never invoked")
	}
}
