package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// Classic textbook LP:
//
//	max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//
// optimum (2,6) with value 36.
func TestTextbookMax(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -3) // maximize via negation
	p.SetObjective(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Objective, -36, 1e-6) {
		t.Errorf("objective %g, want -36", s.Objective)
	}
	if !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 6, 1e-6) {
		t.Errorf("x = %v, want (2,6)", s.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj 14.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 2)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !approx(s.Objective, 14, 1e-6) {
		t.Fatalf("got %v obj %g", s.Status, s.Objective)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 3 → x=10-... optimum at y=0, x=10? obj:
	// x=10,y=0 → 20; x=3,y=7 → 27. So (10,0), obj 20.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !approx(s.Objective, 20, 1e-6) {
		t.Fatalf("got %v obj %g x=%v", s.Status, s.Objective, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, GE, 10)
	p.AddConstraint([]Term{{0, 1}}, LE, 5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1) // maximize x with no upper limit
	p.AddConstraint([]Term{{0, 1}}, GE, 0)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestVariableBounds(t *testing.T) {
	// min -x with x ≤ 7.5 via bounds.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.SetBounds(0, 0, 7.5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !approx(s.X[0], 7.5, 1e-6) {
		t.Fatalf("x = %v (%v)", s.X, s.Status)
	}
}

func TestShiftedLowerBounds(t *testing.T) {
	// min x + y with x ≥ 2, y in [3, 5], x + y ≥ 6 → (3,3) or (2,4): obj 6.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetBounds(0, 2, math.Inf(1))
	p.SetBounds(1, 3, 5)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 6)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !approx(s.Objective, 6, 1e-6) {
		t.Fatalf("obj %g (%v) x=%v", s.Objective, s.Status, s.X)
	}
	if s.X[0] < 2-1e-9 || s.X[1] < 3-1e-9 {
		t.Errorf("bounds violated: %v", s.X)
	}
}

func TestEmptyBoundsError(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 5, 4)
	if _, err := p.Solve(); err == nil {
		t.Error("accepted empty bounds")
	}
}

func TestDegenerateCycling(t *testing.T) {
	// Beale's classic cycling example (degenerate without anti-cycling).
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 ≤ 0
	//      0.5x1 - 90x2 - 0.02x3 + 3x4 ≤ 0
	//      x3 ≤ 1
	// Optimum: obj -0.05 at x = (0.04?,...) — known optimum value −1/20.
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status %v after %d iters", s.Status, s.Iters)
	}
	if !approx(s.Objective, -0.05, 1e-6) {
		t.Errorf("objective %g, want -0.05", s.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers (cap 20, 30) → 3 consumers (demand 10, 25, 15), costs:
	//   s0: 2 4 5
	//   s1: 3 1 7
	// Optimal: s0→c0:10, s0→c2:10(?) — compute: supply 50 = demand 50.
	// LP optimum known to be 2·10+1·25+5·10+7·5 = ... verify by solver
	// against brute force on the transportation polytope instead: check
	// feasibility and that objective ≤ a few random feasible points.
	cost := []float64{2, 4, 5, 3, 1, 7}
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	p := NewProblem(6)
	for i, c := range cost {
		p.SetObjective(i, c)
	}
	for s := 0; s < 2; s++ {
		terms := []Term{}
		for c := 0; c < 3; c++ {
			terms = append(terms, Term{s*3 + c, 1})
		}
		p.AddConstraint(terms, LE, supply[s])
	}
	for c := 0; c < 3; c++ {
		terms := []Term{{c, 1}, {3 + c, 1}}
		p.AddConstraint(terms, EQ, demand[c])
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status %v", s.Status)
	}
	if !p.Feasible(s.X, 1e-6) {
		t.Fatalf("solution infeasible: %v", s.X)
	}
	// Brute-force-verified optimum: s0→c0 5, s0→c2 15, s1→c0 5, s1→c1 25:
	// 10 + 75 + 15 + 25 = 125.
	if !approx(s.Objective, 125, 1e-6) {
		t.Errorf("objective %g, want 125", s.Objective)
	}
}

// Property test: on random feasible LPs (constraints built around a known
// interior point), the solver's optimum is never worse than any random
// feasible point.
func TestRandomLPOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		// Interior point z in [1,2]^n.
		z := make([]float64, n)
		for i := range z {
			z[i] = 1 + rng.Float64()
		}
		p := NewProblem(n)
		for i := 0; i < n; i++ {
			p.SetObjective(i, rng.NormFloat64())
			p.SetBounds(i, 0, 10)
		}
		for k := 0; k < m; k++ {
			terms := make([]Term, n)
			lhs := 0.0
			for i := 0; i < n; i++ {
				c := rng.NormFloat64()
				terms[i] = Term{i, c}
				lhs += c * z[i]
			}
			p.AddConstraint(terms, LE, lhs+rng.Float64()) // z strictly feasible
		}
		s, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if !p.Feasible(s.X, 1e-6) {
			t.Fatalf("trial %d: optimum infeasible", trial)
		}
		if s.Objective > p.Evaluate(z)+1e-6 {
			t.Errorf("trial %d: solver obj %g worse than feasible point %g", trial, s.Objective, p.Evaluate(z))
		}
		// A few random feasible perturbations toward z must not beat it.
		for probe := 0; probe < 10; probe++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = z[i] * rng.Float64()
			}
			if p.Feasible(x, 0) && p.Evaluate(x) < s.Objective-1e-6 {
				t.Errorf("trial %d: point %v beats solver: %g < %g", trial, x, p.Evaluate(x), s.Objective)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 5)
	q := p.Clone()
	q.SetBounds(0, 2, 3)
	q.SetObjective(1, 9)
	if lo, _ := p.Bounds(0); lo != 0 {
		t.Error("Clone shares bounds")
	}
	if p.c[1] != 0 {
		t.Error("Clone shares objective")
	}
}

func TestFeasibleChecks(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.SetBounds(0, 0, 3)
	if !p.Feasible([]float64{1, 3}, 1e-9) {
		t.Error("rejected feasible point")
	}
	if p.Feasible([]float64{4, 0}, 1e-9) {
		t.Error("accepted bound violation")
	}
	if p.Feasible([]float64{1, 1}, 1e-9) {
		t.Error("accepted equality violation")
	}
	if p.Feasible([]float64{1}, 1e-9) {
		t.Error("accepted wrong dimension")
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Op strings wrong")
	}
}
