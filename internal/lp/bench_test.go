package lp

import "testing"

// benchProblem builds a dense-ish LP with a mix of operators so the
// standard form carries slack, surplus, and artificial columns — the
// shape phase-2 column-limited pivoting targets.
func benchProblem(vars, rows int, seed uint64) *Problem {
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	p := NewProblem(vars)
	for i := 0; i < vars; i++ {
		p.SetObjective(i, float64(1+next(9)))
		p.SetBounds(i, 0, float64(5+next(20)))
	}
	for r := 0; r < rows; r++ {
		terms := make([]Term, 0, vars/3)
		sum := 0.0
		for i := 0; i < vars; i++ {
			if next(3) == 0 {
				c := float64(1 + next(5))
				terms = append(terms, Term{Var: i, Coeff: c})
				sum += c
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: r % vars, Coeff: 1})
			sum = 1
		}
		switch r % 3 {
		case 0:
			p.AddConstraint(terms, LE, sum*3)
		case 1:
			p.AddConstraint(terms, GE, sum/2)
		default:
			p.AddConstraint(terms, EQ, sum)
		}
	}
	return p
}

// BenchmarkLPSolve measures a cold two-phase solve on a mixed-operator
// LP (artificials present, so phase 1 runs).
func BenchmarkLPSolve(b *testing.B) {
	p := benchProblem(40, 36, 7)
	var pivots int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		pivots = sol.Iters
	}
	b.ReportMetric(float64(pivots), "lp.pivots")
}

// BenchmarkLPResolveBounds measures the branch-and-bound inner loop: the
// same LP re-solved under a sequence of single-variable bound tightenings.
// At the seed this cloned and rebuilt per change (the old milp hot path);
// now it patches the bounded-variable tableau in place and repairs with
// dual simplex.
func BenchmarkLPResolveBounds(b *testing.B) {
	p := benchProblem(40, 36, 7)
	n := p.NumVars()
	t, err := NewResolvableTableau(p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := t.Solve(); err != nil {
		b.Fatal(err)
	}
	lo := make([]float64, n)
	hi := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			v := (i + 3*k) % n
			for j := 0; j < n; j++ {
				lo[j], hi[j] = p.Bounds(j)
			}
			hi[v] = (lo[v] + hi[v]) / 2
			sol, err := t.ReSolve(lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			if sol.Status != StatusOptimal {
				b.Fatalf("status %v", sol.Status)
			}
		}
	}
}

// BenchmarkLPColLimit quantifies the post-phase-1 column-limit
// optimization: with disableColLimit set, every pivot and objective-row
// update sweeps the stale artificial block too. It runs the same warm
// re-solve loop as BenchmarkLPResolveBounds — where no pivot ever needs
// the artificial columns — so the delta between the two benchmarks is
// exactly the cost of dragging dead columns through each elimination.
func BenchmarkLPColLimit(b *testing.B) {
	p := benchProblem(40, 36, 7)
	disableColLimit = true
	defer func() { disableColLimit = false }()
	n := p.NumVars()
	t, err := NewResolvableTableau(p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := t.Solve(); err != nil {
		b.Fatal(err)
	}
	lo := make([]float64, n)
	hi := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			v := (i + 3*k) % n
			for j := 0; j < n; j++ {
				lo[j], hi[j] = p.Bounds(j)
			}
			hi[v] = (lo[v] + hi[v]) / 2
			sol, err := t.ReSolve(lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			if sol.Status != StatusOptimal {
				b.Fatalf("status %v", sol.Status)
			}
		}
	}
}
