// Package milp implements a mixed-integer linear program solver via
// branch-and-bound over LP relaxations (package lp).
//
// It is the solving engine behind SyCCL's sub-schedule synthesis (§5.1):
// because the symmetry decomposition yields small per-group problems, an
// exact pure-Go branch-and-bound with best-first node ordering replaces
// the commercial solver the paper uses, preserving the encoding and the
// accuracy/efficiency knobs (τ, E) while staying dependency-free.
//
// The solver supports warm-start incumbents (SyCCL seeds it with the
// greedy list schedule so a feasible answer exists at any time limit) and
// deadline-bounded solving that returns the best incumbent found.
package milp

import (
	"container/heap"
	"errors"
	"math"
	"time"

	"syccl/internal/lp"
)

// Problem is an LP plus integrality markers.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // Integer[i]: variable i must take an integral value
}

// NewProblem creates a MILP with n continuous variables; mark integer
// variables with SetInteger.
func NewProblem(n int) *Problem {
	return &Problem{LP: lp.NewProblem(n), Integer: make([]bool, n)}
}

// SetInteger marks variable i as integral.
func (p *Problem) SetInteger(i int) { p.Integer[i] = true }

// SetBinary marks variable i as integral with bounds [0,1].
func (p *Problem) SetBinary(i int) {
	p.Integer[i] = true
	p.LP.SetBounds(i, 0, 1)
}

// Options controls the branch-and-bound search.
type Options struct {
	TimeLimit time.Duration // 0: unlimited
	MaxNodes  int           // 0: default 100000
	// Incumbent optionally seeds the search with a known feasible point;
	// it must satisfy all constraints and integrality.
	Incumbent []float64
	// AbsGap stops the search once bestBound ≥ incumbent − AbsGap.
	AbsGap float64
	// now is injectable for tests.
	now func() time.Time
}

// Status classifies a MILP outcome.
type Status int

// MILP statuses.
const (
	StatusOptimal    Status = iota // proved optimal
	StatusFeasible                 // feasible incumbent, limit hit before proof
	StatusInfeasible               // no integral point exists
	StatusUnbounded
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution reports the outcome.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int     // branch-and-bound nodes explored
	LPIters   int     // simplex pivots summed over all node relaxations
	Bound     float64 // best lower bound on the optimum
}

const intTol = 1e-6

type node struct {
	lo, hi []float64 // overriding bounds
	bound  float64   // parent LP bound (priority)
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs best-first branch-and-bound.
func Solve(p *Problem, opts Options) (*Solution, error) {
	n := p.LP.NumVars()
	if len(p.Integer) != n {
		return nil, errors.New("milp: Integer mask length mismatch")
	}
	nowFn := opts.now
	if nowFn == nil {
		nowFn = time.Now
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = nowFn().Add(opts.TimeLimit)
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}

	sol := &Solution{Status: StatusInfeasible, Objective: math.Inf(1), Bound: math.Inf(-1)}
	if opts.Incumbent != nil {
		if !p.LP.Feasible(opts.Incumbent, 1e-6) || !integral(p, opts.Incumbent) {
			return nil, errors.New("milp: provided incumbent is not feasible")
		}
		sol.Status = StatusFeasible
		sol.X = append([]float64(nil), opts.Incumbent...)
		sol.Objective = p.LP.Evaluate(opts.Incumbent)
	}

	baseLo := make([]float64, n)
	baseHi := make([]float64, n)
	for i := 0; i < n; i++ {
		baseLo[i], baseHi[i] = p.LP.Bounds(i)
	}

	h := &nodeHeap{{lo: baseLo, hi: baseHi, bound: math.Inf(-1)}}
	heap.Init(h)

	exhausted := true
	for h.Len() > 0 {
		if sol.Nodes >= maxNodes {
			exhausted = false
			break
		}
		if !deadline.IsZero() && nowFn().After(deadline) {
			exhausted = false
			break
		}
		nd := heap.Pop(h).(*node)
		// Bound pruning against the incumbent.
		if nd.bound >= sol.Objective-opts.AbsGap-intTol {
			// Best-first: every remaining node is at least as bad.
			sol.Bound = math.Max(sol.Bound, nd.bound)
			exhausted = true
			break
		}
		sol.Nodes++

		rel := p.LP.Clone()
		for i := 0; i < n; i++ {
			rel.SetBounds(i, nd.lo[i], nd.hi[i])
		}
		ls, err := rel.Solve()
		if err != nil {
			// Empty bounds from branching: infeasible child.
			continue
		}
		sol.LPIters += ls.Iters
		switch ls.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			if sol.Status == StatusInfeasible {
				sol.Status = StatusUnbounded
				return sol, nil
			}
			continue
		case lp.StatusIterLimit:
			exhausted = false
			continue
		}
		if ls.Objective >= sol.Objective-opts.AbsGap-intTol {
			continue // cannot improve
		}

		// Find the most fractional integer variable.
		branch := -1
		worst := intTol
		for i := 0; i < n; i++ {
			if !p.Integer[i] {
				continue
			}
			f := math.Abs(ls.X[i] - math.Round(ls.X[i]))
			if f > worst {
				worst = f
				branch = i
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			if ls.Objective < sol.Objective-intTol {
				sol.Objective = ls.Objective
				sol.X = roundIntegral(p, ls.X)
				sol.Status = StatusFeasible
			}
			continue
		}

		floorV := math.Floor(ls.X[branch])
		// Down child: x ≤ floor.
		lo1 := append([]float64(nil), nd.lo...)
		hi1 := append([]float64(nil), nd.hi...)
		hi1[branch] = math.Min(hi1[branch], floorV)
		if lo1[branch] <= hi1[branch]+intTol {
			heap.Push(h, &node{lo: lo1, hi: hi1, bound: ls.Objective})
		}
		// Up child: x ≥ floor+1.
		lo2 := append([]float64(nil), nd.lo...)
		hi2 := append([]float64(nil), nd.hi...)
		lo2[branch] = math.Max(lo2[branch], floorV+1)
		if lo2[branch] <= hi2[branch]+intTol {
			heap.Push(h, &node{lo: lo2, hi: hi2, bound: ls.Objective})
		}
	}

	if sol.Status == StatusFeasible && exhausted && h.Len() == 0 {
		sol.Status = StatusOptimal
	} else if sol.Status == StatusFeasible && exhausted {
		// Stopped because the best remaining bound met the incumbent.
		sol.Status = StatusOptimal
	}
	if sol.Status == StatusOptimal {
		sol.Bound = sol.Objective
	}
	return sol, nil
}

func integral(p *Problem, x []float64) bool {
	for i, isInt := range p.Integer {
		if isInt && math.Abs(x[i]-math.Round(x[i])) > intTol {
			return false
		}
	}
	return true
}

// roundIntegral snaps near-integral values exactly.
func roundIntegral(p *Problem, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for i, isInt := range p.Integer {
		if isInt {
			out[i] = math.Round(out[i])
		}
	}
	return out
}
