// Package milp implements a mixed-integer linear program solver via
// branch-and-bound over LP relaxations (package lp).
//
// It is the solving engine behind SyCCL's sub-schedule synthesis (§5.1):
// because the symmetry decomposition yields small per-group problems, an
// exact pure-Go branch-and-bound with best-first node ordering replaces
// the commercial solver the paper uses, preserving the encoding and the
// accuracy/efficiency knobs (τ, E) while staying dependency-free.
//
// Nodes carry only their (branchVar, bound) delta against the parent;
// each worker owns one resolvable tableau (lp.NewResolvableTableau) that
// is re-solved warm per node — a right-hand-side patch plus a few dual
// simplex pivots — instead of cloning and rebuilding the whole LP. A
// worker pool runs the best-first search in parallel with a shared
// incumbent; the incumbent tie-break is deterministic (lexicographically
// smallest solution among equal objectives) so results are reproducible
// across worker counts.
//
// The solver supports warm-start incumbents (SyCCL seeds it with the
// greedy list schedule so a feasible answer exists at any time limit) and
// deadline-bounded solving that returns the best incumbent found.
package milp

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"syccl/internal/lp"
)

// Problem is an LP plus integrality markers.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // Integer[i]: variable i must take an integral value
}

// NewProblem creates a MILP with n continuous variables; mark integer
// variables with SetInteger.
func NewProblem(n int) *Problem {
	return &Problem{LP: lp.NewProblem(n), Integer: make([]bool, n)}
}

// SetInteger marks variable i as integral.
func (p *Problem) SetInteger(i int) { p.Integer[i] = true }

// SetBinary marks variable i as integral with bounds [0,1].
func (p *Problem) SetBinary(i int) {
	p.Integer[i] = true
	p.LP.SetBounds(i, 0, 1)
}

// Options controls the branch-and-bound search.
type Options struct {
	TimeLimit time.Duration // 0: unlimited
	MaxNodes  int           // 0: default 100000
	// MaxLPIters caps the simplex pivots summed over all node
	// relaxations (0: unlimited). Unlike TimeLimit it is a
	// deterministic effort bound — with one worker the same search
	// truncates at the same node on any machine — while still tracking
	// actual work when nodes have very different relaxation costs.
	// Checked between nodes, so the cap can overshoot by one node's
	// pivots.
	MaxLPIters int
	// Workers is the number of parallel branch-and-bound workers
	// (default 1). Results are reproducible across worker counts up to
	// the deterministic incumbent tie-break; node counts are not.
	Workers int
	// Incumbent optionally seeds the search with a known feasible point;
	// it must satisfy all constraints and integrality.
	Incumbent []float64
	// AbsGap stops the search once bestBound ≥ incumbent − AbsGap.
	AbsGap float64
	// now is injectable for tests.
	now func() time.Time
}

// Status classifies a MILP outcome.
type Status int

// MILP statuses.
const (
	StatusOptimal    Status = iota // proved optimal
	StatusFeasible                 // feasible incumbent, limit hit before proof
	StatusInfeasible               // no integral point exists
	StatusUnbounded
	StatusUnknown // limit hit before any feasible point or proof
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution reports the outcome.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int     // branch-and-bound nodes explored
	LPIters   int     // simplex pivots summed over all node relaxations
	Bound     float64 // best lower bound on the optimum
}

const intTol = 1e-6

// node is one open branch-and-bound subproblem, stored as a delta
// against its parent: the full bound box is reconstructed by walking the
// parent chain (bounds only ever tighten, so application order is
// irrelevant).
type node struct {
	parent    *node
	branchVar int
	val       float64
	isUpper   bool    // true: hi[branchVar] ← min(hi, val); false: lo ← max(lo, val)
	bound     float64 // parent LP bound (priority)
	seq       int64   // creation order: deterministic heap tie-break
}

// materialize reconstructs the node's bound box over the base bounds.
func (nd *node) materialize(lo, hi, baseLo, baseHi []float64) {
	copy(lo, baseLo)
	copy(hi, baseHi)
	for c := nd; c != nil && c.parent != nil; c = c.parent {
		if c.isUpper {
			if c.val < hi[c.branchVar] {
				hi[c.branchVar] = c.val
			}
		} else {
			if c.val > lo[c.branchVar] {
				lo[c.branchVar] = c.val
			}
		}
	}
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// solver is the state shared by all branch-and-bound workers.
type solver struct {
	p              *Problem
	n              int
	baseLo, baseHi []float64
	gap            float64
	maxNodes       int
	maxIters       int
	deadline       time.Time
	nowFn          func() time.Time
	ctx            context.Context

	mu     sync.Mutex
	cond   *sync.Cond
	h      nodeHeap
	active int   // workers currently expanding a node
	nodes  int   // nodes expanded (LP-solved)
	iters  int   // LP pivots summed
	seq    int64 // next node sequence number

	haveInc   bool
	best      float64 // incumbent objective (+Inf when none)
	bestX     []float64
	unbounded bool
	stop      bool    // a limit fired (or unboundedness proved)
	dropped   bool    // some subproblem was left unresolved
	droppedLB float64 // min bound over unresolved subproblems
	prunedLB  float64 // min bound over subtrees resolved by incumbent pruning
}

// Solve runs best-first branch-and-bound.
func Solve(p *Problem, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve under a context: cancellation is polled once per
// branch-and-bound node and every few simplex pivots inside each node's
// relaxation, and it behaves exactly like the deadline — the search stops,
// open subtrees are recorded as unresolved, and the best incumbent found
// so far is returned (StatusFeasible), or StatusUnknown when none exists.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	n := p.LP.NumVars()
	if len(p.Integer) != n {
		return nil, errors.New("milp: Integer mask length mismatch")
	}
	nowFn := opts.now
	if nowFn == nil {
		nowFn = time.Now
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = nowFn().Add(opts.TimeLimit)
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	maxIters := opts.MaxLPIters
	if maxIters <= 0 {
		maxIters = math.MaxInt
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}

	if ctx == nil {
		ctx = context.Background()
	}
	s := &solver{
		p: p, n: n,
		gap:       opts.AbsGap,
		maxNodes:  maxNodes,
		maxIters:  maxIters,
		deadline:  deadline,
		nowFn:     nowFn,
		ctx:       ctx,
		best:      math.Inf(1),
		droppedLB: math.Inf(1),
		prunedLB:  math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	if opts.Incumbent != nil {
		if !p.LP.Feasible(opts.Incumbent, 1e-6) || !integral(p, opts.Incumbent) {
			return nil, errors.New("milp: provided incumbent is not feasible")
		}
		s.haveInc = true
		s.bestX = append([]float64(nil), opts.Incumbent...)
		s.best = p.LP.Evaluate(opts.Incumbent)
	}

	s.baseLo = make([]float64, n)
	s.baseHi = make([]float64, n)
	for i := 0; i < n; i++ {
		s.baseLo[i], s.baseHi[i] = p.LP.Bounds(i)
	}

	s.h = nodeHeap{{bound: math.Inf(-1), seq: 0}}
	heap.Init(&s.h)
	s.seq = 1

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()

	sol := &Solution{Nodes: s.nodes, LPIters: s.iters}
	switch {
	case s.unbounded && !s.haveInc:
		sol.Status = StatusUnbounded
		sol.Objective = math.Inf(-1)
		sol.Bound = math.Inf(-1)
	case !s.dropped:
		// Every subproblem was resolved: exhausted (possibly via pruning).
		if s.haveInc {
			sol.Status = StatusOptimal
			sol.X = s.bestX
			sol.Objective = s.best
			sol.Bound = s.best
		} else {
			sol.Status = StatusInfeasible
			sol.Objective = math.Inf(1)
			sol.Bound = math.Inf(1)
		}
	default:
		// A limit left subproblems unresolved: report the exact proved
		// bound, the minimum over every unresolved or pruned subtree.
		sol.Bound = math.Min(s.droppedLB, s.prunedLB)
		if s.haveInc {
			sol.Status = StatusFeasible
			sol.X = s.bestX
			sol.Objective = s.best
			if sol.Bound > sol.Objective {
				sol.Bound = sol.Objective
			}
		} else {
			sol.Status = StatusUnknown
			sol.Objective = math.Inf(1)
		}
	}
	return sol, nil
}

// worker runs the branch-and-bound loop against its own warm tableau
// until the heap drains or a limit fires.
func (s *solver) worker() {
	tab, _ := lp.NewResolvableTableau(s.p.LP) // nil tab → cold fallback per node
	if tab != nil && s.ctx.Done() != nil {
		// Cancellation reaches into the pivot loop: a cancelled node solve
		// returns StatusIterLimit and is recorded as unresolved, exactly
		// like a node abandoned at the deadline.
		tab.SetCancel(func() bool { return s.ctx.Err() != nil })
	}
	lo := make([]float64, s.n)
	hi := make([]float64, s.n)

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.h) == 0 && s.active > 0 && !s.stop {
			s.cond.Wait()
		}
		if s.stop {
			// Drain: every remaining open node is an unresolved subtree.
			for _, nd := range s.h {
				s.noteDropped(nd.bound)
			}
			s.h = s.h[:0]
			s.cond.Broadcast()
			return
		}
		if len(s.h) == 0 {
			return // no open nodes, no active workers: exhausted
		}
		if s.nodes >= s.maxNodes || s.iters >= s.maxIters || s.ctx.Err() != nil || (!s.deadline.IsZero() && s.nowFn().After(s.deadline)) {
			s.stop = true
			s.cond.Broadcast()
			continue
		}
		nd := heap.Pop(&s.h).(*node)
		if nd.bound >= s.best-s.gap-intTol {
			// Resolved by bound: the subtree cannot beat the incumbent.
			if nd.bound < s.prunedLB {
				s.prunedLB = nd.bound
			}
			continue
		}
		s.active++
		s.nodes++
		s.mu.Unlock()

		ls := s.solveNode(tab, nd, lo, hi)

		s.mu.Lock()
		if ls != nil {
			s.iters += ls.Iters
		}
		s.finishNode(nd, ls, lo, hi)
		s.active--
		s.cond.Broadcast()
	}
}

// solveNode solves the node's LP relaxation, warm via the worker tableau
// with a cold clone-and-rebuild fallback. Called without the lock; lo/hi
// are the worker's scratch bound boxes. Returns nil when the relaxation
// is infeasible or unusable.
func (s *solver) solveNode(tab *lp.Tableau, nd *node, lo, hi []float64) *lp.Solution {
	nd.materialize(lo, hi, s.baseLo, s.baseHi)
	if tab != nil {
		ls, err := tab.ReSolve(lo, hi)
		if err == nil && s.trusted(ls, nd) {
			return ls
		}
	}
	return s.coldSolve(nd, lo, hi)
}

// trusted applies the warm-path safety nets: the child bound must not
// undercut the parent bound (monotonicity), and integral optima must
// verify against the original problem. A failure sends the node to the
// cold path.
func (s *solver) trusted(ls *lp.Solution, nd *node) bool {
	if ls.Status != lp.StatusOptimal {
		return true // infeasible/unbounded verdicts are checked upstream
	}
	if !math.IsInf(nd.bound, -1) && ls.Objective < nd.bound-1e-6 {
		return false
	}
	if integral(s.p, ls.X) && !s.p.LP.Feasible(roundIntegral(s.p, ls.X), 1e-5) {
		return false
	}
	return true
}

// coldSolve is the historical per-node path: clone the LP, tighten
// bounds, rebuild, solve. It remains the fallback whenever the warm
// tableau cannot absorb a bound change or fails a safety check.
func (s *solver) coldSolve(nd *node, lo, hi []float64) *lp.Solution {
	rel := s.p.LP.Clone()
	for i := 0; i < s.n; i++ {
		rel.SetBounds(i, lo[i], hi[i])
	}
	ls, err := rel.SolveCtx(s.ctx)
	if err != nil {
		return nil // empty bounds from branching: infeasible child
	}
	return ls
}

// finishNode classifies the node's relaxation and, under the lock,
// updates the incumbent or pushes the two children.
func (s *solver) finishNode(nd *node, ls *lp.Solution, lo, hi []float64) {
	if ls == nil {
		return // infeasible child
	}
	switch ls.Status {
	case lp.StatusInfeasible:
		return
	case lp.StatusUnbounded:
		if !s.haveInc {
			s.unbounded = true
			s.stop = true
		}
		return
	case lp.StatusIterLimit:
		s.noteDropped(nd.bound)
		return
	}
	// Find the most fractional integer variable.
	branch := -1
	worst := intTol
	for i := 0; i < s.n; i++ {
		if !s.p.Integer[i] {
			continue
		}
		f := math.Abs(ls.X[i] - math.Round(ls.X[i]))
		if f > worst {
			worst = f
			branch = i
		}
	}
	if branch < 0 {
		// Integral: candidate incumbent. Ties on the objective resolve to
		// the lexicographically smallest solution so the result does not
		// depend on node exploration order (and hence worker count).
		x := roundIntegral(s.p, ls.X)
		if s.betterIncumbent(ls.Objective, x) {
			s.best = ls.Objective
			s.bestX = x
			s.haveInc = true
		}
		return
	}
	if ls.Objective >= s.best-s.gap-intTol {
		if ls.Objective < s.prunedLB {
			s.prunedLB = ls.Objective
		}
		return // cannot improve
	}

	floorV := math.Floor(ls.X[branch])
	// Down child: x ≤ floor.
	if lo[branch] <= math.Min(hi[branch], floorV)+intTol {
		s.pushChild(&node{parent: nd, branchVar: branch, val: floorV, isUpper: true, bound: ls.Objective})
	}
	// Up child: x ≥ floor+1.
	if math.Max(lo[branch], floorV+1) <= hi[branch]+intTol {
		s.pushChild(&node{parent: nd, branchVar: branch, val: floorV + 1, isUpper: false, bound: ls.Objective})
	}
}

func (s *solver) pushChild(c *node) {
	c.seq = s.seq
	s.seq++
	if s.stop {
		s.noteDropped(c.bound)
		return
	}
	heap.Push(&s.h, c)
}

func (s *solver) noteDropped(bound float64) {
	s.dropped = true
	if bound < s.droppedLB {
		s.droppedLB = bound
	}
}

// betterIncumbent reports whether (obj, x) replaces the current
// incumbent: strictly better objective, or an equal objective (within
// intTol) with a lexicographically smaller solution vector.
func (s *solver) betterIncumbent(obj float64, x []float64) bool {
	if !s.haveInc {
		return true
	}
	if obj < s.best-intTol {
		return true
	}
	if obj > s.best+intTol {
		return false
	}
	for i := range x {
		if x[i] < s.bestX[i]-intTol {
			return true
		}
		if x[i] > s.bestX[i]+intTol {
			return false
		}
	}
	return false
}

func integral(p *Problem, x []float64) bool {
	for i, isInt := range p.Integer {
		if isInt && math.Abs(x[i]-math.Round(x[i])) > intTol {
			return false
		}
	}
	return true
}

// roundIntegral snaps near-integral values exactly.
func roundIntegral(p *Problem, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for i, isInt := range p.Integer {
		if isInt {
			out[i] = math.Round(out[i])
		}
	}
	return out
}
