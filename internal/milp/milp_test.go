package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"syccl/internal/lp"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestKnapsack(t *testing.T) {
	// max 10x0 + 13x1 + 7x2 + 4x3, weights 3,4,2,1 ≤ capacity 6, binary.
	// Brute force: best is x1+x2 = 20 (w=6)? options: x0+x2+x3=21 (w=6).
	values := []float64{10, 13, 7, 4}
	weights := []float64{3, 4, 2, 1}
	capacity := 6.0

	// Brute force.
	best := 0.0
	for mask := 0; mask < 16; mask++ {
		w, v := 0.0, 0.0
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				w += weights[i]
				v += values[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}

	p := NewProblem(4)
	terms := []lp.Term{}
	for i := 0; i < 4; i++ {
		p.SetBinary(i)
		p.LP.SetObjective(i, -values[i]) // maximize
		terms = append(terms, lp.Term{Var: i, Coeff: weights[i]})
	}
	p.LP.AddConstraint(terms, lp.LE, capacity)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(-s.Objective, best, 1e-6) {
		t.Errorf("milp %g, brute force %g", -s.Objective, best)
	}
}

func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6) // 5..10 items
		values := make([]float64, n)
		weights := make([]float64, n)
		var wsum float64
		for i := range values {
			values[i] = float64(1 + rng.Intn(50))
			weights[i] = float64(1 + rng.Intn(20))
			wsum += weights[i]
		}
		capacity := wsum * (0.3 + 0.4*rng.Float64())

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}

		p := NewProblem(n)
		terms := []lp.Term{}
		for i := 0; i < n; i++ {
			p.SetBinary(i)
			p.LP.SetObjective(i, -values[i])
			terms = append(terms, lp.Term{Var: i, Coeff: weights[i]})
		}
		p.LP.AddConstraint(terms, lp.LE, capacity)
		s, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != StatusOptimal || !approx(-s.Objective, best, 1e-6) {
			t.Errorf("trial %d (n=%d): milp %g (%v), brute force %g", trial, n, -s.Objective, s.Status, best)
		}
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3×3 assignment; LP relaxation is integral but branching must still
	// terminate with the right answer.
	cost := [3][3]float64{{4, 2, 8}, {4, 3, 7}, {3, 1, 6}}
	p := NewProblem(9)
	id := func(i, j int) int { return i*3 + j }
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p.SetBinary(id(i, j))
			p.LP.SetObjective(id(i, j), cost[i][j])
		}
	}
	for i := 0; i < 3; i++ {
		rowTerms, colTerms := []lp.Term{}, []lp.Term{}
		for j := 0; j < 3; j++ {
			rowTerms = append(rowTerms, lp.Term{Var: id(i, j), Coeff: 1})
			colTerms = append(colTerms, lp.Term{Var: id(j, i), Coeff: 1})
		}
		p.LP.AddConstraint(rowTerms, lp.EQ, 1)
		p.LP.AddConstraint(colTerms, lp.EQ, 1)
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over 6 permutations: min = 2+4+... perms:
	// (0,1,2):4+3+6=13 (1,0,2):2+4+6=12 (0,2,1):4+7+1=12
	// (1,2,0):2+7+3=12 (2,0,1):8+4+1=13 (2,1,0):8+3+3=14 → 12.
	if s.Status != StatusOptimal || !approx(s.Objective, 12, 1e-6) {
		t.Errorf("objective %g (%v), want 12", s.Objective, s.Status)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 3 with x integer: LP feasible (x=1.5), MILP infeasible.
	p := NewProblem(1)
	p.SetInteger(0)
	p.LP.SetBounds(0, 0, 10)
	p.LP.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}}, lp.EQ, 3)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusInfeasible {
		t.Errorf("status %v, want infeasible", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y s.t. y ≥ 1.3x, x integer ≥ 2 → x=2, y=2.6.
	p := NewProblem(2)
	p.SetInteger(0)
	p.LP.SetBounds(0, 2, 10)
	p.LP.SetObjective(1, 1)
	p.LP.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: -1.3}}, lp.GE, 0)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !approx(s.Objective, 2.6, 1e-6) {
		t.Errorf("objective %g (%v)", s.Objective, s.Status)
	}
	if !approx(s.X[0], 2, 1e-9) {
		t.Errorf("x = %v", s.X)
	}
}

func TestIncumbentSeed(t *testing.T) {
	// Seeded incumbent must be returned when the node limit is zero-ish.
	p := NewProblem(2)
	for i := 0; i < 2; i++ {
		p.SetBinary(i)
		p.LP.SetObjective(i, -1)
	}
	p.LP.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.LE, 1)
	s, err := Solve(p, Options{Incumbent: []float64{1, 0}, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Objective > -1+1e-9 {
		t.Errorf("objective %g, incumbent lost", s.Objective)
	}
	if s.Status == StatusInfeasible {
		t.Error("incumbent should guarantee feasibility")
	}
}

func TestBadIncumbentRejected(t *testing.T) {
	p := NewProblem(1)
	p.SetBinary(0)
	if _, err := Solve(p, Options{Incumbent: []float64{0.5}}); err == nil {
		t.Error("accepted fractional incumbent")
	}
	if _, err := Solve(p, Options{Incumbent: []float64{7}}); err == nil {
		t.Error("accepted infeasible incumbent")
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A 20-item knapsack with an immediate deadline: with a seeded
	// incumbent the solver must return it as feasible.
	n := 20
	p := NewProblem(n)
	terms := []lp.Term{}
	for i := 0; i < n; i++ {
		p.SetBinary(i)
		p.LP.SetObjective(i, -float64(i+1))
		terms = append(terms, lp.Term{Var: i, Coeff: float64((i*7)%13 + 1)})
	}
	p.LP.AddConstraint(terms, lp.LE, 30)
	zero := make([]float64, n)
	fake := time.Now()
	s, err := Solve(p, Options{
		TimeLimit: time.Nanosecond,
		Incumbent: zero,
		now:       func() time.Time { fake = fake.Add(time.Second); return fake },
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusFeasible {
		t.Errorf("status %v, want feasible (deadline)", s.Status)
	}
	if s.Objective != 0 {
		t.Errorf("objective %g, want incumbent 0", s.Objective)
	}
}

func TestUnboundedDetection(t *testing.T) {
	p := NewProblem(1)
	p.SetInteger(0)
	p.LP.SetObjective(0, -1) // maximize unbounded integer
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusUnbounded {
		t.Errorf("status %v, want unbounded", s.Status)
	}
}

func TestBoundReported(t *testing.T) {
	p := NewProblem(2)
	for i := 0; i < 2; i++ {
		p.SetBinary(i)
		p.LP.SetObjective(i, -3)
	}
	p.LP.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.LE, 2)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Bound, s.Objective, 1e-9) {
		t.Errorf("bound %g != objective %g at optimality", s.Bound, s.Objective)
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusFeasible.String() != "feasible" ||
		StatusInfeasible.String() != "infeasible" || StatusUnbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}

func TestMaxLPItersTruncatesDeterministically(t *testing.T) {
	// The same knapsack as TestTimeLimitReturnsIncumbent, capped by
	// pivots instead of wall clock: the truncated search must report a
	// pivot count near the cap, keep a seeded incumbent as feasible,
	// and — being a deterministic effort bound — land on the identical
	// incumbent every run.
	build := func() *Problem {
		n := 20
		p := NewProblem(n)
		terms := []lp.Term{}
		for i := 0; i < n; i++ {
			p.SetBinary(i)
			p.LP.SetObjective(i, -float64(i+1))
			terms = append(terms, lp.Term{Var: i, Coeff: float64((i*7)%13 + 1)})
		}
		p.LP.AddConstraint(terms, lp.LE, 30)
		return p
	}
	full, err := Solve(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.LPIters < 10 {
		t.Skipf("instance solved in %d pivots, too cheap to truncate", full.LPIters)
	}
	cap := full.LPIters / 2
	zero := make([]float64, 20)
	var first *Solution
	for run := 0; run < 3; run++ {
		s, err := Solve(build(), Options{MaxLPIters: cap, Incumbent: zero})
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != StatusFeasible && s.Status != StatusOptimal {
			t.Fatalf("run %d: status %v, want feasible/optimal", run, s.Status)
		}
		if s.Status == StatusFeasible && s.LPIters >= full.LPIters {
			t.Fatalf("run %d: cap %d did not truncate (%d pivots, full %d)", run, cap, s.LPIters, full.LPIters)
		}
		if first == nil {
			first = s
		} else if s.Objective != first.Objective || s.LPIters != first.LPIters || s.Nodes != first.Nodes {
			t.Fatalf("run %d: truncation not deterministic: obj %g/%g nodes %d/%d pivots %d/%d",
				run, s.Objective, first.Objective, s.Nodes, first.Nodes, s.LPIters, first.LPIters)
		}
	}
}
