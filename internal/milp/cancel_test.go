package milp

import (
	"context"
	"testing"

	"syccl/internal/lp"
)

// cancelKnapsack is the TestKnapsack instance (optimum 21 at x0+x2+x3).
func cancelKnapsack() *Problem {
	values := []float64{10, 13, 7, 4}
	weights := []float64{3, 4, 2, 1}
	p := NewProblem(4)
	terms := []lp.Term{}
	for i := 0; i < 4; i++ {
		p.SetBinary(i)
		p.LP.SetObjective(i, -values[i])
		terms = append(terms, lp.Term{Var: i, Coeff: weights[i]})
	}
	p.LP.AddConstraint(terms, lp.LE, 6)
	return p
}

// TestSolveCtxCancelledNoIncumbent: cancellation before any node resolves
// behaves like an expired deadline — StatusUnknown, not an error.
func TestSolveCtxCancelledNoIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := SolveCtx(ctx, cancelKnapsack(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusUnknown {
		t.Fatalf("status %v, want StatusUnknown", s.Status)
	}
}

// TestSolveCtxCancelledKeepsIncumbent: with a feasible incumbent seeded,
// a cancelled search must return it as StatusFeasible (anytime result)
// rather than discarding it.
func TestSolveCtxCancelledKeepsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inc := []float64{0, 1, 1, 0} // value 20, weight 6: feasible, not optimal
	s, err := SolveCtx(ctx, cancelKnapsack(), Options{Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusFeasible {
		t.Fatalf("status %v, want StatusFeasible", s.Status)
	}
	if !approx(-s.Objective, 20, 1e-6) {
		t.Fatalf("objective %g, want the incumbent's 20", -s.Objective)
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	want, err := Solve(cancelKnapsack(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveCtx(context.Background(), cancelKnapsack(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || !approx(got.Objective, want.Objective, 1e-9) {
		t.Fatalf("SolveCtx = %v obj %g, Solve = %v obj %g",
			got.Status, got.Objective, want.Status, want.Objective)
	}
}
