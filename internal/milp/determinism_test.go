package milp

import (
	"math/rand"
	"testing"

	"syccl/internal/lp"
)

// TestWorkersDeterminism: the parallel branch-and-bound returns the same
// incumbent — objective and solution vector — for any worker count. The
// shared-incumbent tie-break (lexicographically smallest among equal
// objectives) is what makes this hold; brute force pins correctness.
func TestWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		var wsum float64
		for i := range values {
			values[i] = float64(1 + rng.Intn(40))
			weights[i] = float64(1 + rng.Intn(15))
			wsum += weights[i]
		}
		capacity := wsum * (0.3 + 0.4*rng.Float64())

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}

		p := NewProblem(n)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			p.SetBinary(i)
			p.LP.SetObjective(i, -values[i])
			terms[i] = lp.Term{Var: i, Coeff: weights[i]}
		}
		p.LP.AddConstraint(terms, lp.LE, capacity)

		var ref *Solution
		for _, workers := range []int{1, 2, 4, 8} {
			s, err := Solve(p, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if s.Status != StatusOptimal || !approx(-s.Objective, best, 1e-6) {
				t.Fatalf("trial %d workers %d: %v objective %g, brute force %g",
					trial, workers, s.Status, -s.Objective, best)
			}
			if ref == nil {
				ref = s
				continue
			}
			if !approx(s.Objective, ref.Objective, 1e-6) {
				t.Errorf("trial %d workers %d: objective %g, workers=1 gave %g",
					trial, workers, s.Objective, ref.Objective)
			}
			for i := range s.X {
				if !approx(s.X[i], ref.X[i], 1e-6) {
					t.Errorf("trial %d workers %d: X[%d]=%g, workers=1 gave %g",
						trial, workers, i, s.X[i], ref.X[i])
				}
			}
		}
	}
}

// TestWorkersDeterminismSchedule repeats the check on the time-expanded
// scheduling shape the exact sub-demand engine emits (equality rows and
// precedence couplings make the relaxations degenerate — the hard case
// for reproducibility).
func TestWorkersDeterminismSchedule(t *testing.T) {
	p := scheduleMILP(12, 4, 7)
	var ref *Solution
	for _, workers := range []int{1, 3, 8} {
		s, err := Solve(p, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if s.Status != StatusOptimal {
			t.Fatalf("workers %d: status %v", workers, s.Status)
		}
		if ref == nil {
			ref = s
			continue
		}
		if !approx(s.Objective, ref.Objective, 1e-6) {
			t.Errorf("workers %d: objective %g, workers=1 gave %g", workers, s.Objective, ref.Objective)
		}
		for i := range s.X {
			if !approx(s.X[i], ref.X[i], 1e-6) {
				t.Errorf("workers %d: X[%d]=%g, workers=1 gave %g", workers, i, s.X[i], ref.X[i])
			}
		}
	}
}

// TestNodeLimitStatusAndBound: hitting MaxNodes before the proof closes
// must report StatusFeasible (incumbent in hand) or StatusUnknown (none),
// never StatusOptimal, and the reported Bound must still be a valid lower
// bound on the true optimum.
func TestNodeLimitStatusAndBound(t *testing.T) {
	p, want := hardKnapsack(18, 54321)
	s, err := Solve(p, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	switch s.Status {
	case StatusFeasible:
		if s.Objective < want-1e-6 {
			t.Errorf("incumbent %g better than optimum %g", s.Objective, want)
		}
	case StatusUnknown:
		if s.X != nil {
			t.Errorf("unknown status carries a solution vector")
		}
	default:
		t.Fatalf("status %v under MaxNodes=3, want feasible or unknown", s.Status)
	}
	if s.Bound > want+1e-6 {
		t.Errorf("bound %g exceeds true optimum %g", s.Bound, want)
	}

	// With an incumbent seeded, a node limit must preserve it.
	inc := make([]float64, p.LP.NumVars())
	seeded, err := Solve(p, Options{MaxNodes: 1, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Status != StatusFeasible && seeded.Status != StatusOptimal {
		t.Fatalf("seeded status %v, want feasible", seeded.Status)
	}
	if seeded.Objective > 1e-6 {
		t.Errorf("seeded incumbent lost: objective %g, seed had 0", seeded.Objective)
	}
}
