package milp

import (
	"math"
	"testing"

	"syccl/internal/lp"
)

// benchLCG is a tiny deterministic generator so benchmark instances are
// identical across runs and machines.
type benchLCG struct{ s uint64 }

func (l *benchLCG) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}

func (l *benchLCG) intn(n int) int { return int(l.next() % uint64(n)) }

// hardKnapsack builds a strongly-correlated 0/1 knapsack: values track
// weights closely, so LP relaxations are tight and branch-and-bound must
// explore many nodes to prove optimality. Returns the problem and its
// optimum (computed by dynamic programming over the integral data).
func hardKnapsack(n int, seed uint64) (*Problem, float64) {
	g := &benchLCG{s: seed}
	p := NewProblem(n)
	weights := make([]int, n)
	values := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		w := 20 + g.intn(51)
		weights[i] = w
		values[i] = w + 5 + g.intn(5)
		total += w
	}
	capacity := total / 2
	row := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		p.SetBinary(i)
		p.LP.SetObjective(i, -float64(values[i])) // maximize value
		row[i] = lp.Term{Var: i, Coeff: float64(weights[i])}
	}
	p.LP.AddConstraint(row, lp.LE, float64(capacity))

	best := make([]float64, capacity+1)
	for i := 0; i < n; i++ {
		for c := capacity; c >= weights[i]; c-- {
			if v := best[c-weights[i]] + float64(values[i]); v > best[c] {
				best[c] = v
			}
		}
	}
	return p, -best[capacity]
}

// scheduleMILP mimics the shape of the time-expanded sub-demand encoding
// (internal/solve/exact.go): binary send decisions x[piece][epoch] with
// delivery equalities, per-epoch capacity rows, and precedence couplings.
func scheduleMILP(pieces, epochs int, seed uint64) *Problem {
	g := &benchLCG{s: seed}
	n := pieces * epochs
	p := NewProblem(n)
	idx := func(pc, t int) int { return pc*epochs + t }
	for i := 0; i < n; i++ {
		p.SetBinary(i)
	}
	// Each piece ships exactly once; later epochs cost more.
	for pc := 0; pc < pieces; pc++ {
		row := make([]lp.Term, epochs)
		for t := 0; t < epochs; t++ {
			row[t] = lp.Term{Var: idx(pc, t), Coeff: 1}
			p.LP.SetObjective(idx(pc, t), float64(t+1))
		}
		p.LP.AddConstraint(row, lp.EQ, 1)
	}
	// Capacity: bounded sends per epoch.
	capPerEpoch := (pieces + epochs - 1) / epochs
	for t := 0; t < epochs; t++ {
		row := make([]lp.Term, pieces)
		for pc := 0; pc < pieces; pc++ {
			row[pc] = lp.Term{Var: idx(pc, t), Coeff: 1}
		}
		p.LP.AddConstraint(row, lp.LE, float64(capPerEpoch))
	}
	// Precedence pairs: piece a ships no later than piece b.
	for k := 0; k < pieces/2; k++ {
		a, b := g.intn(pieces), g.intn(pieces)
		if a == b {
			continue
		}
		var row []lp.Term
		for t := 0; t < epochs; t++ {
			row = append(row, lp.Term{Var: idx(a, t), Coeff: float64(t)})
			row = append(row, lp.Term{Var: idx(b, t), Coeff: -float64(t)})
		}
		p.LP.AddConstraint(row, lp.LE, 0)
	}
	return p
}

// BenchmarkMILPKnapsack is the headline solver micro-benchmark: a
// branching-heavy knapsack solved to proved optimality.
func BenchmarkMILPKnapsack(b *testing.B) {
	p, want := hardKnapsack(22, 12345)
	var nodes, iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			b.Fatalf("objective %g != %g", sol.Objective, want)
		}
		nodes, iters = sol.Nodes, sol.LPIters
	}
	b.ReportMetric(float64(nodes), "milp.nodes")
	b.ReportMetric(float64(iters), "lp.pivots")
}

// BenchmarkMILPSchedule solves the time-expanded scheduling shape used by
// the exact sub-demand engine.
func BenchmarkMILPSchedule(b *testing.B) {
	p := scheduleMILP(14, 5, 99)
	var nodes, iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		nodes, iters = sol.Nodes, sol.LPIters
	}
	b.ReportMetric(float64(nodes), "milp.nodes")
	b.ReportMetric(float64(iters), "lp.pivots")
}
