package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/topology"
)

// InvalidatingTier is optionally implemented by a PersistTier that can
// drop stored entries whose keys match a set of prefixes (persist.Store
// implements it). Replan uses it to extend selective invalidation to the
// disk tier.
type InvalidatingTier interface {
	InvalidateMatching(prefixes []string) int
}

// ReplanResult carries a replanned schedule plus the fault-reactive
// bookkeeping: what the delta touched, what was invalidated, and how much
// of the new plan was replayed from cache.
type ReplanResult struct {
	*core.Result

	// Degraded is the topology after the delta; the Result's schedule is
	// valid on (and simulated against) this topology.
	Degraded *topology.Topology

	// TouchedGroups / TotalGroups count dimension groups of the base
	// topology whose membership or α/β the delta changed, over all groups.
	TouchedGroups int
	TotalGroups   int

	// Invalidated counts cache entries dropped across the memory and
	// persist tiers because their demand shape no longer exists anywhere
	// in the degraded fabric.
	Invalidated int

	// ReusedSubs counts sub-demands of the replanned schedule served
	// directly from the cross-request cache tiers; SolvedSubs counts
	// those that required a fresh solver call. Untouched groups reuse,
	// touched groups solve.
	ReusedSubs int
	SolvedSubs int
}

// ReuseRatio is the fraction of sub-demands replayed from cache, in
// [0, 1]; zero when the plan pooled no sub-demands.
func (r *ReplanResult) ReuseRatio() float64 {
	total := r.ReusedSubs + r.SolvedSubs
	if total == 0 {
		return 0
	}
	return float64(r.ReusedSubs) / float64(total)
}

// Replan is the fault-reactive fast path: apply a topology delta to a
// base topology, selectively invalidate the cache entries the delta made
// unreachable, and synthesize the collective on the degraded topology.
//
// Sub-demands are content-addressed by (group size, α, β, pieces), so
// groups the delta did not touch hash to their healthy keys and replay
// bit-identically from the engine's memory/persist tiers with zero
// solver calls; only the touched groups' new demand shapes reach the
// solver. Invalidation is a staleness policy, never a correctness
// requirement: an entry is dropped only when no group of the degraded
// topology can still produce its demand prefix (an entry shared with an
// untouched group — the common single-fault case — is kept, because the
// untouched groups still replay through it).
func (e *Engine) Replan(ctx context.Context, base *topology.Topology, delta *topology.Delta, col *collective.Collective, opts core.Options) (*ReplanResult, error) {
	e.replans.Add(1)
	e.count("engine.replans", 1)
	degraded, err := delta.Apply(base)
	if err != nil {
		e.replansErr.Add(1)
		e.mReplanError.Inc()
		return nil, fmt.Errorf("replan: %w", err)
	}

	touched, total, stale := diffGroups(base, degraded)
	invalidated := 0
	if len(stale) > 0 {
		invalidated = e.Invalidate(stale)
	}

	res, err := e.Plan(ctx, degraded, col, opts)
	rr := &ReplanResult{
		Result:        res,
		Degraded:      degraded,
		TouchedGroups: touched,
		TotalGroups:   total,
		Invalidated:   invalidated,
	}
	if res != nil {
		rr.ReusedSubs = res.Stats.CrossCacheHits
		rr.SolvedSubs = res.Stats.SolverCalls
	}

	e.replanReused.Add(int64(rr.ReusedSubs))
	e.replanInvalidated.Add(int64(invalidated))
	switch {
	case err != nil:
		e.replansErr.Add(1)
		e.mReplanError.Inc()
	case res != nil && res.Partial:
		e.mReplanPartial.Inc()
	default:
		e.mReplanOK.Inc()
	}
	if err != nil {
		return rr, err
	}
	e.mReplanReuse.Observe(rr.ReuseRatio())
	return rr, nil
}

// diffGroups compares the base and degraded topologies group by group.
// It returns the number of base groups the delta touched (membership or
// α/β changed, or the whole dimension collapsed), the total base group
// count, and the key prefixes — exact and iso — of touched demand shapes
// that no surviving group can still produce (the stale set to
// invalidate).
func diffGroups(base, degraded *topology.Topology) (touched, total int, stale []string) {
	type shape struct {
		n    int
		a, b float64
	}
	groupSig := func(d *topology.Dim, g int) string {
		var sb strings.Builder
		for _, gpu := range d.Groups[g] {
			fmt.Fprintf(&sb, "%d.", gpu)
		}
		fmt.Fprintf(&sb, "a%.17g,b%.17g", d.AlphaOf(g), d.BetaOf(g))
		return sb.String()
	}

	degByTier := make(map[int]*topology.Dim, degraded.NumDims())
	for _, d := range degraded.Dims {
		degByTier[d.Tier] = d
	}

	// Every demand shape the degraded fabric can still produce stays live.
	live := make(map[shape]bool)
	for _, d := range degraded.Dims {
		for g := range d.Groups {
			live[shape{len(d.Groups[g]), d.AlphaOf(g), d.BetaOf(g)}] = true
		}
	}

	staleShapes := make(map[shape]bool)
	for _, bd := range base.Dims {
		dd := degByTier[bd.Tier]
		degSigs := make(map[string]bool)
		if dd != nil {
			for g := range dd.Groups {
				degSigs[groupSig(dd, g)] = true
			}
		}
		for g := range bd.Groups {
			total++
			if dd != nil && degSigs[groupSig(bd, g)] {
				continue
			}
			touched++
			sh := shape{len(bd.Groups[g]), bd.AlphaOf(g), bd.BetaOf(g)}
			if !live[sh] {
				staleShapes[sh] = true
			}
		}
	}

	for sh := range staleShapes {
		// Prefixes of isomorph.ExactKey and isomorph.Key respectively;
		// cache keys are <demand key>|<solve signature>, so a prefix match
		// covers every signature variant.
		stale = append(stale,
			fmt.Sprintf("n%d;a%.9g;b%.9g;", sh.n, sh.a, sh.b),
			fmt.Sprintf("n%d;a%.6g;b%.6g;", sh.n, sh.a, sh.b),
		)
	}
	sort.Strings(stale)
	return touched, total, stale
}

// Invalidate drops every solve-cache and bound-cache entry (memory and,
// when the persist tier supports it, disk) whose exact or iso key starts
// with one of the prefixes. It returns the number of entries removed.
// Dropping entries never affects correctness — caches are
// content-addressed — only warm-start coverage.
func (e *Engine) Invalidate(prefixes []string) int {
	if len(prefixes) == 0 {
		return 0
	}
	matches := func(exactKey, isoKey string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(exactKey, p) || strings.HasPrefix(isoKey, p) {
				return true
			}
		}
		return false
	}

	removed := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		var victims []*solveEntry
		for _, ent := range s.byExact {
			if matches(ent.exactKey, ent.isoKey) {
				victims = append(victims, ent)
			}
		}
		for _, victim := range victims {
			s.lru.Remove(victim.elem)
			delete(s.byExact, victim.exactKey)
			bucket := s.byIso[victim.isoKey]
			for j, v := range bucket {
				if v == victim {
					bucket = append(bucket[:j], bucket[j+1:]...)
					break
				}
			}
			if len(bucket) == 0 {
				delete(s.byIso, victim.isoKey)
			} else {
				s.byIso[victim.isoKey] = bucket
			}
			removed++
		}
		s.mu.Unlock()
	}

	c := &e.bounds
	c.mu.Lock()
	var boundVictims []*boundEntry
	for _, ent := range c.byExact {
		if matches(ent.exactKey, ent.isoKey) {
			boundVictims = append(boundVictims, ent)
		}
	}
	for _, victim := range boundVictims {
		c.lru.Remove(victim.elem)
		delete(c.byExact, victim.exactKey)
		if c.byIso[victim.isoKey] == victim {
			delete(c.byIso, victim.isoKey)
		}
		removed++
	}
	c.mu.Unlock()

	if it, ok := e.opts.Persist.(InvalidatingTier); ok && e.opts.Persist != nil {
		removed += it.InvalidateMatching(prefixes)
	}
	return removed
}
