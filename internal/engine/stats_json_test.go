package engine

import (
	"encoding/json"
	"testing"
)

// TestStatsJSONGolden pins the exact /statsz shape of a zero-valued
// Stats: every counter present, explicitly zero, stable snake_case. A
// failure here means the serving API changed — adding fields is fine
// (update the golden), but renaming, retyping, or omitting a zero field
// breaks scrapers that delta successive snapshots. See the Stats doc
// comment for the contract.
func TestStatsJSONGolden(t *testing.T) {
	got, err := json.Marshal(Stats{})
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"plans":0,"cancelled":0,"solve_hits":0,"solve_misses":0,` +
		`"exact_hits":0,"iso_hits":0,"evictions":0,` +
		`"sketch_hits":0,"sketch_misses":0,` +
		`"bound_hits":0,"bound_misses":0,"bounds_pruned":0,"bounds_proved":0,` +
		`"persist_hits":0,"persist_misses":0,` +
		`"replans":0,"replan_reused":0,"replan_invalidated":0}`
	if string(got) != golden {
		t.Errorf("zero Stats JSON drifted:\n got: %s\nwant: %s", got, golden)
	}

	// Non-zero values round-trip field-for-field (no field shares a JSON
	// name with another).
	in := Stats{Plans: 1, Cancelled: 2, SolveHits: 3, SolveMisses: 4,
		ExactHits: 5, IsoHits: 6, Evictions: 7, SketchHits: 8, SketchMisses: 9,
		BoundHits: 10, BoundMisses: 11, BoundsPruned: 12, BoundsProved: 13,
		PersistHits: 14, PersistMisses: 15,
		Replans: 16, ReplanReused: 17, ReplanInvalidated: 18}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("Stats did not round-trip: %+v vs %+v", out, in)
	}
}
