package engine

import (
	"fmt"
	"hash/fnv"
	"strings"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/topology"
)

// PlanKey returns a canonical identity string for a Plan request: two
// requests with equal keys are guaranteed to produce byte-identical
// schedules on a warm engine, so the key is safe to use for request
// coalescing (internal/serve single-flights concurrent duplicates on it)
// and for addressing stored results.
//
// The key covers everything that influences the synthesized schedule:
// the topology fingerprint, the full collective demand (kind, shape,
// chunk size, root, and the exact chunk source/destination sets), and
// the solve-relevant options. Options.Workers and Options.MILPWorkers
// are deliberately excluded — schedules are byte-identical across worker
// counts (see Options.SolveTimeLimit) — as are the pure observability
// and cache-wiring fields (Obs, SolveCache, SketchCache, Sim ranking
// options are fixed by the caller, not the request).
//
// Callers that accept user-supplied options should normalize them (fill
// defaults) before keying: PlanKey hashes the literal field values, so
// E1=0 ("use the default") and E1=3.0 (the default, spelled out) produce
// different keys even though they run identically.
func PlanKey(top *topology.Topology, col *collective.Collective, opts core.Options) string {
	var sb strings.Builder
	sb.WriteString(top.Fingerprint())
	fmt.Fprintf(&sb, "|%s|n%d|s%.9g|root%d|red%t|c%016x",
		col.Kind, col.NumGPUs, col.ChunkSize, col.Root, col.Reduce, chunkDigest(col))
	fmt.Fprintf(&sb, "|e1=%.9g|e2=%.9g|r1=%.9g|r2=%d|mc=%d|seed=%d|eng=%d|tl=%d|2s=%t|iso=%t",
		opts.E1, opts.E2, opts.R1, opts.R2, opts.MaxCombos, opts.Seed,
		int(opts.Engine), int64(opts.SolveTimeLimit), opts.DisableTwoStep, opts.DisableIsomorphCache)
	// A sketch hint filters the candidate space and StopWithin can end
	// the pipeline at the coarse/fine boundary, so both are part of plan
	// identity. Appended only when set: unhinted keys keep their
	// historical format, so stored-schedule snapshots from older runs
	// stay addressable.
	if h := opts.Hint.Canonical(); h != "" {
		fmt.Fprintf(&sb, "|hint=%s", h)
	}
	if opts.StopWithin > 0 {
		fmt.Fprintf(&sb, "|sw=%.9g", opts.StopWithin)
	}
	return sb.String()
}

// chunkDigest hashes the collective's chunk structure (ID, source, and
// destination set per chunk) so demands that differ only in their F_s/F_d
// maps key differently without embedding the full chunk list.
func chunkDigest(col *collective.Collective) uint64 {
	h := fnv.New64a()
	for _, ch := range col.Chunks {
		fmt.Fprintf(h, "%d:%d:", ch.ID, ch.Src)
		for _, d := range ch.Dsts {
			fmt.Fprintf(h, "%d,", d)
		}
		h.Write([]byte{';'})
	}
	return h.Sum64()
}
