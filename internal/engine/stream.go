package engine

import (
	"context"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/topology"
)

// SynthesizeStream is Plan with a live incumbent stream: onIncumbent
// receives every improving, fully validated incumbent the pipeline
// publishes, in strictly decreasing Time order, and the returned Result
// is the final incumbent — byte-identical to what Plan returns for the
// same request, since publication never influences candidate selection.
//
// No final stream event is emitted: the return value IS the final
// incumbent (its Time is ≤ the last streamed one), so callers that relay
// the stream append their own terminal event from the Result. On a warm
// engine the pipeline replays from the caches in microseconds and the
// stream typically collapses to the winning incumbent alone; serving
// layers that cache whole results (the schedule store in internal/serve)
// short-circuit even that by emitting one immediate final event.
//
// onIncumbent runs on synthesis worker goroutines with a pipeline lock
// held: it must be fast and non-blocking (hand events to a channel or
// buffer, don't do I/O inline). A nil onIncumbent makes this exactly
// Plan. Anytime semantics carry over: a cancelled stream still returns
// the best validated incumbent with Result.Partial set, and every event
// already streamed remains valid.
func (e *Engine) SynthesizeStream(ctx context.Context, top *topology.Topology, col *collective.Collective, opts core.Options, onIncumbent func(core.Incumbent)) (*core.Result, error) {
	opts.OnIncumbent = onIncumbent
	return e.Plan(ctx, top, col, opts)
}
