package engine

import (
	"context"
	"math/rand"
	"testing"

	"syccl/internal/core"
	"syccl/internal/schedule"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

// randomChaosDelta draws a random viable fault: a mix of link kills and
// α/β degradations over the base topology's physical links. Deltas that
// disconnect a GPU (or hit the rare retry budget) fall back to a pure
// single-link degradation, which is always applicable.
func randomChaosDelta(rng *rand.Rand, base *topology.Topology) *topology.Delta {
	for attempt := 0; attempt < 32; attempt++ {
		d := &topology.Delta{}
		for i, ops := 0, 1+rng.Intn(2); i < ops; i++ {
			l := base.Links[rng.Intn(len(base.Links))]
			switch rng.Intn(3) {
			case 0:
				d.FailLinks = append(d.FailLinks, topology.LinkFail{A: l.Src, B: l.Dst})
			case 1:
				d.Degrade = append(d.Degrade, topology.LinkDegrade{
					A: l.Src, B: l.Dst, AlphaScale: 1, BetaScale: float64(2 + rng.Intn(7)),
				})
			default:
				d.Degrade = append(d.Degrade, topology.LinkDegrade{
					A: l.Src, B: l.Dst, AlphaScale: float64(2 + rng.Intn(4)), BetaScale: 1,
				})
			}
		}
		if _, err := d.Apply(base); err == nil {
			return d
		}
	}
	l := base.Links[rng.Intn(len(base.Links))]
	return &topology.Delta{Degrade: []topology.LinkDegrade{
		{A: l.Src, B: l.Dst, AlphaScale: 2, BetaScale: 2},
	}}
}

// assertNoRemovedLinks fails the test if any transfer of the schedule
// cannot be physically routed over the SURVIVING links of the degraded
// topology within its dimension's fabric (tier 0: GPU+NVSwitch nodes;
// tier t: GPU, NIC, and switches up to tier t). This is the direct
// physical statement behind "never routes over a removed link": the
// schedule's connectivity must be witnessed by live links alone.
func assertNoRemovedLinks(t *testing.T, deg *topology.Topology, s *schedule.Schedule) {
	t.Helper()
	adj := make([][]int, len(deg.Nodes))
	for _, l := range deg.Links {
		adj[l.Src] = append(adj[l.Src], l.Dst)
	}
	allowed := func(tier int, k topology.NodeKind) bool {
		if tier == 0 {
			return k == topology.KindGPU || k == topology.KindNVSwitch
		}
		switch k {
		case topology.KindGPU, topology.KindNIC:
			return true
		case topology.KindNVSwitch:
			return false
		case topology.KindLeafSwitch:
			return tier >= 1
		case topology.KindSpineSwitch:
			return tier >= 2
		default: // core
			return tier >= 3
		}
	}
	seen := make([]int, len(deg.Nodes)) // visit epoch, avoids reallocs
	epoch := 0
	reach := func(tier, src, dst int) bool {
		epoch++
		queue := []int{src}
		seen[src] = epoch
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n == dst {
				return true
			}
			for _, m := range adj[n] {
				if seen[m] != epoch && allowed(tier, deg.Nodes[m].Kind) {
					seen[m] = epoch
					queue = append(queue, m)
				}
			}
		}
		return false
	}
	for i, tr := range s.Transfers {
		if tr.Dim < 0 || tr.Dim >= deg.NumDims() {
			t.Fatalf("transfer %d references dimension %d of %d", i, tr.Dim, deg.NumDims())
		}
		if !deg.SameGroup(tr.Dim, tr.Src, tr.Dst) {
			t.Fatalf("transfer %d (%d→%d, dim %d) crosses groups of the degraded topology",
				i, tr.Src, tr.Dst, tr.Dim)
		}
		if !reach(deg.Dims[tr.Dim].Tier, tr.Src, tr.Dst) {
			t.Fatalf("transfer %d (%d→%d, dim %d, tier %d) has no surviving physical path: routes over a removed link",
				i, tr.Src, tr.Dst, tr.Dim, deg.Dims[tr.Dim].Tier)
		}
	}
}

// TestChaosReplan is the fault-injection harness: random topologies ×
// random link-kill / degradation deltas × all nine collectives, each
// replanned through the engine and held to the chunk-replay oracle on
// the degraded topology plus the no-removed-link routing check.
func TestChaosReplan(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	rng := rand.New(rand.NewSource(0x5cc1))
	opts := core.Options{Workers: 4}

	for trial := 0; trial < trials; trial++ {
		base := verify.RandomTopology(rng)
		delta := randomChaosDelta(rng, base)
		degraded, err := delta.Apply(base)
		if err != nil {
			t.Fatalf("trial %d: viable delta %q failed to apply: %v", trial, delta, err)
		}
		t.Logf("trial %d: %s + %q (%d GPUs)", trial, base.Name, delta, base.NumGPUs())

		eng := New(Options{})
		for _, kind := range verify.AllKinds {
			col := verify.RandomCollective(rng, kind, base.NumGPUs())
			rr, err := eng.Replan(context.Background(), base, delta, col, opts)
			if err != nil {
				t.Fatalf("trial %d %v: replan: %v", trial, kind, err)
			}
			if rr.Partial {
				t.Fatalf("trial %d %v: replan returned a partial result", trial, kind)
			}
			if err := verify.CheckSchedule(col, rr.Schedule); err != nil {
				t.Errorf("trial %d %v on %s+%q: oracle rejects replanned schedule: %v",
					trial, kind, base.Name, delta, err)
			}
			assertNoRemovedLinks(t, degraded, rr.Schedule)
		}
	}
}
