package engine

import (
	"context"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/topology"
)

// benchCase is the workload both benchmarks share, so warm-vs-cold is an
// apples-to-apples comparison of cache effect alone.
func benchCase() (*topology.Topology, *collective.Collective, core.Options) {
	top := topology.H800Small(2)
	return top, collective.AllGather(top.NumGPUs(), 1<<20), core.Options{}
}

// BenchmarkEngineColdPlan measures a full pipeline run: a fresh engine
// every iteration, so nothing is ever cached.
func BenchmarkEngineColdPlan(b *testing.B) {
	top, col, opts := benchCase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(Options{}).Plan(context.Background(), top, col, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarmPlan measures a cache-served run: one shared engine,
// pre-warmed before the timer starts.
func BenchmarkEngineWarmPlan(b *testing.B) {
	top, col, opts := benchCase()
	eng := New(Options{})
	if _, err := eng.Plan(context.Background(), top, col, opts); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Plan(context.Background(), top, col, opts); err != nil {
		b.Fatal(err) // second pass reaches the warm fixed point
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Plan(context.Background(), top, col, opts); err != nil {
			b.Fatal(err)
		}
	}
}
