package engine

import (
	"context"
	"reflect"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/persist"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

// nvSwitchOf returns the node ID of server s's NVSwitch.
func nvSwitchOf(t *testing.T, top *topology.Topology, server int) int {
	t.Helper()
	for _, nd := range top.Nodes {
		if nd.Kind == topology.KindNVSwitch && nd.Server == server {
			return nd.ID
		}
	}
	t.Fatalf("no NVSwitch for server %d in %s", server, top.Name)
	return -1
}

func mustParseDelta(t *testing.T, spec string) *topology.Delta {
	t.Helper()
	d, err := topology.ParseDelta(spec)
	if err != nil {
		t.Fatalf("ParseDelta(%q): %v", spec, err)
	}
	return d
}

// TestReplanDifferential is the differential contract of the tentpole:
// Replan(base, delta) on a warm engine must be bit-identical to a cold
// Plan on the pre-applied degraded topology, while reusing at least half
// of the sub-schedules from cache — with zero solver calls for the
// untouched groups — and the result must pass the chunk-replay oracle.
func TestReplanDifferential(t *testing.T) {
	base := topology.H800Small(4) // 4 servers × 4 GPUs: 4+4 groups over 2 dims
	col := collective.AllGather(base.NumGPUs(), 1<<20)
	nv0 := nvSwitchOf(t, base, 0)
	delta := mustParseDelta(t, "slow:0-"+itoa(nv0)+"*4")

	// Cold reference: a fresh engine planning directly on the degraded
	// topology.
	degraded, err := delta.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := New(Options{})
	cold, err := coldEng.Plan(context.Background(), degraded, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.SolverCalls == 0 {
		t.Fatal("cold degraded plan executed no solver calls; test cannot discriminate")
	}

	// Warm path: plan on the healthy base first, then replan with the delta.
	eng := New(Options{})
	if _, err := eng.Plan(context.Background(), base, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	rr, err := eng.Replan(context.Background(), base, delta, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}

	if rr.Degraded.Fingerprint() != degraded.Fingerprint() {
		t.Fatalf("replan degraded fingerprint mismatch:\n got %s\nwant %s", rr.Degraded.Fingerprint(), degraded.Fingerprint())
	}
	if rr.Time != cold.Time {
		t.Fatalf("replan time %v != cold degraded time %v", rr.Time, cold.Time)
	}
	if !reflect.DeepEqual(rr.Schedule, cold.Schedule) {
		t.Fatal("replanned schedule differs from cold synthesis on the pre-applied degraded topology")
	}
	if err := verify.CheckSchedule(col, rr.Schedule); err != nil {
		t.Fatalf("replanned schedule fails the chunk-replay oracle: %v", err)
	}

	// Cache-reuse contract: the delta touched 1 of 8 groups, so at least
	// half the sub-schedules replay from cache and only the touched
	// group's new demand shapes reach the solver.
	if rr.TouchedGroups != 1 || rr.TotalGroups != 8 {
		t.Errorf("touched %d/%d groups, want 1/8", rr.TouchedGroups, rr.TotalGroups)
	}
	if rr.ReusedSubs == 0 {
		t.Fatal("replan reused nothing from cache")
	}
	if ratio := rr.ReuseRatio(); ratio < 0.5 {
		t.Errorf("replan reuse ratio %.2f < 0.5 (reused %d, solved %d)", ratio, rr.ReusedSubs, rr.SolvedSubs)
	}
	if rr.SolvedSubs >= cold.Stats.SolverCalls {
		t.Errorf("replan solved %d sub-demands, cold run solved %d — untouched groups were re-solved",
			rr.SolvedSubs, cold.Stats.SolverCalls)
	}
	st := eng.Stats()
	if st.Replans != 1 {
		t.Errorf("Stats.Replans = %d, want 1", st.Replans)
	}
	if st.ReplanReused == 0 {
		t.Error("Stats.ReplanReused = 0, want > 0")
	}
	// The healthy group shape still exists (3 untouched NVSwitch groups),
	// so nothing may be invalidated.
	if rr.Invalidated != 0 || st.ReplanInvalidated != 0 {
		t.Errorf("invalidated %d entries though the healthy shape survives", rr.Invalidated)
	}
}

// TestReplanLinkKillDifferential runs the same differential on a
// structural delta: killing a rail uplink reshapes the rail partition
// (orphaning one GPU on that rail) rather than just re-costing a group.
func TestReplanLinkKillDifferential(t *testing.T) {
	base := topology.H800Small(4)
	col := collective.AllGather(base.NumGPUs(), 1<<18)

	// GPU 0's NIC and its uplink to the rail-0 leaf.
	nic := -1
	for _, l := range base.Links {
		if l.Src == 0 && base.Nodes[l.Dst].Kind == topology.KindNIC {
			nic = l.Dst
			break
		}
	}
	leaf := -1
	for _, l := range base.Links {
		if l.Src == nic && base.Nodes[l.Dst].Kind == topology.KindLeafSwitch {
			leaf = l.Dst
			break
		}
	}
	if nic < 0 || leaf < 0 {
		t.Fatal("could not locate GPU 0's rail uplink")
	}
	delta := mustParseDelta(t, "kill:"+itoa(nic)+"-"+itoa(leaf))

	degraded, err := delta.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := New(Options{})
	cold, err := coldEng.Plan(context.Background(), degraded, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}

	eng := New(Options{})
	if _, err := eng.Plan(context.Background(), base, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	rr, err := eng.Replan(context.Background(), base, delta, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr.Schedule, cold.Schedule) {
		t.Fatal("replanned schedule differs from cold synthesis on the degraded topology")
	}
	if err := verify.CheckSchedule(col, rr.Schedule); err != nil {
		t.Fatalf("replanned schedule fails the oracle: %v", err)
	}
	if rr.ReusedSubs == 0 {
		t.Error("structural replan reused nothing; untouched dim-0 groups should replay")
	}
	// A single killed link touches 1 of 8 groups; the warm replan must
	// reuse at least half the sub-schedules.
	if ratio := rr.ReuseRatio(); ratio < 0.5 {
		t.Errorf("link-kill replan reuse ratio %.2f < 0.5 (reused %d, solved %d)",
			ratio, rr.ReusedSubs, rr.SolvedSubs)
	}
}

// TestReplanInvalidatesUnreachableShapes exercises selective
// invalidation across both tiers: when a delta degrades the only group
// of a shape, the healthy entries become unreachable and must be dropped
// from the memory LRU and the persist tier.
func TestReplanInvalidatesUnreachableShapes(t *testing.T) {
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Persist: store})
	base := topology.SingleServer(8) // one dim, one group: no shape sharing
	col := collective.AllGather(base.NumGPUs(), 1<<20)

	if _, err := eng.Plan(context.Background(), base, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("warm plan wrote nothing to the persist tier")
	}

	nv := nvSwitchOf(t, base, 0)
	rr, err := eng.Replan(context.Background(), base, mustParseDelta(t, "slow:0-"+itoa(nv)+"*8"), col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rr.TouchedGroups != 1 || rr.TotalGroups != 1 {
		t.Errorf("touched %d/%d groups, want 1/1", rr.TouchedGroups, rr.TotalGroups)
	}
	if rr.Invalidated == 0 {
		t.Fatal("no entries invalidated though the healthy shape vanished")
	}
	// The replan writes the freshly solved degraded entries through to
	// disk, so Len() alone can't witness the drop; instead re-sweep the
	// stale prefixes directly — the replan must already have removed
	// every healthy-keyed entry from the persist tier.
	_, _, stale := diffGroups(base, rr.Degraded)
	if len(stale) == 0 {
		t.Fatal("diffGroups produced no stale prefixes")
	}
	if left := store.InvalidateMatching(stale); left != 0 {
		t.Errorf("persist tier still held %d stale healthy entries after replan", left)
	}
	if eng.Stats().ReplanInvalidated == 0 {
		t.Error("Stats.ReplanInvalidated = 0")
	}
	if err := verify.CheckSchedule(col, rr.Schedule); err != nil {
		t.Fatalf("replanned schedule invalid: %v", err)
	}

	// The degraded shape must not alias the healthy one: a subsequent
	// replan of the same delta replays the degraded entries warm.
	rr2, err := eng.Replan(context.Background(), base, mustParseDelta(t, "slow:0-"+itoa(nv)+"*8"), col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rr2.SolvedSubs != 0 {
		t.Errorf("repeat replan executed %d solver calls, want 0", rr2.SolvedSubs)
	}
	if !reflect.DeepEqual(rr2.Schedule, rr.Schedule) {
		t.Error("repeat replan is not bit-identical")
	}
}

// TestReplanRejectsBadDelta pins the error path: a delta that
// disconnects a GPU fails without planning, and is counted.
func TestReplanRejectsBadDelta(t *testing.T) {
	eng := New(Options{})
	base := topology.SingleServer(4)
	col := collective.AllGather(base.NumGPUs(), 1<<16)
	nv := nvSwitchOf(t, base, 0)
	_, err := eng.Replan(context.Background(), base, mustParseDelta(t, "kill:0-"+itoa(nv)), col, quickOpts())
	if err == nil {
		t.Fatal("disconnecting delta accepted")
	}
	st := eng.Stats()
	if st.Replans != 1 {
		t.Errorf("Stats.Replans = %d, want 1", st.Replans)
	}
	if st.Plans != 0 {
		t.Errorf("failed replan ran a plan: Plans = %d", st.Plans)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
