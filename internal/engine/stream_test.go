package engine

import (
	"context"
	"reflect"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/sketch"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

// TestSynthesizeStreamInvariants is the stream contract at the engine
// layer: every streamed incumbent is valid and strictly improving, and
// the returned result — the final incumbent — is byte-identical to a
// plain Plan of the same request on a fresh engine.
func TestSynthesizeStreamInvariants(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)

	var events []core.Incumbent
	streamed, err := New(Options{}).SynthesizeStream(context.Background(), top, col, quickOpts(),
		func(inc core.Incumbent) { events = append(events, inc) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("stream emitted no incumbents")
	}
	prev := 0.0
	for i, inc := range events {
		if inc.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, inc.Seq)
		}
		if i > 0 && inc.Time >= prev {
			t.Errorf("stream not strictly improving: event %d time %v after %v", i, inc.Time, prev)
		}
		prev = inc.Time
		if err := verify.CheckSchedule(col, inc.Schedule); err != nil {
			t.Errorf("streamed incumbent %d invalid: %v", i, err)
		}
		if inc.Source == "" {
			t.Errorf("event %d has no source", i)
		}
	}
	if streamed.Time > prev {
		t.Errorf("final result time %v worse than last streamed incumbent %v", streamed.Time, prev)
	}

	plain, err := New(Options{}).Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Time != plain.Time || !reflect.DeepEqual(streamed.Schedule, plain.Schedule) {
		t.Fatal("streamed final result differs from plain Plan")
	}
}

// A hinted plan must never be served from unhinted cache entries (or
// vice versa): the hint is part of the solve/sketch signatures, so the
// memory tier shows no hits and the plan re-solves.
func TestHintedPlanDistinctMemoryKeys(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	eng := New(Options{})

	if _, err := eng.Plan(context.Background(), top, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()

	hinted := quickOpts()
	hinted.Hint = &sketch.Hint{Family: sketch.FamilyTree}
	if PlanKey(top, col, hinted) == PlanKey(top, col, quickOpts()) {
		t.Fatal("hinted and unhinted requests share a PlanKey")
	}
	res, err := eng.Plan(context.Background(), top, col, hinted)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SolveHits != before.SolveHits || st.SketchHits != before.SketchHits {
		t.Fatalf("hinted plan was served from unhinted entries: before %+v, after %+v", before, st)
	}
	if res.Stats.SolverCalls == 0 {
		t.Fatal("hinted plan made no solver calls; separation test is vacuous")
	}
	if err := verify.CheckSchedule(col, res.Schedule); err != nil {
		t.Fatalf("hinted schedule invalid: %v", err)
	}

	// The hinted entries are themselves cached: an identical hinted
	// re-plan replays warm.
	again, err := eng.Plan(context.Background(), top, col, hinted)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.SolverCalls != 0 {
		t.Fatalf("warm hinted plan executed %d solver calls", again.Stats.SolverCalls)
	}
	if !reflect.DeepEqual(again.Schedule, res.Schedule) {
		t.Fatal("warm hinted schedule differs from cold hinted schedule")
	}
}

// The separation holds across the persist tier too: an unhinted corpus
// on disk serves nothing to a hinted plan after a reboot.
func TestHintedPlanDistinctPersistKeys(t *testing.T) {
	dir := t.TempDir()
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)

	engA := New(Options{Persist: openPersist(t, dir)})
	if _, err := engA.Plan(context.Background(), top, col, quickOpts()); err != nil {
		t.Fatal(err)
	}

	engB := New(Options{Persist: openPersist(t, dir)})
	hinted := quickOpts()
	hinted.Hint = &sketch.Hint{Family: sketch.FamilyTree}
	res, err := engB.Plan(context.Background(), top, col, hinted)
	if err != nil {
		t.Fatal(err)
	}
	if st := engB.Stats(); st.PersistHits != 0 {
		t.Fatalf("hinted plan hit the unhinted persist corpus: %+v", st)
	}
	if res.Stats.SolverCalls == 0 {
		t.Fatal("hinted plan made no solver calls; separation test is vacuous")
	}
}
