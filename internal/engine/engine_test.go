package engine

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

// quickOpts keeps the pipeline deterministic and fast for tests.
func quickOpts() core.Options {
	return core.Options{Workers: 1}
}

// TestWarmPlanBitIdentical is the cache-correctness contract: a second,
// identical Plan on the same engine must be served from the caches
// (hits > 0, zero solver calls) and return a bit-identical schedule.
func TestWarmPlanBitIdentical(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	eng := New(Options{})

	cold, err := eng.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	coldStats := eng.Stats()
	if coldStats.SolveHits != 0 {
		t.Fatalf("cold plan reported %d cache hits", coldStats.SolveHits)
	}

	warm, err := eng.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Plans != 2 {
		t.Fatalf("Plans = %d, want 2", st.Plans)
	}
	if st.SolveHits == 0 || st.ExactHits == 0 {
		t.Fatalf("warm plan hit nothing: %+v", st)
	}
	if st.SketchHits == 0 {
		t.Fatalf("warm plan re-ran the sketch search: %+v", st)
	}
	if warm.Stats.SolverCalls != 0 {
		t.Fatalf("warm plan executed %d solver calls", warm.Stats.SolverCalls)
	}
	if warm.Time != cold.Time {
		t.Fatalf("warm time %v != cold time %v", warm.Time, cold.Time)
	}
	if !reflect.DeepEqual(warm.Schedule, cold.Schedule) {
		t.Fatal("warm schedule differs from cold schedule")
	}
	if err := verify.CheckSchedule(col, warm.Schedule); err != nil {
		t.Fatalf("warm schedule invalid: %v", err)
	}
}

// TestIsomorphicRequestServedFromCache plans Broadcast from root 0, then
// from root 1 on a GPU-transitive topology: the second request's
// sub-demands are isomorphic (but relabeled), so they must be served
// through the iso-fallback path and still yield a valid schedule.
func TestIsomorphicRequestServedFromCache(t *testing.T) {
	top := topology.SingleServer(8)
	eng := New(Options{})

	col0 := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
	if _, err := eng.Plan(context.Background(), top, col0, quickOpts()); err != nil {
		t.Fatal(err)
	}

	col1 := collective.Broadcast(top.NumGPUs(), 1, 1<<20)
	res, err := eng.Plan(context.Background(), top, col1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SolveHits == 0 {
		t.Fatalf("isomorphic request missed the cache entirely: %+v", st)
	}
	if err := verify.CheckSchedule(col1, res.Schedule); err != nil {
		t.Fatalf("iso-served schedule invalid: %v", err)
	}
}

// TestPlanCancelledBeforeStart: a context cancelled before Plan begins
// must fail fast with ctx.Err and count as cancelled.
func TestPlanCancelledBeforeStart(t *testing.T) {
	top := topology.SingleServer(4)
	col := collective.AllGather(top.NumGPUs(), 1<<16)
	eng := New(Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := eng.Plan(ctx, top, col, quickOpts())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled plan returned a result: %+v", res)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled plan took %v", d)
	}
	if st := eng.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// countdownCtx reports Canceled after its Err budget is spent. It makes
// mid-pipeline cancellation deterministic: with Workers=1 the pipeline
// polls Err in a fixed order, so each budget lands the cancellation at a
// reproducible point (mid-search, mid-coarse, or mid-fine depending on
// the budget).
type countdownCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int
	done      chan struct{}
}

func newCountdownCtx(budget int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), remaining: budget, done: make(chan struct{})}
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// TestPlanAnytimeInvariant sweeps the cancellation point across the
// pipeline (budget 0 cancels at entry; large budgets cancel mid-search,
// mid-coarse, mid-fine, or never) and checks the anytime contract at
// every point: either ctx.Err with no result, or a complete schedule that
// passes the oracle — flagged Partial whenever the run was cut short.
func TestPlanAnytimeInvariant(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)

	full, err := New(Options{}).Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("uncancelled plan flagged Partial")
	}

	sawPartial := false
	for _, budget := range []int{0, 1, 5, 20, 100, 500, 2000, 10000, 1 << 30} {
		eng := New(Options{})
		ctx := newCountdownCtx(budget)
		res, err := eng.Plan(ctx, top, col, quickOpts())
		switch {
		case err != nil:
			if err != context.Canceled {
				t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
			}
			if res != nil {
				t.Fatalf("budget %d: error with non-nil result", budget)
			}
		case res.Partial:
			sawPartial = true
			if err := verify.CheckSchedule(col, res.Schedule); err != nil {
				t.Fatalf("budget %d: partial schedule invalid: %v", budget, err)
			}
			if res.Time <= 0 {
				t.Fatalf("budget %d: partial result missing a simulated time", budget)
			}
		default:
			if err := verify.CheckSchedule(col, res.Schedule); err != nil {
				t.Fatalf("budget %d: schedule invalid: %v", budget, err)
			}
			if res.Time != full.Time {
				t.Fatalf("budget %d: complete run diverged: time %v != %v", budget, res.Time, full.Time)
			}
		}
	}
	if !sawPartial {
		t.Log("no budget produced a Partial result (pipeline may have shifted); anytime path untested by this sweep")
	}
}

// TestCancelledPlanDoesNotPoisonCache: after a cancelled plan, a fresh
// full plan on the same engine must match an engine that never saw the
// cancellation — truncated solves must not have been stored.
func TestCancelledPlanDoesNotPoisonCache(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)

	clean, err := New(Options{}).Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}

	eng := New(Options{})
	for _, budget := range []int{3, 30, 300} {
		eng.Plan(newCountdownCtx(budget), top, col, quickOpts()) //nolint:errcheck — any outcome is fine
	}
	res, err := eng.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("uncancelled plan flagged Partial")
	}
	if res.Time != clean.Time || !reflect.DeepEqual(res.Schedule, clean.Schedule) {
		t.Fatal("plan after cancelled plans diverged from a clean engine: cache was poisoned")
	}
}

// TestPlanCancellationGoroutineGrace: cancelled plans must not leak
// worker goroutines past a bounded grace period.
func TestPlanCancellationGoroutineGrace(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	eng := New(Options{})

	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		eng.Plan(ctx, top, col, core.Options{Workers: 4}) //nolint:errcheck — outcome irrelevant
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after grace period", before, runtime.NumGoroutine())
}

// TestSolveCacheEviction: a tiny cache must evict (and count it) without
// corrupting results.
func TestSolveCacheEviction(t *testing.T) {
	top := topology.SingleServer(8)
	eng := New(Options{SolveCacheEntries: 2, Shards: 1, SketchCacheEntries: 1})

	for _, size := range []float64{1 << 10, 1 << 14, 1 << 18, 1 << 20} {
		col := collective.AllGather(top.NumGPUs(), size)
		res, err := eng.Plan(context.Background(), top, col, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckSchedule(col, res.Schedule); err != nil {
			t.Fatalf("size %g: %v", size, err)
		}
	}
	if st := eng.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions with a 2-entry cache across 4 distinct plans: %+v", st)
	}
}

// TestConcurrentPlans hammers one engine from many goroutines over a mix
// of repeated and distinct requests. Run under -race in CI.
func TestConcurrentPlans(t *testing.T) {
	top := topology.SingleServer(8)
	eng := New(Options{SolveCacheEntries: 8, Shards: 2})
	cols := []*collective.Collective{
		collective.AllGather(top.NumGPUs(), 1<<16),
		collective.Broadcast(top.NumGPUs(), 0, 1<<16),
		collective.Broadcast(top.NumGPUs(), 3, 1<<16),
		collective.AllGather(top.NumGPUs(), 1<<18),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		col := cols[i%len(cols)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.Plan(context.Background(), top, col, core.Options{Workers: 2})
			if err != nil {
				errs <- err
				return
			}
			if err := verify.CheckSchedule(col, res.Schedule); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Plans != 16 {
		t.Fatalf("Plans = %d, want 16", st.Plans)
	}
}

// TestBoundCacheWarmHits: a broadcast plan computes candidate flow bounds
// cold; an identical re-plan must serve every bound from the engine's
// bound cache, and an isomorphic request (different root on a transitive
// topology) must hit through the iso key.
func TestBoundCacheWarmHits(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
	eng := New(Options{})

	cold, err := eng.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.BoundsComputed == 0 {
		t.Skipf("no candidate bounds on this shape: %+v", cold.Stats)
	}
	st := eng.Stats()
	if st.BoundMisses == 0 {
		t.Fatalf("cold plan recorded no bound misses: %+v", st)
	}
	coldMisses := st.BoundMisses

	if _, err := eng.Plan(context.Background(), top, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.BoundHits == 0 {
		t.Fatalf("warm plan hit no cached bounds: %+v", st)
	}
	if st.BoundMisses != coldMisses {
		t.Fatalf("warm plan missed bounds: %d -> %d", coldMisses, st.BoundMisses)
	}

	// Different root, same structure: bounds are isomorphism-invariant.
	col1 := collective.Broadcast(top.NumGPUs(), 1, 1<<20)
	if _, err := eng.Plan(context.Background(), top, col1, quickOpts()); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.BoundHits <= coldMisses {
		t.Logf("iso request served %d bound hits (cold misses %d)", st.BoundHits, coldMisses)
	}
}

// TestBoundCacheEviction: the bound LRU respects its entry cap.
func TestBoundCacheEviction(t *testing.T) {
	eng := New(Options{BoundCacheEntries: 2})
	top := topology.A100Clos(2)
	for _, size := range []float64{1 << 18, 1 << 19, 1 << 20, 1 << 21} {
		col := collective.Broadcast(top.NumGPUs(), 0, size)
		if _, err := eng.Plan(context.Background(), top, col, quickOpts()); err != nil {
			t.Fatal(err)
		}
	}
	eng.bounds.mu.Lock()
	n := len(eng.bounds.byExact)
	eng.bounds.mu.Unlock()
	if n > 2 {
		t.Fatalf("bound cache holds %d entries, cap 2", n)
	}
}
