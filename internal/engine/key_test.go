package engine

import (
	"testing"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/topology"
)

// TestPlanKeyCoalescingContract pins what PlanKey must and must not
// distinguish: worker counts coalesce (schedules are byte-identical
// across them), while anything that changes the synthesized schedule —
// topology shape, demand, seed, epoch knobs — must split the key.
func TestPlanKeyCoalescingContract(t *testing.T) {
	top := topology.SingleServer(4)
	col := collective.AllGather(4, 1<<20)
	base := core.Options{E1: 3.0, E2: 0.5, Workers: 1}

	key := PlanKey(top, col, base)
	if key == "" {
		t.Fatal("empty key")
	}

	// Same request, rebuilt values: identical key.
	if k := PlanKey(topology.SingleServer(4), collective.AllGather(4, 1<<20), base); k != key {
		t.Fatalf("rebuilt request keyed differently:\n%s\n%s", key, k)
	}

	// Worker counts are excluded: they never change the schedule.
	w8 := base
	w8.Workers = 8
	w8.MILPWorkers = 4
	if k := PlanKey(top, col, w8); k != key {
		t.Fatal("Workers/MILPWorkers changed the key")
	}

	// Everything schedule-relevant must split the key.
	diff := map[string]string{
		"topology": PlanKey(topology.SingleServer(8), collective.AllGather(8, 1<<20), base),
		"kind":     PlanKey(top, collective.ReduceScatter(4, 1<<20), base),
		"size":     PlanKey(top, collective.AllGather(4, 1<<21), base),
		"root":     PlanKey(top, collective.Broadcast(4, 1, 1<<20), base),
	}
	seedOpts := base
	seedOpts.Seed = 7
	diff["seed"] = PlanKey(top, col, seedOpts)
	e1Opts := base
	e1Opts.E1 = 2.0
	diff["e1"] = PlanKey(top, col, e1Opts)
	seen := map[string]string{key: "base"}
	for what, k := range diff {
		if prev, ok := seen[k]; ok {
			t.Fatalf("%s collides with %s: %s", what, prev, k)
		}
		seen[k] = what
	}

	// Two Broadcasts from different roots differ only in the chunk maps:
	// the digest must separate them.
	b0 := PlanKey(top, collective.Broadcast(4, 0, 1<<20), base)
	b1 := PlanKey(top, collective.Broadcast(4, 1, 1<<20), base)
	if b0 == b1 {
		t.Fatal("chunk digest missed a root change")
	}
}
