package engine

// Tests for the disk tier behind the solve cache: a fresh engine on a
// reopened persist store must replay previously synthesized plans
// bit-identically with zero solver calls, and a corrupted corpus must
// degrade to cold synthesis — never to a bad schedule.

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/persist"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

// The concrete store must satisfy the engine's tier interface.
var _ PersistTier = (*persist.Store)(nil)

func openPersist(t *testing.T, dir string) *persist.Store {
	t.Helper()
	s, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// subFiles lists the committed entry files under a persist directory.
func subFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), ".sub") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEnginePersistWarmBoot is the restart contract: engine A solves a
// plan cold and writes through to disk; a brand-new engine B — empty
// LRUs, fresh store handle on the same directory — must produce the
// bit-identical schedule with zero solver calls, served entirely from
// the persist tier.
func TestEnginePersistWarmBoot(t *testing.T) {
	dir := t.TempDir()
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)

	engA := New(Options{Persist: openPersist(t, dir)})
	cold, err := engA.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.SolverCalls == 0 {
		t.Fatal("cold plan made no solver calls; test is vacuous")
	}
	if len(subFiles(t, dir)) == 0 {
		t.Fatal("cold plan wrote nothing through to disk")
	}

	// "Reboot": new store handle, new engine, no shared memory.
	storeB := openPersist(t, dir)
	engB := New(Options{Persist: storeB})
	warm, err := engB.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.SolverCalls != 0 {
		t.Fatalf("warm-boot plan executed %d solver calls", warm.Stats.SolverCalls)
	}
	st := engB.Stats()
	if st.PersistHits == 0 {
		t.Fatalf("warm-boot plan never hit the disk tier: %+v", st)
	}
	if warm.Time != cold.Time {
		t.Fatalf("warm time %v != cold time %v", warm.Time, cold.Time)
	}
	if !reflect.DeepEqual(warm.Schedule, cold.Schedule) {
		t.Fatal("warm-boot schedule differs from cold schedule")
	}
	if err := verify.CheckSchedule(col, warm.Schedule); err != nil {
		t.Fatalf("warm-boot schedule invalid: %v", err)
	}
	// Promotion on persist hit must not write back: everything engB read
	// was already on disk, so no duplicate stores may reach the store.
	if ps := storeB.Stats(); ps.Stores != 0 {
		t.Fatalf("warm boot wrote %d entries back to disk (%+v)", ps.Stores, ps)
	}
}

// After the memory tier is warm, repeat plans must not touch the disk
// tier at all — the persist counters stay flat.
func TestPersistNotConsultedOnMemoryHit(t *testing.T) {
	dir := t.TempDir()
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)
	eng := New(Options{Persist: openPersist(t, dir)})

	if _, err := eng.Plan(context.Background(), top, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	afterCold := eng.Stats()
	if _, err := eng.Plan(context.Background(), top, col, quickOpts()); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.PersistHits != afterCold.PersistHits || st.PersistMisses != afterCold.PersistMisses {
		t.Fatalf("memory-warm plan consulted the disk tier: before %+v, after %+v", afterCold, st)
	}
	if st.SolveHits == afterCold.SolveHits {
		t.Fatalf("memory-warm plan missed the LRU: %+v", st)
	}
}

// TestEnginePersistCorruptFallsBack flips a byte in every on-disk entry
// between boots: the rebooted engine must fall back to cold synthesis
// (solver calls again), the result must still pass the chunk-replay
// oracle, and the damage must be counted — never served.
func TestEnginePersistCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	top := topology.H800Small(2)
	col := collective.AllGather(top.NumGPUs(), 1<<20)

	engA := New(Options{Persist: openPersist(t, dir)})
	cold, err := engA.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	files := subFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no entries written")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x5a
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	storeB := openPersist(t, dir)
	if ps := storeB.Stats(); ps.CorruptEntries == 0 {
		t.Fatalf("corruption not detected at boot: %+v", ps)
	}
	engB := New(Options{Persist: storeB})
	rebuilt, err := engB.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatalf("plan failed instead of falling back to cold synthesis: %v", err)
	}
	if rebuilt.Stats.SolverCalls == 0 {
		t.Fatal("corrupt corpus served a plan with zero solver calls")
	}
	if err := verify.CheckSchedule(col, rebuilt.Schedule); err != nil {
		t.Fatalf("rebuilt schedule invalid: %v", err)
	}
	// Determinism: cold synthesis after corruption reproduces the
	// original answer, and the re-written corpus warm-boots again.
	if !reflect.DeepEqual(rebuilt.Schedule, cold.Schedule) {
		t.Fatal("rebuilt schedule differs from the original cold schedule")
	}
	engC := New(Options{Persist: openPersist(t, dir)})
	again, err := engC.Plan(context.Background(), top, col, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.SolverCalls != 0 {
		t.Fatalf("re-written corpus did not warm-boot: %d solver calls", again.Stats.SolverCalls)
	}
}

// An isomorphic request on a rebooted engine is served through the
// persist tier's iso-class fallback: relabeled demands map onto stored
// solutions without any solver work for the shared classes.
func TestEnginePersistIsoFallbackAcrossBoot(t *testing.T) {
	dir := t.TempDir()
	top := topology.SingleServer(8)

	engA := New(Options{Persist: openPersist(t, dir)})
	col0 := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
	if _, err := engA.Plan(context.Background(), top, col0, quickOpts()); err != nil {
		t.Fatal(err)
	}

	engB := New(Options{Persist: openPersist(t, dir)})
	col1 := collective.Broadcast(top.NumGPUs(), 1, 1<<20)
	res, err := engB.Plan(context.Background(), top, col1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st := engB.Stats(); st.PersistHits == 0 {
		t.Fatalf("relabeled request never hit the disk tier: %+v", st)
	}
	if err := verify.CheckSchedule(col1, res.Schedule); err != nil {
		t.Fatalf("iso-served schedule invalid: %v", err)
	}
}
