// Package engine provides the long-lived planner around the SyCCL
// synthesis pipeline: a concurrency-safe Engine that owns persistent
// caches surviving across requests and serves Plan(ctx, ...) with
// cooperative cancellation and anytime semantics.
//
// Two caches back the engine:
//
//   - a sketch cache mapping topology fingerprint (plus collective shape,
//     root, and search options) to the enumerated sketch set, so repeat
//     plans on the same fabric skip the §4.1 search entirely;
//   - a sub-schedule cache keyed by the canonical sub-demand signature
//     plus the solve-option signature, sharded and LRU-bounded. An exact
//     signature hit returns the stored solution verbatim — warm re-plans
//     are bit-identical to the cold run — while demands that are
//     isomorphic to a stored one (but relabeled) are served through
//     isomorph.FindFullMapping/MapSchedule.
//
// The caches plug into core.Options through the core.SolveCache and
// core.SketchCache interfaces, so core carries no engine dependency and
// core.Synthesize keeps working cache-free.
package engine

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/isomorph"
	"syccl/internal/obs"
	"syccl/internal/sketch"
	"syccl/internal/solve"
	"syccl/internal/topology"
)

// Options configures an Engine.
type Options struct {
	// SketchCacheEntries bounds the sketch cache (whole search results;
	// default 64).
	SketchCacheEntries int
	// SolveCacheEntries bounds the sub-schedule cache across all shards
	// (default 4096).
	SolveCacheEntries int
	// BoundCacheEntries bounds the flow-bound cache (scalar lower bounds
	// per sub-demand; default 4096). Warm requests prune candidates
	// without re-solving the bound LPs.
	BoundCacheEntries int
	// Shards is the lock-striping factor of the sub-schedule cache,
	// rounded up to a power of two (default 16). Isomorphic demands land
	// in the same shard, so iso-fallback lookups stay shard-local.
	Shards int
	// Persist optionally backs the sub-schedule cache with a disk tier
	// (internal/persist): LRU misses fall through to Persist.Load (the
	// hit is promoted into the memory tier), and first-time stores are
	// written through with Persist.Put. Solved symmetry classes thereby
	// survive process restarts — a rebooted engine replays previously
	// synthesized plans bit-identically with zero solver calls. Nil
	// disables the tier.
	Persist PersistTier
	// Obs optionally receives the engine counters: engine.plans,
	// engine.cancelled, engine.cache.{hits,misses,evictions},
	// engine.sketch.{hits,misses}. Nil disables recording; Stats() is
	// always available.
	Obs *obs.Recorder
	// Metrics optionally receives labeled production metrics
	// (syccl_engine_plans_total{outcome},
	// syccl_engine_cache_lookups_total{cache,result},
	// syccl_engine_cache_evictions_total{cache}) for Prometheus
	// exposition. Nil disables them at zero cost.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SketchCacheEntries <= 0 {
		o.SketchCacheEntries = 64
	}
	if o.SolveCacheEntries <= 0 {
		o.SolveCacheEntries = 4096
	}
	if o.BoundCacheEntries <= 0 {
		o.BoundCacheEntries = 4096
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	return o
}

// PersistTier is the disk tier behind the sub-schedule cache. Load
// returns a stored solution for the demand (exact replay or iso-class
// mapping onto it) or nil; Put stores a newly solved sub-schedule,
// first write wins. Implementations must be safe for concurrent use.
// *persist.Store satisfies this interface.
type PersistTier interface {
	Load(d *solve.Demand, sig string) *solve.SubSchedule
	Put(d *solve.Demand, sig string, sub *solve.SubSchedule) error
}

// Stats is a snapshot of the engine's lifetime counters. The JSON field
// names are part of the serving API (`GET /statsz` in internal/serve
// embeds a Stats verbatim), so they are stable snake_case.
//
// Contract: every counter is marshaled explicitly, including zeros — no
// omitempty. Scrapers (and the loadtest's /statsz deltas) subtract
// successive snapshots, which only works when every field is present in
// every scrape; a field that appears only once non-zero would read as a
// reset. New counters may be added, but existing fields are never
// renamed, retyped, or made omittable. TestStatsJSONGolden pins the
// exact zero-value shape.
type Stats struct {
	// Plans is the number of Plan calls accepted.
	Plans int64 `json:"plans"`
	// Cancelled counts plans cut short by their context (both anytime
	// Partial results and outright ctx errors).
	Cancelled int64 `json:"cancelled"`
	// SolveHits / SolveMisses count cross-request sub-schedule cache
	// lookups. ExactHits (verbatim replays) plus IsoHits (served through
	// an isomorphism mapping) sum to SolveHits.
	SolveHits   int64 `json:"solve_hits"`
	SolveMisses int64 `json:"solve_misses"`
	ExactHits   int64 `json:"exact_hits"`
	IsoHits     int64 `json:"iso_hits"`
	// Evictions counts LRU evictions from the sub-schedule cache.
	Evictions int64 `json:"evictions"`
	// SketchHits / SketchMisses count sketch cache lookups.
	SketchHits   int64 `json:"sketch_hits"`
	SketchMisses int64 `json:"sketch_misses"`
	// BoundHits / BoundMisses count flow-bound cache lookups; BoundsPruned
	// and BoundsProved aggregate the candidates eliminated (and fine
	// passes skipped) by the flow lower bound across all plans.
	BoundHits    int64 `json:"bound_hits"`
	BoundMisses  int64 `json:"bound_misses"`
	BoundsPruned int64 `json:"bounds_pruned"`
	BoundsProved int64 `json:"bounds_proved"`
	// PersistHits / PersistMisses count disk-tier lookups (only demands
	// that already missed the memory tier reach the disk tier, so these
	// never double-count SolveHits).
	PersistHits   int64 `json:"persist_hits"`
	PersistMisses int64 `json:"persist_misses"`
	// Replans counts Replan calls (including failed ones); ReplanReused
	// aggregates the sub-demands those replans served from the
	// cross-request cache tiers, and ReplanInvalidated the cache entries
	// selective invalidation dropped as unreachable on the degraded
	// fabric.
	Replans           int64 `json:"replans"`
	ReplanReused      int64 `json:"replan_reused"`
	ReplanInvalidated int64 `json:"replan_invalidated"`
}

// Engine is a long-lived, concurrency-safe planner. The zero value is not
// usable; construct with New. An Engine may serve any number of
// concurrent Plan calls over arbitrary topologies and collectives; its
// caches are shared across all of them.
type Engine struct {
	opts     Options
	sketches sketchLRU
	shards   []solveShard
	bounds   boundLRU
	mask     uint32

	plans         atomic.Int64
	cancelled     atomic.Int64
	solveHits     atomic.Int64
	solveMisses   atomic.Int64
	exactHits     atomic.Int64
	isoHits       atomic.Int64
	evictions     atomic.Int64
	sketchHits    atomic.Int64
	sketchMisses  atomic.Int64
	boundHits     atomic.Int64
	boundMisses   atomic.Int64
	boundsPruned  atomic.Int64
	boundsProved  atomic.Int64
	persistHits   atomic.Int64
	persistMisses atomic.Int64

	replans           atomic.Int64
	replansErr        atomic.Int64
	replanReused      atomic.Int64
	replanInvalidated atomic.Int64

	// Labeled metric children, resolved once at construction so the cache
	// hot paths pay a single nil-safe atomic add per event.
	mPlanOK, mPlanPartial, mPlanError       *obs.Counter
	mSolveExact, mSolveIso, mSolveMiss      *obs.Counter
	mSketchHit, mSketchMiss                 *obs.Counter
	mBoundExact, mBoundIso, mBoundMiss      *obs.Counter
	mEvictSolve, mEvictSketch, mEvictBound  *obs.Counter
	mBoundPruned, mBoundKept, mBoundsProved *obs.Counter
	mPersistHit, mPersistMiss               *obs.Counter
	mReplanOK, mReplanPartial, mReplanError *obs.Counter
	mReplanReuse                            *obs.Histogram
}

// New builds an Engine with the given options.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	shards := 1
	for shards < opts.Shards {
		shards <<= 1
	}
	perShard := (opts.SolveCacheEntries + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	e := &Engine{
		opts: opts,
		mask: uint32(shards - 1),
	}
	e.sketches.init(opts.SketchCacheEntries)
	e.shards = make([]solveShard, shards)
	for i := range e.shards {
		e.shards[i].init(perShard)
	}
	e.bounds.init(opts.BoundCacheEntries)
	// A nil registry hands out nil vectors and nil children, so every
	// metric update below stays a no-op when telemetry is off.
	plans := opts.Metrics.Counter("syccl_engine_plans_total",
		"Engine plan calls by outcome.", "outcome")
	e.mPlanOK = plans.With("ok")
	e.mPlanPartial = plans.With("partial")
	e.mPlanError = plans.With("error")
	lookups := opts.Metrics.Counter("syccl_engine_cache_lookups_total",
		"Cross-request cache lookups by cache and result.", "cache", "result")
	e.mSolveExact = lookups.With("solve", "exact")
	e.mSolveIso = lookups.With("solve", "iso")
	e.mSolveMiss = lookups.With("solve", "miss")
	e.mSketchHit = lookups.With("sketch", "hit")
	e.mSketchMiss = lookups.With("sketch", "miss")
	e.mBoundExact = lookups.With("bound", "exact")
	e.mBoundIso = lookups.With("bound", "iso")
	e.mBoundMiss = lookups.With("bound", "miss")
	e.mPersistHit = lookups.With("persist", "hit")
	e.mPersistMiss = lookups.With("persist", "miss")
	evict := opts.Metrics.Counter("syccl_engine_cache_evictions_total",
		"LRU evictions by cache.", "cache")
	e.mEvictSolve = evict.With("solve")
	e.mEvictSketch = evict.With("sketch")
	e.mEvictBound = evict.With("bound")
	boundsTotal := opts.Metrics.Counter("syccl_solver_bounds_total",
		"Candidate flow lower bounds by outcome: pruned (candidate eliminated), kept (bound insufficient to prune), proved_optimal (fine pass skipped).",
		"result")
	e.mBoundPruned = boundsTotal.With("pruned")
	e.mBoundKept = boundsTotal.With("kept")
	e.mBoundsProved = boundsTotal.With("proved_optimal")
	replans := opts.Metrics.Counter("syccl_replan_total",
		"Fault-reactive replans by outcome.", "result")
	e.mReplanOK = replans.With("ok")
	e.mReplanPartial = replans.With("partial")
	e.mReplanError = replans.With("error")
	e.mReplanReuse = opts.Metrics.Histogram("syccl_replan_reuse_ratio",
		"Fraction of replanned sub-demands served from cache.",
		[]float64{0, 0.25, 0.5, 0.75, 0.9, 1}).With()
	return e
}

// Plan synthesizes a schedule for the collective on the topology, serving
// as much of the request as possible from the engine's caches and storing
// what it had to compute. Cancellation is cooperative and anytime: when
// ctx is cancelled or its deadline expires mid-synthesis, Plan returns
// promptly with the best fully-validated candidate found so far
// (Result.Partial=true) if at least one candidate completed the coarse
// pass, and ctx.Err() otherwise. Results from cancelled plans are never
// written into the caches.
//
// The engine installs its caches into opts; any caller-provided
// SolveCache/SketchCache values are replaced. All other options pass
// through to the pipeline unchanged.
func (e *Engine) Plan(ctx context.Context, top *topology.Topology, col *collective.Collective, opts core.Options) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.plans.Add(1)
	e.count("engine.plans", 1)
	opts.SolveCache = solveCacheAdapter{e}
	opts.SketchCache = sketchCacheAdapter{e}
	opts.BoundCache = boundCacheAdapter{e}
	res, err := core.SynthesizeContext(ctx, top, col, opts)
	if (err != nil && ctx.Err() != nil) || (res != nil && res.Partial) {
		e.cancelled.Add(1)
		e.count("engine.cancelled", 1)
	}
	if res != nil {
		if pruned := int64(res.Stats.PrunedLB); pruned > 0 {
			e.boundsPruned.Add(pruned)
			e.mBoundPruned.Add(float64(pruned))
		}
		if kept := int64(res.Stats.BoundsComputed - res.Stats.PrunedLB); kept > 0 {
			e.mBoundKept.Add(float64(kept))
		}
		if res.Stats.ProvedOptimal {
			e.boundsProved.Add(1)
			e.mBoundsProved.Inc()
		}
	}
	switch {
	case err != nil:
		e.mPlanError.Inc()
	case res != nil && res.Partial:
		e.mPlanPartial.Inc()
	default:
		e.mPlanOK.Inc()
	}
	return res, err
}

// Stats returns a snapshot of the engine's lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Plans:             e.plans.Load(),
		Cancelled:         e.cancelled.Load(),
		SolveHits:         e.solveHits.Load(),
		SolveMisses:       e.solveMisses.Load(),
		ExactHits:         e.exactHits.Load(),
		IsoHits:           e.isoHits.Load(),
		Evictions:         e.evictions.Load(),
		SketchHits:        e.sketchHits.Load(),
		SketchMisses:      e.sketchMisses.Load(),
		BoundHits:         e.boundHits.Load(),
		BoundMisses:       e.boundMisses.Load(),
		BoundsPruned:      e.boundsPruned.Load(),
		BoundsProved:      e.boundsProved.Load(),
		PersistHits:       e.persistHits.Load(),
		PersistMisses:     e.persistMisses.Load(),
		Replans:           e.replans.Load(),
		ReplanReused:      e.replanReused.Load(),
		ReplanInvalidated: e.replanInvalidated.Load(),
	}
}

func (e *Engine) count(name string, delta float64) {
	if e.opts.Obs != nil {
		e.opts.Obs.Count(name, delta)
	}
}

// --- sub-schedule cache ---

// solveEntry is one cached per-demand solution. The demand clone is kept
// for the iso-fallback path, which needs the concrete piece sets to find
// a mapping onto the queried demand.
type solveEntry struct {
	exactKey string
	isoKey   string
	demand   *solve.Demand
	sub      *solve.SubSchedule
	elem     *list.Element
}

type solveShard struct {
	mu      sync.Mutex
	byExact map[string]*solveEntry
	byIso   map[string][]*solveEntry
	lru     *list.List // front = most recently used
	cap     int
}

func (s *solveShard) init(cap int) {
	s.byExact = make(map[string]*solveEntry)
	s.byIso = make(map[string][]*solveEntry)
	s.lru = list.New()
	s.cap = cap
}

func hashKey(k string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(k))
	return h.Sum32()
}

// solveCacheAdapter implements core.SolveCache on the engine.
type solveCacheAdapter struct{ e *Engine }

func (a solveCacheAdapter) Lookup(d *solve.Demand, sig string) *solve.SubSchedule {
	e := a.e
	exact := isomorph.ExactKey(d) + "|" + sig
	iso := isomorph.Key(d) + "|" + sig
	if sub := e.memLookup(d, exact, iso); sub != nil {
		return sub
	}
	// Memory miss: consult the disk tier (outside any shard lock — disk
	// reads must not serialize unrelated lookups).
	if e.opts.Persist != nil {
		if sub := e.opts.Persist.Load(d, sig); sub != nil {
			e.persistHits.Add(1)
			e.count("engine.persist.hits", 1)
			e.mPersistHit.Inc()
			// Promote into the memory tier. No write-back: the bytes just
			// came from disk (or from an iso sibling already on disk).
			e.memInsert(d, exact, iso, sub)
			return sub
		}
		e.persistMisses.Add(1)
		e.count("engine.persist.misses", 1)
		e.mPersistMiss.Inc()
	}
	e.solveMisses.Add(1)
	e.count("engine.cache.misses", 1)
	e.mSolveMiss.Inc()
	return nil
}

// memLookup probes the in-memory solve LRU (exact, then iso-class) and
// counts hits; misses are not counted here so the persist tier can be
// consulted before the lookup is declared a miss.
func (e *Engine) memLookup(d *solve.Demand, exact, iso string) *solve.SubSchedule {
	s := &e.shards[hashKey(iso)&e.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.byExact[exact]; ok {
		s.lru.MoveToFront(ent.elem)
		e.solveHits.Add(1)
		e.exactHits.Add(1)
		e.count("engine.cache.hits", 1)
		e.mSolveExact.Inc()
		return cloneSub(ent.sub)
	}
	for _, ent := range s.byIso[iso] {
		if m := isomorph.FindFullMapping(ent.demand, d); m != nil {
			s.lru.MoveToFront(ent.elem)
			e.solveHits.Add(1)
			e.isoHits.Add(1)
			e.count("engine.cache.hits", 1)
			e.mSolveIso.Inc()
			// MapSchedule allocates a fresh sub-schedule; no extra clone.
			return isomorph.MapSchedule(ent.sub, *m)
		}
	}
	return nil
}

func (a solveCacheAdapter) Store(d *solve.Demand, sig string, sub *solve.SubSchedule) {
	e := a.e
	exact := isomorph.ExactKey(d) + "|" + sig
	iso := isomorph.Key(d) + "|" + sig
	if !e.memInsert(d, exact, iso, sub) {
		// First write won in memory; the disk tier enforces the same
		// rule, so nothing to write through.
		return
	}
	if e.opts.Persist != nil {
		// Write-through, outside the shard lock. A failed disk write
		// (full disk, permissions) degrades durability, never planning.
		_ = e.opts.Persist.Put(d, sig, sub)
	}
}

// memInsert adds a solved sub-schedule to the in-memory LRU, evicting
// as needed. Returns false when the exact key was already present
// (first write wins: replaying a stored solution must stay
// bit-identical, so a concurrent duplicate store is dropped).
func (e *Engine) memInsert(d *solve.Demand, exact, iso string, sub *solve.SubSchedule) bool {
	s := &e.shards[hashKey(iso)&e.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.byExact[exact]; ok {
		s.lru.MoveToFront(ent.elem)
		return false
	}
	ent := &solveEntry{
		exactKey: exact,
		isoKey:   iso,
		demand:   cloneDemand(d),
		sub:      cloneSub(sub),
	}
	ent.elem = s.lru.PushFront(ent)
	s.byExact[exact] = ent
	s.byIso[iso] = append(s.byIso[iso], ent)
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		victim := back.Value.(*solveEntry)
		s.lru.Remove(back)
		delete(s.byExact, victim.exactKey)
		bucket := s.byIso[victim.isoKey]
		for i, v := range bucket {
			if v == victim {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(s.byIso, victim.isoKey)
		} else {
			s.byIso[victim.isoKey] = bucket
		}
		e.evictions.Add(1)
		e.count("engine.cache.evictions", 1)
		e.mEvictSolve.Inc()
	}
	return true
}

func cloneDemand(d *solve.Demand) *solve.Demand {
	out := &solve.Demand{NumGPUs: d.NumGPUs, Alpha: d.Alpha, Beta: d.Beta}
	out.Pieces = make([]solve.Piece, len(d.Pieces))
	for i, p := range d.Pieces {
		p.Srcs = append([]int(nil), p.Srcs...)
		p.Dsts = append([]int(nil), p.Dsts...)
		out.Pieces[i] = p
	}
	return out
}

func cloneSub(s *solve.SubSchedule) *solve.SubSchedule {
	out := *s
	out.Transfers = append([]solve.Transfer(nil), s.Transfers...)
	return &out
}

// --- flow-bound cache ---

// boundEntry is one cached flow lower bound. The bound is invariant
// under GPU relabeling (the isomorph keys embed α, β, and the piece
// structure), so entries are stored under their exact key and also
// served to merely-isomorphic demands through the iso index — a scalar
// needs no schedule remapping.
type boundEntry struct {
	exactKey string
	isoKey   string
	bound    float64
	elem     *list.Element
}

type boundLRU struct {
	mu      sync.Mutex
	byExact map[string]*boundEntry
	byIso   map[string]*boundEntry
	lru     *list.List
	cap     int
}

func (c *boundLRU) init(cap int) {
	c.byExact = make(map[string]*boundEntry)
	c.byIso = make(map[string]*boundEntry)
	c.lru = list.New()
	c.cap = cap
}

// boundCacheAdapter implements core.BoundCache on the engine.
type boundCacheAdapter struct{ e *Engine }

func (a boundCacheAdapter) Lookup(d *solve.Demand, sig string) (float64, bool) {
	e := a.e
	exact := isomorph.ExactKey(d) + "|" + sig
	iso := isomorph.Key(d) + "|" + sig
	c := &e.bounds
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.byExact[exact]; ok {
		c.lru.MoveToFront(ent.elem)
		e.boundHits.Add(1)
		e.count("engine.bound.hits", 1)
		e.mBoundExact.Inc()
		return ent.bound, true
	}
	if ent, ok := c.byIso[iso]; ok {
		c.lru.MoveToFront(ent.elem)
		e.boundHits.Add(1)
		e.count("engine.bound.hits", 1)
		e.mBoundIso.Inc()
		return ent.bound, true
	}
	e.boundMisses.Add(1)
	e.count("engine.bound.misses", 1)
	e.mBoundMiss.Inc()
	return 0, false
}

func (a boundCacheAdapter) Store(d *solve.Demand, sig string, bound float64) {
	e := a.e
	exact := isomorph.ExactKey(d) + "|" + sig
	iso := isomorph.Key(d) + "|" + sig
	c := &e.bounds
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.byExact[exact]; ok {
		// First write wins, as in the solve cache.
		c.lru.MoveToFront(ent.elem)
		return
	}
	ent := &boundEntry{exactKey: exact, isoKey: iso, bound: bound}
	ent.elem = c.lru.PushFront(ent)
	c.byExact[exact] = ent
	if _, ok := c.byIso[iso]; !ok {
		c.byIso[iso] = ent
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		victim := back.Value.(*boundEntry)
		c.lru.Remove(back)
		delete(c.byExact, victim.exactKey)
		if c.byIso[victim.isoKey] == victim {
			delete(c.byIso, victim.isoKey)
		}
		e.evictions.Add(1)
		e.count("engine.cache.evictions", 1)
		e.mEvictBound.Inc()
	}
}

// --- sketch cache ---

type sketchEntry struct {
	key      string
	sketches []*sketch.Sketch
	elem     *list.Element
}

type sketchLRU struct {
	mu      sync.Mutex
	entries map[string]*sketchEntry
	lru     *list.List
	cap     int
}

func (c *sketchLRU) init(cap int) {
	c.entries = make(map[string]*sketchEntry)
	c.lru = list.New()
	c.cap = cap
}

// sketchCacheAdapter implements core.SketchCache on the engine.
type sketchCacheAdapter struct{ e *Engine }

func (a sketchCacheAdapter) Lookup(key string) ([]*sketch.Sketch, bool) {
	e := a.e
	c := &e.sketches
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok {
		e.sketchMisses.Add(1)
		e.count("engine.sketch.misses", 1)
		e.mSketchMiss.Inc()
		return nil, false
	}
	c.lru.MoveToFront(ent.elem)
	e.sketchHits.Add(1)
	e.count("engine.sketch.hits", 1)
	e.mSketchHit.Inc()
	return cloneSketches(ent.sketches), true
}

func (a sketchCacheAdapter) Store(key string, sketches []*sketch.Sketch) {
	e := a.e
	c := &e.sketches
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[key]; ok {
		c.lru.MoveToFront(ent.elem)
		return
	}
	ent := &sketchEntry{key: key, sketches: cloneSketches(sketches)}
	ent.elem = c.lru.PushFront(ent)
	c.entries[key] = ent
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		victim := back.Value.(*sketchEntry)
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		e.evictions.Add(1)
		e.count("engine.cache.evictions", 1)
		e.mEvictSketch.Inc()
	}
}

func cloneSketches(in []*sketch.Sketch) []*sketch.Sketch {
	out := make([]*sketch.Sketch, len(in))
	for i, sk := range in {
		out[i] = sk.Clone()
	}
	return out
}

// Ensure the adapters satisfy core's interfaces.
var (
	_ core.SolveCache  = solveCacheAdapter{}
	_ core.SketchCache = sketchCacheAdapter{}
	_ core.BoundCache  = boundCacheAdapter{}
)
