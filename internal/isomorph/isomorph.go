// Package isomorph detects isomorphic sub-demands and computes the GPU
// mappings between them.
//
// SyCCL's accelerations (§5.3) rest on the observation that a sketch
// produces many structurally identical sub-demands across isomorphic
// groups: the solver needs to run once per isomorphism class, and the
// solution maps to every other member through a GPU renaming. This
// package provides the invariant fingerprint used to bucket demands, the
// backtracking search that finds an explicit mapping, and the class
// partition driver.
package isomorph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"syccl/internal/solve"
)

// Key returns an isomorphism-invariant fingerprint of a demand: demands
// with different keys are guaranteed non-isomorphic. (Equal keys are a
// necessary, not sufficient, condition; FindMapping decides.)
func Key(d *solve.Demand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d;a%.6g;b%.6g;", d.NumGPUs, d.Alpha, d.Beta)
	inv := make([]string, len(d.Pieces))
	for i, p := range d.Pieces {
		inv[i] = fmt.Sprintf("p(%.6g,%d,%d)", p.Bytes, len(p.Srcs), len(p.Dsts))
	}
	sort.Strings(inv)
	sb.WriteString(strings.Join(inv, ""))
	// GPU color multiset: per GPU, the sorted list of (piece-invariant,
	// role) memberships.
	colors := gpuColors(d)
	sorted := append([]string(nil), colors...)
	sort.Strings(sorted)
	sb.WriteString(";g")
	sb.WriteString(strings.Join(sorted, "|"))
	return sb.String()
}

// ExactKey returns a byte-exact signature of a demand: two demands share
// an ExactKey iff they are literally identical (same GPU count, link
// parameters, and pieces with the same sizes, ordering, and concrete
// source/destination lists). Unlike Key it is NOT invariant under GPU
// renaming; it exists so cross-request caches (internal/engine) can serve
// a repeated demand with the bit-identical stored sub-schedule, keeping
// warm and cold runs byte-equal.
func ExactKey(d *solve.Demand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d;a%.9g;b%.9g", d.NumGPUs, d.Alpha, d.Beta)
	for _, p := range d.Pieces {
		fmt.Fprintf(&sb, ";p%.9g|%v|%v", p.Bytes, p.Srcs, p.Dsts)
	}
	return sb.String()
}

// gpuColors computes a per-GPU invariant color string.
func gpuColors(d *solve.Demand) []string {
	colors := make([][]string, d.NumGPUs)
	for _, p := range d.Pieces {
		inv := fmt.Sprintf("(%.6g,%d,%d)", p.Bytes, len(p.Srcs), len(p.Dsts))
		for _, s := range p.Srcs {
			colors[s] = append(colors[s], "s"+inv)
		}
		for _, t := range p.Dsts {
			colors[t] = append(colors[t], "d"+inv)
		}
	}
	out := make([]string, d.NumGPUs)
	for g, c := range colors {
		sort.Strings(c)
		out[g] = strings.Join(c, ",")
	}
	return out
}

// maxBacktrackNodes caps the mapping search; exceeding it reports "not
// isomorphic", which costs an extra solve but never a wrong schedule.
const maxBacktrackNodes = 200000

// FindMapping searches for a GPU permutation f with f[i] = j meaning
// a's GPU i plays the role of b's GPU j, such that a's pieces map
// bijectively onto b's pieces (equal sizes, f(Srcs) = Srcs, f(Dsts) =
// Dsts as sets). Returns nil when no mapping exists (or the search
// budget runs out).
//
// Small demands get an exact backtracking search. Large ones — where
// color classes are fat and backtracking degenerates — get the cheap
// route: the color-sorted canonical alignment plus a handful of
// randomized color-respecting bijections, each verified in near-linear
// time. The cheap route can miss an isomorphism (costing an extra solve,
// never a wrong schedule), but on the highly symmetric demands SyCCL
// produces a color-respecting bijection almost always verifies.
func FindMapping(a, b *solve.Demand) []int {
	if a.NumGPUs != b.NumGPUs || len(a.Pieces) != len(b.Pieces) {
		return nil
	}
	if Key(a) != Key(b) {
		return nil
	}
	n := a.NumGPUs
	ca, cb := gpuColors(a), gpuColors(b)

	if n*len(a.Pieces) > 128 {
		return findMappingSampled(a, b, ca, cb)
	}

	// candidates[i] = b-GPUs with the same color as a's GPU i.
	candidates := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ca[i] == cb[j] {
				candidates[i] = append(candidates[i], j)
			}
		}
		if len(candidates[i]) == 0 {
			return nil
		}
	}

	// Assign in order of fewest candidates first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return len(candidates[order[x]]) < len(candidates[order[y]]) })

	f := make([]int, n)
	for i := range f {
		f[i] = -1
	}
	used := make([]bool, n)
	nodes := 0

	// The O(pieces²) partial-consistency filter pays off on small, loosely
	// structured demands; on large highly symmetric ones (hundreds of
	// single-source pieces) the per-GPU colors already pin the candidates
	// and the filter would dominate the runtime.
	budget := maxBacktrackNodes

	var rec func(k int) bool
	rec = func(k int) bool {
		nodes++
		if nodes > budget {
			return false
		}
		if k == n {
			return piecesMatch(a, b, f)
		}
		i := order[k]
		for _, j := range candidates[i] {
			if used[j] {
				continue
			}
			f[i] = j
			used[j] = true
			if partialConsistent(a, b, f) && rec(k+1) {
				return true
			}
			used[j] = false
			f[i] = -1
		}
		return false
	}
	if rec(0) {
		return f
	}
	return nil
}

// findMappingSampled tries the color-sorted canonical alignment and a
// few randomized color-respecting bijections, verifying each with the
// near-linear piecesMatch.
func findMappingSampled(a, b *solve.Demand, ca, cb []string) []int {
	n := a.NumGPUs
	// Bucket GPUs by color on both sides.
	byColorA := map[string][]int{}
	byColorB := map[string][]int{}
	for i := 0; i < n; i++ {
		byColorA[ca[i]] = append(byColorA[ca[i]], i)
		byColorB[cb[i]] = append(byColorB[cb[i]], i)
	}
	var colors []string
	for c, as := range byColorA {
		if len(byColorB[c]) != len(as) {
			return nil
		}
		colors = append(colors, c)
	}
	sort.Strings(colors)

	build := func(permute func(class []int) []int) []int {
		f := make([]int, n)
		for _, c := range colors {
			as := byColorA[c]
			bs := permute(append([]int(nil), byColorB[c]...))
			for k, i := range as {
				f[i] = bs[k]
			}
		}
		return f
	}

	// Canonical: sorted-position alignment within each color class.
	if f := build(func(class []int) []int { return class }); piecesMatch(a, b, f) {
		return f
	}
	// Rotations within classes.
	for shift := 1; shift < 8; shift++ {
		f := build(func(class []int) []int {
			k := shift % len(class)
			return append(class[k:], class[:k]...)
		})
		if piecesMatch(a, b, f) {
			return f
		}
	}
	// Randomized color-respecting bijections.
	rng := rand.New(rand.NewSource(int64(n)*7919 + int64(len(a.Pieces))))
	for trial := 0; trial < 24; trial++ {
		f := build(func(class []int) []int {
			rng.Shuffle(len(class), func(x, y int) { class[x], class[y] = class[y], class[x] })
			return class
		})
		if piecesMatch(a, b, f) {
			return f
		}
	}
	return nil
}

// partialConsistent rejects partial assignments that already break any
// piece correspondence: for every piece of a, there must remain at least
// one piece of b whose source/destination sets are compatible with the
// assigned part of f.
func partialConsistent(a, b *solve.Demand, f []int) bool {
	for _, pa := range a.Pieces {
		ok := false
		for _, pb := range b.Pieces {
			if pa.Bytes != pb.Bytes || len(pa.Srcs) != len(pb.Srcs) || len(pa.Dsts) != len(pb.Dsts) {
				continue
			}
			if setCompatible(pa.Srcs, pb.Srcs, f) && setCompatible(pa.Dsts, pb.Dsts, f) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// setCompatible reports whether mapping the assigned members of sa lands
// inside sb. Sets here are tiny (sub-demand sources/destinations), so a
// linear membership scan beats building a map.
func setCompatible(sa, sb []int, f []int) bool {
	for _, i := range sa {
		v := f[i]
		if v < 0 {
			continue
		}
		found := false
		for _, j := range sb {
			if j == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// pieceSig renders a piece's canonical signature, optionally under a GPU
// mapping m.
func pieceSig(bytes float64, srcs, dsts []int, m []int) string {
	img := func(set []int) []int {
		out := make([]int, len(set))
		for k, v := range set {
			if m != nil {
				out[k] = m[v]
			} else {
				out[k] = v
			}
		}
		sort.Ints(out)
		return out
	}
	return fmt.Sprintf("%.9g|%v|%v", bytes, img(srcs), img(dsts))
}

// pieceBijection verifies a complete GPU mapping f and, when valid,
// returns the induced piece bijection: out[i] is the b-piece that a's
// piece i plays under f. Pieces with identical signatures are
// interchangeable, so any within-bucket assignment is correct. Returns
// nil when f is not an isomorphism. Near-linear via signature bucketing.
func pieceBijection(a, b *solve.Demand, f []int) []int {
	if len(a.Pieces) != len(b.Pieces) {
		return nil
	}
	buckets := make(map[string][]int, len(b.Pieces))
	for j, pb := range b.Pieces {
		k := pieceSig(pb.Bytes, pb.Srcs, pb.Dsts, nil)
		buckets[k] = append(buckets[k], j)
	}
	out := make([]int, len(a.Pieces))
	for i, pa := range a.Pieces {
		k := pieceSig(pa.Bytes, pa.Srcs, pa.Dsts, f)
		lst := buckets[k]
		if len(lst) == 0 {
			return nil
		}
		out[i] = lst[len(lst)-1]
		buckets[k] = lst[:len(lst)-1]
	}
	return out
}

// piecesMatch reports whether f is a valid isomorphism.
func piecesMatch(a, b *solve.Demand, f []int) bool {
	return pieceBijection(a, b, f) != nil
}

// Mapping is a complete isomorphism between two demands: the GPU
// permutation and the induced piece bijection. Both are needed to carry a
// solved sub-schedule across: transfers rename endpoints via GPUs and
// payloads via Pieces.
type Mapping struct {
	GPUs   []int // a-GPU → b-GPU
	Pieces []int // a-piece index → b-piece index
}

// Identity returns the identity mapping for a demand.
func Identity(d *solve.Demand) Mapping {
	m := Mapping{GPUs: make([]int, d.NumGPUs), Pieces: make([]int, len(d.Pieces))}
	for i := range m.GPUs {
		m.GPUs[i] = i
	}
	for i := range m.Pieces {
		m.Pieces[i] = i
	}
	return m
}

// Equal reports whether two demands are structurally identical: same
// group size, same α/β, and the same pieces in the same order. Piece
// order is part of the comparison on purpose — demand builders emit
// pieces deterministically, and order-sensitive equality stays cheap.
func Equal(a, b *solve.Demand) bool {
	if a.NumGPUs != b.NumGPUs || a.Alpha != b.Alpha || a.Beta != b.Beta || len(a.Pieces) != len(b.Pieces) {
		return false
	}
	for i := range a.Pieces {
		pa, pb := &a.Pieces[i], &b.Pieces[i]
		if pa.Bytes != pb.Bytes || len(pa.Srcs) != len(pb.Srcs) || len(pa.Dsts) != len(pb.Dsts) {
			return false
		}
		for j := range pa.Srcs {
			if pa.Srcs[j] != pb.Srcs[j] {
				return false
			}
		}
		for j := range pa.Dsts {
			if pa.Dsts[j] != pb.Dsts[j] {
				return false
			}
		}
	}
	return true
}

// FindFullMapping returns the complete isomorphism from a to b, or nil.
func FindFullMapping(a, b *solve.Demand) *Mapping {
	f := FindMapping(a, b)
	if f == nil {
		return nil
	}
	pm := pieceBijection(a, b, f)
	if pm == nil {
		return nil
	}
	return &Mapping{GPUs: f, Pieces: pm}
}

// Classes partitions demands into isomorphism classes. It returns, for
// each demand, the index of its class representative (the first demand of
// the class) and the full mapping from the representative to this demand
// (identity for representatives).
func Classes(demands []*solve.Demand) (repOf []int, mapFromRep []Mapping) {
	repOf = make([]int, len(demands))
	mapFromRep = make([]Mapping, len(demands))
	byKey := make(map[string][]int) // key -> representative indices
	for i, d := range demands {
		k := Key(d)
		assigned := false
		// Structurally equal demands take the identity mapping, never a
		// discovered automorphism: every equal demand must reuse the
		// representative's sub-schedule verbatim, so a cross-request cache
		// keyed on exact demand content replays a run bit-identically.
		for _, r := range byKey[k] {
			if Equal(demands[r], d) {
				repOf[i] = r
				mapFromRep[i] = Identity(d)
				assigned = true
				break
			}
		}
		for _, r := range byKey[k] {
			if assigned {
				break
			}
			if m := FindFullMapping(demands[r], d); m != nil {
				repOf[i] = r
				mapFromRep[i] = *m
				assigned = true
				break
			}
		}
		if !assigned {
			repOf[i] = i
			mapFromRep[i] = Identity(d)
			byKey[k] = append(byKey[k], i)
		}
	}
	return repOf, mapFromRep
}

// MapSchedule rewrites a sub-schedule solved for a representative demand
// into one for an isomorphic demand: GPU endpoints through m.GPUs, piece
// references through m.Pieces.
func MapSchedule(s *solve.SubSchedule, m Mapping) *solve.SubSchedule {
	out := &solve.SubSchedule{Epochs: s.Epochs, Tau: s.Tau, Engine: s.Engine}
	out.Transfers = make([]solve.Transfer, len(s.Transfers))
	for i, t := range s.Transfers {
		t.Src = m.GPUs[t.Src]
		t.Dst = m.GPUs[t.Dst]
		t.Piece = m.Pieces[t.Piece]
		out.Transfers[i] = t
	}
	return out
}
