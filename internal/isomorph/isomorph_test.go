package isomorph

import (
	"math/rand"
	"testing"

	"syccl/internal/solve"
)

func broadcast(n, root int) *solve.Demand {
	p := solve.Piece{ID: 0, Bytes: 1, Srcs: []int{root}}
	for g := 0; g < n; g++ {
		if g != root {
			p.Dsts = append(p.Dsts, g)
		}
	}
	return &solve.Demand{NumGPUs: n, Alpha: 0, Beta: 1, Pieces: []solve.Piece{p}}
}

func TestBroadcastRootsAreIsomorphic(t *testing.T) {
	a := broadcast(4, 0)
	b := broadcast(4, 2)
	if Key(a) != Key(b) {
		t.Fatal("keys differ for isomorphic broadcasts")
	}
	f := FindMapping(a, b)
	if f == nil {
		t.Fatal("no mapping found")
	}
	if f[0] != 2 {
		t.Errorf("root must map to root: f[0]=%d", f[0])
	}
}

func TestDifferentSizesNotIsomorphic(t *testing.T) {
	a := broadcast(4, 0)
	b := broadcast(5, 0)
	if FindMapping(a, b) != nil {
		t.Error("mapped demands of different sizes")
	}
	c := broadcast(4, 0)
	c.Pieces[0].Bytes = 2
	if FindMapping(a, c) != nil {
		t.Error("mapped demands of different piece sizes")
	}
}

func TestPartialBroadcastNotIsomorphicToFull(t *testing.T) {
	a := broadcast(4, 0)
	b := broadcast(4, 0)
	b.Pieces[0].Dsts = []int{1, 2} // one fewer destination
	if Key(a) == Key(b) {
		t.Error("keys collide for different destination counts")
	}
	if FindMapping(a, b) != nil {
		t.Error("mapped different-destination demands")
	}
}

func TestScatterIsomorphism(t *testing.T) {
	scatter := func(root int, dsts []int) *solve.Demand {
		d := &solve.Demand{NumGPUs: 4, Alpha: 0, Beta: 1}
		for i, ds := range dsts {
			d.Pieces = append(d.Pieces, solve.Piece{ID: i, Bytes: 1, Srcs: []int{root}, Dsts: []int{ds}})
		}
		return d
	}
	a := scatter(0, []int{1, 2, 3})
	b := scatter(3, []int{0, 1, 2})
	f := FindMapping(a, b)
	if f == nil {
		t.Fatal("scatter roots not mapped")
	}
	if f[0] != 3 {
		t.Errorf("f[0] = %d, want 3", f[0])
	}
}

func TestMappingPreservesStructureRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		// Random forward demand with 2 pieces.
		d := &solve.Demand{NumGPUs: n, Alpha: 0, Beta: 1}
		for pi := 0; pi < 2; pi++ {
			src := rng.Intn(n)
			p := solve.Piece{ID: pi, Bytes: float64(1 + pi), Srcs: []int{src}}
			for g := 0; g < n; g++ {
				if g != src && rng.Float64() < 0.5 {
					p.Dsts = append(p.Dsts, g)
				}
			}
			if len(p.Dsts) == 0 {
				p.Dsts = []int{(src + 1) % n}
			}
			d.Pieces = append(d.Pieces, p)
		}
		// Apply a random permutation to derive an isomorphic copy.
		perm := rng.Perm(n)
		e := &solve.Demand{NumGPUs: n, Alpha: 0, Beta: 1}
		for _, p := range d.Pieces {
			q := solve.Piece{ID: p.ID, Bytes: p.Bytes}
			for _, s := range p.Srcs {
				q.Srcs = append(q.Srcs, perm[s])
			}
			for _, t := range p.Dsts {
				q.Dsts = append(q.Dsts, perm[t])
			}
			e.Pieces = append(e.Pieces, q)
		}
		f := FindMapping(d, e)
		if f == nil {
			t.Fatalf("trial %d: no mapping for permuted copy", trial)
		}
		// Verify f is a valid isomorphism by checking piecesMatch
		// directly (it was validated inside, but double-check the
		// contract).
		if !piecesMatch(d, e, f) {
			t.Fatalf("trial %d: returned mapping invalid", trial)
		}
	}
}

func TestClasses(t *testing.T) {
	demands := []*solve.Demand{
		broadcast(4, 0),
		broadcast(4, 1),
		broadcast(4, 3),
		broadcast(5, 0), // different class
	}
	repOf, maps := Classes(demands)
	if repOf[0] != 0 || repOf[1] != 0 || repOf[2] != 0 {
		t.Errorf("broadcast roots split into classes: %v", repOf)
	}
	if repOf[3] != 3 {
		t.Errorf("5-GPU broadcast merged: %v", repOf)
	}
	// maps[1] must map demand 0's root to demand 1's root.
	if maps[1].GPUs[0] != 1 {
		t.Errorf("map[1].GPUs[0] = %d, want 1", maps[1].GPUs[0])
	}
	// Representative mapping is identity.
	for g, v := range maps[0].GPUs {
		if v != g {
			t.Errorf("rep mapping not identity at %d: %d", g, v)
		}
	}
	for i, v := range maps[0].Pieces {
		if v != i {
			t.Errorf("rep piece mapping not identity at %d: %d", i, v)
		}
	}
}

func TestMapSchedule(t *testing.T) {
	s := &solve.SubSchedule{
		Epochs: 2, Tau: 1, Engine: "greedy",
		Transfers: []solve.Transfer{
			{Src: 0, Dst: 1, Piece: 0, Start: 0, Arrive: 1},
			{Src: 1, Dst: 2, Piece: 0, Start: 1, Arrive: 2},
		},
	}
	m := MapSchedule(s, Mapping{GPUs: []int{2, 0, 1}, Pieces: []int{0}})
	if m.Transfers[0].Src != 2 || m.Transfers[0].Dst != 0 {
		t.Errorf("first transfer mapped to %+v", m.Transfers[0])
	}
	if m.Transfers[1].Src != 0 || m.Transfers[1].Dst != 1 {
		t.Errorf("second transfer mapped to %+v", m.Transfers[1])
	}
	if s.Transfers[0].Src != 0 {
		t.Error("MapSchedule mutated input")
	}
	if m.Epochs != 2 || m.Tau != 1 {
		t.Error("metadata lost")
	}
}

// TestSolveThenMapEquivalence: solving a representative and mapping the
// schedule must yield a valid schedule for the isomorphic demand.
func TestSolveThenMapEquivalence(t *testing.T) {
	a := broadcast(6, 0)
	b := broadcast(6, 4)
	fm := FindFullMapping(a, b)
	if fm == nil {
		t.Fatal("no mapping")
	}
	sa, err := solve.Solve(a, solve.Options{Engine: solve.EngineGreedy, E: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb := MapSchedule(sa, *fm)
	if err := solve.CheckSolution(b, sb); err != nil {
		t.Fatalf("mapped schedule invalid: %v", err)
	}
	if sb.Epochs != sa.Epochs {
		t.Errorf("mapped epochs %d != original %d", sb.Epochs, sa.Epochs)
	}
}

// TestPieceBijectionNotIdentity: when the structural piece correspondence
// is a non-identity permutation, MapSchedule must remap piece indices —
// otherwise mapped transfers would move the wrong payloads. (Regression
// test for the piece-permutation bug.)
func TestPieceBijectionNotIdentity(t *testing.T) {
	mk := func(srcs ...int) *solve.Demand {
		d := &solve.Demand{NumGPUs: 4, Alpha: 0, Beta: 1}
		for i, s := range srcs {
			d.Pieces = append(d.Pieces, solve.Piece{ID: i, Bytes: 1, Srcs: []int{s}, Dsts: []int{(s + 1) % 4}})
		}
		return d
	}
	a := mk(0, 2) // piece0: 0→1, piece1: 2→3
	b := mk(2, 0) // piece0: 2→3, piece1: 0→1 (same demand, pieces swapped)
	fm := FindFullMapping(a, b)
	if fm == nil {
		t.Fatal("no mapping between piece-permuted twins")
	}
	// Identity GPU mapping forces the piece bijection to be the swap.
	id := true
	for i, v := range fm.GPUs {
		if i != v {
			id = false
		}
	}
	if id && (fm.Pieces[0] != 1 || fm.Pieces[1] != 0) {
		t.Errorf("piece bijection = %v, want swap under identity GPUs", fm.Pieces)
	}
	sa, err := solve.Solve(a, solve.Options{Engine: solve.EngineGreedy, E: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb := MapSchedule(sa, *fm)
	if err := solve.CheckSolution(b, sb); err != nil {
		t.Fatalf("mapped schedule invalid: %v", err)
	}
}

func TestEqual(t *testing.T) {
	a, b := broadcast(4, 0), broadcast(4, 0)
	if !Equal(a, b) {
		t.Fatal("identical broadcasts not Equal")
	}
	if Equal(a, broadcast(4, 2)) {
		t.Fatal("different roots reported Equal")
	}
	c := broadcast(4, 0)
	c.Beta = 2
	if Equal(a, c) {
		t.Fatal("different beta reported Equal")
	}
	d := broadcast(4, 0)
	d.Pieces[0].Bytes = 7
	if Equal(a, d) {
		t.Fatal("different piece size reported Equal")
	}
}

// TestClassesEqualDemandsGetIdentity: structurally equal demands must map
// to their representative through the identity, never through a
// discovered automorphism — the invariant that makes replaying a run from
// an exact-keyed cache bit-identical.
func TestClassesEqualDemandsGetIdentity(t *testing.T) {
	demands := []*solve.Demand{broadcast(4, 1), broadcast(4, 1), broadcast(4, 1)}
	repOf, maps := Classes(demands)
	for i := range demands {
		if repOf[i] != 0 {
			t.Fatalf("demand %d: rep %d, want 0", i, repOf[i])
		}
		for g, m := range maps[i].GPUs {
			if m != g {
				t.Fatalf("demand %d: non-identity GPU mapping %v", i, maps[i].GPUs)
			}
		}
		for p, m := range maps[i].Pieces {
			if m != p {
				t.Fatalf("demand %d: non-identity piece mapping %v", i, maps[i].Pieces)
			}
		}
	}
}
