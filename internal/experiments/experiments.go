// Package experiments reproduces every table and figure of the paper's
// evaluation (§7, Appendix C). Each entry point regenerates the same
// rows/series the paper reports — busbw versus data size per system,
// synthesis-time comparisons, ablations, and end-to-end training times —
// using the reimplemented SyCCL, TECCL, and NCCL plus the α-β simulator.
//
// Absolute numbers come from this repository's simulator and solver, not
// the authors' testbed; EXPERIMENTS.md records the paper-vs-measured
// comparison. Shapes (who wins, by what factor, where the crossovers sit)
// are the reproduction target.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/engine"
	"syccl/internal/metrics"
	"syccl/internal/nccl"
	"syccl/internal/obs"
	"syccl/internal/sim"
	"syccl/internal/teccl"
	"syccl/internal/topology"
)

// Config controls experiment scale.
type Config struct {
	// Sizes overrides the data-size sweep (bytes). Nil uses the paper's
	// 1 KB … 4 GB doublings-by-4 ladder, trimmed in Quick mode.
	Sizes []float64
	// TECCLBudget is the per-case TECCL solve budget, standing in for
	// the paper's 10-hour Gurobi timeout (default 3s, 500ms in Quick).
	TECCLBudget time.Duration
	// Quick trims sweeps for fast runs (benchmarks, CI).
	Quick bool
	// Seed for randomized components.
	Seed int64
	// Workers for SyCCL's parallel solving (0 = GOMAXPROCS).
	Workers int
	// Obs optionally records every synthesis run in the experiment
	// (spans, counters) for Chrome-trace export. Nil disables recording.
	Obs *obs.Recorder
	// Engine optionally routes every SyCCL synthesis through a shared
	// long-lived planner, reusing sketch and sub-schedule caches across
	// the experiment's cases. Nil synthesizes each case independently.
	Engine *engine.Engine
	// Timeout bounds each SyCCL synthesis; on expiry the best schedule
	// found by then is used (anytime semantics). Zero disables the limit.
	Timeout time.Duration
	// Solver selects the sub-demand solver strategy for every SyCCL run
	// (the -solver knob): auto, exact, or flow.
	Solver core.SolverMode
}

// coreOptions builds the core.Options shared by every SyCCL run in an
// experiment; callers override the knob under study.
func (c Config) coreOptions() core.Options {
	return core.Options{Seed: c.Seed, Workers: c.Workers, Obs: c.Obs, SolverMode: c.Solver}
}

// synthesize runs one SyCCL case through the configured Engine (when one
// is wired) under the configured Timeout. The performance sweeps funnel
// through here so engine reuse and deadlines apply uniformly.
func (c Config) synthesize(top *topology.Topology, col *collective.Collective, opts core.Options) (*core.Result, error) {
	ctx := context.Background()
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	if c.Engine != nil {
		return c.Engine.Plan(ctx, top, col, opts)
	}
	return core.SynthesizeContext(ctx, top, col, opts)
}

// synthesizeCold is synthesize without the shared Engine. The
// synthesis-time figures and cache ablations (Figs 15–17, Table 5)
// measure the pipeline itself; serving their cases from a warm
// cross-request cache would report cache latency instead of solver work,
// so they always run cold.
func (c Config) synthesizeCold(top *topology.Topology, col *collective.Collective, opts core.Options) (*core.Result, error) {
	c.Engine = nil
	return c.synthesize(top, col, opts)
}

// tecclOptions builds the teccl.Options shared by every TECCL run.
func (c Config) tecclOptions() teccl.Options {
	return teccl.Options{TimeBudget: c.TECCLBudget, Seed: c.Seed, Rec: c.Obs}
}

func (c Config) withDefaults() Config {
	if c.TECCLBudget <= 0 {
		c.TECCLBudget = 3 * time.Second
		if c.Quick {
			c.TECCLBudget = 500 * time.Millisecond
		}
	}
	if len(c.Sizes) == 0 {
		c.Sizes = PaperSizes()
		if c.Quick {
			c.Sizes = []float64{16 << 10, 1 << 20, 64 << 20, 1 << 30}
		}
	}
	return c
}

// PaperSizes returns the x-axis of Figs 14/15/21/22: 1KB to 4GB in ×4
// steps.
func PaperSizes() []float64 {
	var out []float64
	for s := float64(1 << 10); s <= 4*float64(1<<30); s *= 4 {
		out = append(out, s)
	}
	return out
}

// SizeLabel renders a byte count the way the paper's axes do.
func SizeLabel(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%gG", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%gM", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%gK", b/(1<<10))
	default:
		return fmt.Sprintf("%gB", b)
	}
}

// PerfRow is one x-axis point of a busbw figure.
type PerfRow struct {
	Bytes float64
	// Busbw in bytes/second per system; NaN when the system has no
	// result (e.g. TECCL timeout at 512 GPUs).
	NCCL, TECCL, SyCCL, Crafted float64
	// Synthesis wall-clock per synthesizer.
	TECCLSynth, SyCCLSynth time.Duration
}

// PerfSeries is a complete figure.
type PerfSeries struct {
	ID    string // e.g. "fig14a"
	Title string
	GPUs  int
	Rows  []PerfRow
}

// Speedup returns max over rows of SyCCL/other − 1 (the paper's
// "improves busbw by up to X×" metric).
func (s *PerfSeries) Speedup(other func(PerfRow) float64) float64 {
	best := 0.0
	for _, r := range s.Rows {
		o := other(r)
		if o > 0 && !math.IsNaN(o) && r.SyCCL > 0 {
			if v := r.SyCCL/o - 1; v > best {
				best = v
			}
		}
	}
	return best
}

// Format renders the series as an aligned text table.
func (s *PerfSeries) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (%d GPUs)\n", s.ID, s.Title, s.GPUs)
	fmt.Fprintf(&b, "%8s %12s %12s %12s", "size", "NCCL", "TECCL", "SyCCL")
	hasCrafted := false
	for _, r := range s.Rows {
		if !math.IsNaN(r.Crafted) && r.Crafted > 0 {
			hasCrafted = true
		}
	}
	if hasCrafted {
		fmt.Fprintf(&b, " %12s", "Crafted")
	}
	fmt.Fprintln(&b)
	gb := func(v float64) string {
		if math.IsNaN(v) || v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v/1e9)
	}
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%8s %12s %12s %12s", SizeLabel(r.Bytes), gb(r.NCCL), gb(r.TECCL), gb(r.SyCCL))
		if hasCrafted {
			fmt.Fprintf(&b, " %12s", gb(r.Crafted))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// buildCollective instantiates a collective of the figure's kind with the
// figure's aggregate data size.
func buildCollective(kind collective.Kind, n int, dataBytes float64) *collective.Collective {
	switch kind {
	case collective.KindAllGather:
		return collective.AllGather(n, dataBytes/float64(n))
	case collective.KindReduceScatter:
		return collective.ReduceScatter(n, dataBytes/float64(n))
	case collective.KindAlltoAll:
		return collective.AlltoAll(n, dataBytes/float64(n*(n-1)))
	case collective.KindAllReduce:
		return collective.AllReduce(n, dataBytes)
	default:
		panic(fmt.Sprintf("experiments: unsupported kind %v", kind))
	}
}

// perfSweep measures one figure: busbw per size per system.
func perfSweep(id, title string, top *topology.Topology, kind collective.Kind,
	cfg Config, withTECCL, withCrafted bool) (*PerfSeries, error) {

	cfg = cfg.withDefaults()
	n := top.NumGPUs()
	series := &PerfSeries{ID: id, Title: title, GPUs: n}
	for _, size := range cfg.Sizes {
		col := buildCollective(kind, n, size)
		row := PerfRow{Bytes: size, TECCL: math.NaN(), Crafted: math.NaN()}

		// NCCL.
		_, t, err := nccl.Schedule(top, col, sim.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: nccl %s: %w", id, SizeLabel(size), err)
		}
		row.NCCL = metrics.BusBandwidth(kind, n, size, t)

		// SyCCL.
		start := time.Now()
		res, err := cfg.synthesize(top, col, cfg.coreOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: syccl %s: %w", id, SizeLabel(size), err)
		}
		row.SyCCLSynth = time.Since(start)
		row.SyCCL = metrics.BusBandwidth(kind, n, size, res.Time)

		// TECCL.
		if withTECCL {
			tres, err := teccl.Synthesize(top, col, cfg.tecclOptions())
			if err == nil {
				row.TECCL = metrics.BusBandwidth(kind, n, size, tres.Time)
				row.TECCLSynth = tres.Spent
			}
		}
		series.Rows = append(series.Rows, row)
	}
	_ = withCrafted
	return series, nil
}
