package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"syccl/internal/collective"
	"syccl/internal/teccl"
	"syccl/internal/topology"
)

// SynthRow is one point of the synthesis-time comparison (Fig 16a).
type SynthRow struct {
	Bytes      float64
	SyCCL      time.Duration
	TECCL      time.Duration
	TECCLValid bool // false: timed out with no solution (512-GPU case)
}

// SynthSeries is a synthesis-time figure for one scenario.
type SynthSeries struct {
	ID, Title string
	Rows      []SynthRow
}

// Format renders the series.
func (s *SynthSeries) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n%8s %14s %14s %10s\n", s.ID, s.Title, "size", "SyCCL", "TECCL", "speedup")
	for _, r := range s.Rows {
		t := "timeout"
		sp := "-"
		if r.TECCLValid {
			t = r.TECCL.Round(time.Millisecond).String()
			if r.SyCCL > 0 {
				sp = fmt.Sprintf("%.0f×", float64(r.TECCL)/float64(r.SyCCL))
			}
		}
		fmt.Fprintf(&b, "%8s %14s %14s %10s\n", SizeLabel(r.Bytes), r.SyCCL.Round(time.Millisecond), t, sp)
	}
	return b.String()
}

// synthSweep measures synthesis wall-clock for SyCCL and TECCL.
func synthSweep(id, title string, top *topology.Topology, kind collective.Kind, cfg Config, withTECCL bool) (*SynthSeries, error) {
	cfg = cfg.withDefaults()
	n := top.NumGPUs()
	out := &SynthSeries{ID: id, Title: title}
	for _, size := range cfg.Sizes {
		col := buildCollective(kind, n, size)
		row := SynthRow{Bytes: size}

		start := time.Now()
		if _, err := cfg.synthesizeCold(top, col, cfg.coreOptions()); err != nil {
			return nil, fmt.Errorf("%s: syccl %s: %w", id, SizeLabel(size), err)
		}
		row.SyCCL = time.Since(start)

		if withTECCL {
			tres, err := teccl.Synthesize(top, col, cfg.tecclOptions())
			if err == nil {
				row.TECCL = tres.Spent
				row.TECCLValid = true
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fig16a: synthesis time of SyCCL vs TECCL for AllGather on 16 and 32
// A100 GPUs. Returns both series.
func Fig16a(cfg Config) ([]*SynthSeries, error) {
	s16, err := synthSweep("fig16a-16", "AllGather synthesis, 16 A100", topology.A100Clos(2), collective.KindAllGather, cfg, true)
	if err != nil {
		return nil, err
	}
	s32, err := synthSweep("fig16a-32", "AllGather synthesis, 32 A100", topology.A100Clos(4), collective.KindAllGather, cfg, true)
	if err != nil {
		return nil, err
	}
	return []*SynthSeries{s16, s32}, nil
}

// BreakdownRow is one point of Fig 16b: where SyCCL's synthesis time goes.
type BreakdownRow struct {
	Bytes   float64
	Kind    collective.Kind
	Search  time.Duration
	Combine time.Duration
	Solve1  time.Duration
	Solve2  time.Duration
}

// Fig16b: SyCCL synthesis-time breakdown for AllGather and AlltoAll on 32
// A100 GPUs.
func Fig16b(cfg Config) ([]BreakdownRow, error) {
	cfg = cfg.withDefaults()
	top := topology.A100Clos(4)
	var out []BreakdownRow
	for _, kind := range []collective.Kind{collective.KindAllGather, collective.KindAlltoAll} {
		for _, size := range cfg.Sizes {
			col := buildCollective(kind, top.NumGPUs(), size)
			res, err := cfg.synthesizeCold(top, col, cfg.coreOptions())
			if err != nil {
				return nil, err
			}
			out = append(out, BreakdownRow{
				Bytes: size, Kind: kind,
				Search: res.Phases.Search, Combine: res.Phases.Combine,
				Solve1: res.Phases.Solve1, Solve2: res.Phases.Solve2,
			})
		}
	}
	return out, nil
}

// FormatBreakdown renders Fig 16b rows.
func FormatBreakdown(rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig16b: SyCCL synthesis breakdown (32 A100)\n%-10s %8s %10s %10s %10s %10s\n",
		"collective", "size", "search", "combine", "solve1", "solve2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10v %8s %10s %10s %10s %10s\n", r.Kind, SizeLabel(r.Bytes),
			r.Search.Round(time.Microsecond), r.Combine.Round(time.Microsecond),
			r.Solve1.Round(time.Millisecond), r.Solve2.Round(time.Millisecond))
	}
	return b.String()
}

// WorkerRow is one point of Fig 16c: synthesis time vs parallel workers.
type WorkerRow struct {
	Workers int
	Bytes   float64
	SyCCL   time.Duration
}

// Fig16c: SyCCL synthesis time with varying parallel solver instances
// (the paper sweeps 1…192 on a 192-core server; on this machine the
// sweep exercises the machinery and EXPERIMENTS.md notes the single-core
// caveat).
func Fig16c(cfg Config) ([]WorkerRow, error) {
	cfg = cfg.withDefaults()
	top := topology.A100Clos(4)
	sizes := []float64{1 << 20, 16 << 20, 1 << 30}
	if cfg.Quick {
		sizes = []float64{16 << 20}
	}
	workers := []int{1, 2, 4, 8, 16, 32, 64, 128, 192}
	if cfg.Quick {
		workers = []int{1, 4, 16}
	}
	var out []WorkerRow
	for _, size := range sizes {
		for _, w := range workers {
			col := collective.AllGather(top.NumGPUs(), size/float64(top.NumGPUs()))
			start := time.Now()
			opts := cfg.coreOptions()
			opts.Workers = w
			if _, err := cfg.synthesizeCold(top, col, opts); err != nil {
				return nil, err
			}
			out = append(out, WorkerRow{Workers: w, Bytes: size, SyCCL: time.Since(start)})
		}
	}
	return out, nil
}

// Table5Row summarizes synthesis time for one scenario.
type Table5Row struct {
	Scenario   string
	TECCLMin   time.Duration
	TECCLMax   time.Duration
	TECCLMean  time.Duration
	SyCCLMin   time.Duration
	SyCCLMax   time.Duration
	SyCCLMean  time.Duration
	Speedup    float64 // mean TECCL / mean SyCCL
	TECCLValid bool
}

// Table5 reproduces the synthesis-time summary across scenarios. The
// 512-GPU TECCL row reports a timeout like the paper's.
func Table5(cfg Config) ([]Table5Row, error) {
	cfg = cfg.withDefaults()
	type scenario struct {
		name      string
		top       *topology.Topology
		kind      collective.Kind
		withTECCL bool
	}
	scenarios := []scenario{
		{"16 A100, AG", topology.A100Clos(2), collective.KindAllGather, true},
		{"16 A100, A2A", topology.A100Clos(2), collective.KindAlltoAll, true},
		{"32 A100, AG", topology.A100Clos(4), collective.KindAllGather, true},
		{"64 H800, AG", topology.H800Rail(8), collective.KindAllGather, true},
		{"64 H800, A2A", topology.H800Rail(8), collective.KindAlltoAll, true},
	}
	if !cfg.Quick {
		scenarios = append(scenarios, scenario{"512 H800, AG", topology.H800Rail(64), collective.KindAllGather, false})
	}
	var out []Table5Row
	for _, sc := range scenarios {
		sizes := cfg.Sizes
		if sc.top.NumGPUs() >= 512 {
			sizes = []float64{1 << 20, 256 << 20} // sampled: each point costs minutes
		}
		row := Table5Row{Scenario: sc.name, TECCLMin: math.MaxInt64, SyCCLMin: math.MaxInt64}
		var tSum, sSum time.Duration
		var tN, sN int
		for _, size := range sizes {
			col := buildCollective(sc.kind, sc.top.NumGPUs(), size)
			start := time.Now()
			if _, err := cfg.synthesizeCold(sc.top, col, cfg.coreOptions()); err != nil {
				return nil, fmt.Errorf("table5 %s: %w", sc.name, err)
			}
			d := time.Since(start)
			row.SyCCLMin = minD(row.SyCCLMin, d)
			row.SyCCLMax = maxD(row.SyCCLMax, d)
			sSum += d
			sN++
			if sc.withTECCL {
				tres, err := teccl.Synthesize(sc.top, col, cfg.tecclOptions())
				if err == nil {
					row.TECCLMin = minD(row.TECCLMin, tres.Spent)
					row.TECCLMax = maxD(row.TECCLMax, tres.Spent)
					tSum += tres.Spent
					tN++
				}
			}
		}
		row.SyCCLMean = sSum / time.Duration(sN)
		if tN > 0 {
			row.TECCLMean = tSum / time.Duration(tN)
			row.TECCLValid = true
			row.Speedup = float64(row.TECCLMean) / float64(row.SyCCLMean)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: synthesis time (min/max/mean)\n%-14s %-28s %-28s %8s\n", "Scenario", "TECCL", "SyCCL", "Speedup")
	f := func(lo, hi, mean time.Duration, ok bool) string {
		if !ok {
			return "Time Out"
		}
		return fmt.Sprintf("%s/%s/%s", lo.Round(time.Millisecond), hi.Round(time.Millisecond), mean.Round(time.Millisecond))
	}
	for _, r := range rows {
		sp := "N/A"
		if r.TECCLValid {
			sp = fmt.Sprintf("%.0f×", r.Speedup)
		}
		fmt.Fprintf(&b, "%-14s %-28s %-28s %8s\n", r.Scenario,
			f(r.TECCLMin, r.TECCLMax, r.TECCLMean, r.TECCLValid),
			f(r.SyCCLMin, r.SyCCLMax, r.SyCCLMean, true), sp)
	}
	return b.String()
}

func minD(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxD(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
