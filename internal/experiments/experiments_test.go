package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// quick returns a config sized for unit testing.
func quick() Config {
	return Config{Quick: true, Sizes: []float64{1 << 20, 256 << 20}, TECCLBudget: 300 * time.Millisecond}
}

func TestFig14aShape(t *testing.T) {
	s, err := Fig14a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if r.SyCCL <= 0 || r.NCCL <= 0 {
			t.Fatalf("missing busbw at %s: %+v", SizeLabel(r.Bytes), r)
		}
		// §7.2: SyCCL never loses to NCCL on AllGather A100 (within
		// simulator noise).
		if r.SyCCL < r.NCCL*0.95 {
			t.Errorf("SyCCL %.1f GBps below NCCL %.1f at %s", r.SyCCL/1e9, r.NCCL/1e9, SizeLabel(r.Bytes))
		}
	}
	// Small-size latency advantage must be pronounced (paper: up to
	// ~0.8× improvement at small sizes).
	if s.Rows[0].SyCCL < s.Rows[0].NCCL*1.2 {
		t.Errorf("small-size speedup too small: %.1f vs %.1f GBps", s.Rows[0].SyCCL/1e9, s.Rows[0].NCCL/1e9)
	}
	if !strings.Contains(s.Format(), "fig14a") {
		t.Error("Format output malformed")
	}
}

func TestFig15aShape(t *testing.T) {
	s, err := Fig15a(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Rows {
		if r.SyCCL < r.NCCL*0.9 {
			t.Errorf("64-GPU H800: SyCCL %.1f below NCCL %.1f at %s", r.SyCCL/1e9, r.NCCL/1e9, SizeLabel(r.Bytes))
		}
	}
	// Large size: SyCCL must exceed NCCL's NVLink-bound ring clearly.
	last := s.Rows[len(s.Rows)-1]
	if last.SyCCL < last.NCCL*1.1 {
		t.Errorf("large-size H800 gain missing: %.1f vs %.1f", last.SyCCL/1e9, last.NCCL/1e9)
	}
}

func TestFig16aSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup comparison is unreliable under the race detector")
	}
	cfg := quick()
	series, err := Fig16a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		for _, r := range s.Rows {
			if !r.TECCLValid {
				t.Errorf("%s: TECCL missing at %s", s.ID, SizeLabel(r.Bytes))
				continue
			}
			// TECCL burns its budget; SyCCL must be faster.
			if r.SyCCL >= r.TECCL {
				t.Errorf("%s at %s: SyCCL %v not faster than TECCL %v", s.ID, SizeLabel(r.Bytes), r.SyCCL, r.TECCL)
			}
		}
		if !strings.Contains(s.Format(), "speedup") {
			t.Error("Format missing speedup column")
		}
	}
}

func TestFig16bBreakdown(t *testing.T) {
	cfg := quick()
	cfg.Sizes = []float64{1 << 20}
	rows, err := Fig16b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // AG + A2A at one size
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Solve1 <= 0 {
			t.Errorf("%v: no solve1 time", r.Kind)
		}
		// §7.3: solving dominates; search+combine stay small.
		if r.Search+r.Combine > 10*(r.Solve1+r.Solve2) {
			t.Errorf("%v: search/combine dominates: %+v", r.Kind, r)
		}
	}
	if !strings.Contains(FormatBreakdown(rows), "solve1") {
		t.Error("FormatBreakdown malformed")
	}
}

func TestFig16cRuns(t *testing.T) {
	rows, err := Fig16c(Config{Quick: true, TECCLBudget: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestTable5Quick(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup comparison is unreliable under the race detector")
	}
	cfg := quick()
	cfg.Sizes = []float64{1 << 20}
	// The budget stands in for the paper's hours-scale timeout; it must
	// sit comfortably above SyCCL's worst quick-mode case (~350ms for
	// 64-GPU AlltoAll) for the speedup assertion to be meaningful.
	cfg.TECCLBudget = 1500 * time.Millisecond
	rows, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // quick mode drops the 512 scenario
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.TECCLValid {
			t.Errorf("%s: TECCL invalid", r.Scenario)
			continue
		}
		if r.Speedup <= 1 {
			t.Errorf("%s: speedup %.1f not > 1", r.Scenario, r.Speedup)
		}
	}
	if !strings.Contains(FormatTable5(rows), "Speedup") {
		t.Error("FormatTable5 malformed")
	}
}

func TestFig17aPruningSavesTime(t *testing.T) {
	cfg := quick()
	cfg.Sizes = []float64{4 << 20}
	rows, err := Fig17a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var off, on *PruneRow
	for i := range rows {
		if rows[i].P1 && rows[i].P2 {
			on = &rows[i]
		}
		if !rows[i].P1 && !rows[i].P2 {
			off = &rows[i]
		}
	}
	if on == nil || off == nil {
		t.Fatal("missing modes")
	}
	// Timing on small quick-mode searches is noisy; pruning must at
	// least not make synthesis meaningfully slower.
	if float64(on.Synth) > float64(off.Synth)*1.5 {
		t.Errorf("pruning on (%v) much slower than off (%v)", on.Synth, off.Synth)
	}
	// "minimal impact on performance": within 15%.
	if on.BusBW < off.BusBW*0.85 {
		t.Errorf("pruning cost too much busbw: %.1f vs %.1f", on.BusBW/1e9, off.BusBW/1e9)
	}
	_ = FormatFig17a(rows)
}

func TestFig17bStageLimit(t *testing.T) {
	cfg := quick()
	cfg.Sizes = []float64{4 << 20}
	rows, err := Fig17b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var s3, s10 *StageRow
	for i := range rows {
		switch rows[i].Stages {
		case 3:
			s3 = &rows[i]
		case 10:
			s10 = &rows[i]
		}
	}
	if s3 == nil || s10 == nil {
		t.Fatal("missing stage rows")
	}
	// ≤3 stages lose nothing on this topology (§7.4).
	if s3.BusBW < s10.BusBW*0.9 {
		t.Errorf("3-stage busbw %.1f below 10-stage %.1f", s3.BusBW/1e9, s10.BusBW/1e9)
	}
	_ = FormatFig17b(rows)
}

func TestFig17cE2Tradeoff(t *testing.T) {
	cfg := quick()
	cfg.Sizes = []float64{64 << 20}
	rows, err := Fig17c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byE2 := map[float64]E2Row{}
	for _, r := range rows {
		byE2[r.E2] = r
	}
	// Coarser E2 must not produce better schedules than finer E2.
	if byE2[1].BusBW > byE2[0.1].BusBW*1.1 {
		t.Errorf("E2=1 busbw %.1f above E2=0.1 %.1f", byE2[1].BusBW/1e9, byE2[0.1].BusBW/1e9)
	}
	_ = FormatFig17c(rows)
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table6 synthesizes many collectives")
	}
	rows, err := Table6(Config{Quick: true, TECCLBudget: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SyCCLms <= 0 || r.NCCLms <= 0 {
			t.Fatalf("%s: empty row", r.Config.Name())
		}
		// The paper reports single-digit-% end-to-end gains; allow a
		// modest overshoot (our simulated NCCL lacks production
		// mid-size tuning) but never a regression.
		if r.VsNCCLPct < -1 || r.VsNCCLPct > 20 {
			t.Errorf("%s: vs NCCL %.1f%% implausible", r.Config.Name(), r.VsNCCLPct)
		}
	}
	if !strings.Contains(FormatTable6(rows), "vs NCCL") {
		t.Error("FormatTable6 malformed")
	}
}

func TestFig21aCraftedParity(t *testing.T) {
	cfg := quick()
	cfg.Sizes = []float64{16 << 10, 256 << 20}
	s, err := Fig21a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Rows {
		if math.IsNaN(r.Crafted) || r.Crafted <= 0 {
			t.Fatalf("crafted missing at %s", SizeLabel(r.Bytes))
		}
		// Appendix C: SyCCL ≈ crafted on the A100 testbed.
		ratio := r.SyCCL / r.Crafted
		if ratio < 0.7 {
			t.Errorf("SyCCL %.1f far below crafted %.1f at %s", r.SyCCL/1e9, r.Crafted/1e9, SizeLabel(r.Bytes))
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[float64]string{1 << 10: "1K", 4 << 20: "4M", 1 << 30: "1G", 512: "512B"}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestPaperSizes(t *testing.T) {
	s := PaperSizes()
	if s[0] != 1<<10 || s[len(s)-1] != 4<<30 {
		t.Errorf("ladder = %v", s)
	}
	if len(s) != 12 {
		t.Errorf("points = %d, want 12", len(s))
	}
}
