package experiments

import (
	"math"
	"time"

	"syccl/internal/collective"
	"syccl/internal/crafted"
	"syccl/internal/metrics"
	"syccl/internal/nccl"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

// Fig14a: AllGather busbw on 16 A100 GPUs (testbed figure).
func Fig14a(cfg Config) (*PerfSeries, error) {
	return perfSweep("fig14a", "AllGather on 16 A100 GPUs", topology.A100Clos(2), collective.KindAllGather, cfg, true, false)
}

// Fig14b: AllGather busbw on 32 A100 GPUs.
func Fig14b(cfg Config) (*PerfSeries, error) {
	return perfSweep("fig14b", "AllGather on 32 A100 GPUs", topology.A100Clos(4), collective.KindAllGather, cfg, true, false)
}

// Fig14c: ReduceScatter busbw on 16 A100 GPUs.
func Fig14c(cfg Config) (*PerfSeries, error) {
	return perfSweep("fig14c", "ReduceScatter on 16 A100 GPUs", topology.A100Clos(2), collective.KindReduceScatter, cfg, true, false)
}

// Fig14d: AlltoAll busbw on 16 A100 GPUs.
func Fig14d(cfg Config) (*PerfSeries, error) {
	return perfSweep("fig14d", "AlltoAll on 16 A100 GPUs", topology.A100Clos(2), collective.KindAlltoAll, cfg, true, false)
}

// Fig15a: AllGather busbw on 64 H800 GPUs (simulation figure).
func Fig15a(cfg Config) (*PerfSeries, error) {
	return perfSweep("fig15a", "AllGather on 64 H800 GPUs", topology.H800Rail(8), collective.KindAllGather, cfg, true, false)
}

// Fig15b: AllGather busbw on 512 H800 GPUs. TECCL timed out with no
// solution in the paper and is likewise skipped here.
func Fig15b(cfg Config) (*PerfSeries, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Sizes) > 6 {
		// The 512-GPU sweep is expensive; sample the ladder.
		cfg.Sizes = []float64{1 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30, 4 << 30}
	}
	return perfSweep("fig15b", "AllGather on 512 H800 GPUs (TECCL timed out)", topology.H800Rail(64), collective.KindAllGather, cfg, false, false)
}

// Fig15c: AlltoAll busbw on 64 H800 GPUs.
func Fig15c(cfg Config) (*PerfSeries, error) {
	return perfSweep("fig15c", "AlltoAll on 64 H800 GPUs", topology.H800Rail(8), collective.KindAlltoAll, cfg, true, false)
}

// craftedSweep measures SyCCL vs NCCL vs the best hand-crafted schedule
// (Appendix C).
func craftedSweep(id, title string, top *topology.Topology, cfg Config, includeImproved bool) (*PerfSeries, error) {
	cfg = cfg.withDefaults()
	n := top.NumGPUs()
	series := &PerfSeries{ID: id, Title: title, GPUs: n}
	for _, size := range cfg.Sizes {
		col := collective.AllGather(n, size/float64(n))
		row := PerfRow{Bytes: size, TECCL: math.NaN()}

		_, t, err := nccl.Schedule(top, col, sim.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row.NCCL = metrics.BusBandwidth(col.Kind, n, size, t)

		_, _, ct, err := crafted.Best(top, col, sim.DefaultOptions(), includeImproved)
		if err != nil {
			return nil, err
		}
		row.Crafted = metrics.BusBandwidth(col.Kind, n, size, ct)

		start := time.Now()
		res, err := cfg.synthesize(top, col, cfg.coreOptions())
		if err != nil {
			return nil, err
		}
		row.SyCCLSynth = time.Since(start)
		row.SyCCL = metrics.BusBandwidth(col.Kind, n, size, res.Time)
		series.Rows = append(series.Rows, row)
	}
	return series, nil
}

// Fig21a: hand-crafted vs NCCL vs SyCCL AllGather on 16 A100 GPUs.
func Fig21a(cfg Config) (*PerfSeries, error) {
	return craftedSweep("fig21a", "Crafted AllGather on 16 A100 GPUs", topology.A100Clos(2), cfg, false)
}

// Fig21b: hand-crafted vs NCCL vs SyCCL AllGather on 64 H800 GPUs.
func Fig21b(cfg Config) (*PerfSeries, error) {
	return craftedSweep("fig21b", "Crafted AllGather on 64 H800 GPUs", topology.H800Rail(8), cfg, false)
}

// Fig22: the improved hand-crafted schedule (distilled from SyCCL's
// winning sketch) vs NCCL vs SyCCL on 64 H800 GPUs.
func Fig22(cfg Config) (*PerfSeries, error) {
	return craftedSweep("fig22", "Improved crafted AllGather on 64 H800 GPUs", topology.H800Rail(8), cfg, true)
}
