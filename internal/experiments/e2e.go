package experiments

import (
	"fmt"
	"strings"

	"syccl/internal/collective"
	"syccl/internal/nccl"
	"syccl/internal/sim"
	"syccl/internal/teccl"
	"syccl/internal/topology"
	"syccl/internal/workload"
)

// Table6Row is one end-to-end training configuration.
type Table6Row struct {
	Config     workload.Config
	NCCLms     float64
	TECCLms    float64
	SyCCLms    float64
	VsNCCLPct  float64 // (NCCL − SyCCL)/NCCL × 100
	VsTECCLPct float64
}

// Table6 evaluates end-to-end training iteration time for GPT3-6.7B and
// Llama3-8B under DP16/TP16/TP32 on the A100 testbed, with schedules from
// NCCL, TECCL, and SyCCL (§7.5). Collective times come from the shared
// α-β simulator; compute terms are calibrated constants (DESIGN.md
// substitution #5).
func Table6(cfg Config) ([]Table6Row, error) {
	cfg = cfg.withDefaults()
	var out []Table6Row
	for _, wc := range workload.Table6Configs() {
		var top *topology.Topology
		switch wc.Degree {
		case 16:
			top = topology.A100Clos(2)
		case 32:
			top = topology.A100Clos(4)
		default:
			return nil, fmt.Errorf("table6: unsupported degree %d", wc.Degree)
		}

		// Memoize per-collective times: DP/TP traces repeat sizes.
		memo := func(timer workload.CollectiveTimer) workload.CollectiveTimer {
			cache := map[string]float64{}
			return func(col *collective.Collective) (float64, error) {
				key := fmt.Sprintf("%v|%d|%g", col.Kind, col.NumGPUs, col.ChunkSize)
				if v, ok := cache[key]; ok {
					return v, nil
				}
				v, err := timer(col)
				if err != nil {
					return 0, err
				}
				cache[key] = v
				return v, nil
			}
		}

		ncclTimer := memo(func(col *collective.Collective) (float64, error) {
			_, t, err := nccl.Schedule(top, col, sim.DefaultOptions())
			return t, err
		})
		tecclTimer := memo(func(col *collective.Collective) (float64, error) {
			res, err := teccl.Synthesize(top, col, cfg.tecclOptions())
			if err != nil {
				return 0, err
			}
			return res.Time, nil
		})
		sycclTimer := memo(func(col *collective.Collective) (float64, error) {
			res, err := cfg.synthesize(top, col, cfg.coreOptions())
			if err != nil {
				return 0, err
			}
			return res.Time, nil
		})

		row := Table6Row{Config: wc}
		n, err := wc.IterationSeconds(ncclTimer)
		if err != nil {
			return nil, fmt.Errorf("table6 %s nccl: %w", wc.Name(), err)
		}
		t, err := wc.IterationSeconds(tecclTimer)
		if err != nil {
			return nil, fmt.Errorf("table6 %s teccl: %w", wc.Name(), err)
		}
		s, err := wc.IterationSeconds(sycclTimer)
		if err != nil {
			return nil, fmt.Errorf("table6 %s syccl: %w", wc.Name(), err)
		}
		row.NCCLms, row.TECCLms, row.SyCCLms = n*1e3, t*1e3, s*1e3
		row.VsNCCLPct = (n - s) / n * 100
		row.VsTECCLPct = (t - s) / t * 100
		out = append(out, row)
	}
	return out, nil
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: end-to-end training iteration time (ms)\n%-20s %9s %9s %9s %9s %9s\n",
		"Model", "NCCL", "TECCL", "SyCCL", "vs NCCL", "vs TECCL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9.1f %9.1f %9.1f %8.1f%% %8.1f%%\n",
			r.Config.Name(), r.NCCLms, r.TECCLms, r.SyCCLms, r.VsNCCLPct, r.VsTECCLPct)
	}
	return b.String()
}
