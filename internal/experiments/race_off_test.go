//go:build !race

package experiments

// raceEnabled reports whether the race detector is active; wall-clock
// comparisons (SyCCL vs TECCL synthesis time) are skipped under it
// because instrumentation slows the two systems unevenly.
const raceEnabled = false
