package experiments

import (
	"fmt"
	"strings"
	"time"

	"syccl/internal/collective"
	"syccl/internal/metrics"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

// The §7.4 microbenchmark cluster: H800 servers scaled to 4 GPUs, 6
// servers.
func ablationTopology() *topology.Topology { return topology.H800Small(6) }

// PruneRow is one point of Fig 17a: synthesis time and busbw with the
// §4.1 pruning strategies toggled.
type PruneRow struct {
	Bytes  float64
	P1, P2 bool // pruning #1 / #2 enabled
	Synth  time.Duration
	BusBW  float64
}

// Fig17a compares synthesis with and without prunings #1 (isomorphism
// dedupe) and #2 (cross-group consistency) on the scaled-down H800
// cluster.
func Fig17a(cfg Config) ([]PruneRow, error) {
	cfg = cfg.withDefaults()
	top := ablationTopology()
	n := top.NumGPUs()
	var out []PruneRow
	for _, size := range cfg.Sizes {
		for _, mode := range []struct{ p1, p2 bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
			col := collective.AllGather(n, size/float64(n))
			opts := cfg.coreOptions()
			opts.Search = sketch.SearchOptions{
				DisablePrune1: !mode.p1,
				DisablePrune2: !mode.p2,
				// With prunings off the space explodes; the paper's
				// runs also bound exploration, via solver timeouts.
				MaxSketches: 256,
			}
			start := time.Now()
			res, err := cfg.synthesizeCold(top, col, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, PruneRow{
				Bytes: size, P1: mode.p1, P2: mode.p2,
				Synth: time.Since(start),
				BusBW: metrics.BusBandwidth(col.Kind, n, size, res.Time),
			})
		}
	}
	return out, nil
}

// FormatFig17a renders the pruning ablation.
func FormatFig17a(rows []PruneRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig17a: pruning ablation (24-GPU H800)\n%8s %8s %8s %12s %12s\n", "size", "#1", "#2", "synth", "busbw GBps")
	onoff := func(v bool) string {
		if v {
			return "on"
		}
		return "off"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %8s %8s %12s %12.1f\n", SizeLabel(r.Bytes), onoff(r.P1), onoff(r.P2),
			r.Synth.Round(time.Millisecond), r.BusBW/1e9)
	}
	return b.String()
}

// StageRow is one point of Fig 17b: the Alltoall stage limit (pruning #3).
type StageRow struct {
	Bytes  float64
	Stages int
	Synth  time.Duration
	BusBW  float64
}

// Fig17b sweeps the maximum stage count for AlltoAll synthesis,
// reproducing the observation that ≤3 stages lose nothing on this
// topology while slashing synthesis time versus a 10-stage bound.
func Fig17b(cfg Config) ([]StageRow, error) {
	cfg = cfg.withDefaults()
	top := ablationTopology()
	n := top.NumGPUs()
	stageLimits := []int{3, 5, 10}
	var out []StageRow
	for _, size := range cfg.Sizes {
		for _, limit := range stageLimits {
			col := collective.AlltoAll(n, size/float64(n*(n-1)))
			opts := cfg.coreOptions()
			opts.Search = sketch.SearchOptions{MaxStages: limit, MaxSketches: 128}
			start := time.Now()
			res, err := cfg.synthesizeCold(top, col, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, StageRow{
				Bytes: size, Stages: limit,
				Synth: time.Since(start),
				BusBW: metrics.BusBandwidth(col.Kind, n, size, res.Time),
			})
		}
	}
	return out, nil
}

// FormatFig17b renders the stage-limit ablation.
func FormatFig17b(rows []StageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig17b: AlltoAll stage limit (24-GPU H800)\n%8s %8s %12s %12s\n", "size", "stages", "synth", "busbw GBps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %8d %12s %12.1f\n", SizeLabel(r.Bytes), r.Stages,
			r.Synth.Round(time.Millisecond), r.BusBW/1e9)
	}
	return b.String()
}

// E2Row is one point of Fig 17c: the fine-pass epoch knob E2.
type E2Row struct {
	Bytes    float64
	E2       float64
	MaxSolve time.Duration // longest single sub-demand solve
	BusBW    float64
}

// Fig17c sweeps E2 ∈ {0.1, 0.2, 1}: smaller E2 means finer epochs,
// longer per-demand solves and (up to a point) better schedules —
// the accuracy/efficiency trade-off of §5.3/Appendix A.
func Fig17c(cfg Config) ([]E2Row, error) {
	cfg = cfg.withDefaults()
	top := ablationTopology()
	n := top.NumGPUs()
	var out []E2Row
	for _, size := range cfg.Sizes {
		for _, e2 := range []float64{0.1, 0.2, 1} {
			col := collective.AllGather(n, size/float64(n))
			opts := cfg.coreOptions()
			opts.E2 = e2
			res, err := cfg.synthesizeCold(top, col, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, E2Row{
				Bytes: size, E2: e2,
				MaxSolve: res.Stats.MaxSolve,
				BusBW:    metrics.BusBandwidth(col.Kind, n, size, res.Time),
			})
		}
	}
	return out, nil
}

// FormatFig17c renders the E2 ablation.
func FormatFig17c(rows []E2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig17c: E2 epoch knob (24-GPU H800)\n%8s %8s %14s %12s\n", "size", "E2", "max solve", "busbw GBps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %8g %14s %12.1f\n", SizeLabel(r.Bytes), r.E2,
			r.MaxSolve.Round(time.Microsecond), r.BusBW/1e9)
	}
	return b.String()
}
