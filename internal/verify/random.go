package verify

import (
	"fmt"
	"math/rand"
	"sort"

	"syccl/internal/collective"
	"syccl/internal/schedule"
	"syccl/internal/topology"
)

// randShape is one topology family the generator draws from. Shapes are
// curated so that topology.Build's symmetry validation always holds (the
// cyclic action on non-power-of-two axes is only valid without nested
// blocks); α, β, and the NVLink:network bandwidth ratio are randomized per
// draw, so dimension count, group sizes, and link costs all vary.
type randShape struct {
	servers, gpus  int
	serversPerLeaf int
	leavesPerSpine int
	withCore       bool
}

var randShapes = []randShape{
	{servers: 1, gpus: 4},
	{servers: 1, gpus: 8},
	{servers: 2, gpus: 2},
	{servers: 2, gpus: 4},
	{servers: 3, gpus: 2},
	{servers: 3, gpus: 4},
	{servers: 4, gpus: 2},
	{servers: 4, gpus: 4},
	{servers: 2, gpus: 8},
	{servers: 4, gpus: 2, serversPerLeaf: 4}, // one leaf over all servers
	{servers: 4, gpus: 2, serversPerLeaf: 2, leavesPerSpine: 2},                 // Clos + spine
	{servers: 4, gpus: 4, serversPerLeaf: 2, leavesPerSpine: 2},                 // Clos, 2 leaves, 1 spine
	{servers: 8, gpus: 2, serversPerLeaf: 2, leavesPerSpine: 2, withCore: true}, // Clos + core
	{servers: 4, gpus: 4, leavesPerSpine: 2, withCore: true},                    // multi-rail, Fig 3 shape
}

// RandomTopology draws a random topology: random dimension structure
// (server/GPU grid, rail vs Clos tiers) and random α-β link parameters.
func RandomTopology(rng *rand.Rand) *topology.Topology {
	sh := randShapes[rng.Intn(len(randShapes))]
	nvBW := 50e9 * (1 + 7*rng.Float64())     // 50..400 GB/s
	netBW := nvBW / (1 + 15*rng.Float64())   // 1x..16x slower than NVLink
	nvAlpha := 1e-6 * (1 + 4*rng.Float64())  // 1..5 µs
	netAlpha := 5e-6 * (1 + 3*rng.Float64()) // 5..20 µs
	return topology.Build(topology.Config{
		Name:           fmt.Sprintf("rand-%dx%d", sh.servers, sh.gpus),
		Servers:        sh.servers,
		GPUsPerServer:  sh.gpus,
		NVAlpha:        nvAlpha,
		NVBeta:         1 / nvBW,
		NetAlpha:       netAlpha,
		NetBeta:        1 / netBW,
		ServersPerLeaf: sh.serversPerLeaf,
		LeavesPerSpine: sh.leavesPerSpine,
		WithCore:       sh.withCore,
	})
}

// AllKinds lists the nine standard collectives.
var AllKinds = []collective.Kind{
	collective.KindSendRecv, collective.KindBroadcast, collective.KindScatter,
	collective.KindGather, collective.KindReduce, collective.KindAllGather,
	collective.KindAlltoAll, collective.KindReduceScatter, collective.KindAllReduce,
}

// RandomCollective draws a collective of the given kind on n GPUs with a
// random root and a random chunk size (log-uniform 1 KiB..1 MiB).
func RandomCollective(rng *rand.Rand, kind collective.Kind, n int) *collective.Collective {
	size := float64(int64(1)<<(10+rng.Intn(11))) * (1 + rng.Float64())
	root := rng.Intn(n)
	switch kind {
	case collective.KindSendRecv:
		dst := rng.Intn(n - 1)
		if dst >= root {
			dst++
		}
		return collective.SendRecv(n, root, dst, size)
	case collective.KindBroadcast:
		return collective.Broadcast(n, root, size)
	case collective.KindScatter:
		return collective.Scatter(n, root, size)
	case collective.KindGather:
		return collective.Gather(n, root, size)
	case collective.KindReduce:
		return collective.Reduce(n, root, size)
	case collective.KindAllGather:
		return collective.AllGather(n, size)
	case collective.KindAlltoAll:
		return collective.AlltoAll(n, size)
	case collective.KindReduceScatter:
		return collective.ReduceScatter(n, size)
	case collective.KindAllReduce:
		return collective.AllReduce(n, size*float64(n))
	default:
		panic(fmt.Sprintf("verify: no generator for %v", kind))
	}
}

// PermuteCollective relabels every GPU reference of the collective through
// perm (a bijection over 0..NumGPUs-1): chunk sources, destinations, and
// the root. Chunk IDs and sizes are untouched, so the result is the
// isomorphic image of the demand under the relabeling.
func PermuteCollective(col *collective.Collective, perm []int) *collective.Collective {
	out := &collective.Collective{
		Kind: col.Kind, NumGPUs: col.NumGPUs, ChunkSize: col.ChunkSize,
		Reduce: col.Reduce, Root: col.Root,
	}
	if col.Root >= 0 {
		out.Root = perm[col.Root]
	}
	for _, ch := range col.Chunks {
		nc := collective.Chunk{ID: ch.ID, Src: perm[ch.Src]}
		nc.Dsts = make([]int, len(ch.Dsts))
		for i, d := range ch.Dsts {
			nc.Dsts[i] = perm[d]
		}
		sort.Ints(nc.Dsts)
		out.Chunks = append(out.Chunks, nc)
	}
	return out
}

// PermuteSchedule relabels every transfer endpoint of the schedule through
// perm. Piece chunk IDs are untouched: chunk c of the original collective
// corresponds to chunk c of the permuted collective (PermuteCollective),
// whose source and destinations moved with the same relabeling.
func PermuteSchedule(s *schedule.Schedule, perm []int) *schedule.Schedule {
	out := s.Clone()
	for i := range out.Transfers {
		out.Transfers[i].Src = perm[out.Transfers[i].Src]
		out.Transfers[i].Dst = perm[out.Transfers[i].Dst]
	}
	return out
}

// CheckDimInvariance verifies that a GPU relabeling is an automorphism of
// the topology's extracted dimensions: the image of every group of every
// dimension must again be a group of that dimension. This is the property
// the symmetry-replication machinery (§4.2) and the permutation
// metamorphic tests both rest on.
func CheckDimInvariance(top *topology.Topology, perm []int) error {
	if len(perm) != top.NumGPUs() {
		return fmt.Errorf("verify: permutation over %d GPUs, topology has %d", len(perm), top.NumGPUs())
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("verify: not a permutation: %v", perm)
		}
		seen[p] = true
	}
	for d := 0; d < top.NumDims(); d++ {
		dim := top.Dim(d)
		for gi, grp := range dim.Groups {
			img := make([]int, len(grp))
			for i, g := range grp {
				img[i] = perm[g]
			}
			sort.Ints(img)
			tg := dim.GroupOf(img[0])
			if tg < 0 {
				return fmt.Errorf("verify: dim %s: image of group %d leaves the dimension", dim.Name, gi)
			}
			target := dim.Groups[tg]
			if len(target) != len(img) {
				return fmt.Errorf("verify: dim %s: group %d maps onto a group of different size", dim.Name, gi)
			}
			for i := range img {
				if img[i] != target[i] {
					return fmt.Errorf("verify: dim %s: relabeling splits group %d (image %v vs group %v)",
						dim.Name, gi, img, target)
				}
			}
		}
	}
	return nil
}
