package verify

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

const parityTol = 1e-9

// checkParity runs internal/sim and the reference simulator on the same
// schedule and demands agreement to 1e-9 on the completion time and every
// per-transfer arrival.
func checkParity(t *testing.T, top *topology.Topology, s *schedule.Schedule, opts sim.Options) {
	t.Helper()
	got, err := sim.Simulate(top, s, opts)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	want, err := ReferenceSimulate(top, s, opts.BlockBytes, opts.MaxBlocks)
	if err != nil {
		t.Fatalf("refsim: %v", err)
	}
	if math.Abs(got.Time-want.Time) > parityTol {
		t.Fatalf("completion time: sim %.12g vs refsim %.12g (Δ=%g)",
			got.Time, want.Time, got.Time-want.Time)
	}
	for i := range s.Transfers {
		if math.Abs(got.FinishAt[i]-want.FinishAt[i]) > parityTol {
			t.Fatalf("transfer %d arrival: sim %.12g vs refsim %.12g",
				i, got.FinishAt[i], want.FinishAt[i])
		}
	}
}

// checkDifferential pushes one (topology, collective) pair through the full
// pipeline and both independent checkers: synthesize, replay through the
// chunk oracle, and compare the two simulators.
func checkDifferential(t *testing.T, top *topology.Topology, col *collective.Collective, opts sim.Options) *core.Result {
	t.Helper()
	res, err := core.Synthesize(top, col, core.Options{Sim: opts})
	if err != nil {
		t.Fatalf("synthesize %v on %s: %v", col.Kind, top.Name, err)
	}
	if err := CheckSchedule(col, res.Schedule); err != nil {
		t.Fatalf("oracle rejects synthesized %v on %s: %v", col.Kind, top.Name, err)
	}
	checkParity(t, top, res.Schedule, opts)
	return res
}

// TestDifferentialRandomized drives ≥200 randomized (topology, collective)
// pairs through synthesis and checks every schedule against both the chunk
// oracle and the reference simulator. Pipelining options are varied so the
// block-planning paths of the two simulators are compared too.
func TestDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const cases = 200
	for i := 0; i < cases; i++ {
		top := RandomTopology(rng)
		kind := AllKinds[i%len(AllKinds)]
		col := RandomCollective(rng, kind, top.NumGPUs())
		opts := sim.DefaultOptions()
		switch i % 3 {
		case 1:
			opts = sim.Options{} // pipelining off
		case 2:
			opts = sim.Options{BlockBytes: 64 * 1024, MaxBlocks: 4}
		}
		t.Run(fmt.Sprintf("%03d-%v-%s", i, kind, top.Name), func(t *testing.T) {
			checkDifferential(t, top, col, opts)
		})
	}
}

func paperTopologies() []*topology.Topology {
	return []*topology.Topology{
		topology.A100Clos(2),  // Fig 13a, 16-GPU A100 testbed
		topology.H800Rail(2),  // Fig 13b family, rail-optimized H800
		topology.H800Small(6), // §7.4 6×4 microbenchmark cluster
		topology.Fig3(),       // worked-example multi-rail cluster
	}
}

// TestDifferentialPaperTopologies covers every paper topology × all nine
// collectives with both checkers.
func TestDifferentialPaperTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, top := range paperTopologies() {
		for _, kind := range AllKinds {
			col := RandomCollective(rng, kind, top.NumGPUs())
			t.Run(fmt.Sprintf("%s/%v", top.Name, kind), func(t *testing.T) {
				checkDifferential(t, top, col, sim.DefaultOptions())
			})
		}
	}
}

// TestPermutationSymmetrySim is the strict metamorphic invariant: relabeling
// a schedule's GPUs by a topology automorphism changes nothing the cost
// model can see, so the simulated time must be bit-for-bit comparable
// (within 1e-9) — on both simulators.
func TestPermutationSymmetrySim(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, top := range []*topology.Topology{topology.A100Clos(2), topology.H800Small(6)} {
		for _, kind := range []collective.Kind{collective.KindAllGather, collective.KindReduce, collective.KindAlltoAll} {
			col := RandomCollective(rng, kind, top.NumGPUs())
			res, err := core.Synthesize(top, col, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			base, err := sim.Simulate(top, res.Schedule, sim.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			perms := top.Sym.All()
			for pi, gp := range perms {
				if len(perms) > 8 && pi%((len(perms)+7)/8) != 0 {
					continue // sample ~8 automorphisms per topology
				}
				perm := top.Sym.Permutation(gp)
				if err := CheckDimInvariance(top, perm); err != nil {
					t.Fatalf("%s perm %d: %v", top.Name, pi, err)
				}
				ps := PermuteSchedule(res.Schedule, perm)
				checkParity(t, top, ps, sim.DefaultOptions())
				got, err := sim.Simulate(top, ps, sim.DefaultOptions())
				if err != nil {
					t.Fatalf("%s perm %d: permuted schedule unsimulatable: %v", top.Name, pi, err)
				}
				if math.Abs(got.Time-base.Time) > parityTol {
					t.Fatalf("%s %v perm %d: time %.12g vs base %.12g",
						top.Name, kind, pi, got.Time, base.Time)
				}
			}
		}
	}
}

// TestPermutationSymmetrySynthesize checks the same invariance end-to-end
// through the synthesizer. Synthesis involves heuristic tie-breaking among
// equal-cost candidates, so the bound here is a loose sanity margin, not
// the simulator-level 1e-9.
func TestPermutationSymmetrySynthesize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	top := topology.A100Clos(2)
	for _, kind := range []collective.Kind{collective.KindBroadcast, collective.KindScatter, collective.KindReduce} {
		col := RandomCollective(rng, kind, top.NumGPUs())
		base, err := core.Synthesize(top, col, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		perms := top.Sym.All()
		gp := perms[rng.Intn(len(perms))]
		perm := top.Sym.Permutation(gp)
		pcol := PermuteCollective(col, perm)
		got, err := core.Synthesize(top, pcol, core.Options{})
		if err != nil {
			t.Fatalf("%v permuted: %v", kind, err)
		}
		if rel := math.Abs(got.Time-base.Time) / base.Time; rel > 0.05 {
			t.Fatalf("%v: permuted-input synthesis time %.6g vs %.6g (%.1f%% apart)",
				kind, got.Time, base.Time, 100*rel)
		}
	}
}

// TestMirrorSatisfiesReduce: mirroring a valid Broadcast schedule (with the
// all-contributions piece remap) must yield a schedule the oracle accepts
// for the Reduce of the same size and root.
func TestMirrorSatisfiesReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, top := range []*topology.Topology{topology.H800Small(2), topology.A100Clos(2)} {
		n := top.NumGPUs()
		root := rng.Intn(n)
		size := 256 * 1024.0
		fwd, err := core.Synthesize(top, collective.Broadcast(n, root, size), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		red := collective.Reduce(n, root, size)
		all := make([]int, len(red.Chunks))
		for i := range all {
			all[i] = i
		}
		mirrored := fwd.Schedule.Mirror(func(p schedule.Piece) schedule.Piece {
			return schedule.Piece{Chunks: all, Bytes: p.Bytes}
		})
		if err := mirrored.Validate(red); err != nil {
			t.Fatalf("%s: Validate rejects mirror: %v", top.Name, err)
		}
		if err := CheckSchedule(red, mirrored); err != nil {
			t.Fatalf("%s: oracle rejects mirror: %v", top.Name, err)
		}
		checkParity(t, top, mirrored, sim.DefaultOptions())
	}
}

// TestConcatSatisfiesAllReduce rebuilds the paper's AllReduce composition by
// hand — mirror an AllGather schedule into its ReduceScatter, concatenate —
// and demands the oracle accept the result as an AllReduce.
func TestConcatSatisfiesAllReduce(t *testing.T) {
	for _, top := range []*topology.Topology{topology.H800Small(2), topology.Fig3()} {
		n := top.NumGPUs()
		per := 128 * 1024.0
		agCol := collective.AllGather(n, per)
		rsCol := collective.ReduceScatter(n, per)
		ag, err := core.Synthesize(top, agCol, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		byDst := map[int][]int{}
		for _, ch := range rsCol.Chunks {
			byDst[ch.Dsts[0]] = append(byDst[ch.Dsts[0]], ch.ID)
		}
		rs := ag.Schedule.Mirror(func(p schedule.Piece) schedule.Piece {
			out := schedule.Piece{Bytes: p.Bytes}
			for _, c := range p.Chunks {
				out.Chunks = append(out.Chunks, byDst[agCol.Chunks[c].Src]...)
			}
			return out
		})
		if err := rs.Validate(rsCol); err != nil {
			t.Fatalf("%s: mirrored ReduceScatter invalid: %v", top.Name, err)
		}
		full := schedule.Concat(rs, ag.Schedule)
		if err := CheckSchedule(collective.AllReduce(n, per*float64(n)), full); err != nil {
			t.Fatalf("%s: oracle rejects Concat(RS, AG) as AllReduce: %v", top.Name, err)
		}
		checkParity(t, top, full, sim.DefaultOptions())
	}
}

// TestBandwidthMonotonicity: raising every link bandwidth (scaling β down)
// can only speed a fixed schedule up. The serving order of the α-β model
// depends on the dependency graph and schedule order alone, so completion
// time is monotone in β.
func TestBandwidthMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	base := topology.Config{
		Name: "mono", Servers: 3, GPUsPerServer: 4,
		NVAlpha: 2e-6, NVBeta: 1 / 200e9, NetAlpha: 8e-6, NetBeta: 1 / 25e9,
	}
	slow := topology.Build(base)
	for _, scale := range []float64{0.5, 0.25, 0.1} {
		cfg := base
		cfg.NVBeta *= scale
		cfg.NetBeta *= scale
		fast := topology.Build(cfg)
		for _, kind := range AllKinds {
			col := RandomCollective(rng, kind, slow.NumGPUs())
			res, err := core.Synthesize(slow, col, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Simulate(slow, res.Schedule, sim.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			ft, err := sim.Simulate(fast, res.Schedule, sim.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if ft.Time > st.Time+parityTol {
				t.Fatalf("%v: %gx bandwidth slowed the schedule: %.6g vs %.6g",
					kind, 1/scale, ft.Time, st.Time)
			}
		}
	}
}
