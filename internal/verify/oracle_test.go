package verify

import (
	"strings"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/schedule"
)

// chain builds a 0→1→…→n-1 relay of one piece.
func chain(n int, bytes float64) *schedule.Schedule {
	s := &schedule.Schedule{NumGPUs: n}
	p := s.AddPiece(bytes, 0)
	prev := -1
	for g := 1; g < n; g++ {
		t := schedule.Transfer{Src: g - 1, Dst: g, Piece: p, Dim: 0, Order: g}
		if prev >= 0 {
			t.Deps = []int{prev}
		}
		prev = s.AddTransfer(t)
	}
	return s
}

func TestOracleAcceptsChainBroadcast(t *testing.T) {
	col := collective.Broadcast(4, 0, 100)
	if err := CheckSchedule(col, chain(4, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRejectsUndelivered(t *testing.T) {
	col := collective.Broadcast(4, 0, 100)
	s := chain(3, 100)
	s.NumGPUs = 4
	err := CheckSchedule(col, s)
	if err == nil || !strings.Contains(err.Error(), "delivers") {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleRejectsPhantomSender(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &schedule.Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0)
	s.AddTransfer(schedule.Transfer{Src: 2, Dst: 1, Piece: p, Dim: 0})
	if err := CheckSchedule(col, s); err == nil {
		t.Fatal("accepted send from a GPU guaranteed nothing of the piece")
	}
}

func TestOracleRejectsRelayWithoutArrivalDep(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &schedule.Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Dim: 0}) // no dep
	if err := CheckSchedule(col, s); err == nil {
		t.Fatal("accepted relay without a guaranteed arrival")
	}
}

func TestOracleRejectsCycle(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &schedule.Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Deps: []int{1}})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Deps: []int{0}})
	err := CheckSchedule(col, s)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

// TestOracleCatchesDoubleReduction is the oracle's reason to exist: a
// schedule that folds one GPU's contribution into the root twice — once
// directly, once through a relay. schedule.Validate's dependency-structure
// checks accept it (every transfer individually obeys the inbound-dep
// rule), but the result is numerically wrong. The replay oracle tracks
// contribution multiplicity and rejects it.
func TestOracleCatchesDoubleReduction(t *testing.T) {
	col := collective.Reduce(3, 0, 100)
	s := &schedule.Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0, 1) // the combined slice: contributions of GPUs 1 and 2
	t0 := s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 2, Dst: 0, Piece: p, Dim: 0, Deps: []int{t0}, Order: 1})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 0, Piece: p, Dim: 0, Order: 2}) // GPU 1's contribution again
	if err := s.Validate(col); err != nil {
		t.Fatalf("precondition: Validate must accept this schedule, got %v", err)
	}
	err := CheckSchedule(col, s)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("oracle must reject the double reduction, got %v", err)
	}
}

func TestOracleRejectsRelayDoubleFold(t *testing.T) {
	// GPU 2 receives GPU 1's contribution and also sources nothing new,
	// then a second inbound transfer repeats the contribution before 2
	// forwards: the fold at the relay itself is doubled.
	col := collective.Reduce(4, 0, 100)
	s := &schedule.Schedule{NumGPUs: 4}
	p := s.AddPiece(100, 0, 1, 2)
	a := s.AddTransfer(schedule.Transfer{Src: 1, Dst: 3, Piece: p, Dim: 0})
	b := s.AddTransfer(schedule.Transfer{Src: 1, Dst: 3, Piece: p, Dim: 0, Order: 1})
	s.AddTransfer(schedule.Transfer{Src: 3, Dst: 0, Piece: p, Dim: 0, Deps: []int{a, b}, Order: 2})
	err := CheckSchedule(col, s)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleAcceptsReductionTree(t *testing.T) {
	// 3→1, then 1→0 and 2→0: a proper binary-ish reduction into root 0.
	col := collective.Reduce(4, 0, 100)
	s := &schedule.Schedule{NumGPUs: 4}
	p := s.AddPiece(100, 0, 1, 2)
	t0 := s.AddTransfer(schedule.Transfer{Src: 3, Dst: 1, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 0, Piece: p, Dim: 0, Deps: []int{t0}, Order: 1})
	s.AddTransfer(schedule.Transfer{Src: 2, Dst: 0, Piece: p, Dim: 0, Order: 1})
	if err := CheckSchedule(col, s); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(col); err != nil {
		t.Fatalf("cross-check: Validate rejects the same tree: %v", err)
	}
}

func TestOracleSplitPieces(t *testing.T) {
	// Broadcast split into two half-chunks on different routes.
	col := collective.Broadcast(3, 0, 100)
	s := &schedule.Schedule{NumGPUs: 3}
	pa := s.AddPiece(50, 0)
	pb := s.AddPiece(50, 0)
	a0 := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: pa})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: pa, Deps: []int{a0}})
	b0 := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 2, Piece: pb})
	s.AddTransfer(schedule.Transfer{Src: 2, Dst: 1, Piece: pb, Deps: []int{b0}})
	if err := CheckSchedule(col, s); err != nil {
		t.Fatal(err)
	}
	// Dropping one route starves both non-root GPUs of half the chunk.
	s.Transfers = s.Transfers[:2]
	if err := CheckSchedule(col, s); err == nil {
		t.Fatal("accepted half-delivered broadcast")
	}
}

func TestOracleOverReduction(t *testing.T) {
	// Two full-size pieces both carrying GPU 1's contribution to the root:
	// 2× the chunk folded in. Exactly-once must fail on byte accounting.
	col := collective.Reduce(2, 0, 100)
	s := &schedule.Schedule{NumGPUs: 2}
	pa := s.AddPiece(100, 0)
	pb := s.AddPiece(100, 0)
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 0, Piece: pa})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 0, Piece: pb, Order: 1})
	err := CheckSchedule(col, s)
	if err == nil || !strings.Contains(err.Error(), "over-reduced") {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleRejectsMissingCrossPhaseBarrier(t *testing.T) {
	// A hand-built two-GPU AllReduce where the AllGather phase does not
	// wait for the reduction to land: the barrier check must fire.
	n := 2
	rs := &schedule.Schedule{NumGPUs: n}
	// ReduceScatter on 2 GPUs: chunk 0 = (dst 0 ← src 1), chunk 1 = (dst 1 ← src 0).
	p0 := rs.AddPiece(50, 0)
	p1 := rs.AddPiece(50, 1)
	rs.AddTransfer(schedule.Transfer{Src: 1, Dst: 0, Piece: p0, Dim: 0})
	rs.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p1, Dim: 0})
	ag := &schedule.Schedule{NumGPUs: n}
	q0 := ag.AddPiece(50, 0)
	q1 := ag.AddPiece(50, 1)
	ag.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: q0, Dim: 0})
	ag.AddTransfer(schedule.Transfer{Src: 1, Dst: 0, Piece: q1, Dim: 0})

	col := collective.AllReduce(n, 100)
	good := schedule.Concat(rs, ag)
	if err := CheckSchedule(col, good); err != nil {
		t.Fatalf("well-formed AllReduce rejected: %v", err)
	}
	// Strip the cross-phase dependencies: now GPU 0 gathers its slice
	// before the reduction into it completed.
	bad := good.Clone()
	for i := range bad.Transfers {
		if bad.Transfers[i].Order >= schedule.PhaseOrderBase {
			bad.Transfers[i].Deps = nil
		}
	}
	err := CheckSchedule(col, bad)
	if err == nil || !strings.Contains(err.Error(), "wait for reduction") {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleRejectsNonPhasedAllReduce(t *testing.T) {
	col := collective.AllReduce(2, 100)
	s := &schedule.Schedule{NumGPUs: 2}
	p := s.AddPiece(50, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	if err := CheckSchedule(col, s); err == nil {
		t.Fatal("accepted a single-phase AllReduce schedule")
	}
}

func TestOracleCrossChecksConstructorSpec(t *testing.T) {
	// A corrupted collective (wrong chunk source) must be flagged by the
	// independent Table-1 re-derivation even before replay.
	col := collective.AllGather(4, 64)
	col.Chunks[2].Src = 3
	err := CheckSchedule(col, &schedule.Schedule{NumGPUs: 4})
	if err == nil || !strings.Contains(err.Error(), "sourced at") {
		t.Fatalf("err = %v", err)
	}
}
