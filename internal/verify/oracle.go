// Package verify is the differential verification harness: an independent
// second opinion on everything schedule.Validate and the α-β simulator
// (internal/sim) claim.
//
// It provides three tools, each deliberately sharing no implementation code
// with the subsystem it cross-checks:
//
//   - a chunk-replay oracle (CheckSchedule) that replays a schedule
//     transfer-by-transfer over per-rank contribution sets and checks the
//     postcondition of each of the nine collectives from first principles
//     (Table 1 semantics re-derived from the Kind, not read back from the
//     collective's chunk list);
//   - a reference simulator (ReferenceSimulate) — a naive O(E²) discrete
//     replay of the per-link FIFO + source-readiness semantics whose
//     completion times must match internal/sim to 1e-9;
//   - randomized topology/collective generators and permutation machinery
//     (random.go) feeding metamorphic invariants checked end-to-end
//     through core.Synthesize.
//
// The oracle is intentionally *not* equivalent to schedule.Validate. The
// two differ in documented, direction-specific ways:
//
//   - For non-reduce collectives, Validate-accepted schedules are always
//     oracle-accepted (fuzzed as FuzzValidate), but the oracle accepts some
//     schedules Validate rejects (e.g. over-provisioned piece coverage,
//     which is wasteful but correct).
//   - For reduce collectives the oracle is strictly stronger on semantics:
//     it tracks contribution multiplicity and rejects schedules where a
//     contribution is folded into a destination twice, which Validate's
//     dependency-structure checks cannot see.
package verify

import (
	"fmt"

	"syccl/internal/collective"
	"syccl/internal/schedule"
)

// tol is the relative byte tolerance for coverage checks, matching the
// solver's fractional-split rounding slack.
const tol = 1e-6

// chunkSpec is the oracle's own statement of one chunk's demand: where the
// data starts and which ranks must end up holding it.
type chunkSpec struct {
	src  int
	dsts []int
}

// expectedSpec re-derives the collective's demand map from its Kind — an
// independent implementation of the Table 1 semantics. It returns an error
// if the collective's declared chunk list disagrees with the derivation,
// which cross-checks the constructors in internal/collective as a side
// effect. AllReduce is handled by CheckAllReduce and rejected here.
func expectedSpec(col *collective.Collective) ([]chunkSpec, error) {
	n := col.NumGPUs
	others := func(skip int) []int {
		out := make([]int, 0, n-1)
		for g := 0; g < n; g++ {
			if g != skip {
				out = append(out, g)
			}
		}
		return out
	}
	var spec []chunkSpec
	switch col.Kind {
	case collective.KindSendRecv:
		// The destination is free-form; read it from the declaration but
		// insist on the one-to-one shape.
		if len(col.Chunks) != 1 || len(col.Chunks[0].Dsts) != 1 {
			return nil, fmt.Errorf("verify: SendRecv must have one chunk with one destination")
		}
		spec = []chunkSpec{{src: col.Root, dsts: []int{col.Chunks[0].Dsts[0]}}}
	case collective.KindBroadcast:
		spec = []chunkSpec{{src: col.Root, dsts: others(col.Root)}}
	case collective.KindScatter:
		for _, d := range others(col.Root) {
			spec = append(spec, chunkSpec{src: col.Root, dsts: []int{d}})
		}
	case collective.KindGather, collective.KindReduce:
		for _, s := range others(col.Root) {
			spec = append(spec, chunkSpec{src: s, dsts: []int{col.Root}})
		}
	case collective.KindAllGather:
		for g := 0; g < n; g++ {
			spec = append(spec, chunkSpec{src: g, dsts: others(g)})
		}
	case collective.KindAlltoAll:
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					spec = append(spec, chunkSpec{src: s, dsts: []int{d}})
				}
			}
		}
	case collective.KindReduceScatter:
		for d := 0; d < n; d++ {
			for s := 0; s < n; s++ {
				if s != d {
					spec = append(spec, chunkSpec{src: s, dsts: []int{d}})
				}
			}
		}
	default:
		return nil, fmt.Errorf("verify: no oracle spec for %v", col.Kind)
	}
	if len(spec) != len(col.Chunks) {
		return nil, fmt.Errorf("verify: %v declares %d chunks, Table 1 semantics give %d",
			col.Kind, len(col.Chunks), len(spec))
	}
	for i, sp := range spec {
		ch := col.Chunks[i]
		if ch.Src != sp.src {
			return nil, fmt.Errorf("verify: %v chunk %d sourced at %d, expected %d", col.Kind, i, ch.Src, sp.src)
		}
		if len(ch.Dsts) != len(sp.dsts) {
			return nil, fmt.Errorf("verify: %v chunk %d has %d destinations, expected %d",
				col.Kind, i, len(ch.Dsts), len(sp.dsts))
		}
		for j, d := range sp.dsts {
			if ch.Dsts[j] != d {
				return nil, fmt.Errorf("verify: %v chunk %d destination %d is %d, expected %d",
					col.Kind, i, j, ch.Dsts[j], d)
			}
		}
	}
	return spec, nil
}

// replay is the oracle's state machine over one schedule.
type replay struct {
	col  *collective.Collective
	s    *schedule.Schedule
	spec []chunkSpec

	// payload[i] is the set of chunk contributions transfer i is
	// *guaranteed* to carry: the sender's own origin contributions plus
	// everything delivered by the inbound transfers of the same piece that
	// the transfer explicitly depends on. nil means not yet resolved.
	payload []map[int]bool
	// color is the DFS state for cycle detection: 0 white, 1 grey, 2 black.
	color []int8
}

// isReduce reports whether piece p behaves as a combining reduction slice
// (multiple contributions travelling as one payload).
func (r *replay) isReduce(p int) bool {
	return r.col.Reduce && len(r.s.Pieces[p].Chunks) > 1
}

// ownContrib returns the contributions rank g holds of piece p before any
// transfer runs: the chunks of p that g itself sources.
func (r *replay) ownContrib(g, p int) map[int]bool {
	out := make(map[int]bool)
	for _, c := range r.s.Pieces[p].Chunks {
		if r.spec[c].src == g {
			out[c] = true
		}
	}
	return out
}

// resolve computes payload(i) by memoized depth-first recursion over the
// dependency edges — a deliberately different traversal from the Kahn
// queue in schedule.Validate and the priority heap in internal/sim.
func (r *replay) resolve(i int) (map[int]bool, error) {
	switch r.color[i] {
	case 2:
		return r.payload[i], nil
	case 1:
		return nil, fmt.Errorf("verify: dependency cycle through transfer %d", i)
	}
	r.color[i] = 1
	t := r.s.Transfers[i]
	got := r.ownContrib(t.Src, t.Piece)
	for _, d := range t.Deps {
		dp, err := r.resolve(d)
		if err != nil {
			return nil, err
		}
		dt := r.s.Transfers[d]
		if dt.Piece != t.Piece || dt.Dst != t.Src {
			continue // a timing-only dependency carries no payload
		}
		for c := range dp {
			if got[c] && r.isReduce(t.Piece) {
				return nil, fmt.Errorf("verify: transfer %d folds chunk %d's contribution into GPU %d twice",
					i, c, t.Src)
			}
			got[c] = true
		}
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("verify: transfer %d sends piece %d from GPU %d, which is guaranteed nothing of it",
			i, t.Piece, t.Src)
	}
	if !r.isReduce(t.Piece) {
		// A forward piece is indivisible: holding any of it means holding
		// all of it.
		for _, c := range r.s.Pieces[t.Piece].Chunks {
			got[c] = true
		}
	}
	r.color[i] = 2
	r.payload[i] = got
	return got, nil
}

// CheckSchedule is the chunk-replay oracle: it replays the schedule
// transfer-by-transfer over per-rank contribution sets and checks that the
// collective's postcondition holds — every demanded (chunk, destination)
// pair is delivered in full, and for reduction collectives every
// contribution is folded into its destination exactly once. It shares no
// implementation code with schedule.Validate.
func CheckSchedule(col *collective.Collective, s *schedule.Schedule) error {
	if col.Kind == collective.KindAllReduce {
		return CheckAllReduce(col, s)
	}
	if s.NumGPUs != col.NumGPUs {
		return fmt.Errorf("verify: schedule spans %d GPUs, collective %d", s.NumGPUs, col.NumGPUs)
	}
	spec, err := expectedSpec(col)
	if err != nil {
		return err
	}
	// Structural screening, independent of Validate's.
	for i, t := range s.Transfers {
		if t.Src < 0 || t.Src >= s.NumGPUs || t.Dst < 0 || t.Dst >= s.NumGPUs {
			return fmt.Errorf("verify: transfer %d endpoints %d→%d out of range", i, t.Src, t.Dst)
		}
		if t.Src == t.Dst {
			return fmt.Errorf("verify: transfer %d is a self-loop at GPU %d", i, t.Src)
		}
		if t.Piece < 0 || t.Piece >= len(s.Pieces) {
			return fmt.Errorf("verify: transfer %d references piece %d of %d", i, t.Piece, len(s.Pieces))
		}
		for _, d := range t.Deps {
			if d < 0 || d >= len(s.Transfers) {
				return fmt.Errorf("verify: transfer %d depends on missing transfer %d", i, d)
			}
		}
	}
	for p, piece := range s.Pieces {
		if piece.Bytes < 0 {
			return fmt.Errorf("verify: piece %d has negative size %g", p, piece.Bytes)
		}
		for _, c := range piece.Chunks {
			if c < 0 || c >= len(spec) {
				return fmt.Errorf("verify: piece %d references chunk %d of %d", p, c, len(spec))
			}
		}
	}

	r := &replay{
		col: col, s: s, spec: spec,
		payload: make([]map[int]bool, len(s.Transfers)),
		color:   make([]int8, len(s.Transfers)),
	}
	for i := range s.Transfers {
		if _, err := r.resolve(i); err != nil {
			return err
		}
	}

	// delivered[g][p] accumulates the contributions of piece p that reach
	// rank g: its own origin contributions plus every inbound transfer's
	// payload. For reduction pieces the accumulation must be disjoint —
	// "reductions combine exactly once".
	delivered := make([]map[int]map[int]bool, s.NumGPUs)
	for g := range delivered {
		delivered[g] = make(map[int]map[int]bool)
	}
	at := func(g, p int) map[int]bool {
		m, ok := delivered[g][p]
		if !ok {
			m = r.ownContrib(g, p)
			delivered[g][p] = m
		}
		return m
	}
	for i, t := range s.Transfers {
		acc := at(t.Dst, t.Piece)
		for c := range r.payload[i] {
			if acc[c] && r.isReduce(t.Piece) {
				return fmt.Errorf("verify: chunk %d's contribution reaches GPU %d twice via piece %d (transfer %d)",
					c, t.Dst, t.Piece, i)
			}
			acc[c] = true
		}
	}

	// Postcondition: each demanded (chunk, destination) pair must receive
	// the chunk's full payload, summed over the (fractional) pieces that
	// carry it. Reductions must additionally not over-deliver.
	for c, sp := range spec {
		for _, d := range sp.dsts {
			var got float64
			for p := range s.Pieces {
				if at(d, p)[c] {
					got += s.Pieces[p].Bytes
				}
			}
			if got < col.ChunkSize*(1-tol) {
				return fmt.Errorf("verify: %v: chunk %d delivers %g of %g bytes to GPU %d",
					col.Kind, c, got, col.ChunkSize, d)
			}
			if col.Reduce && got > col.ChunkSize*(1+tol) {
				return fmt.Errorf("verify: %v: chunk %d over-reduced at GPU %d (%g of %g bytes)",
					col.Kind, c, d, got, col.ChunkSize)
			}
		}
	}
	return nil
}

// CheckAllReduce checks a two-phase AllReduce schedule as produced by the
// §4.3 assembly: a ReduceScatter prefix concatenated (schedule.Concat)
// with an AllGather suffix over n-th sized slices. It splits the schedule
// at the PhaseOrderBase watermark, re-checks both phases with the oracle,
// and independently verifies the cross-phase barrier: a GPU may only start
// gathering its slice once every reduction delivery into it has completed.
func CheckAllReduce(col *collective.Collective, s *schedule.Schedule) error {
	if col.Kind != collective.KindAllReduce {
		return fmt.Errorf("verify: CheckAllReduce called on %v", col.Kind)
	}
	n := col.NumGPUs
	if s.NumGPUs != n {
		return fmt.Errorf("verify: schedule spans %d GPUs, collective %d", s.NumGPUs, n)
	}
	// Locate the phase boundary: Concat offsets every phase-b Order by
	// PhaseOrderBase and appends phase-b transfers and pieces after
	// phase-a's.
	transOff := len(s.Transfers)
	for i, t := range s.Transfers {
		if t.Order >= schedule.PhaseOrderBase/2 {
			transOff = i
			break
		}
	}
	if transOff == 0 || transOff == len(s.Transfers) {
		return fmt.Errorf("verify: AllReduce schedule is not in two-phase form (phase split at %d of %d transfers)",
			transOff, len(s.Transfers))
	}
	pieceOff := len(s.Pieces)
	for _, t := range s.Transfers[transOff:] {
		if t.Order < schedule.PhaseOrderBase/2 {
			return fmt.Errorf("verify: phase-b transfers are not a contiguous suffix")
		}
		if t.Piece < pieceOff {
			pieceOff = t.Piece
		}
	}
	for i, t := range s.Transfers[:transOff] {
		if t.Piece >= pieceOff {
			return fmt.Errorf("verify: phase-a transfer %d references phase-b piece %d", i, t.Piece)
		}
		for _, d := range t.Deps {
			if d >= transOff {
				return fmt.Errorf("verify: phase-a transfer %d depends on phase-b transfer %d", i, d)
			}
		}
	}

	rs := &schedule.Schedule{NumGPUs: n}
	for _, p := range s.Pieces[:pieceOff] {
		rs.AddPiece(p.Bytes, p.Chunks...)
	}
	rs.Transfers = append(rs.Transfers, s.Transfers[:transOff]...)

	// Rebase the AllGather phase and collect its cross-phase dependencies.
	ag := &schedule.Schedule{NumGPUs: n}
	for _, p := range s.Pieces[pieceOff:] {
		ag.AddPiece(p.Bytes, p.Chunks...)
	}
	crossDeps := make([]map[int]bool, len(s.Transfers)-transOff)
	for i, t := range s.Transfers[transOff:] {
		nt := schedule.Transfer{
			Src: t.Src, Dst: t.Dst, Piece: t.Piece - pieceOff, Dim: t.Dim,
			Order: t.Order - schedule.PhaseOrderBase,
		}
		crossDeps[i] = make(map[int]bool)
		for _, d := range t.Deps {
			if d < transOff {
				crossDeps[i][d] = true
			} else {
				nt.Deps = append(nt.Deps, d-transOff)
			}
		}
		ag.AddTransfer(nt)
	}

	// Cross-phase barrier: an AllGather chain root at GPU g (no deps of
	// its own phase) must wait for every ReduceScatter delivery into g —
	// otherwise it could forward a partially reduced slice.
	for i, t := range ag.Transfers {
		if len(t.Deps) > 0 {
			continue
		}
		for j, rt := range rs.Transfers {
			if rt.Dst == t.Src && !crossDeps[i][j] {
				return fmt.Errorf("verify: AllGather transfer %d from GPU %d does not wait for reduction delivery %d into it",
					i, t.Src, j)
			}
		}
	}

	per := col.ChunkSize
	if err := CheckSchedule(collective.ReduceScatter(n, per), rs); err != nil {
		return fmt.Errorf("verify: AllReduce ReduceScatter phase: %w", err)
	}
	if err := CheckSchedule(collective.AllGather(n, per), ag); err != nil {
		return fmt.Errorf("verify: AllReduce AllGather phase: %w", err)
	}
	return nil
}
