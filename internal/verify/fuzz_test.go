package verify

import (
	"math"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

// byteScript is a bounded reader over fuzz input: every decode consumes one
// byte, and an exhausted script yields zeros so any prefix is a valid case.
type byteScript struct {
	data []byte
	pos  int
}

func (b *byteScript) next() int {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return int(v)
}

func (b *byteScript) pick(n int) int {
	if n <= 0 {
		return 0
	}
	return b.next() % n
}

func fuzzTopologies() []*topology.Topology {
	return []*topology.Topology{
		topology.SingleServer(4),
		topology.H800Small(2),
		topology.Fig3(),
	}
}

// fuzzCase decodes a (topology, collective, schedule) triple from the
// script. Transfers are unconstrained: sources, destinations, dependency
// edges (including forward edges, so cycles are reachable), orders, and
// piece chunk sets all come from the input.
func fuzzCase(b *byteScript) (*topology.Topology, *collective.Collective, *schedule.Schedule) {
	tops := fuzzTopologies()
	top := tops[b.pick(len(tops))]
	n := top.NumGPUs()
	kind := AllKinds[b.pick(len(AllKinds))]
	size := float64(64 * (1 + b.pick(8)))
	root := b.pick(n)
	var col *collective.Collective
	switch kind {
	case collective.KindSendRecv:
		dst := b.pick(n - 1)
		if dst >= root {
			dst++
		}
		col = collective.SendRecv(n, root, dst, size)
	case collective.KindBroadcast:
		col = collective.Broadcast(n, root, size)
	case collective.KindScatter:
		col = collective.Scatter(n, root, size)
	case collective.KindGather:
		col = collective.Gather(n, root, size)
	case collective.KindReduce:
		col = collective.Reduce(n, root, size)
	case collective.KindAllGather:
		col = collective.AllGather(n, size)
	case collective.KindAlltoAll:
		col = collective.AlltoAll(n, size)
	case collective.KindReduceScatter:
		col = collective.ReduceScatter(n, size)
	default:
		col = collective.AllReduce(n, size*float64(n))
	}

	s := &schedule.Schedule{NumGPUs: n}
	numPieces := 1 + b.pick(4)
	for p := 0; p < numPieces; p++ {
		mask := b.next()
		var chunks []int
		for c := 0; c < len(col.Chunks) && c < 8; c++ {
			if mask&(1<<c) != 0 {
				chunks = append(chunks, c)
			}
		}
		if len(chunks) == 0 {
			chunks = []int{b.pick(len(col.Chunks))}
		}
		bytes := col.ChunkSize * float64(1+b.pick(4)) / 2
		s.AddPiece(bytes, chunks...)
	}
	numTransfers := b.pick(16)
	for i := 0; i < numTransfers; i++ {
		t := schedule.Transfer{
			Src:   b.pick(n),
			Dst:   b.pick(n),
			Piece: b.pick(numPieces),
			Dim:   b.pick(top.NumDims()),
			Order: b.pick(8),
		}
		deps := b.next()
		for d := 0; d < numTransfers && d < 8; d++ {
			if d != i && deps&(1<<d) != 0 {
				t.Deps = append(t.Deps, d)
			}
		}
		s.AddTransfer(t)
	}
	return top, col, s
}

// FuzzValidate throws arbitrary schedules at schedule.Validate and the
// chunk oracle. Neither may panic, and for non-reducing collectives a
// Validate-accepted schedule must also satisfy the oracle (for reductions
// the oracle is strictly stronger — it rejects double-fold schedules
// Validate accepts — so no implication is asserted there).
func FuzzValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 3, 7, 1, 0, 1, 0, 0, 2, 0})
	f.Add([]byte{2, 8, 4, 3, 15, 255, 6, 4, 1, 2, 0, 1, 3, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := &byteScript{data: data}
		top, col, s := fuzzCase(b)
		vErr := s.Validate(col)
		oErr := CheckSchedule(col, s)
		_ = top
		if vErr == nil && !col.Reduce && oErr != nil {
			t.Fatalf("Validate accepted but oracle rejected a %v schedule: %v", col.Kind, oErr)
		}
	})
}

// fuzzSimSchedule decodes a schedule that is well-formed for simulation:
// dimensions in range, endpoints inside one group of the chosen dimension,
// and dependency edges pointing strictly backwards (acyclic).
func fuzzSimSchedule(b *byteScript) (*topology.Topology, *schedule.Schedule, sim.Options) {
	tops := fuzzTopologies()
	top := tops[b.pick(len(tops))]
	s := &schedule.Schedule{NumGPUs: top.NumGPUs()}
	numPieces := 1 + b.pick(4)
	for p := 0; p < numPieces; p++ {
		// Sizes with fractional parts exercise the block-count ceilings.
		bytes := float64(1+b.next()*b.next()*37) + float64(b.pick(2))/2
		s.AddPiece(bytes, 0)
	}
	numTransfers := b.pick(24)
	for i := 0; i < numTransfers; i++ {
		d := b.pick(top.NumDims())
		dim := top.Dim(d)
		grp := dim.Groups[b.pick(len(dim.Groups))]
		if len(grp) < 2 {
			continue
		}
		src := grp[b.pick(len(grp))]
		dst := grp[b.pick(len(grp))]
		if src == dst {
			dst = grp[(b.pick(len(grp))+1)%len(grp)]
			if src == dst {
				continue
			}
		}
		t := schedule.Transfer{
			Src: src, Dst: dst, Piece: b.pick(numPieces), Dim: d, Order: b.pick(6),
		}
		if ne := len(s.Transfers); ne > 0 {
			deps := b.next()
			for k := 0; k < ne && k < 8; k++ {
				if deps&(1<<k) != 0 {
					t.Deps = append(t.Deps, ne-1-k)
				}
			}
		}
		s.AddTransfer(t)
	}
	var opts sim.Options
	switch b.pick(3) {
	case 0:
		opts = sim.DefaultOptions()
	case 1:
		opts = sim.Options{} // pipelining off
	case 2:
		opts = sim.Options{BlockBytes: float64(1 + b.next()), MaxBlocks: 1 + b.pick(8)}
	}
	return top, s, opts
}

// FuzzSimParity feeds random well-formed schedules to both simulators and
// demands agreement to 1e-9 on completion time and every arrival.
func FuzzSimParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 9, 3, 11, 5, 0, 1, 2, 0, 1, 3, 0, 2, 1, 4, 0})
	f.Add([]byte{2, 7, 200, 13, 1, 20, 3, 1, 0, 2, 1, 255, 2, 0, 1, 3, 4, 2, 128, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := &byteScript{data: data}
		top, s, opts := fuzzSimSchedule(b)
		got, gErr := sim.Simulate(top, s, opts)
		want, wErr := ReferenceSimulate(top, s, opts.BlockBytes, opts.MaxBlocks)
		if (gErr == nil) != (wErr == nil) {
			t.Fatalf("disagreement on admissibility: sim err %v, refsim err %v", gErr, wErr)
		}
		if gErr != nil {
			return
		}
		if math.Abs(got.Time-want.Time) > parityTol {
			t.Fatalf("time: sim %.12g vs refsim %.12g", got.Time, want.Time)
		}
		for i := range s.Transfers {
			if math.Abs(got.FinishAt[i]-want.FinishAt[i]) > parityTol {
				t.Fatalf("transfer %d: sim %.12g vs refsim %.12g", i, got.FinishAt[i], want.FinishAt[i])
			}
		}
	})
}
