package verify

import (
	"fmt"
	"math"

	"syccl/internal/schedule"
	"syccl/internal/topology"
)

// RefResult is the reference simulator's outcome: completion time and the
// per-transfer arrival times that differential tests compare against
// internal/sim to 1e-9.
type RefResult struct {
	Time     float64
	FinishAt []float64
	Events   int
}

// ReferenceSimulate is a deliberately naive O(E²) discrete replay of the
// α-β port model: transfers sharing a GPU port (per physical port class)
// are served FIFO in schedule order, a transfer may start once its
// dependencies' matching payload fraction has arrived, and transmitting b
// bytes occupies the ports for β·b while arriving after α + β·b.
//
// It shares no implementation code with internal/sim: instead of a Kahn
// topological sort refined by a priority heap, it repeatedly scans the
// whole transfer list (O(E) per pick, O(E²) total) for the ready transfer
// with the smallest (Order, index) — the same serving sequence, arrived at
// the slow way. blockBytes and maxBlocks mirror sim.Options.BlockBytes and
// sim.Options.MaxBlocks (zero blockBytes disables pipelining; maxBlocks
// defaults to 8).
func ReferenceSimulate(top *topology.Topology, s *schedule.Schedule, blockBytes float64, maxBlocks int) (*RefResult, error) {
	n := top.NumGPUs()
	if s.NumGPUs != n {
		return nil, fmt.Errorf("verify: schedule spans %d GPUs, topology %d", s.NumGPUs, n)
	}
	if maxBlocks <= 0 {
		maxBlocks = 8
	}
	for i, t := range s.Transfers {
		if t.Dim < 0 || t.Dim >= top.NumDims() {
			return nil, fmt.Errorf("verify: transfer %d uses dimension %d of %d", i, t.Dim, top.NumDims())
		}
		if !top.SameGroup(t.Dim, t.Src, t.Dst) {
			return nil, fmt.Errorf("verify: transfer %d crosses groups in dimension %d", i, t.Dim)
		}
		for _, d := range t.Deps {
			if d < 0 || d >= len(s.Transfers) {
				return nil, fmt.Errorf("verify: transfer %d depends on missing transfer %d", i, d)
			}
		}
	}

	// Per-transfer block plan. A transfer of b bytes becomes
	// ceil(b/blockBytes) blocks, capped at maxBlocks.
	numBlocks := make([]int, len(s.Transfers))
	blockDone := make([][]float64, len(s.Transfers))
	for i, t := range s.Transfers {
		nb := 1
		if b := s.Pieces[t.Piece].Bytes; blockBytes > 0 && b > blockBytes {
			nb = int(math.Ceil(b / blockBytes))
			if nb > maxBlocks {
				nb = maxBlocks
			}
		}
		numBlocks[i] = nb
		blockDone[i] = make([]float64, nb)
	}

	classes := top.NumPortClasses()
	egressFree := make([][]float64, n)
	ingressFree := make([][]float64, n)
	for g := 0; g < n; g++ {
		egressFree[g] = make([]float64, classes)
		ingressFree[g] = make([]float64, classes)
	}

	res := &RefResult{FinishAt: make([]float64, len(s.Transfers))}
	done := make([]bool, len(s.Transfers))
	for served := 0; served < len(s.Transfers); served++ {
		// Naive selection: scan every transfer for the ready one with the
		// smallest (Order, index).
		pick := -1
		for i, t := range s.Transfers {
			if done[i] {
				continue
			}
			ready := true
			for _, d := range t.Deps {
				if !done[d] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if pick < 0 || t.Order < s.Transfers[pick].Order {
				pick = i
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("verify: dependency cycle among the %d unserved transfers",
				len(s.Transfers)-served)
		}

		t := s.Transfers[pick]
		dim := top.Dim(t.Dim)
		class := dim.PortClass
		alpha := dim.AlphaOf(dim.GroupOf(t.Src))
		beta := dim.BetaOf(dim.GroupOf(t.Src))
		nb := numBlocks[pick]
		per := s.Pieces[t.Piece].Bytes / float64(nb)
		for b := 0; b < nb; b++ {
			// A block may go once the dependency block covering the same
			// payload fraction has arrived.
			var ready float64
			for _, d := range t.Deps {
				dnb := numBlocks[d]
				db := ((b+1)*dnb + nb - 1) / nb // ceil((b+1)·dnb / nb)
				db--
				if db < 0 {
					db = 0
				}
				if db >= dnb {
					db = dnb - 1
				}
				if f := blockDone[d][db]; f > ready {
					ready = f
				}
			}
			start := ready
			if f := egressFree[t.Src][class]; f > start {
				start = f
			}
			if f := ingressFree[t.Dst][class]; f > start {
				start = f
			}
			busy := beta * per
			finish := start + alpha + busy
			egressFree[t.Src][class] = start + busy
			ingressFree[t.Dst][class] = start + busy
			blockDone[pick][b] = finish
			res.Events++
			if finish > res.Time {
				res.Time = finish
			}
		}
		res.FinishAt[pick] = blockDone[pick][nb-1]
		done[pick] = true
	}
	return res, nil
}
