// Package sim is an analytical α-β simulator for collective schedules,
// modeled after the fine-grained simulator SyCCL builds on ASTRA-sim
// (§5.2).
//
// Each transfer occupies its sender's egress port and its receiver's
// ingress port in the transfer's topology dimension. Transmitting b bytes
// takes α + β·b to arrive and keeps the ports busy for β·b (the Hockney
// model the solver also uses), so back-to-back transfers on a port overlap
// their α with the predecessor's tail — exactly the semantics of
// Appendix A's epoch constraints, in continuous time.
//
// To capture CCL transports that cut chunks into blocks and pipeline them
// across hops, the simulator expands each transfer into block events; the
// paper notes the event count equals transfers × blocks and processing is
// linear in events.
//
// Transfers sharing a port are served FIFO in schedule order (Order field,
// then index), matching the paper's "previous events on the link have been
// completed" rule; dependency readiness gates each event.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/topology"
)

// Options controls simulation fidelity.
type Options struct {
	// BlockBytes is the pipelining block size. Transfers larger than this
	// are cut into ceil(bytes/BlockBytes) blocks, capped at MaxBlocks.
	// Zero disables pipelining (one block per transfer).
	BlockBytes float64
	// MaxBlocks caps the per-transfer block count (default 8 when
	// BlockBytes is set).
	MaxBlocks int
	// Rec optionally records a span and event counters per simulation
	// (nil: no instrumentation, zero overhead).
	Rec *obs.Recorder
}

// DefaultOptions mirrors a typical CCL transport: 512 KiB pipeline blocks,
// at most 8 in flight per transfer.
func DefaultOptions() Options {
	return Options{BlockBytes: 512 * 1024, MaxBlocks: 8}
}

// IsZero reports whether the options are entirely unset. Callers that
// substitute defaults for unset options (core.Options.withDefaults) use
// this instead of struct equality, which silently breaks the moment a
// non-comparable field is added.
func (o Options) IsZero() bool {
	return o.BlockBytes == 0 && o.MaxBlocks == 0 && o.Rec == nil
}

// Result reports the outcome of a simulation.
type Result struct {
	// Time is the completion time of the last event, in seconds.
	Time float64
	// Events is the number of block events processed.
	Events int
	// PortBusy[d] is the aggregate busy time of all ports of dimension d
	// (egress side), used for utilization reporting.
	PortBusy []float64
	// LinkBusy[g][c] is the busy time of GPU g's class-c egress port —
	// the per-link view behind Utilization's per-dimension aggregate.
	LinkBusy [][]float64
	// FinishAt[i] is the arrival time of transfer i's last block.
	FinishAt []float64
	// StartAt[i] is the start time of transfer i's first block (when its
	// egress port begins serving it).
	StartAt []float64
}

// Utilization returns the mean egress utilization of dimension d: busy
// time divided by (port count × makespan).
func (r *Result) Utilization(top *topology.Topology, d int) float64 {
	if r.Time <= 0 || d < 0 || d >= len(r.PortBusy) || d >= top.NumDims() {
		return 0
	}
	ports := 0
	for _, g := range top.Dim(d).Groups {
		ports += len(g)
	}
	if ports == 0 {
		return 0
	}
	return r.PortBusy[d] / (float64(ports) * r.Time)
}

// LinkUtilization returns the busy fraction of GPU g's class-c egress
// port over the makespan.
func (r *Result) LinkUtilization(g, c int) float64 {
	if r.Time <= 0 || g < 0 || g >= len(r.LinkBusy) {
		return 0
	}
	busy := r.LinkBusy[g]
	if c < 0 || c >= len(busy) {
		return 0
	}
	return busy[c] / r.Time
}

type blockEvent struct {
	transfer int
	block    int
	bytes    float64
}

// Simulate executes the schedule on the topology and returns the result.
// It returns an error if a transfer uses a dimension whose group does not
// contain both endpoints, or if dependencies are cyclic.
func Simulate(top *topology.Topology, s *schedule.Schedule, opts Options) (*Result, error) {
	return SimulateCtx(context.Background(), top, s, opts)
}

// SimulateCtx is Simulate under a context. Cancellation is polled every
// 256 transfers; a cancelled simulation returns ctx.Err() — there is no
// partial result to salvage from a half-simulated schedule.
func SimulateCtx(ctx context.Context, top *topology.Topology, s *schedule.Schedule, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := opts.Rec.StartSpan("sim.simulate")
	sp.SetInt("transfers", int64(len(s.Transfers)))
	res, err := simulate(ctx, top, s, opts)
	if err == nil {
		sp.SetInt("events", int64(res.Events))
		sp.SetFloat("makespan", res.Time)
		sp.Count("sim.events", float64(res.Events))
	}
	sp.End()
	return res, err
}

func simulate(ctx context.Context, top *topology.Topology, s *schedule.Schedule, opts Options) (*Result, error) {
	n := top.NumGPUs()
	if s.NumGPUs != n {
		return nil, fmt.Errorf("sim: schedule has %d GPUs, topology %d", s.NumGPUs, n)
	}
	for i, t := range s.Transfers {
		if t.Dim < 0 || t.Dim >= top.NumDims() {
			return nil, fmt.Errorf("sim: transfer %d uses missing dimension %d", i, t.Dim)
		}
		if !top.SameGroup(t.Dim, t.Src, t.Dst) {
			return nil, fmt.Errorf("sim: transfer %d: GPUs %d and %d not connected in dimension %d (%s)",
				i, t.Src, t.Dst, t.Dim, top.Dim(t.Dim).Name)
		}
	}

	// Expand transfers into block events.
	blocksOf := func(bytes float64) int {
		if opts.BlockBytes <= 0 || bytes <= opts.BlockBytes {
			return 1
		}
		nb := int(math.Ceil(bytes / opts.BlockBytes))
		maxB := opts.MaxBlocks
		if maxB <= 0 {
			maxB = 8
		}
		if nb > maxB {
			nb = maxB
		}
		return nb
	}

	type transferState struct {
		nb          int
		blockFinish []float64
	}
	states := make([]transferState, len(s.Transfers))
	for i, t := range s.Transfers {
		nb := blocksOf(s.Pieces[t.Piece].Bytes)
		states[i] = transferState{nb: nb, blockFinish: make([]float64, nb)}
	}

	// Process transfers in priority order: a topological order refined by
	// Order. Ties on shared ports resolve FIFO in this sequence.
	seq, err := prioritizedTopoOrder(s)
	if err != nil {
		return nil, err
	}

	// Ports are per physical class, not per dimension: all network tiers
	// share each GPU's NIC, so leaf- and spine-dimension transfers from
	// one GPU serialize.
	numClasses := top.NumPortClasses()
	egress := make([][]float64, n) // [gpu][class] port free time
	ingress := make([][]float64, n)
	for g := 0; g < n; g++ {
		egress[g] = make([]float64, numClasses)
		ingress[g] = make([]float64, numClasses)
	}

	res := &Result{
		PortBusy: make([]float64, top.NumDims()),
		LinkBusy: make([][]float64, n),
		FinishAt: make([]float64, len(s.Transfers)),
		StartAt:  make([]float64, len(s.Transfers)),
	}
	for g := 0; g < n; g++ {
		res.LinkBusy[g] = make([]float64, numClasses)
	}

	for k, i := range seq {
		if k&255 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		t := s.Transfers[i]
		dim := top.Dim(t.Dim)
		class := dim.PortClass
		// Per-group α/β: degraded topologies carry per-group overrides, so
		// a transfer is costed by the group it actually crosses.
		alpha := dim.AlphaOf(dim.GroupOf(t.Src))
		beta := dim.BetaOf(dim.GroupOf(t.Src))
		st := &states[i]
		total := s.Pieces[t.Piece].Bytes
		per := total / float64(st.nb)
		for b := 0; b < st.nb; b++ {
			// Dependency readiness: block b may go once the matching
			// fraction of every dependency has arrived.
			ready := 0.0
			for _, d := range t.Deps {
				ds := &states[d]
				// The dep block covering the same payload fraction.
				db := ((b+1)*ds.nb+st.nb-1)/st.nb - 1
				if db < 0 {
					db = 0
				}
				if db >= ds.nb {
					db = ds.nb - 1
				}
				if f := ds.blockFinish[db]; f > ready {
					ready = f
				}
			}
			start := ready
			if f := egress[t.Src][class]; f > start {
				start = f
			}
			if f := ingress[t.Dst][class]; f > start {
				start = f
			}
			busy := beta * per
			finish := start + alpha + busy
			egress[t.Src][class] = start + busy
			ingress[t.Dst][class] = start + busy
			res.PortBusy[t.Dim] += busy
			res.LinkBusy[t.Src][class] += busy
			if b == 0 {
				res.StartAt[i] = start
			}
			st.blockFinish[b] = finish
			res.Events++
			if finish > res.Time {
				res.Time = finish
			}
		}
		res.FinishAt[i] = st.blockFinish[st.nb-1]
	}
	return res, nil
}

// prioritizedTopoOrder returns transfer indices in a dependency-respecting
// order that follows Order (then index) whenever multiple transfers are
// simultaneously schedulable.
func prioritizedTopoOrder(s *schedule.Schedule) ([]int, error) {
	n := len(s.Transfers)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, t := range s.Transfers {
		for _, d := range t.Deps {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("sim: transfer %d has out-of-range dep %d", i, d)
			}
			succ[d] = append(succ[d], i)
			indeg[i]++
		}
	}
	// Min-heap on (Order, index).
	h := &transferHeap{s: s}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			h.push(i)
		}
	}
	order := make([]int, 0, n)
	for h.len() > 0 {
		i := h.pop()
		order = append(order, i)
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				h.push(j)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("sim: dependency cycle among transfers")
	}
	return order, nil
}

type transferHeap struct {
	s    *schedule.Schedule
	heap []int
}

func (h *transferHeap) len() int { return len(h.heap) }

func (h *transferHeap) less(a, b int) bool {
	ta, tb := h.s.Transfers[a], h.s.Transfers[b]
	if ta.Order != tb.Order {
		return ta.Order < tb.Order
	}
	return a < b
}

func (h *transferHeap) push(x int) {
	h.heap = append(h.heap, x)
	i := len(h.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			break
		}
		h.heap[i], h.heap[p] = h.heap[p], h.heap[i]
		i = p
	}
}

func (h *transferHeap) pop() int {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.heap) && h.less(h.heap[l], h.heap[m]) {
			m = l
		}
		if r < len(h.heap) && h.less(h.heap[r], h.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.heap[i], h.heap[m] = h.heap[m], h.heap[i]
		i = m
	}
	return top
}

// sortedFinishTimes returns the transfer finish times ascending — handy in
// tests and debugging dumps.
func sortedFinishTimes(r *Result) []float64 {
	out := append([]float64(nil), r.FinishAt...)
	sort.Float64s(out)
	return out
}
