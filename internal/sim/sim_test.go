package sim

import (
	"math"
	"testing"

	"syccl/internal/schedule"
	"syccl/internal/topology"
)

// testTopo returns a 2-server × 4-GPU topology with round numbers:
// dim 0 (nvswitch) β=1e-9 (1 GB/s), dim 1 (rail) β=4e-9 (0.25 GB/s).
func testTopo() *topology.Topology {
	return topology.Build(topology.Config{
		Name:          "sim-test",
		Servers:       2,
		GPUsPerServer: 4,
		NVAlpha:       1e-6,
		NVBeta:        1e-9,
		NetAlpha:      1e-5,
		NetBeta:       4e-9,
	})
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b) }

func TestSingleTransferTime(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-6 + 1e-9*1000
	if !approx(r.Time, want) {
		t.Errorf("time = %g, want %g", r.Time, want)
	}
	if r.Events != 1 {
		t.Errorf("events = %d", r.Events)
	}
}

func TestSameEgressPortSerializes(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0, Order: 0})
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 2, Piece: p, Dim: 0, Order: 1})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Second send starts when the port frees at β·b, finishing at
	// 2β·b + α (α overlaps with the predecessor's transmission tail).
	want := 2*1e-9*1000 + 1e-6
	if !approx(r.Time, want) {
		t.Errorf("time = %g, want %g", r.Time, want)
	}
}

func TestDisjointPortsRunInParallel(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 2, Dst: 3, Piece: p, Dim: 0})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-6 + 1e-9*1000
	if !approx(r.Time, want) {
		t.Errorf("time = %g, want %g (parallel)", r.Time, want)
	}
}

func TestDifferentDimsDoNotContend(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	// GPU 0 sends on dim 0 and dim 1 simultaneously (separate ports).
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 4, Piece: p, Dim: 1})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-5 + 4e-9*1000 // the slower (network) transfer
	if !approx(r.Time, want) {
		t.Errorf("time = %g, want %g", r.Time, want)
	}
}

func TestDependencyChain(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	t0 := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Dim: 0, Deps: []int{t0}})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1e-6 + 1e-9*1000)
	if !approx(r.Time, want) {
		t.Errorf("time = %g, want %g", r.Time, want)
	}
}

func TestBlockPipeliningBeatsStoreAndForward(t *testing.T) {
	top := testTopo()
	build := func() *schedule.Schedule {
		s := &schedule.Schedule{NumGPUs: 8}
		p := s.AddPiece(4e6, 0) // 4 MB over a 3-hop chain
		t0 := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
		t1 := s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Dim: 0, Deps: []int{t0}})
		s.AddTransfer(schedule.Transfer{Src: 2, Dst: 3, Piece: p, Dim: 0, Deps: []int{t1}})
		return s
	}
	noPipe, err := Simulate(top, build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Simulate(top, build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Time >= noPipe.Time {
		t.Errorf("pipelined %g not faster than store-and-forward %g", pipe.Time, noPipe.Time)
	}
	// Ideal pipeline: ~(h-1 extra blocks) instead of h full chunks.
	if pipe.Time > noPipe.Time*0.6 {
		t.Errorf("pipelining too weak: %g vs %g", pipe.Time, noPipe.Time)
	}
	if pipe.Events != 24 { // 3 transfers × 8 blocks
		t.Errorf("events = %d, want 24", pipe.Events)
	}
}

// TestFig12Overlap reproduces the §5.2 observation: stage-1 communication
// overlaps stage 0, so the makespan is smaller than the sum of per-stage
// durations.
func TestFig12Overlap(t *testing.T) {
	// 16 GPUs, 4 servers — the Fig 5 topology shape. As in Fig 12, the
	// intra-server fan-out (5τ) is slower than the inter-server one (4τ),
	// so stage 1 can begin before stage 0 completes.
	top := topology.Build(topology.Config{
		Name: "fig12", Servers: 4, GPUsPerServer: 4,
		NVAlpha: 1e-6, NVBeta: 2e-9, NetAlpha: 1e-5, NetBeta: 1e-9,
	})
	s := &schedule.Schedule{NumGPUs: 16}
	p := s.AddPiece(1e6, 0)
	// Stage 0: 0→1,0→2,0→3 on dim 0; 0→4,0→8,0→12 on dim 1.
	for _, d := range []int{1, 2, 3} {
		s.AddTransfer(schedule.Transfer{Src: 0, Dst: d, Piece: p, Dim: 0})
	}
	interDeps := make(map[int]int)
	for _, d := range []int{4, 8, 12} {
		interDeps[d] = s.AddTransfer(schedule.Transfer{Src: 0, Dst: d, Piece: p, Dim: 1})
	}
	// Stage 1: each inter-server receiver fans out inside its server.
	for _, root := range []int{4, 8, 12} {
		for off := 1; off <= 3; off++ {
			s.AddTransfer(schedule.Transfer{Src: root, Dst: root + off, Piece: p, Dim: 0, Deps: []int{interDeps[root]}})
		}
	}
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Naive stage addition: stage0 = max(intra fan-out, inter fan-out),
	// stage1 = intra fan-out; overlap must beat it.
	intra := 3*2e-9*1e6 + 1e-6
	inter := 3*1e-9*1e6 + 1e-5
	naive := math.Max(intra, inter) + intra
	if r.Time >= naive {
		t.Errorf("no overlap: time %g >= naive %g", r.Time, naive)
	}
	// But it must still exceed the critical path lower bound: first
	// inter-server arrival + intra fan-out.
	lower := (1e-5 + 1e-9*1e6) + intra
	if r.Time < lower-1e-12 {
		t.Errorf("time %g below critical path %g", r.Time, lower)
	}
}

func TestOrderBreaksTies(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	big := s.AddPiece(1e6, 0)
	small := s.AddPiece(1000, 0)
	// Both depart GPU 0's dim-0 port; the small one has lower Order so it
	// must go first and finish early.
	bi := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: big, Dim: 0, Order: 2})
	si := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 2, Piece: small, Dim: 0, Order: 1})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinishAt[si] >= r.FinishAt[bi] {
		t.Errorf("small (order 1) finished at %g, after big (order 2) at %g", r.FinishAt[si], r.FinishAt[bi])
	}
	if !approx(r.FinishAt[si], 1e-6+1e-9*1000) {
		t.Errorf("small transfer delayed: %g", r.FinishAt[si])
	}
}

func TestRejectsCrossGroupTransfer(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	// GPUs 0 and 5 are in different servers and different rails: invalid
	// in dim 0.
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 5, Piece: p, Dim: 0})
	if _, err := Simulate(top, s, Options{}); err == nil {
		t.Error("accepted cross-group dim-0 transfer")
	}
	// And invalid in dim 1 (different rails).
	s.Transfers[0].Dim = 1
	if _, err := Simulate(top, s, Options{}); err == nil {
		t.Error("accepted cross-rail dim-1 transfer")
	}
}

func TestRejectsCycle(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0, Deps: []int{1}})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Dim: 0, Deps: []int{0}})
	if _, err := Simulate(top, s, Options{}); err == nil {
		t.Error("accepted cyclic schedule")
	}
}

func TestUtilization(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1e6, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := r.Utilization(top, 0)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %g", u)
	}
	if r.Utilization(top, 1) != 0 {
		t.Errorf("idle dim shows utilization %g", r.Utilization(top, 1))
	}
}

func TestFinishTimesSorted(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	t0 := s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	s.AddTransfer(schedule.Transfer{Src: 1, Dst: 2, Piece: p, Dim: 0, Deps: []int{t0}})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := sortedFinishTimes(r)
	if len(ts) != 2 || ts[0] > ts[1] {
		t.Errorf("finish times %v", ts)
	}
	if ts[1] != r.Time {
		t.Errorf("max finish %g != makespan %g", ts[1], r.Time)
	}
}

func TestEmptySchedule(t *testing.T) {
	top := testTopo()
	r, err := Simulate(top, &schedule.Schedule{NumGPUs: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != 0 || r.Events != 0 {
		t.Errorf("empty schedule: %+v", r)
	}
}

func TestUtilizationGuards(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	r, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// In-range dimensions report a finite fraction in [0, 1].
	for d := 0; d < top.NumDims(); d++ {
		u := r.Utilization(top, d)
		if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 || u > 1 {
			t.Errorf("dim %d: utilization %g", d, u)
		}
	}
	// Out-of-range dimensions and links must return 0, not panic or index
	// past PortBusy.
	for _, d := range []int{-1, top.NumDims(), top.NumDims() + 5} {
		if u := r.Utilization(top, d); u != 0 {
			t.Errorf("dim %d: utilization %g, want 0", d, u)
		}
	}
	for _, gc := range [][2]int{{-1, 0}, {8, 0}, {0, -1}, {0, 99}} {
		if u := r.LinkUtilization(gc[0], gc[1]); u != 0 {
			t.Errorf("link (%d,%d): utilization %g, want 0", gc[0], gc[1], u)
		}
	}
}

func TestUtilizationZeroDuration(t *testing.T) {
	// An empty schedule has zero makespan; every utilization must be an
	// exact 0 rather than 0/0.
	top := testTopo()
	r, err := Simulate(top, &schedule.Schedule{NumGPUs: 8}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < top.NumDims(); d++ {
		if u := r.Utilization(top, d); u != 0 || math.IsNaN(u) {
			t.Errorf("dim %d: utilization %g", d, u)
		}
	}
	if u := r.LinkUtilization(0, 0); u != 0 {
		t.Errorf("link utilization %g", u)
	}
}
