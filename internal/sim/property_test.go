package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"syccl/internal/schedule"
	"syccl/internal/topology"
)

// randomSchedule builds a random dependency-correct broadcast schedule on
// the 8-GPU test topology.
func randomSchedule(rng *rand.Rand, n int, bytes float64) *schedule.Schedule {
	s := &schedule.Schedule{NumGPUs: n}
	p := s.AddPiece(bytes, 0)
	informed := []int{0}
	delivered := map[int]int{}
	for dst := 1; dst < n; dst++ {
		src := informed[rng.Intn(len(informed))]
		t := schedule.Transfer{Src: src, Dst: dst, Piece: p, Dim: 0, Order: dst}
		if di, ok := delivered[src]; ok {
			t.Deps = []int{di}
		}
		delivered[dst] = s.AddTransfer(t)
		informed = append(informed, dst)
	}
	return s
}

// Property: completion time is monotone in payload size.
func TestTimeMonotoneInSizeProperty(t *testing.T) {
	top := topology.SingleServer(8)
	f := func(seed int64, rawBytes uint16) bool {
		bytes := float64(rawBytes) + 1
		rng := rand.New(rand.NewSource(seed))
		s1 := randomSchedule(rng, 8, bytes)
		s2 := s1.Clone()
		s2.Pieces[0].Bytes = bytes * 2
		r1, err1 := Simulate(top, s1, Options{})
		r2, err2 := Simulate(top, s2, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Time >= r1.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: makespan never beats the critical-path lower bound
// (dependency-chain depth × single-hop time) nor the busiest-port bound.
func TestLowerBoundsProperty(t *testing.T) {
	top := topology.SingleServer(8)
	dim := top.Dim(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bytes := 1e6 * (1 + rng.Float64())
		s := randomSchedule(rng, 8, bytes)
		r, err := Simulate(top, s, Options{})
		if err != nil {
			return false
		}
		stats := s.ComputeStats(1)
		chainLB := float64(stats.MaxHops) * (dim.Alpha + dim.Beta*bytes)
		if r.Time < chainLB-1e-12 {
			return false
		}
		// Port load bound: max sends per GPU × β·bytes.
		out := map[int]int{}
		for _, tr := range s.Transfers {
			out[tr.Src]++
		}
		maxOut := 0
		for _, v := range out {
			if v > maxOut {
				maxOut = v
			}
		}
		loadLB := float64(maxOut) * dim.Beta * bytes
		return r.Time >= loadLB-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: simulation is deterministic.
func TestDeterminismProperty(t *testing.T) {
	top := topology.SingleServer(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, 8, 12345)
		r1, err1 := Simulate(top, s, DefaultOptions())
		r2, err2 := Simulate(top, s, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Time == r2.Time && r1.Events == r2.Events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: per-link accounting is consistent — every link's busy time
// fits inside the makespan, and summing each transfer's service time
// (β·bytes, regardless of how it is cut into blocks) onto its egress
// link reproduces LinkBusy exactly. PortBusy per dimension must equal
// the same sums grouped by dimension.
func TestLinkBusyConsistencyProperty(t *testing.T) {
	top := topology.SingleServer(8)
	f := func(seed int64, pipelined bool) bool {
		rng := rand.New(rand.NewSource(seed))
		bytes := 1e5 * (1 + 20*rng.Float64())
		s := randomSchedule(rng, 8, bytes)
		opts := Options{}
		if pipelined {
			opts = DefaultOptions()
		}
		r, err := Simulate(top, s, opts)
		if err != nil {
			return false
		}
		// Busy time never exceeds the makespan on any link.
		for g := range r.LinkBusy {
			for c, busy := range r.LinkBusy[g] {
				if busy < 0 || busy > r.Time+1e-12 {
					t.Logf("link (%d,%d) busy %g vs makespan %g", g, c, busy, r.Time)
					return false
				}
				if u := r.LinkUtilization(g, c); u < 0 || u > 1+1e-9 {
					return false
				}
			}
		}
		// Sum of per-transfer service times equals the reported busy time.
		wantLink := make([][]float64, top.NumGPUs())
		for g := range wantLink {
			wantLink[g] = make([]float64, top.NumPortClasses())
		}
		wantDim := make([]float64, top.NumDims())
		for _, tr := range s.Transfers {
			dim := top.Dim(tr.Dim)
			service := dim.Beta * s.Pieces[tr.Piece].Bytes
			wantLink[tr.Src][dim.PortClass] += service
			wantDim[tr.Dim] += service
		}
		approxEq := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
		}
		for g := range wantLink {
			for c := range wantLink[g] {
				if !approxEq(wantLink[g][c], r.LinkBusy[g][c]) {
					t.Logf("link (%d,%d): want %g got %g", g, c, wantLink[g][c], r.LinkBusy[g][c])
					return false
				}
			}
		}
		for d := range wantDim {
			if !approxEq(wantDim[d], r.PortBusy[d]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every transfer starts no earlier than time zero and finishes
// after it starts; starts respect the port-serialization order.
func TestStartFinishOrderingProperty(t *testing.T) {
	top := topology.SingleServer(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, 8, 1e6)
		r, err := Simulate(top, s, DefaultOptions())
		if err != nil {
			return false
		}
		for i := range s.Transfers {
			if r.StartAt[i] < 0 || r.FinishAt[i] <= r.StartAt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: pipelining (blocks) never increases completion time of a
// chain beyond the unpipelined run.
func TestPipeliningNeverHurtsChainsProperty(t *testing.T) {
	top := topology.SingleServer(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, 8, 8e6)
		plain, err1 := Simulate(top, s, Options{})
		piped, err2 := Simulate(top, s, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		// Allow a per-block α overhead margin.
		return piped.Time <= plain.Time*1.05+8*top.Dim(0).Alpha
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
