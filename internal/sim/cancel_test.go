package sim

import (
	"context"
	"testing"

	"syccl/internal/schedule"
)

func TestSimulateCtxPreCancelled(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateCtx(ctx, top, s, Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateCtxBackgroundMatchesSimulate(t *testing.T) {
	top := testTopo()
	s := &schedule.Schedule{NumGPUs: 8}
	p := s.AddPiece(1000, 0)
	s.AddTransfer(schedule.Transfer{Src: 0, Dst: 1, Piece: p, Dim: 0})
	want, err := Simulate(top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateCtx(context.Background(), top, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time {
		t.Fatalf("SimulateCtx time %g, Simulate time %g", got.Time, want.Time)
	}
}

func TestOptionsIsZero(t *testing.T) {
	if !(Options{}).IsZero() {
		t.Fatal("zero Options not IsZero")
	}
	if (Options{BlockBytes: 1}).IsZero() {
		t.Fatal("BlockBytes ignored by IsZero")
	}
	if (Options{MaxBlocks: 1}).IsZero() {
		t.Fatal("MaxBlocks ignored by IsZero")
	}
	if DefaultOptions().IsZero() {
		t.Fatal("DefaultOptions reported as zero")
	}
}
