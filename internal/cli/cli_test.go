package cli

import (
	"testing"

	"syccl/internal/collective"
)

func TestParseTopology(t *testing.T) {
	cases := map[string]int{
		"a100x16": 16, "a100x32": 32, "h800x16": 16, "h800x64": 64,
		"h800small": 24, "server8": 8, "fig3": 16, "fig19": 28, "fig20": 32,
	}
	for spec, gpus := range cases {
		top, err := ParseTopology(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if top.NumGPUs() != gpus {
			t.Errorf("%s: %d GPUs, want %d", spec, top.NumGPUs(), gpus)
		}
	}
	if _, err := ParseTopology("nonsense"); err == nil {
		t.Error("accepted unknown topology")
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]float64{
		"1K": 1024, "4M": 4 << 20, "1G": 1 << 30, "512": 512, "100B": 100, " 2k ": 2048,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %g, %v; want %g", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1K", "abc", "0"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestBuildCollective(t *testing.T) {
	kinds := map[string]collective.Kind{
		"allgather": collective.KindAllGather, "ag": collective.KindAllGather,
		"reducescatter": collective.KindReduceScatter, "rs": collective.KindReduceScatter,
		"alltoall": collective.KindAlltoAll, "a2a": collective.KindAlltoAll,
		"allreduce": collective.KindAllReduce, "broadcast": collective.KindBroadcast,
		"reduce": collective.KindReduce, "scatter": collective.KindScatter,
		"gather": collective.KindGather, "sendrecv": collective.KindSendRecv,
	}
	for name, kind := range kinds {
		col, err := BuildCollective(name, 8, 8192)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if col.Kind != kind {
			t.Errorf("%s: kind %v, want %v", name, col.Kind, kind)
		}
		if err := col.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := BuildCollective("nope", 8, 1024); err == nil {
		t.Error("accepted unknown collective")
	}
	// AllGather data-size convention: aggregate buffer = dataBytes.
	ag, _ := BuildCollective("allgather", 8, 8192)
	if ag.TotalBytes() != 8192 {
		t.Errorf("AG total = %g", ag.TotalBytes())
	}
}
