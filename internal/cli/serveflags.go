package cli

import (
	"flag"
	"fmt"
	"strings"
	"time"
)

// ServeFlags holds every syccl-serve option. Like SynthFlags, the flags
// are registered on an injected FlagSet so parsing stays unit-testable.
type ServeFlags struct {
	Addr         string
	Concurrency  int
	QueueDepth   int
	StoreEntries int
	Timeout      time.Duration
	Workers      int
	RetryAfter   time.Duration
	MaxBody      int64
	DrainTimeout time.Duration
	// AdminAddr, when set, serves pprof + /metrics + /debug/requests on
	// a second (typically private) listener.
	AdminAddr string
	// AccessLog is where structured access-log lines go: "" disables,
	// "-" means stderr, anything else is appended to as a file.
	AccessLog string
	// CacheDir enables the disk-backed plan cache: solved sub-schedules
	// are written through to it, and the result store is snapshotted into
	// it and restored on the next boot. Empty disables persistence.
	CacheDir string
	// SnapshotInterval flushes the result store to the cache directory
	// periodically (0 = only at drain). Requires CacheDir.
	SnapshotInterval time.Duration
	// Prewarm is a background sweep grid "topos:collectives:sizes" (each
	// part comma-separated); parsed with ParsePrewarm.
	Prewarm string
}

// NewServeFlags registers syccl-serve's flags on fs and returns the
// backing struct.
func NewServeFlags(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.StringVar(&f.Addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&f.Concurrency, "concurrency", 0, "max simultaneous solves (0 = GOMAXPROCS)")
	fs.IntVar(&f.QueueDepth, "queue-depth", 64, "flights allowed to wait for a solve slot; beyond it requests get 429")
	fs.IntVar(&f.StoreEntries, "store-entries", 256, "schedules retained in the LRU result store")
	fs.DurationVar(&f.Timeout, "timeout", 0, "default synthesis deadline for requests without timeout_ms (0 = none)")
	fs.IntVar(&f.Workers, "workers", 0, "default synthesis parallelism for requests without workers (0 = GOMAXPROCS)")
	fs.DurationVar(&f.RetryAfter, "retry-after", time.Second, "Retry-After hint returned with 429s")
	fs.Int64Var(&f.MaxBody, "max-body", 1<<20, "request body size limit in bytes")
	fs.DurationVar(&f.DrainTimeout, "drain-timeout", 30*time.Second, "grace period on SIGTERM/SIGINT before in-flight solves are cancelled into anytime results")
	fs.StringVar(&f.AdminAddr, "admin", "", "admin listener address for pprof, /metrics, and /debug/requests (empty = disabled)")
	fs.StringVar(&f.AccessLog, "access-log", "", `structured access log destination: "-" for stderr, a path to append to, empty to disable`)
	fs.StringVar(&f.CacheDir, "cache-dir", "", "disk-backed plan cache directory: solves are written through and the result store snapshot warm-boots the next run (empty = disabled)")
	fs.DurationVar(&f.SnapshotInterval, "snapshot-interval", 0, "periodic result-store snapshot flush into -cache-dir (0 = only at drain)")
	fs.StringVar(&f.Prewarm, "prewarm", "", `background prewarm grid "topos:collectives:sizes", each comma-separated, e.g. "dgx4,server8:allgather,broadcast:1M,16M"`)
	return f
}

// Validate surfaces nonsensical flag combinations before the server
// binds its listener.
func (f *ServeFlags) Validate() error {
	if f.Addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if f.Concurrency < 0 {
		return fmt.Errorf("-concurrency must be >= 0")
	}
	if f.QueueDepth < 0 {
		return fmt.Errorf("-queue-depth must be >= 0")
	}
	if f.StoreEntries < 0 {
		return fmt.Errorf("-store-entries must be >= 0")
	}
	if f.Timeout < 0 || f.RetryAfter < 0 || f.DrainTimeout < 0 {
		return fmt.Errorf("durations must be >= 0")
	}
	if f.MaxBody <= 0 {
		return fmt.Errorf("-max-body must be > 0")
	}
	if f.Workers < 0 || f.Workers > 4096 {
		return fmt.Errorf("-workers must be in [0, 4096]")
	}
	if f.AdminAddr != "" && f.AdminAddr == f.Addr {
		return fmt.Errorf("-admin must differ from -addr (pprof must not share the public listener)")
	}
	if f.SnapshotInterval < 0 {
		return fmt.Errorf("-snapshot-interval must be >= 0")
	}
	if f.SnapshotInterval > 0 && f.CacheDir == "" {
		return fmt.Errorf("-snapshot-interval requires -cache-dir")
	}
	if f.Prewarm != "" {
		if _, _, _, err := ParsePrewarm(f.Prewarm); err != nil {
			return fmt.Errorf("-prewarm: %w", err)
		}
	}
	return nil
}

// ParsePrewarm splits a "topos:collectives:sizes" grid spec into its
// three axes and validates every element with the same parsers the API
// uses, so a bad grid fails at startup rather than silently skipping
// prewarm items at runtime.
func ParsePrewarm(spec string) (topos, cols, sizes []string, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, nil, nil, fmt.Errorf("grid %q must have 3 colon-separated parts (topos:collectives:sizes)", spec)
	}
	split := func(s string) []string {
		var out []string
		for _, e := range strings.Split(s, ",") {
			if e = strings.TrimSpace(e); e != "" {
				out = append(out, e)
			}
		}
		return out
	}
	topos, cols, sizes = split(parts[0]), split(parts[1]), split(parts[2])
	if len(topos) == 0 || len(cols) == 0 || len(sizes) == 0 {
		return nil, nil, nil, fmt.Errorf("grid %q has an empty axis", spec)
	}
	for _, t := range topos {
		if _, err := ParseTopology(t); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, c := range cols {
		// Kind check only: the GPU count comes from the topology at sweep
		// time, so validate against a small fixed one here.
		if _, err := BuildCollective(c, 4, 1024); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, s := range sizes {
		if _, err := ParseSize(s); err != nil {
			return nil, nil, nil, err
		}
	}
	return topos, cols, sizes, nil
}
