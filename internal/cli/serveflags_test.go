package cli

import (
	"flag"
	"io"
	"testing"
	"time"
)

func parseServe(t *testing.T, args ...string) (*ServeFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("syccl-serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := NewServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return f, f.Validate()
}

func TestServeFlagsDefaults(t *testing.T) {
	f, err := parseServe(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr != "127.0.0.1:8080" || f.QueueDepth != 64 || f.StoreEntries != 256 {
		t.Fatalf("unexpected defaults: %+v", f)
	}
	if f.RetryAfter != time.Second || f.DrainTimeout != 30*time.Second {
		t.Fatalf("unexpected duration defaults: %+v", f)
	}
	if f.Concurrency != 0 || f.Workers != 0 || f.Timeout != 0 {
		t.Fatalf("auto-sized knobs should default to 0: %+v", f)
	}
}

func TestServeFlagsParse(t *testing.T) {
	f, err := parseServe(t,
		"-addr", ":9999",
		"-concurrency", "3",
		"-queue-depth", "8",
		"-store-entries", "32",
		"-timeout", "250ms",
		"-workers", "2",
		"-retry-after", "5s",
		"-max-body", "4096",
		"-drain-timeout", "1m",
		"-admin", "127.0.0.1:6060",
		"-access-log", "-",
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr != ":9999" || f.Concurrency != 3 || f.QueueDepth != 8 || f.StoreEntries != 32 {
		t.Fatalf("parse mismatch: %+v", f)
	}
	if f.Timeout != 250*time.Millisecond || f.Workers != 2 || f.RetryAfter != 5*time.Second {
		t.Fatalf("parse mismatch: %+v", f)
	}
	if f.MaxBody != 4096 || f.DrainTimeout != time.Minute {
		t.Fatalf("parse mismatch: %+v", f)
	}
	if f.AdminAddr != "127.0.0.1:6060" || f.AccessLog != "-" {
		t.Fatalf("telemetry flags mismatch: %+v", f)
	}
}

func TestServeFlagsValidate(t *testing.T) {
	bad := [][]string{
		{"-addr", ""},
		{"-concurrency", "-1"},
		{"-queue-depth", "-1"},
		{"-store-entries", "-5"},
		{"-timeout", "-1s"},
		{"-retry-after", "-1s"},
		{"-drain-timeout", "-1s"},
		{"-max-body", "0"},
		{"-workers", "-1"},
		{"-workers", "5000"},
		{"-addr", ":8080", "-admin", ":8080"},
		{"-snapshot-interval", "-1s"},
		{"-snapshot-interval", "5s"}, // requires -cache-dir
		{"-prewarm", "dgx4:allgather"},
		{"-prewarm", "dgx4::1M"},
		{"-prewarm", "nope:allgather:1M"},
		{"-prewarm", "dgx4:frobnicate:1M"},
		{"-prewarm", "dgx4:allgather:12Q"},
	}
	for _, args := range bad {
		if _, err := parseServe(t, args...); err == nil {
			t.Fatalf("args %v validated but should not", args)
		}
	}
}

func TestServeFlagsPersist(t *testing.T) {
	f, err := parseServe(t,
		"-cache-dir", "/tmp/syccl-cache",
		"-snapshot-interval", "30s",
		"-prewarm", "dgx4,server8:allgather,broadcast:1M,16M",
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.CacheDir != "/tmp/syccl-cache" || f.SnapshotInterval != 30*time.Second {
		t.Fatalf("persist flags mismatch: %+v", f)
	}
	topos, cols, sizes, err := ParsePrewarm(f.Prewarm)
	if err != nil {
		t.Fatal(err)
	}
	if len(topos) != 2 || len(cols) != 2 || len(sizes) != 2 {
		t.Fatalf("grid axes %v %v %v", topos, cols, sizes)
	}
	if topos[0] != "dgx4" || cols[1] != "broadcast" || sizes[1] != "16M" {
		t.Fatalf("grid content %v %v %v", topos, cols, sizes)
	}
}

func TestParsePrewarmTrimsAndRejectsEmpties(t *testing.T) {
	topos, cols, sizes, err := ParsePrewarm(" dgx4 , server8 : allgather : 1M ")
	if err != nil {
		t.Fatal(err)
	}
	if len(topos) != 2 || topos[1] != "server8" || cols[0] != "allgather" || sizes[0] != "1M" {
		t.Fatalf("trim failed: %v %v %v", topos, cols, sizes)
	}
	if _, _, _, err := ParsePrewarm(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, _, _, err := ParsePrewarm(",,:allgather:1M"); err == nil {
		t.Fatal("all-empty axis accepted")
	}
}
