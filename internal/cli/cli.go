// Package cli holds helpers shared by the command-line tools: parsing
// topology and collective specifications and size strings.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"syccl/internal/collective"
	"syccl/internal/topology"
)

// ParseTopology resolves a topology spec:
//
//	a100x16 | a100x32          — the paper's A100 testbeds (Fig 13a)
//	h800x64 | h800x512         — the H800 rail clusters (Fig 13b)
//	h800small                  — the §7.4 scaled-down 24-GPU cluster
//	server8                    — one 8-GPU NVSwitch server
//	dgx4                       — one 4-GPU NVSwitch server
//	fig3 | fig19 | fig20       — the worked-example topologies
func ParseTopology(spec string) (*topology.Topology, error) {
	switch strings.ToLower(spec) {
	case "dgx4":
		return topology.SingleServer(4), nil
	case "a100x16":
		return topology.A100Clos(2), nil
	case "a100x32":
		return topology.A100Clos(4), nil
	case "h800x16":
		return topology.H800Rail(2), nil
	case "h800x64":
		return topology.H800Rail(8), nil
	case "h800x512":
		return topology.H800Rail(64), nil
	case "h800small":
		return topology.H800Small(6), nil
	case "server8":
		return topology.SingleServer(8), nil
	case "fig3":
		return topology.Fig3(), nil
	case "fig19":
		return topology.Fig19(), nil
	case "fig20":
		return topology.Fig20(), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (try a100x16, a100x32, h800x64, h800x512, h800small, server8, dgx4, fig3, fig19, fig20)", spec)
	}
}

// ParseSize parses a byte size like "64M", "1G", "4K", "1024".
func ParseSize(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult = 1 << 30
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "B"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// BuildCollective instantiates a collective by name with an aggregate
// data size (the paper's figure-axis convention) on n GPUs. Rooted
// collectives use root 0.
func BuildCollective(kind string, n int, dataBytes float64) (*collective.Collective, error) {
	switch strings.ToLower(kind) {
	case "allgather", "ag":
		return collective.AllGather(n, dataBytes/float64(n)), nil
	case "reducescatter", "rs":
		return collective.ReduceScatter(n, dataBytes/float64(n)), nil
	case "alltoall", "a2a":
		return collective.AlltoAll(n, dataBytes/float64(n*(n-1))), nil
	case "allreduce", "ar":
		return collective.AllReduce(n, dataBytes), nil
	case "broadcast", "bc":
		return collective.Broadcast(n, 0, dataBytes), nil
	case "reduce":
		return collective.Reduce(n, 0, dataBytes), nil
	case "scatter":
		return collective.Scatter(n, 0, dataBytes/float64(n-1)), nil
	case "gather":
		return collective.Gather(n, 0, dataBytes/float64(n-1)), nil
	case "sendrecv":
		return collective.SendRecv(n, 0, n-1, dataBytes), nil
	default:
		return nil, fmt.Errorf("unknown collective %q", kind)
	}
}
