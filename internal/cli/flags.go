package cli

import (
	"flag"
	"fmt"
	"time"

	"syccl/internal/collective"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

// SynthFlags holds every syccl-synth option. Registering the flags on an
// injected FlagSet (rather than the process-global one) keeps parsing and
// the error paths unit-testable.
type SynthFlags struct {
	Topo       string
	Collective string
	Size       string
	System     string
	Solver     string
	Out        string
	E1, E2     float64
	Workers    int
	Budget     time.Duration
	Timeout    time.Duration
	Seed       int64
	Explain    bool
	TracePath  string
	Summary    bool
	Sketch     string
	Stream     bool
	StopWithin float64
	Delta      string

	// hint is the parsed -sketch value, populated by Resolve.
	hint *sketch.Hint
	// delta is the parsed -delta value; base is the topology before the
	// delta was applied. Both populated by Resolve.
	delta *topology.Delta
	base  *topology.Topology
}

// NewSynthFlags registers syccl-synth's flags (including the -coll alias
// for -collective) on fs and returns the backing struct.
func NewSynthFlags(fs *flag.FlagSet) *SynthFlags {
	f := &SynthFlags{}
	fs.StringVar(&f.Topo, "topo", "a100x16", "topology spec")
	fs.StringVar(&f.Collective, "collective", "allgather", "collective kind")
	fs.StringVar(&f.Collective, "coll", "allgather", "alias for -collective")
	fs.StringVar(&f.Size, "size", "64M", "aggregate data size (e.g. 1K, 64M, 1G)")
	fs.StringVar(&f.System, "system", "syccl", "synthesizer: syccl | teccl | nccl")
	fs.StringVar(&f.Solver, "solver", "auto", "sub-demand solver: auto (MILP with flow-bound pruning and flow fallback) | exact (pure MILP) | flow (LP relaxation + guided rounding; syccl only)")
	fs.StringVar(&f.Out, "out", "", "write the schedule as MSCCL XML to this file")
	fs.Float64Var(&f.E1, "e1", 3.0, "coarse-pass epoch knob E1")
	fs.Float64Var(&f.E2, "e2", 0.5, "fine-pass epoch knob E2")
	fs.IntVar(&f.Workers, "workers", 0, "parallel solver instances (0 = GOMAXPROCS)")
	fs.DurationVar(&f.Budget, "teccl-budget", 10*time.Second, "TECCL solve budget")
	fs.DurationVar(&f.Timeout, "timeout", 0, "synthesis deadline (e.g. 500ms, 10s); on expiry the best schedule found so far is returned (0 = no limit)")
	fs.Int64Var(&f.Seed, "seed", 0, "random seed")
	fs.BoolVar(&f.Explain, "explain", false, "print the winning sketch combination in the paper's notation (syccl only)")
	fs.StringVar(&f.TracePath, "trace", "", "write a Chrome trace of the synthesis run (open in Perfetto)")
	fs.BoolVar(&f.Summary, "obs-summary", false, "print a span/counter summary of the run")
	fs.StringVar(&f.Sketch, "sketch", "", `sketch hint constraining the search, e.g. "dims=1,0;sizes=4,2;family=tree" (syccl only)`)
	fs.BoolVar(&f.Stream, "stream", false, "print each improving incumbent schedule as it is found (syccl only)")
	fs.Float64Var(&f.StopWithin, "stop-within", 0, "stop once the incumbent is within this percentage of the flow lower bound, e.g. 5 (0 = run to completion; syccl only)")
	fs.StringVar(&f.Delta, "delta", "", `topology delta applied before synthesis, e.g. "kill:3-17,slow:0-8*4" (kill:A-B fails a link, node:N fails a non-GPU node, slow:A-B*F scales link β, lag:A-B*F scales link α)`)
	return f
}

// Hint returns the sketch hint parsed from -sketch by Resolve (nil when
// the flag was empty).
func (f *SynthFlags) Hint() *sketch.Hint { return f.hint }

// ParsedDelta returns the topology delta parsed from -delta by Resolve
// (nil when the flag was empty). When a delta is present, Resolve
// returns the degraded topology.
func (f *SynthFlags) ParsedDelta() *topology.Delta { return f.delta }

// Base returns the un-degraded topology resolved from -topo (equal to
// Resolve's topology when no -delta was given).
func (f *SynthFlags) Base() *topology.Topology { return f.base }

// Resolve turns the parsed flag values into a topology and collective,
// surfacing the unknown-topology / bad-size / unknown-collective errors.
func (f *SynthFlags) Resolve() (*topology.Topology, *collective.Collective, error) {
	top, err := ParseTopology(f.Topo)
	if err != nil {
		return nil, nil, err
	}
	f.base = top
	if f.Delta != "" {
		delta, err := topology.ParseDelta(f.Delta)
		if err != nil {
			return nil, nil, fmt.Errorf("-delta: %v", err)
		}
		top, err = delta.Apply(f.base)
		if err != nil {
			return nil, nil, fmt.Errorf("-delta: %v", err)
		}
		f.delta = delta
	}
	size, err := ParseSize(f.Size)
	if err != nil {
		return nil, nil, err
	}
	col, err := BuildCollective(f.Collective, top.NumGPUs(), size)
	if err != nil {
		return nil, nil, err
	}
	switch f.System {
	case "syccl", "teccl", "nccl":
	default:
		return nil, nil, fmt.Errorf("unknown system %q", f.System)
	}
	switch f.Solver {
	case "", "auto", "exact", "flow":
	default:
		return nil, nil, fmt.Errorf("unknown solver mode %q (want auto, exact, or flow)", f.Solver)
	}
	if f.StopWithin < 0 || f.StopWithin > 100 {
		return nil, nil, fmt.Errorf("-stop-within %g out of range [0,100]", f.StopWithin)
	}
	hint, err := sketch.ParseHint(f.Sketch)
	if err != nil {
		return nil, nil, err
	}
	if hint != nil {
		if err := hint.Validate(top.NumDims()); err != nil {
			return nil, nil, err
		}
	}
	f.hint = hint
	return top, col, nil
}

// SimFlags holds every syccl-sim option.
type SimFlags struct {
	Topo       string
	XML        string
	Collective string
	Size       string
	Timeline   bool
	Events     int
	TracePath  string
}

// NewSimFlags registers syccl-sim's flags on fs and returns the backing
// struct.
func NewSimFlags(fs *flag.FlagSet) *SimFlags {
	f := &SimFlags{}
	fs.StringVar(&f.Topo, "topo", "a100x16", "topology spec")
	fs.StringVar(&f.XML, "xml", "", "MSCCL XML schedule file")
	fs.StringVar(&f.Collective, "collective", "", "optional: validate against this collective kind")
	fs.StringVar(&f.Collective, "coll", "", "alias for -collective")
	fs.StringVar(&f.Size, "size", "", "aggregate data size for validation/busbw")
	fs.BoolVar(&f.Timeline, "timeline", false, "print a per-GPU activity chart and event log")
	fs.IntVar(&f.Events, "events", 20, "event-log rows with -timeline (0 = all)")
	fs.StringVar(&f.TracePath, "trace", "", "write the simulated timeline as Chrome trace JSON (open in Perfetto)")
	return f
}

// Resolve validates the parsed flag values and builds the topology. The
// optional validation collective is resolved only when both -collective and
// -size are present (matching the tool's contract).
func (f *SimFlags) Resolve() (*topology.Topology, *collective.Collective, error) {
	if f.XML == "" {
		return nil, nil, fmt.Errorf("-xml is required")
	}
	top, err := ParseTopology(f.Topo)
	if err != nil {
		return nil, nil, err
	}
	var col *collective.Collective
	if f.Collective != "" && f.Size != "" {
		size, err := ParseSize(f.Size)
		if err != nil {
			return nil, nil, err
		}
		col, err = BuildCollective(f.Collective, top.NumGPUs(), size)
		if err != nil {
			return nil, nil, err
		}
	}
	return top, col, nil
}
