package cli

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"syccl/internal/collective"
)

func newSynth(t *testing.T, args ...string) (*SynthFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("syccl-synth", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := NewSynthFlags(fs)
	return f, fs.Parse(args)
}

func newSim(t *testing.T, args ...string) (*SimFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("syccl-sim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := NewSimFlags(fs)
	return f, fs.Parse(args)
}

func TestSynthFlagsDefaults(t *testing.T) {
	f, err := newSynth(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.Topo != "a100x16" || f.Collective != "allgather" || f.Size != "64M" ||
		f.System != "syccl" || f.Solver != "auto" || f.E1 != 3.0 || f.E2 != 0.5 ||
		f.Budget != 10*time.Second {
		t.Fatalf("defaults: %+v", f)
	}
	top, col, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if top.NumGPUs() != 16 || col.Kind != collective.KindAllGather {
		t.Fatalf("resolved %s / %v", top.Name, col.Kind)
	}
}

func TestSynthFlagsCollAlias(t *testing.T) {
	f, err := newSynth(t, "-coll", "alltoall")
	if err != nil {
		t.Fatal(err)
	}
	if f.Collective != "alltoall" {
		t.Fatalf("-coll alias: Collective = %q", f.Collective)
	}
	f, err = newSynth(t, "-collective", "reduce")
	if err != nil {
		t.Fatal(err)
	}
	if f.Collective != "reduce" {
		t.Fatalf("-collective: %q", f.Collective)
	}
}

func TestSynthFlagsSolver(t *testing.T) {
	for _, mode := range []string{"auto", "exact", "flow"} {
		f, err := newSynth(t, "-solver", mode)
		if err != nil {
			t.Fatal(err)
		}
		if f.Solver != mode {
			t.Fatalf("-solver %s: Solver = %q", mode, f.Solver)
		}
		if _, _, err := f.Resolve(); err != nil {
			t.Fatalf("-solver %s rejected: %v", mode, err)
		}
	}
}

func TestSynthFlagsTimeout(t *testing.T) {
	f, err := newSynth(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.Timeout != 0 {
		t.Fatalf("default -timeout = %v, want 0 (no limit)", f.Timeout)
	}
	f, err = newSynth(t, "-timeout", "750ms")
	if err != nil {
		t.Fatal(err)
	}
	if f.Timeout != 750*time.Millisecond {
		t.Fatalf("-timeout 750ms parsed as %v", f.Timeout)
	}
	if _, err = newSynth(t, "-timeout", "banana"); err == nil {
		t.Fatal("malformed -timeout accepted")
	}
}

func TestSynthFlagsTrace(t *testing.T) {
	f, err := newSynth(t, "-trace", "run.json", "-obs-summary")
	if err != nil {
		t.Fatal(err)
	}
	if f.TracePath != "run.json" || !f.Summary {
		t.Fatalf("trace flags: %+v", f)
	}
}

func TestSynthFlagsErrorPaths(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-topo", "nonsense"}, "unknown topology"},
		{[]string{"-coll", "nope"}, "unknown collective"},
		{[]string{"-size", "banana"}, "bad size"},
		{[]string{"-system", "magic"}, "unknown system"},
		{[]string{"-solver", "quantum"}, "unknown solver mode"},
	}
	for _, c := range cases {
		f, err := newSynth(t, c.args...)
		if err != nil {
			t.Fatalf("%v: parse: %v", c.args, err)
		}
		_, _, err = f.Resolve()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v: err = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestSimFlagsResolve(t *testing.T) {
	f, err := newSim(t, "-xml", "s.xml", "-topo", "h800small", "-coll", "allreduce", "-size", "1M", "-trace", "out.json")
	if err != nil {
		t.Fatal(err)
	}
	top, col, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if top.NumGPUs() != 24 || col == nil || col.Kind != collective.KindAllReduce {
		t.Fatalf("resolved %s / %v", top.Name, col)
	}
	if f.TracePath != "out.json" {
		t.Fatalf("TracePath = %q", f.TracePath)
	}
}

func TestSimFlagsOptionalCollective(t *testing.T) {
	// Without both -collective and -size no validation collective resolves.
	f, err := newSim(t, "-xml", "s.xml", "-coll", "allgather")
	if err != nil {
		t.Fatal(err)
	}
	_, col, err := f.Resolve()
	if err != nil || col != nil {
		t.Fatalf("col = %v, err = %v", col, err)
	}
}

func TestSimFlagsErrorPaths(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "-xml is required"},
		{[]string{"-xml", "s.xml", "-topo", "bogus"}, "unknown topology"},
		{[]string{"-xml", "s.xml", "-coll", "bogus", "-size", "1M"}, "unknown collective"},
		{[]string{"-xml", "s.xml", "-coll", "allgather", "-size", "junk"}, "bad size"},
	}
	for _, c := range cases {
		f, err := newSim(t, c.args...)
		if err != nil {
			t.Fatalf("%v: parse: %v", c.args, err)
		}
		_, _, err = f.Resolve()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v: err = %v, want %q", c.args, err, c.want)
		}
	}
}
