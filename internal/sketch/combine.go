package sketch

import (
	"math"

	"syccl/internal/lp"
	"syccl/internal/topology"
)

// Combination is a set of sketches with chunk-size ratios (§4.2): sketch
// Sketches[i] transmits fraction Fracs[i] of each chunk; fractions sum
// to 1.
type Combination struct {
	Sketches []*Sketch
	Fracs    []float64
}

// Single wraps one sketch carrying the whole chunk.
func Single(sk *Sketch) *Combination {
	return &Combination{Sketches: []*Sketch{sk}, Fracs: []float64{1}}
}

// Workload returns the fraction-weighted per-dimension, per-group
// workload of the combination.
func (c *Combination) Workload(top *topology.Topology) [][]float64 {
	w := make([][]float64, top.NumDims())
	for d := range w {
		w[d] = make([]float64, len(top.Dim(d).Groups))
	}
	for i, sk := range c.Sketches {
		sw := sk.Workload(top)
		for d := range sw {
			for g := range sw[d] {
				w[d][g] += c.Fracs[i] * sw[d][g]
			}
		}
	}
	return w
}

// DimWorkload sums Workload per dimension.
func (c *Combination) DimWorkload(top *topology.Topology) []float64 {
	w := c.Workload(top)
	out := make([]float64, len(w))
	for d := range w {
		for _, v := range w[d] {
			out[d] += v
		}
	}
	return out
}

// imbalance measures, per dimension, the spread between the most and
// least loaded active groups, summed over dimensions with any load.
func imbalance(w [][]float64) float64 {
	total := 0.0
	for d := range w {
		lo, hi := math.Inf(1), 0.0
		for _, v := range w[d] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 0 {
			total += hi - lo
		}
	}
	return total
}

// deficit is the replication objective: the total headroom below each
// dimension's most loaded group, Σ_d Σ_g (max_g' w[d][g'] − w[d][g]).
// Unlike max−min it strictly decreases as under-loaded groups fill, which
// lets the greedy replica selection make progress one replica at a time.
func deficit(w [][]float64) float64 {
	total := 0.0
	for d := range w {
		hi := 0.0
		for _, v := range w[d] {
			if v > hi {
				hi = v
			}
		}
		for _, v := range w[d] {
			total += hi - v
		}
	}
	return total
}

// Replicate implements §4.2 step 1: it replicates the sketch through the
// topology's symmetry action until the workload is balanced across groups
// in every dimension, and returns the resulting equal-fraction
// combination. maxReplicas ≤ 0 defaults to the symmetry order.
func Replicate(top *topology.Topology, sk *Sketch, maxReplicas int) *Combination {
	perms := Automorphisms(top)
	if maxReplicas <= 0 {
		maxReplicas = len(perms)
	}

	sketches := []*Sketch{sk}
	load := sk.Workload(top)
	add := func(a, b [][]float64) [][]float64 {
		out := make([][]float64, len(a))
		for d := range a {
			out[d] = make([]float64, len(a[d]))
			for g := range a[d] {
				out[d][g] = a[d][g] + b[d][g]
			}
		}
		return out
	}

	// Pre-map the sketch under every non-identity automorphism once.
	type variant struct {
		sk *Sketch
		w  [][]float64
	}
	variants := make([]variant, 0, len(perms))
	for _, p := range perms {
		if isIdentityPerm(p) {
			continue
		}
		m := sk.Map(top, p)
		variants = append(variants, variant{m, m.Workload(top)})
	}

	for len(sketches) < maxReplicas {
		cur := deficit(load)
		if cur < 1e-9 {
			break
		}
		bestIdx, bestScore := -1, cur
		for i, v := range variants {
			score := deficit(add(load, v.w))
			if score < bestScore-1e-12 {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // no replica improves balance further
		}
		sketches = append(sketches, variants[bestIdx].sk)
		load = add(load, variants[bestIdx].w)
	}

	fracs := make([]float64, len(sketches))
	for i := range fracs {
		fracs[i] = 1 / float64(len(sketches))
	}
	return &Combination{Sketches: sketches, Fracs: fracs}
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// ExpandAllToAll implements §4.3: replicate a one-to-all sketch to every
// GPU as root through the regular symmetry action, producing an N-sketch
// combination with even per-dimension workload.
//
// On a healthy topology the regular action always yields valid mappings.
// On degraded topologies (topology.Delta applied) a Sym permutation may
// no longer be an automorphism, so every mapped sketch is validated; when
// the regular action fails for a root, the verified automorphism family
// is scanned for a permutation carrying the root there. Roots that no
// symmetry can reach are returned in missing (ascending) for the caller
// to fill with a per-root sketch search; the returned combination holds
// the successfully mapped sketches in ascending root order.
func ExpandAllToAll(top *topology.Topology, sk *Sketch) (combo *Combination, missing []int) {
	n := top.NumGPUs()
	sketches := make([]*Sketch, 0, n)
	var autos [][]int // lazily fetched verified automorphisms
	for r := 0; r < n; r++ {
		if r == sk.Root {
			sketches = append(sketches, sk)
			continue
		}
		p := top.Sym.MapRoot(sk.Root, r)
		if m := sk.Map(top, top.Sym.Permutation(p)); m.Validate(top) == nil {
			sketches = append(sketches, m)
			continue
		}
		if autos == nil {
			autos = Automorphisms(top)
		}
		found := false
		for _, perm := range autos {
			if perm[sk.Root] != r {
				continue
			}
			if m := sk.Map(top, perm); m.Validate(top) == nil {
				sketches = append(sketches, m)
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, r)
		}
	}
	fracs := make([]float64, len(sketches))
	for i := range fracs {
		fracs[i] = 1 // each root's chunk is carried whole by its sketch
	}
	return &Combination{Sketches: sketches, Fracs: fracs}, missing
}

// Integrate implements §4.2 step 2: given one combination per "flavor"
// (typically each favoring a different dimension), find chunk ratios θ_i
// so that the per-dimension workload matches the topology's bandwidth
// shares u_d, fully utilizing every dimension. Returns nil when no valid
// allocation exists (e.g. all inputs load the same dimension).
func Integrate(top *topology.Topology, combos []*Combination) *Combination {
	if len(combos) == 0 {
		return nil
	}
	if len(combos) == 1 {
		return combos[0]
	}
	// Budgets are per physical PORT CLASS: dimensions sharing a NIC share
	// one bandwidth budget, so their workloads aggregate.
	nc := top.NumPortClasses()
	W := make([][]float64, len(combos)) // W[i][class]
	for i, c := range combos {
		dw := c.DimWorkload(top)
		W[i] = make([]float64, nc)
		for d, v := range dw {
			W[i][top.Dim(d).PortClass] += v
		}
	}
	u := make([]float64, nc)
	for cl := 0; cl < nc; cl++ {
		u[cl] = top.ClassShare(cl)
	}

	// LP: variables θ_i ≥ 0 (Σθ=1) and per-class deviation slacks ε ≥ 0.
	// Σ_i θ_i·W[i][c] − u_c·T = ±ε_c where T = Σ_c Σ_i θ_i·W[i][c].
	// Minimize Σ ε_c.
	p := lp.NewProblem(len(combos) + nc)
	for cl := 0; cl < nc; cl++ {
		p.SetObjective(len(combos)+cl, 1)
	}
	var sumTerms []lp.Term
	for i := range combos {
		sumTerms = append(sumTerms, lp.Term{Var: i, Coeff: 1})
	}
	p.AddConstraint(sumTerms, lp.EQ, 1)
	for cl := 0; cl < nc; cl++ {
		var hi, lo []lp.Term
		for i := range combos {
			// Coefficient of θ_i in (W_c(θ) − u_c·T(θ)).
			var tot float64
			for cc := 0; cc < nc; cc++ {
				tot += W[i][cc]
			}
			coeff := W[i][cl] - u[cl]*tot
			hi = append(hi, lp.Term{Var: i, Coeff: coeff})
			lo = append(lo, lp.Term{Var: i, Coeff: coeff})
		}
		hi = append(hi, lp.Term{Var: len(combos) + cl, Coeff: -1})
		lo = append(lo, lp.Term{Var: len(combos) + cl, Coeff: 1})
		p.AddConstraint(hi, lp.LE, 0)
		p.AddConstraint(lo, lp.GE, 0)
	}
	sol, err := p.Solve()
	if err != nil || sol.Status != lp.StatusOptimal {
		return nil
	}
	// Reject allocations that leave a class badly mismatched: the
	// residual deviation must be small relative to the total workload.
	var total float64
	for i := range combos {
		for cl := 0; cl < nc; cl++ {
			total += sol.X[i] * W[i][cl]
		}
	}
	if total <= 0 {
		return nil
	}
	var dev float64
	for cl := 0; cl < nc; cl++ {
		dev += sol.X[len(combos)+cl]
	}
	if dev/total > 0.25 {
		return nil
	}

	out := &Combination{}
	for i, c := range combos {
		theta := sol.X[i]
		if theta < 1e-9 {
			continue
		}
		for j, sk := range c.Sketches {
			out.Sketches = append(out.Sketches, sk)
			out.Fracs = append(out.Fracs, theta*c.Fracs[j])
		}
	}
	if len(out.Sketches) == 0 {
		return nil
	}
	return out
}
