package sketch

import (
	"fmt"
	"strconv"
	"strings"
)

// Hint is a TACCL-style communication sketch hint: a partial human (or
// upstream-system) specification of the schedule shape that seeds the
// search front and filters the enumerated sketches. All fields are
// optional; the zero Hint constrains nothing.
//
// Constraints are hard: a sketch that violates any stated field is never
// emitted, so a hinted search explores a (much) smaller space and the
// caller's cache keys must distinguish hinted from unhinted runs (see
// Canonical).
type Hint struct {
	// DimOrder constrains the dimension walked at each stage: stage k
	// (0-based) may only use dimension DimOrder[k]. Stages beyond the
	// listed prefix are unconstrained. An entry also implies single-
	// dimension stages for the constrained prefix.
	DimOrder []int
	// GroupSizes constrains the per-group destination count at each
	// stage: stage k must fan out to exactly GroupSizes[k] destinations
	// per participating group. Stages beyond the prefix are
	// unconstrained.
	GroupSizes []int
	// Family names an algorithm family: "tree" restricts every stage to
	// a single dimension (classic hierarchical trees), "flat" restricts
	// every stage to full fan-out (shallow latency-optimal shapes).
	// Empty means any.
	Family string
}

// Hint family values accepted by ParseHint.
const (
	FamilyAny  = ""
	FamilyTree = "tree"
	FamilyFlat = "flat"
)

// IsZero reports whether the hint constrains nothing. A nil hint is zero.
func (h *Hint) IsZero() bool {
	return h == nil || (len(h.DimOrder) == 0 && len(h.GroupSizes) == 0 && h.Family == FamilyAny)
}

// Canonical renders the hint as its canonical spec string — the exact
// form ParseHint accepts — with fields in fixed order and empty fields
// omitted. A zero (or nil) hint canonicalizes to "". The canonical form
// is what cache keys and plan keys embed, so hinted and unhinted requests
// never collide and two spellings of the same hint always do.
func (h *Hint) Canonical() string {
	if h.IsZero() {
		return ""
	}
	var parts []string
	if len(h.DimOrder) > 0 {
		parts = append(parts, "dims="+joinInts(h.DimOrder))
	}
	if len(h.GroupSizes) > 0 {
		parts = append(parts, "sizes="+joinInts(h.GroupSizes))
	}
	if h.Family != FamilyAny {
		parts = append(parts, "family="+h.Family)
	}
	return strings.Join(parts, ";")
}

func joinInts(xs []int) string {
	ss := make([]string, len(xs))
	for i, x := range xs {
		ss[i] = strconv.Itoa(x)
	}
	return strings.Join(ss, ",")
}

// ParseHint parses a hint spec of semicolon-separated fields:
//
//	dims=1,0;sizes=4,2;family=tree
//
// dims lists the dimension index to use at each stage, sizes the
// per-group destination count at each stage, and family one of "tree" or
// "flat". Fields may appear in any order, each at most once; whitespace
// around separators is ignored. An empty (or all-whitespace) spec returns
// (nil, nil) — no hint.
func ParseHint(spec string) (*Hint, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	h := &Hint{}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("sketch: hint field %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("sketch: hint field %q repeated", key)
		}
		seen[key] = true
		switch key {
		case "dims":
			xs, err := parseIntList(val, 0)
			if err != nil {
				return nil, fmt.Errorf("sketch: hint dims: %v", err)
			}
			h.DimOrder = xs
		case "sizes":
			xs, err := parseIntList(val, 1)
			if err != nil {
				return nil, fmt.Errorf("sketch: hint sizes: %v", err)
			}
			h.GroupSizes = xs
		case "family":
			switch val {
			case FamilyTree, FamilyFlat:
				h.Family = val
			default:
				return nil, fmt.Errorf("sketch: unknown hint family %q (want tree or flat)", val)
			}
		default:
			return nil, fmt.Errorf("sketch: unknown hint field %q (want dims, sizes, or family)", key)
		}
	}
	if h.IsZero() {
		return nil, nil
	}
	return h, nil
}

// maxHintStages bounds the per-stage constraint lists so a hostile spec
// cannot make downstream keys or loops unbounded.
const maxHintStages = 64

func parseIntList(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty entry in %q", s)
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		if v < min || v > 1<<20 {
			return nil, fmt.Errorf("entry %d out of range [%d, %d]", v, min, 1<<20)
		}
		out = append(out, v)
	}
	if len(out) > maxHintStages {
		return nil, fmt.Errorf("more than %d entries", maxHintStages)
	}
	return out, nil
}

// Validate checks the hint against a concrete topology: every constrained
// dimension must exist. Group sizes and family need no topology check —
// an unsatisfiable size simply yields no sketches.
func (h *Hint) Validate(numDims int) error {
	if h == nil {
		return nil
	}
	for _, d := range h.DimOrder {
		if d < 0 || d >= numDims {
			return fmt.Errorf("sketch: hint dimension %d out of range (topology has %d dimensions)", d, numDims)
		}
	}
	return nil
}

// allowsDim reports whether the hint permits dimension d at stage k.
func (h *Hint) allowsDim(k, d int) bool {
	if h == nil {
		return true
	}
	if k < len(h.DimOrder) && h.DimOrder[k] != d {
		return false
	}
	return true
}

// stageSize returns the forced destination count for stage k, or 0 when
// the stage is unconstrained.
func (h *Hint) stageSize(k int) int {
	if h == nil || k >= len(h.GroupSizes) {
		return 0
	}
	return h.GroupSizes[k]
}

// singleDim reports whether stage k must use exactly one dimension:
// family tree constrains every stage, and a DimOrder entry pins the
// stage to its named dimension.
func (h *Hint) singleDim(k int) bool {
	if h == nil {
		return false
	}
	return h.Family == FamilyTree || k < len(h.DimOrder)
}

// Matches reports whether a complete sketch satisfies every hint
// constraint. The search enforces the constraints during enumeration;
// Matches exists for callers that filter externally produced sketches
// (and for tests asserting the search's output).
func (h *Hint) Matches(s *Sketch) bool {
	if h.IsZero() {
		return true
	}
	// Family flat (full fan-out) is structural — the sub-demand must cover
	// every remaining uninformed GPU of its group — and is enforced during
	// enumeration; Matches checks the per-stage dimension and count
	// constraints, which are inspectable on the finished sketch.
	for k, st := range s.Stages {
		dims := map[int]bool{}
		for _, sd := range st {
			dims[sd.Dim] = true
			if want := h.stageSize(k); want > 0 && len(sd.Dsts) != want {
				return false
			}
		}
		if h.singleDim(k) && len(dims) != 1 {
			return false
		}
		if k < len(h.DimOrder) && !dims[h.DimOrder[k]] {
			return false
		}
	}
	return true
}
