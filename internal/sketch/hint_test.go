package sketch

import (
	"context"
	"testing"

	"syccl/internal/topology"
)

func TestParseHint(t *testing.T) {
	cases := []struct {
		spec      string
		canonical string
		wantErr   bool
	}{
		{"", "", false},
		{"   ", "", false},
		{"dims=1,0", "dims=1,0", false},
		{"sizes=4,2", "sizes=4,2", false},
		{"family=tree", "family=tree", false},
		{"family=flat", "family=flat", false},
		{"dims=1,0;sizes=4,2;family=tree", "dims=1,0;sizes=4,2;family=tree", false},
		// Field order and whitespace normalize away.
		{"family=tree; dims=1,0 ; sizes=4,2", "dims=1,0;sizes=4,2;family=tree", false},
		{"dims=1;;family=flat", "dims=1;family=flat", false},
		{"family=ring", "", true},
		{"dims=a", "", true},
		{"dims=-1", "", true},
		{"sizes=0", "", true},
		// Cut splits at the first '=', leaving value "1=2" — a bad integer.
		{"dims=1=2", "", true},
		{"bogus=1", "", true},
		{"dims=1;dims=2", "", true},
		{"justtext", "", true},
	}
	for _, c := range cases {
		h, err := ParseHint(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseHint(%q): expected error, got %+v", c.spec, h)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseHint(%q): %v", c.spec, err)
			continue
		}
		if got := h.Canonical(); got != c.canonical {
			t.Errorf("ParseHint(%q).Canonical() = %q, want %q", c.spec, got, c.canonical)
		}
		// Canonical form round-trips to the same hint.
		again, err := ParseHint(h.Canonical())
		if err != nil {
			t.Errorf("re-parse %q: %v", h.Canonical(), err)
		} else if again.Canonical() != h.Canonical() {
			t.Errorf("canonical not a fixed point: %q vs %q", again.Canonical(), h.Canonical())
		}
	}
}

func TestHintValidate(t *testing.T) {
	h := &Hint{DimOrder: []int{0, 1}}
	if err := h.Validate(2); err != nil {
		t.Fatalf("valid hint rejected: %v", err)
	}
	if err := h.Validate(1); err == nil {
		t.Fatal("out-of-range dimension accepted")
	}
	var nilHint *Hint
	if err := nilHint.Validate(0); err != nil {
		t.Fatalf("nil hint: %v", err)
	}
}

// hintTopo is a 2-dimension fabric (4 servers x 4 GPUs) with enough
// structure for dimension-order and size constraints to bite.
func hintTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.Build(topology.Config{
		Name: "hint-test", Servers: 4, GPUsPerServer: 4,
		NVAlpha: 1e-6, NVBeta: 1 / 200e9, NetAlpha: 5e-6, NetBeta: 1 / 50e9,
	})
}

func TestSearchHonorsHint(t *testing.T) {
	top := hintTopo(t)
	unhinted := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	if len(unhinted) == 0 {
		t.Fatal("unhinted search found nothing")
	}

	for _, h := range []*Hint{
		{DimOrder: []int{1, 0}},
		{DimOrder: []int{0, 1}},
		{Family: FamilyTree},
		{GroupSizes: []int{1}},
		{DimOrder: []int{1}, GroupSizes: []int{3}, Family: FamilyTree},
	} {
		got := SearchBroadcast(context.Background(), top, 0, SearchOptions{Hint: h})
		if len(got) == 0 {
			t.Errorf("hint %q: search found nothing", h.Canonical())
			continue
		}
		if len(got) >= len(unhinted) {
			t.Errorf("hint %q: %d sketches, expected fewer than the %d unhinted",
				h.Canonical(), len(got), len(unhinted))
		}
		for _, sk := range got {
			if !h.Matches(sk) {
				t.Errorf("hint %q: emitted sketch violates the hint: %+v", h.Canonical(), sk)
			}
			if err := sk.Validate(top); err != nil {
				t.Errorf("hint %q: invalid sketch: %v", h.Canonical(), err)
			}
		}
	}
}

func TestSearchUnsatisfiableHint(t *testing.T) {
	top := hintTopo(t)
	// No group has 100 uninformed members, so a forced size of 100 can
	// never be satisfied: the search must return nothing rather than
	// sketches that ignore the hint.
	got := SearchBroadcast(context.Background(), top, 0, SearchOptions{Hint: &Hint{GroupSizes: []int{100}}})
	if len(got) != 0 {
		t.Fatalf("unsatisfiable hint produced %d sketches", len(got))
	}
}
