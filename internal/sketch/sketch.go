// Package sketch implements SyCCL's central concept: the decomposition of
// a collective demand into per-group sub-demands across time stages (§3.2,
// §4), the enumeration-based search with symmetry prunings (§4.1), the
// replication and chunk-allocation machinery that forms sketch
// combinations (§4.2), and the extension to all-to-all collectives (§4.3).
package sketch

import (
	"fmt"
	"sort"
	"strings"

	"syccl/internal/topology"
)

// SubDemand is R_{k,d,g} (Table 3): destination GPUs expect to receive
// chunks from source GPUs, within group Group of dimension Dim.
type SubDemand struct {
	Dim   int
	Group int
	Srcs  []int // global GPU IDs holding the payload, sorted
	Dsts  []int // global GPU IDs to be covered, sorted
}

// Stage is the set of sub-demands executing concurrently at one stage.
type Stage []SubDemand

// Sketch describes how one chunk (Broadcast) or one chunk bundle
// (Scatter) flows from Root to all other GPUs through K stages.
type Sketch struct {
	Root    int
	Scatter bool // per-destination distinct chunks (Scatter tree semantics)
	Stages  []Stage
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	out := &Sketch{Root: s.Root, Scatter: s.Scatter, Stages: make([]Stage, len(s.Stages))}
	for k, st := range s.Stages {
		out.Stages[k] = make(Stage, len(st))
		for i, sd := range st {
			out.Stages[k][i] = SubDemand{
				Dim:   sd.Dim,
				Group: sd.Group,
				Srcs:  append([]int(nil), sd.Srcs...),
				Dsts:  append([]int(nil), sd.Dsts...),
			}
		}
	}
	return out
}

// Covered returns the set of GPUs informed by the sketch (root plus all
// destinations).
func (s *Sketch) Covered() map[int]bool {
	out := map[int]bool{s.Root: true}
	for _, st := range s.Stages {
		for _, sd := range st {
			for _, d := range sd.Dsts {
				out[d] = true
			}
		}
	}
	return out
}

// Validate checks sketch invariants against a topology: sources must be
// informed before their stage, each GPU is a destination at most once, and
// every sub-demand stays within its declared group.
func (s *Sketch) Validate(top *topology.Topology) error {
	informed := map[int]bool{s.Root: true}
	seenDst := map[int]bool{}
	for k, st := range s.Stages {
		newly := map[int]bool{}
		for _, sd := range st {
			dim := top.Dim(sd.Dim)
			for _, src := range sd.Srcs {
				if !informed[src] {
					return fmt.Errorf("sketch: stage %d: source %d not informed", k, src)
				}
				if dim.GroupOf(src) != sd.Group {
					return fmt.Errorf("sketch: stage %d: source %d not in dim %d group %d", k, src, sd.Dim, sd.Group)
				}
			}
			for _, dst := range sd.Dsts {
				if informed[dst] || seenDst[dst] {
					return fmt.Errorf("sketch: stage %d: GPU %d is a destination twice", k, dst)
				}
				if dim.GroupOf(dst) != sd.Group {
					return fmt.Errorf("sketch: stage %d: destination %d not in dim %d group %d", k, dst, sd.Dim, sd.Group)
				}
				seenDst[dst] = true
				newly[dst] = true
			}
			if len(sd.Srcs) == 0 || len(sd.Dsts) == 0 {
				return fmt.Errorf("sketch: stage %d has empty sub-demand", k)
			}
		}
		for d := range newly {
			informed[d] = true
		}
	}
	return nil
}

// Complete reports whether the sketch informs every GPU of the topology.
func (s *Sketch) Complete(top *topology.Topology) bool {
	return len(s.Covered()) == top.NumGPUs()
}

// ParentAssignment assigns each destination a parent source, round-robin
// over the sub-demand's sorted sources. This canonical assignment is used
// for Scatter subtree bookkeeping and workload estimates; the sub-schedule
// solver remains free to schedule within each group.
func (sd *SubDemand) ParentAssignment() map[int]int {
	out := make(map[int]int, len(sd.Dsts))
	for i, d := range sd.Dsts {
		out[d] = sd.Srcs[i%len(sd.Srcs)]
	}
	return out
}

// SubtreeSizes returns, for every GPU, the size of its subtree (itself
// plus all GPUs whose chunks it relays) under the canonical parent
// assignment. For Broadcast sketches every GPU's subtree is 1 — the value
// is only meaningful for Scatter workload accounting.
func (s *Sketch) SubtreeSizes(top *topology.Topology) map[int]int {
	parent := map[int]int{}
	for _, st := range s.Stages {
		for _, sd := range st {
			for d, p := range sd.ParentAssignment() {
				parent[d] = p
			}
		}
	}
	size := map[int]int{}
	// Depth-first accumulation over the parent forest.
	children := map[int][]int{}
	for d, p := range parent {
		children[p] = append(children[p], d)
	}
	var count func(v int) int
	count = func(v int) int {
		c := 1
		for _, ch := range children[v] {
			c += count(ch)
		}
		size[v] = c
		return c
	}
	count(s.Root)
	return size
}

// Workload computes w_{d,g} (§4.2): for Broadcast, the number of
// deliveries each group carries; for Scatter, deliveries weighted by the
// receiving GPU's subtree size (a GPU with f descendants receives f+1
// chunks through its inbound edge).
func (s *Sketch) Workload(top *topology.Topology) [][]float64 {
	w := make([][]float64, top.NumDims())
	for d := range w {
		w[d] = make([]float64, len(top.Dim(d).Groups))
	}
	var subtree map[int]int
	if s.Scatter {
		subtree = s.SubtreeSizes(top)
	}
	for _, st := range s.Stages {
		for _, sd := range st {
			for _, dst := range sd.Dsts {
				if s.Scatter {
					w[sd.Dim][sd.Group] += float64(subtree[dst])
				} else {
					w[sd.Dim][sd.Group]++
				}
			}
		}
	}
	return w
}

// DimWorkload sums Workload over groups per dimension.
func (s *Sketch) DimWorkload(top *topology.Topology) []float64 {
	w := s.Workload(top)
	out := make([]float64, len(w))
	for d := range w {
		for _, v := range w[d] {
			out[d] += v
		}
	}
	return out
}

// Map applies a GPU permutation to the sketch, recomputing group indices
// from the topology. perm must be an automorphism (group-preserving), as
// produced by topology.Symmetry.
func (s *Sketch) Map(top *topology.Topology, perm []int) *Sketch {
	out := &Sketch{Root: perm[s.Root], Scatter: s.Scatter, Stages: make([]Stage, len(s.Stages))}
	for k, st := range s.Stages {
		out.Stages[k] = make(Stage, len(st))
		for i, sd := range st {
			nd := SubDemand{Dim: sd.Dim}
			for _, v := range sd.Srcs {
				nd.Srcs = append(nd.Srcs, perm[v])
			}
			for _, v := range sd.Dsts {
				nd.Dsts = append(nd.Dsts, perm[v])
			}
			sort.Ints(nd.Srcs)
			sort.Ints(nd.Dsts)
			nd.Group = top.Dim(sd.Dim).GroupOf(nd.Srcs[0])
			out.Stages[k][i] = nd
		}
	}
	return out
}

// Descriptor returns the canonical structural key used by pruning #1:
// sketches generated with canonical destination selection that share a
// descriptor are isomorphic under the topology's symmetry.
func (s *Sketch) Descriptor() string {
	var sb strings.Builder
	if s.Scatter {
		sb.WriteString("S|")
	} else {
		sb.WriteString("B|")
	}
	for k, st := range s.Stages {
		parts := make([]string, len(st))
		for i, sd := range st {
			parts[i] = fmt.Sprintf("d%d:s%d:r%d", sd.Dim, len(sd.Srcs), len(sd.Dsts))
		}
		sort.Strings(parts)
		fmt.Fprintf(&sb, "k%d[%s]", k, strings.Join(parts, ","))
	}
	return sb.String()
}

// ExactDescriptor includes the concrete GPU sets; used when pruning #1 is
// disabled so only literally identical sketches collapse.
func (s *Sketch) ExactDescriptor() string {
	var sb strings.Builder
	sb.WriteString(s.Descriptor())
	for _, st := range s.Stages {
		for _, sd := range st {
			fmt.Fprintf(&sb, "|%v>%v", sd.Srcs, sd.Dsts)
		}
	}
	return sb.String()
}

// String renders the sketch compactly for logs and debugging.
func (s *Sketch) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sketch(root=%d", s.Root)
	if s.Scatter {
		sb.WriteString(",scatter")
	}
	sb.WriteString(")")
	for k, st := range s.Stages {
		fmt.Fprintf(&sb, " stage%d{", k)
		for i, sd := range st {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "D%d.G%d:%v→%v", sd.Dim, sd.Group, sd.Srcs, sd.Dsts)
		}
		sb.WriteString("}")
	}
	return sb.String()
}
