package sketch

import (
	"fmt"
	"sort"
	"strings"

	"syccl/internal/topology"
)

// Describe renders the sketch in the paper's notation — per stage, the
// sub-demands as "D<dim>.G<group>: {sources} → {destinations}" — plus the
// per-dimension workload. Appendix C argues this readability is a feature
// in itself: unlike raw MILP output, an expert can take the winning
// sketch and hand-optimize its implementation.
func (s *Sketch) Describe(top *topology.Topology) string {
	var b strings.Builder
	kind := "Broadcast"
	if s.Scatter {
		kind = "Scatter"
	}
	fmt.Fprintf(&b, "%s sketch rooted at GPU %d, %d stages\n", kind, s.Root, len(s.Stages))
	for k, st := range s.Stages {
		fmt.Fprintf(&b, "  stage %d:\n", k)
		for _, sd := range st {
			fmt.Fprintf(&b, "    D%d.G%-3d (%s): %s → %s\n",
				sd.Dim, sd.Group, top.Dim(sd.Dim).Name, intSet(sd.Srcs), intSet(sd.Dsts))
		}
	}
	w := s.DimWorkload(top)
	parts := make([]string, len(w))
	for d, v := range w {
		parts[d] = fmt.Sprintf("%s=%g", top.Dim(d).Name, v)
	}
	fmt.Fprintf(&b, "  workload: %s\n", strings.Join(parts, " "))
	return b.String()
}

// DescribeCombination summarizes a combination: the distinct sketch
// shapes with their multiplicities and chunk fractions, then one fully
// expanded representative per shape.
func (c *Combination) DescribeCombination(top *topology.Topology) string {
	type shape struct {
		rep   *Sketch
		count int
		frac  float64
	}
	shapes := map[string]*shape{}
	var order []string
	for i, sk := range c.Sketches {
		key := sk.Descriptor()
		if sh, ok := shapes[key]; ok {
			sh.count++
			sh.frac += c.Fracs[i]
		} else {
			shapes[key] = &shape{rep: sk, count: 1, frac: c.Fracs[i]}
			order = append(order, key)
		}
	}
	sort.Strings(order)
	var b strings.Builder
	fmt.Fprintf(&b, "combination: %d sketches, %d distinct shapes\n", len(c.Sketches), len(shapes))
	for _, key := range order {
		sh := shapes[key]
		fmt.Fprintf(&b, "— shape ×%d, total chunk fraction %.3f:\n", sh.count, sh.frac)
		for _, line := range strings.Split(strings.TrimRight(sh.rep.Describe(top), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// intSet renders a sorted GPU set compactly, collapsing runs: {4..7,12}.
func intSet(vals []int) string {
	if len(vals) == 0 {
		return "{}"
	}
	sorted := append([]int(nil), vals...)
	sort.Ints(sorted)
	var parts []string
	start, prev := sorted[0], sorted[0]
	flush := func() {
		switch {
		case start == prev:
			parts = append(parts, fmt.Sprintf("%d", start))
		case prev == start+1:
			parts = append(parts, fmt.Sprintf("%d,%d", start, prev))
		default:
			parts = append(parts, fmt.Sprintf("%d..%d", start, prev))
		}
	}
	for _, v := range sorted[1:] {
		if v == prev+1 {
			prev = v
			continue
		}
		flush()
		start, prev = v, v
	}
	flush()
	return "{" + strings.Join(parts, ",") + "}"
}
