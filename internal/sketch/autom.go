package sketch

import (
	"sync"

	"syccl/internal/topology"
)

// Automorphisms returns a family of verified GPU permutations that
// preserve every dimension's group partition. It is richer than the
// regular action in topology.Symmetry: besides global axis shifts it
// includes root-stabilizing elements (tail rotations, transpositions),
// which replication needs to rebalance a Broadcast without moving its
// root (Fig 10 maps D1.G1→D1.G3 while GPU 0 stays fixed).
//
// Every candidate is validated against the topology, so over-generation
// is harmless; results are memoized per topology.
func Automorphisms(top *topology.Topology) [][]int {
	automCacheMu.Lock()
	defer automCacheMu.Unlock()
	if perms, ok := automCache[top]; ok {
		return perms
	}
	perms := generateAutomorphisms(top)
	automCache[top] = perms
	return perms
}

var (
	automCacheMu sync.Mutex
	automCache   = map[*topology.Topology][][]int{}
)

const maxAutomorphisms = 4096

func generateAutomorphisms(top *topology.Topology) [][]int {
	sym := top.Sym
	sPerms := axisPerms(sym.Server)
	gPerms := axisPerms(sym.Local)

	var out [][]int
	seen := map[string]bool{}
	emit := func(sp, gp []int) {
		if len(out) >= maxAutomorphisms {
			return
		}
		perm := make([]int, top.NumGPUs())
		g := sym.Local.N
		for i := range perm {
			perm[i] = sp[i/g]*g + gp[i%g]
		}
		key := permKey(perm)
		if seen[key] {
			return
		}
		if !groupPreserving(top, perm) {
			return
		}
		seen[key] = true
		out = append(out, perm)
	}

	if len(sPerms)*len(gPerms) <= maxAutomorphisms {
		for _, sp := range sPerms {
			for _, gp := range gPerms {
				emit(sp, gp)
			}
		}
	} else {
		// Too many combinations: keep global-shift products plus each
		// axis's full family against the other axis's identity.
		sGlobal := globalShifts(sym.Server)
		gGlobal := globalShifts(sym.Local)
		for _, sp := range sGlobal {
			for _, gp := range gGlobal {
				emit(sp, gp)
			}
		}
		idS, idG := identity(sym.Server.N), identity(sym.Local.N)
		for _, sp := range sPerms {
			emit(sp, idG)
		}
		for _, gp := range gPerms {
			emit(idS, gp)
		}
	}
	return out
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// globalShifts returns the axis's transitive shift family (XOR masks or
// cyclic rotations).
func globalShifts(a topology.Axis) [][]int {
	n := a.N
	if n <= 0 {
		n = 1
	}
	out := make([][]int, 0, n)
	for m := 0; m < n; m++ {
		p := make([]int, n)
		for x := 0; x < n; x++ {
			if a.Xor {
				p[x] = x ^ m
			} else {
				p[x] = (x + m) % n
			}
		}
		out = append(out, p)
	}
	return out
}

// axisPerms over-generates candidate axis permutations: global shifts,
// rotations of the tail fixing index 0, and (for small axes)
// transpositions. Invalid candidates are filtered by the topology check.
func axisPerms(a topology.Axis) [][]int {
	n := a.N
	if n <= 1 {
		return [][]int{identity(max(n, 1))}
	}
	var out [][]int
	out = append(out, globalShifts(a)...)
	// Tail rotations fixing 0 (valid on flat axes).
	for k := 1; k < n-1; k++ {
		p := make([]int, n)
		for x := 1; x < n; x++ {
			p[1+((x-1+k)%(n-1))] = x
		}
		q := make([]int, n)
		for i, v := range p {
			q[v] = i
		}
		q[0] = 0
		out = append(out, q)
	}
	// Transpositions for small axes (within-block swaps survive the
	// validity filter on hierarchical axes).
	if n <= 10 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				p := identity(n)
				p[i], p[j] = j, i
				out = append(out, p)
			}
		}
	}
	return out
}

func groupPreserving(top *topology.Topology, perm []int) bool {
	for _, dim := range top.Dims {
		for g, grp := range dim.Groups {
			img := dim.GroupOf(perm[grp[0]])
			for _, gpu := range grp[1:] {
				if dim.GroupOf(perm[gpu]) != img {
					return false
				}
			}
			// On degraded topologies groups of one dimension can carry
			// different α/β; a true symmetry must map groups onto
			// equally-costed groups, and must not change group size
			// (degraded partitions need not be uniform).
			if img >= 0 {
				if dim.GroupSize(img) != len(grp) ||
					dim.AlphaOf(img) != dim.AlphaOf(g) || dim.BetaOf(img) != dim.BetaOf(g) {
					return false
				}
			}
		}
	}
	return true
}

func permKey(p []int) string {
	b := make([]byte, 0, len(p)*2)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8))
	}
	return string(b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
