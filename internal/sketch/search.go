package sketch

import (
	"context"
	"sort"

	"syccl/internal/obs"
	"syccl/internal/topology"
)

// SearchOptions controls the enumeration-based sketch search (§4.1).
type SearchOptions struct {
	// MaxStages bounds K. Zero defaults to NumDims+1 for Broadcast and
	// NumDims for Scatter (pruning #3: each dimension passed at most
	// once on a root-to-leaf path).
	MaxStages int
	// MaxSketches caps the number of complete sketches returned
	// (default 64). The search explores shallow, full-fan-out shapes
	// first so the classic hierarchical sketches always survive the cap.
	MaxSketches int
	// MaxNodes caps explored search nodes (default 50000).
	MaxNodes int
	// DisablePrune1 turns off isomorphism deduplication (Fig 17a).
	DisablePrune1 bool
	// DisablePrune2 turns off the cross-group consistency requirement
	// (Fig 17a).
	DisablePrune2 bool
	// FullFanoutOnly restricts each sub-demand to cover all remaining
	// GPUs of its group (always set for Scatter, where partial coverage
	// multiplies relayed volume).
	FullFanoutOnly bool
	// MaxCountChoices bounds how many distinct destination counts are
	// tried per dimension per stage (default 3: full, half, one).
	MaxCountChoices int
	// Hint optionally constrains the enumeration (TACCL-style sketch
	// hints): per-stage dimension order, per-stage destination counts,
	// and an algorithm family. Constraints are hard filters, so hinted
	// searches must key caches differently from unhinted ones (see
	// Hint.Canonical). Nil constrains nothing.
	Hint *Hint
	// Rec optionally records a search span plus node/sketch counters
	// (nil: no instrumentation).
	Rec *obs.Recorder
}

func (o SearchOptions) withDefaults(top *topology.Topology, scatter bool) SearchOptions {
	if o.MaxStages <= 0 {
		o.MaxStages = top.NumDims() + 1
		if scatter {
			o.MaxStages = top.NumDims()
		}
	}
	if o.MaxSketches <= 0 {
		o.MaxSketches = 64
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 50000
	}
	if o.MaxCountChoices <= 0 {
		o.MaxCountChoices = 4
	}
	if scatter {
		o.FullFanoutOnly = true
	}
	if o.Hint != nil {
		if o.Hint.Family == FamilyFlat {
			o.FullFanoutOnly = true
		}
		// A dimension order longer than the stage budget is an explicit
		// ask for a deeper tree (including dimension reuse on Scatter,
		// where MaxStages > NumDims is the documented relay opt-out).
		if len(o.Hint.DimOrder) > o.MaxStages {
			o.MaxStages = len(o.Hint.DimOrder)
		}
	}
	return o
}

// SearchBroadcast enumerates Broadcast sketches rooted at root. A
// cancelled ctx stops the enumeration early and returns the sketches
// found so far (possibly none).
func SearchBroadcast(ctx context.Context, top *topology.Topology, root int, opts SearchOptions) []*Sketch {
	return runSearch(ctx, top, root, false, opts)
}

// SearchScatter enumerates Scatter sketches rooted at root (used for
// AlltoAll decomposition; pruning #3 bounds the relay count). Cancellation
// behaves as in SearchBroadcast.
func SearchScatter(ctx context.Context, top *topology.Topology, root int, opts SearchOptions) []*Sketch {
	return runSearch(ctx, top, root, true, opts)
}

// dimState is one eligible dimension at a stage: the groups holding both
// informed and uninformed GPUs, and their uninformed counts.
type dimState struct {
	dim            int
	groups         []int
	minUn, maxUn   int
	minInf, maxInf int
	// suggested holds structure-derived destination counts: for each
	// lower dimension, the number of its groups represented among the
	// uninformed GPUs ("one per remote server"-style fan-outs).
	suggested []int
}

type searcher struct {
	top       *topology.Topology
	opts      SearchOptions
	scatter   bool
	seen      map[string]bool
	out       []*Sketch
	nodes     int
	ctx       context.Context
	cancelled bool
}

func runSearch(ctx context.Context, top *topology.Topology, root int, scatter bool, opts SearchOptions) []*Sketch {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := opts.Rec.StartSpan("sketch.search")
	sp.SetInt("root", int64(root))
	if scatter {
		sp.SetStr("shape", "scatter")
	} else {
		sp.SetStr("shape", "broadcast")
	}
	defer sp.End()
	s := &searcher{
		top:     top,
		opts:    opts.withDefaults(top, scatter),
		scatter: scatter,
		seen:    make(map[string]bool),
		ctx:     ctx,
	}
	informed := make([]bool, top.NumGPUs())
	informed[root] = true
	start := func() ([]bool, *Sketch) {
		inf := append([]bool(nil), informed...)
		return inf, &Sketch{Root: root, Scatter: scatter}
	}
	// Pass 1: full fan-out only. This small space contains every
	// classic hierarchical shape (including multi-dimension stages such
	// as Fig 5's sketch ①) and must not be crowded out of the sketch
	// budget by deep partial-count variants.
	if !s.opts.FullFanoutOnly {
		saved := s.opts
		s.opts.FullFanoutOnly = true
		inf, sk := start()
		s.recurse(sk, inf, top.NumGPUs()-1, 0)
		s.opts = saved
	}
	// Pass 2: the general enumeration (a no-op re-walk of pass 1's
	// shapes thanks to descriptor dedupe).
	inf, sk := start()
	s.recurse(sk, inf, top.NumGPUs()-1, 0)
	sp.SetInt("nodes", int64(s.nodes))
	sp.SetInt("sketches", int64(len(s.out)))
	sp.Count("sketch.nodes", float64(s.nodes))
	sp.Count("sketch.emitted", float64(len(s.out)))
	return s.out
}

func (s *searcher) done() bool {
	// Cancellation is polled every 64 nodes (ctx.Err takes an atomic load
	// plus a mutex on the done path; the mask keeps it off the hot path).
	if !s.cancelled && s.ctx.Done() != nil && s.nodes&63 == 0 && s.ctx.Err() != nil {
		s.cancelled = true
	}
	return s.cancelled || len(s.out) >= s.opts.MaxSketches || s.nodes >= s.opts.MaxNodes
}

// recurse runs the three-step stage enumeration of §4.1: choose the
// dimensions D_k, the participating groups (all groups holding both
// informed and uninformed GPUs), and the per-group destination count.
// Sources are all informed GPUs of a group; destinations are chosen
// canonically (lowest index first) — replication (§4.2) later rebalances
// the concrete choice across isomorphic alternatives.
func (s *searcher) recurse(sk *Sketch, informed []bool, remaining, usedDims int) {
	if remaining == 0 {
		s.emit(sk)
		return
	}
	if len(sk.Stages) >= s.opts.MaxStages || s.done() {
		return
	}
	s.nodes++

	// Pruning #3 (Scatter relay limit): each dimension is passed at most
	// once along a root-to-leaf path. Raising MaxStages beyond the
	// dimension count is the explicit opt-out the Fig 17b ablation
	// sweeps — deeper trees with dimension reuse become searchable.
	limitRelays := s.scatter && s.opts.MaxStages <= s.top.NumDims()

	stage := len(sk.Stages)
	var eligible []dimState
	for d := 0; d < s.top.NumDims(); d++ {
		if limitRelays && usedDims&(1<<d) != 0 {
			continue
		}
		// Hint: a constrained stage only walks its named dimension.
		if !s.opts.Hint.allowsDim(stage, d) {
			continue
		}
		dim := s.top.Dim(d)
		ds := dimState{dim: d, minUn: 1 << 30, minInf: 1 << 30}
		for g := range dim.Groups {
			inf, un := 0, 0
			for _, gpu := range dim.Groups[g] {
				if informed[gpu] {
					inf++
				} else {
					un++
				}
			}
			if inf > 0 && un > 0 {
				ds.groups = append(ds.groups, g)
				if un < ds.minUn {
					ds.minUn = un
				}
				if un > ds.maxUn {
					ds.maxUn = un
				}
				if inf < ds.minInf {
					ds.minInf = inf
				}
				if inf > ds.maxInf {
					ds.maxInf = inf
				}
			}
		}
		if len(ds.groups) == 0 {
			continue
		}
		// Pruning #2: participating groups must present a consistent
		// destination/source ratio (|Vr|/|Vs| uniform, §4.1); groups in
		// asymmetric states cannot.
		if !s.opts.DisablePrune2 && (ds.minUn != ds.maxUn || ds.minInf != ds.maxInf) {
			continue
		}
		// Structure-derived counts from the first group (consistent
		// across groups under pruning #2): one destination per lower-dim
		// sub-structure present among the uninformed.
		rep := ds.groups[0]
		for d2 := 0; d2 < s.top.NumDims(); d2++ {
			if d2 == d {
				continue
			}
			dim2 := s.top.Dim(d2)
			seen := map[int]bool{}
			for _, gpu := range dim.Groups[rep] {
				if !informed[gpu] {
					if g2 := dim2.GroupOf(gpu); g2 >= 0 {
						seen[g2] = true
					}
				}
			}
			if c := len(seen); c >= 1 && c < ds.minUn {
				ds.suggested = append(ds.suggested, c)
			}
		}
		eligible = append(eligible, ds)
	}
	if len(eligible) == 0 {
		return
	}

	// Non-empty dimension subsets, smaller first (hierarchical
	// one-dim-per-stage sketches are explored first).
	subsets := make([]int, 0, 1<<len(eligible)-1)
	for m := 1; m < 1<<len(eligible); m++ {
		subsets = append(subsets, m)
	}
	sort.Slice(subsets, func(a, b int) bool {
		pa, pb := popcount(subsets[a]), popcount(subsets[b])
		if pa != pb {
			return pa < pb
		}
		return subsets[a] < subsets[b]
	})

	for _, mask := range subsets {
		// Hint: tree-family (and explicitly dim-ordered) stages use
		// exactly one dimension.
		if s.opts.Hint.singleDim(stage) && popcount(mask) != 1 {
			continue
		}
		var chosen []dimState
		for i := range eligible {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, eligible[i])
			}
		}
		s.enumCounts(sk, informed, usedDims, chosen, nil)
		if s.done() {
			return
		}
	}
}

// countChoices returns the destination counts to try for a dimension at
// the given stage, largest (full fan-out) first. A hinted stage size
// forces one count (or none, pruning the branch, when it is infeasible
// from this state or contradicts full fan-out).
func (s *searcher) countChoices(ds dimState, stage int) []int {
	full := ds.minUn
	if forced := s.opts.Hint.stageSize(stage); forced > 0 {
		if forced > full || (s.opts.FullFanoutOnly && forced != full) {
			return nil
		}
		return []int{forced}
	}
	if s.opts.FullFanoutOnly || full == 1 {
		return []int{full}
	}
	choices := []int{full}
	seen := map[int]bool{full: true}
	add := func(c int) {
		if c >= 1 && !seen[c] {
			choices = append(choices, c)
			seen[c] = true
		}
	}
	for _, c := range ds.suggested {
		add(c)
	}
	add(full / 2)
	add(1)
	if len(choices) > s.opts.MaxCountChoices {
		choices = choices[:s.opts.MaxCountChoices]
	}
	return choices
}

// enumCounts assigns a destination count to each chosen dimension and,
// once all are fixed, materializes the stage and recurses.
func (s *searcher) enumCounts(sk *Sketch, informed []bool, usedDims int, chosen []dimState, counts []int) {
	if s.done() {
		return
	}
	if len(counts) == len(chosen) {
		s.applyStage(sk, informed, usedDims, chosen, counts)
		return
	}
	for _, c := range s.countChoices(chosen[len(counts)], len(sk.Stages)) {
		s.enumCounts(sk, informed, usedDims, chosen, append(counts, c))
		if s.done() {
			return
		}
	}
}

// applyStage materializes one stage: per participating group, sources are
// the informed members; destinations are the `count` FARTHEST uninformed
// members — those whose cheapest connection to any informed GPU uses the
// highest dimension — with index as tie-break. Farthest-first matters on
// Clos fabrics: when a network group spans several servers, partial
// fan-out should reach one GPU per remote server (which NVLink cannot
// serve) rather than burn network bandwidth on server-mates.
func (s *searcher) applyStage(sk *Sketch, informed []bool, usedDims int, chosen []dimState, counts []int) {
	taken := map[int]bool{}
	var stage Stage
	newUsed := usedDims

	// farness(g) = the smallest dimension index connecting g to an
	// informed GPU (bigger = farther from the informed set).
	farness := func(gpu int) int {
		for d := 0; d < s.top.NumDims(); d++ {
			dim := s.top.Dim(d)
			grp := dim.GroupOf(gpu)
			if grp < 0 {
				continue
			}
			for _, other := range dim.Groups[grp] {
				if informed[other] {
					return d
				}
			}
		}
		return s.top.NumDims()
	}

	for ci, ds := range chosen {
		dim := s.top.Dim(ds.dim)
		newUsed |= 1 << ds.dim
		for _, g := range ds.groups {
			var srcs, candidates []int
			for _, gpu := range dim.Groups[g] {
				if informed[gpu] {
					srcs = append(srcs, gpu)
				} else if !taken[gpu] {
					candidates = append(candidates, gpu)
				}
			}
			if len(candidates) < counts[ci] {
				return // another dimension claimed the GPUs; skip combo
			}
			var dsts []int
			if counts[ci] >= len(candidates) {
				dsts = append(dsts, candidates...)
			} else {
				// Greedy farthest-first with spreading: a candidate's
				// effective distance drops once a nearby destination has
				// been picked, so partial fan-out lands one destination
				// per far sub-structure (e.g. one per remote server).
				static := make(map[int]int, len(candidates))
				for _, c := range candidates {
					static[c] = farness(c)
				}
				var picked []int
				remaining := append([]int(nil), candidates...)
				for len(picked) < counts[ci] {
					bestIdx, bestScore := -1, -1
					for idx, c := range remaining {
						score := static[c]
						for _, p := range picked {
							for d := 0; d < s.top.NumDims() && d < score; d++ {
								if s.top.SameGroup(d, c, p) {
									score = d
									break
								}
							}
						}
						if score > bestScore || (score == bestScore && bestIdx >= 0 && c < remaining[bestIdx]) {
							bestScore = score
							bestIdx = idx
						}
					}
					picked = append(picked, remaining[bestIdx])
					remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
				}
				dsts = picked
			}
			sort.Ints(dsts)
			for _, d := range dsts {
				taken[d] = true
			}
			stage = append(stage, SubDemand{Dim: ds.dim, Group: g, Srcs: srcs, Dsts: dsts})
		}
	}
	if len(stage) == 0 {
		return
	}
	newInformed := append([]bool(nil), informed...)
	covered := 0
	for _, sd := range stage {
		for _, d := range sd.Dsts {
			newInformed[d] = true
			covered++
		}
	}
	sk.Stages = append(sk.Stages, stage)
	remaining := 0
	for _, inf := range newInformed {
		if !inf {
			remaining++
		}
	}
	s.recurse(sk, newInformed, remaining, newUsed)
	sk.Stages = sk.Stages[:len(sk.Stages)-1]
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func (s *searcher) emit(sk *Sketch) {
	key := sk.Descriptor()
	if s.opts.DisablePrune1 {
		key = sk.ExactDescriptor()
	}
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.out = append(s.out, sk.Clone())
}
