package sketch

import (
	"context"
	"testing"

	"syccl/internal/topology"
)

// TestSearchPreCancelled: a context cancelled before the search starts
// must yield no sketches — the searcher checks the context before
// expanding any node.
func TestSearchPreCancelled(t *testing.T) {
	top := topology.Fig3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := SearchBroadcast(ctx, top, 0, SearchOptions{}); len(got) != 0 {
		t.Fatalf("cancelled broadcast search emitted %d sketches", len(got))
	}
	if got := SearchScatter(ctx, top, 0, SearchOptions{}); len(got) != 0 {
		t.Fatalf("cancelled scatter search emitted %d sketches", len(got))
	}
}

// TestSearchNilContextMatchesBackground: a nil context is tolerated and
// equivalent to context.Background().
func TestSearchNilContextMatchesBackground(t *testing.T) {
	top := topology.Fig3()
	want := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	got := SearchBroadcast(nil, top, 0, SearchOptions{}) //nolint:staticcheck — nil tolerance is the point
	if len(got) != len(want) {
		t.Fatalf("nil-ctx search found %d sketches, Background found %d", len(got), len(want))
	}
}
