package sketch

import (
	"context"
	"math"
	"strings"
	"testing"

	"syccl/internal/topology"
)

func TestSearchBroadcastFig5(t *testing.T) {
	top := topology.Fig3()
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	if len(sketches) == 0 {
		t.Fatal("no sketches found")
	}
	foundFig5 := false
	for _, sk := range sketches {
		if err := sk.Validate(top); err != nil {
			t.Fatalf("invalid sketch %v: %v", sk, err)
		}
		if !sk.Complete(top) {
			t.Fatalf("incomplete sketch %v", sk)
		}
		// Fig 5 sketch ①: stage 0 = {dim0 root server fan-out (3 dsts) +
		// dim1 rail fan-out (3 dsts)}, stage 1 = {dim0 in 3 servers}.
		if len(sk.Stages) == 2 && len(sk.Stages[0]) == 2 && len(sk.Stages[1]) == 3 {
			dims := map[int]bool{}
			for _, sd := range sk.Stages[0] {
				dims[sd.Dim] = true
			}
			ok := dims[0] && dims[1]
			for _, sd := range sk.Stages[1] {
				if sd.Dim != 0 {
					ok = false
				}
			}
			if ok {
				foundFig5 = true
			}
		}
	}
	if !foundFig5 {
		t.Error("search did not produce the Fig 5 sketch shape")
	}
}

func TestSearchEmitsHierarchicalH800(t *testing.T) {
	// On the rail topology the classic hierarchical AllGather sketch is
	// NVLink fan-out then rail fan-out (or rail then NVLink): 2 stages,
	// single dim each.
	top := topology.H800Rail(4) // 32 GPUs
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	shapes := map[string]bool{}
	for _, sk := range sketches {
		if err := sk.Validate(top); err != nil {
			t.Fatal(err)
		}
		if len(sk.Stages) == 2 && len(sk.Stages[0]) == 1 {
			key := ""
			for _, st := range sk.Stages {
				key += string(rune('0' + st[0].Dim))
			}
			shapes[key] = true
		}
	}
	if !shapes["01"] {
		t.Errorf("missing NVLink→rail hierarchical sketch; shapes: %v", shapes)
	}
	if !shapes["10"] {
		t.Errorf("missing rail→NVLink hierarchical sketch; shapes: %v", shapes)
	}
}

func TestSearchFindsAlternativeHierarchical(t *testing.T) {
	// Appendix C: the improved H800 sketch sends to one NVLink peer,
	// then both spread along their rails, then NVLink fan-out (3 stages:
	// dim0 c=1, dim1 full, dim0 full).
	top := topology.H800Rail(4)
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	found := false
	for _, sk := range sketches {
		if len(sk.Stages) != 3 {
			continue
		}
		if len(sk.Stages[0]) == 1 && sk.Stages[0][0].Dim == 0 && len(sk.Stages[0][0].Dsts) == 1 &&
			sk.Stages[1][0].Dim == 1 && len(sk.Stages[1]) == 2 &&
			sk.Stages[2][0].Dim == 0 {
			found = true
		}
	}
	if !found {
		t.Error("alternative hierarchical sketch (Appendix C) not found")
	}
}

func TestPrune1ReducesSketches(t *testing.T) {
	top := topology.H800Small(4)
	with := SearchBroadcast(context.Background(), top, 0, SearchOptions{MaxSketches: 1 << 20, MaxNodes: 20000})
	without := SearchBroadcast(context.Background(), top, 0, SearchOptions{MaxSketches: 1 << 20, MaxNodes: 20000, DisablePrune1: true})
	if len(without) < len(with) {
		t.Errorf("disabling prune1 reduced sketches: %d < %d", len(without), len(with))
	}
}

func TestPrune2ReducesSketches(t *testing.T) {
	top := topology.H800Small(4)
	with := SearchBroadcast(context.Background(), top, 0, SearchOptions{MaxSketches: 1 << 20, MaxNodes: 200000})
	without := SearchBroadcast(context.Background(), top, 0, SearchOptions{MaxSketches: 1 << 20, MaxNodes: 200000, DisablePrune2: true})
	if len(without) <= len(with) {
		t.Errorf("disabling prune2 did not expand the space: %d <= %d", len(without), len(with))
	}
	for _, sk := range without {
		if err := sk.Validate(top); err != nil {
			t.Fatalf("invalid sketch with prune2 off: %v", err)
		}
	}
}

func TestScatterSearchRespectsPrune3(t *testing.T) {
	top := topology.H800Rail(4)
	sketches := SearchScatter(context.Background(), top, 0, SearchOptions{})
	if len(sketches) == 0 {
		t.Fatal("no scatter sketches")
	}
	for _, sk := range sketches {
		if err := sk.Validate(top); err != nil {
			t.Fatal(err)
		}
		if len(sk.Stages) > top.NumDims() {
			t.Errorf("scatter sketch has %d stages > %d dims", len(sk.Stages), top.NumDims())
		}
		// Each dimension at most once.
		used := map[int]int{}
		for _, st := range sk.Stages {
			for _, sd := range st {
				used[sd.Dim] = used[sd.Dim] + 1
			}
		}
	}
}

func TestWorkloadBroadcast(t *testing.T) {
	top := topology.H800Rail(2) // 16 GPUs, 2 servers, 8 rails of 2
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	var hier *Sketch
	for _, sk := range sketches {
		if len(sk.Stages) == 2 && len(sk.Stages[0]) == 1 && sk.Stages[0][0].Dim == 0 &&
			len(sk.Stages[0][0].Dsts) == 7 {
			hier = sk
			break
		}
	}
	if hier == nil {
		t.Fatal("no NVLink→rail hierarchical sketch")
	}
	w := hier.Workload(top)
	// Stage 0: server 0 fan-out = 7 deliveries in dim0 group 0.
	if w[0][0] != 7 {
		t.Errorf("dim0 server0 workload = %g, want 7", w[0][0])
	}
	// Stage 1: each of 8 rails delivers 1.
	for g := 0; g < 8; g++ {
		if w[1][g] != 1 {
			t.Errorf("rail %d workload = %g, want 1", g, w[1][g])
		}
	}
	// Server 1 idle in dim 0.
	if w[0][1] != 0 {
		t.Errorf("dim0 server1 workload = %g, want 0", w[0][1])
	}
}

func TestWorkloadScatterCountsSubtrees(t *testing.T) {
	// Hand-built scatter: root 0 sends to rail peer 4 the bundle for
	// server 1 (stage 0, dim 1), then 4 scatters inside server 1
	// (stage 1, dim 0). Edge 0→4 relays 4 chunks (subtree of 4 = itself
	// + 3 server peers).
	top := topology.H800Small(2) // 2 servers × 4 GPUs
	sk := &Sketch{Root: 0, Scatter: true, Stages: []Stage{
		{{Dim: 1, Group: 0, Srcs: []int{0}, Dsts: []int{4}}},
		{{Dim: 0, Group: 1, Srcs: []int{4}, Dsts: []int{5, 6, 7}}},
		{{Dim: 0, Group: 0, Srcs: []int{0}, Dsts: []int{1, 2, 3}}},
	}}
	if err := sk.Validate(top); err != nil {
		t.Fatal(err)
	}
	w := sk.Workload(top)
	if w[1][0] != 4 {
		t.Errorf("rail edge workload = %g, want 4 (subtree size)", w[1][0])
	}
	if w[0][1] != 3 {
		t.Errorf("server1 scatter workload = %g, want 3", w[0][1])
	}
	if w[0][0] != 3 {
		t.Errorf("server0 scatter workload = %g, want 3", w[0][0])
	}
}

func TestReplicateBalances(t *testing.T) {
	top := topology.H800Rail(4)
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	var hier *Sketch
	for _, sk := range sketches {
		if len(sk.Stages) == 2 && len(sk.Stages[0]) == 1 && sk.Stages[0][0].Dim == 0 {
			hier = sk
			break
		}
	}
	if hier == nil {
		t.Fatal("no hierarchical sketch")
	}
	base := imbalance(hier.Workload(top))
	if base == 0 {
		t.Fatal("base sketch unexpectedly balanced")
	}
	combo := Replicate(top, hier, 0)
	if len(combo.Sketches) < 2 {
		t.Fatalf("replication produced %d sketches", len(combo.Sketches))
	}
	w := combo.Workload(top)
	if got := imbalance(w); got > base*0.26 {
		t.Errorf("replication left imbalance %g (base %g)", got, base)
	}
	var sum float64
	for _, f := range combo.Fracs {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
	for _, sk := range combo.Sketches {
		if err := sk.Validate(top); err != nil {
			t.Fatalf("replica invalid: %v", err)
		}
	}
}

func TestExpandAllToAll(t *testing.T) {
	top := topology.H800Small(2) // 8 GPUs
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	combo, missing := ExpandAllToAll(top, sketches[0])
	if len(missing) > 0 {
		t.Fatalf("healthy topology left roots uncovered: %v", missing)
	}
	if len(combo.Sketches) != 8 {
		t.Fatalf("expanded to %d sketches, want 8", len(combo.Sketches))
	}
	roots := map[int]bool{}
	for _, sk := range combo.Sketches {
		if err := sk.Validate(top); err != nil {
			t.Fatalf("replica for root %d invalid: %v", sk.Root, err)
		}
		if !sk.Complete(top) {
			t.Fatalf("replica for root %d incomplete", sk.Root)
		}
		roots[sk.Root] = true
	}
	if len(roots) != 8 {
		t.Errorf("roots covered: %d, want 8", len(roots))
	}
	// Per-dimension group workloads must be even.
	w := combo.Workload(top)
	for d := range w {
		for g := 1; g < len(w[d]); g++ {
			if math.Abs(w[d][g]-w[d][0]) > 1e-9 {
				t.Errorf("dim %d uneven workload: %v", d, w[d])
			}
		}
	}
}

func TestIntegrateMatchesBandwidthShares(t *testing.T) {
	top := topology.H800Rail(4)
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	// Pick two hierarchical flavors with opposite dim orderings.
	var ab, ba *Sketch
	for _, sk := range sketches {
		if len(sk.Stages) == 2 && len(sk.Stages[0]) == 1 {
			if sk.Stages[0][0].Dim == 0 && ab == nil {
				ab = sk
			}
			if sk.Stages[0][0].Dim == 1 && ba == nil {
				ba = sk
			}
		}
	}
	if ab == nil || ba == nil {
		t.Fatal("missing hierarchical flavors")
	}
	ca := Replicate(top, ab, 0)
	cb := Replicate(top, ba, 0)
	out := Integrate(top, []*Combination{ca, cb})
	if out == nil {
		t.Fatal("integration failed")
	}
	w := out.DimWorkload(top)
	total := w[0] + w[1]
	shareErr := math.Abs(w[0]/total-top.BandwidthShare(0)) + math.Abs(w[1]/total-top.BandwidthShare(1))
	if shareErr > 0.15 {
		t.Errorf("integrated shares %v deviate from bandwidth shares (%g, %g)",
			[]float64{w[0] / total, w[1] / total}, top.BandwidthShare(0), top.BandwidthShare(1))
	}
}

func TestIntegrateRejectsDegenerate(t *testing.T) {
	top := topology.H800Rail(4)
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	// Same combo twice: cannot shift share between dimensions; the
	// deviation check decides. Whatever the outcome, it must not panic
	// and the nil/valid contract must hold.
	c := Replicate(top, sketches[0], 0)
	out := Integrate(top, []*Combination{c, c})
	if out != nil {
		w := out.DimWorkload(top)
		if w[0] == 0 && w[1] == 0 {
			t.Error("integration returned empty workload combo")
		}
	}
	if Integrate(top, nil) != nil {
		t.Error("Integrate(nil) should be nil")
	}
}

func TestSketchMapPreservesStructure(t *testing.T) {
	top := topology.H800Rail(2)
	sk := SearchBroadcast(context.Background(), top, 0, SearchOptions{})[0]
	perm := top.Sym.Permutation(top.Sym.MapRoot(0, 9))
	m := sk.Map(top, perm)
	if m.Root != 9 {
		t.Errorf("mapped root = %d, want 9", m.Root)
	}
	if err := m.Validate(top); err != nil {
		t.Fatalf("mapped sketch invalid: %v", err)
	}
	if !m.Complete(top) {
		t.Error("mapped sketch incomplete")
	}
	if m.Descriptor() != sk.Descriptor() {
		t.Error("mapping changed the structural descriptor")
	}
}

func TestValidateRejectsBadSketches(t *testing.T) {
	top := topology.H800Small(2)
	// Source not informed.
	bad := &Sketch{Root: 0, Stages: []Stage{
		{{Dim: 0, Group: 1, Srcs: []int{4}, Dsts: []int{5}}},
	}}
	if bad.Validate(top) == nil {
		t.Error("accepted uninformed source")
	}
	// Destination twice.
	bad2 := &Sketch{Root: 0, Stages: []Stage{
		{{Dim: 0, Group: 0, Srcs: []int{0}, Dsts: []int{1}}},
		{{Dim: 0, Group: 0, Srcs: []int{0}, Dsts: []int{1}}},
	}}
	if bad2.Validate(top) == nil {
		t.Error("accepted double destination")
	}
	// Cross-group sub-demand.
	bad3 := &Sketch{Root: 0, Stages: []Stage{
		{{Dim: 0, Group: 0, Srcs: []int{0}, Dsts: []int{5}}},
	}}
	if bad3.Validate(top) == nil {
		t.Error("accepted cross-group destination")
	}
}

func TestDescriptorDistinguishesShapes(t *testing.T) {
	top := topology.H800Rail(4)
	sketches := SearchBroadcast(context.Background(), top, 0, SearchOptions{})
	seen := map[string]bool{}
	for _, sk := range sketches {
		d := sk.Descriptor()
		if seen[d] {
			t.Errorf("duplicate descriptor emitted: %s", d)
		}
		seen[d] = true
	}
}

func TestAutomorphismsIncludeRootStabilizers(t *testing.T) {
	top := topology.H800Rail(2)
	perms := Automorphisms(top)
	if len(perms) == 0 {
		t.Fatal("no automorphisms")
	}
	found := false
	for _, p := range perms {
		if p[0] == 0 {
			id := true
			for i, v := range p {
				if i != v {
					id = false
					break
				}
			}
			if !id {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no non-trivial automorphism fixes GPU 0 (needed for Broadcast replication)")
	}
	// All returned permutations must preserve every dimension's groups.
	for _, p := range perms {
		if !groupPreserving(top, p) {
			t.Fatal("invalid automorphism returned")
		}
	}
}

func TestAutomorphismsHierarchical(t *testing.T) {
	top := topology.Fig20() // Clos with nested server blocks
	perms := Automorphisms(top)
	// Cyclic server rotation by 1 is NOT an automorphism (breaks leaf
	// pairs); XOR shifts are. All survivors must preserve groups, and the
	// family must still be transitive enough to move server 0's GPUs to
	// every server.
	targets := map[int]bool{}
	for _, p := range perms {
		targets[p[0]/4] = true
	}
	if len(targets) != 8 {
		t.Errorf("automorphisms reach %d servers for GPU 0, want 8", len(targets))
	}
}

func TestDescribe(t *testing.T) {
	top := topology.H800Rail(2)
	sk := SearchBroadcast(context.Background(), top, 0, SearchOptions{})[0]
	out := sk.Describe(top)
	for _, want := range []string{"Broadcast sketch rooted at GPU 0", "stage 0", "workload:"} {
		if !contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	combo := Replicate(top, sk, 0)
	cd := combo.DescribeCombination(top)
	if !contains(cd, "distinct shapes") {
		t.Errorf("DescribeCombination malformed:\n%s", cd)
	}
}

func TestIntSet(t *testing.T) {
	cases := map[string]string{}
	_ = cases
	if got := intSet([]int{1, 2, 3, 4}); got != "{1..4}" {
		t.Errorf("intSet = %q", got)
	}
	if got := intSet([]int{5, 7, 8}); got != "{5,7,8}" {
		t.Errorf("intSet = %q", got)
	}
	if got := intSet([]int{2}); got != "{2}" {
		t.Errorf("intSet = %q", got)
	}
	if got := intSet(nil); got != "{}" {
		t.Errorf("intSet = %q", got)
	}
	if got := intSet([]int{3, 1, 2, 9}); got != "{1..3,9}" {
		t.Errorf("intSet = %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
