// Package schedule represents collective-communication schedules: the
// concrete sequence of inter-GPU transfers that satisfies a collective
// demand on a topology.
//
// A schedule moves *pieces*. A piece is a fraction of one collective chunk
// (sketch combinations split chunks across sketches, §4.2), or — for
// reduction collectives — a slice that aggregates several chunks: when
// contributions toward the same destination meet at a relay they travel on
// as a single combined piece, which is why a Reduce costs the same as the
// mirrored Broadcast (§4.1).
//
// Each Transfer carries one piece across one topology dimension and lists
// the transfers that must complete before it may start. The simulator
// (package sim) serializes transfers that share a GPU port and respects
// dependencies; the Order field breaks ties on shared ports.
package schedule

import (
	"fmt"
	"sort"

	"syccl/internal/collective"
)

// Piece is a unit of payload moved by transfers.
type Piece struct {
	// Chunks lists the collective chunk IDs this piece carries data of.
	// Forward (non-reduce) pieces cover exactly one chunk; reduction
	// pieces may cover many (the contributions being combined).
	Chunks []int
	// Bytes is the wire size of the piece. For a forward piece covering a
	// fraction t of a chunk of size s, Bytes = t·s; a reduction piece has
	// the same size no matter how many chunks it combines.
	Bytes float64
}

// Transfer is a single communication event.
type Transfer struct {
	Src, Dst int   // GPU IDs
	Piece    int   // index into Schedule.Pieces
	Dim      int   // topology dimension whose ports the transfer uses
	Deps     []int // indices of transfers that must complete first
	Order    int   // tie-break priority on shared ports (lower first)
}

// Schedule is a complete set of transfers satisfying a collective.
type Schedule struct {
	NumGPUs   int
	Pieces    []Piece
	Transfers []Transfer
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{NumGPUs: s.NumGPUs}
	c.Pieces = make([]Piece, len(s.Pieces))
	for i, p := range s.Pieces {
		c.Pieces[i] = Piece{Chunks: append([]int(nil), p.Chunks...), Bytes: p.Bytes}
	}
	c.Transfers = make([]Transfer, len(s.Transfers))
	for i, t := range s.Transfers {
		t.Deps = append([]int(nil), t.Deps...)
		c.Transfers[i] = t
	}
	return c
}

// AddPiece appends a piece and returns its index.
func (s *Schedule) AddPiece(bytes float64, chunks ...int) int {
	s.Pieces = append(s.Pieces, Piece{Chunks: append([]int(nil), chunks...), Bytes: bytes})
	return len(s.Pieces) - 1
}

// AddTransfer appends a transfer and returns its index.
func (s *Schedule) AddTransfer(t Transfer) int {
	s.Transfers = append(s.Transfers, t)
	return len(s.Transfers) - 1
}

// TotalTransferBytes sums the wire bytes of all transfers.
func (s *Schedule) TotalTransferBytes() float64 {
	var sum float64
	for _, t := range s.Transfers {
		sum += s.Pieces[t.Piece].Bytes
	}
	return sum
}

// topoOrder returns a topological order of transfer indices, or an error
// if the dependency graph has a cycle.
func (s *Schedule) topoOrder() ([]int, error) {
	n := len(s.Transfers)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, t := range s.Transfers {
		for _, d := range t.Deps {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("schedule: transfer %d has out-of-range dep %d", i, d)
			}
			succ[d] = append(succ[d], i)
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("schedule: dependency cycle among transfers")
	}
	return order, nil
}

// Validate checks that the schedule is structurally sound and satisfies
// the collective demand col:
//
//   - dependency graph is acyclic and references are in range;
//   - every chunk is fully covered: the piece fractions covering each
//     chunk sum to the chunk size;
//   - forward pieces propagate correctly: a GPU only sends a piece it
//     originated or previously received (enforced through dependencies);
//   - every demanded (chunk, destination) pair is delivered;
//   - reduction pieces form flows in which every contributing source
//     reaches the destination, and a sender has received all inbound
//     contributions before sending (enforced through dependencies).
func (s *Schedule) Validate(col *collective.Collective) error {
	if s.NumGPUs != col.NumGPUs {
		return fmt.Errorf("schedule: NumGPUs %d != collective %d", s.NumGPUs, col.NumGPUs)
	}
	order, err := s.topoOrder()
	if err != nil {
		return err
	}
	for i, t := range s.Transfers {
		if t.Src < 0 || t.Src >= s.NumGPUs || t.Dst < 0 || t.Dst >= s.NumGPUs || t.Src == t.Dst {
			return fmt.Errorf("schedule: transfer %d has bad endpoints %d->%d", i, t.Src, t.Dst)
		}
		if t.Piece < 0 || t.Piece >= len(s.Pieces) {
			return fmt.Errorf("schedule: transfer %d references missing piece %d", i, t.Piece)
		}
	}

	// Chunk coverage: fraction-weighted piece bytes per chunk.
	cover := make([]float64, len(col.Chunks))
	for _, p := range s.Pieces {
		for _, c := range p.Chunks {
			if c < 0 || c >= len(col.Chunks) {
				return fmt.Errorf("schedule: piece references missing chunk %d", c)
			}
			cover[c] += p.Bytes
		}
	}
	const tol = 1e-6
	for c, got := range cover {
		if len(col.Chunks[c].Dsts) == 0 {
			continue
		}
		if got < col.ChunkSize*(1-tol) || got > col.ChunkSize*(1+tol) {
			return fmt.Errorf("schedule: chunk %d covered by %g bytes of pieces, want %g", c, got, col.ChunkSize)
		}
	}

	// Walk transfers in dependency order tracking piece possession.
	// has[p] is the set of GPUs holding piece p (for reduction pieces:
	// holding the partial aggregate rooted at their subtree).
	has := make([]map[int]bool, len(s.Pieces))
	originOf := func(p int) map[int]bool {
		set := make(map[int]bool)
		chunks := s.Pieces[p].Chunks
		if len(chunks) == 0 {
			return set
		}
		if col.Reduce && len(chunks) > 1 {
			// A reduction slice: every contributor starts with its own
			// partial aggregate.
			for _, c := range chunks {
				set[col.Chunks[c].Src] = true
			}
			return set
		}
		// A forward piece is the concatenation of its chunks: only a GPU
		// sourcing every one of them holds the piece before any transfer
		// runs. (Sourcing a single chunk of a multi-chunk piece is not
		// possession of the piece.)
		src := col.Chunks[chunks[0]].Src
		for _, c := range chunks[1:] {
			if col.Chunks[c].Src != src {
				return set
			}
		}
		set[src] = true
		return set
	}
	for p := range s.Pieces {
		has[p] = originOf(p)
	}
	// completedInto[p][g] counts inbound transfers of piece p delivered
	// to GPU g among the transfers processed so far (for the reduction
	// all-inbound-before-send check we instead verify dependency sets).
	inbound := make([]map[int][]int, len(s.Pieces)) // piece -> dst -> transfer indices
	for i, t := range s.Transfers {
		if inbound[t.Piece] == nil {
			inbound[t.Piece] = make(map[int][]int)
		}
		inbound[t.Piece][t.Dst] = append(inbound[t.Piece][t.Dst], i)
	}
	depSet := func(t Transfer) map[int]bool {
		m := make(map[int]bool, len(t.Deps))
		for _, d := range t.Deps {
			m[d] = true
		}
		return m
	}
	for _, i := range order {
		t := s.Transfers[i]
		p := t.Piece
		reduce := len(s.Pieces[p].Chunks) > 1 && col.Reduce
		if !has[p][t.Src] {
			return fmt.Errorf("schedule: transfer %d sends piece %d from GPU %d which never obtains it", i, p, t.Src)
		}
		origin := originOf(p)[t.Src]
		deps := depSet(t)
		if reduce {
			// Sender must have waited for every inbound contribution.
			for _, in := range inbound[p][t.Src] {
				if !deps[in] {
					return fmt.Errorf("schedule: reduction transfer %d from GPU %d missing dep on inbound transfer %d", i, t.Src, in)
				}
			}
		} else if !origin {
			// Sender must depend on at least one inbound delivery.
			ok := false
			for _, in := range inbound[p][t.Src] {
				if deps[in] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("schedule: transfer %d relays piece %d from GPU %d without a dependency on its arrival", i, p, t.Src)
			}
		}
		has[p][t.Dst] = true
	}

	// Demand satisfaction.
	for c, ch := range col.Chunks {
		for _, d := range ch.Dsts {
			satisfied := 0.0
			for p, piece := range s.Pieces {
				for _, pc := range piece.Chunks {
					if pc == c && has[p][d] {
						satisfied += piece.Bytes
						break
					}
				}
			}
			if satisfied < col.ChunkSize*(1-tol) {
				return fmt.Errorf("schedule: chunk %d not delivered to GPU %d (%g of %g bytes)", c, d, satisfied, col.ChunkSize)
			}
		}
	}
	return nil
}

// Mirror returns the time-reversed schedule: every transfer's endpoints are
// swapped, dependency edges are reversed, and Order is negated so relative
// port ordering reverses too. Mirroring a Broadcast schedule yields a
// Reduce schedule of identical cost (§4.1: all-to-one collectives are the
// inverses of one-to-all ones). remap rewrites each piece for the mirrored
// collective (e.g. a broadcast piece of chunk 0 becomes a reduction piece
// covering all contributions); passing nil keeps pieces unchanged.
func (s *Schedule) Mirror(remap func(Piece) Piece) *Schedule {
	m := &Schedule{NumGPUs: s.NumGPUs}
	m.Pieces = make([]Piece, len(s.Pieces))
	for i, p := range s.Pieces {
		q := Piece{Chunks: append([]int(nil), p.Chunks...), Bytes: p.Bytes}
		if remap != nil {
			q = remap(q)
		}
		m.Pieces[i] = q
	}
	// Reversed dependency edges: if t2 depended on t1, mirrored t1'
	// depends on t2'.
	rev := make([][]int, len(s.Transfers))
	for i, t := range s.Transfers {
		for _, d := range t.Deps {
			rev[d] = append(rev[d], i)
		}
	}
	m.Transfers = make([]Transfer, len(s.Transfers))
	for i, t := range s.Transfers {
		m.Transfers[i] = Transfer{
			Src:   t.Dst,
			Dst:   t.Src,
			Piece: t.Piece,
			Dim:   t.Dim,
			Deps:  append([]int(nil), rev[i]...),
			Order: -t.Order,
		}
	}
	return m
}

// PhaseOrderBase is the Order offset Concat adds to phase-b transfers so
// they sort after every phase-a transfer on shared ports. Consumers (e.g.
// the verify oracle) use it to split a concatenated schedule back into its
// phases.
const PhaseOrderBase = 1 << 20

// Concat appends b after a with cross-phase dependencies: each transfer of
// b whose source GPU g received data in a (or that has no deps of its own)
// additionally depends on all of a's transfers delivering into g. This
// models AllReduce = ReduceScatter ; AllGather, where GPU g may start
// gathering its reduced slice only once the slice is fully reduced at g.
func Concat(a, b *Schedule) *Schedule {
	if a.NumGPUs != b.NumGPUs {
		panic("schedule.Concat: GPU count mismatch")
	}
	out := a.Clone()
	pieceOff := len(out.Pieces)
	transOff := len(out.Transfers)
	for _, p := range b.Pieces {
		out.Pieces = append(out.Pieces, Piece{Chunks: append([]int(nil), p.Chunks...), Bytes: p.Bytes})
	}
	// a's inbound transfers per GPU.
	inboundA := make(map[int][]int)
	for i, t := range a.Transfers {
		inboundA[t.Dst] = append(inboundA[t.Dst], i)
	}
	for _, t := range b.Transfers {
		nt := Transfer{
			Src:   t.Src,
			Dst:   t.Dst,
			Piece: t.Piece + pieceOff,
			Dim:   t.Dim,
			Order: t.Order + PhaseOrderBase, // phase-b transfers order after phase a
		}
		for _, d := range t.Deps {
			nt.Deps = append(nt.Deps, d+transOff)
		}
		if len(t.Deps) == 0 {
			// b-phase origin transfer: wait for phase a to finish at src.
			nt.Deps = append(nt.Deps, inboundA[t.Src]...)
		}
		out.Transfers = append(out.Transfers, nt)
	}
	return out
}

// Stats summarizes a schedule for reporting and lint checks.
type Stats struct {
	Transfers        int
	Pieces           int
	WireBytes        float64
	MaxHops          int // longest dependency chain
	DuplicateArrival int // deliveries of a piece to a GPU that already holds it
	PerDimBytes      []float64
}

// ComputeStats derives Stats. dims is the number of topology dimensions.
func (s *Schedule) ComputeStats(dims int) Stats {
	st := Stats{Transfers: len(s.Transfers), Pieces: len(s.Pieces), PerDimBytes: make([]float64, dims)}
	depth := make([]int, len(s.Transfers))
	order, err := s.topoOrder()
	if err != nil {
		order = nil
	}
	seen := make(map[[2]int]bool) // (piece, dst)
	for _, i := range order {
		t := s.Transfers[i]
		b := s.Pieces[t.Piece].Bytes
		st.WireBytes += b
		if t.Dim >= 0 && t.Dim < dims {
			st.PerDimBytes[t.Dim] += b
		}
		d := 1
		for _, dep := range t.Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[i] = d
		if d > st.MaxHops {
			st.MaxHops = d
		}
		key := [2]int{t.Piece, t.Dst}
		if seen[key] {
			st.DuplicateArrival++
		}
		seen[key] = true
	}
	return st
}

// SortTransfersByOrder stably sorts transfers by Order, rewriting Deps and
// keeping semantics. Useful to normalize schedules for comparison and
// serialization.
func (s *Schedule) SortTransfersByOrder() {
	idx := make([]int, len(s.Transfers))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.Transfers[idx[a]].Order < s.Transfers[idx[b]].Order })
	pos := make([]int, len(idx))
	for newPos, old := range idx {
		pos[old] = newPos
	}
	nt := make([]Transfer, len(s.Transfers))
	for newPos, old := range idx {
		t := s.Transfers[old]
		deps := make([]int, len(t.Deps))
		for j, d := range t.Deps {
			deps[j] = pos[d]
		}
		sort.Ints(deps)
		t.Deps = deps
		nt[newPos] = t
	}
	s.Transfers = nt
}
