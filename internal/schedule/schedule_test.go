package schedule

import (
	"testing"

	"syccl/internal/collective"
)

// chainBroadcast builds a 0→1→2→…→n-1 pipeline for Broadcast(n, 0, bytes).
func chainBroadcast(n int, bytes float64) *Schedule {
	s := &Schedule{NumGPUs: n}
	p := s.AddPiece(bytes, 0)
	prev := -1
	for g := 1; g < n; g++ {
		t := Transfer{Src: g - 1, Dst: g, Piece: p, Dim: 0, Order: g}
		if prev >= 0 {
			t.Deps = []int{prev}
		}
		prev = s.AddTransfer(t)
	}
	return s
}

// ringAllGather builds the canonical single-ring AllGather on n GPUs.
func ringAllGather(n int, bytes float64) *Schedule {
	s := &Schedule{NumGPUs: n}
	pieces := make([]int, n)
	for c := 0; c < n; c++ {
		pieces[c] = s.AddPiece(bytes, c)
	}
	// last[c] is the transfer index that last moved chunk c.
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	for step := 0; step < n-1; step++ {
		for g := 0; g < n; g++ {
			c := ((g-step)%n + n) % n // chunk forwarded by g at this step
			t := Transfer{Src: g, Dst: (g + 1) % n, Piece: pieces[c], Dim: 0, Order: step}
			if last[c] >= 0 {
				t.Deps = []int{last[c]}
			}
			last[c] = s.AddTransfer(t)
		}
	}
	return s
}

func TestChainBroadcastValidates(t *testing.T) {
	col := collective.Broadcast(4, 0, 100)
	s := chainBroadcast(4, 100)
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllGatherValidates(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		col := collective.AllGather(n, 64)
		s := ringAllGather(n, 64)
		if err := s.Validate(col); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := len(s.Transfers), n*(n-1); got != want {
			t.Errorf("n=%d: %d transfers, want %d", n, got, want)
		}
	}
}

func TestValidateRejectsUndelivered(t *testing.T) {
	col := collective.Broadcast(4, 0, 100)
	s := chainBroadcast(3, 100) // stops at GPU 2
	s.NumGPUs = 4
	if err := s.Validate(col); err == nil {
		t.Error("accepted schedule missing a destination")
	}
}

func TestValidateRejectsSendBeforeReceive(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0)
	// GPU 1 relays to 2 without depending on receiving the piece first.
	s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p})
	s.AddTransfer(Transfer{Src: 1, Dst: 2, Piece: p}) // missing dep
	if err := s.Validate(col); err == nil {
		t.Error("accepted relay without arrival dependency")
	}
}

func TestValidateRejectsPhantomSource(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0)
	s.AddTransfer(Transfer{Src: 2, Dst: 1, Piece: p}) // GPU 2 never holds it
	if err := s.Validate(col); err == nil {
		t.Error("accepted send from GPU that never obtains the piece")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0)
	s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p, Deps: []int{1}})
	s.AddTransfer(Transfer{Src: 1, Dst: 2, Piece: p, Deps: []int{0}})
	if err := s.Validate(col); err == nil {
		t.Error("accepted cyclic dependencies")
	}
}

func TestValidateRejectsPartialCoverage(t *testing.T) {
	col := collective.Broadcast(3, 0, 100)
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(50, 0) // only half the chunk
	t0 := s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p})
	s.AddTransfer(Transfer{Src: 1, Dst: 2, Piece: p, Deps: []int{t0}})
	if err := s.Validate(col); err == nil {
		t.Error("accepted half-covered chunk")
	}
}

func TestSplitPiecesValidate(t *testing.T) {
	// Broadcast split into two half-chunks taking different paths.
	col := collective.Broadcast(3, 0, 100)
	s := &Schedule{NumGPUs: 3}
	pa := s.AddPiece(50, 0)
	pb := s.AddPiece(50, 0)
	a0 := s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: pa})
	s.AddTransfer(Transfer{Src: 1, Dst: 2, Piece: pa, Deps: []int{a0}})
	b0 := s.AddTransfer(Transfer{Src: 0, Dst: 2, Piece: pb})
	s.AddTransfer(Transfer{Src: 2, Dst: 1, Piece: pb, Deps: []int{b0}})
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorBroadcastIsReduce(t *testing.T) {
	n := 4
	bc := chainBroadcast(n, 100)
	red := bc.Mirror(func(p Piece) Piece {
		// The broadcast piece of chunk 0 becomes the reduction slice
		// covering all of Reduce's contributions (chunks 0..n-2).
		chunks := make([]int, n-1)
		for i := range chunks {
			chunks[i] = i
		}
		return Piece{Chunks: chunks, Bytes: p.Bytes}
	})
	col := collective.Reduce(n, 0, 100)
	if err := red.Validate(col); err != nil {
		t.Fatal(err)
	}
	if len(red.Transfers) != len(bc.Transfers) {
		t.Errorf("mirror changed transfer count")
	}
}

func TestMirrorReversesDeps(t *testing.T) {
	s := chainBroadcast(4, 10)
	m := s.Mirror(nil)
	// Original: t1 deps t0, t2 deps t1. Mirrored: t0 deps t1, t1 deps t2.
	if len(m.Transfers[0].Deps) != 1 || m.Transfers[0].Deps[0] != 1 {
		t.Errorf("mirrored t0 deps = %v", m.Transfers[0].Deps)
	}
	if len(m.Transfers[2].Deps) != 0 {
		t.Errorf("mirrored t2 deps = %v", m.Transfers[2].Deps)
	}
	if m.Transfers[0].Src != 1 || m.Transfers[0].Dst != 0 {
		t.Errorf("mirrored endpoints: %+v", m.Transfers[0])
	}
}

func TestReduceRequiresAllInboundDeps(t *testing.T) {
	// Star reduction into GPU 0 from 1 and 2 via relay 1: 2→1, then 1→0
	// must depend on 2→1.
	col := collective.Reduce(3, 0, 100)
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(100, 0, 1)
	s.AddTransfer(Transfer{Src: 2, Dst: 1, Piece: p})
	s.AddTransfer(Transfer{Src: 1, Dst: 0, Piece: p}) // missing dep on inbound
	if err := s.Validate(col); err == nil {
		t.Error("accepted reduction send before all contributions arrived")
	}
	s.Transfers[1].Deps = []int{0}
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestConcatAllReduce(t *testing.T) {
	// 2-GPU AllReduce = RS (each sends its contribution) ; AG (each sends
	// the reduced slice back).
	n := 2
	rs := &Schedule{NumGPUs: n}
	p0 := rs.AddPiece(50, 0) // contribution for slice at GPU 1... simplified
	rs.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p0})
	ag := &Schedule{NumGPUs: n}
	q0 := ag.AddPiece(50, 0)
	ag.AddTransfer(Transfer{Src: 1, Dst: 0, Piece: q0})
	out := Concat(rs, ag)
	if len(out.Transfers) != 2 {
		t.Fatalf("transfers = %d", len(out.Transfers))
	}
	// AG transfer starts at GPU 1, which received in RS → must depend on it.
	if len(out.Transfers[1].Deps) != 1 || out.Transfers[1].Deps[0] != 0 {
		t.Errorf("phase-b deps = %v", out.Transfers[1].Deps)
	}
	if _, err := out.topoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	s := chainBroadcast(4, 100)
	st := s.ComputeStats(1)
	if st.Transfers != 3 || st.WireBytes != 300 || st.MaxHops != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.DuplicateArrival != 0 {
		t.Errorf("duplicates = %d", st.DuplicateArrival)
	}
	if st.PerDimBytes[0] != 300 {
		t.Errorf("per-dim bytes = %v", st.PerDimBytes)
	}
}

func TestStatsDetectsDuplicates(t *testing.T) {
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(10, 0)
	a := s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p})
	b := s.AddTransfer(Transfer{Src: 0, Dst: 2, Piece: p})
	s.AddTransfer(Transfer{Src: 2, Dst: 1, Piece: p, Deps: []int{a, b}}) // 1 already has it
	st := s.ComputeStats(1)
	if st.DuplicateArrival != 1 {
		t.Errorf("duplicates = %d, want 1", st.DuplicateArrival)
	}
}

func TestSortTransfersByOrder(t *testing.T) {
	s := &Schedule{NumGPUs: 3}
	p := s.AddPiece(10, 0)
	t1 := s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p, Order: 5})
	s.AddTransfer(Transfer{Src: 1, Dst: 2, Piece: p, Order: 1, Deps: []int{t1}})
	s.SortTransfersByOrder()
	if s.Transfers[0].Order != 1 || s.Transfers[1].Order != 5 {
		t.Fatalf("not sorted: %+v", s.Transfers)
	}
	// Dep must be rewritten to the new index of the order-5 transfer.
	if len(s.Transfers[0].Deps) != 1 || s.Transfers[0].Deps[0] != 1 {
		t.Errorf("deps not rewritten: %+v", s.Transfers[0])
	}
}

func TestClone(t *testing.T) {
	s := chainBroadcast(3, 10)
	c := s.Clone()
	c.Transfers[0].Src = 9
	c.Pieces[0].Bytes = 99
	if s.Transfers[0].Src == 9 || s.Pieces[0].Bytes == 99 {
		t.Error("Clone shares memory with original")
	}
}

// TestConcatEdgeCases covers the empty-phase, piece-ID renumbering, and
// Order-offset behaviors of Concat in one table.
func TestConcatEdgeCases(t *testing.T) {
	two := func() *Schedule {
		s := &Schedule{NumGPUs: 2}
		p := s.AddPiece(64, 0)
		s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p, Order: 3})
		return s
	}
	cases := []struct {
		name          string
		a, b          *Schedule
		wantPieces    int
		wantTransfers int
		check         func(t *testing.T, out *Schedule)
	}{
		{
			name: "both empty",
			a:    &Schedule{NumGPUs: 2}, b: &Schedule{NumGPUs: 2},
			wantPieces: 0, wantTransfers: 0,
		},
		{
			name: "empty a keeps b unbarriered",
			a:    &Schedule{NumGPUs: 2}, b: two(),
			wantPieces: 1, wantTransfers: 1,
			check: func(t *testing.T, out *Schedule) {
				if len(out.Transfers[0].Deps) != 0 {
					t.Errorf("b-root gained deps %v with empty phase a", out.Transfers[0].Deps)
				}
				if out.Transfers[0].Order != 3+PhaseOrderBase {
					t.Errorf("order = %d, want %d", out.Transfers[0].Order, 3+PhaseOrderBase)
				}
			},
		},
		{
			name: "empty b is identity on a",
			a:    two(), b: &Schedule{NumGPUs: 2},
			wantPieces: 1, wantTransfers: 1,
			check: func(t *testing.T, out *Schedule) {
				if out.Transfers[0].Order != 3 {
					t.Errorf("phase-a order changed: %d", out.Transfers[0].Order)
				}
			},
		},
		{
			name: "disjoint piece IDs renumber",
			a:    two(), b: two(),
			wantPieces: 2, wantTransfers: 2,
			check: func(t *testing.T, out *Schedule) {
				if out.Transfers[0].Piece != 0 || out.Transfers[1].Piece != 1 {
					t.Errorf("pieces = %d, %d", out.Transfers[0].Piece, out.Transfers[1].Piece)
				}
				// b's root transfer starts at GPU 0, which received nothing
				// in phase a, so no cross-phase dep is added; 0→1 did
				// arrive at GPU 1 but that is not b's source here.
				if got := out.Transfers[1].Deps; len(got) != 0 {
					t.Errorf("unexpected barrier deps %v", got)
				}
				if out.Transfers[1].Order-out.Transfers[0].Order != PhaseOrderBase {
					t.Errorf("orders %d, %d", out.Transfers[0].Order, out.Transfers[1].Order)
				}
			},
		},
		{
			name: "cross-phase barrier lands on b roots",
			a:    two(),
			b: func() *Schedule {
				s := &Schedule{NumGPUs: 2}
				p := s.AddPiece(64, 1)
				s.AddTransfer(Transfer{Src: 1, Dst: 0, Piece: p}) // starts where a delivered
				return s
			}(),
			wantPieces: 2, wantTransfers: 2,
			check: func(t *testing.T, out *Schedule) {
				if got := out.Transfers[1].Deps; len(got) != 1 || got[0] != 0 {
					t.Errorf("barrier deps = %v, want [0]", got)
				}
			},
		},
		{
			name: "b-internal deps shift by a's transfer count",
			a:    two(),
			b: func() *Schedule {
				s := &Schedule{NumGPUs: 2}
				p := s.AddPiece(64, 0)
				t0 := s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p})
				s.AddTransfer(Transfer{Src: 1, Dst: 0, Piece: p, Deps: []int{t0}, Order: 1})
				return s
			}(),
			wantPieces: 2, wantTransfers: 3,
			check: func(t *testing.T, out *Schedule) {
				if got := out.Transfers[2].Deps; len(got) != 1 || got[0] != 1 {
					t.Errorf("shifted deps = %v, want [1]", got)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := Concat(c.a, c.b)
			if len(out.Pieces) != c.wantPieces || len(out.Transfers) != c.wantTransfers {
				t.Fatalf("got %d pieces / %d transfers, want %d / %d",
					len(out.Pieces), len(out.Transfers), c.wantPieces, c.wantTransfers)
			}
			if c.check != nil {
				c.check(t, out)
			}
		})
	}
}

func TestConcatPanicsOnGPUMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Concat accepted mismatched GPU counts")
		}
	}()
	Concat(&Schedule{NumGPUs: 2}, &Schedule{NumGPUs: 4})
}

// TestMirrorEdgeCases covers the empty schedule, dependency reversal,
// order negation, and the nil/identity remap contract.
func TestMirrorEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		m := (&Schedule{NumGPUs: 4}).Mirror(nil)
		if len(m.Pieces) != 0 || len(m.Transfers) != 0 || m.NumGPUs != 4 {
			t.Fatalf("mirror of empty: %+v", m)
		}
	})
	t.Run("reverses deps and negates order", func(t *testing.T) {
		s := &Schedule{NumGPUs: 3}
		p := s.AddPiece(64, 0)
		t0 := s.AddTransfer(Transfer{Src: 0, Dst: 1, Piece: p, Order: 1})
		s.AddTransfer(Transfer{Src: 1, Dst: 2, Piece: p, Deps: []int{t0}, Order: 2})
		m := s.Mirror(nil)
		if m.Transfers[0].Src != 1 || m.Transfers[0].Dst != 0 {
			t.Errorf("endpoints not swapped: %+v", m.Transfers[0])
		}
		if got := m.Transfers[0].Deps; len(got) != 1 || got[0] != 1 {
			t.Errorf("deps not reversed: %v", got)
		}
		if len(m.Transfers[1].Deps) != 0 {
			t.Errorf("tail kept deps: %v", m.Transfers[1].Deps)
		}
		if m.Transfers[0].Order != -1 || m.Transfers[1].Order != -2 {
			t.Errorf("orders = %d, %d", m.Transfers[0].Order, m.Transfers[1].Order)
		}
	})
	t.Run("remap rewrites pieces", func(t *testing.T) {
		s := &Schedule{NumGPUs: 2}
		s.AddPiece(64, 0)
		m := s.Mirror(func(p Piece) Piece {
			return Piece{Chunks: []int{0, 1, 2}, Bytes: p.Bytes}
		})
		if len(m.Pieces[0].Chunks) != 3 || m.Pieces[0].Bytes != 64 {
			t.Errorf("remap not applied: %+v", m.Pieces[0])
		}
		if len(s.Pieces[0].Chunks) != 1 {
			t.Errorf("remap mutated the source schedule: %+v", s.Pieces[0])
		}
	})
	t.Run("double mirror is the identity on structure", func(t *testing.T) {
		s := chainBroadcast(4, 100)
		mm := s.Mirror(nil).Mirror(nil)
		if len(mm.Transfers) != len(s.Transfers) {
			t.Fatalf("transfer count changed: %d vs %d", len(mm.Transfers), len(s.Transfers))
		}
		for i := range s.Transfers {
			a, b := s.Transfers[i], mm.Transfers[i]
			if a.Src != b.Src || a.Dst != b.Dst || a.Order != b.Order || a.Piece != b.Piece {
				t.Errorf("transfer %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
