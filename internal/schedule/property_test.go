package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"syccl/internal/collective"
)

// randomBroadcastSchedule builds a random valid broadcast schedule: a
// random spanning arborescence over n GPUs with dependency-correct
// relays.
func randomBroadcastSchedule(rng *rand.Rand, n int, bytes float64) *Schedule {
	s := &Schedule{NumGPUs: n}
	p := s.AddPiece(bytes, 0)
	informed := []int{0}
	delivered := map[int]int{}
	perm := rng.Perm(n - 1)
	for _, v := range perm {
		dst := v + 1
		src := informed[rng.Intn(len(informed))]
		t := Transfer{Src: src, Dst: dst, Piece: p, Order: len(s.Transfers)}
		if di, ok := delivered[src]; ok {
			t.Deps = []int{di}
		}
		delivered[dst] = s.AddTransfer(t)
		informed = append(informed, dst)
	}
	return s
}

// Property: random broadcast arborescences always validate, and their
// mirror always validates as a Reduce.
func TestRandomBroadcastAndMirrorProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%14) + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomBroadcastSchedule(rng, n, 1000)
		bc := collective.Broadcast(n, 0, 1000)
		if s.Validate(bc) != nil {
			return false
		}
		red := collective.Reduce(n, 0, 1000)
		all := make([]int, len(red.Chunks))
		for i := range all {
			all[i] = i
		}
		m := s.Mirror(func(p Piece) Piece { return Piece{Chunks: all, Bytes: p.Bytes} })
		return m.Validate(red) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Mirror is an involution up to piece remapping — mirroring
// twice restores the original transfer endpoints and dependency counts.
func TestMirrorInvolutionProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%14) + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomBroadcastSchedule(rng, n, 64)
		mm := s.Mirror(nil).Mirror(nil)
		if len(mm.Transfers) != len(s.Transfers) {
			return false
		}
		for i := range s.Transfers {
			a, b := s.Transfers[i], mm.Transfers[i]
			if a.Src != b.Src || a.Dst != b.Dst || a.Piece != b.Piece || len(a.Deps) != len(b.Deps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SortTransfersByOrder preserves validity and stats.
func TestSortPreservesSemanticsProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%14) + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomBroadcastSchedule(rng, n, 128)
		// Scramble orders.
		for i := range s.Transfers {
			s.Transfers[i].Order = rng.Intn(1000)
		}
		before := s.ComputeStats(1)
		bc := collective.Broadcast(n, 0, 128)
		s.SortTransfersByOrder()
		after := s.ComputeStats(1)
		if s.Validate(bc) != nil {
			return false
		}
		return before.Transfers == after.Transfers &&
			before.WireBytes == after.WireBytes &&
			before.MaxHops == after.MaxHops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Concat never loses transfers and keeps the DAG acyclic.
func TestConcatProperty(t *testing.T) {
	f := func(seedA, seedB int64, rawN uint8) bool {
		n := int(rawN%14) + 2
		a := randomBroadcastSchedule(rand.New(rand.NewSource(seedA)), n, 10)
		b := randomBroadcastSchedule(rand.New(rand.NewSource(seedB)), n, 20)
		out := Concat(a, b)
		if len(out.Transfers) != len(a.Transfers)+len(b.Transfers) {
			return false
		}
		if len(out.Pieces) != len(a.Pieces)+len(b.Pieces) {
			return false
		}
		_, err := out.topoOrder()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
