// Package nccl reimplements NCCL's fixed collective schedules as the
// paper's baseline (§2.1): hierarchical multi-ring AllGather/
// ReduceScatter/AllReduce (Fig 2), double-tree style Broadcast/Reduce,
// and direct/PXN AlltoAll. A Tune entry point mimics NCCL's tuner by
// picking the best fixed algorithm for a given size via the α-β
// simulator.
//
// Rings follow NCCL's rail-aligned construction: within each server GPUs
// form a chain; chains link across servers through same-rail network
// hops, one ring per local index, so every GPU is the network exit of
// exactly one ring. This pins the NVLink:network traffic ratio at
// (G-1):1 per server — the rigidity §2.1 blames for bandwidth waste.
package nccl

import (
	"fmt"

	"syccl/internal/collective"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

// dimFor returns the smallest dimension connecting two GPUs, preferring
// the intra-server fabric.
func dimFor(top *topology.Topology, a, b int) (int, error) {
	for d := 0; d < top.NumDims(); d++ {
		if top.SameGroup(d, a, b) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("nccl: GPUs %d and %d share no dimension", a, b)
}

// rings builds NCCL's ring orderings: ring r starts at local index r of
// server 0, walks the server's GPUs in local order, exits over the NIC of
// its last GPU to the same rail of the next server, and so on. The entry
// local index therefore advances by G-1 per server, which keeps every
// network hop rail-aligned and uses each GPU's NIC in exactly one ring.
func rings(top *topology.Topology) [][]int {
	s := top.Sym.Server.N
	g := top.Sym.Local.N
	if s == 1 {
		// Single server: simple NVLink rings, one rotation per local.
		out := make([][]int, 0, g)
		for r := 0; r < g; r++ {
			ring := make([]int, g)
			for k := 0; k < g; k++ {
				ring[k] = (r + k) % g
			}
			out = append(out, ring)
		}
		return out
	}
	// The per-server entry→exit shift δ must satisfy s·δ ≡ 0 (mod g) so
	// the ring closes with a rail-aligned wrap hop; the smallest positive
	// choice is g/gcd(g,s) (δ=1 in the classic 8×8 case).
	delta := (g / gcd(g, s)) % g
	if delta == 0 && g > 1 {
		// No shift closes the loop on this shape; fall back to δ=1 and
		// let the wrap hop ride an upper network dimension if present.
		delta = 1
	}
	out := make([][]int, 0, g)
	for r := 0; r < g; r++ {
		ring := make([]int, 0, s*g)
		entry := r
		for srv := 0; srv < s; srv++ {
			exit := (entry + delta) % g
			ring = append(ring, srv*g+entry)
			for k := 0; k < g; k++ {
				loc := (entry + k) % g
				if loc != entry && loc != exit {
					ring = append(ring, srv*g+loc)
				}
			}
			if exit != entry {
				ring = append(ring, srv*g+exit)
			}
			entry = exit
		}
		out = append(out, ring)
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// AllGather builds the hierarchical multi-ring AllGather schedule: each
// GPU's chunk is split across the rings; every ring performs N-1
// forwarding steps.
func AllGather(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	if col.Kind != collective.KindAllGather {
		return nil, fmt.Errorf("nccl.AllGather: got %v", col.Kind)
	}
	n := top.NumGPUs()
	rs := rings(top)
	numRings := len(rs)
	sched := &schedule.Schedule{NumGPUs: n}

	// pieces[c][r]: ring r's share of chunk c.
	pieces := make([][]int, n)
	for c := 0; c < n; c++ {
		pieces[c] = make([]int, numRings)
		for r := 0; r < numRings; r++ {
			pieces[c][r] = sched.AddPiece(col.ChunkSize/float64(numRings), c)
		}
	}

	for r, ring := range rs {
		pos := make(map[int]int, n)
		for i, gpu := range ring {
			pos[gpu] = i
		}
		last := make([]int, n) // last transfer of chunk owned by ring position
		for i := range last {
			last[i] = -1
		}
		for step := 0; step < n-1; step++ {
			for i, gpu := range ring {
				src := gpu
				dst := ring[(i+1)%n]
				ownerPos := ((i-step)%n + n) % n
				chunk := ring[ownerPos]
				dim, err := dimFor(top, src, dst)
				if err != nil {
					return nil, err
				}
				t := schedule.Transfer{
					Src: src, Dst: dst, Piece: pieces[chunk][r], Dim: dim, Order: step,
				}
				if last[ownerPos] >= 0 {
					t.Deps = []int{last[ownerPos]}
				}
				last[ownerPos] = sched.AddTransfer(t)
			}
		}
	}
	return sched, nil
}

// ReduceScatter mirrors the ring AllGather (NCCL's ring ReduceScatter is
// its time reverse): contributions travel the ring accumulating toward
// each destination.
func ReduceScatter(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	if col.Kind != collective.KindReduceScatter {
		return nil, fmt.Errorf("nccl.ReduceScatter: got %v", col.Kind)
	}
	ag := collective.AllGather(col.NumGPUs, col.ChunkSize)
	fwd, err := AllGather(top, ag)
	if err != nil {
		return nil, err
	}
	byDst := map[int][]int{}
	for _, ch := range col.Chunks {
		byDst[ch.Dsts[0]] = append(byDst[ch.Dsts[0]], ch.ID)
	}
	return fwd.Mirror(func(p schedule.Piece) schedule.Piece {
		out := schedule.Piece{Bytes: p.Bytes}
		for _, c := range p.Chunks {
			out.Chunks = append(out.Chunks, byDst[ag.Chunks[c].Src]...)
		}
		return out
	}), nil
}

// AllReduceRing is ring ReduceScatter followed by ring AllGather over
// n-th slices.
func AllReduceRing(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	if col.Kind != collective.KindAllReduce {
		return nil, fmt.Errorf("nccl.AllReduceRing: got %v", col.Kind)
	}
	n := col.NumGPUs
	rsCol := collective.ReduceScatter(n, col.ChunkSize)
	agCol := collective.AllGather(n, col.ChunkSize)
	rs, err := ReduceScatter(top, rsCol)
	if err != nil {
		return nil, err
	}
	ag, err := AllGather(top, agCol)
	if err != nil {
		return nil, err
	}
	return schedule.Concat(rs, ag), nil
}

// Broadcast builds NCCL's hierarchical tree broadcast: the root fans out
// through a binary tree over servers (rail hops from the root's local
// index), then chains inside each server.
func Broadcast(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	if col.Kind != collective.KindBroadcast {
		return nil, fmt.Errorf("nccl.Broadcast: got %v", col.Kind)
	}
	n := top.NumGPUs()
	g := top.Sym.Local.N
	s := top.Sym.Server.N
	sched := &schedule.Schedule{NumGPUs: n}
	p := sched.AddPiece(col.ChunkSize, 0)

	root := col.Root
	rootSrv, rootLoc := root/g, root%g

	// Binary tree over servers, rooted at the root's server, using
	// same-rail hops at the root's local index.
	arrivalAt := map[int]int{root: -1} // GPU → delivering transfer (-1 = origin)
	serverSeq := make([]int, 0, s)
	for i := 0; i < s; i++ {
		serverSeq = append(serverSeq, (rootSrv+i)%s)
	}
	// Heap-style binary tree over serverSeq positions.
	for idx := 0; idx < len(serverSeq); idx++ {
		for _, child := range []int{2*idx + 1, 2*idx + 2} {
			if child >= len(serverSeq) {
				continue
			}
			parentGPU := serverSeq[idx]*g + rootLoc
			childGPU := serverSeq[child]*g + rootLoc
			dim, err := dimFor(top, parentGPU, childGPU)
			if err != nil {
				return nil, err
			}
			t := schedule.Transfer{Src: parentGPU, Dst: childGPU, Piece: p, Dim: dim, Order: child}
			if dep, ok := arrivalAt[parentGPU]; ok && dep >= 0 {
				t.Deps = []int{dep}
			}
			arrivalAt[childGPU] = sched.AddTransfer(t)
		}
	}

	// Chain inside each server from the rail GPU.
	for srv := 0; srv < s; srv++ {
		head := srv*g + rootLoc
		dep := arrivalAt[head]
		prev := head
		for k := 1; k < g; k++ {
			dst := srv*g + (rootLoc+k)%g
			t := schedule.Transfer{Src: prev, Dst: dst, Piece: p, Dim: 0, Order: 1000 + k}
			if dep >= 0 {
				t.Deps = []int{dep}
			}
			dep = sched.AddTransfer(t)
			prev = dst
		}
	}
	return sched, nil
}

// Reduce mirrors Broadcast.
func Reduce(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	if col.Kind != collective.KindReduce {
		return nil, fmt.Errorf("nccl.Reduce: got %v", col.Kind)
	}
	bc := collective.Broadcast(col.NumGPUs, col.Root, col.ChunkSize)
	fwd, err := Broadcast(top, bc)
	if err != nil {
		return nil, err
	}
	all := make([]int, len(col.Chunks))
	for i := range all {
		all[i] = i
	}
	return fwd.Mirror(func(p schedule.Piece) schedule.Piece {
		return schedule.Piece{Chunks: all, Bytes: p.Bytes}
	}), nil
}

// AlltoAll builds the pairwise exchange. On topologies where any pair
// shares a network dimension it sends directly; on rail-only fabrics it
// uses PXN: first an NVLink hop to the server-mate on the destination
// rail, then a rail hop (§2 of the NCCL 2.12 PXN description).
func AlltoAll(top *topology.Topology, col *collective.Collective) (*schedule.Schedule, error) {
	if col.Kind != collective.KindAlltoAll {
		return nil, fmt.Errorf("nccl.AlltoAll: got %v", col.Kind)
	}
	n := top.NumGPUs()
	g := top.Sym.Local.N
	sched := &schedule.Schedule{NumGPUs: n}
	for _, ch := range col.Chunks {
		src, dst := ch.Src, ch.Dsts[0]
		p := sched.AddPiece(col.ChunkSize, ch.ID)
		order := ((dst-src)%n + n) % n // rotation order avoids convoying
		if d, err := dimFor(top, src, dst); err == nil {
			sched.AddTransfer(schedule.Transfer{Src: src, Dst: dst, Piece: p, Dim: d, Order: order})
			continue
		}
		// PXN relay: same-server GPU on the destination rail.
		relay := (src/g)*g + dst%g
		d1, err := dimFor(top, src, relay)
		if err != nil {
			return nil, err
		}
		d2, err := dimFor(top, relay, dst)
		if err != nil {
			return nil, fmt.Errorf("nccl: no PXN path %d→%d: %w", src, dst, err)
		}
		first := sched.AddTransfer(schedule.Transfer{Src: src, Dst: relay, Piece: p, Dim: d1, Order: order})
		sched.AddTransfer(schedule.Transfer{Src: relay, Dst: dst, Piece: p, Dim: d2, Order: order, Deps: []int{first}})
	}
	return sched, nil
}

// Schedule returns NCCL's schedule for a collective, picking among the
// library's fixed algorithms by simulated time the way NCCL's tuner
// selects by size class.
func Schedule(top *topology.Topology, col *collective.Collective, opts sim.Options) (*schedule.Schedule, float64, error) {
	type variant func(*topology.Topology, *collective.Collective) (*schedule.Schedule, error)
	var variants []variant
	switch col.Kind {
	case collective.KindAllGather:
		variants = []variant{AllGather}
	case collective.KindReduceScatter:
		variants = []variant{ReduceScatter}
	case collective.KindAllReduce:
		variants = []variant{AllReduceRing}
	case collective.KindBroadcast:
		variants = []variant{Broadcast}
	case collective.KindReduce:
		variants = []variant{Reduce}
	case collective.KindAlltoAll:
		variants = []variant{AlltoAll}
	default:
		return nil, 0, fmt.Errorf("nccl: unsupported collective %v", col.Kind)
	}
	var best *schedule.Schedule
	bestTime := 0.0
	for _, v := range variants {
		s, err := v(top, col)
		if err != nil {
			continue
		}
		r, err := sim.Simulate(top, s, opts)
		if err != nil {
			continue
		}
		if best == nil || r.Time < bestTime {
			best = s
			bestTime = r.Time
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("nccl: no valid schedule for %v on %s", col.Kind, top.Name)
	}
	return best, bestTime, nil
}
