package nccl

import (
	"math"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/metrics"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

func TestRingsCoverAllGPUs(t *testing.T) {
	for _, top := range []*topology.Topology{
		topology.SingleServer(8), topology.A100Clos(2), topology.A100Clos(4),
		topology.H800Rail(2), topology.H800Rail(8), topology.H800Small(6),
	} {
		for r, ring := range rings(top) {
			if len(ring) != top.NumGPUs() {
				t.Fatalf("%s ring %d has %d entries", top.Name, r, len(ring))
			}
			seen := make([]bool, top.NumGPUs())
			for _, gpu := range ring {
				if seen[gpu] {
					t.Fatalf("%s ring %d revisits GPU %d", top.Name, r, gpu)
				}
				seen[gpu] = true
			}
		}
	}
}

func TestRingsRailAligned(t *testing.T) {
	// On pure rail topologies every cross-server hop must stay within a
	// rail (there is no other network path).
	for _, top := range []*topology.Topology{topology.H800Rail(2), topology.H800Rail(8), topology.H800Small(6)} {
		g := top.Sym.Local.N
		for r, ring := range rings(top) {
			n := len(ring)
			for i := 0; i < n; i++ {
				a, b := ring[i], ring[(i+1)%n]
				if a/g == b/g {
					continue // intra-server
				}
				if a%g != b%g {
					t.Fatalf("%s ring %d: cross-server hop %d→%d not rail aligned", top.Name, r, a, b)
				}
			}
		}
	}
}

func TestAllGatherValidates(t *testing.T) {
	for _, top := range []*topology.Topology{
		topology.SingleServer(8), topology.A100Clos(2), topology.H800Rail(2), topology.H800Small(6),
	} {
		col := collective.AllGather(top.NumGPUs(), 1<<20)
		s, err := AllGather(top, col)
		if err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
		if err := s.Validate(col); err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
		if _, err := sim.Simulate(top, s, sim.DefaultOptions()); err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
	}
}

// TestFig2BandwidthRatio checks §2.1's analysis: the ring AllGather pins
// NVLink:network traffic at 7:1 per server on 8-GPU servers.
func TestFig2BandwidthRatio(t *testing.T) {
	top := topology.H800Rail(2)
	col := collective.AllGather(16, 1<<20)
	s, err := AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats(top.NumDims())
	ratio := st.PerDimBytes[0] / st.PerDimBytes[1]
	if math.Abs(ratio-7) > 0.01 {
		t.Errorf("NVLink:network byte ratio = %g, want 7 (Fig 2)", ratio)
	}
}

// TestFig2NetworkWaste: on the H800 ratio (3.6:1), NVLink is the ring's
// bottleneck and network utilization suffers — the ring's busbw loses
// to the hardware's aggregate by roughly the 10% the paper reports.
func TestFig2NetworkWaste(t *testing.T) {
	top := topology.H800Rail(2)
	size := 1 << 30
	col := collective.AllGather(16, float64(size)/16)
	s, err := AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(top, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nvU := r.Utilization(top, 0)
	netU := r.Utilization(top, 1)
	if nvU < 0.8 {
		t.Errorf("NVLink should be the bottleneck: utilization %g", nvU)
	}
	if netU > 0.75*nvU {
		t.Errorf("network should be underutilized: %g vs NVLink %g", netU, nvU)
	}
}

func TestReduceScatterValidates(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.ReduceScatter(16, 1<<20)
	s, err := ReduceScatter(top, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceRing(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AllReduce(16, 1<<22)
	s, err := AllReduceRing(top, col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Simulate(top, s, sim.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastValidates(t *testing.T) {
	for _, top := range []*topology.Topology{topology.SingleServer(8), topology.H800Rail(2), topology.A100Clos(4)} {
		col := collective.Broadcast(top.NumGPUs(), 0, 1<<20)
		s, err := Broadcast(top, col)
		if err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
		if err := s.Validate(col); err != nil {
			t.Fatalf("%s: %v", top.Name, err)
		}
	}
}

func TestReduceMirror(t *testing.T) {
	top := topology.H800Rail(2)
	col := collective.Reduce(16, 0, 1<<20)
	s, err := Reduce(top, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllDirectOnClos(t *testing.T) {
	top := topology.A100Clos(2)
	col := collective.AlltoAll(16, 1<<16)
	s, err := AlltoAll(top, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
	// On Clos, every pair reaches over the network: no PXN relays, so
	// transfers == chunks.
	if len(s.Transfers) != len(col.Chunks) {
		t.Errorf("expected direct sends, got %d transfers for %d chunks", len(s.Transfers), len(col.Chunks))
	}
}

func TestAlltoAllPXNOnRail(t *testing.T) {
	top := topology.H800Rail(2)
	col := collective.AlltoAll(16, 1<<16)
	s, err := AlltoAll(top, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(col); err != nil {
		t.Fatal(err)
	}
	// Cross-server, cross-rail chunks need 2 hops.
	if len(s.Transfers) <= len(col.Chunks) {
		t.Errorf("expected PXN relays, got %d transfers for %d chunks", len(s.Transfers), len(col.Chunks))
	}
}

func TestScheduleTuner(t *testing.T) {
	top := topology.A100Clos(2)
	for _, col := range []*collective.Collective{
		collective.AllGather(16, 1<<20),
		collective.ReduceScatter(16, 1<<20),
		collective.AllReduce(16, 1<<20),
		collective.Broadcast(16, 0, 1<<20),
		collective.Reduce(16, 0, 1<<20),
		collective.AlltoAll(16, 1<<16),
	} {
		s, tm, err := Schedule(top, col, sim.DefaultOptions())
		if err != nil {
			t.Fatalf("%v: %v", col.Kind, err)
		}
		if s == nil || tm <= 0 {
			t.Fatalf("%v: empty result", col.Kind)
		}
	}
}

// TestRingLatencyScaling: the ring's small-size latency grows linearly
// with GPU count (the §7.2 "511 hops" pathology).
func TestRingLatencyScaling(t *testing.T) {
	small := 16384.0
	t16 := ringTime(t, topology.H800Rail(2), 16, small)
	t64 := ringTime(t, topology.H800Rail(8), 64, small)
	if t64 < 3*t16 {
		t.Errorf("ring latency did not scale with hops: 16 GPUs %g, 64 GPUs %g", t16, t64)
	}
}

func ringTime(t *testing.T, top *topology.Topology, n int, total float64) float64 {
	t.Helper()
	col := collective.AllGather(n, total/float64(n))
	s, err := AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(top, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r.Time
}

func TestLargeSizeBusbw(t *testing.T) {
	// 16-GPU H800 ring AllGather at 1 GB: NVLink-bound. Expect busbw in
	// a plausible band (the paper's Fig 2 arithmetic puts the loss near
	// 10% of aggregate).
	top := topology.H800Rail(2)
	size := 1 << 30
	tm := ringTime(t, top, 16, float64(size))
	bus := metrics.BusBandwidth(collective.KindAllGather, 16, float64(size), tm)
	if bus < 50e9 || bus > 230e9 {
		t.Errorf("ring busbw %.1f GBps implausible", bus/1e9)
	}
}
