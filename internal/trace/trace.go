// Package trace renders simulated schedules as human-readable timelines:
// a per-GPU text Gantt chart of port activity and a per-transfer event
// log. The paper's workflow of inspecting SyCCL's "readable high-level
// sketches" and hand-optimizing the winner (Appendix C) needs exactly
// this view of where each port's time goes.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"syccl/internal/obs"
	"syccl/internal/schedule"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

// Event is one transfer with its simulated timing.
type Event struct {
	Transfer int // index into the schedule
	Src, Dst int
	Dim      int
	// Port is the egress link the transfer occupies, densely numbered as
	// src*NumPortClasses + portClass so every (GPU, physical port) pair
	// gets a stable id.
	Port   int
	Bytes  float64
	Start  float64 // first byte leaves the source (seconds)
	Finish float64 // arrival time (seconds)
}

// Timeline is the simulated activity of a schedule.
type Timeline struct {
	Events   []Event
	Makespan float64
}

// Build combines a schedule with its simulation result.
func Build(top *topology.Topology, s *schedule.Schedule, r *sim.Result) *Timeline {
	tl := &Timeline{Makespan: r.Time}
	nc := top.NumPortClasses()
	for i, t := range s.Transfers {
		start := 0.0
		if i < len(r.StartAt) {
			start = r.StartAt[i]
		}
		tl.Events = append(tl.Events, Event{
			Transfer: i,
			Src:      t.Src,
			Dst:      t.Dst,
			Dim:      t.Dim,
			Port:     t.Src*nc + top.Dim(t.Dim).PortClass,
			Bytes:    s.Pieces[t.Piece].Bytes,
			Start:    start,
			Finish:   r.FinishAt[i],
		})
	}
	sort.SliceStable(tl.Events, func(a, b int) bool {
		if tl.Events[a].Start != tl.Events[b].Start {
			return tl.Events[a].Start < tl.Events[b].Start
		}
		return tl.Events[a].Finish < tl.Events[b].Finish
	})
	return tl
}

// EventLog renders the first `limit` events (0 = all) as a table.
func (tl *Timeline) EventLog(limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %6s %6s %5s %5s %12s\n", "start", "finish", "src", "dst", "dim", "port", "bytes")
	n := len(tl.Events)
	if limit > 0 && limit < n {
		n = limit
	}
	for _, e := range tl.Events[:n] {
		fmt.Fprintf(&b, "%9.3fµs %9.3fµs %6d %6d %5d %5d %12.0f\n",
			e.Start*1e6, e.Finish*1e6, e.Src, e.Dst, e.Dim, e.Port, e.Bytes)
	}
	if n < len(tl.Events) {
		fmt.Fprintf(&b, "… %d more events, makespan %.3gs\n", len(tl.Events)-n, tl.Makespan)
	}
	return b.String()
}

// EmitChrome injects the simulated schedule into an observability
// recorder as a separate Chrome-trace process: one thread per egress
// link (GPU × port class), one complete event per transfer spanning its
// simulated start→finish window. Loading the exported trace in Perfetto
// then shows the synthesis pipeline and the schedule it produced side by
// side. A nil recorder is a no-op.
func EmitChrome(rec *obs.Recorder, top *topology.Topology, s *schedule.Schedule, r *sim.Result) {
	if rec == nil {
		return
	}
	tl := Build(top, s, r)
	proc := "schedule:" + top.Name
	for _, e := range tl.Events {
		class := top.Dim(e.Dim).PortClass
		dur := e.Finish - e.Start
		if dur < 0 {
			dur = 0
		}
		rec.Emit(obs.Complete{
			Process: proc,
			Thread:  fmt.Sprintf("gpu%03d p%d", e.Src, class),
			Name:    fmt.Sprintf("%d→%d", e.Src, e.Dst),
			Start:   e.Start,
			Dur:     dur,
			Attrs: []obs.Attr{
				obs.Int("transfer", int64(e.Transfer)),
				obs.Int("dim", int64(e.Dim)),
				obs.Int("port", int64(e.Port)),
				obs.Float("bytes", e.Bytes),
				obs.Float("util", r.LinkUtilization(e.Src, class)),
			},
		})
	}
}

// Gantt renders per-GPU egress activity as a fixed-width chart: one row
// per GPU, `width` columns spanning the makespan; each cell shows the
// dimension digit of the transfer finishing in that slot ('.' = idle).
func (tl *Timeline) Gantt(top *topology.Topology, width int) string {
	if width <= 0 {
		width = 64
	}
	if tl.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	rows := make([][]byte, top.NumGPUs())
	for g := range rows {
		rows[g] = []byte(strings.Repeat(".", width))
	}
	for _, e := range tl.Events {
		slot := int(e.Finish / tl.Makespan * float64(width))
		if slot >= width {
			slot = width - 1
		}
		c := byte('0' + e.Dim%10)
		rows[e.Src][slot] = c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "egress activity over %.3gs (cell = dimension digit of a finishing send)\n", tl.Makespan)
	for g, row := range rows {
		fmt.Fprintf(&b, "gpu%-4d |%s|\n", g, row)
	}
	return b.String()
}

// DimSummary aggregates moved bytes and busy time per dimension.
func (tl *Timeline) DimSummary(top *topology.Topology, r *sim.Result) string {
	bytes := make([]float64, top.NumDims())
	count := make([]int, top.NumDims())
	for _, e := range tl.Events {
		if e.Dim >= 0 && e.Dim < top.NumDims() {
			bytes[e.Dim] += e.Bytes
			count[e.Dim]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %14s %12s\n", "dimension", "transfers", "bytes", "utilization")
	for d := 0; d < top.NumDims(); d++ {
		fmt.Fprintf(&b, "%-10s %10d %14.0f %11.1f%%\n",
			top.Dim(d).Name, count[d], bytes[d], r.Utilization(top, d)*100)
	}
	return b.String()
}
