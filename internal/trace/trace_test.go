package trace

import (
	"strings"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/nccl"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

func buildTimeline(t *testing.T) (*Timeline, *topology.Topology, *sim.Result) {
	t.Helper()
	top := topology.H800Small(2)
	col := collective.AllGather(8, 1<<20)
	s, err := nccl.AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(top, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Build(s, r), top, r
}

func TestBuildOrdersByFinish(t *testing.T) {
	tl, _, r := buildTimeline(t)
	if len(tl.Events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Finish < tl.Events[i-1].Finish {
			t.Fatal("events not sorted by finish time")
		}
	}
	if tl.Makespan != r.Time {
		t.Errorf("makespan %g != sim time %g", tl.Makespan, r.Time)
	}
	if last := tl.Events[len(tl.Events)-1]; last.Finish != r.Time {
		t.Errorf("last finish %g != makespan %g", last.Finish, r.Time)
	}
}

func TestEventLogLimit(t *testing.T) {
	tl, _, _ := buildTimeline(t)
	out := tl.EventLog(5)
	lines := strings.Count(out, "\n")
	if lines != 7 { // header + 5 events + "more" line
		t.Errorf("lines = %d: %s", lines, out)
	}
	full := tl.EventLog(0)
	if strings.Contains(full, "more events") {
		t.Error("unlimited log truncated")
	}
}

func TestGantt(t *testing.T) {
	tl, top, _ := buildTimeline(t)
	out := tl.Gantt(top, 40)
	if strings.Count(out, "\n") != top.NumGPUs()+1 {
		t.Errorf("gantt rows wrong:\n%s", out)
	}
	// Some activity must appear (digits 0 or 1 for the two dims).
	if !strings.ContainsAny(out, "01") {
		t.Error("gantt shows no activity")
	}
	empty := (&Timeline{}).Gantt(top, 40)
	if !strings.Contains(empty, "empty") {
		t.Error("empty timeline not handled")
	}
}

func TestDimSummary(t *testing.T) {
	tl, top, r := buildTimeline(t)
	out := tl.DimSummary(top, r)
	if !strings.Contains(out, "nvswitch") || !strings.Contains(out, "rail") {
		t.Errorf("summary missing dims:\n%s", out)
	}
	if !strings.Contains(out, "%") {
		t.Error("summary missing utilization")
	}
}
