package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"syccl/internal/collective"
	"syccl/internal/nccl"
	"syccl/internal/obs"
	"syccl/internal/sim"
	"syccl/internal/topology"
)

func buildTimeline(t *testing.T) (*Timeline, *topology.Topology, *sim.Result) {
	t.Helper()
	top := topology.H800Small(2)
	col := collective.AllGather(8, 1<<20)
	s, err := nccl.AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(top, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Build(top, s, r), top, r
}

func TestBuildOrdersByStart(t *testing.T) {
	tl, top, r := buildTimeline(t)
	if len(tl.Events) == 0 {
		t.Fatal("no events")
	}
	maxFinish := 0.0
	nc := top.NumPortClasses()
	for i, e := range tl.Events {
		if i > 0 && e.Start < tl.Events[i-1].Start {
			t.Fatal("events not sorted by start time")
		}
		if e.Finish <= e.Start {
			t.Errorf("event %d: finish %g ≤ start %g", i, e.Finish, e.Start)
		}
		if want := e.Src*nc + top.Dim(e.Dim).PortClass; e.Port != want {
			t.Errorf("event %d: port %d, want %d", i, e.Port, want)
		}
		if e.Finish > maxFinish {
			maxFinish = e.Finish
		}
	}
	if tl.Makespan != r.Time {
		t.Errorf("makespan %g != sim time %g", tl.Makespan, r.Time)
	}
	if maxFinish != r.Time {
		t.Errorf("max finish %g != makespan %g", maxFinish, r.Time)
	}
}

func TestEventLogLimit(t *testing.T) {
	tl, _, _ := buildTimeline(t)
	out := tl.EventLog(5)
	lines := strings.Count(out, "\n")
	if lines != 7 { // header + 5 events + "more" line
		t.Errorf("lines = %d: %s", lines, out)
	}
	full := tl.EventLog(0)
	if strings.Contains(full, "more events") {
		t.Error("unlimited log truncated")
	}
}

func TestGantt(t *testing.T) {
	tl, top, _ := buildTimeline(t)
	out := tl.Gantt(top, 40)
	if strings.Count(out, "\n") != top.NumGPUs()+1 {
		t.Errorf("gantt rows wrong:\n%s", out)
	}
	// Some activity must appear (digits 0 or 1 for the two dims).
	if !strings.ContainsAny(out, "01") {
		t.Error("gantt shows no activity")
	}
	empty := (&Timeline{}).Gantt(top, 40)
	if !strings.Contains(empty, "empty") {
		t.Error("empty timeline not handled")
	}
}

func TestEmitChrome(t *testing.T) {
	top := topology.H800Small(2)
	col := collective.AllGather(8, 1<<20)
	s, err := nccl.AllGather(top, col)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(top, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	EmitChrome(rec, top, s, r)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string                 `json:"ph"`
			Name string                 `json:"name"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	nX, threads := 0, map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			nX++
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
			if _, ok := ev.Args["bytes"]; !ok {
				t.Errorf("event %q missing bytes arg", ev.Name)
			}
		case "M":
			if ev.Name == "thread_name" {
				threads[fmt.Sprint(ev.Args["name"])] = true
			}
		}
	}
	if nX != len(s.Transfers) {
		t.Errorf("emitted %d events for %d transfers", nX, len(s.Transfers))
	}
	// Every GPU sends in a ring AllGather, so every GPU contributes at
	// least one link thread.
	for g := 0; g < top.NumGPUs(); g++ {
		found := false
		for name := range threads {
			if strings.HasPrefix(name, fmt.Sprintf("gpu%03d ", g)) {
				found = true
			}
		}
		if !found {
			t.Errorf("no link thread for gpu %d (threads: %v)", g, threads)
		}
	}

	// Nil recorder must be a no-op, not a panic.
	EmitChrome(nil, top, s, r)
}

func TestDimSummary(t *testing.T) {
	tl, top, r := buildTimeline(t)
	out := tl.DimSummary(top, r)
	if !strings.Contains(out, "nvswitch") || !strings.Contains(out, "rail") {
		t.Errorf("summary missing dims:\n%s", out)
	}
	if !strings.Contains(out, "%") {
		t.Error("summary missing utilization")
	}
}
