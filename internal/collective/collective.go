// Package collective models collective-communication demands.
//
// Following Table 1 of the paper, a collective is a set of data chunks C of
// uniform size s, a source map F_s assigning each chunk to the GPU that
// initially holds it, a destination map F_d assigning each chunk to the set
// of GPUs that demand it, and a reduce flag r indicating whether chunks are
// combined (reduced) at destinations rather than concatenated.
//
// The four communication patterns of Fig 1 (one-to-one, one-to-all,
// all-to-one, all-to-all) are all expressible; constructors are provided
// for the nine standard collectives.
package collective

import (
	"fmt"
	"sort"
)

// Kind identifies a standard collective.
type Kind int

// Standard collectives.
const (
	KindSendRecv Kind = iota
	KindBroadcast
	KindScatter
	KindGather
	KindReduce
	KindAllGather
	KindAlltoAll
	KindReduceScatter
	KindAllReduce
)

var kindNames = map[Kind]string{
	KindSendRecv:      "SendRecv",
	KindBroadcast:     "Broadcast",
	KindScatter:       "Scatter",
	KindGather:        "Gather",
	KindReduce:        "Reduce",
	KindAllGather:     "AllGather",
	KindAlltoAll:      "AlltoAll",
	KindReduceScatter: "ReduceScatter",
	KindAllReduce:     "AllReduce",
}

// String returns the collective's conventional name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a name such as "AllGather" (case-sensitive) to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("collective: unknown kind %q", s)
}

// Chunk is one unit of collective data: ID, the GPU it starts on (F_s) and
// the sorted set of GPUs that demand it (F_d).
type Chunk struct {
	ID   int
	Src  int
	Dsts []int
}

// Demands reports whether GPU g demands the chunk.
func (c *Chunk) Demands(g int) bool {
	i := sort.SearchInts(c.Dsts, g)
	return i < len(c.Dsts) && c.Dsts[i] == g
}

// Collective is a communication demand over GPUs 0..NumGPUs-1.
type Collective struct {
	Kind      Kind
	NumGPUs   int
	Chunks    []Chunk
	ChunkSize float64 // bytes per chunk (s in Table 1)
	Reduce    bool    // r in Table 1: chunks are reduced at destinations
	Root      int     // root GPU for rooted collectives, -1 otherwise
}

// TotalBytes returns the total payload of the collective: the number of
// chunk deliveries times the chunk size is the moved volume, but the
// conventional "data size" (the x-axis of the paper's figures, following
// nccl-tests) is the aggregate buffer size, i.e. chunk count × chunk size.
func (c *Collective) TotalBytes() float64 {
	return float64(len(c.Chunks)) * c.ChunkSize
}

// Validate checks structural invariants.
func (c *Collective) Validate() error {
	if c.NumGPUs <= 0 {
		return fmt.Errorf("collective %s: no GPUs", c.Kind)
	}
	if c.ChunkSize <= 0 {
		return fmt.Errorf("collective %s: non-positive chunk size %g", c.Kind, c.ChunkSize)
	}
	for i, ch := range c.Chunks {
		if ch.ID != i {
			return fmt.Errorf("collective %s: chunk IDs not dense at %d", c.Kind, i)
		}
		if ch.Src < 0 || ch.Src >= c.NumGPUs {
			return fmt.Errorf("collective %s: chunk %d source %d out of range", c.Kind, i, ch.Src)
		}
		if !sort.IntsAreSorted(ch.Dsts) {
			return fmt.Errorf("collective %s: chunk %d destinations not sorted", c.Kind, i)
		}
		for _, d := range ch.Dsts {
			if d < 0 || d >= c.NumGPUs {
				return fmt.Errorf("collective %s: chunk %d destination %d out of range", c.Kind, i, d)
			}
			if d == ch.Src && !c.Reduce {
				return fmt.Errorf("collective %s: chunk %d demanded by its own source", c.Kind, i)
			}
		}
	}
	return nil
}

// String summarizes the collective.
func (c *Collective) String() string {
	return fmt.Sprintf("%s(%d GPUs, %d chunks × %g B)", c.Kind, c.NumGPUs, len(c.Chunks), c.ChunkSize)
}

func allExcept(n, skip int) []int {
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != skip {
			out = append(out, i)
		}
	}
	return out
}

// SendRecv builds a one-to-one transfer of `bytes` from src to dst.
func SendRecv(n, src, dst int, bytes float64) *Collective {
	return &Collective{
		Kind: KindSendRecv, NumGPUs: n, ChunkSize: bytes, Root: src,
		Chunks: []Chunk{{ID: 0, Src: src, Dsts: []int{dst}}},
	}
}

// Broadcast builds a one-to-all broadcast of one chunk of `bytes` from root.
func Broadcast(n, root int, bytes float64) *Collective {
	return &Collective{
		Kind: KindBroadcast, NumGPUs: n, ChunkSize: bytes, Root: root,
		Chunks: []Chunk{{ID: 0, Src: root, Dsts: allExcept(n, root)}},
	}
}

// Scatter builds a one-to-all scatter: root holds n-1 distinct chunks, one
// destined to each other GPU. `bytes` is the total scattered payload, so
// each chunk carries bytes/(n-1)... — no: following the paper and MPI
// convention, `bytes` is the per-destination chunk size.
func Scatter(n, root int, bytes float64) *Collective {
	c := &Collective{Kind: KindScatter, NumGPUs: n, ChunkSize: bytes, Root: root}
	for _, d := range allExcept(n, root) {
		c.Chunks = append(c.Chunks, Chunk{ID: len(c.Chunks), Src: root, Dsts: []int{d}})
	}
	return c
}

// Gather builds an all-to-one gather: every non-root GPU holds one chunk of
// `bytes` demanded by the root.
func Gather(n, root int, bytes float64) *Collective {
	c := &Collective{Kind: KindGather, NumGPUs: n, ChunkSize: bytes, Root: root}
	for _, s := range allExcept(n, root) {
		c.Chunks = append(c.Chunks, Chunk{ID: len(c.Chunks), Src: s, Dsts: []int{root}})
	}
	return c
}

// Reduce builds an all-to-one reduction: like Gather but chunks are
// combined at the root (all chunks share one logical buffer; we model them
// as n-1 chunks with the reduce flag set).
func Reduce(n, root int, bytes float64) *Collective {
	c := Gather(n, root, bytes)
	c.Kind = KindReduce
	c.Reduce = true
	return c
}

// AllGather builds the all-to-all gather: each GPU i holds chunk i demanded
// by every other GPU. `perGPUBytes` is each GPU's contribution, so the
// aggregate output buffer ("data size" in the paper's figures) is
// n × perGPUBytes.
func AllGather(n int, perGPUBytes float64) *Collective {
	c := &Collective{Kind: KindAllGather, NumGPUs: n, ChunkSize: perGPUBytes, Root: -1}
	for i := 0; i < n; i++ {
		c.Chunks = append(c.Chunks, Chunk{ID: i, Src: i, Dsts: allExcept(n, i)})
	}
	return c
}

// AlltoAll builds the personalized all-to-all: GPU i holds n-1 chunks, one
// destined to each other GPU. `pairBytes` is the payload per (src,dst)
// pair; the aggregate buffer per GPU is (n-1) × pairBytes.
func AlltoAll(n int, pairBytes float64) *Collective {
	c := &Collective{Kind: KindAlltoAll, NumGPUs: n, ChunkSize: pairBytes, Root: -1}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			c.Chunks = append(c.Chunks, Chunk{ID: len(c.Chunks), Src: s, Dsts: []int{d}})
		}
	}
	return c
}

// ReduceScatter builds the all-to-all reduction: logically each GPU ends
// with the reduction of slice i from every GPU. We model it as the inverse
// of AllGather with the reduce flag: for each destination d there are n-1
// chunks (one per other source) all demanded only by d.
func ReduceScatter(n int, perGPUBytes float64) *Collective {
	c := &Collective{Kind: KindReduceScatter, NumGPUs: n, ChunkSize: perGPUBytes, Reduce: true, Root: -1}
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			if s == d {
				continue
			}
			c.Chunks = append(c.Chunks, Chunk{ID: len(c.Chunks), Src: s, Dsts: []int{d}})
		}
	}
	return c
}

// AllReduce builds the all-reduce specification for a buffer of `bytes`
// per GPU. The synthesizer realizes it as ReduceScatter followed by
// AllGather over n-th sized slices (§4.3); ChunkSize holds the per-slice
// size and the chunk set mirrors the AllGather phase.
func AllReduce(n int, bytes float64) *Collective {
	c := AllGather(n, bytes/float64(n))
	c.Kind = KindAllReduce
	return c
}

// AllReducePhases returns the two phases of an AllReduce of `bytes` per
// GPU: a ReduceScatter and an AllGather over n-th sized slices (§4.3).
func AllReducePhases(n int, bytes float64) (rs, ag *Collective) {
	per := bytes / float64(n)
	return ReduceScatter(n, per), AllGather(n, per)
}
