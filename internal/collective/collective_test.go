package collective

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if KindAllGather.String() != "AllGather" {
		t.Errorf("got %q", KindAllGather.String())
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("got %q", Kind(99).String())
	}
}

func TestParseKind(t *testing.T) {
	for k, name := range kindNames {
		got, err := ParseKind(name)
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestBroadcastShape(t *testing.T) {
	c := Broadcast(8, 3, 1024)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Chunks) != 1 {
		t.Fatalf("chunks = %d", len(c.Chunks))
	}
	ch := c.Chunks[0]
	if ch.Src != 3 || len(ch.Dsts) != 7 || ch.Demands(3) {
		t.Errorf("broadcast chunk wrong: %+v", ch)
	}
	if !ch.Demands(0) || !ch.Demands(7) {
		t.Error("broadcast chunk missing destinations")
	}
}

func TestScatterGatherInverse(t *testing.T) {
	sc := Scatter(5, 0, 64)
	ga := Gather(5, 0, 64)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ga.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Chunks) != 4 || len(ga.Chunks) != 4 {
		t.Fatalf("chunk counts: %d, %d", len(sc.Chunks), len(ga.Chunks))
	}
	// Scatter chunk i goes root→i-th destination; Gather reverses it.
	for i := range sc.Chunks {
		s, g := sc.Chunks[i], ga.Chunks[i]
		if s.Src != 0 || g.Dsts[0] != 0 {
			t.Errorf("chunk %d: scatter src %d, gather dst %v", i, s.Src, g.Dsts)
		}
		if s.Dsts[0] != g.Src {
			t.Errorf("chunk %d not inverse: %v vs %v", i, s, g)
		}
	}
}

func TestReduceFlag(t *testing.T) {
	r := Reduce(4, 1, 128)
	if !r.Reduce || r.Kind != KindReduce {
		t.Errorf("Reduce: %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	rs := ReduceScatter(4, 128)
	if !rs.Reduce {
		t.Error("ReduceScatter should set Reduce")
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherShape(t *testing.T) {
	c := AllGather(4, 100)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Chunks) != 4 {
		t.Fatalf("chunks = %d", len(c.Chunks))
	}
	if c.TotalBytes() != 400 {
		t.Errorf("TotalBytes = %g", c.TotalBytes())
	}
	for i, ch := range c.Chunks {
		if ch.Src != i || len(ch.Dsts) != 3 || ch.Demands(i) {
			t.Errorf("chunk %d: %+v", i, ch)
		}
	}
}

func TestAlltoAllShape(t *testing.T) {
	c := AlltoAll(4, 10)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Chunks) != 12 {
		t.Fatalf("chunks = %d, want 12", len(c.Chunks))
	}
	// Every (src,dst) ordered pair appears exactly once.
	seen := make(map[[2]int]bool)
	for _, ch := range c.Chunks {
		if len(ch.Dsts) != 1 {
			t.Fatalf("chunk %d has %d dsts", ch.ID, len(ch.Dsts))
		}
		key := [2]int{ch.Src, ch.Dsts[0]}
		if seen[key] {
			t.Errorf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestReduceScatterShape(t *testing.T) {
	c := ReduceScatter(3, 10)
	if len(c.Chunks) != 6 {
		t.Fatalf("chunks = %d, want 6", len(c.Chunks))
	}
	// Each destination receives exactly n-1 chunks.
	per := make(map[int]int)
	for _, ch := range c.Chunks {
		per[ch.Dsts[0]]++
	}
	for d := 0; d < 3; d++ {
		if per[d] != 2 {
			t.Errorf("dst %d receives %d chunks, want 2", d, per[d])
		}
	}
}

func TestAllReducePhases(t *testing.T) {
	rs, ag := AllReducePhases(4, 400)
	if rs.ChunkSize != 100 || ag.ChunkSize != 100 {
		t.Errorf("chunk sizes %g, %g, want 100", rs.ChunkSize, ag.ChunkSize)
	}
	if rs.Kind != KindReduceScatter || ag.Kind != KindAllGather {
		t.Error("phase kinds wrong")
	}
}

func TestSendRecv(t *testing.T) {
	c := SendRecv(8, 2, 5, 1e6)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Chunks[0].Src != 2 || c.Chunks[0].Dsts[0] != 5 {
		t.Errorf("SendRecv chunk: %+v", c.Chunks[0])
	}
}

func TestValidateRejections(t *testing.T) {
	c := AllGather(4, 100)
	c.Chunks[1].ID = 7
	if c.Validate() == nil {
		t.Error("accepted non-dense chunk IDs")
	}
	c2 := AllGather(4, 100)
	c2.Chunks[0].Dsts = []int{9}
	if c2.Validate() == nil {
		t.Error("accepted out-of-range destination")
	}
	c3 := AllGather(4, 0)
	if c3.Validate() == nil {
		t.Error("accepted zero chunk size")
	}
	c4 := Broadcast(4, 0, 10)
	c4.Chunks[0].Dsts = []int{0, 1}
	if c4.Validate() == nil {
		t.Error("accepted self-demand without reduce")
	}
}

// Property: for any n in 2..16, AllGather chunks cover every ordered pair
// exactly once as (src → demanded-by).
func TestAllGatherCoverageProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%15) + 2
		c := AllGather(n, 8)
		if c.Validate() != nil {
			return false
		}
		count := 0
		for _, ch := range c.Chunks {
			count += len(ch.Dsts)
		}
		return count == n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ReduceScatter and AllGather are volume-symmetric inverses.
func TestRSAGVolumeProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%15) + 2
		rs := ReduceScatter(n, 4)
		ag := AllGather(n, 4)
		vol := func(c *Collective) int {
			v := 0
			for _, ch := range c.Chunks {
				v += len(ch.Dsts)
			}
			return v
		}
		return vol(rs) == vol(ag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
