package topology

import "fmt"

// Link parameters for the paper's two production clusters (§7.1).
//
// A100 testbed (Fig 13a): 8×NVIDIA A800 per server with NVSwitch
// (≈200 GB/s per-GPU per direction) and 4×200 Gbps RDMA NICs per server
// shared by 8 GPUs (→ 12.5 GB/s per GPU).
//
// H800 cluster (Fig 13b): 8×H800 per server, NVLink 180 GB/s per GPU, and
// 8×400 Gbps NICs (one per GPU → 50 GB/s per GPU), giving the 3.6:1
// NVLink:network ratio §2.1 reports.
const (
	A100NVBandwidth  = 200e9  // bytes/s per GPU over NVSwitch
	A100NetBandwidth = 12.5e9 // bytes/s per GPU over the network
	H800NVBandwidth  = 180e9
	H800NetBandwidth = 50e9

	// Latencies follow TACCL-style profiled values: a couple of
	// microseconds inside a server, ~10 µs across the network fabric.
	NVAlpha  = 3e-6
	NetAlpha = 10e-6
)

// SingleServer returns an n-GPU single-server topology (NVSwitch only).
func SingleServer(n int) *Topology {
	return Build(Config{
		Name:          fmt.Sprintf("server-%dgpu", n),
		Servers:       1,
		GPUsPerServer: n,
		NVAlpha:       NVAlpha,
		NVBeta:        1 / H800NVBandwidth,
	})
}

// A100Clos returns the paper's A100 testbed (Fig 13a): `servers` servers of
// 8 GPUs, every two servers under one ToR (leaf), a full-bisection spine
// above. servers=2 is the 16-GPU testbed, servers=4 the 32-GPU one.
func A100Clos(servers int) *Topology {
	return Build(Config{
		Name:           fmt.Sprintf("a100-clos-%dgpu", servers*8),
		Servers:        servers,
		GPUsPerServer:  8,
		NVAlpha:        NVAlpha,
		NVBeta:         1 / A100NVBandwidth,
		NetAlpha:       NetAlpha,
		NetBeta:        1 / A100NetBandwidth,
		ServersPerLeaf: 2,
		LeavesPerSpine: (servers + 1) / 2, // one spine tier spanning all leaves
	})
}

// H800Rail returns the paper's H800 production cluster (Fig 13b): `servers`
// servers of 8 GPUs on a rail-optimized network — GPUs with the same local
// index share a leaf switch; there is no cross-rail network path (cross-rail
// traffic relays over NVLink, as NCCL PXN does). servers=8 is the 64-GPU
// configuration, servers=64 the 512-GPU one.
func H800Rail(servers int) *Topology {
	return Build(Config{
		Name:          fmt.Sprintf("h800-rail-%dgpu", servers*8),
		Servers:       servers,
		GPUsPerServer: 8,
		NVAlpha:       NVAlpha,
		NVBeta:        1 / H800NVBandwidth,
		NetAlpha:      NetAlpha,
		NetBeta:       1 / H800NetBandwidth,
	})
}

// H800Small returns the scaled-down microbenchmark cluster of §7.4:
// `servers` servers of 4 H800 GPUs each, same rail-optimized structure.
func H800Small(servers int) *Topology {
	return Build(Config{
		Name:          fmt.Sprintf("h800-small-%dgpu", servers*4),
		Servers:       servers,
		GPUsPerServer: 4,
		NVAlpha:       NVAlpha,
		NVBeta:        1 / H800NVBandwidth,
		NetAlpha:      NetAlpha,
		NetBeta:       1 / H800NetBandwidth,
	})
}

// Fig3 returns the worked-example multi-rail cluster of Fig 3: 4 servers ×
// 4 GPUs, one leaf per rail, two spines (two rails each), one core —
// yielding four dimensions with 4/4/2/1 groups.
func Fig3() *Topology {
	return Build(Config{
		Name:           "fig3-multirail-16gpu",
		Servers:        4,
		GPUsPerServer:  4,
		NVAlpha:        NVAlpha,
		NVBeta:         1 / H800NVBandwidth,
		NetAlpha:       NetAlpha,
		NetBeta:        1 / H800NetBandwidth,
		LeavesPerSpine: 2,
		WithCore:       true,
	})
}

// Fig19 returns the larger multi-rail example of Appendix B (Fig 19):
// 7 servers × 4 GPUs, one leaf per rail, a single spine over all leaves —
// three dimensions with 7/4/1 groups.
func Fig19() *Topology {
	return Build(Config{
		Name:           "fig19-multirail-28gpu",
		Servers:        7,
		GPUsPerServer:  4,
		NVAlpha:        NVAlpha,
		NVBeta:         1 / H800NVBandwidth,
		NetAlpha:       NetAlpha,
		NetBeta:        1 / H800NetBandwidth,
		LeavesPerSpine: 4,
	})
}

// Fig20 returns the Clos example of Appendix B (Fig 20): 8 servers × 4
// GPUs, each pair of servers under one leaf, each pair of leaves under one
// spine, two spines under one core — four dimensions with 8/4/2/1 groups.
func Fig20() *Topology {
	return Build(Config{
		Name:           "fig20-clos-32gpu",
		Servers:        8,
		GPUsPerServer:  4,
		NVAlpha:        NVAlpha,
		NVBeta:         1 / H800NVBandwidth,
		NetAlpha:       NetAlpha,
		NetBeta:        1 / H800NetBandwidth,
		ServersPerLeaf: 2,
		LeavesPerSpine: 2,
		WithCore:       true,
	})
}
