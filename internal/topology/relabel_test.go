package topology_test

import (
	"math/rand"
	"testing"

	"syccl/internal/topology"
	"syccl/internal/verify"
)

// TestGroupExtractionRelabelInvariant checks, for every paper topology,
// that the symmetry group's GPU relabelings really are automorphisms of
// the extracted dimension structure: the image of every group of every
// dimension is again a group of that dimension. This is the property the
// sketch-replication machinery (§4.2) silently assumes.
func TestGroupExtractionRelabelInvariant(t *testing.T) {
	tops := []*topology.Topology{
		topology.A100Clos(2),  // Fig 13a, 16 GPUs
		topology.A100Clos(4),  // Fig 13a, 32 GPUs
		topology.H800Rail(8),  // Fig 13b, 64 GPUs
		topology.H800Small(6), // §7.4 6×4 H800 cluster
		topology.Fig3(),
		topology.Fig19(),
		topology.Fig20(),
	}
	for _, top := range tops {
		t.Run(top.Name, func(t *testing.T) {
			perms := top.Sym.All()
			if len(perms) < 2 {
				t.Fatalf("symmetry group of %s has %d elements", top.Name, len(perms))
			}
			for pi, gp := range perms {
				perm := top.Sym.Permutation(gp)
				if err := verify.CheckDimInvariance(top, perm); err != nil {
					t.Fatalf("element %d: %v", pi, err)
				}
			}
		})
	}
}

// TestRelabelInvariantRejectsArbitraryPermutations is the negative side:
// a random non-symmetry shuffle of GPU IDs should, with overwhelming
// probability, split some dimension group — confirming the checker
// actually discriminates rather than accepting everything.
func TestRelabelInvariantRejectsArbitraryPermutations(t *testing.T) {
	top := topology.A100Clos(2)
	rng := rand.New(rand.NewSource(3))
	rejected := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		perm := rng.Perm(top.NumGPUs())
		if err := verify.CheckDimInvariance(top, perm); err != nil {
			rejected++
		}
	}
	if rejected < trials-1 {
		t.Fatalf("only %d of %d random shuffles rejected", rejected, trials)
	}
}
