// Package topology models multi-dimensional GPU cluster topologies.
//
// A topology contains physical nodes (GPUs, NICs, and switches) joined by
// links, each link carrying an alpha-beta cost (alpha: fixed latency in
// seconds, beta: seconds per byte, i.e. the reciprocal of bandwidth).
//
// Following SyCCL (§3.1, Table 2), the package extracts a set of
// *dimensions* from the physical graph. A dimension represents one type of
// inter-GPU connection — e.g. the intra-server NVSwitch fabric, the
// same-rail leaf tier, the spine tier, the core tier. Within each dimension
// GPUs are partitioned into *groups*: two GPUs belong to the same group of
// dimension d when they can reach each other using only that dimension's
// fabric. Groups of the same dimension are isomorphic by construction,
// which is the symmetry the SyCCL synthesizer exploits.
//
// Synthesizers and the simulator operate on the logical GPU-level view: a
// transfer in dimension d between two GPUs of the same group consumes the
// sender's egress port and the receiver's ingress port for that dimension
// (the switch fabric itself is treated as non-blocking, the standard
// TACCL/TECCL hyper-edge reduction; oversubscribed fabrics are expressed by
// scaling the dimension's port bandwidth).
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies a physical node.
type NodeKind int

// Node kinds, ordered so that switch tiers compare numerically.
const (
	KindGPU NodeKind = iota
	KindNIC
	KindNVSwitch
	KindLeafSwitch
	KindSpineSwitch
	KindCoreSwitch
)

// String returns a short human-readable name for the kind.
func (k NodeKind) String() string {
	switch k {
	case KindGPU:
		return "GPU"
	case KindNIC:
		return "NIC"
	case KindNVSwitch:
		return "NVSwitch"
	case KindLeafSwitch:
		return "Leaf"
	case KindSpineSwitch:
		return "Spine"
	case KindCoreSwitch:
		return "Core"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// tier returns the network tier of a switch kind. The intra-server fabric
// is tier 0; network switches occupy tiers 1 (leaf), 2 (spine), 3 (core).
// Non-switch kinds have no tier and return -1.
func (k NodeKind) tier() int {
	switch k {
	case KindNVSwitch:
		return 0
	case KindLeafSwitch:
		return 1
	case KindSpineSwitch:
		return 2
	case KindCoreSwitch:
		return 3
	default:
		return -1
	}
}

// Node is a physical element of the cluster.
type Node struct {
	ID     int      // dense index in Topology.Nodes
	Kind   NodeKind // what the node is
	Server int      // server index for GPUs/NICs/NVSwitches, -1 otherwise
	Local  int      // index within the server (GPU/NIC slot), -1 otherwise
	Name   string   // human-readable label, e.g. "gpu3.7" or "leaf2"
}

// Link is a directed physical connection between two nodes. Physical
// builders create links in both directions.
type Link struct {
	Src, Dst int     // node IDs
	Alpha    float64 // latency in seconds
	Beta     float64 // seconds per byte (1/bandwidth)
}

// Bandwidth returns the link bandwidth in bytes per second.
func (l Link) Bandwidth() float64 {
	if l.Beta == 0 {
		return 0
	}
	return 1 / l.Beta
}

// Dim is a logical dimension extracted from the physical topology
// (Table 2: D, G_d, V_{d,g}).
type Dim struct {
	ID    int     // dense index in Topology.Dims
	Name  string  // e.g. "nvswitch", "rail", "spine", "core"
	Alpha float64 // GPU-to-GPU latency within the dimension, seconds
	Beta  float64 // per-GPU port seconds/byte in this dimension
	// PortClass identifies the physical port the dimension's transfers
	// occupy: 0 for the intra-server fabric (NVLink), 1 for the network
	// (all switch tiers share each GPU's NIC). Dimensions of the same
	// class contend for the same port in the simulator and share one
	// bandwidth budget in the §4.2 chunk allocation.
	PortClass int
	Groups    [][]int // GPU IDs per group, each sorted ascending

	// Tier records which physical switch tier the dimension was extracted
	// from (0: intra-server fabric, 1..3: leaf/spine/core). Delta
	// application uses it to re-extract the same dimension from a degraded
	// physical graph.
	Tier int

	// groupOf maps GPU ID -> group index within this dimension, or -1 if
	// the GPU does not participate in the dimension.
	groupOf []int

	// alphaOf/betaOf hold per-group α/β overrides for degraded topologies.
	// nil means every group uses the dimension-level Alpha/Beta (the
	// healthy case); when set they are indexed by group and len(Groups).
	alphaOf, betaOf []float64
}

// AlphaOf returns the α of group g, falling back to the dimension-level
// Alpha when the group carries no degradation override.
func (d *Dim) AlphaOf(g int) float64 {
	if d.alphaOf != nil {
		return d.alphaOf[g]
	}
	return d.Alpha
}

// BetaOf returns the β of group g, falling back to the dimension-level
// Beta when the group carries no degradation override.
func (d *Dim) BetaOf(g int) float64 {
	if d.betaOf != nil {
		return d.betaOf[g]
	}
	return d.Beta
}

// GroupOf returns the index of the group containing gpu, or -1 if the GPU
// is not part of this dimension.
func (d *Dim) GroupOf(gpu int) int {
	if gpu < 0 || gpu >= len(d.groupOf) {
		return -1
	}
	return d.groupOf[gpu]
}

// GroupSize returns the number of GPUs in group g.
func (d *Dim) GroupSize(g int) int { return len(d.Groups[g]) }

// Bandwidth returns the per-GPU port bandwidth of the dimension in bytes
// per second.
func (d *Dim) Bandwidth() float64 {
	if d.Beta == 0 {
		return 0
	}
	return 1 / d.Beta
}

// Topology is a physical cluster plus its extracted logical dimensions.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link

	// GPUs lists the node IDs of all GPUs in ascending order. GPU node IDs
	// are guaranteed by the builders to be 0..NumGPUs()-1.
	GPUs []int

	// Dims are the extracted dimensions ordered from the innermost
	// (intra-server) outwards, matching the paper's Dim 0, Dim 1, ...
	Dims []*Dim

	// Sym is the symmetry action over the (server × local) GPU grid used
	// by sketch replication; populated by Build.
	Sym *Symmetry
}

// NumGPUs returns the number of GPU nodes.
func (t *Topology) NumGPUs() int { return len(t.GPUs) }

// Dim returns dimension d.
func (t *Topology) Dim(d int) *Dim { return t.Dims[d] }

// NumDims returns the number of extracted dimensions.
func (t *Topology) NumDims() int { return len(t.Dims) }

// SameGroup reports whether GPUs a and b belong to the same group of
// dimension d.
func (t *Topology) SameGroup(d, a, b int) bool {
	dim := t.Dims[d]
	ga, gb := dim.GroupOf(a), dim.GroupOf(b)
	return ga >= 0 && ga == gb
}

// Validate checks structural invariants: GPU IDs dense from zero, every
// GPU present in exactly one group per dimension it participates in, links
// referencing valid nodes, and positive betas.
func (t *Topology) Validate() error {
	for i, id := range t.GPUs {
		if id != i {
			return fmt.Errorf("topology %s: GPU node IDs not dense: GPUs[%d]=%d", t.Name, i, id)
		}
		if t.Nodes[id].Kind != KindGPU {
			return fmt.Errorf("topology %s: node %d listed as GPU but has kind %s", t.Name, id, t.Nodes[id].Kind)
		}
	}
	for _, l := range t.Links {
		if l.Src < 0 || l.Src >= len(t.Nodes) || l.Dst < 0 || l.Dst >= len(t.Nodes) {
			return fmt.Errorf("topology %s: link %d->%d references missing node", t.Name, l.Src, l.Dst)
		}
		if l.Beta <= 0 {
			return fmt.Errorf("topology %s: link %d->%d has non-positive beta %g", t.Name, l.Src, l.Dst, l.Beta)
		}
		if l.Alpha < 0 {
			return fmt.Errorf("topology %s: link %d->%d has negative alpha %g", t.Name, l.Src, l.Dst, l.Alpha)
		}
	}
	for _, dim := range t.Dims {
		seen := make(map[int]bool)
		for g, grp := range dim.Groups {
			if len(grp) == 0 {
				return fmt.Errorf("topology %s: dim %s group %d empty", t.Name, dim.Name, g)
			}
			if !sort.IntsAreSorted(grp) {
				return fmt.Errorf("topology %s: dim %s group %d not sorted", t.Name, dim.Name, g)
			}
			for _, gpu := range grp {
				if seen[gpu] {
					return fmt.Errorf("topology %s: dim %s: GPU %d in multiple groups", t.Name, dim.Name, gpu)
				}
				seen[gpu] = true
				if dim.GroupOf(gpu) != g {
					return fmt.Errorf("topology %s: dim %s: groupOf(%d)=%d want %d", t.Name, dim.Name, gpu, dim.GroupOf(gpu), g)
				}
			}
		}
		if dim.Beta <= 0 {
			return fmt.Errorf("topology %s: dim %s has non-positive beta", t.Name, dim.Name)
		}
		if dim.alphaOf != nil && len(dim.alphaOf) != len(dim.Groups) {
			return fmt.Errorf("topology %s: dim %s has %d alpha overrides for %d groups", t.Name, dim.Name, len(dim.alphaOf), len(dim.Groups))
		}
		if dim.betaOf != nil && len(dim.betaOf) != len(dim.Groups) {
			return fmt.Errorf("topology %s: dim %s has %d beta overrides for %d groups", t.Name, dim.Name, len(dim.betaOf), len(dim.Groups))
		}
		for g := range dim.Groups {
			if dim.BetaOf(g) <= 0 {
				return fmt.Errorf("topology %s: dim %s group %d has non-positive beta %g", t.Name, dim.Name, g, dim.BetaOf(g))
			}
			if dim.AlphaOf(g) < 0 {
				return fmt.Errorf("topology %s: dim %s group %d has negative alpha %g", t.Name, dim.Name, g, dim.AlphaOf(g))
			}
		}
	}
	return nil
}

// NumPortClasses returns the number of distinct physical port classes.
func (t *Topology) NumPortClasses() int {
	max := -1
	for _, dim := range t.Dims {
		if dim.PortClass > max {
			max = dim.PortClass
		}
	}
	return max + 1
}

// ClassShare returns the fraction of total per-GPU port capacity owned by
// a port class (the u of §4.2 step 2, at physical-port granularity:
// dimensions sharing a NIC share one budget). Classes not present return
// zero.
func (t *Topology) ClassShare(class int) float64 {
	caps := map[int]float64{}
	for _, dim := range t.Dims {
		if cur, ok := caps[dim.PortClass]; !ok || dim.Bandwidth() > cur {
			caps[dim.PortClass] = dim.Bandwidth()
		}
	}
	total := 0.0
	for _, c := range caps {
		total += c
	}
	if total == 0 {
		return 0
	}
	return caps[class] / total
}

// BandwidthShare returns the fraction of total per-GPU port capacity
// available to dimension d (the u_d of §4.2 step 2): its port class's
// share. Dimensions sharing a physical port report the same share and
// must divide it between them.
func (t *Topology) BandwidthShare(d int) float64 {
	return t.ClassShare(t.Dims[d].PortClass)
}

// Fingerprint returns a canonical identity string for the topology's
// synthesis-relevant structure: GPU count and, per extracted dimension,
// its (α, β) link class, port class, exact group membership, and any
// per-group degradation overrides. Two topologies with equal fingerprints
// produce identical sketch searches and identical sub-demands, so the
// fingerprint keys cross-request caches (internal/engine). Name, raw
// nodes, and links are deliberately excluded: they do not influence
// synthesis once dimensions are extracted.
//
// Per-group α/β overrides are appended only for groups where they differ
// from the dimension-level values, so healthy topologies keep their
// historical fingerprints while a degraded topology can never alias its
// healthy twin in the engine/persist key space.
func (t *Topology) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d", t.NumGPUs())
	for _, d := range t.Dims {
		fmt.Fprintf(&sb, ";d(a%.9g,b%.9g,c%d", d.Alpha, d.Beta, d.PortClass)
		for g, grp := range d.Groups {
			sb.WriteString(",g")
			for i, gpu := range grp {
				if i > 0 {
					sb.WriteByte('.')
				}
				fmt.Fprintf(&sb, "%d", gpu)
			}
			if a, b := d.AlphaOf(g), d.BetaOf(g); a != d.Alpha || b != d.Beta {
				fmt.Fprintf(&sb, "@a%.9g@b%.9g", a, b)
			}
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// String summarizes the topology.
func (t *Topology) String() string {
	s := fmt.Sprintf("%s: %d GPUs, %d dims", t.Name, t.NumGPUs(), len(t.Dims))
	for _, d := range t.Dims {
		s += fmt.Sprintf("; %s×%d groups of %d (%.1f GBps)", d.Name, len(d.Groups), len(d.Groups[0]), d.Bandwidth()/1e9)
	}
	return s
}

// newDim builds a Dim with its reverse index populated.
func newDim(id int, name string, alpha, beta float64, portClass int, groups [][]int, numGPUs int) *Dim {
	d := &Dim{ID: id, Name: name, Alpha: alpha, Beta: beta, PortClass: portClass, Groups: groups, groupOf: make([]int, numGPUs)}
	for i := range d.groupOf {
		d.groupOf[i] = -1
	}
	for g, grp := range groups {
		sort.Ints(grp)
		for _, gpu := range grp {
			d.groupOf[gpu] = g
		}
	}
	return d
}
