package topology

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Delta describes a fault event against a physical topology: links that
// failed outright, non-GPU nodes (switches, NICs) that failed, and links
// whose α/β degraded by a multiplicative factor. Deltas are expressed in
// physical node IDs, so one delta spec applies to any topology large
// enough to contain the referenced nodes.
//
// The textual syntax (ParseDelta / String) is a comma-separated list of
// terms:
//
//	kill:A-B    remove the physical link between nodes A and B (both directions)
//	node:N      remove node N and every link touching it (N must not be a GPU)
//	slow:A-B*F  multiply the β (sec/byte) of link A-B by factor F
//	lag:A-B*F   multiply the α (latency) of link A-B by factor F
//
// Application (Apply) is canonical: the same delta always yields the same
// degraded topology, and per-group α/β overrides are recomputed only for
// the dimension groups whose physical component the delta touches, so
// untouched groups keep bit-identical costs (and hence bit-identical
// cache identities) with the healthy base.
type Delta struct {
	FailLinks []LinkFail
	FailNodes []int
	Degrade   []LinkDegrade
}

// LinkFail names an undirected physical link by its two endpoint node IDs.
type LinkFail struct {
	A, B int
}

// LinkDegrade scales the α and/or β of the undirected link A-B. A scale
// of 1 leaves the corresponding cost unchanged.
type LinkDegrade struct {
	A, B       int
	AlphaScale float64
	BetaScale  float64
}

// maxNodeID bounds node references in parsed deltas; it exists to keep
// fuzzed inputs from allocating absurd structures, not as a topology
// limit (real topologies stay far below it).
const maxNodeID = 1 << 20

// maxScale bounds degradation factors in parsed deltas.
const maxScale = 1e9

// Empty reports whether the delta has no effect: it contains no
// operations, or only operations that canonicalize away (such as
// scale-1 degradations). Empty() is true exactly when String() == "".
func (d *Delta) Empty() bool {
	if d == nil || (len(d.FailLinks) == 0 && len(d.FailNodes) == 0 && len(d.Degrade) == 0) {
		return true
	}
	c := d.Canonical()
	return len(c.FailLinks) == 0 && len(c.FailNodes) == 0 && len(c.Degrade) == 0
}

// Canonical returns a normalized copy: link endpoints ordered A<B, terms
// sorted and deduplicated, degradations on the same link merged
// multiplicatively, and no-op or shadowed terms (scale 1, degrades on
// killed links, links touching failed nodes) dropped. Two deltas with the
// same effect canonicalize to the same value.
func (d *Delta) Canonical() *Delta {
	c := &Delta{}
	if d == nil {
		return c
	}

	failedNode := make(map[int]bool, len(d.FailNodes))
	for _, n := range d.FailNodes {
		if !failedNode[n] {
			failedNode[n] = true
			c.FailNodes = append(c.FailNodes, n)
		}
	}
	sort.Ints(c.FailNodes)

	killed := make(map[LinkFail]bool, len(d.FailLinks))
	for _, l := range d.FailLinks {
		if l.A > l.B {
			l.A, l.B = l.B, l.A
		}
		if failedNode[l.A] || failedNode[l.B] || killed[l] {
			continue
		}
		killed[l] = true
		c.FailLinks = append(c.FailLinks, l)
	}
	sort.Slice(c.FailLinks, func(i, j int) bool {
		if c.FailLinks[i].A != c.FailLinks[j].A {
			return c.FailLinks[i].A < c.FailLinks[j].A
		}
		return c.FailLinks[i].B < c.FailLinks[j].B
	})

	merged := make(map[LinkFail]*LinkDegrade)
	var order []LinkFail
	for _, dg := range d.Degrade {
		if dg.A > dg.B {
			dg.A, dg.B = dg.B, dg.A
		}
		pair := LinkFail{dg.A, dg.B}
		if failedNode[dg.A] || failedNode[dg.B] || killed[pair] {
			continue
		}
		as, bs := dg.AlphaScale, dg.BetaScale
		if as == 0 {
			as = 1
		}
		if bs == 0 {
			bs = 1
		}
		if m, ok := merged[pair]; ok {
			m.AlphaScale *= as
			m.BetaScale *= bs
		} else {
			merged[pair] = &LinkDegrade{A: dg.A, B: dg.B, AlphaScale: as, BetaScale: bs}
			order = append(order, pair)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].A != order[j].A {
			return order[i].A < order[j].A
		}
		return order[i].B < order[j].B
	})
	for _, pair := range order {
		m := merged[pair]
		if m.AlphaScale == 1 && m.BetaScale == 1 {
			continue
		}
		c.Degrade = append(c.Degrade, *m)
	}
	return c
}

// String renders the canonical textual form of the delta, parseable by
// ParseDelta. The empty delta renders as "".
func (d *Delta) String() string {
	c := d.Canonical()
	var terms []string
	for _, n := range c.FailNodes {
		terms = append(terms, fmt.Sprintf("node:%d", n))
	}
	for _, l := range c.FailLinks {
		terms = append(terms, fmt.Sprintf("kill:%d-%d", l.A, l.B))
	}
	for _, dg := range c.Degrade {
		if dg.AlphaScale != 1 {
			terms = append(terms, fmt.Sprintf("lag:%d-%d*%.9g", dg.A, dg.B, dg.AlphaScale))
		}
		if dg.BetaScale != 1 {
			terms = append(terms, fmt.Sprintf("slow:%d-%d*%.9g", dg.A, dg.B, dg.BetaScale))
		}
	}
	return strings.Join(terms, ",")
}

// Fingerprint returns a short stable digest of the canonical delta,
// suitable for embedding in topology names and cache keys.
func (d *Delta) Fingerprint() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(d.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ParseDelta parses the textual delta syntax. It rejects empty specs,
// unknown terms, malformed numbers, self-loops, out-of-range node IDs,
// and non-positive or non-finite scale factors. The result is not yet
// validated against a concrete topology; Apply does that.
func ParseDelta(spec string) (*Delta, error) {
	d := &Delta{}
	any := false
	for _, raw := range strings.Split(spec, ",") {
		term := strings.TrimSpace(raw)
		if term == "" {
			continue
		}
		any = true
		op, rest, ok := strings.Cut(term, ":")
		if !ok {
			return nil, fmt.Errorf("delta term %q: missing ':'", term)
		}
		switch op {
		case "node":
			n, err := parseNodeID(rest)
			if err != nil {
				return nil, fmt.Errorf("delta term %q: %v", term, err)
			}
			d.FailNodes = append(d.FailNodes, n)
		case "kill":
			a, b, err := parseLinkPair(rest)
			if err != nil {
				return nil, fmt.Errorf("delta term %q: %v", term, err)
			}
			d.FailLinks = append(d.FailLinks, LinkFail{A: a, B: b})
		case "slow", "lag":
			pair, scaleStr, ok := strings.Cut(rest, "*")
			if !ok {
				return nil, fmt.Errorf("delta term %q: missing '*factor'", term)
			}
			a, b, err := parseLinkPair(pair)
			if err != nil {
				return nil, fmt.Errorf("delta term %q: %v", term, err)
			}
			f, err := strconv.ParseFloat(scaleStr, 64)
			if err != nil {
				return nil, fmt.Errorf("delta term %q: bad factor %q", term, scaleStr)
			}
			if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 || f > maxScale {
				return nil, fmt.Errorf("delta term %q: factor %g out of range (0, %g]", term, f, float64(maxScale))
			}
			dg := LinkDegrade{A: a, B: b, AlphaScale: 1, BetaScale: 1}
			if op == "slow" {
				dg.BetaScale = f
			} else {
				dg.AlphaScale = f
			}
			d.Degrade = append(d.Degrade, dg)
		default:
			return nil, fmt.Errorf("delta term %q: unknown op %q (want kill, node, slow, or lag)", term, op)
		}
	}
	if !any {
		return nil, fmt.Errorf("empty delta spec")
	}
	return d, nil
}

func parseNodeID(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad node ID %q", s)
	}
	if n < 0 || n >= maxNodeID {
		return 0, fmt.Errorf("node ID %d out of range [0, %d)", n, maxNodeID)
	}
	return n, nil
}

func parseLinkPair(s string) (int, int, error) {
	as, bs, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad link %q: want A-B", s)
	}
	a, err := parseNodeID(as)
	if err != nil {
		return 0, 0, err
	}
	b, err := parseNodeID(bs)
	if err != nil {
		return 0, 0, err
	}
	if a == b {
		return 0, 0, fmt.Errorf("bad link %d-%d: self-loop", a, b)
	}
	return a, b, nil
}

// Apply produces the degraded topology that results from applying the
// delta to base. Base is never mutated. The degraded topology keeps
// base's node table (stable IDs — failed nodes simply lose all links),
// drops failed and orphaned links, scales degraded ones, and re-extracts
// each dimension's groups from the surviving physical graph.
//
// Groups whose physical component the delta does not touch keep
// bit-identical α/β with base, so their sub-demands hash to the same
// cache keys; touched groups get per-group overrides recomputed from the
// surviving links of their component (worst surviving link, the
// non-blocking-fabric bottleneck). Apply fails if a delta term references
// a non-existent node or link, removes a GPU, or disconnects any GPU
// from the rest of the fabric.
func (d *Delta) Apply(base *Topology) (*Topology, error) {
	c := d.Canonical()

	// Validate node references.
	failedNode := make(map[int]bool, len(c.FailNodes))
	for _, n := range c.FailNodes {
		if n < 0 || n >= len(base.Nodes) {
			return nil, fmt.Errorf("delta: node %d does not exist in %s (%d nodes)", n, base.Name, len(base.Nodes))
		}
		if base.Nodes[n].Kind == KindGPU {
			return nil, fmt.Errorf("delta: cannot remove GPU node %d; GPUs are collective participants", n)
		}
		failedNode[n] = true
	}

	// Index base links by undirected pair and validate link references.
	type pair = LinkFail
	norm := func(a, b int) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	havePair := make(map[pair]bool, len(base.Links)/2)
	for _, l := range base.Links {
		havePair[norm(l.Src, l.Dst)] = true
	}
	killed := make(map[pair]bool, len(c.FailLinks))
	for _, l := range c.FailLinks {
		p := pair{l.A, l.B}
		if !havePair[p] {
			return nil, fmt.Errorf("delta: no link between nodes %d and %d in %s", l.A, l.B, base.Name)
		}
		killed[p] = true
	}
	degrade := make(map[pair]LinkDegrade, len(c.Degrade))
	for _, dg := range c.Degrade {
		p := pair{dg.A, dg.B}
		if !havePair[p] {
			return nil, fmt.Errorf("delta: no link between nodes %d and %d in %s", dg.A, dg.B, base.Name)
		}
		degrade[p] = dg
	}

	// touchedNode marks every node a delta term references; a dimension
	// group is recomputed only when its base component contains one.
	touchedNode := make(map[int]bool)
	for n := range failedNode {
		touchedNode[n] = true
	}
	for p := range killed {
		touchedNode[p.A] = true
		touchedNode[p.B] = true
	}
	for p := range degrade {
		touchedNode[p.A] = true
		touchedNode[p.B] = true
	}

	// Surviving links with scaled costs.
	deg := &Topology{
		Name:  base.Name + "+" + c.Fingerprint(),
		Nodes: append([]Node(nil), base.Nodes...),
		GPUs:  append([]int(nil), base.GPUs...),
		Sym:   base.Sym,
	}
	for _, l := range base.Links {
		if failedNode[l.Src] || failedNode[l.Dst] {
			continue
		}
		p := norm(l.Src, l.Dst)
		if killed[p] {
			continue
		}
		if dg, ok := degrade[p]; ok {
			l.Alpha *= dg.AlphaScale
			l.Beta *= dg.BetaScale
		}
		deg.Links = append(deg.Links, l)
	}

	// Re-extract each base dimension from the surviving graph.
	n := base.NumGPUs()
	for _, bd := range base.Dims {
		allowed := dimKindFilter(bd.Tier)

		// Base-graph components of this dimension, to decide which groups
		// the delta touches (surviving-graph components only shrink, so an
		// untouched base component survives intact).
		baseUF := newUnionFind(len(base.Nodes))
		for _, l := range base.Links {
			if allowed(base.Nodes[l.Src].Kind) && allowed(base.Nodes[l.Dst].Kind) {
				baseUF.union(l.Src, l.Dst)
			}
		}
		touchedRoot := make(map[int]bool)
		for nd := range touchedNode {
			if allowed(base.Nodes[nd].Kind) {
				touchedRoot[baseUF.find(nd)] = true
			}
		}

		// Surviving-graph components and their worst surviving link costs.
		uf := newUnionFind(len(deg.Nodes))
		for _, l := range deg.Links {
			if allowed(deg.Nodes[l.Src].Kind) && allowed(deg.Nodes[l.Dst].Kind) {
				uf.union(l.Src, l.Dst)
			}
		}
		maxAlpha := make(map[int]float64)
		maxBeta := make(map[int]float64)
		for _, l := range deg.Links {
			if !allowed(deg.Nodes[l.Src].Kind) || !allowed(deg.Nodes[l.Dst].Kind) {
				continue
			}
			r := uf.find(l.Src)
			if l.Alpha > maxAlpha[r] {
				maxAlpha[r] = l.Alpha
			}
			if l.Beta > maxBeta[r] {
				maxBeta[r] = l.Beta
			}
		}

		byRoot := make(map[int][]int)
		for _, gpu := range deg.GPUs {
			byRoot[uf.find(gpu)] = append(byRoot[uf.find(gpu)], gpu)
		}
		groups := make([][]int, 0, len(byRoot))
		for _, grp := range byRoot {
			groups = append(groups, grp)
		}
		sortGroups(groups)
		if !coarserThanSingletons(groups) {
			continue // dimension collapsed entirely; drop it
		}

		nd := newDim(len(deg.Dims), bd.Name, bd.Alpha, bd.Beta, bd.PortClass, groups, n)
		nd.Tier = bd.Tier
		alphas := make([]float64, len(groups))
		betas := make([]float64, len(groups))
		overridden := false
		hops := 2 * bd.Tier
		if hops == 0 {
			hops = 2
		}
		for g, grp := range groups {
			if bg := bd.GroupOf(grp[0]); bg >= 0 && !touchedRoot[baseUF.find(grp[0])] {
				// Untouched component: keep base costs bit-exactly.
				alphas[g], betas[g] = bd.AlphaOf(bg), bd.BetaOf(bg)
			} else {
				// Touched (or new) component: bottleneck over its
				// surviving links, α counting the up-and-down traversal
				// of the dimension's switch tier.
				r := uf.find(grp[0])
				alphas[g] = float64(hops) * maxAlpha[r]
				betas[g] = maxBeta[r]
			}
			if len(grp) > 1 && betas[g] <= 0 {
				return nil, fmt.Errorf("delta: dim %s group %d left with no usable links", bd.Name, g)
			}
			if betas[g] <= 0 {
				// Isolated singleton group: carry the dimension-level β so
				// the topology stays valid; no transfer can use it anyway.
				betas[g] = bd.Beta
				alphas[g] = bd.Alpha
			}
			if alphas[g] != bd.Alpha || betas[g] != bd.Beta {
				overridden = true
			}
		}
		if overridden {
			nd.alphaOf, nd.betaOf = alphas, betas
		}
		deg.Dims = append(deg.Dims, nd)
	}

	// Every GPU must remain reachable through some dimension.
	reach := newUnionFind(n)
	for _, dim := range deg.Dims {
		for _, grp := range dim.Groups {
			for _, gpu := range grp[1:] {
				reach.union(grp[0], gpu)
			}
		}
	}
	if n > 0 {
		// Name a GPU from the smaller side of the partition, so killing a
		// single GPU's only link blames that GPU rather than GPU 1.
		r0 := reach.find(0)
		inR0 := 0
		for gpu := 0; gpu < n; gpu++ {
			if reach.find(gpu) == r0 {
				inR0++
			}
		}
		for gpu := 1; gpu < n; gpu++ {
			if reach.find(gpu) != r0 {
				blame := gpu
				if inR0 <= n-inR0 {
					blame = 0
				}
				return nil, fmt.Errorf("delta %q disconnects GPU %d from the fabric", c.String(), blame)
			}
		}
	}

	if err := deg.Validate(); err != nil {
		return nil, fmt.Errorf("delta produced invalid topology: %v", err)
	}
	return deg, nil
}

// dimKindFilter returns the node-kind filter that defines a dimension's
// physical subgraph: the intra-server fabric (tier 0) spans GPUs and
// NVSwitches; network tier t spans GPUs, NICs, and switch tiers 1..t.
func dimKindFilter(tier int) func(NodeKind) bool {
	if tier == 0 {
		return func(k NodeKind) bool { return k == KindGPU || k == KindNVSwitch }
	}
	return func(k NodeKind) bool {
		if k == KindGPU || k == KindNIC {
			return true
		}
		tt := k.tier()
		return tt >= 1 && tt <= tier
	}
}
