package topology

import "fmt"

// Config describes a parametric GPU cluster for Build. It covers the
// paper's topology families: single-server, rail-optimized multi-rail
// (Figs 3, 13b, 19), and Clos (Figs 13a, 20).
//
// Each GPU gets one NVSwitch port (per-GPU NVLink bandwidth 1/NVBeta) and
// one logical NIC (per-GPU network bandwidth 1/NetBeta; shared physical
// NICs are expressed by setting NetBeta to the per-GPU share, e.g. 4×200
// Gbps NICs shared by 8 GPUs → 12.5 GB/s per GPU).
type Config struct {
	Name           string
	Servers        int // number of servers
	GPUsPerServer  int // GPUs (and logical NICs) per server
	NVAlpha        float64
	NVBeta         float64
	NetAlpha       float64
	NetBeta        float64
	ServersPerLeaf int // >0: Clos — leaf l serves this many consecutive servers; 0: rail-optimized — leaf r serves GPUs with local index r
	LeavesPerSpine int // >0: add a spine tier, each spine serving this many consecutive leaves; 0: no spine tier
	WithCore       bool
}

// Build constructs the physical topology described by cfg and extracts its
// dimensions. It panics on invalid configurations (builders are invoked
// with compile-time-known shapes).
func Build(cfg Config) *Topology {
	if cfg.Servers <= 0 || cfg.GPUsPerServer <= 0 {
		panic(fmt.Sprintf("topology.Build: bad shape %d×%d", cfg.Servers, cfg.GPUsPerServer))
	}
	t := &Topology{Name: cfg.Name}
	n := cfg.Servers * cfg.GPUsPerServer

	addNode := func(kind NodeKind, server, local int, name string) int {
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Server: server, Local: local, Name: name})
		return id
	}
	addBidi := func(a, b int, alpha, beta float64) {
		t.Links = append(t.Links, Link{Src: a, Dst: b, Alpha: alpha, Beta: beta})
		t.Links = append(t.Links, Link{Src: b, Dst: a, Alpha: alpha, Beta: beta})
	}

	// GPUs first so their node IDs are 0..n-1.
	for s := 0; s < cfg.Servers; s++ {
		for g := 0; g < cfg.GPUsPerServer; g++ {
			id := addNode(KindGPU, s, g, fmt.Sprintf("gpu%d.%d", s, g))
			t.GPUs = append(t.GPUs, id)
		}
	}

	// Intra-server NVSwitch fabric.
	for s := 0; s < cfg.Servers; s++ {
		if cfg.GPUsPerServer < 2 {
			continue
		}
		nv := addNode(KindNVSwitch, s, -1, fmt.Sprintf("nvswitch%d", s))
		for g := 0; g < cfg.GPUsPerServer; g++ {
			addBidi(s*cfg.GPUsPerServer+g, nv, cfg.NVAlpha/2, cfg.NVBeta)
		}
	}

	// One logical NIC per GPU.
	nics := make([]int, n)
	if cfg.NetBeta > 0 && cfg.Servers > 1 {
		for s := 0; s < cfg.Servers; s++ {
			for g := 0; g < cfg.GPUsPerServer; g++ {
				gpu := s*cfg.GPUsPerServer + g
				nic := addNode(KindNIC, s, g, fmt.Sprintf("nic%d.%d", s, g))
				nics[gpu] = nic
				addBidi(gpu, nic, 0, cfg.NetBeta)
			}
		}

		hopAlpha := cfg.NetAlpha / 2

		// Leaf tier.
		var leaves []int
		if cfg.ServersPerLeaf > 0 {
			// Clos: leaf l serves ServersPerLeaf consecutive servers.
			numLeaves := (cfg.Servers + cfg.ServersPerLeaf - 1) / cfg.ServersPerLeaf
			for l := 0; l < numLeaves; l++ {
				leaf := addNode(KindLeafSwitch, -1, -1, fmt.Sprintf("leaf%d", l))
				leaves = append(leaves, leaf)
				for s := l * cfg.ServersPerLeaf; s < (l+1)*cfg.ServersPerLeaf && s < cfg.Servers; s++ {
					for g := 0; g < cfg.GPUsPerServer; g++ {
						addBidi(nics[s*cfg.GPUsPerServer+g], leaf, hopAlpha, cfg.NetBeta)
					}
				}
			}
		} else {
			// Rail-optimized: leaf r serves all GPUs with local index r.
			for r := 0; r < cfg.GPUsPerServer; r++ {
				leaf := addNode(KindLeafSwitch, -1, -1, fmt.Sprintf("leaf%d", r))
				leaves = append(leaves, leaf)
				for s := 0; s < cfg.Servers; s++ {
					addBidi(nics[s*cfg.GPUsPerServer+r], leaf, hopAlpha, cfg.NetBeta)
				}
			}
		}

		// Spine tier.
		var spines []int
		if cfg.LeavesPerSpine > 0 && len(leaves) > 1 {
			numSpines := (len(leaves) + cfg.LeavesPerSpine - 1) / cfg.LeavesPerSpine
			for sp := 0; sp < numSpines; sp++ {
				spine := addNode(KindSpineSwitch, -1, -1, fmt.Sprintf("spine%d", sp))
				spines = append(spines, spine)
				for l := sp * cfg.LeavesPerSpine; l < (sp+1)*cfg.LeavesPerSpine && l < len(leaves); l++ {
					addBidi(leaves[l], spine, hopAlpha, cfg.NetBeta)
				}
			}
		}

		// Core tier.
		if cfg.WithCore && len(spines) > 1 {
			core := addNode(KindCoreSwitch, -1, -1, "core")
			for _, sp := range spines {
				addBidi(sp, core, hopAlpha, cfg.NetBeta)
			}
		}
	}

	extractDims(t, cfg)
	t.Sym = buildSymmetry(cfg)
	if err := t.Validate(); err != nil {
		panic("topology.Build produced invalid topology: " + err.Error())
	}
	if err := t.Sym.Validate(t); err != nil {
		panic("topology.Build produced invalid symmetry: " + err.Error())
	}
	return t
}

// extractDims derives the logical dimensions from the physical graph
// (§3.1: "SyCCL automatically extracts the dimensions and groups according
// to connectivity and connection performance").
//
// Dimension 0 is the intra-server fabric: GPUs connected through NVSwitch
// nodes. Each subsequent dimension corresponds to a network switch tier t:
// its groups are the connected components of the graph restricted to GPUs,
// NICs, and network switches of tier ≤ t. A tier that does not coarsen the
// previous partition contributes no dimension.
func extractDims(t *Topology, cfg Config) {
	n := t.NumGPUs()

	components := func(allowed func(NodeKind) bool) [][]int {
		uf := newUnionFind(len(t.Nodes))
		for _, l := range t.Links {
			if allowed(t.Nodes[l.Src].Kind) && allowed(t.Nodes[l.Dst].Kind) {
				uf.union(l.Src, l.Dst)
			}
		}
		byRoot := make(map[int][]int)
		for _, gpu := range t.GPUs {
			r := uf.find(gpu)
			byRoot[r] = append(byRoot[r], gpu)
		}
		groups := make([][]int, 0, len(byRoot))
		for _, grp := range byRoot {
			groups = append(groups, grp)
		}
		sortGroups(groups)
		return groups
	}

	// Dimension 0: intra-server fabric.
	d0 := components(func(k NodeKind) bool { return k == KindGPU || k == KindNVSwitch })
	if coarserThanSingletons(d0) {
		dim := newDim(len(t.Dims), "nvswitch", cfg.NVAlpha, cfg.NVBeta, 0, d0, n)
		dim.Tier = 0
		t.Dims = append(t.Dims, dim)
	}

	// Network tiers.
	prev := d0
	names := map[int]string{1: "leaf", 2: "spine", 3: "core"}
	if cfg.ServersPerLeaf == 0 {
		names[1] = "rail"
	}
	for tier := 1; tier <= 3; tier++ {
		hasTier := false
		for _, nd := range t.Nodes {
			if nd.Kind.tier() == tier {
				hasTier = true
				break
			}
		}
		if !hasTier {
			continue
		}
		maxTier := tier
		grp := components(func(k NodeKind) bool {
			if k == KindGPU || k == KindNIC {
				return true
			}
			tt := k.tier()
			return tt >= 1 && tt <= maxTier
		})
		if samePartition(grp, prev) || !coarserThanSingletons(grp) {
			continue
		}
		// α grows with tier depth: GPU→NIC (0) + tier hops up and down.
		// All network tiers traverse the same NIC, hence port class 1.
		alpha := float64(tier) * cfg.NetAlpha
		dim := newDim(len(t.Dims), names[tier], alpha, cfg.NetBeta, 1, grp, n)
		dim.Tier = tier
		t.Dims = append(t.Dims, dim)
		prev = grp
	}
}

func coarserThanSingletons(groups [][]int) bool {
	for _, g := range groups {
		if len(g) > 1 {
			return true
		}
	}
	return false
}

func samePartition(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// sortGroups orders groups by their smallest member and sorts members.
func sortGroups(groups [][]int) {
	for _, g := range groups {
		sortInts(g)
	}
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j][0] < groups[j-1][0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
