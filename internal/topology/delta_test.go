package topology

import (
	"strings"
	"testing"
)

// findNode returns the ID of the first node with the given kind and
// server (server is ignored when < 0).
func findNode(t *testing.T, top *Topology, kind NodeKind, server int) int {
	t.Helper()
	for _, nd := range top.Nodes {
		if nd.Kind == kind && (server < 0 || nd.Server == server) {
			return nd.ID
		}
	}
	t.Fatalf("no %s node for server %d in %s", kind, server, top.Name)
	return -1
}

func TestParseDeltaRoundTrip(t *testing.T) {
	cases := []string{
		"kill:0-4",
		"node:12",
		"slow:3-17*4",
		"lag:3-17*2",
		"node:5,kill:0-4,kill:1-4,lag:2-4*2,slow:2-4*8",
		" kill:4-0 , slow:17-3*2 , slow:3-17*2 ",
	}
	for _, spec := range cases {
		d, err := ParseDelta(spec)
		if err != nil {
			t.Fatalf("ParseDelta(%q): %v", spec, err)
		}
		s := d.String()
		d2, err := ParseDelta(s)
		if err != nil {
			t.Fatalf("ParseDelta(String()=%q): %v", s, err)
		}
		if s2 := d2.String(); s2 != s {
			t.Errorf("round trip of %q: %q != %q", spec, s2, s)
		}
	}
}

func TestParseDeltaErrors(t *testing.T) {
	bad := []string{
		"",
		"  ,  ",
		"frob:1-2",
		"kill:1",
		"kill:1-1",
		"kill:a-b",
		"kill:-1-2",
		"node:x",
		"node:9999999999",
		"slow:1-2",
		"slow:1-2*0",
		"slow:1-2*-3",
		"slow:1-2*nope",
		"lag:1-2*Inf",
		"lag:1-2*NaN",
	}
	for _, spec := range bad {
		if d, err := ParseDelta(spec); err == nil {
			t.Errorf("ParseDelta(%q) = %+v, want error", spec, d)
		}
	}
}

func TestDeltaCanonical(t *testing.T) {
	// Duplicate kills collapse, degrades on the same link merge
	// multiplicatively, degrades on killed links and links touching failed
	// nodes vanish, and ordering is normalized.
	d, err := ParseDelta("slow:9-1*2,slow:1-9*3,kill:4-2,kill:2-4,slow:2-4*7,node:8,kill:8-3,lag:5-8*2")
	if err != nil {
		t.Fatal(err)
	}
	want := "node:8,kill:2-4,slow:1-9*6"
	if got := d.String(); got != want {
		t.Errorf("canonical = %q, want %q", got, want)
	}
	if d.Empty() {
		t.Error("non-empty delta reports Empty")
	}
	if !(&Delta{}).Empty() {
		t.Error("empty delta does not report Empty")
	}
	if f, f2 := d.Fingerprint(), d.Canonical().Fingerprint(); f != f2 {
		t.Errorf("fingerprint not canonical: %s != %s", f, f2)
	}
}

// TestEmptyDeltaPreservesFingerprint pins that applying an empty delta —
// which exercises the full re-extraction path — reproduces the base
// topology's synthesis identity bit-for-bit on every preset family.
func TestEmptyDeltaPreservesFingerprint(t *testing.T) {
	tops := []*Topology{
		SingleServer(4), SingleServer(8),
		A100Clos(2), H800Rail(2), H800Small(6),
		Fig3(), Fig19(), Fig20(),
	}
	for _, base := range tops {
		deg, err := (&Delta{}).Apply(base)
		if err != nil {
			t.Fatalf("%s: empty delta: %v", base.Name, err)
		}
		if got, want := deg.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("%s: empty-delta fingerprint drift:\n got %s\nwant %s", base.Name, got, want)
		}
		if deg.NumDims() != base.NumDims() {
			t.Errorf("%s: empty delta changed dim count %d -> %d", base.Name, base.NumDims(), deg.NumDims())
		}
	}
}

// TestDegradedFingerprintDiffers is the regression test for the
// fingerprint collision risk: a topology with a degraded link must never
// alias its healthy twin in the engine/persist key space.
func TestDegradedFingerprintDiffers(t *testing.T) {
	base := SingleServer(8)
	nv := findNode(t, base, KindNVSwitch, 0)
	d, err := ParseDelta("slow:0-" + itoa(nv) + "*4")
	if err != nil {
		t.Fatal(err)
	}
	deg, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Fingerprint() == base.Fingerprint() {
		t.Fatalf("degraded topology aliases healthy twin: %s", base.Fingerprint())
	}
	// The degraded group's β must reflect the worst surviving link.
	dim := deg.Dim(0)
	if got, want := dim.BetaOf(0), 4*base.Dim(0).Beta; got != want {
		t.Errorf("degraded group β = %g, want %g", got, want)
	}
	// Dimension-level values stay at the healthy baseline.
	if dim.Beta != base.Dim(0).Beta || dim.Alpha != base.Dim(0).Alpha {
		t.Errorf("dimension-level α/β drifted: %g/%g", dim.Alpha, dim.Beta)
	}
}

// TestDeltaTouchesOnlyAffectedGroups pins the selective-invalidation
// contract: groups whose component the delta does not touch keep
// bit-identical α/β with the base topology.
func TestDeltaTouchesOnlyAffectedGroups(t *testing.T) {
	base := H800Small(6)
	nv0 := findNode(t, base, KindNVSwitch, 0)
	d, err := ParseDelta("slow:0-" + itoa(nv0) + "*4,lag:0-" + itoa(nv0) + "*2")
	if err != nil {
		t.Fatal(err)
	}
	deg, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	bd, dd := base.Dim(0), deg.Dim(0)
	if len(bd.Groups) != len(dd.Groups) {
		t.Fatalf("group count changed: %d -> %d", len(bd.Groups), len(dd.Groups))
	}
	if dd.BetaOf(0) != 4*bd.Beta {
		t.Errorf("touched group β = %g, want %g", dd.BetaOf(0), 4*bd.Beta)
	}
	if dd.AlphaOf(0) != 2*bd.Alpha {
		t.Errorf("touched group α = %g, want %g (2 hops × lagged link)", dd.AlphaOf(0), 2*bd.Alpha)
	}
	for g := 1; g < len(dd.Groups); g++ {
		if dd.AlphaOf(g) != bd.AlphaOf(g) || dd.BetaOf(g) != bd.BetaOf(g) {
			t.Errorf("untouched group %d drifted: α %g->%g β %g->%g", g, bd.AlphaOf(g), dd.AlphaOf(g), bd.BetaOf(g), dd.BetaOf(g))
		}
	}
	// Untouched dimensions (the rail tier) keep their fingerprint section.
	if base.NumDims() != deg.NumDims() {
		t.Fatalf("dim count changed: %d -> %d", base.NumDims(), deg.NumDims())
	}
	for di := 1; di < base.NumDims(); di++ {
		b, g := base.Dim(di), deg.Dim(di)
		for gi := range b.Groups {
			if b.AlphaOf(gi) != g.AlphaOf(gi) || b.BetaOf(gi) != g.BetaOf(gi) {
				t.Errorf("dim %d group %d drifted", di, gi)
			}
		}
	}
}

func TestDeltaDisconnectRejected(t *testing.T) {
	base := SingleServer(4)
	nv := findNode(t, base, KindNVSwitch, 0)
	d, err := ParseDelta("kill:0-" + itoa(nv))
	if err != nil {
		t.Fatal(err)
	}
	if deg, err := d.Apply(base); err == nil {
		t.Fatalf("disconnecting delta accepted: %s", deg.Fingerprint())
	} else if !strings.Contains(err.Error(), "disconnect") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDeltaNodeFailure(t *testing.T) {
	base := H800Small(6)
	nv0 := findNode(t, base, KindNVSwitch, 0)

	// Killing a whole NVSwitch splits that server's dim-0 group into
	// singletons; the GPUs stay reachable over the rail tier.
	d := &Delta{FailNodes: []int{nv0}}
	deg, err := d.Apply(base)
	if err != nil {
		t.Fatalf("NVSwitch failure: %v", err)
	}
	d0 := deg.Dim(0)
	for gpu := 0; gpu < 4; gpu++ {
		g := d0.GroupOf(gpu)
		if g < 0 || d0.GroupSize(g) != 1 {
			t.Errorf("GPU %d: expected singleton dim-0 group after NVSwitch failure, got size %d", gpu, d0.GroupSize(d0.GroupOf(gpu)))
		}
	}
	if deg.Fingerprint() == base.Fingerprint() {
		t.Error("NVSwitch failure did not change fingerprint")
	}

	// Failing a GPU is rejected.
	if _, err := (&Delta{FailNodes: []int{0}}).Apply(base); err == nil {
		t.Error("GPU removal accepted")
	}
	// Unknown nodes and absent links are rejected.
	if _, err := (&Delta{FailNodes: []int{len(base.Nodes)}}).Apply(base); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := (&Delta{FailLinks: []LinkFail{{0, 1}}}).Apply(base); err == nil {
		t.Error("kill of non-existent link accepted")
	}
	if _, err := (&Delta{Degrade: []LinkDegrade{{A: 0, B: 1, AlphaScale: 1, BetaScale: 2}}}).Apply(base); err == nil {
		t.Error("degrade of non-existent link accepted")
	}
}

// TestDeltaKillRailLink checks a survivable link kill on the network
// tier: the rail group containing the orphaned GPU splits, and the
// remaining GPUs keep a working (untouched-cost) rail group.
func TestDeltaKillRailLink(t *testing.T) {
	base := H800Small(6)
	// Find GPU 0's NIC and its uplink to the rail leaf.
	var nic int = -1
	for _, l := range base.Links {
		if l.Src == 0 && base.Nodes[l.Dst].Kind == KindNIC {
			nic = l.Dst
			break
		}
	}
	if nic < 0 {
		t.Fatal("no NIC for GPU 0")
	}
	var leaf int = -1
	for _, l := range base.Links {
		if l.Src == nic && base.Nodes[l.Dst].Kind == KindLeafSwitch {
			leaf = l.Dst
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaf uplink for GPU 0's NIC")
	}

	d := &Delta{FailLinks: []LinkFail{{nic, leaf}}}
	deg, err := d.Apply(base)
	if err != nil {
		t.Fatalf("rail-link kill: %v", err)
	}
	rail := deg.Dim(1)
	g0 := rail.GroupOf(0)
	if g0 < 0 || rail.GroupSize(g0) != 1 {
		t.Errorf("GPU 0 should be orphaned on its rail, got group size %d", rail.GroupSize(g0))
	}
	// The surviving rail-0 GPUs (local index 0 of servers 1..5) form one
	// group whose costs match the healthy baseline... the kill touched
	// their component, so they are recomputed — but to identical values,
	// since the surviving links are unchanged.
	gOther := rail.GroupOf(4)
	if gOther < 0 || rail.GroupSize(gOther) != 5 {
		t.Fatalf("surviving rail group has size %d, want 5", rail.GroupSize(gOther))
	}
	if rail.BetaOf(gOther) != base.Dim(1).Beta {
		t.Errorf("surviving rail group β = %g, want %g", rail.BetaOf(gOther), base.Dim(1).Beta)
	}
	if rail.AlphaOf(gOther) != base.Dim(1).Alpha {
		t.Errorf("surviving rail group α = %g, want %g", rail.AlphaOf(gOther), base.Dim(1).Alpha)
	}
	if err := deg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
