package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func groupsEqual(got [][]int, want [][]int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}

// TestFig3Dims checks the dimension/group extraction against the worked
// example of Fig 3: 16 GPUs in 4 servers, four dimensions.
func TestFig3Dims(t *testing.T) {
	top := Fig3()
	if top.NumGPUs() != 16 {
		t.Fatalf("NumGPUs = %d, want 16", top.NumGPUs())
	}
	if top.NumDims() != 4 {
		t.Fatalf("NumDims = %d, want 4: %v", top.NumDims(), top)
	}
	want := [][][]int{
		{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}},
		{{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}},
		{{0, 1, 4, 5, 8, 9, 12, 13}, {2, 3, 6, 7, 10, 11, 14, 15}},
		{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
	}
	for d, w := range want {
		if !groupsEqual(top.Dim(d).Groups, w) {
			t.Errorf("dim %d groups = %v, want %v", d, top.Dim(d).Groups, w)
		}
	}
}

// TestFig19Dims checks the 7×4 multi-rail example of Appendix B.
func TestFig19Dims(t *testing.T) {
	top := Fig19()
	if top.NumGPUs() != 28 {
		t.Fatalf("NumGPUs = %d, want 28", top.NumGPUs())
	}
	if top.NumDims() != 3 {
		t.Fatalf("NumDims = %d, want 3", top.NumDims())
	}
	if got := len(top.Dim(0).Groups); got != 7 {
		t.Errorf("dim0 groups = %d, want 7 servers", got)
	}
	if got := len(top.Dim(1).Groups); got != 4 {
		t.Errorf("dim1 groups = %d, want 4 rails", got)
	}
	if got := len(top.Dim(2).Groups); got != 1 {
		t.Errorf("dim2 groups = %d, want 1", got)
	}
	// Rail 0 holds GPUs 0,4,...,24.
	want := []int{0, 4, 8, 12, 16, 20, 24}
	got := top.Dim(1).Groups[0]
	if !groupsEqual([][]int{got}, [][]int{want}) {
		t.Errorf("rail 0 = %v, want %v", got, want)
	}
}

// TestFig20Dims checks the Clos example of Appendix B (Fig 20).
func TestFig20Dims(t *testing.T) {
	top := Fig20()
	if top.NumDims() != 4 {
		t.Fatalf("NumDims = %d, want 4", top.NumDims())
	}
	wantCounts := []int{8, 4, 2, 1}
	for d, w := range wantCounts {
		if got := len(top.Dim(d).Groups); got != w {
			t.Errorf("dim %d: %d groups, want %d", d, got, w)
		}
	}
	// Dim 1 (leaf) group 0 must hold all GPUs of servers 0 and 1.
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !groupsEqual([][]int{top.Dim(1).Groups[0]}, [][]int{want}) {
		t.Errorf("leaf group 0 = %v, want %v", top.Dim(1).Groups[0], want)
	}
}

func TestA100ClosDims(t *testing.T) {
	top := A100Clos(4) // 32 GPUs
	if top.NumGPUs() != 32 {
		t.Fatalf("NumGPUs = %d", top.NumGPUs())
	}
	if top.NumDims() != 3 {
		t.Fatalf("NumDims = %d, want 3 (nvswitch/leaf/spine)", top.NumDims())
	}
	if got := len(top.Dim(0).Groups); got != 4 {
		t.Errorf("servers = %d, want 4", got)
	}
	if got := len(top.Dim(1).Groups); got != 2 {
		t.Errorf("leaf groups = %d, want 2", got)
	}
	if got := top.Dim(1).GroupSize(0); got != 16 {
		t.Errorf("leaf group size = %d, want 16", got)
	}

	// The 16-GPU testbed has no spine dimension (a single leaf covers it).
	top16 := A100Clos(2)
	if top16.NumDims() != 2 {
		t.Fatalf("16-GPU NumDims = %d, want 2", top16.NumDims())
	}
	if got := top16.Dim(1).GroupSize(0); got != 16 {
		t.Errorf("16-GPU leaf group size = %d, want 16", got)
	}
}

func TestH800RailDims(t *testing.T) {
	top := H800Rail(8) // 64 GPUs
	if top.NumDims() != 2 {
		t.Fatalf("NumDims = %d, want 2 (nvswitch/rail)", top.NumDims())
	}
	if got := len(top.Dim(1).Groups); got != 8 {
		t.Errorf("rails = %d, want 8", got)
	}
	if got := top.Dim(1).GroupSize(0); got != 8 {
		t.Errorf("rail size = %d, want 8 servers", got)
	}
	// NVLink:network bandwidth ratio must be the paper's 3.6:1 (§2.1).
	ratio := top.Dim(0).Bandwidth() / top.Dim(1).Bandwidth()
	if math.Abs(ratio-3.6) > 1e-9 {
		t.Errorf("NVLink:net ratio = %g, want 3.6", ratio)
	}
}

func TestSingleServer(t *testing.T) {
	top := SingleServer(8)
	if top.NumDims() != 1 {
		t.Fatalf("NumDims = %d, want 1", top.NumDims())
	}
	if got := top.Dim(0).GroupSize(0); got != 8 {
		t.Errorf("group size = %d", got)
	}
}

func TestSameGroup(t *testing.T) {
	top := Fig3()
	cases := []struct {
		d, a, b int
		want    bool
	}{
		{0, 0, 1, true},   // same server
		{0, 0, 4, false},  // different servers
		{1, 0, 4, true},   // same rail
		{1, 0, 5, false},  // different rails
		{2, 0, 5, true},   // same spine
		{2, 0, 6, false},  // different spines
		{3, 0, 15, true},  // core spans all
		{3, 14, 1, true},  // core spans all
		{1, 3, 15, true},  // rail 3
		{0, 12, 15, true}, // server 3
	}
	for _, c := range cases {
		if got := top.SameGroup(c.d, c.a, c.b); got != c.want {
			t.Errorf("SameGroup(%d,%d,%d) = %v, want %v", c.d, c.a, c.b, got, c.want)
		}
	}
}

func TestBandwidthShare(t *testing.T) {
	top := H800Rail(8)
	var sum float64
	for d := range top.Dims {
		sum += top.BandwidthShare(d)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %g, want 1", sum)
	}
	// NVLink share = 180/(180+50).
	want := 180.0 / 230.0
	if got := top.BandwidthShare(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("NVLink share = %g, want %g", got, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	top := Fig3()
	if err := top.Validate(); err != nil {
		t.Fatalf("fresh topology invalid: %v", err)
	}
	// Duplicate a GPU into two groups of dim 0.
	bad := Fig3()
	bad.Dims[0].Groups[1] = append([]int{0}, bad.Dims[0].Groups[1]...)
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted GPU in two groups")
	}
	bad2 := Fig3()
	bad2.Links[0].Beta = -1
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted negative beta")
	}
}

// TestGroupIsomorphism: all groups of a dimension have equal size — the
// structural symmetry SyCCL depends on.
func TestGroupIsomorphism(t *testing.T) {
	for _, top := range []*Topology{Fig3(), Fig19(), Fig20(), A100Clos(4), H800Rail(8), H800Small(6)} {
		for _, dim := range top.Dims {
			for g := 1; g < len(dim.Groups); g++ {
				if len(dim.Groups[g]) != len(dim.Groups[0]) {
					t.Errorf("%s dim %s: group %d size %d != group 0 size %d",
						top.Name, dim.Name, g, len(dim.Groups[g]), len(dim.Groups[0]))
				}
			}
		}
	}
}

// TestBuildPartitionProperty: for random shapes, every GPU appears in
// exactly one group per dimension, and dim partitions are nested coarser
// outwards (a dim-0 group never straddles two groups of a later dim
// except when the later dim excludes it).
func TestBuildPartitionProperty(t *testing.T) {
	f := func(srv, gps uint8) bool {
		servers := int(srv%6) + 2 // 2..7
		gpus := 1 << (gps % 3)    // 1,2,4
		if gpus == 1 {
			gpus = 2
		}
		top := Build(Config{
			Name:          "prop",
			Servers:       servers,
			GPUsPerServer: gpus,
			NVAlpha:       NVAlpha,
			NVBeta:        1 / H800NVBandwidth,
			NetAlpha:      NetAlpha,
			NetBeta:       1 / H800NetBandwidth,
		})
		if top.Validate() != nil {
			return false
		}
		for _, dim := range top.Dims {
			count := 0
			for _, g := range dim.Groups {
				count += len(g)
			}
			if count != top.NumGPUs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDimAlphaMonotonic(t *testing.T) {
	top := Fig20()
	for d := 2; d < top.NumDims(); d++ {
		if top.Dim(d).Alpha <= top.Dim(d-1).Alpha {
			t.Errorf("dim %d alpha %g not greater than dim %d alpha %g",
				d, top.Dim(d).Alpha, d-1, top.Dim(d-1).Alpha)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		KindGPU: "GPU", KindNIC: "NIC", KindNVSwitch: "NVSwitch",
		KindLeafSwitch: "Leaf", KindSpineSwitch: "Spine", KindCoreSwitch: "Core",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestLinkBandwidth(t *testing.T) {
	l := Link{Beta: 1 / 50e9}
	if math.Abs(l.Bandwidth()-50e9) > 1 {
		t.Errorf("Bandwidth = %g", l.Bandwidth())
	}
	if (Link{}).Bandwidth() != 0 {
		t.Error("zero-beta link should report zero bandwidth")
	}
}
