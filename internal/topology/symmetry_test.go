package topology

import "testing"

func TestSymmetryTransitive(t *testing.T) {
	for _, top := range []*Topology{Fig3(), Fig19(), Fig20(), A100Clos(4), H800Rail(8), H800Small(6)} {
		sym := top.Sym
		n := top.NumGPUs()
		for _, to := range []int{0, 1, n / 2, n - 1} {
			p := sym.MapRoot(0, to)
			if got := sym.Apply(p, 0); got != to {
				t.Errorf("%s: MapRoot(0,%d) maps 0 to %d", top.Name, to, got)
			}
		}
	}
}

func TestSymmetryIsPermutation(t *testing.T) {
	top := Fig20()
	for _, p := range top.Sym.All() {
		perm := top.Sym.Permutation(p)
		seen := make([]bool, len(perm))
		for _, v := range perm {
			if v < 0 || v >= len(perm) || seen[v] {
				t.Fatalf("element %+v is not a permutation: %v", p, perm)
			}
			seen[v] = true
		}
	}
}

func TestSymmetryPreservesGroups(t *testing.T) {
	// Validate is called in Build, but exercise it across all elements of
	// a hierarchical topology, not just generators.
	top := Fig3()
	for _, p := range top.Sym.All() {
		perm := top.Sym.Permutation(p)
		for _, dim := range top.Dims {
			for _, grp := range dim.Groups {
				img := dim.GroupOf(perm[grp[0]])
				for _, gpu := range grp {
					if dim.GroupOf(perm[gpu]) != img {
						t.Fatalf("element %+v splits dim %s group %v", p, dim.Name, grp)
					}
				}
			}
		}
	}
}

func TestSymmetryCyclicServers(t *testing.T) {
	top := Fig19() // 7 servers: cyclic axis
	if top.Sym.Server.Xor {
		t.Fatal("7-server axis should be cyclic")
	}
	p := top.Sym.MapRoot(0, 4) // GPU 4 = server 1, local 0
	if p.SShift != 1 || p.GShift != 0 {
		t.Errorf("MapRoot = %+v", p)
	}
	if got := top.Sym.Apply(p, 24); got != 0 { // server 6 wraps to 0
		t.Errorf("wraparound: %d", got)
	}
}

func TestSymmetryAllCount(t *testing.T) {
	top := H800Rail(8)
	if got := len(top.Sym.All()); got != 64 {
		t.Errorf("|All| = %d, want 64", got)
	}
}

func TestIdentity(t *testing.T) {
	if !(GPUPerm{}).Identity() || (GPUPerm{1, 0}).Identity() {
		t.Error("Identity() wrong")
	}
}

func TestAxisApply(t *testing.T) {
	x := Axis{N: 8, Xor: true}
	if x.apply(3, 5) != 6 { // 5^3
		t.Errorf("xor apply = %d", x.apply(3, 5))
	}
	c := Axis{N: 7, Xor: false}
	if c.apply(3, 5) != 1 { // (5+3)%7
		t.Errorf("cyclic apply = %d", c.apply(3, 5))
	}
	one := Axis{N: 1}
	if one.apply(5, 0) != 0 {
		t.Error("singleton axis must be identity")
	}
}

func TestMapRootRoundTripAllPairs(t *testing.T) {
	top := H800Small(6) // cyclic server axis × xor local axis
	sym := top.Sym
	n := top.NumGPUs()
	for from := 0; from < n; from += 5 {
		for to := 0; to < n; to += 3 {
			p := sym.MapRoot(from, to)
			if got := sym.Apply(p, from); got != to {
				t.Fatalf("MapRoot(%d,%d): applied to %d", from, to, got)
			}
		}
	}
}
