package topology

import "fmt"

// Axis describes the symmetry action along one axis of the (server ×
// local-index) GPU grid. When N is a power of two the action is the XOR
// group (x → x⊕m), which preserves every aligned power-of-two block
// nesting — exactly the structure our Clos/spine builders create. For
// other sizes the action is the cyclic shift group, valid when the axis
// carries no nested blocks.
type Axis struct {
	N   int
	Xor bool
}

// apply maps index x under shift m.
func (a Axis) apply(m, x int) int {
	if a.N <= 1 {
		return x
	}
	if a.Xor {
		return x ^ m
	}
	return (x + m) % a.N
}

// Symmetry is the topology's automorphism action used for sketch
// replication (§4.2) and all-to-all root mapping (§4.3): the direct
// product of the server-axis and local-axis actions. It is transitive on
// GPUs (any GPU can be mapped to any other by exactly one element), a
// regular subgroup of the full automorphism group — sufficient for load
// balancing, cheap to enumerate.
type Symmetry struct {
	Server Axis
	Local  Axis
}

// GPUPerm is one symmetry element: a pair of axis shifts.
type GPUPerm struct {
	SShift, GShift int
}

// Identity reports whether the element is the identity.
func (p GPUPerm) Identity() bool { return p.SShift == 0 && p.GShift == 0 }

// Apply maps a GPU ID (server·G + local) under the element.
func (s *Symmetry) Apply(p GPUPerm, gpu int) int {
	g := s.Local.N
	srv, loc := gpu/g, gpu%g
	return s.Server.apply(p.SShift, srv)*g + s.Local.apply(p.GShift, loc)
}

// Permutation materializes the element as a full GPU permutation.
func (s *Symmetry) Permutation(p GPUPerm) []int {
	n := s.Server.N * s.Local.N
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = s.Apply(p, i)
	}
	return out
}

// All enumerates every element of the action (S×G of them).
func (s *Symmetry) All() []GPUPerm {
	out := make([]GPUPerm, 0, s.Server.N*s.Local.N)
	for a := 0; a < s.Server.N; a++ {
		for b := 0; b < s.Local.N; b++ {
			out = append(out, GPUPerm{a, b})
		}
	}
	return out
}

// MapRoot returns the unique element carrying GPU `from` to GPU `to`.
func (s *Symmetry) MapRoot(from, to int) GPUPerm {
	g := s.Local.N
	fs, fl := from/g, from%g
	ts, tl := to/g, to%g
	return GPUPerm{s.axisDelta(s.Server, fs, ts), s.axisDelta(s.Local, fl, tl)}
}

func (s *Symmetry) axisDelta(a Axis, from, to int) int {
	if a.N <= 1 {
		return 0
	}
	if a.Xor {
		return from ^ to
	}
	return ((to-from)%a.N + a.N) % a.N
}

// Validate checks that the action really is an automorphism: every
// generator must map each dimension's group partition onto itself.
func (s *Symmetry) Validate(t *Topology) error {
	gens := []GPUPerm{{1 % max(s.Server.N, 1), 0}, {0, 1 % max(s.Local.N, 1)}}
	if s.Server.Xor {
		gens[0] = GPUPerm{1, 0}
	}
	for _, gen := range gens {
		if gen.Identity() {
			continue
		}
		perm := s.Permutation(gen)
		for _, dim := range t.Dims {
			for _, grp := range dim.Groups {
				img := dim.GroupOf(perm[grp[0]])
				for _, gpu := range grp {
					if dim.GroupOf(perm[gpu]) != img {
						return fmt.Errorf("topology %s: symmetry generator %+v splits dim %s group", t.Name, gen, dim.Name)
					}
				}
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// buildSymmetry derives the symmetry action from the builder config.
func buildSymmetry(cfg Config) *Symmetry {
	return &Symmetry{
		Server: Axis{N: cfg.Servers, Xor: isPow2(cfg.Servers)},
		Local:  Axis{N: cfg.GPUsPerServer, Xor: isPow2(cfg.GPUsPerServer)},
	}
}
