package topology

import (
	"strings"
	"testing"
)

// FuzzDecodeDelta hammers the delta-spec parser with arbitrary strings —
// this is the exact surface exposed to untrusted input via the
// "topology_delta" request field and the -delta CLI flag. Properties:
// the parser never panics, every rejection returns a nil delta, and
// every accepted spec canonicalizes to a fixed point (parse → String →
// parse yields the same canonical form and fingerprint).
func FuzzDecodeDelta(f *testing.F) {
	seeds := []string{
		// Valid: each term kind, combinations, merge and ordering cases.
		"",
		"kill:0-1",
		"kill:1-0",
		"node:8",
		"slow:0-8*4",
		"lag:2-9*1.5",
		"slow:0-8*2,lag:0-8*3",
		"node:8,kill:2-4,slow:1-9*6",
		"slow:3-7*2,slow:3-7*2",
		"  kill:0-1 , node:2  ",
		"slow:0-1*0.5",
		"lag:10-11*1e3",
		// Invalid: syntax, ranges, degenerate pairs, junk.
		"kill",
		"kill:",
		"kill:0",
		"kill:0-0",
		"kill:0-1-2",
		"kill:-1-2",
		"kill:a-b",
		"node:-3",
		"node:99999999999999999999",
		"slow:0-1",
		"slow:0-1*",
		"slow:0-1*0",
		"slow:0-1*-2",
		"slow:0-1*nan",
		"slow:0-1*inf",
		"slow:0-1*1e300",
		"boost:0-1*2",
		"::",
		"\x00\xff",
		strings.Repeat("kill:0-1,", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := ParseDelta(spec)
		if err != nil {
			if d != nil {
				t.Fatal("error with non-nil delta")
			}
			return
		}
		if d.Empty() != (d.String() == "") {
			t.Fatalf("Empty()=%v but String()=%q", d.Empty(), d.String())
		}
		for _, n := range d.FailNodes {
			if n < 0 {
				t.Fatalf("accepted negative node id %d", n)
			}
		}
		for _, l := range d.FailLinks {
			if l.A < 0 || l.B < 0 || l.A == l.B {
				t.Fatalf("accepted degenerate link %+v", l)
			}
		}
		for _, dg := range d.Degrade {
			if dg.AlphaScale <= 0 || dg.BetaScale <= 0 {
				t.Fatalf("accepted non-positive scale %+v", dg)
			}
		}
		// Canonical form is a fixed point of parse → String → parse. The
		// empty canonical form (all terms were no-ops) has no spec to
		// reparse — ParseDelta("") is deliberately an error so explicit
		// contexts like -delta reject blank input.
		canon := d.String()
		if canon == "" {
			return
		}
		again, err := ParseDelta(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if again.String() != canon {
			t.Fatalf("canonicalization unstable: %q → %q", canon, again.String())
		}
		if again.Fingerprint() != d.Fingerprint() {
			t.Fatalf("fingerprint changed across reparse of %q", canon)
		}
	})
}
