// Package persist is the disk tier of SyCCL's symmetry reuse: a
// content-addressed, checksummed store of solved sub-schedules keyed by
// the same exact/iso-class signatures as the engine's in-memory LRUs
// (isomorph.ExactKey / isomorph.Key plus the solve-option signature), so
// a schedule synthesized by one process can be replayed bit-identically
// by every later one.
//
// On-disk layout under the store directory:
//
//	MANIFEST                    — versioned header naming the corpus
//	                              fingerprint; a mismatch discards the
//	                              corpus (compatibility rule, see Open)
//	objects/<2-hex>/<sha256>.sub — one solved sub-schedule per file,
//	                              sharded by the first byte of the
//	                              content address
//	snapshots/<name>.snap       — opaque named snapshots (the serving
//	                              layer stores its schedule-store image
//	                              here for warm boot)
//
// Every file is a self-describing container: magic, format version,
// kind, payload, and a trailing SHA-256 over everything before it.
// Writers are crash-safe — content goes to a same-directory *.tmp file
// first and is renamed into place — and readers are adversarial: a
// truncated, torn, or bit-flipped file fails its checksum and is
// dropped (and deleted) rather than served, and recovery at Open never
// fails the boot on a bad entry.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"syccl/internal/solve"
)

// FormatVersion is the on-disk container version. Decoders reject any
// other version with ErrVersion; Open treats a manifest version mismatch
// as an incompatible corpus and resets it (entries are cheap to
// re-synthesize, wrong entries are not cheap to debug).
const FormatVersion = 1

// Container kinds. Each file kind decodes only as itself, so a snapshot
// can never be mistaken for a solve entry.
const (
	kindEntry    = 1
	kindManifest = 2
	kindSnapshot = 3
)

var (
	// ErrCorrupt reports a container that failed structural or checksum
	// validation: truncated, torn, bit-flipped, or not ours at all.
	ErrCorrupt = errors.New("persist: corrupt container")
	// ErrVersion reports a structurally intact container written by an
	// incompatible format version.
	ErrVersion = errors.New("persist: incompatible format version")
)

const (
	containerMagic  = "SYP1"
	headerSize      = 4 + 2 + 1 + 1 + 8 // magic, version, kind, pad, payload len
	checksumSize    = sha256.Size
	maxPayloadBytes = 1 << 30
)

// encodeContainer frames payload as a checksummed container.
func encodeContainer(kind byte, payload []byte) []byte {
	buf := make([]byte, 0, headerSize+len(payload)+checksumSize)
	buf = append(buf, containerMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = append(buf, kind, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decodeContainer validates framing and checksum and returns the payload.
// The checksum is verified before the version so that a bit flip in the
// version field reads as corruption, not as a foreign format.
func decodeContainer(data []byte, wantKind byte) ([]byte, error) {
	if len(data) < headerSize+checksumSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal container", ErrCorrupt, len(data))
	}
	if string(data[:4]) != containerMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, stored := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], stored) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrVersion, v, FormatVersion)
	}
	if data[6] != wantKind {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrCorrupt, data[6], wantKind)
	}
	if data[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero pad byte", ErrCorrupt)
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	if plen > maxPayloadBytes || plen != uint64(len(body)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d does not match container", ErrCorrupt, plen)
	}
	return body[headerSize:], nil
}

// Entry is one persisted solved sub-demand: the composite cache keys,
// the concrete demand (needed to find an isomorphism mapping onto a
// relabeled query), and the solution.
type Entry struct {
	ExactKey string
	IsoKey   string
	Demand   *solve.Demand
	Sub      *solve.SubSchedule
}

// EncodeEntry serializes an entry into a container. The encoding is
// canonical: DecodeEntry(EncodeEntry(e)) reproduces e exactly, and
// EncodeEntry(DecodeEntry(b)) reproduces b byte for byte (FuzzPersistDecode
// holds the codec to that round-trip).
func EncodeEntry(e *Entry) []byte {
	var w wbuf
	w.str(e.ExactKey)
	w.str(e.IsoKey)
	d := e.Demand
	w.i64(int64(d.NumGPUs))
	w.f64(d.Alpha)
	w.f64(d.Beta)
	w.u32(uint32(len(d.Pieces)))
	for _, p := range d.Pieces {
		w.i64(int64(p.ID))
		w.f64(p.Bytes)
		w.ints(p.Srcs)
		w.ints(p.Dsts)
	}
	s := e.Sub
	w.str(s.Engine)
	w.i64(int64(s.Epochs))
	w.f64(s.Tau)
	w.u32(uint32(len(s.Transfers)))
	for _, t := range s.Transfers {
		w.i64(int64(t.Src))
		w.i64(int64(t.Dst))
		w.i64(int64(t.Piece))
		w.i64(int64(t.Start))
		w.i64(int64(t.Arrive))
	}
	return encodeContainer(kindEntry, w.b)
}

// DecodeEntry parses a container produced by EncodeEntry. It never
// panics on arbitrary input; malformed bytes return ErrCorrupt (or
// ErrVersion for a foreign format version).
func DecodeEntry(data []byte) (*Entry, error) {
	payload, err := decodeContainer(data, kindEntry)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: payload}
	e := &Entry{ExactKey: r.str(), IsoKey: r.str()}
	d := &solve.Demand{NumGPUs: int(r.i64()), Alpha: r.f64(), Beta: r.f64()}
	// Element-count sanity caps: a count may never promise more elements
	// than the remaining payload could possibly hold, so a corrupted
	// length can neither over-allocate nor run the reader past the end.
	npieces := r.count(8 + 8 + 4 + 4)
	for i := 0; i < npieces && r.err == nil; i++ {
		p := solve.Piece{ID: int(r.i64()), Bytes: r.f64()}
		p.Srcs = r.intList()
		p.Dsts = r.intList()
		d.Pieces = append(d.Pieces, p)
	}
	e.Demand = d
	s := &solve.SubSchedule{Engine: r.str(), Epochs: int(r.i64()), Tau: r.f64()}
	ntransfers := r.count(5 * 8)
	for i := 0; i < ntransfers && r.err == nil; i++ {
		s.Transfers = append(s.Transfers, solve.Transfer{
			Src: int(r.i64()), Dst: int(r.i64()), Piece: int(r.i64()),
			Start: int(r.i64()), Arrive: int(r.i64()),
		})
	}
	e.Sub = s
	if r.err != nil {
		return nil, fmt.Errorf("%w: entry payload: %v", ErrCorrupt, r.err)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return e, nil
}

// EncodeManifest serializes the corpus manifest.
func EncodeManifest(fingerprint string) []byte {
	var w wbuf
	w.str(fingerprint)
	return encodeContainer(kindManifest, w.b)
}

// DecodeManifest parses a manifest container and returns the corpus
// fingerprint.
func DecodeManifest(data []byte) (string, error) {
	payload, err := decodeContainer(data, kindManifest)
	if err != nil {
		return "", err
	}
	r := &rbuf{b: payload}
	fp := r.str()
	if r.err != nil {
		return "", fmt.Errorf("%w: manifest payload: %v", ErrCorrupt, r.err)
	}
	if r.off != len(r.b) {
		return "", fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return fp, nil
}

// EncodeSnapshot frames an opaque snapshot payload.
func EncodeSnapshot(payload []byte) []byte {
	return encodeContainer(kindSnapshot, payload)
}

// DecodeSnapshot validates and unwraps a snapshot container.
func DecodeSnapshot(data []byte) ([]byte, error) {
	return decodeContainer(data, kindSnapshot)
}

// --- primitive little-endian writer/reader ---

type wbuf struct{ b []byte }

func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) i64(v int64)   { w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v)) }
func (w *wbuf) f64(v float64) { w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) ints(vs []int) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.i64(int64(v))
	}
}

// rbuf is a bounds-checked reader: the first overrun latches err and all
// subsequent reads return zero values, so decoders stay panic-free on
// arbitrary input.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("need %d bytes, have %d", n, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *rbuf) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *rbuf) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *rbuf) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *rbuf) str() string {
	n := r.u32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads an element count and validates it against the bytes still
// available, given the minimal encoded size of one element.
func (r *rbuf) count(minElemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*minElemBytes > len(r.b)-r.off {
		r.err = fmt.Errorf("count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

func (r *rbuf) intList() []int {
	n := r.count(8)
	if n == 0 || r.err != nil {
		// Canonical round-trip: a zero count decodes to nil (EncodeEntry
		// writes nil and empty slices identically).
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.i64())
	}
	return out
}
