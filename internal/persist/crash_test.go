package persist

// Crash-consistency harness: every test simulates a specific way a
// writer can die mid-commit — tmp file written but never renamed,
// rename reached but the file torn or truncated by the filesystem —
// and asserts the invariants recovery must uphold: bad state is
// skipped and cleaned, good entries keep loading, and Open never fails
// the boot.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// entryFiles lists the committed entry files under the store.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(filepath.Join(dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), entrySuffix) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func tmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), tmpInfix) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Kill-before-rename: a fully written tmp file is left behind (the
// rename — the commit point — was never reached). Recovery must remove
// the orphan and must NOT index its contents: an uncommitted entry is
// not an entry.
func TestKillBeforeRenameLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	d, sub := demand(0), subFor(demand(0))

	// Simulate the dead writer: valid bytes under a tmp name.
	data := EncodeEntry(&Entry{
		ExactKey: func() string { e, _ := compositeKeys(d, "sig"); return e }(),
		IsoKey:   func() string { _, i := compositeKeys(d, "sig"); return i }(),
		Demand:   d, Sub: sub,
	})
	shard := filepath.Join(dir, objectsDir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shard, "deadbeef"+entrySuffix+tmpInfix+"123")
	if err := os.WriteFile(orphan, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = s1 // s1 predates the orphan; a fresh Open performs recovery

	s2 := open(t, dir)
	if got := tmpFiles(t, dir); len(got) != 0 {
		t.Fatalf("orphan tmp files survived recovery: %v", got)
	}
	if s2.Stats().Orphans == 0 {
		t.Fatal("orphan cleanup not counted")
	}
	if got := s2.Load(d, "sig"); got != nil {
		t.Fatalf("uncommitted entry was served: %+v", got)
	}
}

// Torn write: a committed entry file is truncated (as after a crash on
// a filesystem that committed the rename but not all data blocks).
// Recovery must drop exactly that entry, keep the good one, and boot.
func TestTruncatedEntrySkippedOnBoot(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	dGood, dBad := demand(0), demand(1)
	if err := s1.Put(dGood, "sig", subFor(dGood)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(dBad, "other-sig", subFor(dBad)); err != nil {
		t.Fatal(err)
	}
	// Truncate the second entry's file to half its size.
	badPath := s1.entryPath(func() string { e, _ := compositeKeys(dBad, "other-sig"); return e }())
	info, err := os.Stat(badPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(badPath, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if got := s2.Load(dBad, "other-sig"); got != nil {
		t.Fatalf("truncated entry was served: %+v", got)
	}
	want := subFor(dGood)
	if got := s2.Load(dGood, "sig"); !reflect.DeepEqual(got, want) {
		t.Fatalf("good entry lost after recovery: %+v", got)
	}
	st := s2.Stats()
	if st.CorruptEntries != 1 {
		t.Fatalf("stats %+v, want 1 corrupt entry", st)
	}
	if s2.Len() != 1 {
		t.Fatalf("index has %d entries, want 1", s2.Len())
	}
	// The torn file must be gone from disk, not just unindexed.
	if _, err := os.Stat(badPath); !os.IsNotExist(err) {
		t.Fatalf("torn file still on disk: %v", err)
	}
}

// Zero-length entry file (created, never written, renamed by a buggy
// writer or crashed filesystem): skipped, cleaned, boot succeeds.
func TestEmptyEntryFileSkipped(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	if err := s1.Put(demand(0), "sig", subFor(demand(0))); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, objectsDir, "00", strings.Repeat("0", 64)+entrySuffix)
	if err := os.MkdirAll(filepath.Dir(empty), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if s2.Len() != 1 {
		t.Fatalf("index has %d entries, want 1", s2.Len())
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Fatal("empty entry file not cleaned")
	}
}

// Orphaned tmp snapshot files are cleaned too, and a missing snapshot
// after the cleanup reads as a cold boot.
func TestOrphanSnapshotTmpCleaned(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	if err := s1.SaveSnapshot("warm", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, snapshotsDir, "warm"+snapSuffix+tmpInfix+"777")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if got := tmpFiles(t, dir); len(got) != 0 {
		t.Fatalf("tmp files survived: %v", got)
	}
	// The committed snapshot is unaffected by the orphan's removal.
	if got, ok := s2.LoadSnapshot("warm"); !ok || string(got) != "payload" {
		t.Fatalf("snapshot lost after cleanup: %q, %t", got, ok)
	}
}

// A pile of simultaneous damage — orphan tmps, a truncated entry, a
// zero-byte entry, garbage files — must never fail the boot.
func TestRecoveryNeverFailsBoot(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	for root := 0; root < 3; root++ {
		d := demand(root)
		if err := s1.Put(d, "sig", subFor(d)); err != nil {
			t.Fatal(err)
		}
	}
	files := entryFiles(t, dir)
	if len(files) != 3 {
		t.Fatalf("expected 3 entry files, got %d", len(files))
	}
	// Damage: truncate one, zero another, add garbage and orphans.
	if err := os.Truncate(files[0], 10); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], []byte("not a container at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, objectsDir, "zz.sub.tmp9"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery failed the boot: %v", err)
	}
	if s2.Len() != 1 {
		t.Fatalf("index has %d entries, want the 1 undamaged one", s2.Len())
	}
	if st := s2.Stats(); st.CorruptEntries != 2 {
		t.Fatalf("stats %+v, want 2 corrupt entries", st)
	}
	// The store stays fully writable after heavy recovery.
	d := demand(3)
	if err := s2.Put(d, "sig", subFor(d)); err != nil {
		t.Fatal(err)
	}
	if got := s2.Load(d, "sig"); got == nil {
		t.Fatal("store unusable after recovery")
	}
}
