package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"syccl/internal/obs"
	"syccl/internal/solve"
)

// demand builds a small broadcast-shaped demand; root picks the source
// GPU so relabeled (isomorphic) variants are easy to construct.
func demand(root int) *solve.Demand {
	dsts := []int{}
	for g := 0; g < 4; g++ {
		if g != root {
			dsts = append(dsts, g)
		}
	}
	return &solve.Demand{
		NumGPUs: 4, Alpha: 1e-6, Beta: 5e-12,
		Pieces: []solve.Piece{{ID: 0, Bytes: 1 << 16, Srcs: []int{root}, Dsts: dsts}},
	}
}

func subFor(d *solve.Demand) *solve.SubSchedule {
	root := d.Pieces[0].Srcs[0]
	sub := &solve.SubSchedule{Engine: "greedy", Epochs: 3, Tau: 1e-6}
	start := 0
	for _, dst := range d.Pieces[0].Dsts {
		sub.Transfers = append(sub.Transfers, solve.Transfer{
			Src: root, Dst: dst, Piece: 0, Start: start, Arrive: start + 1,
		})
		start++
	}
	return sub
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutLoadExact(t *testing.T) {
	s := open(t, t.TempDir())
	d, sub := demand(0), subFor(demand(0))
	if got := s.Load(d, "sig"); got != nil {
		t.Fatalf("empty store returned %+v", got)
	}
	if err := s.Put(d, "sig", sub); err != nil {
		t.Fatal(err)
	}
	got := s.Load(d, "sig")
	if !reflect.DeepEqual(got, sub) {
		t.Fatalf("loaded sub differs:\n in: %+v\nout: %+v", sub, got)
	}
	st := s.Stats()
	if st.HitExact != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// A different solve signature must not serve the stored entry: the
// signature is part of the content address.
func TestSignatureIsolation(t *testing.T) {
	s := open(t, t.TempDir())
	d := demand(0)
	if err := s.Put(d, "sigA", subFor(d)); err != nil {
		t.Fatal(err)
	}
	if got := s.Load(d, "sigB"); got != nil {
		t.Fatalf("signature mismatch served an entry: %+v", got)
	}
}

// A relabeled (isomorphic, not identical) demand is served through the
// iso index with the schedule mapped onto the queried labels.
func TestIsoFallback(t *testing.T) {
	s := open(t, t.TempDir())
	d0 := demand(0)
	if err := s.Put(d0, "sig", subFor(d0)); err != nil {
		t.Fatal(err)
	}
	d1 := demand(1)
	got := s.Load(d1, "sig")
	if got == nil {
		t.Fatal("isomorphic demand missed")
	}
	// Every transfer must originate (transitively) from d1's root, GPU 1.
	for _, tr := range got.Transfers {
		if tr.Src == 0 && tr.Start == 0 {
			// The original root was 0; a mapped schedule must not still
			// source the first hop at GPU 0 unless 0 holds the piece —
			// it does not in d1.
			t.Fatalf("mapped schedule still rooted at original GPU: %+v", got.Transfers)
		}
	}
	if s.Stats().HitIso != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

// First write wins: a duplicate Put must leave the original bytes in
// place so replays stay bit-identical.
func TestFirstWriteWins(t *testing.T) {
	s := open(t, t.TempDir())
	d := demand(0)
	orig := subFor(d)
	if err := s.Put(d, "sig", orig); err != nil {
		t.Fatal(err)
	}
	alt := subFor(d)
	alt.Engine = "other"
	alt.Epochs = 99
	if err := s.Put(d, "sig", alt); err != nil {
		t.Fatal(err)
	}
	if got := s.Load(d, "sig"); !reflect.DeepEqual(got, orig) {
		t.Fatalf("duplicate Put replaced the stored entry: %+v", got)
	}
	if st := s.Stats(); st.Duplicates != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Reopening the directory rebuilds the index from disk: the entry must
// load in a brand-new Store with no shared memory.
func TestReopenRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	d, sub := demand(0), subFor(demand(0))
	if err := s1.Put(d, "sig", sub); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", s2.Len())
	}
	if got := s2.Load(d, "sig"); !reflect.DeepEqual(got, sub) {
		t.Fatalf("reopened store returned %+v", got)
	}
	// Iso index rebuilt too.
	if got := s2.Load(demand(2), "sig"); got == nil {
		t.Fatal("reopened store lost the iso index")
	}
}

// A fingerprint change is a compatibility break: the corpus must be
// discarded, not replayed.
func TestFingerprintMismatchResetsCorpus(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{Dir: dir, Fingerprint: "fpA"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(demand(0), "sig", subFor(demand(0))); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Fingerprint: "fpB"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("incompatible corpus kept %d entries", s2.Len())
	}
	if s2.Stats().Resets != 1 {
		t.Fatalf("stats %+v", s2.Stats())
	}
	// And the store is usable after the reset.
	if err := s2.Put(demand(0), "sig", subFor(demand(0))); err != nil {
		t.Fatal(err)
	}
}

// Entries present without any manifest are of unknown provenance and
// must be discarded.
func TestMissingManifestResetsExistingCorpus(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	if err := s1.Put(demand(0), "sig", subFor(demand(0))); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if s2.Len() != 0 {
		t.Fatalf("manifest-less corpus kept %d entries", s2.Len())
	}
}

// Snapshots round-trip through disk; a missing name reads as absent.
func TestSnapshotSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if _, ok := s.LoadSnapshot("warm"); ok {
		t.Fatal("missing snapshot reported present")
	}
	payload := []byte(`{"entries":[{"id":"x"}]}`)
	if err := s.SaveSnapshot("warm", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadSnapshot("warm")
	if !ok || string(got) != string(payload) {
		t.Fatalf("snapshot load: %q, %t", got, ok)
	}
	// Overwrite is allowed for snapshots (unlike entries): latest wins.
	if err := s.SaveSnapshot("warm", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.LoadSnapshot("warm"); string(got) != "v2" {
		t.Fatalf("snapshot overwrite: %q", got)
	}
	// Survives reopen.
	s2 := open(t, dir)
	if got, ok := s2.LoadSnapshot("warm"); !ok || string(got) != "v2" {
		t.Fatalf("snapshot after reopen: %q, %t", got, ok)
	}
}

func TestSnapshotNameValidation(t *testing.T) {
	s := open(t, t.TempDir())
	for _, name := range []string{"", "a/b", `a\b`, "..", "x..y"} {
		if err := s.SaveSnapshot(name, []byte("p")); err == nil {
			t.Errorf("snapshot name %q accepted", name)
		}
		if _, ok := s.LoadSnapshot(name); ok {
			t.Errorf("snapshot name %q loadable", name)
		}
	}
}

// Concurrent Put/Load on overlapping keys must be race-free (run under
// -race in the CI shard) and end with exactly one entry per key.
func TestConcurrentPutLoad(t *testing.T) {
	s := open(t, t.TempDir())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				root := i % 4
				d := demand(root)
				_ = s.Put(d, "sig", subFor(d))
				_ = s.Load(d, "sig")
			}
		}()
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("store has %d entries, want 4", s.Len())
	}
}

// BindMetrics seeds the labeled counters with pre-bind history so the
// exposition agrees with Stats, and keeps counting after.
func TestBindMetricsSeedsHistory(t *testing.T) {
	s := open(t, t.TempDir())
	d := demand(0)
	_ = s.Load(d, "sig") // miss before bind
	if err := s.Put(d, "sig", subFor(d)); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.BindMetrics(reg)
	_ = s.Load(d, "sig") // exact hit after bind

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`syccl_persist_loads_total{result="miss"} 1`,
		`syccl_persist_loads_total{result="hit_exact"} 1`,
		`syccl_persist_stores_total{result="written"} 1`,
		`syccl_persist_entries 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}
