package persist

import (
	"bytes"
	"testing"
)

// FuzzPersistDecode hammers the container codec with arbitrary bytes.
// Contract under fuzzing:
//
//   - no input may panic any decoder (the store reads files an operator
//     or a crash may have mangled arbitrarily);
//   - an input that decodes successfully must re-encode to the exact
//     same bytes (the encoding is canonical, which is what makes the
//     files content-addressable);
//   - a successful decode must survive a second round-trip.
//
// Wired into scripts/ci.sh's fuzz smoke alongside the existing targets.
func FuzzPersistDecode(f *testing.F) {
	// Seed corpus: one valid container of each kind, shaved and mangled
	// variants, and plain garbage.
	entry := EncodeEntry(sampleEntry())
	manifest := EncodeManifest(DefaultFingerprint)
	snapshot := EncodeSnapshot([]byte(`{"entries":[]}`))
	f.Add(entry)
	f.Add(manifest)
	f.Add(snapshot)
	f.Add(entry[:len(entry)/2])
	f.Add(entry[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("SYP1"))
	f.Add([]byte("SYP1\x01\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	mut := append([]byte(nil), entry...)
	mut[len(mut)-1] ^= 1
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		if e, err := DecodeEntry(data); err == nil {
			re := EncodeEntry(e)
			if !bytes.Equal(re, data) {
				t.Fatalf("entry re-encode differs from accepted input")
			}
			if _, err := DecodeEntry(re); err != nil {
				t.Fatalf("entry second decode failed: %v", err)
			}
		}
		if fp, err := DecodeManifest(data); err == nil {
			if !bytes.Equal(EncodeManifest(fp), data) {
				t.Fatalf("manifest re-encode differs from accepted input")
			}
		}
		if p, err := DecodeSnapshot(data); err == nil {
			if !bytes.Equal(EncodeSnapshot(p), data) {
				t.Fatalf("snapshot re-encode differs from accepted input")
			}
		}
	})
}
