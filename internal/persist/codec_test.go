package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"

	"syccl/internal/solve"
)

func sampleEntry() *Entry {
	d := &solve.Demand{
		NumGPUs: 4, Alpha: 1e-6, Beta: 5e-12,
		Pieces: []solve.Piece{
			{ID: 0, Bytes: 1 << 18, Srcs: []int{0}, Dsts: []int{1, 2, 3}},
			{ID: 7, Bytes: 1 << 10, Srcs: []int{2, 3}, Dsts: []int{0}},
		},
	}
	sub := &solve.SubSchedule{
		Engine: "exact", Epochs: 5, Tau: 2.5e-6,
		Transfers: []solve.Transfer{
			{Src: 0, Dst: 1, Piece: 0, Start: 0, Arrive: 2},
			{Src: 1, Dst: 2, Piece: 0, Start: 2, Arrive: 4},
			{Src: 3, Dst: 0, Piece: 1, Start: 0, Arrive: 1},
		},
	}
	return &Entry{ExactKey: "exact-key|sig", IsoKey: "iso-key|sig", Demand: d, Sub: sub}
}

// The entry codec must round-trip in both directions: decode(encode(e))
// reproduces the entry, and encode(decode(b)) reproduces the bytes.
func TestEntryRoundTrip(t *testing.T) {
	e := sampleEntry()
	data := EncodeEntry(e)
	got, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", e, got)
	}
	if !bytes.Equal(EncodeEntry(got), data) {
		t.Fatal("re-encoding a decoded entry changed the bytes (encoding not canonical)")
	}
}

// Special float bit patterns must survive the trip exactly.
func TestEntryFloatBitPatterns(t *testing.T) {
	e := sampleEntry()
	e.Demand.Alpha = math.Float64frombits(0x7ff8000000000001) // a NaN payload
	e.Demand.Beta = math.SmallestNonzeroFloat64
	e.Sub.Tau = math.MaxFloat64
	got, err := DecodeEntry(EncodeEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Demand.Alpha) != math.Float64bits(e.Demand.Alpha) ||
		got.Demand.Beta != e.Demand.Beta || got.Sub.Tau != e.Sub.Tau {
		t.Fatal("float bit patterns not preserved")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	data := EncodeManifest("fp-abc")
	fp, err := DecodeManifest(data)
	if err != nil || fp != "fp-abc" {
		t.Fatalf("manifest round-trip: %q, %v", fp, err)
	}
	if !bytes.Equal(EncodeManifest(fp), data) {
		t.Fatal("manifest encoding not canonical")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	payload := []byte(`{"entries":[]}`)
	got, err := DecodeSnapshot(EncodeSnapshot(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("snapshot round-trip: %q, %v", got, err)
	}
}

// Every strict prefix of a valid container must fail to decode: a torn
// write can never read as a shorter-but-valid entry.
func TestEntryTruncationAlwaysDetected(t *testing.T) {
	data := EncodeEntry(sampleEntry())
	for n := 0; n < len(data); n++ {
		if _, err := DecodeEntry(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(data))
		}
	}
}

// Every single-byte flip must fail the checksum (or, for flips inside
// the version field that survive checksum — impossible, the checksum
// covers it — ErrVersion). No flip may decode cleanly.
func TestEntryBitFlipAlwaysDetected(t *testing.T) {
	data := EncodeEntry(sampleEntry())
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		if _, err := DecodeEntry(mut); err == nil {
			t.Fatalf("byte flip at offset %d decoded successfully", i)
		}
	}
}

// Trailing garbage after a valid container must be rejected.
func TestTrailingBytesRejected(t *testing.T) {
	data := append(EncodeEntry(sampleEntry()), 0x00)
	if _, err := DecodeEntry(data); err == nil {
		t.Fatal("container with trailing byte decoded successfully")
	}
}

// A container written by a different format version must surface as
// ErrVersion (checksum recomputed so only the version differs).
func TestVersionMismatchIsErrVersion(t *testing.T) {
	data := EncodeEntry(sampleEntry())
	mut := append([]byte(nil), data[:len(data)-checksumSize]...)
	binary.LittleEndian.PutUint16(mut[4:6], FormatVersion+1)
	sum := sha256.Sum256(mut)
	mut = append(mut, sum[:]...)
	_, err := DecodeEntry(mut)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// Kind confusion: a manifest must not decode as an entry or snapshot.
func TestKindConfusionRejected(t *testing.T) {
	man := EncodeManifest("fp")
	if _, err := DecodeEntry(man); err == nil {
		t.Fatal("manifest decoded as entry")
	}
	if _, err := DecodeSnapshot(man); err == nil {
		t.Fatal("manifest decoded as snapshot")
	}
}

// A hostile element count larger than the payload could hold must be
// rejected without attempting the allocation.
func TestHostileCountRejected(t *testing.T) {
	var w wbuf
	w.str("k")
	w.str("i")
	w.i64(2)
	w.f64(1)
	w.f64(1)
	w.u32(0xffffffff) // pieces "count"
	data := encodeContainer(kindEntry, w.b)
	if _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
