package persist

// Corruption-injection harness: flip bytes in committed entries, the
// manifest, and snapshots, then assert the store's contract — checksum
// mismatch drops the damaged file (counted), lookups degrade to misses
// (cold synthesis upstream), and nothing panics or serves bad data.

import (
	"os"
	"path/filepath"
	"testing"
)

// flipByte corrupts one byte of a file in place.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0x5a
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A bit flip anywhere in an entry — header, payload, or checksum — must
// make Load drop it and report a miss, and the file must be deleted.
func TestEntryBitFlipDroppedAtLoad(t *testing.T) {
	// One representative offset per container region.
	offsets := map[string]int{"header": 5, "payload": headerSize + 3, "checksum": -4}
	for name, off := range offsets {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir)
			d := demand(0)
			if err := s.Put(d, "sig", subFor(d)); err != nil {
				t.Fatal(err)
			}
			path := s.entryPath(func() string { e, _ := compositeKeys(d, "sig"); return e }())
			flipByte(t, path, off)

			if got := s.Load(d, "sig"); got != nil {
				t.Fatalf("corrupted entry served: %+v", got)
			}
			if st := s.Stats(); st.CorruptEntries != 1 {
				t.Fatalf("stats %+v, want 1 corrupt entry", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupted file left on disk")
			}
			// The slot is reusable: a fresh Put + Load round-trips.
			if err := s.Put(d, "sig", subFor(d)); err != nil {
				t.Fatal(err)
			}
			if got := s.Load(d, "sig"); got == nil {
				t.Fatal("store unusable after corruption drop")
			}
		})
	}
}

// Corruption discovered at boot (scan) is dropped the same way.
func TestEntryBitFlipDroppedAtBoot(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	d := demand(0)
	if err := s1.Put(d, "sig", subFor(d)); err != nil {
		t.Fatal(err)
	}
	path := s1.entryPath(func() string { e, _ := compositeKeys(d, "sig"); return e }())
	flipByte(t, path, headerSize+8)

	s2 := open(t, dir)
	if s2.Len() != 0 {
		t.Fatalf("corrupt entry indexed at boot (%d entries)", s2.Len())
	}
	if st := s2.Stats(); st.CorruptEntries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := s2.Load(d, "sig"); got != nil {
		t.Fatalf("corrupt entry served after reboot: %+v", got)
	}
}

// A corrupted iso-class sibling must not poison lookups for relabeled
// demands: the corrupt candidate is dropped and the good one serves.
func TestIsoLookupSurvivesCorruptSibling(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	d0, d1 := demand(0), demand(1)
	if err := s.Put(d0, "sig", subFor(d0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(d1, "sig", subFor(d1)); err != nil {
		t.Fatal(err)
	}
	// Corrupt d0's file, then look up d2 (isomorphic to both).
	path := s.entryPath(func() string { e, _ := compositeKeys(d0, "sig"); return e }())
	flipByte(t, path, headerSize+1)
	if got := s.Load(demand(2), "sig"); got == nil {
		t.Fatal("iso lookup failed although a healthy sibling exists")
	}
	if st := s.Stats(); st.CorruptEntries != 1 || st.HitIso != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// A flipped manifest is a corpus-trust failure: the next Open discards
// everything and starts fresh (counted as corrupt manifest + reset).
func TestManifestBitFlipResetsCorpus(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	if err := s1.Put(demand(0), "sig", subFor(demand(0))); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, manifestName), headerSize+2)

	s2 := open(t, dir)
	if s2.Len() != 0 {
		t.Fatalf("corpus survived a corrupt manifest (%d entries)", s2.Len())
	}
	st := s2.Stats()
	if st.CorruptManifest != 1 || st.Resets != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Fresh manifest written; a third open keeps the new corpus.
	if err := s2.Put(demand(0), "sig", subFor(demand(0))); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir)
	if s3.Len() != 1 {
		t.Fatalf("corpus lost after reset recovery (%d entries)", s3.Len())
	}
}

// A flipped snapshot must read as absent (cold boot), be deleted, and
// be counted — never returned as payload.
func TestSnapshotBitFlipDropped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.SaveSnapshot("warm", []byte("the warm boot image")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotsDir, "warm"+snapSuffix)
	flipByte(t, path, headerSize+4)

	if got, ok := s.LoadSnapshot("warm"); ok {
		t.Fatalf("corrupt snapshot served: %q", got)
	}
	if st := s.Stats(); st.CorruptSnapshots != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot left on disk")
	}
}

// Exhaustive single-byte sweep on a small entry: no flip position may
// ever be served. (The codec-level sweep is in codec_test.go; this one
// goes through the full store path with file I/O and index bookkeeping.)
func TestEveryBytePositionDetectedThroughStore(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	d := demand(0)
	if err := s.Put(d, "sig", subFor(d)); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(func() string { e, _ := compositeKeys(d, "sig"); return e }())
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(pristine); off += 7 { // stride keeps the test fast
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := s.Load(d, "sig"); got != nil {
			t.Fatalf("flip at offset %d served: %+v", off, got)
		}
		// Restore for the next position (Load deleted the file and
		// forgot the index entry; re-seed through Put).
		if err := s.Put(d, "sig", subFor(d)); err != nil {
			t.Fatal(err)
		}
	}
}
