package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"syccl/internal/isomorph"
	"syccl/internal/obs"
	"syccl/internal/solve"
)

// DefaultFingerprint names the corpus produced by the current solver
// pipeline. Bump it when a change makes previously stored sub-schedules
// untrustworthy even though the container format is unchanged (the
// format itself is guarded separately by FormatVersion).
const DefaultFingerprint = "syccl-solve-v1"

const (
	manifestName = "MANIFEST"
	objectsDir   = "objects"
	snapshotsDir = "snapshots"
	entrySuffix  = ".sub"
	snapSuffix   = ".snap"
	tmpInfix     = ".tmp"
)

// Options configures Open.
type Options struct {
	// Dir is the store directory; created (with parents) if absent.
	Dir string
	// Fingerprint is the corpus compatibility token recorded in the
	// manifest (default DefaultFingerprint). Opening a store whose
	// manifest carries a different fingerprint or format version discards
	// the corpus and starts fresh: stale entries are re-synthesized, never
	// silently replayed.
	Fingerprint string
}

// Stats is a snapshot of a store's lifetime counters (since Open).
type Stats struct {
	// Loads counts Load calls; HitExact + HitIso + Misses = Loads.
	Loads    int64 `json:"loads"`
	HitExact int64 `json:"hit_exact"`
	HitIso   int64 `json:"hit_iso"`
	Misses   int64 `json:"misses"`
	// Stores counts Put calls that wrote a new entry; Duplicates counts
	// first-write-wins drops; StoreErrors counts failed writes.
	Stores      int64 `json:"stores"`
	Duplicates  int64 `json:"duplicates"`
	StoreErrors int64 `json:"store_errors"`
	// CorruptEntries / CorruptSnapshots count checksum-failed files
	// dropped (at Open or on access); CorruptManifest counts manifest
	// validation failures; Resets counts whole-corpus discards
	// (manifest missing/corrupt/incompatible).
	CorruptEntries   int64 `json:"corrupt_entries"`
	CorruptSnapshots int64 `json:"corrupt_snapshots"`
	CorruptManifest  int64 `json:"corrupt_manifest"`
	Resets           int64 `json:"resets"`
	// Orphans counts abandoned tmp files removed during recovery.
	Orphans int64 `json:"orphans"`
	// Entries / Bytes describe the current corpus.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Store is a disk-backed, content-addressed cache of solved
// sub-schedules plus a small named-snapshot area. It is safe for
// concurrent use; every entry file is immutable once renamed into
// place, so readers never observe partial writes.
type Store struct {
	dir string
	fp  string

	mu    sync.Mutex
	exact map[string]string   // composite exact key -> entry file path
	iso   map[string][]string // composite iso key -> entry file paths
	bytes int64

	loads, hitExact, hitIso, misses  atomic.Int64
	stores, duplicates, storeErrors  atomic.Int64
	corruptEntries, corruptSnaps     atomic.Int64
	corruptManifest, resets, orphans atomic.Int64

	met atomic.Pointer[storeMetrics]
}

// storeMetrics holds the labeled children, resolved once at BindMetrics.
type storeMetrics struct {
	loadExact, loadIso, loadMiss     *obs.Counter
	storeWritten, storeDup, storeErr *obs.Counter
	corruptEntry, corruptManifest    *obs.Counter
	corruptSnapshot                  *obs.Counter
	snapSaved, snapRestored          *obs.Counter
	snapMissing, snapError           *obs.Counter
	entries, bytes                   *obs.Gauge
}

// Open opens (or initializes) the store at opts.Dir and rebuilds the
// in-memory key index by scanning the corpus. Recovery is deliberately
// forgiving: orphaned tmp files from a killed writer are removed,
// truncated/torn/bit-flipped entries are dropped (and deleted) with a
// counter bump, and none of that fails the boot. Open errors only when
// the directory itself is unusable (cannot create or write).
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: Options.Dir is required")
	}
	if opts.Fingerprint == "" {
		opts.Fingerprint = DefaultFingerprint
	}
	s := &Store{
		dir:   opts.Dir,
		fp:    opts.Fingerprint,
		exact: make(map[string]string),
		iso:   make(map[string][]string),
	}
	for _, d := range []string{s.dir, filepath.Join(s.dir, objectsDir), filepath.Join(s.dir, snapshotsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	s.cleanOrphans()
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	s.scan()
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.exact)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.exact), s.bytes
	s.mu.Unlock()
	return Stats{
		Loads:            s.loads.Load(),
		HitExact:         s.hitExact.Load(),
		HitIso:           s.hitIso.Load(),
		Misses:           s.misses.Load(),
		Stores:           s.stores.Load(),
		Duplicates:       s.duplicates.Load(),
		StoreErrors:      s.storeErrors.Load(),
		CorruptEntries:   s.corruptEntries.Load(),
		CorruptSnapshots: s.corruptSnaps.Load(),
		CorruptManifest:  s.corruptManifest.Load(),
		Resets:           s.resets.Load(),
		Orphans:          s.orphans.Load(),
		Entries:          entries,
		Bytes:            bytes,
	}
}

// BindMetrics registers the syccl_persist_* families on reg and seeds
// the counters with everything that already happened (Open-time
// recovery runs before the serving layer owns a registry). Nil-safe and
// idempotent enough for one daemon: bind once, before traffic.
func (s *Store) BindMetrics(reg *obs.Registry) {
	loads := reg.Counter("syccl_persist_loads_total",
		"Disk-tier sub-schedule lookups by result.", "result")
	stores := reg.Counter("syccl_persist_stores_total",
		"Disk-tier entry writes by result.", "result")
	corrupt := reg.Counter("syccl_persist_corrupt_total",
		"Checksum-failed or incompatible files dropped, by kind.", "kind")
	snaps := reg.Counter("syccl_persist_snapshots_total",
		"Named snapshot operations by result.", "result")
	m := &storeMetrics{
		loadExact:       loads.With("hit_exact"),
		loadIso:         loads.With("hit_iso"),
		loadMiss:        loads.With("miss"),
		storeWritten:    stores.With("written"),
		storeDup:        stores.With("duplicate"),
		storeErr:        stores.With("error"),
		corruptEntry:    corrupt.With("entry"),
		corruptManifest: corrupt.With("manifest"),
		corruptSnapshot: corrupt.With("snapshot"),
		snapSaved:       snaps.With("saved"),
		snapRestored:    snaps.With("restored"),
		snapMissing:     snaps.With("missing"),
		snapError:       snaps.With("error"),
		entries:         reg.Gauge("syccl_persist_entries", "Entries in the on-disk corpus.").With(),
		bytes:           reg.Gauge("syccl_persist_bytes", "Bytes of entry files in the on-disk corpus.").With(),
	}
	// Seed with pre-bind history so the exposition agrees with Stats().
	st := s.Stats()
	m.loadExact.Add(float64(st.HitExact))
	m.loadIso.Add(float64(st.HitIso))
	m.loadMiss.Add(float64(st.Misses))
	m.storeWritten.Add(float64(st.Stores))
	m.storeDup.Add(float64(st.Duplicates))
	m.storeErr.Add(float64(st.StoreErrors))
	m.corruptEntry.Add(float64(st.CorruptEntries))
	m.corruptManifest.Add(float64(st.CorruptManifest))
	m.corruptSnapshot.Add(float64(st.CorruptSnapshots))
	m.entries.Set(float64(st.Entries))
	m.bytes.Set(float64(st.Bytes))
	s.met.Store(m)
}

// compositeKeys builds the cache keys a demand+signature is addressed
// by, mirroring internal/engine's in-memory tiers exactly.
func compositeKeys(d *solve.Demand, sig string) (exact, iso string) {
	return isomorph.ExactKey(d) + "|" + sig, isomorph.Key(d) + "|" + sig
}

// Load returns the stored sub-schedule for the demand and solve
// signature, or nil. An exact-key hit replays the stored solution
// verbatim; otherwise entries in the same iso class are tried and, when
// a full GPU mapping exists, the stored solution is mapped onto the
// queried demand. Entries that fail their checksum (or decode to an
// invalid demand) are dropped from disk and the lookup falls through —
// corruption degrades to a cold synthesis, never to a bad schedule.
func (s *Store) Load(d *solve.Demand, sig string) *solve.SubSchedule {
	s.loads.Add(1)
	exact, iso := compositeKeys(d, sig)
	s.mu.Lock()
	exactPath := s.exact[exact]
	isoPaths := append([]string(nil), s.iso[iso]...)
	s.mu.Unlock()

	if exactPath != "" {
		if e := s.readEntry(exactPath); e != nil && e.ExactKey == exact {
			s.hitExact.Add(1)
			if m := s.met.Load(); m != nil {
				m.loadExact.Inc()
			}
			return e.Sub
		}
	}
	for _, p := range isoPaths {
		if p == exactPath {
			continue // already tried (and dropped) above
		}
		e := s.readEntry(p)
		if e == nil {
			continue
		}
		if m := isomorph.FindFullMapping(e.Demand, d); m != nil {
			s.hitIso.Add(1)
			if mm := s.met.Load(); mm != nil {
				mm.loadIso.Inc()
			}
			return isomorph.MapSchedule(e.Sub, *m)
		}
	}
	s.misses.Add(1)
	if m := s.met.Load(); m != nil {
		m.loadMiss.Inc()
	}
	return nil
}

// Put writes the solved sub-schedule to disk under its content address.
// First write wins: a key already present is left untouched so replays
// stay bit-identical under concurrent duplicate stores. Callers must
// only Put fully validated results — the engine never stores partial or
// cancelled-flight solutions, and this package cannot tell the
// difference.
func (s *Store) Put(d *solve.Demand, sig string, sub *solve.SubSchedule) error {
	exact, iso := compositeKeys(d, sig)
	path := s.entryPath(exact)

	s.mu.Lock()
	if _, ok := s.exact[exact]; ok {
		s.mu.Unlock()
		s.duplicates.Add(1)
		if m := s.met.Load(); m != nil {
			m.storeDup.Inc()
		}
		return nil
	}
	// Reserve the key before the write so a concurrent duplicate Put
	// becomes a no-op instead of a double write; rolled back on error.
	s.exact[exact] = path
	s.iso[iso] = append(s.iso[iso], path)
	s.mu.Unlock()

	data := EncodeEntry(&Entry{ExactKey: exact, IsoKey: iso, Demand: d, Sub: sub})
	if err := atomicWrite(path, data); err != nil {
		s.mu.Lock()
		delete(s.exact, exact)
		s.iso[iso] = removePath(s.iso[iso], path)
		s.mu.Unlock()
		s.storeErrors.Add(1)
		if m := s.met.Load(); m != nil {
			m.storeErr.Inc()
		}
		return fmt.Errorf("persist: store entry: %w", err)
	}
	s.mu.Lock()
	s.bytes += int64(len(data))
	s.updateGaugesLocked()
	s.mu.Unlock()
	s.stores.Add(1)
	if m := s.met.Load(); m != nil {
		m.storeWritten.Inc()
	}
	return nil
}

// InvalidateMatching removes every stored entry whose composite exact or
// iso key starts with one of the prefixes, deleting the backing files,
// and returns the number of entries removed. It implements the engine's
// selective invalidation for fault-reactive replanning: entries whose
// demand shape no longer exists on a degraded fabric are dropped from
// the disk tier so a later warm boot does not resurrect them. Removal is
// never a correctness requirement — the store is content-addressed — so
// a file that fails to delete only costs disk space, not validity.
func (s *Store) InvalidateMatching(prefixes []string) int {
	if len(prefixes) == 0 {
		return 0
	}
	match := func(k string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(k, p) {
				return true
			}
		}
		return false
	}

	s.mu.Lock()
	victims := make(map[string]bool)
	for k, p := range s.exact {
		if match(k) {
			victims[p] = true
		}
	}
	for k, ps := range s.iso {
		if match(k) {
			for _, p := range ps {
				victims[p] = true
			}
		}
	}
	removed := 0
	for k, p := range s.exact {
		if victims[p] {
			delete(s.exact, k)
			removed++
		}
	}
	for k, ps := range s.iso {
		out := ps[:0:0]
		for _, p := range ps {
			if !victims[p] {
				out = append(out, p)
			}
		}
		switch {
		case len(out) == 0:
			delete(s.iso, k)
		case len(out) != len(ps):
			s.iso[k] = out
		}
	}
	for p := range victims {
		if fi, err := os.Stat(p); err == nil {
			s.bytes -= fi.Size()
		}
	}
	if s.bytes < 0 {
		s.bytes = 0
	}
	s.updateGaugesLocked()
	s.mu.Unlock()

	for p := range victims {
		_ = os.Remove(p)
	}
	return removed
}

// SaveSnapshot atomically writes a named opaque snapshot (checksummed
// like every other file in the store).
func (s *Store) SaveSnapshot(name string, payload []byte) error {
	if err := validSnapName(name); err != nil {
		return err
	}
	path := filepath.Join(s.dir, snapshotsDir, name+snapSuffix)
	if err := atomicWrite(path, EncodeSnapshot(payload)); err != nil {
		if m := s.met.Load(); m != nil {
			m.snapError.Inc()
		}
		return fmt.Errorf("persist: save snapshot %q: %w", name, err)
	}
	if m := s.met.Load(); m != nil {
		m.snapSaved.Inc()
	}
	return nil
}

// LoadSnapshot returns the named snapshot's payload. A missing snapshot
// is (nil, false); a corrupt one is dropped from disk, counted, and
// reported as missing — a damaged warm-boot image must read as a cold
// boot, never as an error that blocks serving.
func (s *Store) LoadSnapshot(name string) ([]byte, bool) {
	if validSnapName(name) != nil {
		return nil, false
	}
	path := filepath.Join(s.dir, snapshotsDir, name+snapSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		if m := s.met.Load(); m != nil {
			m.snapMissing.Inc()
		}
		return nil, false
	}
	payload, err := DecodeSnapshot(data)
	if err != nil {
		s.corruptSnaps.Add(1)
		if m := s.met.Load(); m != nil {
			m.corruptSnapshot.Inc()
		}
		_ = os.Remove(path)
		return nil, false
	}
	if m := s.met.Load(); m != nil {
		m.snapRestored.Inc()
	}
	return payload, true
}

// --- recovery & scanning ---

// cleanOrphans removes tmp files abandoned by a writer that was killed
// between create and rename. Their contents are unreachable by design
// (the rename is the commit point), so removal can never lose a
// committed entry.
func (s *Store) cleanOrphans() {
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), tmpInfix) {
			if os.Remove(path) == nil {
				s.orphans.Add(1)
			}
		}
		return nil
	})
}

// checkManifest enforces the compatibility rules: a valid manifest with
// the expected version and fingerprint keeps the corpus; anything else
// — missing, corrupt, foreign version, foreign fingerprint — discards
// every entry and snapshot and writes a fresh manifest. Returns an
// error only if the fresh manifest cannot be written.
func (s *Store) checkManifest() error {
	path := filepath.Join(s.dir, manifestName)
	data, err := os.ReadFile(path)
	if err == nil {
		fp, derr := DecodeManifest(data)
		if derr == nil && fp == s.fp {
			return nil
		}
		if derr != nil && !errors.Is(derr, ErrVersion) {
			s.corruptManifest.Add(1)
		}
		s.reset()
	} else if hasEntries(filepath.Join(s.dir, objectsDir)) {
		// Entries without a manifest are of unknown provenance (e.g. the
		// manifest write itself was lost): treat as incompatible.
		s.reset()
	}
	if err := atomicWrite(path, EncodeManifest(s.fp)); err != nil {
		return fmt.Errorf("persist: write manifest: %w", err)
	}
	return nil
}

// reset discards the whole corpus (entries and snapshots).
func (s *Store) reset() {
	s.resets.Add(1)
	_ = os.RemoveAll(filepath.Join(s.dir, objectsDir))
	_ = os.RemoveAll(filepath.Join(s.dir, snapshotsDir))
	_ = os.MkdirAll(filepath.Join(s.dir, objectsDir), 0o755)
	_ = os.MkdirAll(filepath.Join(s.dir, snapshotsDir), 0o755)
}

// scan rebuilds the key index from the corpus, dropping every file that
// fails validation.
func (s *Store) scan() {
	root := filepath.Join(s.dir, objectsDir)
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), entrySuffix) {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil
		}
		e, derr := DecodeEntry(data)
		if derr != nil || e.Demand.Validate() != nil {
			s.dropCorrupt(path)
			return nil
		}
		s.mu.Lock()
		if _, dup := s.exact[e.ExactKey]; !dup {
			s.exact[e.ExactKey] = path
			s.iso[e.IsoKey] = append(s.iso[e.IsoKey], path)
			s.bytes += int64(len(data))
		}
		s.mu.Unlock()
		return nil
	})
}

// readEntry loads and validates one entry file; on any failure the file
// is dropped from disk and from the index.
func (s *Store) readEntry(path string) *Entry {
	data, err := os.ReadFile(path)
	if err != nil {
		s.forgetPath(path)
		return nil
	}
	e, derr := DecodeEntry(data)
	if derr != nil || e.Demand.Validate() != nil {
		s.dropCorrupt(path)
		s.forgetPath(path)
		return nil
	}
	return e
}

func (s *Store) dropCorrupt(path string) {
	s.corruptEntries.Add(1)
	if m := s.met.Load(); m != nil {
		m.corruptEntry.Inc()
	}
	_ = os.Remove(path)
}

// forgetPath removes a dead file from the in-memory index.
func (s *Store) forgetPath(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, p := range s.exact {
		if p == path {
			delete(s.exact, k)
			break
		}
	}
	for k, ps := range s.iso {
		if out := removePath(ps, path); len(out) != len(ps) {
			if len(out) == 0 {
				delete(s.iso, k)
			} else {
				s.iso[k] = out
			}
			break
		}
	}
	s.updateGaugesLocked()
}

func (s *Store) updateGaugesLocked() {
	if m := s.met.Load(); m != nil {
		m.entries.Set(float64(len(s.exact)))
		m.bytes.Set(float64(s.bytes))
	}
}

func (s *Store) entryPath(exactKey string) string {
	sum := sha256.Sum256([]byte(exactKey))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, objectsDir, name[:2], name+entrySuffix)
}

func removePath(paths []string, path string) []string {
	for i, p := range paths {
		if p == path {
			return append(paths[:i], paths[i+1:]...)
		}
	}
	return paths
}

func hasEntries(root string) bool {
	found := false
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), entrySuffix) {
			found = true
			return filepath.SkipAll
		}
		return nil
	})
	return found
}

func validSnapName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("persist: invalid snapshot name %q", name)
	}
	return nil
}

// atomicWrite commits data to path via a same-directory tmp file and
// rename, fsyncing the file so a crash straddling the rename leaves
// either the old state or the complete new file — never a torn one that
// recovery has to distrust (it distrusts it anyway: checksums).
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+tmpInfix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
