package metrics

import (
	"math"
	"testing"

	"syccl/internal/collective"
)

func TestBusFactor(t *testing.T) {
	cases := []struct {
		kind collective.Kind
		n    int
		want float64
	}{
		{collective.KindAllGather, 8, 7.0 / 8},
		{collective.KindReduceScatter, 16, 15.0 / 16},
		{collective.KindAlltoAll, 4, 3.0 / 4},
		{collective.KindAllReduce, 8, 14.0 / 8},
		{collective.KindBroadcast, 8, 1},
		{collective.KindAllGather, 1, 1},
	}
	for _, c := range cases {
		if got := BusFactor(c.kind, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BusFactor(%v,%d) = %g, want %g", c.kind, c.n, got, c.want)
		}
	}
}

func TestBusBandwidth(t *testing.T) {
	// 1 GB AllGather on 16 GPUs in 10 ms: algbw 100 GB/s, busbw 93.75.
	got := BusBandwidth(collective.KindAllGather, 16, 1e9, 0.01)
	want := 1e9 / 0.01 * 15 / 16
	if math.Abs(got-want) > 1 {
		t.Errorf("busbw = %g, want %g", got, want)
	}
	if BusBandwidth(collective.KindAllGather, 16, 1e9, 0) != 0 {
		t.Error("zero time should yield zero busbw")
	}
}

func TestDataBytes(t *testing.T) {
	ag := collective.AllGather(8, 100)
	if DataBytes(ag) != 800 {
		t.Errorf("AllGather DataBytes = %g", DataBytes(ag))
	}
	rs := collective.ReduceScatter(8, 100)
	if DataBytes(rs) != 800 {
		t.Errorf("ReduceScatter DataBytes = %g, want 800", DataBytes(rs))
	}
	a2a := collective.AlltoAll(4, 10)
	if DataBytes(a2a) != 120 {
		t.Errorf("AlltoAll DataBytes = %g, want 120", DataBytes(a2a))
	}
}

func TestGBps(t *testing.T) {
	if GBps(5e9) != 5 {
		t.Errorf("GBps = %g", GBps(5e9))
	}
}
