// Package metrics computes collective-communication performance metrics.
//
// The paper reports Bus Bandwidth (busbw), the nccl-tests metric that
// normalizes algorithm bandwidth by the hardware-limited fraction of
// traffic, making numbers comparable across collectives and GPU counts.
package metrics

import "syccl/internal/collective"

// AlgBandwidth returns algbw = dataBytes / seconds, where dataBytes is the
// collective's aggregate buffer size (nccl-tests "size" column).
func AlgBandwidth(dataBytes, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return dataBytes / seconds
}

// BusFactor returns the busbw correction factor for a collective on n
// GPUs, following nccl-tests PERFORMANCE.md:
//
//	AllGather, ReduceScatter, AlltoAll: (n-1)/n
//	AllReduce:                          2(n-1)/n
//	Broadcast, Reduce, SendRecv, Gather, Scatter: 1
func BusFactor(kind collective.Kind, n int) float64 {
	if n <= 1 {
		return 1
	}
	switch kind {
	case collective.KindAllGather, collective.KindReduceScatter, collective.KindAlltoAll:
		return float64(n-1) / float64(n)
	case collective.KindAllReduce:
		return 2 * float64(n-1) / float64(n)
	default:
		return 1
	}
}

// BusBandwidth returns busbw in bytes/second for completing a collective
// moving dataBytes of aggregate payload in `seconds`.
//
// AlltoAll follows the per-rank convention (as in the NCCL 2.12 PXN
// evaluation and the paper's Fig 14d/15c magnitudes): its algorithm
// bandwidth is the per-rank buffer (dataBytes/n) over time. The gather/
// scatter family uses the aggregate buffer, matching the paper's §2.1
// arithmetic ("a total size of 1GB distributed across 512 GPUs").
func BusBandwidth(kind collective.Kind, n int, dataBytes, seconds float64) float64 {
	if kind == collective.KindAlltoAll && n > 0 {
		dataBytes /= float64(n)
	}
	return AlgBandwidth(dataBytes, seconds) * BusFactor(kind, n)
}

// DataBytes returns the conventional figure-axis "data size" of a
// collective: the aggregate buffer size.
func DataBytes(c *collective.Collective) float64 {
	switch c.Kind {
	case collective.KindReduceScatter:
		// n·(n-1) chunks model the per-source contributions, but the
		// logical buffer is n slices of ChunkSize.
		return float64(c.NumGPUs) * c.ChunkSize
	default:
		return c.TotalBytes()
	}
}

// GBps converts bytes/second to gigabytes/second (10^9, as nccl-tests).
func GBps(bytesPerSecond float64) float64 { return bytesPerSecond / 1e9 }
