package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"syccl/internal/cli"
	"syccl/internal/topology"
	"syccl/internal/verify"
)

func postPath(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw
}

// TestSynthesizeWithTopologyDelta drives the daemon fast path: a
// synthesize request carrying a topology_delta plans on the degraded
// fabric, keys separately from the healthy plan, and the schedule passes
// the oracle on the degraded topology.
func TestSynthesizeWithTopologyDelta(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Healthy baseline.
	resp, raw := postPath(t, ts.URL, "/v1/synthesize",
		`{"topology":"dgx4","collective":"allgather","size":"1M","workers":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy: status %d: %s", resp.StatusCode, raw)
	}
	var healthy SynthesizeResponse
	if err := json.Unmarshal(raw, &healthy); err != nil {
		t.Fatal(err)
	}

	// Degraded: the NVSwitch of dgx4 is node 4; slow GPU 0's port.
	const delta = "slow:0-4*4"
	body := fmt.Sprintf(`{"topology":"dgx4","collective":"allgather","size":"1M","workers":2,"include_schedule":true,"topology_delta":%q}`, delta)
	resp, raw = postPath(t, ts.URL, "/v1/synthesize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded: status %d: %s", resp.StatusCode, raw)
	}
	var degraded SynthesizeResponse
	if err := json.Unmarshal(raw, &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.ID == "" || degraded.ID == healthy.ID {
		t.Fatalf("degraded plan must have its own schedule ID (healthy %q, degraded %q)", healthy.ID, degraded.ID)
	}
	if degraded.PredictedTimeS <= healthy.PredictedTimeS {
		t.Errorf("slowing a link cannot speed up the collective: healthy %g, degraded %g",
			healthy.PredictedTimeS, degraded.PredictedTimeS)
	}
	if degraded.Schedule == nil {
		t.Fatal("include_schedule ignored")
	}
	sched, err := degraded.Schedule.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	base, err := cli.ParseTopology("dgx4")
	if err != nil {
		t.Fatal(err)
	}
	d, err := topology.ParseDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	degTop, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	col, err := cli.BuildCollective("allgather", degTop.NumGPUs(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckSchedule(col, sched); err != nil {
		t.Fatalf("degraded schedule fails oracle: %v", err)
	}

	// Structured rejections: bad syntax and an infeasible delta (killing
	// GPU 0's only NVLink disconnects it).
	for _, bad := range []string{"slow:0-4", "kill:0-4"} {
		body := fmt.Sprintf(`{"topology":"dgx4","collective":"allgather","size":"1M","topology_delta":%q}`, bad)
		resp, raw := postPath(t, ts.URL, "/v1/synthesize", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("delta %q: status %d, want 400: %s", bad, resp.StatusCode, raw)
		}
		var e struct {
			Error APIError `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != CodeBadDelta {
			t.Fatalf("delta %q: want code %q, got %s", bad, CodeBadDelta, raw)
		}
	}
}

// TestReplanEndpoint exercises POST /v1/replan end to end: warm the
// engine with a healthy plan, replan under a degrade delta, and check
// the replan bookkeeping plus the write-through into the schedule store.
func TestReplanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, raw := postPath(t, ts.URL, "/v1/synthesize",
		`{"topology":"h800small","collective":"allgather","size":"1M","workers":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm synthesize: status %d: %s", resp.StatusCode, raw)
	}

	// h800small is H800Small(6): GPUs 0..23, then per-server NVSwitches —
	// node 24 is server 0's switch. Slow one NVLink port: 1 of 12 groups.
	const body = `{"topology":"h800small","collective":"allgather","size":"1M","workers":2,"topology_delta":"slow:0-24*4"}`
	resp, raw = postPath(t, ts.URL, "/v1/replan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replan: status %d: %s", resp.StatusCode, raw)
	}
	var rr SynthesizeResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Replan == nil {
		t.Fatalf("replan response missing replan bookkeeping: %s", raw)
	}
	if rr.Replan.Delta != "slow:0-24*4" {
		t.Errorf("replan echoed delta %q", rr.Replan.Delta)
	}
	// 10 groups: 6 NVSwitch servers + 4 rails of 6 GPUs.
	if rr.Replan.TouchedGroups != 1 || rr.Replan.TotalGroups != 10 {
		t.Errorf("touched %d/%d groups, want 1/10", rr.Replan.TouchedGroups, rr.Replan.TotalGroups)
	}
	if rr.Replan.ReusedSubs == 0 {
		t.Error("warm replan reused nothing")
	}
	if rr.Replan.ReuseRatio < 0.5 {
		t.Errorf("reuse ratio %.2f < 0.5 (reused %d, solved %d)",
			rr.Replan.ReuseRatio, rr.Replan.ReusedSubs, rr.Replan.SolvedSubs)
	}
	if rr.ID == "" {
		t.Fatal("replan response missing schedule ID")
	}

	// The replan wrote through to the store: fetch by ID, and a repeat
	// synthesize with the same delta is a store hit.
	fresp, fraw := getJSON(t, ts.URL+"/v1/schedule/"+rr.ID)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("fetch replanned schedule: status %d: %s", fresp.StatusCode, fraw)
	}
	sresp, sraw := postPath(t, ts.URL, "/v1/synthesize", body)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("repeat synthesize: status %d: %s", sresp.StatusCode, sraw)
	}
	var repeat SynthesizeResponse
	if err := json.Unmarshal(sraw, &repeat); err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached {
		t.Error("synthesize after replan with the same delta should be a store hit")
	}
	if repeat.PredictedTimeS != rr.PredictedTimeS {
		t.Errorf("store round trip changed predicted time: %g vs %g", repeat.PredictedTimeS, rr.PredictedTimeS)
	}

	// A replan without a delta is a structured 400.
	resp, raw = postPath(t, ts.URL, "/v1/replan",
		`{"topology":"h800small","collective":"allgather","size":"1M"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("deltaless replan: status %d: %s", resp.StatusCode, raw)
	}
	var e struct {
		Error APIError `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != CodeBadDelta {
		t.Fatalf("deltaless replan: want code %q, got %s", CodeBadDelta, raw)
	}
}
