package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"syccl/internal/cli"
	"syccl/internal/verify"
)

// postStream POSTs a streaming synthesis request and parses every NDJSON
// line through the strict decoder.
func postStream(t *testing.T, url, body string) (*http.Response, []*StreamEvent) {
	t.Helper()
	resp, err := http.Post(url+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var events []*StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := ParseStreamEvent(line)
		if err != nil {
			t.Fatalf("stream line %d: %v\n%s", len(events), err, line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return resp, events
}

// checkStreamShape asserts the NDJSON protocol invariants: zero or more
// incumbent events with seq 1..N and strictly decreasing times, then
// exactly one terminal event.
func checkStreamShape(t *testing.T, events []*StreamEvent) *StreamEvent {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	last := events[len(events)-1]
	if last.Event != StreamEventFinal && last.Event != StreamEventError {
		t.Fatalf("stream does not end with a terminal event: %+v", last)
	}
	prev := 0.0
	for i, ev := range events[:len(events)-1] {
		if ev.Event != StreamEventIncumbent {
			t.Fatalf("non-terminal event %d has kind %q", i, ev.Event)
		}
		if ev.Seq != i+1 {
			t.Fatalf("incumbent %d has seq %d", i, ev.Seq)
		}
		if i > 0 && ev.TimeS >= prev {
			t.Fatalf("incumbent stream not strictly improving: event %d time %g after %g", i, ev.TimeS, prev)
		}
		prev = ev.TimeS
	}
	return last
}

// TestStreamColdEndToEnd is the streaming acceptance check: a cold,
// deadline-bound stream:true request yields at least two incumbent
// events before the final event, the final response is byte-identical
// to what a non-streaming request for the same PlanKey returns from a
// fresh engine, and the schedule passes the chunk-replay oracle.
func TestStreamColdEndToEnd(t *testing.T) {
	const workload = `"topology":"a100x16","collective":"allgather","size":"64M","include_schedule":true,"timeout_ms":120000`

	_, ts := newTestServer(t, Options{})
	resp, events := postStream(t, ts.URL, `{`+workload+`,"stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("stream Content-Type %q, want %q", ct, NDJSONContentType)
	}
	final := checkStreamShape(t, events)
	if final.Event != StreamEventFinal {
		t.Fatalf("terminal event is %q: %+v", final.Event, final.Error)
	}
	if n := len(events) - 1; n < 2 {
		t.Fatalf("cold stream published %d incumbent events, want >= 2", n)
	}
	if final.Partial || final.Response.Partial {
		t.Fatalf("generous deadline produced a partial final: %+v", final)
	}
	if final.Response.Schedule == nil {
		t.Fatal("final event missing requested schedule")
	}
	// The last incumbent must be the final response's time.
	if lastInc := events[len(events)-2]; lastInc.TimeS != final.Response.PredictedTimeS {
		t.Fatalf("final time %g != last incumbent %g", final.Response.PredictedTimeS, lastInc.TimeS)
	}

	sched, err := final.Response.Schedule.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	top, err := cli.ParseTopology("a100x16")
	if err != nil {
		t.Fatal(err)
	}
	col, err := cli.BuildCollective("allgather", top.NumGPUs(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckSchedule(col, sched); err != nil {
		t.Fatalf("streamed schedule fails the oracle: %v", err)
	}

	// Byte-identity with the non-streaming path: a fresh server (fresh
	// engine, same PlanKey) must return exactly the same response body
	// modulo the stream framing.
	_, plain := newTestServer(t, Options{})
	presp, praw := postJSON(t, plain.URL, `{`+workload+`}`)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("plain status %d: %s", presp.StatusCode, praw)
	}
	streamed, err := json.Marshal(final.Response)
	if err != nil {
		t.Fatal(err)
	}
	var plainResp SynthesizeResponse
	if err := json.Unmarshal(praw, &plainResp); err != nil {
		t.Fatal(err)
	}
	plainBytes, err := json.Marshal(&plainResp)
	if err != nil {
		t.Fatal(err)
	}
	if string(streamed) != string(plainBytes) {
		t.Fatalf("streamed final differs from non-streaming response:\nstream: %s\nplain:  %s", streamed, plainBytes)
	}
}

// TestStreamWarmSingleFinal: a repeat stream request is served from the
// schedule store as exactly one final event, cached=true, no incumbents.
func TestStreamWarmSingleFinal(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"topology":"dgx4","collective":"allgather","size":"1M"}`
	if resp, raw := postJSON(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d: %s", resp.StatusCode, raw)
	}
	plans := s.Engine().Stats().Plans

	resp, events := postStream(t, ts.URL, `{"topology":"dgx4","collective":"allgather","size":"1M","stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm stream status %d", resp.StatusCode)
	}
	if len(events) != 1 {
		t.Fatalf("warm stream has %d events, want exactly 1 final", len(events))
	}
	final := checkStreamShape(t, events)
	if final.Event != StreamEventFinal || final.Response == nil || !final.Response.Cached {
		t.Fatalf("warm stream final not cached: %+v", final)
	}
	if got := s.Engine().Stats().Plans; got != plans {
		t.Fatalf("warm stream invoked the engine (%d -> %d plans)", plans, got)
	}
}

// TestStreamDeadlinePartialFinal: a stream cut short by its deadline
// still terminates with a final event carrying the best streamed
// incumbent (partial=true), not an error — the streaming upgrade of the
// 206 path. Deadline ladder mirrors TestTinyDeadlinePartial206.
func TestStreamDeadlinePartialFinal(t *testing.T) {
	const workload = `"topology":"a100x16","collective":"allgather","size":"64M"`
	_, cold := newTestServer(t, Options{})
	start := time.Now()
	resp, raw := postJSON(t, cold.URL, `{`+workload+`}`)
	coldTime := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d: %s", resp.StatusCode, raw)
	}
	for _, frac := range []int64{20, 10, 5, 3, 2} {
		budget := coldTime.Milliseconds() / frac
		if budget < 1 {
			budget = 1
		}
		_, ts := newTestServer(t, Options{})
		resp, events := postStream(t, ts.URL,
			fmt.Sprintf(`{%s,"stream":true,"include_schedule":true,"timeout_ms":%d}`, workload, budget))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		final := checkStreamShape(t, events)
		switch {
		case final.Event == StreamEventError:
			// Deadline fired before any candidate; larger budget.
			continue
		case final.Partial:
			if final.Response == nil || !final.Response.Partial {
				t.Fatalf("partial final without partial response: %+v", final)
			}
			if final.Response.ID != "" {
				t.Fatalf("partial streamed result advertised a store id: %+v", final.Response)
			}
			if len(events) < 2 {
				t.Fatal("partial final with no streamed incumbents")
			}
			if final.Response.Schedule == nil {
				t.Fatal("partial final missing requested schedule")
			}
			sched, err := final.Response.Schedule.Schedule()
			if err != nil {
				t.Fatal(err)
			}
			top, _ := cli.ParseTopology("a100x16")
			col, err := cli.BuildCollective("allgather", top.NumGPUs(), 64<<20)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckSchedule(col, sched); err != nil {
				t.Fatalf("partial streamed schedule fails the oracle: %v", err)
			}
			return
		default:
			// Finished inside the budget; shrink further.
			continue
		}
	}
	t.Skip("no deadline in the ladder produced a partial stream on this machine")
}

// TestRetryAfterHint pins the load-derived 429 hint: the base interval
// scales with queued flights per solve slot, floors at one second, and
// admission.load reports the channel occupancy it is derived from.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		base   time.Duration
		queued int
		conc   int
		want   int
	}{
		{time.Second, 0, 4, 1},
		{time.Second, 4, 4, 2},
		{time.Second, 6, 4, 3}, // ceil(1 * 2.5)
		{time.Second, 40, 4, 11},
		{500 * time.Millisecond, 0, 4, 1}, // floor
		{2 * time.Second, 3, 2, 5},        // ceil(2 * 2.5)
		{time.Second, 5, 0, 6},            // conc clamped to 1
	}
	for _, c := range cases {
		if got := retryAfterHint(c.base, c.queued, c.conc); got != c.want {
			t.Errorf("retryAfterHint(%v, %d, %d) = %d, want %d", c.base, c.queued, c.conc, got, c.want)
		}
	}

	a := newAdmission(2, 4)
	if r, q := a.load(); r != 0 || q != 0 {
		t.Fatalf("fresh admission load = (%d,%d)", r, q)
	}
	ctx := t.Context()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if r, _ := a.load(); r != 2 {
		t.Fatalf("running = %d, want 2", r)
	}
	a.release()
	a.release()
	if r, q := a.load(); r != 0 || q != 0 {
		t.Fatalf("drained admission load = (%d,%d)", r, q)
	}
	if r, q := newAdmission(0, 0).load(); r != 0 || q != 0 {
		t.Fatalf("disabled admission load = (%d,%d)", r, q)
	}
}
