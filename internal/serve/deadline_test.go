package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"syccl/internal/cli"
	"syccl/internal/verify"
)

// TestTinyDeadlinePartial206: a request whose deadline is a fraction of
// the cold synthesis time comes back as HTTP 206 with partial=true, and
// the anytime schedule it carries still passes the chunk-replay oracle.
// The deadline ladder adapts to machine speed: we first measure the cold
// time, then shrink the budget until the pipeline is genuinely cut short.
func TestTinyDeadlinePartial206(t *testing.T) {
	const workload = `"topology":"a100x16","collective":"allgather","size":"64M"`

	// Measure the full pipeline on a throwaway server.
	_, cold := newTestServer(t, Options{})
	start := time.Now()
	resp, raw := postJSON(t, cold.URL, fmt.Sprintf(`{%s}`, workload))
	coldTime := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d: %s", resp.StatusCode, raw)
	}

	for _, frac := range []int64{20, 10, 5, 3, 2} {
		budget := coldTime.Milliseconds() / frac
		if budget < 1 {
			budget = 1
		}
		// Fresh server+engine per attempt: the deadline must race the
		// full cold pipeline, not a warm cache.
		_, ts := newTestServer(t, Options{})
		body := fmt.Sprintf(`{%s,"timeout_ms":%d,"include_schedule":true}`, workload, budget)
		resp, raw := postJSON(t, ts.URL, body)
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			// Deadline fired before any candidate validated; try a
			// larger budget.
			continue
		case http.StatusPartialContent:
			var sr SynthesizeResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				t.Fatal(err)
			}
			if !sr.Partial {
				t.Fatalf("206 without partial=true: %s", raw)
			}
			if sr.ID != "" {
				t.Fatalf("partial result advertised a store id: %s", raw)
			}
			if sr.Schedule == nil {
				t.Fatal("partial response missing requested schedule")
			}
			sched, err := sr.Schedule.Schedule()
			if err != nil {
				t.Fatal(err)
			}
			top, _ := cli.ParseTopology("a100x16")
			col, err := cli.BuildCollective("allgather", top.NumGPUs(), 64<<20)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckSchedule(col, sched); err != nil {
				t.Fatalf("partial schedule fails the oracle: %v", err)
			}
			return
		case http.StatusOK:
			// Budget was generous enough to finish; shrink further.
			continue
		default:
			t.Fatalf("deadline run: unexpected status %d: %s", resp.StatusCode, raw)
		}
	}
	// Every budget either finished or died before the first candidate —
	// the anytime window never opened at this machine's speed. The
	// anytime mechanics themselves are pinned deterministically by
	// engine.TestPlanAnytimeInvariant; this wall-clock probe is best
	// effort on top.
	t.Skip("no deadline in the ladder produced a Partial result on this machine")
}

// TestPartialNotStored: a deadline-cut result must not poison the warm
// path — the same request with no deadline afterwards is a full 200 that
// does real work or hits engine caches, never the stored partial.
func TestPartialNotStored(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Tiny budget: either 206 (partial) or 504 (nothing yet); in both
	// cases nothing may land in the store.
	resp, _ := postJSON(t, ts.URL, `{"topology":"a100x16","collective":"allgather","size":"64M","timeout_ms":1}`)
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusGatewayTimeout {
		if resp.StatusCode == http.StatusOK {
			t.Skip("1ms budget completed the pipeline; machine too fast for this probe")
		}
		t.Fatalf("unexpected status %d", resp.StatusCode)
	}
	resp, raw := postJSON(t, ts.URL, `{"topology":"a100x16","collective":"allgather","size":"64M"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up full run: %d: %s", resp.StatusCode, raw)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached || sr.Partial {
		t.Fatalf("full run after a partial was served from the store: %+v", sr)
	}
}

// TestCancelledClientNeverPopulatesCaches extends PR 4's cancellation
// invariant to the HTTP layer: when the only client of a flight
// disconnects, the flight is cancelled, nothing is stored, and the
// engine caches stay cold — the next identical request has to solve
// from scratch.
func TestCancelledClientNeverPopulatesCaches(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"topology":"a100x16","collective":"allgather","size":"64M"}`

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/synthesize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Cancel once the engine is genuinely mid-plan.
	waitFor(t, 30*time.Second, "plan to start", func() bool { return s.Engine().Stats().Plans >= 1 })
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled client request reported success")
	}
	// Wait for the abandoned flight to unwind.
	waitFor(t, 30*time.Second, "flight teardown", func() bool { return s.Stats().Server.Flights == 0 })

	if st := s.Engine().Stats(); st.Cancelled < 1 {
		t.Fatalf("engine never saw the cancellation: %+v", st)
	}
	if n := s.store.len(); n != 0 {
		t.Fatalf("cancelled request left %d stored schedules", n)
	}

	// The identical request must now be a genuinely cold solve: engine
	// invoked again, real solver work, no store hit.
	resp, raw := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up: %d: %s", resp.StatusCode, raw)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached {
		t.Fatal("follow-up request was served from the store after a cancelled flight")
	}
	if sr.SolverCalls == 0 {
		t.Fatal("follow-up request did zero solver work: the cancelled plan populated the engine caches")
	}
}
