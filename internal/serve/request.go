package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"syccl/internal/cli"
	"syccl/internal/collective"
	"syccl/internal/core"
	"syccl/internal/engine"
	"syccl/internal/sketch"
	"syccl/internal/topology"
)

// Request is the body of POST /v1/synthesize. Topology, collective, and
// size use the same specs as the command-line tools (cli.ParseTopology /
// cli.BuildCollective / cli.ParseSize); everything else is optional and
// defaults to the server's configuration.
type Request struct {
	// Topology is a topology spec such as "dgx4", "server8", "a100x16".
	Topology string `json:"topology"`
	// Collective is a collective kind such as "allgather" or "alltoall".
	Collective string `json:"collective"`
	// Size is the aggregate data size, e.g. "64M", "1G", "1048576".
	Size string `json:"size"`
	// TimeoutMS caps synthesis wall time in milliseconds. On expiry the
	// best schedule found so far is returned with HTTP 206 and
	// partial=true. 0 (or absent) uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// E1/E2 override the coarse/fine epoch knobs (0 = paper defaults).
	E1 float64 `json:"e1,omitempty"`
	E2 float64 `json:"e2,omitempty"`
	// Workers bounds synthesis parallelism (0 = server default). Worker
	// count never changes the schedule, so it is excluded from the
	// coalescing key.
	Workers int `json:"workers,omitempty"`
	// Seed drives randomized pipeline components.
	Seed int64 `json:"seed,omitempty"`
	// IncludeSchedule asks for the full transfer list in the response
	// (it is always available later via GET /v1/schedule/{id}).
	IncludeSchedule bool `json:"include_schedule,omitempty"`
	// BypassStore skips the served-result store so the request always
	// reaches the engine (it still coalesces with identical in-flight
	// requests and still warms the engine caches). Load tests use this
	// to measure the engine-warm rather than the store-hit path.
	BypassStore bool `json:"bypass_store,omitempty"`
	// SketchHint constrains the sketch search with a TACCL-style hint
	// spec, e.g. "dims=1,0;sizes=4,2;family=tree" (see sketch.ParseHint).
	// Hinted requests never share cache entries or flights with unhinted
	// ones.
	SketchHint string `json:"sketch_hint,omitempty"`
	// Stream switches the response to application/x-ndjson: one
	// "incumbent" event per improving schedule as synthesis runs,
	// terminated by a "final" event carrying the SynthesizeResponse (or
	// an "error" event). Streaming responses are always HTTP 200; late
	// failures arrive as the terminal event.
	Stream bool `json:"stream,omitempty"`
	// StopWithinPct, when positive, stops synthesis at the coarse/fine
	// boundary once the incumbent is within this percentage of its flow
	// lower bound (e.g. 5 = accept anything within 5% of provably
	// optimal). Range [0,100].
	StopWithinPct float64 `json:"stop_within_pct,omitempty"`
	// TopologyDelta degrades the topology before synthesis using the
	// delta spec syntax of topology.ParseDelta — comma-separated
	// "kill:A-B" (fail link), "node:N" (fail a non-GPU node),
	// "slow:A-B*F" (scale link β) and "lag:A-B*F" (scale link α) terms,
	// node IDs as in the base topology. The schedule is synthesized,
	// keyed, and stored against the degraded fabric; POST /v1/replan
	// additionally runs selective cache invalidation first.
	TopologyDelta string `json:"topology_delta,omitempty"`
}

// Error codes returned in the structured error body.
const (
	CodeBadRequest    = "bad_request"
	CodeBadTopology   = "bad_topology"
	CodeBadCollective = "bad_collective"
	CodeBadSize       = "bad_size"
	CodeBadHint       = "bad_hint"
	CodeBadDelta      = "bad_delta"
	CodeBodyTooLarge  = "body_too_large"
	CodeQueueFull     = "queue_full"
	CodeDraining      = "draining"
	CodeDeadline      = "deadline"
	CodeNotFound      = "not_found"
	CodeInternal      = "internal"
)

// APIError is a structured error: it renders as
// {"error":{"code":...,"message":...}} with the given HTTP status.
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func apiErrorf(status int, code, format string, args ...interface{}) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// DecodeRequest reads and validates a synthesize request body of at most
// maxBytes bytes. It is strict: unknown fields, trailing garbage, and
// out-of-range values are structured 400s, and oversized bodies are 413s.
// The decoder never panics on arbitrary input (FuzzDecodeRequest).
func DecodeRequest(r io.Reader, maxBytes int64) (*Request, *APIError) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	lr := &io.LimitedReader{R: r, N: maxBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	req := &Request{}
	if err := dec.Decode(req); err != nil {
		if lr.N <= 0 {
			return nil, apiErrorf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds %d bytes", maxBytes)
		}
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "malformed JSON body: %v", err)
	}
	// Reject trailing non-whitespace after the JSON object.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		if lr.N <= 0 {
			return nil, apiErrorf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds %d bytes", maxBytes)
		}
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
	}
	if strings.TrimSpace(req.Topology) == "" {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "missing required field %q", "topology")
	}
	if strings.TrimSpace(req.Collective) == "" {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "missing required field %q", "collective")
	}
	if strings.TrimSpace(req.Size) == "" {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "missing required field %q", "size")
	}
	if req.TimeoutMS < 0 {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	if req.E1 < 0 || req.E2 < 0 {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "e1/e2 must be >= 0")
	}
	if req.Workers < 0 || req.Workers > 4096 {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "workers must be in [0,4096], got %d", req.Workers)
	}
	if req.StopWithinPct < 0 || req.StopWithinPct > 100 {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"stop_within_pct must be in [0,100], got %g", req.StopWithinPct)
	}
	// The hint's syntax is validated here so malformed specs fail fast
	// with a structured code; topology-dependent checks (dimension range)
	// happen in resolve once the topology is known.
	if _, err := sketch.ParseHint(req.SketchHint); err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadHint, "%v", err)
	}
	// Same split for the delta: syntax here (FuzzDecodeDelta pins that
	// the parser never panics), feasibility against the topology in
	// resolve. An absent/blank delta means "healthy topology".
	if strings.TrimSpace(req.TopologyDelta) != "" {
		if _, err := topology.ParseDelta(req.TopologyDelta); err != nil {
			return nil, apiErrorf(http.StatusBadRequest, CodeBadDelta, "%v", err)
		}
	}
	return req, nil
}

// resolved is a fully validated, default-filled request: concrete
// topology and collective plus the normalized core options that the
// engine will run with. The coalescing key is derived from this form so
// that spelled-out defaults and omitted fields coalesce.
type resolved struct {
	req *Request
	// top is the topology synthesis runs on: the base topology, or the
	// degraded one when the request carries a topology_delta. base and
	// delta keep the un-degraded inputs for the /v1/replan fast path.
	top     *topology.Topology
	base    *topology.Topology
	delta   *topology.Delta
	col     *collective.Collective
	opts    core.Options
	timeout time.Duration
	key     string
	id      string
}

// resolve maps request specs onto concrete objects, surfacing each
// failure as its own structured 400 code.
func (s *Server) resolve(req *Request) (*resolved, *APIError) {
	top, err := cli.ParseTopology(req.Topology)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadTopology, "%v", err)
	}
	base := top
	var delta *topology.Delta
	if strings.TrimSpace(req.TopologyDelta) != "" {
		delta, err = topology.ParseDelta(req.TopologyDelta)
		if err != nil {
			return nil, apiErrorf(http.StatusBadRequest, CodeBadDelta, "%v", err)
		}
	}
	if !delta.Empty() {
		// Applying the delta up front makes the degraded fingerprint part
		// of PlanKey, so degraded and healthy requests never share a
		// flight, store entry, or schedule ID.
		top, err = delta.Apply(base)
		if err != nil {
			return nil, apiErrorf(http.StatusBadRequest, CodeBadDelta, "%v", err)
		}
	}
	size, err := cli.ParseSize(req.Size)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadSize, "%v", err)
	}
	col, err := cli.BuildCollective(req.Collective, top.NumGPUs(), size)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadCollective, "%v", err)
	}
	opts := core.Options{
		E1:      req.E1,
		E2:      req.E2,
		Workers: req.Workers,
		Seed:    req.Seed,
	}
	// Normalize so that "absent" and "explicit default" key identically.
	if opts.E1 <= 0 {
		opts.E1 = 3.0
	}
	if opts.E2 <= 0 {
		opts.E2 = 0.5
	}
	if opts.Workers <= 0 {
		opts.Workers = s.opts.DefaultWorkers
	}
	// The hint re-parses into its canonical *sketch.Hint, so two
	// spellings of the same hint coalesce (PlanKey embeds the canonical
	// form). Syntax was already checked in DecodeRequest; the dimension
	// range check needs the topology.
	hint, err := sketch.ParseHint(req.SketchHint)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadHint, "%v", err)
	}
	if err := hint.Validate(top.NumDims()); err != nil {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadHint, "%v", err)
	}
	opts.Hint = hint
	opts.StopWithin = req.StopWithinPct / 100
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	r := &resolved{req: req, top: top, base: base, delta: delta, col: col, opts: opts, timeout: timeout}
	// The timeout participates in the key: two identical demands with
	// different deadlines must not share a flight, or the longer request
	// would inherit the shorter one's (possibly Partial) result.
	r.key = fmt.Sprintf("%s|to=%d|bypass=%t", engine.PlanKey(top, col, opts), timeout, req.BypassStore)
	r.id = scheduleID(engine.PlanKey(top, col, opts))
	return r, nil
}

var errClientGone = errors.New("serve: client disconnected")
