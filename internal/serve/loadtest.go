package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"syccl/internal/obs"
)

// LoadConfig drives RunLoad, the in-repo load generator behind
// scripts/loadtest.sh.
type LoadConfig struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Topology/Collective/Size describe the workload (defaults: dgx4
	// allgather 1M).
	Topology   string
	Collective string
	Size       string
	// Cold is how many distinct-demand requests to issue (each with its
	// own seed, so every one is a genuine full synthesis when the daemon
	// is fresh). Warm is how many duplicates of one fixed demand to
	// issue afterwards — after the first, all of them should be served
	// from the store or coalesced.
	Cold, Warm int
	// Concurrency is the number of client goroutines per phase.
	Concurrency int
	// TimeoutMS is forwarded to each request (0 = server default).
	TimeoutMS int64
	// Stream is how many stream:true requests to issue against distinct
	// cold demands, measuring each one's time to first incumbent event
	// (0 = skip the streaming phase).
	Stream int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Topology == "" {
		c.Topology = "dgx4"
	}
	if c.Collective == "" {
		c.Collective = "allgather"
	}
	if c.Size == "" {
		c.Size = "1M"
	}
	if c.Cold <= 0 {
		c.Cold = 16
	}
	if c.Warm <= 0 {
		c.Warm = 128
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	return c
}

// HistogramStats are the percentiles estimated from an obs.Histogram
// over the phase's latencies — the same fixed-bucket estimator the
// daemon's /metrics histograms use, so the loadtest's numbers and a
// Prometheus histogram_quantile over syccl_request_duration_seconds
// agree on methodology.
type HistogramStats struct {
	P50us  float64 `json:"p50_us"`
	P90us  float64 `json:"p90_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	Count  uint64  `json:"count"`
}

// LatencyStats summarizes one phase's request latencies. P50us/P99us
// are exact (sorted-sample interpolation); Hist carries the full
// bucket-estimated percentile set including the p999 tail.
type LatencyStats struct {
	Count  int            `json:"count"`
	P50us  float64        `json:"p50_us"`
	P99us  float64        `json:"p99_us"`
	MeanUS float64        `json:"mean_us"`
	MaxUS  float64        `json:"max_us"`
	Hist   HistogramStats `json:"hist"`
}

// LoadReport is what scripts/loadtest.sh records to BENCH_serve.json.
type LoadReport struct {
	Workload string       `json:"workload"`
	Cold     LatencyStats `json:"cold"`
	Warm     LatencyStats `json:"warm"`
	// TTFI is the time-to-first-incumbent distribution over the streaming
	// phase: how long a stream:true client waits before the first NDJSON
	// event arrives. Zero-valued when the phase was skipped.
	TTFI LatencyStats `json:"ttfi"`
	// WarmSpeedup is cold p50 over warm p50.
	WarmSpeedup float64 `json:"warm_speedup_p50"`
	// CoalescingHitRate is (coalesced + store hits) / requests over the
	// whole run, read from /statsz.
	CoalescingHitRate float64       `json:"coalescing_hit_rate"`
	Errors            int           `json:"errors"`
	Stats             StatsSnapshot `json:"stats"`
}

// RunLoad drives mixed cold/warm traffic at a running daemon and
// summarizes latency percentiles and coalescing behavior.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{}

	body := func(seed int64) string {
		return fmt.Sprintf(`{"topology":%q,"collective":%q,"size":%q,"seed":%d,"timeout_ms":%d}`,
			cfg.Topology, cfg.Collective, cfg.Size, seed, cfg.TimeoutMS)
	}

	run := func(n int, seedFor func(i int) int64) ([]float64, int, error) {
		lats := make([]float64, n)
		errCount := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Concurrency)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				resp, err := client.Post(cfg.BaseURL+"/v1/synthesize", "application/json",
					bytes.NewReader([]byte(body(seedFor(i)))))
				lat := float64(time.Since(start).Microseconds())
				ok := err == nil && (resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				mu.Lock()
				lats[i] = lat
				if !ok {
					errCount++
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		return lats, errCount, nil
	}

	// Streaming phase: fresh demands (seeds past the cold phase's), each
	// timed to its first NDJSON event — the anytime latency a streaming
	// client experiences before any schedule is visible.
	runStream := func(n int) ([]float64, int) {
		ttfis := make([]float64, 0, n)
		errCount := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Concurrency)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				b := fmt.Sprintf(`{"topology":%q,"collective":%q,"size":%q,"seed":%d,"timeout_ms":%d,"stream":true}`,
					cfg.Topology, cfg.Collective, cfg.Size, int64(cfg.Cold+i+1), cfg.TimeoutMS)
				start := time.Now()
				resp, err := client.Post(cfg.BaseURL+"/v1/synthesize", "application/json",
					bytes.NewReader([]byte(b)))
				if err != nil {
					mu.Lock()
					errCount++
					mu.Unlock()
					return
				}
				br := bufio.NewReader(resp.Body)
				_, rerr := br.ReadBytes('\n')
				ttfi := float64(time.Since(start).Microseconds())
				io.Copy(io.Discard, br)
				resp.Body.Close()
				mu.Lock()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					errCount++
				} else {
					ttfis = append(ttfis, ttfi)
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		return ttfis, errCount
	}

	// Cold phase: every request is a distinct demand (seed i+1).
	coldLats, coldErrs, err := run(cfg.Cold, func(i int) int64 { return int64(i + 1) })
	if err != nil {
		return nil, err
	}
	ttfiLats, streamErrs := runStream(cfg.Stream)
	// Warm phase: one fixed demand, repeated.
	warmLats, warmErrs, err := run(cfg.Warm, func(int) int64 { return 0 })
	if err != nil {
		return nil, err
	}

	var snap StatsSnapshot
	resp, err := client.Get(cfg.BaseURL + "/statsz")
	if err != nil {
		return nil, fmt.Errorf("statsz: %w", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("statsz decode: %w", err)
	}

	report := &LoadReport{
		Workload: fmt.Sprintf("%s %s %s (cold=%d stream=%d warm=%d conc=%d)",
			cfg.Collective, cfg.Size, cfg.Topology, cfg.Cold, cfg.Stream, cfg.Warm, cfg.Concurrency),
		Cold:   summarize(coldLats),
		Warm:   summarize(warmLats),
		TTFI:   summarize(ttfiLats),
		Errors: coldErrs + streamErrs + warmErrs,
		Stats:  snap,
	}
	if report.Warm.P50us > 0 {
		report.WarmSpeedup = report.Cold.P50us / report.Warm.P50us
	}
	if snap.Server.Requests > 0 {
		report.CoalescingHitRate = float64(snap.Server.Coalesced+snap.Server.StoreHits) / float64(snap.Server.Requests)
	}
	return report, nil
}

// summarize computes latency percentiles over a copy of lats (given in
// microseconds).
func summarize(lats []float64) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	s := append([]float64(nil), lats...)
	sort.Float64s(s)
	var sum float64
	h := obs.NewHistogram(obs.LatencyBuckets)
	for _, v := range s {
		sum += v
		h.Observe(v / 1e6) // the shared buckets are in seconds
	}
	return LatencyStats{
		Count:  len(s),
		P50us:  percentile(s, 0.50),
		P99us:  percentile(s, 0.99),
		MeanUS: sum / float64(len(s)),
		MaxUS:  s[len(s)-1],
		Hist: HistogramStats{
			P50us:  h.Quantile(0.50) * 1e6,
			P90us:  h.Quantile(0.90) * 1e6,
			P99us:  h.Quantile(0.99) * 1e6,
			P999us: h.Quantile(0.999) * 1e6,
			Count:  h.Count(),
		},
	}
}

// percentile interpolates the p-quantile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
