package serve

import (
	"context"
	"testing"
	"time"
)

func contextWithTimeout(t *testing.T, d time.Duration) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), d)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
