package serve

import (
	"container/list"
	"sync"

	"syccl/internal/schedule"
)

// storeEntry is one served result retained for GET /v1/schedule/{id}.
type storeEntry struct {
	id    string
	resp  SynthesizeResponse // base response (no per-request flags)
	sched *schedule.Schedule
	elem  *list.Element
}

// scheduleStore is the LRU of completed results, keyed by schedule id.
// Partial results are never stored: a warm hit must always be the full
// pipeline's answer, not whatever a tight deadline happened to salvage.
type scheduleStore struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	lru     *list.List // front = most recently used
	cap     int
}

func newScheduleStore(cap int) *scheduleStore {
	if cap <= 0 {
		cap = DefaultStoreEntries
	}
	return &scheduleStore{entries: make(map[string]*storeEntry), lru: list.New(), cap: cap}
}

func (st *scheduleStore) get(id string) (*storeEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ent, ok := st.entries[id]
	if !ok {
		return nil, false
	}
	st.lru.MoveToFront(ent.elem)
	return ent, true
}

// put inserts a result; the first write for an id wins so stored results
// stay stable under concurrent duplicate solves. It reports how many
// entries were evicted to make room.
func (st *scheduleStore) put(id string, resp SynthesizeResponse, sched *schedule.Schedule) (evicted int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ent, ok := st.entries[id]; ok {
		st.lru.MoveToFront(ent.elem)
		return 0
	}
	ent := &storeEntry{id: id, resp: resp, sched: sched.Clone()}
	ent.elem = st.lru.PushFront(ent)
	st.entries[id] = ent
	for st.lru.Len() > st.cap {
		back := st.lru.Back()
		victim := back.Value.(*storeEntry)
		st.lru.Remove(back)
		delete(st.entries, victim.id)
		evicted++
	}
	return evicted
}

func (st *scheduleStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

// export snapshots the entries oldest-first, so a restore that put()s
// them in order reproduces the LRU recency order. The returned entries
// alias the live schedules; callers only read them.
func (st *scheduleStore) export() []*storeEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*storeEntry, 0, st.lru.Len())
	for e := st.lru.Back(); e != nil; e = e.Prev() {
		out = append(out, e.Value.(*storeEntry))
	}
	return out
}
