package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestCoalescing64 is the single-flight acceptance check: 64 concurrent
// identical cold requests must trigger exactly one engine plan. Every
// request gets a full 200, and each is either the leader, a coalesced
// waiter on the flight, or a store hit if it arrived after the flight
// finished.
func TestCoalescing64(t *testing.T) {
	s, ts := newTestServer(t, Options{Concurrency: 2})
	const n = 64
	body := `{"topology":"server8","collective":"allgather","size":"4M"}`

	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]SynthesizeResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if plans := s.Engine().Stats().Plans; plans != 1 {
		t.Fatalf("64 identical concurrent requests made %d engine plans, want exactly 1", plans)
	}
	var leaders, coalesced, cached int
	for _, r := range results {
		switch {
		case r.Cached:
			cached++
		case r.Coalesced:
			coalesced++
		default:
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders=%d coalesced=%d cached=%d, want exactly one leader", leaders, coalesced, cached)
	}
	if st := s.Stats().Server; st.Requests != n {
		t.Fatalf("requests counter = %d, want %d", st.Requests, n)
	}
	// All responses share the one solve's answer.
	for i, r := range results {
		if r.PredictedTimeS != results[0].PredictedTimeS || r.ID != results[0].ID {
			t.Fatalf("response %d diverged from the shared flight: %+v vs %+v", i, r, results[0])
		}
	}
}

// TestAdmissionQueue unit-tests the backpressure valve: slots fill,
// the queue bounds waiters, and overflow fails fast with errQueueFull.
func TestAdmissionQueue(t *testing.T) {
	a := newAdmission(1, 1)
	ctx, cancel := contextWithTimeout(t, 5*time.Second)
	defer cancel()

	if err := a.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second acquire queues; third overflows while the queue is occupied.
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx) }()
	waitFor(t, 2*time.Second, "waiter to enter the queue", func() bool { return len(a.queue) == 1 })
	if err := a.acquire(ctx); err != errQueueFull {
		t.Fatalf("overflow acquire = %v, want errQueueFull", err)
	}
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release()

	// An abandoned queued flight leaves the queue via its context.
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	qctx, qcancel := contextWithTimeout(t, time.Hour)
	go func() { queued <- a.acquire(qctx) }()
	waitFor(t, 2*time.Second, "waiter to queue", func() bool { return len(a.queue) == 1 })
	qcancel()
	if err := <-queued; err == nil || err == errQueueFull {
		t.Fatalf("cancelled queued acquire = %v, want context error", err)
	}
	if len(a.queue) != 0 {
		t.Fatal("cancelled waiter left a queue token behind")
	}
}

// TestQueueFull429 drives saturation end to end: with the single solve
// slot held and the one queue seat occupied by a live flight, the next
// distinct request is rejected with 429 and a Retry-After hint. The test
// itself holds the slot, so saturation does not depend on solve speed.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Options{Concurrency: 1, QueueDepth: 1})
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatalf("holding the solve slot: %v", err)
	}
	type res struct {
		status int
		err    error
	}
	queued := make(chan res, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json",
			strings.NewReader(`{"topology":"server8","collective":"allgather","size":"4M","seed":1}`))
		if err != nil {
			queued <- res{err: err}
			return
		}
		resp.Body.Close()
		queued <- res{status: resp.StatusCode}
	}()
	waitFor(t, 10*time.Second, "flight to occupy the queue seat", func() bool {
		return len(s.adm.queue) == 1
	})

	resp, raw := postJSON(t, ts.URL, `{"topology":"server8","collective":"allgather","size":"4M","seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeQueueFull {
		t.Fatalf("429 body not structured queue_full: %s", raw)
	}
	if got := s.Stats().Server.QueueRejections; got != 1 {
		t.Fatalf("queue rejections = %d, want 1", got)
	}

	// Free the slot: the queued flight proceeds and completes normally —
	// backpressure delayed it but lost nothing.
	s.adm.release()
	r := <-queued
	if r.err != nil {
		t.Fatalf("queued request errored at transport level: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("queued request got %d after the slot freed, want 200", r.status)
	}
}

// TestSigtermDrainZeroLoss is the graceful-shutdown acceptance check:
// requests accepted before SIGTERM all complete with valid responses,
// requests after it are refused with 503, and the drain channel closes.
func TestSigtermDrainZeroLoss(t *testing.T) {
	s, ts := newTestServer(t, Options{Concurrency: 1, QueueDepth: 8})
	done := s.DrainOnSignal(nil, 30*time.Second, syscall.SIGUSR1)

	// Hold the only solve slot so every accepted request is still in
	// flight — blocked in admission — when the signal lands. Without
	// this the solves are fast enough to finish before delivery.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatalf("holding the solve slot: %v", err)
	}
	const n = 6
	var wg sync.WaitGroup
	statuses := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: each is a genuine cold solve.
			body := fmt.Sprintf(`{"topology":"server8","collective":"allgather","size":"4M","seed":%d}`, i+1)
			resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Wait until every request is accepted (inside the handler), then
	// deliver the signal mid-flight.
	waitFor(t, 20*time.Second, "all requests accepted", func() bool { return s.InFlight() >= n })
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	// Only release the solve slot once the drain is underway, so the
	// accepted requests genuinely complete during the drain window.
	waitFor(t, 10*time.Second, "draining flag", func() bool { return s.Draining() })
	s.adm.release()
	wg.Wait()

	for i := range statuses {
		if errs[i] != nil {
			t.Fatalf("accepted request %d lost at transport level: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK && statuses[i] != http.StatusPartialContent {
			t.Fatalf("accepted request %d got %d, want 200/206", i, statuses[i])
		}
	}

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	if !s.Draining() {
		t.Fatal("server not marked draining after signal")
	}
	if resp, _ := postJSON(t, ts.URL, `{"topology":"dgx4","collective":"allgather","size":"1M"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503", resp.StatusCode)
	}
}

// TestForcedDrainCancelsIntoResponses: when the drain deadline expires
// before in-flight solves finish, they are cancelled into anytime
// responses — the client still hears back (206 Partial or a structured
// deadline error), never silence.
func TestForcedDrainCancelsIntoResponses(t *testing.T) {
	s, ts := newTestServer(t, Options{Concurrency: 2})
	status := make(chan int, 1)
	tErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json",
			strings.NewReader(`{"topology":"a100x32","collective":"alltoall","size":"1G"}`))
		if err != nil {
			tErr <- err
			return
		}
		resp.Body.Close()
		tErr <- nil
		status <- resp.StatusCode
	}()
	waitFor(t, 30*time.Second, "slow solve to start", func() bool { return s.Engine().Stats().Plans >= 1 })

	ctx, cancel := contextWithTimeout(t, 0)
	cancel()
	start := time.Now()
	s.Drain(ctx)
	if err := <-tErr; err != nil {
		t.Fatalf("in-flight request lost: %v", err)
	}
	st := <-status
	if st != http.StatusPartialContent && st != http.StatusGatewayTimeout {
		t.Fatalf("forced drain returned %d, want 206 or 504", st)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("forced drain took %v", d)
	}
}
