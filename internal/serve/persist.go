package serve

// Persist wiring: the serving layer's half of the disk-backed plan
// store. The engine half (write-through solve entries) lives in
// internal/engine; this file handles the schedule store — the
// request-level result cache — which is flushed to a named persist
// snapshot and restored before the listener comes up, so a rebooted
// daemon answers previously served requests from the store
// (cache="store") with zero solver work. It also runs the background
// prewarmer that sweeps a configured request grid during idle capacity.

import (
	"context"
	"encoding/json"
	"strings"
	"time"

	"syccl/internal/cli"
	"syccl/internal/core"
	"syccl/internal/metrics"
	"syccl/internal/verify"
)

// scheduleStoreSnapshot names the persist snapshot holding the schedule
// store image.
const scheduleStoreSnapshot = "schedule-store"

// snapshotVersion versions the JSON image inside the (already
// container-versioned) snapshot. Bump on incompatible field changes; a
// mismatched image is ignored, which degrades to a cold boot.
const snapshotVersion = 1

// snapEntry is one stored result in the snapshot image.
type snapEntry struct {
	ID       string             `json:"id"`
	Resp     SynthesizeResponse `json:"resp"`
	Schedule *ScheduleJSON      `json:"schedule"`
}

// snapImage is the schedule-store snapshot payload: entries are ordered
// oldest-first so restoring in order reproduces LRU recency.
type snapImage struct {
	Version int         `json:"version"`
	Entries []snapEntry `json:"entries"`
}

// SnapshotNow flushes the current schedule store to the persist
// snapshot (latest wins). No-op without a persist store. Called
// periodically by the snapshot loop and once at the end of Drain.
func (s *Server) SnapshotNow() error {
	if s.persist == nil {
		return nil
	}
	img := snapImage{Version: snapshotVersion}
	for _, ent := range s.store.export() {
		img.Entries = append(img.Entries, snapEntry{
			ID:       ent.id,
			Resp:     ent.resp,
			Schedule: ToScheduleJSON(ent.sched),
		})
	}
	payload, err := json.Marshal(img)
	if err != nil {
		return err
	}
	return s.persist.SaveSnapshot(scheduleStoreSnapshot, payload)
}

// restoreScheduleStore loads the snapshot into the schedule store at
// boot. Restoration is defensive on top of the container checksum: an
// unreadable image, a version mismatch, or any individual entry that is
// malformed, partial, or fails the chunk-replay oracle is skipped — a
// damaged snapshot degrades to a (partially) cold boot, never to a bad
// stored schedule.
func (s *Server) restoreScheduleStore() {
	payload, ok := s.persist.LoadSnapshot(scheduleStoreSnapshot)
	if !ok {
		return
	}
	var img snapImage
	if err := json.Unmarshal(payload, &img); err != nil || img.Version != snapshotVersion {
		return
	}
	for _, ent := range img.Entries {
		if ent.ID == "" || ent.Resp.Partial || ent.Schedule == nil {
			continue
		}
		sched, err := ent.Schedule.Schedule()
		if err != nil {
			continue
		}
		col, err := cli.BuildCollective(strings.ToLower(ent.Resp.Collective), ent.Resp.NumGPUs, ent.Resp.SizeBytes)
		if err != nil || verify.CheckSchedule(col, sched) != nil {
			continue
		}
		resp := ent.Resp
		resp.Schedule = nil
		resp.Coalesced = false
		resp.Cached = false
		s.store.put(ent.ID, resp, sched)
		s.restored.Add(1)
	}
}

// snapshotLoop flushes the schedule store every interval until the
// server starts draining (Drain takes a final snapshot itself).
func (s *Server) snapshotLoop(ctx context.Context, interval time.Duration) {
	defer s.bgFlight.Add(-1)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = s.SnapshotNow()
		}
	}
}

// prewarmLoop sweeps the configured request grid in the background:
// each spec is resolved and planned exactly as an API request would be,
// and the result lands in the schedule store (and, transitively, the
// engine's memory and disk tiers). The sweep uses idle capacity only —
// it waits out in-flight API requests between items and goes through
// admission like everyone else — and stops when the server drains.
func (s *Server) prewarmLoop(ctx context.Context) {
	defer s.bgFlight.Add(-1)
	for i := range s.opts.Prewarm {
		// Idle capacity only: API traffic always wins.
		for s.inFlight.Load() > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		if ctx.Err() != nil {
			return
		}
		s.prewarmOne(ctx, &s.opts.Prewarm[i])
	}
}

func (s *Server) prewarmOne(ctx context.Context, req *Request) {
	res, aerr := s.resolve(req)
	if aerr != nil {
		s.met.prewarm.With("error").Inc()
		return
	}
	if _, ok := s.store.get(res.id); ok {
		s.met.prewarm.With("skipped").Inc()
		return
	}
	if err := s.adm.acquire(ctx); err != nil {
		s.met.prewarm.With("error").Inc()
		return
	}
	defer s.adm.release()
	pctx := ctx
	if res.timeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, res.timeout)
		defer cancel()
	}
	result, err := s.eng.Plan(pctx, res.top, res.col, res.opts)
	if err != nil || result.Partial {
		// Partial results never enter the store (same rule as runFlight);
		// a drain-cancelled prewarm lands here and is simply dropped.
		s.met.prewarm.With("error").Inc()
		return
	}
	s.store.put(res.id, s.buildResponse(res, result), result.Schedule)
	s.prewarmed.Add(1)
	s.met.prewarm.With("planned").Inc()
}

// PrewarmGrid expands a topology × collective × size grid into the
// request list for Options.Prewarm, in sweep order (topology-major, so
// each topology's engine state warms before the next is touched).
func PrewarmGrid(topologies, collectives, sizes []string) []Request {
	var out []Request
	for _, top := range topologies {
		for _, col := range collectives {
			for _, size := range sizes {
				out = append(out, Request{Topology: top, Collective: col, Size: size})
			}
		}
	}
	return out
}

// buildResponse assembles the base (per-request-flag-free) response for
// a completed plan; runFlight and the prewarmer share it so stored
// results are identical whichever path produced them.
func (s *Server) buildResponse(res *resolved, result *core.Result) SynthesizeResponse {
	col := res.col
	bus := metrics.BusBandwidth(col.Kind, col.NumGPUs, metrics.DataBytes(col), result.Time)
	return SynthesizeResponse{
		ID:             res.id,
		Topology:       strings.ToLower(res.req.Topology),
		Collective:     col.Kind.String(),
		NumGPUs:        col.NumGPUs,
		SizeBytes:      metrics.DataBytes(col),
		PredictedTimeS: result.Time,
		BusBWGBps:      bus / 1e9,
		Transfers:      len(result.Schedule.Transfers),
		SolverCalls:    result.Stats.SolverCalls,
		Partial:        result.Partial,
	}
}
