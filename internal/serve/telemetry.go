package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syccl/internal/obs"
)

// Label values used when a request never resolved far enough to know its
// workload (bad topology spec, malformed body, unknown route).
const (
	labelUnknown   = "unknown"
	cacheTierNone  = "none"      // request never reached the engine or store
	cacheTierStore = "store"     // served from the schedule store
	cacheTierWarm  = "warm"      // engine call, zero real solves (engine caches)
	cacheTierCold  = "cold"      // engine call with at least one real solve
	cacheTierCoal  = "coalesced" // shared another request's in-flight solve
)

// serveMetrics owns every serve-level metric family. All fields are
// nil-safe: built over a nil *obs.Registry, every child is nil and every
// observation is a no-op, so the telemetry can be switched off without a
// single branch at the call sites.
type serveMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // syccl_requests_total{collective,topology,cache,outcome}
	duration *obs.HistogramVec // syccl_request_duration_seconds{collective,topology,cache}
	solveDur *obs.HistogramVec // syccl_solve_duration_seconds{collective,topology}

	prewarm *obs.CounterVec // syccl_prewarm_total{result}

	// incumbents counts every schedule the pipeline published as a new
	// best-so-far, labeled by the producing stage; ttfi measures how
	// long a leader solve takes to surface its first incumbent — the
	// latency a streaming client waits before seeing any schedule.
	incumbents *obs.CounterVec // syccl_incumbents_total{source}
	ttfi       *obs.Histogram  // syccl_time_to_first_incumbent_seconds

	queueWait *obs.Histogram // syccl_queue_wait_seconds

	inflight  *obs.Gauge // syccl_inflight_requests
	flights   *obs.Gauge // syccl_flights_active
	storeLen  *obs.Gauge // syccl_store_entries
	draining  *obs.Gauge // syccl_draining
	uptime    *obs.Gauge // syccl_process_uptime_seconds
	gorout    *obs.Gauge // syccl_go_goroutines
	heapAlloc *obs.Gauge // syccl_go_heap_alloc_bytes

	gcCycles *obs.Counter // syccl_go_gc_cycles_total
	gcPause  *obs.Counter // syccl_go_gc_pause_seconds_total

	// MemStats counters are cumulative; the registry's counters only
	// support Add, so each scrape records the delta since the previous
	// one. Guarded by scrapeMu.
	scrapeMu     sync.Mutex
	prevGC       uint32
	prevPauseNS  uint64
	runtimeStart time.Time
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{reg: reg, runtimeStart: time.Now()}
	m.requests = reg.Counter("syccl_requests_total",
		"Synthesis API requests served, by workload, cache tier, and outcome.",
		"collective", "topology", "cache", "outcome")
	m.duration = reg.Histogram("syccl_request_duration_seconds",
		"End-to-end request latency.", obs.LatencyBuckets,
		"collective", "topology", "cache")
	m.solveDur = reg.Histogram("syccl_solve_duration_seconds",
		"Engine planning time per leader flight.", obs.LatencyBuckets,
		"collective", "topology")
	m.prewarm = reg.Counter("syccl_prewarm_total",
		"Background prewarm sweep outcomes.", "result")
	m.incumbents = reg.Counter("syccl_incumbents_total",
		"Incumbent schedules published by the synthesis pipeline, by source stage (direct, coarse, ring, fine).",
		"source")
	m.ttfi = reg.Histogram("syccl_time_to_first_incumbent_seconds",
		"Time from solve start to the first published incumbent.", obs.LatencyBuckets).With()
	m.queueWait = reg.Histogram("syccl_queue_wait_seconds",
		"Time flights spend waiting for an admission slot.", obs.LatencyBuckets).With()

	m.inflight = reg.Gauge("syccl_inflight_requests", "Requests currently being served.").With()
	m.flights = reg.Gauge("syccl_flights_active", "In-flight coalesced solves.").With()
	m.storeLen = reg.Gauge("syccl_store_entries", "Schedules retained in the result store.").With()
	m.draining = reg.Gauge("syccl_draining", "1 while the server refuses new synthesis work.").With()
	m.uptime = reg.Gauge("syccl_process_uptime_seconds", "Seconds since the server started.").With()
	m.gorout = reg.Gauge("syccl_go_goroutines", "Live goroutines at last scrape.").With()
	m.heapAlloc = reg.Gauge("syccl_go_heap_alloc_bytes", "Heap bytes in use at last scrape.").With()

	m.gcCycles = reg.Counter("syccl_go_gc_cycles_total", "Completed GC cycles.").With()
	m.gcPause = reg.Counter("syccl_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.").With()
	return m
}

// scrapeRuntime refreshes the runtime gauges and advances the GC
// counters by the delta since the previous scrape. Called from the
// /metrics handler so gauge values are current at exposition time.
func (m *serveMetrics) scrapeRuntime(s *Server) {
	if m == nil || m.reg == nil {
		return
	}
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.gorout.Set(float64(runtime.NumGoroutine()))
	m.heapAlloc.Set(float64(ms.HeapAlloc))
	m.uptime.Set(time.Since(m.runtimeStart).Seconds())
	if ms.NumGC >= m.prevGC {
		m.gcCycles.Add(float64(ms.NumGC - m.prevGC))
	}
	if ms.PauseTotalNs >= m.prevPauseNS {
		m.gcPause.Add(float64(ms.PauseTotalNs-m.prevPauseNS) / 1e9)
	}
	m.prevGC = ms.NumGC
	m.prevPauseNS = ms.PauseTotalNs

	if s != nil {
		m.flights.Set(float64(s.flights.len()))
		m.storeLen.Set(float64(s.store.len()))
		if s.draining.Load() {
			m.draining.Set(1)
		} else {
			m.draining.Set(0)
		}
	}
}

// outcomeFor maps an HTTP status onto the bounded outcome label set.
func outcomeFor(status int) string {
	switch {
	case status == http.StatusOK:
		return "ok"
	case status == http.StatusPartialContent:
		return "partial"
	case status == http.StatusTooManyRequests:
		return "429"
	default:
		return "error"
	}
}

// requestIDs mints per-process-unique request IDs: a random boot prefix
// (so IDs from successive daemon runs never collide in logs) plus an
// atomic sequence number.
type requestIDs struct {
	boot string
	seq  atomic.Uint64
}

func newRequestIDs() *requestIDs {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a fixed prefix; IDs stay unique within the process.
		copy(b[:], "sycl")
	}
	return &requestIDs{boot: hex.EncodeToString(b[:])}
}

func (g *requestIDs) next() string {
	n := g.seq.Add(1)
	const hexdig = "0123456789abcdef"
	var buf [17]byte
	copy(buf[:], g.boot)
	buf[8] = '-'
	for i := 0; i < 8; i++ {
		buf[16-i] = hexdig[n&0xf]
		n >>= 4
	}
	return string(buf[:])
}

// statusWriter records the status code a handler wrote so the
// middleware can label metrics and logs after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streaming handlers can push
// each NDJSON event immediately. Embedding alone is not enough: a type
// assertion on the middleware's wrapper only finds Flusher when the
// method is declared on the wrapper itself.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLine is the structured access-log record: exactly one JSON line
// per API request, with everything needed to find the request again
// (id → /debug/requests/{id}) and to explain its latency.
type accessLine struct {
	Time       string  `json:"time"`
	ID         string  `json:"id"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	Outcome    string  `json:"outcome"`
	Collective string  `json:"collective,omitempty"`
	Topology   string  `json:"topology,omitempty"`
	Cache      string  `json:"cache,omitempty"`
	PlanKey    string  `json:"plan_key,omitempty"`
	Coalesced  bool    `json:"coalesced,omitempty"`
	Leader     bool    `json:"leader,omitempty"`
	QueueUS    float64 `json:"queue_wait_us,omitempty"`
	SolveUS    float64 `json:"solve_us,omitempty"`
	DurationUS float64 `json:"duration_us"`
	Error      string  `json:"error,omitempty"`
}

// accessLogger serializes concurrent handlers onto one io.Writer so
// lines never interleave. A nil logger (or nil writer) is a no-op.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) log(rr *RequestRecord) {
	if l == nil {
		return
	}
	line := accessLine{
		Time:       rr.Start.UTC().Format(time.RFC3339Nano),
		ID:         rr.ID,
		Method:     rr.Method,
		Path:       rr.Path,
		Status:     rr.Status,
		Outcome:    rr.Outcome,
		Collective: rr.Collective,
		Topology:   rr.Topology,
		Cache:      rr.Cache,
		PlanKey:    rr.PlanKey,
		Coalesced:  rr.Coalesced,
		Leader:     rr.Leader,
		QueueUS:    rr.QueueWaitUS,
		SolveUS:    rr.SolveUS,
		DurationUS: rr.DurationUS,
		Error:      rr.Error,
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}
