package serve

import (
	"context"
	"sync"
	"time"

	"syccl/internal/obs"
	"syccl/internal/schedule"
)

// flight is one in-flight synthesis shared by every concurrent duplicate
// request (single-flight). The leader's goroutine runs the solve under
// f.ctx — a context owned by the flight, not by any one client — and
// publishes the outcome before closing done. f.ctx is cancelled only
// when every waiter has gone, so one client disconnecting never kills a
// solve that others still want, while a solve nobody is waiting on stops
// promptly and (by the engine's contract) never populates the caches.
type flight struct {
	key    string
	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc

	// Guarded by the owning group's mutex.
	waiters int

	// Telemetry identity, set by the leader's handler before the solve
	// goroutine starts: the flight-private recorder that captures this
	// solve's span tree, and the leader's request id.
	rec   *obs.Recorder
	reqID string

	// Outcome, written by the leader goroutine before close(done).
	status int
	resp   SynthesizeResponse
	sched  *schedule.Schedule
	apiErr *APIError
	// Telemetry outcome, also published before close(done): the span
	// tree (f.rec's history), the admission wait, the engine time, and
	// which cache tier answered ("store", "warm", or "cold").
	spans     []obs.SpanRecord
	queueWait time.Duration
	solve     time.Duration
	cache     string

	// Incumbent broker: the leader's solve publishes one event per
	// improving incumbent; streaming followers subscribe and receive the
	// history plus everything live. Guarded by bmu — never the group's
	// mutex, so publication cannot contend with join/leave.
	bmu  sync.Mutex
	hist []StreamEvent
	subs []chan StreamEvent
}

// publish fans one incumbent event out to every subscriber and appends
// it to the history for late subscribers. Sends never block: a
// subscriber that has fallen subBuffer events behind misses the oldest —
// harmless, since the stream is monotone and the final event always
// arrives via f.done.
func (f *flight) publish(ev StreamEvent) {
	f.bmu.Lock()
	f.hist = append(f.hist, ev)
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	f.bmu.Unlock()
}

// subBuffer is each subscriber's live-event headroom beyond the replayed
// history. Incumbent streams are short (strictly improving), so this is
// generous.
const subBuffer = 64

// subscribe registers a new event channel, pre-loaded with the history
// so a follower that joined mid-solve sees the whole stream. Channels
// are never closed; readers multiplex on the flight's done channel.
func (f *flight) subscribe() <-chan StreamEvent {
	f.bmu.Lock()
	defer f.bmu.Unlock()
	ch := make(chan StreamEvent, len(f.hist)+subBuffer)
	for _, ev := range f.hist {
		ch <- ev
	}
	f.subs = append(f.subs, ch)
	return ch
}

type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the live flight for key, creating one if none exists (or
// if the existing one has been abandoned by all of its waiters and is
// only draining its cancellation). The second return is true for the
// caller that must run the solve.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok && f.waiters > 0 {
		f.waiters++
		return f, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &flight{key: key, done: make(chan struct{}), ctx: ctx, cancel: cancel, waiters: 1}
	g.flights[key] = f
	return f, true
}

// leave drops one waiter; the last one out cancels the flight's context.
func (g *flightGroup) leave(f *flight) {
	g.mu.Lock()
	f.waiters--
	abandoned := f.waiters <= 0
	g.mu.Unlock()
	if abandoned {
		f.cancel()
	}
}

// remove unregisters a finished flight so later requests start fresh
// (they will normally be served by the schedule store instead).
func (g *flightGroup) remove(f *flight) {
	g.mu.Lock()
	if g.flights[f.key] == f {
		delete(g.flights, f.key)
	}
	g.mu.Unlock()
}

// cancelAll cancels every in-flight solve; the engine's anytime semantics
// turn each into a prompt Partial (or error) response. Used by Drain when
// its context expires before the flights finish on their own.
func (g *flightGroup) cancelAll() {
	g.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(g.flights))
	for _, f := range g.flights {
		cancels = append(cancels, f.cancel)
	}
	g.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

func (g *flightGroup) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
