package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bodies
// (alongside internal/verify's FuzzValidate/FuzzSimParity). Properties:
// the decoder never panics, every rejection is a well-formed structured
// error with a sensible status, and every accepted request re-encodes
// and re-decodes to itself (the wire form is a fixed point).
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Valid: minimal, fully specified, with optional knobs.
		`{"topology":"dgx4","collective":"allgather","size":"1M"}`,
		`{"topology":"a100x16","collective":"alltoall","size":"64M","timeout_ms":500,"e1":3.0,"e2":0.5,"workers":4,"seed":7,"include_schedule":true,"bypass_store":true}`,
		`{"topology":"server8","collective":"allreduce","size":"1G","seed":-1}`,
		`  {"topology":"h800x64","collective":"reducescatter","size":"4K"}  `,
		// Truncated at various depths.
		`{"topology":"dgx4","collective":"allgather","si`,
		`{"topology":"dgx4",`,
		`{`,
		``,
		// Wrong shapes and junk.
		`[]`,
		`"just a string"`,
		`{"topology":42,"collective":true,"size":[]}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","unknown_field":1}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M"}{"trailing":1}`,
		`{"timeout_ms":-9223372036854775808}`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, aerr := DecodeRequest(bytes.NewReader(body), 1<<16)
		if aerr != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			switch aerr.Status {
			case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			default:
				t.Fatalf("decoder error with status %d", aerr.Status)
			}
			if aerr.Code == "" || aerr.Message == "" {
				t.Fatalf("unstructured decode error: %+v", aerr)
			}
			return
		}
		// Accepted requests satisfy the documented invariants...
		if strings.TrimSpace(req.Topology) == "" || strings.TrimSpace(req.Collective) == "" || strings.TrimSpace(req.Size) == "" {
			t.Fatalf("decoder accepted a request with missing fields: %+v", req)
		}
		if req.TimeoutMS < 0 || req.Workers < 0 || req.Workers > 4096 || req.E1 < 0 || req.E2 < 0 {
			t.Fatalf("decoder accepted out-of-range values: %+v", req)
		}
		// ...and are a fixed point of encode→decode.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, aerr := DecodeRequest(bytes.NewReader(enc), 1<<16)
		if aerr != nil {
			t.Fatalf("re-decode rejected %s: %v", enc, aerr)
		}
		if *again != *req {
			t.Fatalf("decode not idempotent: %+v vs %+v", req, again)
		}
	})
}
