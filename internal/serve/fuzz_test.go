package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"syccl/internal/sketch"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bodies
// (alongside internal/verify's FuzzValidate/FuzzSimParity). Properties:
// the decoder never panics, every rejection is a well-formed structured
// error with a sensible status, and every accepted request re-encodes
// and re-decodes to itself (the wire form is a fixed point).
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Valid: minimal, fully specified, with optional knobs.
		`{"topology":"dgx4","collective":"allgather","size":"1M"}`,
		`{"topology":"a100x16","collective":"alltoall","size":"64M","timeout_ms":500,"e1":3.0,"e2":0.5,"workers":4,"seed":7,"include_schedule":true,"bypass_store":true}`,
		`{"topology":"server8","collective":"allreduce","size":"1G","seed":-1}`,
		`  {"topology":"h800x64","collective":"reducescatter","size":"4K"}  `,
		// Streaming + sketch-hint knobs.
		`{"topology":"dgx4","collective":"allgather","size":"1M","stream":true}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","sketch_hint":"dims=1,0;sizes=4,2;family=tree","stop_within_pct":5}`,
		`{"topology":"a100x16","collective":"allgather","size":"64M","sketch_hint":"family=flat","stream":true,"stop_within_pct":0.5}`,
		// Bad hints and out-of-range stop_within_pct.
		`{"topology":"dgx4","collective":"allgather","size":"1M","sketch_hint":"dims=1,0;dims=0"}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","sketch_hint":"family=ring"}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","sketch_hint":";;;"}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","stop_within_pct":101}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","stop_within_pct":-1}`,
		// Truncated at various depths.
		`{"topology":"dgx4","collective":"allgather","si`,
		`{"topology":"dgx4",`,
		`{`,
		``,
		// Wrong shapes and junk.
		`[]`,
		`"just a string"`,
		`{"topology":42,"collective":true,"size":[]}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M","unknown_field":1}`,
		`{"topology":"dgx4","collective":"allgather","size":"1M"}{"trailing":1}`,
		`{"timeout_ms":-9223372036854775808}`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, aerr := DecodeRequest(bytes.NewReader(body), 1<<16)
		if aerr != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			switch aerr.Status {
			case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
			default:
				t.Fatalf("decoder error with status %d", aerr.Status)
			}
			if aerr.Code == "" || aerr.Message == "" {
				t.Fatalf("unstructured decode error: %+v", aerr)
			}
			return
		}
		// Accepted requests satisfy the documented invariants...
		if strings.TrimSpace(req.Topology) == "" || strings.TrimSpace(req.Collective) == "" || strings.TrimSpace(req.Size) == "" {
			t.Fatalf("decoder accepted a request with missing fields: %+v", req)
		}
		if req.TimeoutMS < 0 || req.Workers < 0 || req.Workers > 4096 || req.E1 < 0 || req.E2 < 0 {
			t.Fatalf("decoder accepted out-of-range values: %+v", req)
		}
		if req.StopWithinPct < 0 || req.StopWithinPct > 100 {
			t.Fatalf("decoder accepted out-of-range stop_within_pct: %+v", req)
		}
		if _, err := sketch.ParseHint(req.SketchHint); err != nil {
			t.Fatalf("decoder accepted an unparseable sketch_hint %q: %v", req.SketchHint, err)
		}
		// ...and are a fixed point of encode→decode.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, aerr := DecodeRequest(bytes.NewReader(enc), 1<<16)
		if aerr != nil {
			t.Fatalf("re-decode rejected %s: %v", enc, aerr)
		}
		if *again != *req {
			t.Fatalf("decode not idempotent: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeStream hammers the NDJSON stream-event decoder with
// arbitrary lines. Properties: never panics, every rejection is an
// error (not a half-validated event), and every accepted event is a
// fixed point of encode→decode.
func FuzzDecodeStream(f *testing.F) {
	seeds := []string{
		// Valid events of each kind.
		`{"event":"incumbent","seq":1,"time_s":0.0012,"bound_s":0.001,"source":"coarse","engine":"greedy","elapsed_ms":14.2}`,
		`{"event":"incumbent","seq":3,"time_s":7.3e-06,"source":"ring"}`,
		`{"event":"final","time_s":0.001,"response":{"topology":"dgx4","collective":"AllGather","num_gpus":4,"size_bytes":1048576,"predicted_time_s":0.001,"busbw_gbps":100,"transfers":12,"solver_calls":3,"partial":false,"coalesced":false,"cached":false}}`,
		`{"event":"final","partial":true,"response":{"topology":"a100x16","collective":"AllGather","num_gpus":16,"size_bytes":1,"predicted_time_s":1,"busbw_gbps":1,"transfers":1,"solver_calls":0,"partial":true,"coalesced":false,"cached":false}}`,
		`{"event":"error","error":{"status":504,"code":"deadline","message":"deadline expired"}}`,
		// Invalid: wrong kinds, missing payloads, bad seq/time, junk.
		`{"event":"incumbent"}`,
		`{"event":"incumbent","seq":0,"time_s":1}`,
		`{"event":"incumbent","seq":1,"time_s":0}`,
		`{"event":"final"}`,
		`{"event":"error"}`,
		`{"event":"heartbeat"}`,
		`{"event":"incumbent","seq":1,"time_s":1,"extra":true}`,
		`{"event":"incumbent","seq":1,"time_s":1}{"event":"final"}`,
		`{`,
		``,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := ParseStreamEvent(line)
		if err != nil {
			if ev != nil {
				t.Fatal("error with non-nil event")
			}
			return
		}
		switch ev.Event {
		case StreamEventIncumbent, StreamEventFinal, StreamEventError:
		default:
			t.Fatalf("accepted unknown event kind %q", ev.Event)
		}
		enc, merr := json.Marshal(ev)
		if merr != nil {
			t.Fatalf("re-encode: %v", merr)
		}
		again, err := ParseStreamEvent(enc)
		if err != nil {
			t.Fatalf("re-decode rejected %s: %v", enc, err)
		}
		if again.Event != ev.Event || again.Seq != ev.Seq || again.TimeS != ev.TimeS || again.Partial != ev.Partial {
			t.Fatalf("decode not idempotent: %+v vs %+v", ev, again)
		}
	})
}
