package serve

// Warm-boot tests: a daemon with -cache-dir must come back from a
// restart serving previously synthesized schedules from its restored
// store (cache="store", engine untouched), fall back to the engine's
// disk tier for bypass-store requests (cache="warm", zero solver
// calls), and treat a damaged snapshot as a cold boot — never a crash.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"syccl/internal/persist"
)

func openStore(t *testing.T, dir string) *persist.Store {
	t.Helper()
	p, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func decodeSynth(t *testing.T, body []byte) SynthesizeResponse {
	t.Helper()
	var resp SynthesizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	return resp
}

// The restart contract, end to end at the handler level: daemon one
// synthesizes and drains (final snapshot); daemon two on the same
// directory — fresh engine, fresh store handle, zero shared memory —
// serves the identical request from its restored store: bit-identical
// schedule, no engine plan, and cache="store" on the request metric.
func TestWarmBootServesFromStore(t *testing.T) {
	dir := t.TempDir()
	body := `{"topology":"dgx4","collective":"allgather","size":"1M","include_schedule":true}`

	s1 := New(Options{Persist: openStore(t, dir)})
	ts1 := httptest.NewServer(s1)
	resp1, body1 := postJSON(t, ts1.URL, body)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold synthesize: status %d: %s", resp1.StatusCode, body1)
	}
	cold := decodeSynth(t, body1)
	if cold.Schedule == nil {
		t.Fatal("cold response missing schedule")
	}
	s1.Drain(context.Background())
	ts1.Close()

	s2 := New(Options{Persist: openStore(t, dir)})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if got := s2.Stats().Server.Restored; got == 0 {
		t.Fatal("second boot restored nothing from the snapshot")
	}

	resp2, body2 := postJSON(t, ts2.URL, body)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm synthesize: status %d: %s", resp2.StatusCode, body2)
	}
	warm := decodeSynth(t, body2)
	if !warm.Cached {
		t.Fatalf("rebooted daemon did not serve from the store: %s", body2)
	}
	if !reflect.DeepEqual(warm.Schedule, cold.Schedule) {
		t.Fatal("restored schedule is not bit-identical to the original")
	}
	if warm.ID != cold.ID || warm.PredictedTimeS != cold.PredictedTimeS {
		t.Fatalf("restored response drifted: cold %+v warm %+v", cold, warm)
	}
	// The store answered before the engine was ever consulted.
	if plans := s2.Engine().Stats().Plans; plans != 0 {
		t.Fatalf("store hit still ran %d engine plans", plans)
	}
	// And the request metric carries the store tier.
	_, prom := getJSON(t, ts2.URL+"/metrics")
	if !strings.Contains(string(prom), `cache="store"`) {
		t.Fatalf("exposition missing cache=\"store\" after warm-boot hit:\n%s", prom)
	}
	// GET /v1/schedule/{id} works off the restored store too.
	fresp, fbody := getJSON(t, ts2.URL+"/v1/schedule/"+warm.ID)
	if fresp.StatusCode != 200 {
		t.Fatalf("fetch restored schedule: status %d: %s", fresp.StatusCode, fbody)
	}
}

// Bypassing the store on a rebooted daemon exercises the engine's disk
// tier instead: the plan must come back engine-warm — zero solver
// calls — because every solved sub-demand was written through to disk
// by the first daemon.
func TestWarmBootEngineTierZeroSolves(t *testing.T) {
	dir := t.TempDir()
	body := `{"topology":"dgx4","collective":"allgather","size":"1M"}`

	s1 := New(Options{Persist: openStore(t, dir)})
	ts1 := httptest.NewServer(s1)
	if resp, b := postJSON(t, ts1.URL, body); resp.StatusCode != 200 {
		t.Fatalf("cold synthesize: status %d: %s", resp.StatusCode, b)
	}
	s1.Drain(context.Background())
	ts1.Close()

	s2 := New(Options{Persist: openStore(t, dir)})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	bypass := `{"topology":"dgx4","collective":"allgather","size":"1M","bypass_store":true}`
	resp, b := postJSON(t, ts2.URL, bypass)
	if resp.StatusCode != 200 {
		t.Fatalf("bypass synthesize: status %d: %s", resp.StatusCode, b)
	}
	warm := decodeSynth(t, b)
	if warm.SolverCalls != 0 {
		t.Fatalf("rebooted engine ran %d solver calls; disk tier missed", warm.SolverCalls)
	}
	if st := s2.Engine().Stats(); st.PersistHits == 0 {
		t.Fatalf("engine never touched the disk tier: %+v", st)
	}
}

// A corrupted snapshot degrades to a cold boot: nothing restored,
// nothing panics, the damage is counted, and the daemon still serves.
func TestCorruptSnapshotColdBoot(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Persist: openStore(t, dir)})
	ts1 := httptest.NewServer(s1)
	if resp, b := postJSON(t, ts1.URL, `{"topology":"dgx4","collective":"allgather","size":"1M"}`); resp.StatusCode != 200 {
		t.Fatalf("cold synthesize: status %d: %s", resp.StatusCode, b)
	}
	s1.Drain(context.Background())
	ts1.Close()

	snap := filepath.Join(dir, "snapshots", scheduleStoreSnapshot+".snap")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x5a
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := openStore(t, dir)
	s2 := New(Options{Persist: p2})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if got := s2.Stats().Server.Restored; got != 0 {
		t.Fatalf("restored %d entries from a corrupt snapshot", got)
	}
	if st := p2.Stats(); st.CorruptSnapshots != 1 {
		t.Fatalf("persist stats %+v, want 1 corrupt snapshot", st)
	}
	resp, b := postJSON(t, ts2.URL, `{"topology":"dgx4","collective":"allgather","size":"1M"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("daemon unusable after corrupt snapshot: status %d: %s", resp.StatusCode, b)
	}
	if decodeSynth(t, b).Cached {
		t.Fatal("corrupt snapshot still produced a store hit")
	}
}

// A snapshot image whose entries were tampered with inside a valid
// container (checksum recomputed by an attacker or a buggy tool) is
// caught by the restore-time oracle: invalid schedules never enter the
// store.
func TestTamperedSnapshotEntriesRejected(t *testing.T) {
	dir := t.TempDir()
	p1 := openStore(t, dir)
	s1 := New(Options{Persist: p1})
	ts1 := httptest.NewServer(s1)
	if resp, b := postJSON(t, ts1.URL, `{"topology":"dgx4","collective":"allgather","size":"1M"}`); resp.StatusCode != 200 {
		t.Fatalf("cold synthesize: status %d: %s", resp.StatusCode, b)
	}
	s1.Drain(context.Background())
	ts1.Close()

	// Rewrite the snapshot through the legitimate API with mangled
	// transfers: the container is valid, the content is not.
	payload, ok := p1.LoadSnapshot(scheduleStoreSnapshot)
	if !ok {
		t.Fatal("snapshot missing after drain")
	}
	var img snapImage
	if err := json.Unmarshal(payload, &img); err != nil {
		t.Fatal(err)
	}
	for i := range img.Entries {
		if sj := img.Entries[i].Schedule; sj != nil && len(sj.Transfers) > 0 {
			sj.Transfers = sj.Transfers[:len(sj.Transfers)/2]
		}
	}
	mangled, err := json.Marshal(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.SaveSnapshot(scheduleStoreSnapshot, mangled); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Persist: openStore(t, dir)})
	if got := s2.Stats().Server.Restored; got != 0 {
		t.Fatalf("restored %d oracle-invalid entries", got)
	}
}

// The periodic snapshot loop flushes without a drain: a second store
// handle sees the snapshot once the interval elapses.
func TestPeriodicSnapshotFlush(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Persist: openStore(t, dir), SnapshotInterval: 20 * time.Millisecond})
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()
	if resp, b := postJSON(t, ts1.URL, `{"topology":"dgx4","collective":"allgather","size":"1M"}`); resp.StatusCode != 200 {
		t.Fatalf("synthesize: status %d: %s", resp.StatusCode, b)
	}
	snap := filepath.Join(dir, "snapshots", scheduleStoreSnapshot+".snap")
	waitFor(t, 10*time.Second, "periodic snapshot", func() bool {
		_, err := os.Stat(snap)
		return err == nil
	})
	s2 := New(Options{Persist: openStore(t, dir)})
	if got := s2.Stats().Server.Restored; got == 0 {
		t.Fatal("periodic snapshot restored nothing")
	}
}

// The prewarmer sweeps its grid in the background and lands results in
// the schedule store: a first-ever client request is already a store
// hit, and the sweep is visible in syccl_prewarm_total.
func TestPrewarmerPopulatesStore(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{
		Persist: openStore(t, dir),
		Prewarm: PrewarmGrid([]string{"dgx4"}, []string{"allgather", "broadcast"}, []string{"1M"}),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	waitFor(t, 10*time.Second, "prewarm sweep", func() bool { return s.Stats().Server.Prewarmed == 2 })

	resp, b := postJSON(t, ts.URL, `{"topology":"dgx4","collective":"broadcast","size":"1M"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("synthesize: status %d: %s", resp.StatusCode, b)
	}
	if !decodeSynth(t, b).Cached {
		t.Fatalf("first client request missed the prewarmed store: %s", b)
	}
	_, prom := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(prom), `syccl_prewarm_total{result="planned"} 2`) {
		t.Fatalf("exposition missing prewarm counts:\n%s", prom)
	}
}
