package serve

import (
	"context"
	"errors"
)

var errQueueFull = errors.New("serve: admission queue full")

// admission is the server's backpressure valve: at most `concurrency`
// solves run at once, at most `queueDepth` flights wait for a slot, and
// anything beyond that is rejected immediately (the handler maps the
// rejection to 429 + Retry-After). Coalesced duplicates never reach
// admission — only flight leaders occupy slots — so the queue bounds
// distinct outstanding work, not client fan-in.
type admission struct {
	slots    chan struct{}
	queue    chan struct{}
	disabled bool
}

func newAdmission(concurrency, queueDepth int) *admission {
	if concurrency <= 0 {
		return &admission{disabled: true}
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, concurrency),
		queue: make(chan struct{}, queueDepth),
	}
}

// acquire takes a solve slot, waiting in the bounded queue if all slots
// are busy. It returns errQueueFull synchronously when the queue is also
// full, and ctx.Err() if the flight is abandoned while queued.
func (a *admission) acquire(ctx context.Context) error {
	if a.disabled {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return errQueueFull
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a.disabled {
		return
	}
	<-a.slots
}

// load reports the instantaneous admission pressure: solves holding a
// slot and flights waiting in the queue. Both are snapshots of channel
// occupancy — racy by nature, which is fine for the Retry-After hint
// they feed.
func (a *admission) load() (running, queued int) {
	if a.disabled {
		return 0, 0
	}
	return len(a.slots), len(a.queue)
}
