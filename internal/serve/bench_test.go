package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
)

// BenchmarkWarmRequest measures the microsecond path the daemon exists
// for: a duplicate request served end-to-end (HTTP included) from the
// schedule store without touching the engine.
func BenchmarkWarmRequest(b *testing.B) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := []byte(`{"topology":"dgx4","collective":"allgather","size":"1M"}`)

	// Prime the store with the one cold solve.
	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("prime: %d", resp.StatusCode)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warm: %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	if plans := s.Engine().Stats().Plans; plans != 1 {
		b.Fatalf("warm benchmark invoked the engine %d times", plans)
	}
}

// BenchmarkDecodeRequest isolates the request decoder.
func BenchmarkDecodeRequest(b *testing.B) {
	body := []byte(`{"topology":"a100x16","collective":"alltoall","size":"64M","timeout_ms":500,"workers":4,"seed":7}`)
	for i := 0; i < b.N; i++ {
		if _, aerr := DecodeRequest(bytes.NewReader(body), DefaultMaxBodyBytes); aerr != nil {
			b.Fatal(aerr)
		}
	}
}

// TestPercentile pins the interpolation the load generator reports.
func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	sort.Float64s(vals)
	if p := percentile(vals, 0.50); p != 55 {
		t.Fatalf("p50 = %g, want 55", p)
	}
	if p := percentile(vals, 0.99); p < 99 || p > 100 {
		t.Fatalf("p99 = %g", p)
	}
	if p := percentile([]float64{42}, 0.99); p != 42 {
		t.Fatalf("singleton p99 = %g", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty p50 = %g", p)
	}
	st := summarize([]float64{1, 2, 3, 4})
	if st.Count != 4 || st.MaxUS != 4 || st.MeanUS != 2.5 {
		t.Fatalf("summarize off: %+v", st)
	}
	// The bucket-estimated percentiles ride along: same observations,
	// ordered tails, microsecond scale.
	if st.Hist.Count != 4 {
		t.Fatalf("hist count %d, want 4", st.Hist.Count)
	}
	if st.Hist.P50us <= 0 || st.Hist.P50us > st.Hist.P90us ||
		st.Hist.P90us > st.Hist.P99us || st.Hist.P99us > st.Hist.P999us {
		t.Fatalf("hist percentiles not monotone: %+v", st.Hist)
	}
	if st.Hist.P999us > 10.01 {
		t.Fatalf("hist p999 %.2fus implausible for 1-4us inputs (first bucket is 10us)", st.Hist.P999us)
	}
}
