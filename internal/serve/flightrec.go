package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"syccl/internal/obs"
)

// Defaults for the flight recorder's two windows.
const (
	DefaultRecentRequests = 256
	DefaultSlowRequests   = 32
)

// RequestRecord is one request's flight record: identity, workload,
// outcome, the latency breakdown, and (for requests that ran the
// engine) the span tree of the synthesis pipeline. It is what
// GET /debug/requests/{id} returns.
type RequestRecord struct {
	ID     string    `json:"id"`
	Method string    `json:"method"`
	Path   string    `json:"path"`
	Start  time.Time `json:"start"`

	Status  int    `json:"status"`
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`

	Collective string `json:"collective,omitempty"`
	Topology   string `json:"topology,omitempty"`
	PlanKey    string `json:"plan_key,omitempty"`
	Cache      string `json:"cache,omitempty"`
	Coalesced  bool   `json:"coalesced,omitempty"`
	Leader     bool   `json:"leader,omitempty"`
	Partial    bool   `json:"partial,omitempty"`

	DurationUS  float64 `json:"duration_us"`
	QueueWaitUS float64 `json:"queue_wait_us,omitempty"`
	SolveUS     float64 `json:"solve_us,omitempty"`

	// Spans is the request's own span tree (the per-flight recorder's
	// history). Coalesced followers share the leader's tree.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// summary is the span-free form used in /debug/requests listings; the
// full record (with spans) stays one click away at /{id}.
func (rr *RequestRecord) summary() RequestRecord {
	c := *rr
	c.Spans = nil
	return c
}

// flightRecorder retains two windows over finished requests: a ring of
// the most recent N, and the K slowest seen so far. A request present in
// both is stored once; byID serves /debug/requests/{id} for anything
// still referenced by either window.
type flightRecorder struct {
	mu   sync.Mutex
	ring []*RequestRecord // circular, cap recentN
	next int
	slow []*RequestRecord // sorted fastest-first, cap slowK
	byID map[string]*RequestRecord

	recentN int
	slowK   int
}

func newFlightRecorder(recentN, slowK int) *flightRecorder {
	if recentN <= 0 {
		recentN = DefaultRecentRequests
	}
	if slowK <= 0 {
		slowK = DefaultSlowRequests
	}
	return &flightRecorder{
		ring:    make([]*RequestRecord, 0, recentN),
		byID:    make(map[string]*RequestRecord),
		recentN: recentN,
		slowK:   slowK,
	}
}

// add files a finished request into both windows. Records are owned by
// the recorder after add — callers must not mutate them.
func (fr *flightRecorder) add(rr *RequestRecord) {
	if fr == nil || rr == nil || rr.ID == "" {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()

	fr.byID[rr.ID] = rr

	// Recent window: overwrite the oldest slot once full.
	var evicted *RequestRecord
	if len(fr.ring) < fr.recentN {
		fr.ring = append(fr.ring, rr)
	} else {
		evicted = fr.ring[fr.next]
		fr.ring[fr.next] = rr
		fr.next = (fr.next + 1) % fr.recentN
	}

	// Slow window: insert in order, drop the fastest once over K.
	i := sort.Search(len(fr.slow), func(i int) bool {
		return fr.slow[i].DurationUS >= rr.DurationUS
	})
	fr.slow = append(fr.slow, nil)
	copy(fr.slow[i+1:], fr.slow[i:])
	fr.slow[i] = rr
	var dropped *RequestRecord
	if len(fr.slow) > fr.slowK {
		dropped = fr.slow[0]
		fr.slow = fr.slow[1:]
	}

	// A record leaves byID only when neither window references it.
	for _, gone := range []*RequestRecord{evicted, dropped} {
		if gone == nil || gone == rr {
			continue
		}
		if fr.byID[gone.ID] == gone && !fr.referencedLocked(gone) {
			delete(fr.byID, gone.ID)
		}
	}
}

// referencedLocked reports whether rec is still held by either window.
func (fr *flightRecorder) referencedLocked(rec *RequestRecord) bool {
	for _, r := range fr.ring {
		if r == rec {
			return true
		}
	}
	for _, r := range fr.slow {
		if r == rec {
			return true
		}
	}
	return false
}

// get returns the full record (spans included) for an id.
func (fr *flightRecorder) get(id string) (*RequestRecord, bool) {
	if fr == nil {
		return nil, false
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	rr, ok := fr.byID[id]
	return rr, ok
}

// DebugRequests is the body of GET /debug/requests: recent requests
// newest-first and the slowest seen, both as span-free summaries.
type DebugRequests struct {
	Recent  []RequestRecord `json:"recent"`
	Slowest []RequestRecord `json:"slowest"`
}

// snapshot lists both windows; recent is newest-first, slowest is
// slowest-first.
func (fr *flightRecorder) snapshot() DebugRequests {
	out := DebugRequests{Recent: []RequestRecord{}, Slowest: []RequestRecord{}}
	if fr == nil {
		return out
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for i := 0; i < len(fr.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (fr.next - 1 - i + 2*len(fr.ring)) % len(fr.ring)
		if len(fr.ring) < fr.recentN {
			// Ring not yet full: slots are in insertion order, next unused.
			idx = len(fr.ring) - 1 - i
		}
		out.Recent = append(out.Recent, fr.ring[idx].summary())
	}
	for i := len(fr.slow) - 1; i >= 0; i-- {
		out.Slowest = append(out.Slowest, fr.slow[i].summary())
	}
	return out
}

// requestRecordKey carries the in-progress RequestRecord through the
// request context so handlers can annotate it as facts become known.
type requestRecordKey struct{}

func withRequestRecord(ctx context.Context, rr *RequestRecord) context.Context {
	return context.WithValue(ctx, requestRecordKey{}, rr)
}

func requestRecordFrom(ctx context.Context) *RequestRecord {
	rr, _ := ctx.Value(requestRecordKey{}).(*RequestRecord)
	return rr
}
