package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"syccl/internal/cli"
	"syccl/internal/verify"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer builds a Server plus an httptest front for it.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

// TestSynthesizeFetchRoundTrip drives the full service loop — synthesize,
// then fetch by id — for all nine collectives on both the single-server
// and dgx4 topologies, and replays every fetched schedule through the
// chunk-replay oracle.
func TestSynthesizeFetchRoundTrip(t *testing.T) {
	collectives := []string{
		"allgather", "reducescatter", "alltoall", "allreduce",
		"broadcast", "reduce", "scatter", "gather", "sendrecv",
	}
	for _, topo := range []string{"server8", "dgx4"} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			_, ts := newTestServer(t, Options{})
			for _, coll := range collectives {
				body := fmt.Sprintf(`{"topology":%q,"collective":%q,"size":"1M","workers":2}`, topo, coll)
				resp, raw := postJSON(t, ts.URL, body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s/%s: status %d: %s", topo, coll, resp.StatusCode, raw)
				}
				var sr SynthesizeResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					t.Fatalf("%s/%s: bad response JSON: %v", topo, coll, err)
				}
				if sr.ID == "" || sr.Partial || sr.Cached || sr.Coalesced {
					t.Fatalf("%s/%s: unexpected flags in cold response: %+v", topo, coll, sr)
				}
				if sr.PredictedTimeS <= 0 || sr.Transfers <= 0 {
					t.Fatalf("%s/%s: degenerate result: %+v", topo, coll, sr)
				}

				fresp, fraw := getJSON(t, ts.URL+"/v1/schedule/"+sr.ID)
				if fresp.StatusCode != http.StatusOK {
					t.Fatalf("%s/%s: fetch status %d: %s", topo, coll, fresp.StatusCode, fraw)
				}
				var fetched SynthesizeResponse
				if err := json.Unmarshal(fraw, &fetched); err != nil {
					t.Fatalf("%s/%s: bad fetch JSON: %v", topo, coll, err)
				}
				if !fetched.Cached || fetched.Schedule == nil {
					t.Fatalf("%s/%s: fetch missing cached schedule: %+v", topo, coll, fetched)
				}
				if fetched.PredictedTimeS != sr.PredictedTimeS {
					t.Fatalf("%s/%s: fetch changed predicted time", topo, coll)
				}

				sched, err := fetched.Schedule.Schedule()
				if err != nil {
					t.Fatalf("%s/%s: decode schedule: %v", topo, coll, err)
				}
				top, err := cli.ParseTopology(topo)
				if err != nil {
					t.Fatal(err)
				}
				col, err := cli.BuildCollective(coll, top.NumGPUs(), 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				if err := verify.CheckSchedule(col, sched); err != nil {
					t.Fatalf("%s/%s: served schedule fails the oracle: %v", topo, coll, err)
				}
			}
		})
	}
}

// TestWarmDuplicateSkipsEngine is the warm-path acceptance check: a
// repeated request must come back from the schedule store without the
// engine being invoked at all, asserted through Engine.Stats.
func TestWarmDuplicateSkipsEngine(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"topology":"dgx4","collective":"allgather","size":"1M"}`

	resp, raw := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d: %s", resp.StatusCode, raw)
	}
	if got := s.Engine().Stats().Plans; got != 1 {
		t.Fatalf("cold request made %d engine plans, want 1", got)
	}

	resp, raw = postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d: %s", resp.StatusCode, raw)
	}
	var warm SynthesizeResponse
	if err := json.Unmarshal(raw, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatalf("warm duplicate not marked cached: %s", raw)
	}
	if got := s.Engine().Stats().Plans; got != 1 {
		t.Fatalf("warm duplicate invoked the engine (plans=%d)", got)
	}
	st := s.Stats().Server
	if st.StoreHits != 1 {
		t.Fatalf("store hits = %d, want 1", st.StoreHits)
	}
}

// TestErrorPaths checks that every malformed input maps to its own
// structured 400 (or 404/413) body.
func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 512})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"bad topology", `{"topology":"tpu9000","collective":"allgather","size":"1M"}`, 400, CodeBadTopology},
		{"unknown collective", `{"topology":"dgx4","collective":"allscatter","size":"1M"}`, 400, CodeBadCollective},
		{"bad size", `{"topology":"dgx4","collective":"allgather","size":"lots"}`, 400, CodeBadSize},
		{"malformed body", `{"topology":`, 400, CodeBadRequest},
		{"trailing garbage", `{"topology":"dgx4","collective":"allgather","size":"1M"}{}`, 400, CodeBadRequest},
		{"unknown field", `{"topology":"dgx4","collective":"allgather","size":"1M","turbo":true}`, 400, CodeBadRequest},
		{"missing topology", `{"collective":"allgather","size":"1M"}`, 400, CodeBadRequest},
		{"missing collective", `{"topology":"dgx4","size":"1M"}`, 400, CodeBadRequest},
		{"missing size", `{"topology":"dgx4","collective":"allgather"}`, 400, CodeBadRequest},
		{"negative timeout", `{"topology":"dgx4","collective":"allgather","size":"1M","timeout_ms":-5}`, 400, CodeBadRequest},
		{"oversized body", `{"topology":"dgx4","collective":"allgather","size":"1M","seed":` + strings.Repeat("1", 600) + `}`, 413, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			var eb errorBody
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == nil {
				t.Fatalf("unstructured error body: %s", raw)
			}
			if eb.Error.Code != tc.code {
				t.Fatalf("code %q, want %q (%s)", eb.Error.Code, tc.code, eb.Error.Message)
			}
			if eb.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}

	t.Run("unknown schedule id", func(t *testing.T) {
		resp, raw := getJSON(t, ts.URL+"/v1/schedule/deadbeef")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404: %s", resp.StatusCode, raw)
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeNotFound {
			t.Fatalf("want structured not_found, got %s", raw)
		}
	})

	t.Run("wrong method", func(t *testing.T) {
		resp, _ := getJSON(t, ts.URL+"/v1/synthesize")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/synthesize = %d, want 405", resp.StatusCode)
		}
	})
}

// TestGoldenResponses pins the exact wire bytes of a representative
// success response and a representative error response. Regenerate with
// `go test ./internal/serve/ -run Golden -update`.
func TestGoldenResponses(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"synthesize_dgx4_allgather", `{"topology":"dgx4","collective":"allgather","size":"1M","workers":1,"include_schedule":true}`, 200},
		{"error_bad_topology", `{"topology":"tpu9000","collective":"allgather","size":"1M"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q", ct)
			}
			golden := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *update {
				if err := os.WriteFile(golden, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("response drifted from golden %s:\ngot:  %s\nwant: %s", golden, raw, want)
			}
		})
	}
}

// TestStoreEviction bounds the schedule store: with capacity 2, the first
// of three distinct results is evicted and no longer fetchable.
func TestStoreEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{StoreEntries: 2})
	ids := make([]string, 3)
	for i := range ids {
		body := fmt.Sprintf(`{"topology":"dgx4","collective":"allgather","size":"1M","seed":%d}`, i+1)
		resp, raw := postJSON(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, raw)
		}
		var sr SynthesizeResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		ids[i] = sr.ID
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/schedule/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted id still fetchable: %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp, _ := getJSON(t, ts.URL+"/v1/schedule/"+id); resp.StatusCode != http.StatusOK {
			t.Fatalf("recent id %s not fetchable: %d", id, resp.StatusCode)
		}
	}
	if st := s.Stats().Server; st.StoreEvictions != 1 || st.StoreEntries != 2 {
		t.Fatalf("store accounting off: %+v", st)
	}
}

// TestHealthStatsTrace covers the operational endpoints: healthz flips
// with drain state, statsz is coherent JSON, tracez parses as a Chrome
// trace carrying the server's spans.
func TestHealthStatsTrace(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	resp, raw := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	if resp, raw := postJSON(t, ts.URL, `{"topology":"dgx4","collective":"allgather","size":"1M"}`); resp.StatusCode != 200 {
		t.Fatalf("synthesize: %d %s", resp.StatusCode, raw)
	}

	resp, raw = getJSON(t, ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("statsz JSON: %v", err)
	}
	if snap.Server.Requests != 1 || snap.Engine.Plans != 1 {
		t.Fatalf("statsz counters off: %s", raw)
	}

	resp, raw = getJSON(t, ts.URL+"/tracez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez: %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("tracez is not Chrome-trace JSON: %v", err)
	}
	found := false
	for _, ev := range trace.TraceEvents {
		if ev["name"] == "http.synthesize" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("tracez missing the http.synthesize handler span")
	}

	// Drain flips healthz so load balancers stop routing here.
	ctx, cancel := contextWithTimeout(t, 5*time.Second)
	defer cancel()
	s.Drain(ctx)
	if resp, raw := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "draining") {
		t.Fatalf("draining healthz: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := postJSON(t, ts.URL, `{"topology":"dgx4","collective":"allgather","size":"2M"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining synthesize: %d, want 503", resp.StatusCode)
	}
}
