// Package serve is the network-facing layer of the SyCCL planner: a
// stdlib-only JSON HTTP API over a shared, long-lived engine.Engine.
//
// The server does the production plumbing the engine deliberately leaves
// out:
//
//   - single-flight coalescing — concurrent duplicate requests (same
//     engine.PlanKey and deadline) share one solve, so N identical cold
//     requests cost one trip through the pipeline;
//   - admission control — a configurable solve concurrency with a bounded
//     wait queue; overflow is rejected immediately with 429 and a
//     Retry-After hint rather than queued without bound;
//   - deadlines — per-request timeouts map onto the engine's cooperative
//     cancellation, surfacing anytime Partial schedules as HTTP 206;
//   - a result store — completed schedules are retained in an LRU and
//     fetchable by id, so warm duplicates are served in microseconds
//     without touching the engine at all;
//   - graceful drain — on SIGTERM the server stops accepting synthesis
//     work, lets (or, past a deadline, cancels-into-Partial) every
//     accepted request finish, and flushes stats;
//   - telemetry — labeled Prometheus metrics, per-request IDs and span
//     trees, a structured access log, and a flight recorder of recent
//     and slowest requests.
//
// Endpoints: POST /v1/synthesize, GET /v1/schedule/{id}, GET /healthz,
// GET /statsz, GET /tracez (Chrome trace of recent server activity),
// GET /metrics (Prometheus text exposition), GET /debug/requests and
// GET /debug/requests/{id} (flight recorder). Every response carries an
// X-Syccl-Request header naming the request's flight record.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"syccl/internal/core"
	"syccl/internal/engine"
	"syccl/internal/obs"
	"syccl/internal/persist"
)

// Defaults for Options zero values.
const (
	DefaultQueueDepth   = 64
	DefaultStoreEntries = 256
	DefaultMaxBodyBytes = 1 << 20
	DefaultRetryAfter   = 1 * time.Second
	DefaultMaxSpans     = 16 << 10
	DefaultMaxSamples   = 64 << 10
)

// RequestIDHeader names the response header carrying the request's id;
// GET /debug/requests/{id} returns that request's flight record.
const RequestIDHeader = "X-Syccl-Request"

// Options configures a Server.
type Options struct {
	// Engine is the shared planner; a fresh one is built when nil.
	Engine *engine.Engine
	// Concurrency bounds simultaneous solves (default GOMAXPROCS).
	Concurrency int
	// QueueDepth bounds flights waiting for a solve slot (default 64);
	// beyond it requests get 429 + Retry-After.
	QueueDepth int
	// StoreEntries bounds the served-result LRU (default 256).
	StoreEntries int
	// DefaultTimeout applies to requests that do not set timeout_ms
	// (0 = no deadline).
	DefaultTimeout time.Duration
	// DefaultWorkers is the synthesis parallelism for requests that do
	// not set workers (0 = GOMAXPROCS, the core default).
	DefaultWorkers int
	// RetryAfter is the hint returned with 429s (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Obs receives server counters, handler spans, and the engine's
	// pipeline spans, and backs GET /tracez. A bounded recorder
	// (DefaultMaxSpans/DefaultMaxSamples retention) is built when nil.
	Obs *obs.Recorder
	// Metrics backs GET /metrics; serve and engine families register on
	// it. A fresh registry is built when nil (and when Engine is also
	// built here, the engine shares it).
	Metrics *obs.Registry
	// AccessLog, when non-nil, receives one structured JSON line per
	// API request. Writes are serialized by the server.
	AccessLog io.Writer
	// RecentRequests / SlowRequests bound the flight recorder's two
	// windows (defaults 256 / 32).
	RecentRequests int
	SlowRequests   int
	// Persist, when non-nil, is the disk tier shared by the engine (solve
	// entries, written through as they are solved) and the schedule store
	// (flushed as a snapshot, restored before the listener comes up). A
	// rebooted daemon on the same directory replays previously served
	// requests from the store with zero solver calls. When Engine is also
	// nil, the engine built here gets Persist as its disk tier.
	Persist *persist.Store
	// SnapshotInterval flushes the schedule store to the persist snapshot
	// periodically (0 = only at the end of Drain). Ignored without
	// Persist.
	SnapshotInterval time.Duration
	// Prewarm lists synthesis requests the server plans in the background
	// after boot, using idle capacity only, to populate the stores before
	// real traffic arrives. Typically built with PrewarmGrid.
	Prewarm []Request
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.StoreEntries <= 0 {
		o.StoreEntries = DefaultStoreEntries
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.Obs == nil {
		o.Obs = obs.NewRecorder()
		o.Obs.SetRetention(DefaultMaxSpans, DefaultMaxSamples)
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Engine == nil {
		o.Engine = engine.New(engine.Options{Obs: o.Obs, Metrics: o.Metrics, Persist: persistTier(o.Persist)})
	}
	return o
}

// persistTier adapts the optional store to the engine option without
// handing the engine a typed-nil interface.
func persistTier(p *persist.Store) engine.PersistTier {
	if p == nil {
		return nil
	}
	return p
}

// SynthesizeResponse is the body of POST /v1/synthesize (200/206) and
// GET /v1/schedule/{id}.
type SynthesizeResponse struct {
	// ID fetches the stored schedule via GET /v1/schedule/{id}. Empty for
	// Partial results, which are not stored.
	ID         string  `json:"id,omitempty"`
	Topology   string  `json:"topology"`
	Collective string  `json:"collective"`
	NumGPUs    int     `json:"num_gpus"`
	SizeBytes  float64 `json:"size_bytes"`
	// PredictedTimeS is the simulator-predicted completion time.
	PredictedTimeS float64 `json:"predicted_time_s"`
	BusBWGBps      float64 `json:"busbw_gbps"`
	Transfers      int     `json:"transfers"`
	// SolverCalls is how many sub-demand solves this synthesis actually
	// executed (0 = served entirely from the engine's warm caches).
	SolverCalls int `json:"solver_calls"`
	// Partial marks an anytime result cut short by the deadline
	// (HTTP 206).
	Partial bool `json:"partial"`
	// Coalesced marks a response that shared another request's in-flight
	// solve.
	Coalesced bool `json:"coalesced"`
	// Cached marks a response served from the schedule store without
	// invoking the engine.
	Cached   bool          `json:"cached"`
	Schedule *ScheduleJSON `json:"schedule,omitempty"`
	// Replan carries the fault-reactive bookkeeping for POST /v1/replan
	// responses; absent on plain synthesize responses.
	Replan *ReplanJSON `json:"replan,omitempty"`
}

// ReplanJSON is the replan-specific half of a POST /v1/replan response:
// what the delta touched, what was invalidated, and how much of the new
// plan replayed from the engine's warm caches.
type ReplanJSON struct {
	Delta         string  `json:"delta"`
	TouchedGroups int     `json:"touched_groups"`
	TotalGroups   int     `json:"total_groups"`
	Invalidated   int     `json:"invalidated"`
	ReusedSubs    int     `json:"reused_subs"`
	SolvedSubs    int     `json:"solved_subs"`
	ReuseRatio    float64 `json:"reuse_ratio"`
}

// ServerStats is the server half of GET /statsz.
type ServerStats struct {
	Requests        int64 `json:"requests"`
	Coalesced       int64 `json:"coalesced"`
	StoreHits       int64 `json:"store_hits"`
	StoreEntries    int   `json:"store_entries"`
	StoreEvictions  int64 `json:"store_evictions"`
	QueueRejections int64 `json:"queue_rejections"`
	Partial         int64 `json:"partial"`
	Errors          int64 `json:"errors"`
	InFlight        int64 `json:"in_flight"`
	Flights         int   `json:"flights"`
	Draining        bool  `json:"draining"`
	// Restored counts schedule-store entries recovered from the persist
	// snapshot at boot; Prewarmed counts background prewarm plans that
	// landed in the store.
	Restored  int64 `json:"restored"`
	Prewarmed int64 `json:"prewarmed"`
}

// StatsSnapshot is the body of GET /statsz.
type StatsSnapshot struct {
	Server ServerStats  `json:"server"`
	Engine engine.Stats `json:"engine"`
}

// Server is the HTTP serving layer. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	opts    Options
	eng     *engine.Engine
	rec     *obs.Recorder
	mux     *http.ServeMux
	adm     *admission
	flights *flightGroup
	store   *scheduleStore

	met  *serveMetrics
	frec *flightRecorder
	alog *accessLogger
	ids  *requestIDs

	// persist is the optional disk tier; bgCancel stops the snapshot and
	// prewarm loops (both counted in bgFlight) when the server drains.
	persist  *persist.Store
	bgCancel context.CancelFunc

	draining atomic.Bool
	// inFlight counts accepted HTTP requests; bgFlights counts leader
	// solve goroutines. Drain waits for both to hit zero.
	inFlight atomic.Int64
	bgFlight atomic.Int64

	requests       atomic.Int64
	coalesced      atomic.Int64
	storeHits      atomic.Int64
	storeEvictions atomic.Int64
	rejections     atomic.Int64
	partials       atomic.Int64
	errs           atomic.Int64
	restored       atomic.Int64
	prewarmed      atomic.Int64
}

// New builds a Server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		eng:     opts.Engine,
		rec:     opts.Obs,
		adm:     newAdmission(opts.Concurrency, opts.QueueDepth),
		flights: newFlightGroup(),
		store:   newScheduleStore(opts.StoreEntries),
		met:     newServeMetrics(opts.Metrics),
		frec:    newFlightRecorder(opts.RecentRequests, opts.SlowRequests),
		alog:    newAccessLogger(opts.AccessLog),
		ids:     newRequestIDs(),
		persist: opts.Persist,
	}
	bgCtx, bgCancel := context.WithCancel(context.Background())
	s.bgCancel = bgCancel
	if s.persist != nil {
		// Bind before restore so the restore's snapshot load is counted,
		// then warm the schedule store before the first request can land.
		s.persist.BindMetrics(opts.Metrics)
		s.restoreScheduleStore()
		if opts.SnapshotInterval > 0 {
			s.bgFlight.Add(1)
			go s.snapshotLoop(bgCtx, opts.SnapshotInterval)
		}
	}
	if len(opts.Prewarm) > 0 {
		s.bgFlight.Add(1)
		go s.prewarmLoop(bgCtx)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("POST /v1/replan", s.handleReplan)
	mux.HandleFunc("GET /v1/schedule/{id}", s.handleSchedule)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /tracez", s.handleTracez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	s.mux = mux
	return s
}

// Engine exposes the shared planner (tests assert cache behavior through
// Engine().Stats()).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Recorder exposes the server's observability sink.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Metrics exposes the registry behind GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.opts.Metrics }

// InFlight reports accepted requests currently being served.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// Draining reports whether the server has stopped accepting synthesis
// work.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP is the request-scoped telemetry middleware around the mux:
// it mints the request id, answers with it in X-Syccl-Request, threads
// it through the context, and — for API routes — emits the metrics,
// access-log line, and flight record exactly once after the handler
// returns.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	id := s.ids.next()
	w.Header().Set(RequestIDHeader, id)

	// Non-API routes (health, stats, the telemetry endpoints themselves)
	// get the id header but are not recorded — scrapes must not pollute
	// the request metrics they report.
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		s.mux.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), id)))
		return
	}

	rr := &RequestRecord{
		ID:     id,
		Method: r.Method,
		Path:   r.URL.Path,
		Start:  time.Now(),
		Cache:  cacheTierNone,
	}
	ctx := obs.WithRequestID(r.Context(), id)
	ctx = withRequestRecord(ctx, rr)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()

	s.mux.ServeHTTP(sw, r.WithContext(ctx))

	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	rr.Status = sw.status
	rr.Outcome = outcomeFor(sw.status)
	rr.DurationUS = float64(time.Since(start)) / float64(time.Microsecond)

	coll, topo := rr.Collective, rr.Topology
	if coll == "" {
		coll = labelUnknown
	}
	if topo == "" {
		topo = labelUnknown
	}
	s.met.requests.With(coll, topo, rr.Cache, rr.Outcome).Inc()
	s.met.duration.With(coll, topo, rr.Cache).Observe(rr.DurationUS / 1e6)
	s.frec.add(rr)
	s.alog.log(rr)
}

// Stats snapshots the server and engine counters.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		Server: ServerStats{
			Requests:        s.requests.Load(),
			Coalesced:       s.coalesced.Load(),
			StoreHits:       s.storeHits.Load(),
			StoreEntries:    s.store.len(),
			StoreEvictions:  s.storeEvictions.Load(),
			QueueRejections: s.rejections.Load(),
			Partial:         s.partials.Load(),
			Errors:          s.errs.Load(),
			InFlight:        s.inFlight.Load(),
			Flights:         s.flights.len(),
			Draining:        s.draining.Load(),
			Restored:        s.restored.Load(),
			Prewarmed:       s.prewarmed.Load(),
		},
		Engine: s.eng.Stats(),
	}
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	sp := s.rec.StartSpan("http.synthesize")
	defer sp.End()
	s.requests.Add(1)
	s.rec.Count("serve.requests", 1)
	rr := requestRecordFrom(r.Context())

	if s.draining.Load() {
		writeAPIError(w, apiErrorf(http.StatusServiceUnavailable, CodeDraining, "server is draining"))
		return
	}
	req, aerr := DecodeRequest(r.Body, s.opts.MaxBodyBytes)
	if aerr == nil {
		var res *resolved
		res, aerr = s.resolve(req)
		if aerr == nil {
			sp.SetStr("topology", res.top.Name)
			sp.SetStr("collective", res.col.Kind.String())
			if rr != nil {
				rr.Topology = strings.ToLower(res.req.Topology)
				rr.Collective = strings.ToLower(res.col.Kind.String())
				rr.PlanKey = res.id
			}
			s.serveResolved(w, r, res)
			return
		}
	}
	s.errs.Add(1)
	s.rec.Count("serve.errors", 1)
	sp.SetStr("error", aerr.Code)
	if rr != nil {
		rr.Error = aerr.Code
	}
	writeAPIError(w, aerr)
}

func (s *Server) serveResolved(w http.ResponseWriter, r *http.Request, res *resolved) {
	if res.req.Stream {
		s.serveStream(w, r, res)
		return
	}
	rr := requestRecordFrom(r.Context())

	// Warm duplicates: served straight from the store, engine untouched.
	if !res.req.BypassStore {
		if ent, ok := s.store.get(res.id); ok {
			s.storeHits.Add(1)
			s.rec.Count("serve.store.hits", 1)
			if rr != nil {
				rr.Cache = cacheTierStore
			}
			resp := ent.resp
			resp.Cached = true
			if res.req.IncludeSchedule {
				resp.Schedule = ToScheduleJSON(ent.sched)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	// Cold or bypassing: join (or start) the single flight for this key.
	f, leader := s.joinOrStart(rr, res)
	defer s.flights.leave(f)

	select {
	case <-f.done:
	case <-r.Context().Done():
		// The client is gone (or its transport deadline fired); leaving
		// drops our stake in the flight, and the last waiter out cancels
		// the solve so abandoned work never populates the engine caches.
		s.errs.Add(1)
		s.rec.Count("serve.errors", 1)
		if rr != nil {
			rr.Error = "client_gone"
		}
		writeAPIError(w, apiErrorf(http.StatusServiceUnavailable, CodeDeadline, "client disconnected: %v", r.Context().Err()))
		return
	}

	// The flight is done: copy its telemetry into this request's record.
	// Followers share the leader's span tree and latency breakdown.
	if rr != nil {
		rr.Leader = leader
		rr.Coalesced = !leader
		rr.QueueWaitUS = float64(f.queueWait) / float64(time.Microsecond)
		rr.SolveUS = float64(f.solve) / float64(time.Microsecond)
		rr.Spans = f.spans
		if leader {
			rr.Cache = f.cache
		} else {
			rr.Cache = cacheTierCoal
		}
	}

	if f.apiErr != nil {
		if f.apiErr.Code == CodeQueueFull {
			_, queued := s.adm.load()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterHint(s.opts.RetryAfter, queued, s.opts.Concurrency)))
		}
		if rr != nil {
			rr.Error = f.apiErr.Code
		}
		writeAPIError(w, f.apiErr)
		return
	}
	resp := f.resp
	resp.Coalesced = !leader
	if rr != nil {
		rr.Partial = resp.Partial
	}
	if res.req.IncludeSchedule {
		resp.Schedule = ToScheduleJSON(f.sched)
	}
	writeJSON(w, f.status, resp)
}

// joinOrStart joins the single flight for res.key, becoming the leader
// (and starting the solve goroutine) when this request is first in.
func (s *Server) joinOrStart(rr *RequestRecord, res *resolved) (*flight, bool) {
	f, leader := s.flights.join(res.key)
	if leader {
		f.rec = obs.NewRecorder()
		if rr != nil {
			f.reqID = rr.ID
		}
		s.bgFlight.Add(1)
		go s.runFlight(f, res)
	} else {
		s.coalesced.Add(1)
		s.rec.Count("serve.coalesced", 1)
	}
	return f, leader
}

// serveStream answers a Request.Stream synthesis as NDJSON: one
// "incumbent" event per improving schedule the leader's solve publishes,
// terminated by exactly one "final" (or "error") event. The first event
// commits HTTP 200; a failure before anything was streamed still gets
// the ordinary error status and body, a failure after arrives as the
// terminal error event. A deadline-cut solve ends with a final event
// whose partial flag is set and whose response is the best streamed
// incumbent — never a 206-or-nothing.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, res *resolved) {
	rr := requestRecordFrom(r.Context())
	sw := newStreamWriter(w)

	// Warm duplicates: one immediate final event from the store.
	if !res.req.BypassStore {
		if ent, ok := s.store.get(res.id); ok {
			s.storeHits.Add(1)
			s.rec.Count("serve.store.hits", 1)
			if rr != nil {
				rr.Cache = cacheTierStore
			}
			resp := ent.resp
			resp.Cached = true
			if res.req.IncludeSchedule {
				resp.Schedule = ToScheduleJSON(ent.sched)
			}
			sw.emit(StreamEvent{Event: StreamEventFinal, TimeS: resp.PredictedTimeS, Response: &resp})
			return
		}
	}

	f, leader := s.joinOrStart(rr, res)
	defer s.flights.leave(f)
	// Subscribe before waiting: the history replay covers everything
	// published before this point, the live channel everything after.
	sub := f.subscribe()

wait:
	for {
		select {
		case ev := <-sub:
			sw.emit(ev)
		case <-f.done:
			break wait
		case <-r.Context().Done():
			s.errs.Add(1)
			s.rec.Count("serve.errors", 1)
			if rr != nil {
				rr.Error = "client_gone"
			}
			if !sw.started {
				writeAPIError(w, apiErrorf(http.StatusServiceUnavailable, CodeDeadline, "client disconnected: %v", r.Context().Err()))
			}
			return
		}
	}

	// Every publish happens-before close(f.done), but the select above may
	// take the done arm while events still sit in the buffer — drain them
	// so the stream is complete before the terminal event.
	for drained := false; !drained; {
		select {
		case ev := <-sub:
			sw.emit(ev)
		default:
			drained = true
		}
	}

	if rr != nil {
		rr.Leader = leader
		rr.Coalesced = !leader
		rr.QueueWaitUS = float64(f.queueWait) / float64(time.Microsecond)
		rr.SolveUS = float64(f.solve) / float64(time.Microsecond)
		rr.Spans = f.spans
		if leader {
			rr.Cache = f.cache
		} else {
			rr.Cache = cacheTierCoal
		}
	}

	if f.apiErr != nil {
		if rr != nil {
			rr.Error = f.apiErr.Code
		}
		if !sw.started {
			if f.apiErr.Code == CodeQueueFull {
				_, queued := s.adm.load()
				w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterHint(s.opts.RetryAfter, queued, s.opts.Concurrency)))
			}
			writeAPIError(w, f.apiErr)
			return
		}
		sw.emit(StreamEvent{Event: StreamEventError, Error: f.apiErr})
		return
	}

	resp := f.resp
	resp.Coalesced = !leader
	if rr != nil {
		rr.Partial = resp.Partial
	}
	if res.req.IncludeSchedule {
		resp.Schedule = ToScheduleJSON(f.sched)
	}
	sw.emit(StreamEvent{Event: StreamEventFinal, TimeS: resp.PredictedTimeS, Partial: resp.Partial, Response: &resp})
}

// runFlight executes one coalesced solve: admission, deadline, engine
// plan, store. It publishes the outcome on f before closing f.done.
//
// The solve's spans land on f.rec — a recorder private to this flight —
// so the request owns its span tree; the tree is then merged into the
// server's recorder, keeping /tracez a whole-process view.
func (s *Server) runFlight(f *flight, res *resolved) {
	defer s.bgFlight.Add(-1)
	defer close(f.done)
	defer s.flights.remove(f)
	// Registered last so it runs first: publish the span tree and fold
	// this flight's history into the shared recorder before any waiter
	// is released by close(f.done).
	defer func() {
		f.spans = f.rec.Spans()
		s.rec.Merge(f.rec)
	}()

	// Re-check the store under the flight: a request can miss the store,
	// then lose the race with a finishing duplicate flight and become a
	// fresh leader for work that is already done. Serving the stored
	// result here keeps "N duplicates, one engine call" airtight.
	if !res.req.BypassStore {
		if ent, ok := s.store.get(res.id); ok {
			s.storeHits.Add(1)
			s.rec.Count("serve.store.hits", 1)
			f.resp = ent.resp
			f.resp.Cached = true
			f.sched = ent.sched
			f.status = http.StatusOK
			f.cache = cacheTierStore
			return
		}
	}

	queued := time.Now()
	err := s.adm.acquire(f.ctx)
	f.queueWait = time.Since(queued)
	s.met.queueWait.Observe(f.queueWait.Seconds())
	if err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejections.Add(1)
			s.rec.Count("serve.queue.rejections", 1)
			f.apiErr = apiErrorf(http.StatusTooManyRequests, CodeQueueFull,
				"admission queue full (%d solves running, %d queued); retry later",
				s.opts.Concurrency, s.opts.QueueDepth)
		} else {
			f.apiErr = apiErrorf(http.StatusServiceUnavailable, CodeDeadline, "request abandoned while queued")
		}
		return
	}
	defer s.adm.release()

	ctx := obs.WithRequestID(f.ctx, f.reqID)
	if res.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, res.timeout)
		defer cancel()
	}
	sp := f.rec.StartSpan("serve.plan")
	sp.SetStr("key", res.id)
	if f.reqID != "" {
		sp.SetStr("request", f.reqID)
	}
	opts := res.opts
	opts.Obs = f.rec
	solveStart := time.Now()
	// Every leader solve publishes its incumbent stream onto the flight —
	// streaming or not — so followers that asked to stream receive the
	// leader's incumbents live, and the incumbent metrics cover all
	// traffic. The callback runs on synthesis worker goroutines; publish
	// and the metric adds are non-blocking.
	result, err := s.eng.SynthesizeStream(ctx, res.top, res.col, opts, func(inc core.Incumbent) {
		elapsed := time.Since(solveStart)
		if inc.Seq == 1 {
			s.met.ttfi.Observe(elapsed.Seconds())
		}
		s.met.incumbents.With(inc.Source).Inc()
		f.publish(StreamEvent{
			Event:     StreamEventIncumbent,
			Seq:       inc.Seq,
			TimeS:     inc.Time,
			BoundS:    inc.Bound,
			Source:    inc.Source,
			Engine:    inc.Engine,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
	})
	f.solve = time.Since(solveStart)
	sp.End()
	s.met.solveDur.With(strings.ToLower(res.col.Kind.String()), strings.ToLower(res.req.Topology)).Observe(f.solve.Seconds())
	if err != nil {
		if ctx.Err() != nil {
			f.apiErr = apiErrorf(http.StatusGatewayTimeout, CodeDeadline,
				"deadline expired before any candidate completed")
		} else {
			s.errs.Add(1)
			s.rec.Count("serve.errors", 1)
			f.apiErr = apiErrorf(http.StatusInternalServerError, CodeInternal, "synthesis failed: %v", err)
		}
		return
	}

	resp := s.buildResponse(res, result)
	f.sched = result.Schedule
	f.status = http.StatusOK
	// Engine-warm (every sub-demand from cache) vs a genuine cold solve.
	if result.Stats.SolverCalls == 0 {
		f.cache = cacheTierWarm
	} else {
		f.cache = cacheTierCold
	}
	if result.Partial {
		// Anytime result: valid and complete, but not the full pipeline's
		// answer — surfaced as 206 and kept out of the store.
		f.status = http.StatusPartialContent
		resp.ID = ""
		s.partials.Add(1)
		s.rec.Count("serve.partial", 1)
	} else {
		evicted := s.store.put(res.id, resp, result.Schedule)
		if evicted > 0 {
			s.storeEvictions.Add(int64(evicted))
			s.rec.Count("serve.store.evictions", float64(evicted))
		}
	}
	f.resp = resp
}

// handleReplan is the fault-reactive fast path: it takes the same body
// as /v1/synthesize plus a mandatory topology_delta, runs the engine's
// Replan — selective cache invalidation followed by synthesis on the
// degraded topology — and reports the reuse bookkeeping alongside the
// schedule. Replans are reactive one-shots: they skip the store-read and
// coalescing tiers (a fault is news; serving yesterday's answer defeats
// the point) but still write their result through, so follow-up
// /v1/synthesize calls with the same delta are store hits.
func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	sp := s.rec.StartSpan("http.replan")
	defer sp.End()
	s.requests.Add(1)
	s.rec.Count("serve.requests", 1)
	rr := requestRecordFrom(r.Context())

	fail := func(aerr *APIError) {
		s.errs.Add(1)
		s.rec.Count("serve.errors", 1)
		sp.SetStr("error", aerr.Code)
		if rr != nil {
			rr.Error = aerr.Code
		}
		writeAPIError(w, aerr)
	}

	if s.draining.Load() {
		fail(apiErrorf(http.StatusServiceUnavailable, CodeDraining, "server is draining"))
		return
	}
	req, aerr := DecodeRequest(r.Body, s.opts.MaxBodyBytes)
	if aerr != nil {
		fail(aerr)
		return
	}
	if strings.TrimSpace(req.TopologyDelta) == "" {
		fail(apiErrorf(http.StatusBadRequest, CodeBadDelta, "missing required field %q", "topology_delta"))
		return
	}
	res, aerr := s.resolve(req)
	if aerr != nil {
		fail(aerr)
		return
	}
	sp.SetStr("topology", res.top.Name)
	sp.SetStr("collective", res.col.Kind.String())
	if rr != nil {
		rr.Topology = strings.ToLower(res.req.Topology)
		rr.Collective = strings.ToLower(res.col.Kind.String())
		rr.PlanKey = res.id
	}

	queued := time.Now()
	if err := s.adm.acquire(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejections.Add(1)
			s.rec.Count("serve.queue.rejections", 1)
			_, nq := s.adm.load()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterHint(s.opts.RetryAfter, nq, s.opts.Concurrency)))
			fail(apiErrorf(http.StatusTooManyRequests, CodeQueueFull,
				"admission queue full (%d solves running, %d queued); retry later",
				s.opts.Concurrency, s.opts.QueueDepth))
		} else {
			fail(apiErrorf(http.StatusServiceUnavailable, CodeDeadline, "request abandoned while queued"))
		}
		return
	}
	defer s.adm.release()
	s.met.queueWait.Observe(time.Since(queued).Seconds())

	ctx := r.Context()
	if res.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, res.timeout)
		defer cancel()
	}
	psp := s.rec.StartSpan("serve.replan")
	psp.SetStr("key", res.id)
	solveStart := time.Now()
	rres, err := s.eng.Replan(ctx, res.base, res.delta, res.col, res.opts)
	solve := time.Since(solveStart)
	psp.End()
	s.met.solveDur.With(strings.ToLower(res.col.Kind.String()), strings.ToLower(res.req.Topology)).Observe(solve.Seconds())
	if rr != nil {
		rr.SolveUS = float64(solve) / float64(time.Microsecond)
	}
	if err != nil {
		if ctx.Err() != nil {
			fail(apiErrorf(http.StatusGatewayTimeout, CodeDeadline,
				"deadline expired before any candidate completed"))
		} else {
			fail(apiErrorf(http.StatusInternalServerError, CodeInternal, "replan failed: %v", err))
		}
		return
	}

	resp := s.buildResponse(res, rres.Result)
	resp.Replan = &ReplanJSON{
		Delta:         res.delta.String(),
		TouchedGroups: rres.TouchedGroups,
		TotalGroups:   rres.TotalGroups,
		Invalidated:   rres.Invalidated,
		ReusedSubs:    rres.ReusedSubs,
		SolvedSubs:    rres.SolvedSubs,
		ReuseRatio:    rres.ReuseRatio(),
	}
	status := http.StatusOK
	if rres.Partial {
		status = http.StatusPartialContent
		resp.ID = ""
		s.partials.Add(1)
		s.rec.Count("serve.partial", 1)
	} else {
		stored := resp
		stored.Replan = nil // the store serves plain synthesize responses
		if evicted := s.store.put(res.id, stored, rres.Schedule); evicted > 0 {
			s.storeEvictions.Add(int64(evicted))
			s.rec.Count("serve.store.evictions", float64(evicted))
		}
	}
	if res.req.IncludeSchedule {
		resp.Schedule = ToScheduleJSON(rres.Schedule)
	}
	if rr != nil {
		rr.Partial = resp.Partial
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	sp := s.rec.StartSpan("http.schedule")
	defer sp.End()
	id := r.PathValue("id")
	ent, ok := s.store.get(id)
	if !ok {
		if rr := requestRecordFrom(r.Context()); rr != nil {
			rr.Error = CodeNotFound
		}
		writeAPIError(w, apiErrorf(http.StatusNotFound, CodeNotFound, "no stored schedule %q", id))
		return
	}
	if rr := requestRecordFrom(r.Context()); rr != nil {
		rr.Cache = cacheTierStore
		rr.PlanKey = id
		rr.Collective = strings.ToLower(ent.resp.Collective)
		rr.Topology = strings.ToLower(ent.resp.Topology)
	}
	resp := ent.resp
	resp.Cached = true
	resp.Schedule = ToScheduleJSON(ent.sched)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.rec.WriteChromeTrace(w); err != nil {
		// Headers are already out; nothing useful left to send.
		return
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.scrapeRuntime(s)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Metrics.WriteProm(w)
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.frec.snapshot())
}

func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rr, ok := s.frec.get(id)
	if !ok {
		writeAPIError(w, apiErrorf(http.StatusNotFound, CodeNotFound,
			"no flight record for request %q (evicted or never recorded)", id))
		return
	}
	writeJSON(w, http.StatusOK, rr)
}

// AdminHandler serves the operational endpoints meant for a private
// listener: net/http/pprof under /debug/pprof/, plus mirrors of
// /metrics and the flight recorder so one scrape target suffices.
// syccl-serve mounts it on -admin; it is never part of ServeHTTP.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Drain gracefully stops the server: new synthesis requests are refused
// with 503 (healthz flips to draining so load balancers stop routing),
// and Drain blocks until every accepted request and solve goroutine has
// finished. If ctx expires first, in-flight solves are cancelled — the
// engine's anytime semantics turn each into a prompt Partial (or
// deadline) response — and Drain still waits for the handlers to flush.
// Finally the stats are flushed to the recorder. Safe to call more than
// once.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	s.rec.Gauge("serve.draining", 1)
	s.met.draining.Set(1)
	// Stop the snapshot and prewarm loops; Drain waits for them through
	// bgFlight and takes the final snapshot itself below.
	s.bgCancel()

	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	cancelled := false
	for s.inFlight.Load() > 0 || s.bgFlight.Load() > 0 {
		select {
		case <-ctx.Done():
			if !cancelled {
				cancelled = true
				s.flights.cancelAll()
			}
		case <-tick.C:
		}
	}

	// Final snapshot: everything served this run warm-boots the next one.
	_ = s.SnapshotNow()

	// Flush: record the final counter values so an exported trace or
	// summary taken after shutdown reflects the whole run.
	st := s.Stats().Server
	s.rec.Gauge("serve.final.requests", float64(st.Requests))
	s.rec.Gauge("serve.final.coalesced", float64(st.Coalesced))
	s.rec.Gauge("serve.final.store_hits", float64(st.StoreHits))
	s.rec.Gauge("serve.final.queue_rejections", float64(st.QueueRejections))
	s.rec.Gauge("serve.final.partial", float64(st.Partial))
}

// DrainOnSignal wires Drain to process signals (typically SIGTERM): on
// the first signal the server drains within drainTimeout and then shuts
// down hs (when non-nil). The returned channel closes when shutdown is
// complete — main() blocks on it.
func (s *Server) DrainOnSignal(hs *http.Server, drainTimeout time.Duration, sigs ...os.Signal) <-chan struct{} {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ch
		signal.Stop(ch)
		ctx := context.Background()
		if drainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, drainTimeout)
			defer cancel()
		}
		s.Drain(ctx)
		if hs != nil {
			// Handlers are done; this closes listeners and idle conns.
			_ = hs.Shutdown(context.Background())
		}
	}()
	return done
}

// retryAfterHint derives the 429 Retry-After from current load rather
// than a constant: the base hint scales with how many flights are
// already queued per solve slot — a rough estimate of how many base
// intervals must drain before a retry can even enter the queue. Floor
// 1s (the header is integer seconds, and 0 would invite a tight retry
// loop).
func retryAfterHint(base time.Duration, queued, concurrency int) int {
	if concurrency < 1 {
		concurrency = 1
	}
	scale := 1 + float64(queued)/float64(concurrency)
	secs := int(math.Ceil(base.Seconds() * scale))
	if secs < 1 {
		secs = 1
	}
	return secs
}
